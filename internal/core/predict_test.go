package core

import (
	"math"
	"reflect"
	"sort"
	"testing"

	"edgeinfer/internal/gpusim"
	"edgeinfer/internal/kernels"
	"edgeinfer/internal/models"
	"edgeinfer/internal/tensor"
)

// oraclePredictor returns the simulator's noise-free ground truth — the
// best predictor that can exist. Core tests use it to pin the pruning
// *mechanism* (stats accounting, guard band, choice preservation at the
// default k); the learned model's accuracy against this bound is pinned
// in internal/latpred's own tests, which may import core.
type oraclePredictor struct{}

func (oraclePredictor) PredictSec(dev *gpusim.Device, ls kernels.LaunchSpec) (float64, bool) {
	return ls.TimeSec(dev), true
}

// refusingPredictor cannot predict anything: every layer must fall back
// to full-menu timing.
type refusingPredictor struct{}

func (refusingPredictor) PredictSec(*gpusim.Device, kernels.LaunchSpec) (float64, bool) {
	return 0, false
}

// TestTunerStatsPartition pins the tactic accounting identity: every
// candidate the tuner considers is exactly one of predicted-away, served
// from the timing cache, or timed on the device.
func TestTunerStatsPartition(t *testing.T) {
	g := models.MustBuild("resnet18")
	check := func(name string, r *BuildReport) {
		t.Helper()
		if r.TacticsConsidered == 0 {
			t.Fatalf("%s: no tactics considered", name)
		}
		if got := r.PredictedPrunes + r.CacheHits + r.TacticsTimed; got != r.TacticsConsidered {
			t.Fatalf("%s: prunes %d + hits %d + timed %d = %d, want considered %d",
				name, r.PredictedPrunes, r.CacheHits, r.TacticsTimed, got, r.TacticsConsidered)
		}
	}

	plain, err := Build(g, nxCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	check("plain", plain.Report)
	if plain.Report.TacticsTimed != plain.Report.TacticsConsidered {
		t.Fatal("unpruned cold build must time every considered tactic")
	}

	cache := NewTimingCache()
	cold := nxCfg(1)
	cold.TimingCache = cache
	cold.Predictor = oraclePredictor{}
	ce, err := Build(g, cold)
	if err != nil {
		t.Fatal(err)
	}
	check("pruned cold", ce.Report)
	if ce.Report.PredictedPrunes == 0 {
		t.Fatal("pruned cold build pruned nothing")
	}
	if ce.Report.PrunedTuneCostSavedSec <= 0 {
		t.Fatal("pruned cold build recorded no saved tuning cost")
	}
	if ce.Report.PredictorFallbacks != 0 {
		t.Fatalf("oracle predictor fell back %d times", ce.Report.PredictorFallbacks)
	}
	if ce.Report.TuneCostSec >= plain.Report.TuneCostSec {
		t.Fatalf("pruned build tuning cost %.6fs not below unpruned %.6fs",
			ce.Report.TuneCostSec, plain.Report.TuneCostSec)
	}

	// Warm pruned rebuild of the same config: the kept set is a pure
	// function of the build's noise streams, so an identical rebuild
	// keeps exactly the cached candidates — pruning happens before the
	// cache is consulted, kept candidates all hit, and nothing is timed.
	// (A *different* build id may keep a slightly different set; full
	// cache coverage for that case is TestPrunedWarmBuildReproducible.)
	we, err := Build(g, cold)
	if err != nil {
		t.Fatal(err)
	}
	check("pruned warm", we.Report)
	if we.Report.TacticsTimed != 0 || we.Report.TuneCostSec != 0 {
		t.Fatalf("warm pruned build timed %d tactics (%.6fs)",
			we.Report.TacticsTimed, we.Report.TuneCostSec)
	}
	if we.Report.CacheMisses != 0 {
		t.Fatalf("warm pruned build missed %d cache entries", we.Report.CacheMisses)
	}
}

// TestPrunedZooChoicesUnchangedOracle pins the acceptance property of
// the default k at the mechanism level: with an exact predictor, pruned
// builds across the whole model zoo pick byte-identical tactics while
// cutting the modeled tactic-timing cost by at least half. The noise
// streams make this nontrivial — the pruner must rank by the time the
// tuner will *observe*, not the base time, or the per-build systematic
// family bias re-orders winners out of the kept set.
func TestPrunedZooChoicesUnchangedOracle(t *testing.T) {
	var totalUn, totalPr float64
	for _, name := range models.List() {
		g := models.MustBuild(name)
		un, err := Build(g, nxCfg(3))
		if err != nil {
			t.Fatal(err)
		}
		cfg := nxCfg(3)
		cfg.Predictor = oraclePredictor{}
		pr, err := Build(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(un.Choices, pr.Choices) {
			t.Fatalf("%s: pruned build changed tactic choices", name)
		}
		totalUn += un.Report.TuneCostSec
		totalPr += pr.Report.TuneCostSec
	}
	if cut := 1 - totalPr/totalUn; cut < 0.5 {
		t.Fatalf("zoo tuning-cost cut %.1f%% below 50%%", 100*cut)
	}
}

// TestPredictorFallbackKeepsFullMenu: a predictor that refuses every
// launch must leave the build byte-identical to an unpruned one, with
// the refusals visible in the stats.
func TestPredictorFallbackKeepsFullMenu(t *testing.T) {
	g := models.MustBuild("mobilenetv1")
	un, err := Build(g, nxCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	cfg := nxCfg(2)
	cfg.Predictor = refusingPredictor{}
	fb, err := Build(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(un.Choices, fb.Choices) {
		t.Fatal("fallback build changed tactic choices")
	}
	if fb.Report.TuneCostSec != un.Report.TuneCostSec {
		t.Fatalf("fallback tuning cost %.6fs != unpruned %.6fs",
			fb.Report.TuneCostSec, un.Report.TuneCostSec)
	}
	if fb.Report.PredictorFallbacks == 0 {
		t.Fatal("refusing predictor recorded no fallbacks")
	}
	if fb.Report.PredictedPrunes != 0 {
		t.Fatalf("refusing predictor pruned %d tactics", fb.Report.PredictedPrunes)
	}
}

// TestParseTimingKeyRoundTrip runs every candidate the tuner can emit —
// conv and GEMM menus across precisions, grouped and strided shapes —
// through TimingKey and back.
func TestParseTimingKeyRoundTrip(t *testing.T) {
	dims := []kernels.ConvDims{
		{Batch: 1, InC: 64, H: 56, W: 56, OutC: 64, OutH: 56, OutW: 56, Kernel: 3, Stride: 1, Groups: 1},
		{Batch: 8, InC: 128, H: 28, W: 28, OutC: 256, OutH: 14, OutW: 14, Kernel: 3, Stride: 2, Groups: 1},
		{Batch: 2, InC: 96, H: 14, W: 14, OutC: 96, OutH: 14, OutW: 14, Kernel: 3, Stride: 1, Groups: 96},
		{Batch: 1, InC: 2048, H: 1, W: 1, OutC: 1000, OutH: 1, OutW: 1, Kernel: 1, Stride: 1, Groups: 1},
	}
	devices := []string{"NX@1109MHz", "AGX@1377MHz", "NX@599MHz"}
	for _, d := range dims {
		for _, prec := range []tensor.Precision{tensor.FP32, tensor.FP16, tensor.INT8} {
			cands := append(kernels.ConvCandidates(d, prec), kernels.GEMMCandidates(d, prec)...)
			for _, v := range cands {
				for _, dev := range devices {
					key := TimingKey(dev, v, d, prec)
					gotDev, gotV, gotD, gotPrec, err := ParseTimingKey(key)
					if err != nil {
						t.Fatalf("parse %q: %v", key, err)
					}
					if gotDev != dev || gotV != v || gotD != d || gotPrec != prec {
						t.Fatalf("round trip of %q: got (%q, %+v, %+v, %d)", key, gotDev, gotV, gotD, gotPrec)
					}
					if re := TimingKey(gotDev, gotV, gotD, gotPrec); re != key {
						t.Fatalf("re-render mismatch: %q != %q", re, key)
					}
				}
			}
		}
	}
}

// TestParseTimingKeyDeviceWithPipe: the device component is free text
// and may itself contain the separator; the grammar segments are
// anchored from the right.
func TestParseTimingKeyDeviceWithPipe(t *testing.T) {
	d := kernels.ConvDims{Batch: 1, InC: 3, H: 224, W: 224, OutC: 64, OutH: 112, OutW: 112, Kernel: 7, Stride: 2, Groups: 1}
	v := kernels.ConvCandidates(d, tensor.FP16)[0]
	dev := "lab|rig-7@900MHz"
	key := TimingKey(dev, v, d, tensor.FP16)
	gotDev, gotV, gotD, gotPrec, err := ParseTimingKey(key)
	if err != nil {
		t.Fatal(err)
	}
	if gotDev != dev || gotV != v || gotD != d || gotPrec != tensor.FP16 {
		t.Fatalf("pipe-bearing device mangled: %q %+v", gotDev, gotV)
	}
}

// TestParseTimingKeyRejectsMalformed: cache keys arrive from files on
// disk and must never panic the parser.
func TestParseTimingKeyRejectsMalformed(t *testing.T) {
	d := kernels.ConvDims{Batch: 1, InC: 64, H: 56, W: 56, OutC: 64, OutH: 56, OutW: 56, Kernel: 3, Stride: 1, Groups: 1}
	v := kernels.ConvCandidates(d, tensor.FP16)[0]
	valid := TimingKey("NX@1109MHz", v, d, tensor.FP16)
	bad := []string{
		"",
		"no separators at all",
		"only|three|segments",
		"|" + valid[len("NX@1109MHz|"):],                      // empty device
		"NX|hmma-conv.t64x64x32.sk0.nchw.a0|b1.ic64|p1",       // segment field counts wrong
		"NX|nosuchfam.t64x64x32.sk0.nchw.a0.p1|b1.ic64.s56x56-oc64.o56x56-k3.st1.g1|p1",
		"NX|hmma-conv.t64x64.sk0.nchw.a0.p1|b1.ic64.s56x56-oc64.o56x56-k3.st1.g1|p1",   // 2-part tile
		"NX|hmma-conv.t64x64x32.sk-1.nchw.a0.p1|b1.ic64.s56x56-oc64.o56x56-k3.st1.g1|p1", // signed int
		"NX|hmma-conv.t64x64x32.sk0.nhcw.a0.p1|b1.ic64.s56x56-oc64.o56x56-k3.st1.g1|p1",  // bad layout
		"NX|hmma-conv.t64x64x32.sk0.nchw.a2.p1|b1.ic64.s56x56-oc64.o56x56-k3.st1.g1|p1",  // act flag > 1
		"NX|hmma-conv.t64x64x32.sk0.nchw.a0.p9|b1.ic64.s56x56-oc64.o56x56-k3.st1.g1|p1",  // bad precision
		"NX|hmma-conv.t64x64x32.sk0.nchw.a0.p1|b1.ic64.s56x56oc64.o56x56-k3.st1.g1|p1",   // missing '-'
		"NX|hmma-conv.t64x64x32.sk0.nchw.a0.p1|b1.ic64.s56x56-oc64.o56x56-k3.st1.g1|p12", // engine precision
		valid + "|trailer",
		valid[:len(valid)-1] + "x",
	}
	for _, key := range bad {
		if _, _, _, _, err := ParseTimingKey(key); err == nil {
			t.Errorf("malformed key accepted: %q", key)
		}
	}
}

// TestTimingCacheKeysDeterministic: Keys() is the predictor's training
// iteration order, so it must be sorted and stable regardless of
// insertion order.
func TestTimingCacheKeysDeterministic(t *testing.T) {
	a := NewTimingCache()
	b := NewTimingCache()
	keys := []string{"zz", "m", "aa", "q", "b"}
	for _, k := range keys {
		a.Insert(k, 1e-4)
	}
	for i := len(keys) - 1; i >= 0; i-- {
		b.Insert(keys[i], 1e-4)
	}
	ka, kb := a.Keys(), b.Keys()
	if !sort.StringsAreSorted(ka) {
		t.Fatalf("Keys() not sorted: %v", ka)
	}
	if !reflect.DeepEqual(ka, kb) {
		t.Fatalf("Keys() depends on insertion order: %v vs %v", ka, kb)
	}
	if !reflect.DeepEqual(a.Keys(), ka) {
		t.Fatal("Keys() not stable across calls")
	}
	// Mutating the returned slice must not corrupt the cache's view.
	ka[0] = "mutated"
	if reflect.DeepEqual(a.Keys(), ka) {
		t.Fatal("Keys() exposes internal state")
	}
}

// TestPrunedWarmBuildReproducible: the §VI-A property extends to pruned
// builds — with every kept tactic served from a shared cache, two pruned
// builds with different build ids and noise produce identical engines.
func TestPrunedWarmBuildReproducible(t *testing.T) {
	g := models.MustBuild("googlenet")
	cache := NewTimingCache()
	seed := nxCfg(1)
	seed.TimingCache = cache
	if _, err := Build(g, seed); err != nil {
		t.Fatal(err)
	}
	build := func(id int, noise float64) *Engine {
		cfg := nxCfg(id)
		cfg.TunerNoise = noise
		cfg.TimingCache = cache
		cfg.Predictor = oraclePredictor{}
		cfg.CanonicalWarmID = true
		e, err := Build(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	e1 := build(7, 0.08)
	e2 := build(31, 0.2)
	if e1.Report.TacticsTimed != 0 || e2.Report.TacticsTimed != 0 {
		t.Fatal("warm pruned builds timed tactics")
	}
	if !reflect.DeepEqual(e1.Choices, e2.Choices) {
		t.Fatal("warm pruned builds disagree on tactics")
	}
	if math.Abs(e1.Report.TuneCostSec-e2.Report.TuneCostSec) != 0 {
		t.Fatal("warm pruned builds disagree on tuning cost")
	}
}
