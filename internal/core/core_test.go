package core

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"edgeinfer/internal/fixrand"
	"edgeinfer/internal/gpusim"
	"edgeinfer/internal/graph"
	"edgeinfer/internal/kernels"
	"edgeinfer/internal/models"
	"edgeinfer/internal/tensor"
)

func nxCfg(buildID int) BuildConfig  { return DefaultConfig(gpusim.XavierNX(), buildID) }
func agxCfg(buildID int) BuildConfig { return DefaultConfig(gpusim.XavierAGX(), buildID) }

// tinyNet is a small numeric test network with BN, ReLU, dropout, a dead
// branch and two mergeable 1x1 siblings.
func tinyNet(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder("tinynet", [4]int{1, 4, 8, 8})
	b.Conv("conv1", 8, 3, 1, 1).BatchNorm("bn1").ReLU("relu1")
	// two sibling 1x1 convs (horizontal merge candidates)
	p1 := b.From("relu1").Conv("proj1", 4, 1, 1, 0).Cursor()
	p2 := b.From("relu1").Conv("proj2", 4, 1, 1, 0).Cursor()
	b.ConcatJoin("cat", p1, p2)
	b.From("cat").Dropout("drop").FC("fc", 6).Softmax("prob")
	// dead branch: an auxiliary head not declared as output
	b.From("relu1").GlobalAvgPool("aux_pool").FC("aux_fc", 3)
	b.G.Outputs = []string{"prob"}
	g := b.Done()
	materialize(t, g)
	return g
}

func materialize(t *testing.T, g *graph.Graph) {
	t.Helper()
	src := fixrand.NewKeyed("core-test-weights/" + g.Name)
	for _, l := range g.Layers {
		switch l.Op {
		case graph.OpConv:
			in := g.Layer(l.Inputs[0]).OutShape
			groups := l.Conv.Groups
			if groups == 0 {
				groups = 1
			}
			w := tensor.New(l.Conv.OutC, in[1]/groups, l.Conv.Kernel, l.Conv.Kernel)
			for i := range w.Data {
				w.Data[i] = float32(src.NormFloat64()) * 0.2
			}
			l.Weights["w"] = w
			l.Weights["b"] = tensor.NewVec(l.Conv.OutC)
		case graph.OpFC:
			in := g.Layer(l.Inputs[0]).OutShape
			n := in[1] * in[2] * in[3]
			w := tensor.New(1, l.OutUnits*n, 1, 1)
			for i := range w.Data {
				w.Data[i] = float32(src.NormFloat64()) * 0.2
			}
			l.Weights["w"] = w
			l.Weights["b"] = tensor.NewVec(l.OutUnits)
		case graph.OpBatchNorm:
			in := g.Layer(l.Inputs[0]).OutShape
			gamma, beta := tensor.NewVec(in[1]), tensor.NewVec(in[1])
			mean, variance := tensor.NewVec(in[1]), tensor.NewVec(in[1])
			for c := 0; c < in[1]; c++ {
				gamma.Data[c] = 1 + 0.1*float32(src.NormFloat64())
				beta.Data[c] = 0.05 * float32(src.NormFloat64())
				mean.Data[c] = 0.1 * float32(src.NormFloat64())
				variance.Data[c] = 1 + 0.2*float32(src.Float64())
			}
			l.Weights["gamma"], l.Weights["beta"] = gamma, beta
			l.Weights["mean"], l.Weights["var"] = mean, variance
		}
	}
}

func TestBuildRemovesDeadAndDropout(t *testing.T) {
	g := tinyNet(t)
	e, err := Build(g, nxCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	if e.Graph.Layer("aux_fc") != nil || e.Graph.Layer("aux_pool") != nil {
		t.Fatal("dead aux branch survived")
	}
	if e.Graph.Layer("drop") != nil {
		t.Fatal("dropout survived")
	}
	if e.RemovedLayers < 3 {
		t.Fatalf("removed %d layers, want >=3", e.RemovedLayers)
	}
	// The source graph is untouched.
	if g.Layer("aux_fc") == nil || g.Layer("drop") == nil {
		t.Fatal("build mutated the source graph")
	}
}

func TestBuildFusesBNAndReLU(t *testing.T) {
	e, err := Build(tinyNet(t), nxCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	if e.Graph.Layer("bn1") != nil || e.Graph.Layer("relu1") != nil {
		t.Fatal("bn/relu not fused away")
	}
	f := e.Fusions["conv1"]
	if !f.FoldedBN || f.Act != ActReLU {
		t.Fatalf("conv1 fusion %+v", f)
	}
	if e.FusedLayers < 2 {
		t.Fatalf("fused %d layers", e.FusedLayers)
	}
}

func TestHorizontalMerge(t *testing.T) {
	e, err := Build(tinyNet(t), nxCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	if e.MergedLaunches < 1 {
		t.Fatal("sibling 1x1 convs not merged")
	}
	// proj1 and proj2 must share one launch.
	for _, l := range e.Launches {
		if len(l.Layers) == 2 {
			return
		}
	}
	t.Fatal("no merged launch found")
}

func TestFusionPreservesNumerics(t *testing.T) {
	// Unpruned, FP32 build: fused execution must match the reference
	// executor bit-for-bit up to float tolerance.
	g := tinyNet(t)
	cfg := nxCfg(1)
	cfg.Precision = tensor.FP32
	cfg.PruneFrac = 0
	e, err := Build(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(1, 4, 8, 8)
	src := fixrand.NewKeyed("fpn-x")
	for i := range x.Data {
		x.Data[i] = float32(src.NormFloat64())
	}
	want, err := g.Execute(x)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Infer(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want[0].Data {
		if math.Abs(float64(got[0].Data[i]-want[0].Data[i])) > 1e-4 {
			t.Fatalf("fused output diverges at %d: %v vs %v", i, got[0].Data[i], want[0].Data[i])
		}
	}
}

func TestFP16EngineCloseToReference(t *testing.T) {
	g := tinyNet(t)
	cfg := nxCfg(1)
	cfg.PruneFrac = 0
	e, err := Build(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(1, 4, 8, 8)
	src := fixrand.NewKeyed("fp16-x")
	for i := range x.Data {
		x.Data[i] = float32(src.NormFloat64())
	}
	want, _ := g.Execute(x)
	got, err := e.Infer(x)
	if err != nil {
		t.Fatal(err)
	}
	if want[0].Argmax() != got[0].Argmax() {
		t.Log("fp16 argmax flip on random net (possible but should be rare)")
	}
	for i := range want[0].Data {
		if math.Abs(float64(got[0].Data[i]-want[0].Data[i])) > 0.05 {
			t.Fatalf("fp16 output too far at %d: %v vs %v", i, got[0].Data[i], want[0].Data[i])
		}
	}
}

func TestSameBuildIDSameEngine(t *testing.T) {
	g := tinyNet(t)
	e1, _ := Build(g, nxCfg(7))
	e2, _ := Build(g, nxCfg(7))
	if !reflect.DeepEqual(e1.Choices, e2.Choices) {
		t.Fatal("same build id produced different tactic choices")
	}
	if !reflect.DeepEqual(e1.KernelCounts(), e2.KernelCounts()) {
		t.Fatal("same build id produced different kernel counts")
	}
}

func TestDifferentBuildsCanDiffer(t *testing.T) {
	// Across many build ids of a real model, tactic choices must differ
	// at least once (Finding 6).
	g := models.MustBuild("googlenet")
	base, err := Build(g, nxCfg(0))
	if err != nil {
		t.Fatal(err)
	}
	for id := 1; id <= 8; id++ {
		e, err := Build(g, nxCfg(id))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base.Choices, e.Choices) {
			return
		}
	}
	t.Fatal("9 builds produced identical engines; tuner noise ineffective")
}

func TestZeroNoiseIsDeterministicAcrossBuilds(t *testing.T) {
	g := models.MustBuild("googlenet")
	cfg1, cfg2 := nxCfg(1), nxCfg(2)
	cfg1.TunerNoise, cfg2.TunerNoise = 0, 0
	e1, _ := Build(g, cfg1)
	e2, _ := Build(g, cfg2)
	if !reflect.DeepEqual(e1.Choices, e2.Choices) {
		t.Fatal("noise=0 ablation still non-deterministic")
	}
}

func TestGoogLeNetEngineDropsAuxParams(t *testing.T) {
	g := models.MustBuild("googlenet")
	e, err := Build(g, nxCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	// Engine weights must be far below model/2 because the aux heads die
	// (paper: 51.05 MB model -> 13.62 MB engine).
	modelBytes := g.ModelSizeBytes()
	if e.SizeBytes() >= modelBytes/2 {
		t.Fatalf("googlenet engine %d bytes vs model %d; aux heads not removed?",
			e.SizeBytes(), modelBytes)
	}
}

func TestMTCNNEngineLargerThanModel(t *testing.T) {
	g := models.MustBuild("mtcnn")
	e, err := Build(g, nxCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	if e.SizeBytes() <= g.ModelSizeBytes() {
		t.Fatalf("mtcnn engine %d should exceed its %d-byte model (cubin+header overhead)",
			e.SizeBytes(), g.ModelSizeBytes())
	}
}

func TestEngineSizeHalvesBigModels(t *testing.T) {
	for _, name := range []string{"alexnet", "vgg16"} {
		g := models.MustBuild(name)
		e, err := Build(g, nxCfg(1))
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(e.SizeBytes()) / float64(g.ModelSizeBytes())
		if ratio < 0.45 || ratio > 0.62 {
			t.Errorf("%s engine/model ratio %.2f, want ~0.5 (FP16)", name, ratio)
		}
	}
}

func TestRunProducesTraceAndLatency(t *testing.T) {
	g := models.MustBuild("resnet18")
	e, err := Build(g, nxCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	dev := gpusim.NewDevice(gpusim.XavierNX(), gpusim.PaperLatencyClock(gpusim.XavierNX()))
	res := e.Run(RunConfig{Device: dev, IncludeMemcpy: true, Profile: true})
	if res.LatencySec <= 0 || res.MemcpySec <= 0 {
		t.Fatal("non-positive latency")
	}
	if len(res.Kernels) != len(e.Launches) {
		t.Fatal("trace length mismatch")
	}
	if res.LatencySec <= res.MemcpySec {
		t.Fatal("latency must exceed memcpy")
	}
	// Without memcpy the run is faster.
	res2 := e.Run(RunConfig{Device: dev, Profile: true})
	if res2.LatencySec >= res.LatencySec {
		t.Fatal("excluding memcpy should reduce latency")
	}
	// Without the profiler the run is faster still.
	res3 := e.Run(RunConfig{Device: dev})
	if res3.LatencySec >= res2.LatencySec {
		t.Fatal("profiler should add overhead")
	}
}

func TestRunJitterAcrossRunIndexes(t *testing.T) {
	g := models.MustBuild("resnet18")
	e, _ := Build(g, nxCfg(1))
	dev := gpusim.NewDevice(gpusim.XavierNX(), 599)
	r1 := e.Run(RunConfig{Device: dev, RunIndex: 0}).LatencySec
	r2 := e.Run(RunConfig{Device: dev, RunIndex: 1}).LatencySec
	if r1 == r2 {
		t.Fatal("no run-to-run jitter")
	}
	if math.Abs(r1-r2)/r1 > 0.2 {
		t.Fatalf("jitter too large: %v vs %v", r1, r2)
	}
	// Same run index is exactly reproducible.
	if e.Run(RunConfig{Device: dev, RunIndex: 0}).LatencySec != r1 {
		t.Fatal("run not deterministic for fixed index")
	}
}

func TestUnoptimizedMuchSlower(t *testing.T) {
	g := models.MustBuild("resnet18")
	e, _ := Build(g, nxCfg(1))
	dev := gpusim.NewDevice(gpusim.XavierNX(), 0)
	opt := e.GPUTimeSec(dev) + e.hostPerFrameSec(dev)
	unopt := UnoptimizedRun(g, dev)
	gain := unopt / opt
	if gain < 10 || gain > 80 {
		t.Fatalf("TRT gain %.1fx outside the paper's 23-27x ballpark band", gain)
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	g := tinyNet(t)
	e, err := Build(g, nxCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	e2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if e2.ModelName != e.ModelName || e2.Platform != e.Platform || e2.BuildID != e.BuildID {
		t.Fatal("identity fields lost")
	}
	if !reflect.DeepEqual(e.Choices, e2.Choices) {
		t.Fatal("choices lost")
	}
	if len(e2.Launches) != len(e.Launches) {
		t.Fatal("launches lost")
	}
	// Numeric equivalence after round trip.
	x := tensor.New(1, 4, 8, 8)
	src := fixrand.NewKeyed("ser-x")
	for i := range x.Data {
		x.Data[i] = float32(src.NormFloat64())
	}
	o1, err := e.Infer(x)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := e2.Infer(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range o1[0].Data {
		if o1[0].Data[i] != o2[0].Data[i] {
			t.Fatal("round-tripped engine computes differently")
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("NOTAPLAN"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty accepted")
	}
}

func TestCrossPlatformRun(t *testing.T) {
	// Build on NX, run on AGX — the paper's cNX_rAGX case.
	g := models.MustBuild("pednet")
	e, err := Build(g, nxCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	nx := gpusim.NewDevice(gpusim.XavierNX(), 599)
	agx := gpusim.NewDevice(gpusim.XavierAGX(), 624)
	rn := e.Run(RunConfig{Device: nx, IncludeMemcpy: true, Profile: true, RunIndex: 0})
	ra := e.Run(RunConfig{Device: agx, IncludeMemcpy: true, Profile: true, RunIndex: 0})
	if rn.LatencySec <= 0 || ra.LatencySec <= 0 {
		t.Fatal("bad latencies")
	}
}

func TestStreamLoadSane(t *testing.T) {
	g := models.MustBuild("tiny-yolov3")
	e, _ := Build(g, nxCfg(1))
	dev := gpusim.NewDevice(gpusim.XavierNX(), gpusim.PaperMaxClock(gpusim.XavierNX()))
	l := e.StreamLoad(dev)
	if l.PerFrameGPUSec <= 0 || l.PerFrameHostSec <= 0 || l.PerFrameDRAMBytes <= 0 {
		t.Fatalf("bad stream load %+v", l)
	}
	sat := gpusim.SaturationThreads(dev, l)
	if sat < 4 || sat > 200 {
		t.Fatalf("tiny-yolo saturation %d implausible", sat)
	}
}

func TestDetectionModelsGetSortKernels(t *testing.T) {
	g := models.MustBuild("mobilenetv1")
	e, _ := Build(g, nxCfg(1))
	counts := e.KernelCounts()
	found := 0
	for sym, n := range counts {
		if len(sym) > 4 && sym[:4] == "cub:" {
			found += n
		}
	}
	if found != 2 {
		t.Fatalf("%d cub sort kernels, want 2", found)
	}
}

func TestKernelCountsVaryAcrossEngines(t *testing.T) {
	// Table XIII: invocation counts of a given kernel differ across
	// engines of the same model on the same platform.
	g := models.MustBuild("inceptionv4")
	c1, _ := Build(g, agxCfg(1))
	c2, _ := Build(g, agxCfg(2))
	c3, _ := Build(g, agxCfg(3))
	k1, k2, k3 := c1.KernelCounts(), c2.KernelCounts(), c3.KernelCounts()
	if reflect.DeepEqual(k1, k2) && reflect.DeepEqual(k2, k3) {
		t.Fatal("kernel counts identical across three engines")
	}
}

func TestBuildRequiresFinalizedGraph(t *testing.T) {
	g := graph.New("raw", [4]int{1, 1, 4, 4})
	if _, err := Build(g, nxCfg(1)); err == nil {
		t.Fatal("unfinalized graph accepted")
	}
}

func TestWeightChunksAndBytes(t *testing.T) {
	g := models.MustBuild("resnet18")
	e, _ := Build(g, nxCfg(1))
	if e.WeightChunks() < 15 || e.WeightChunks() > 30 {
		t.Fatalf("resnet18 weight chunks %d implausible", e.WeightChunks())
	}
	// FP16 weights should be roughly half the FP32 params.
	fp32 := g.TotalParams() * 4
	ratio := float64(e.WeightBytes()) / float64(fp32)
	if ratio < 0.4 || ratio > 1.2 {
		t.Fatalf("weight bytes ratio %.2f", ratio)
	}
}

func TestChoicesOnlyFromCandidateMenu(t *testing.T) {
	g := models.MustBuild("mobilenetv1")
	e, _ := Build(g, nxCfg(1))
	for layer, v := range e.Choices {
		l := e.Graph.Layer(layer)
		if l == nil {
			t.Fatalf("choice for unknown layer %s", layer)
		}
		if l.Op == graph.OpConv && l.Conv.Groups > 1 && l.Conv.Groups == convDims(e.Graph, l).InC {
			if v.Family != kernels.FamDepthwise && v.Family != kernels.FamCUDAConv {
				t.Fatalf("depthwise layer %s got %v", layer, v.Family)
			}
		}
	}
}

// Failure injection: a plan truncated at any prefix must produce an
// error, never a panic or a silently wrong engine.
func TestLoadRejectsTruncatedPlans(t *testing.T) {
	g := tinyNet(t)
	e, err := Build(g, nxCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, frac := range []float64{0, 0.01, 0.1, 0.3, 0.5, 0.9, 0.999} {
		n := int(frac * float64(len(data)))
		if _, err := Load(bytes.NewReader(data[:n])); err == nil {
			t.Fatalf("truncation to %d/%d bytes accepted", n, len(data))
		}
	}
}

// Failure injection: numeric inference must reject wrong input shapes
// via the underlying executor, not crash.
func TestInferWrongShape(t *testing.T) {
	g := tinyNet(t)
	e, err := Build(g, nxCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	bad := tensor.New(1, 1, 8, 8) // wrong channel count
	defer func() {
		if r := recover(); r != nil {
			t.Log("panic on wrong shape (acceptable for kernel-level misuse):", r)
		}
	}()
	if out, err := e.Infer(bad); err == nil && out != nil {
		// A conv kernel will reject the weight/channel mismatch by
		// panicking; reaching here with a result means shapes were
		// silently coerced — a bug.
		t.Fatal("wrong-shaped input produced a result")
	}
}
