package core

import (
	"math"

	"edgeinfer/internal/graph"
	"edgeinfer/internal/tensor"
)

// deadLayerRemoval deletes every layer that cannot reach a declared
// output (training-only heads such as GoogLeNet's auxiliary classifiers)
// as well as inference-time no-ops (dropout). Returns the number of
// removed layers. The graph must be re-finalized afterwards.
func deadLayerRemoval(g *graph.Graph) int {
	// Mark reverse reachability from outputs.
	live := map[string]bool{}
	var mark func(name string)
	mark = func(name string) {
		if live[name] {
			return
		}
		live[name] = true
		for _, in := range g.Layer(name).Inputs {
			mark(in)
		}
	}
	for _, o := range g.Outputs {
		mark(o)
	}
	removed := 0
	// Delete dead layers in reverse topological order so each is a sink
	// when deleted (Remove splices single-input layers; dead sinks with
	// multiple inputs are deleted by rebuilding the layer list).
	var keep []*graph.Layer
	for _, l := range g.Layers {
		if live[l.Name] {
			keep = append(keep, l)
		} else {
			removed++
		}
	}
	if removed > 0 {
		g.Layers = keep
		rebuildIndex(g)
	}
	// Dropout is identity at inference: splice it out.
	for _, l := range append([]*graph.Layer(nil), g.Layers...) {
		if l.Op == graph.OpDropout {
			g.Remove(l.Name)
			removed++
		}
	}
	return removed
}

// rebuildIndex reconstructs the graph's name index after bulk layer
// deletion. It relies on the exported fields only.
func rebuildIndex(g *graph.Graph) {
	// Re-adding through a fresh graph keeps graph invariants intact.
	ng := graph.New(g.Name, g.InputShape)
	for _, l := range g.Layers {
		if l.Op == graph.OpInput {
			continue
		}
		ng.Add(l)
	}
	g.Layers = ng.Layers
	*g = *replaceIndex(g, ng)
}

// replaceIndex is a helper for rebuildIndex: it moves ng's internal index
// into g by copying the graph-level metadata onto ng and returning it.
func replaceIndex(g, ng *graph.Graph) *graph.Graph {
	ng.Name = g.Name
	ng.Framework = g.Framework
	ng.Task = g.Task
	ng.InputShape = g.InputShape
	ng.Outputs = g.Outputs
	return ng
}

// verticalFusion folds conv->BN->activation (and conv->activation,
// FC->activation) chains into the preceding conv/FC layer, removing the
// folded layers from the graph and recording the fusion. When weights
// are materialized the BN affine transform is folded into the conv
// weights numerically. Returns the fusion table and the number of layers
// absorbed.
func verticalFusion(g *graph.Graph) (map[string]Fusion, int) {
	fusions := map[string]Fusion{}
	absorbed := 0
	for {
		fused := fuseOne(g, fusions)
		if fused == "" {
			break
		}
		absorbed++
	}
	return fusions, absorbed
}

// fuseOne finds and applies a single fusion opportunity, returning the
// name of the absorbed layer (or "" when no further fusion applies). One
// mutation per scan keeps iteration over g.Layers safe.
func fuseOne(g *graph.Graph, fusions map[string]Fusion) string {
	for _, l := range g.Layers {
		if l.Op != graph.OpConv && l.Op != graph.OpFC {
			continue
		}
		f := fusions[l.Name]
		if f.Act != ActNone {
			continue // already fused an activation; chain complete
		}
		consumers := g.Consumers(l.Name)
		if len(consumers) != 1 {
			continue
		}
		next := g.Layer(consumers[0])
		switch next.Op {
		case graph.OpBatchNorm, graph.OpScale:
			if f.FoldedBN || l.Op != graph.OpConv {
				continue
			}
			foldBN(l, next)
			f.FoldedBN = true
		case graph.OpReLU:
			f.Act = ActReLU
		case graph.OpLeakyReLU:
			f.Act = ActLeaky
			f.LeakyAlpha = next.Alpha
		case graph.OpSigmoid:
			f.Act = ActSigmoid
		default:
			continue
		}
		f.Absorbed = append(f.Absorbed, next.Name)
		fusions[l.Name] = f
		name := next.Name
		g.Remove(name)
		return name
	}
	return ""
}

// foldBN folds an inference-mode batch-norm (or scale) layer into the
// preceding convolution's weights and bias, when they are materialized.
func foldBN(conv, bn *graph.Layer) {
	w := conv.Weights["w"]
	if w == nil {
		return // timing-only graph: fold is metadata-only
	}
	outC := conv.Conv.OutC
	scale := make([]float32, outC)
	shift := make([]float32, outC)
	gamma, beta := bn.Weights["gamma"], bn.Weights["beta"]
	mean, variance := bn.Weights["mean"], bn.Weights["var"]
	for c := 0; c < outC; c++ {
		var sc, sh float32 = 1, 0
		if gamma != nil {
			sc = gamma.Data[c]
		}
		if bn.Op == graph.OpBatchNorm {
			v := float32(1)
			if variance != nil {
				v = variance.Data[c]
			}
			m := float32(0)
			if mean != nil {
				m = mean.Data[c]
			}
			inv := float32(1 / math.Sqrt(float64(v)+1e-5))
			sh = -m * sc * inv
			sc = sc * inv
		}
		if beta != nil {
			sh += beta.Data[c]
		}
		scale[c] = sc
		shift[c] = sh
	}
	perOC := w.Len() / outC
	for oc := 0; oc < outC; oc++ {
		for i := 0; i < perOC; i++ {
			w.Data[oc*perOC+i] *= scale[oc]
		}
	}
	b := conv.Weights["b"]
	if b == nil {
		b = tensor.NewVec(outC)
		conv.Weights["b"] = b
	}
	for c := 0; c < outC; c++ {
		b.Data[c] = b.Data[c]*scale[c] + shift[c]
	}
}

// quantizeWeights applies the model-compression numerics to materialized
// weights: magnitude pruning (weights below pruneFrac of the tensor RMS
// are zeroed — this removes the dense low-magnitude "overfit" component,
// the paper's explanation for TensorRT's small accuracy gain) followed by
// rounding to the engine precision. Returns the number of weight tensors
// processed.
func quantizeWeights(g *graph.Graph, prec tensor.Precision, pruneFrac float64) int {
	n := 0
	for _, l := range g.Layers {
		for name, w := range l.Weights {
			if w == nil {
				continue
			}
			n++
			if name == "w" && pruneFrac > 0 {
				pruneTensor(w, pruneFrac)
			}
			switch prec {
			case tensor.FP16:
				tensor.RoundTensorFP16(w)
			case tensor.INT8:
				tensor.RoundTensorINT8(w)
			}
		}
	}
	return n
}

// pruneTensor zeroes elements whose magnitude is below frac times the
// tensor's RMS.
func pruneTensor(w *tensor.Tensor, frac float64) {
	var sumsq float64
	for _, v := range w.Data {
		sumsq += float64(v) * float64(v)
	}
	if sumsq == 0 {
		return
	}
	rms := math.Sqrt(sumsq / float64(len(w.Data)))
	thresh := float32(frac * rms)
	for i, v := range w.Data {
		if v < thresh && v > -thresh {
			w.Data[i] = 0
		}
	}
}
