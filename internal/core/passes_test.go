package core

import (
	"math"
	"reflect"
	"testing"

	"edgeinfer/internal/graph"
	"edgeinfer/internal/tensor"
)

// Direct unit tests for the pass bodies, which before the pipeline
// refactor were only exercised through full Build calls.

// mergeNet has one source conv feeding three mergeable 1x1 siblings and
// one 3x3 conv that must stay out of the group.
func mergeNet(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder("mergenet", [4]int{1, 4, 8, 8})
	b.Conv("stem", 8, 3, 1, 1)
	pA := b.From("stem").Conv("projA", 4, 1, 1, 0).Cursor()
	pB := b.From("stem").Conv("projB", 4, 1, 1, 0).Cursor()
	pC := b.From("stem").Conv("projC", 4, 1, 1, 0).Cursor()
	pD := b.From("stem").Conv("spatial", 4, 3, 1, 1).Cursor()
	b.ConcatJoin("cat", pA, pB, pC, pD)
	b.G.Outputs = []string{"cat"}
	return b.Done()
}

func TestHorizontalGroupsDirect(t *testing.T) {
	g := mergeNet(t)
	leader, groups := horizontalGroups(g)

	want := []string{"projA", "projB", "projC"}
	if got := groups["projA"]; !reflect.DeepEqual(got, want) {
		t.Fatalf("group of projA = %v, want %v", got, want)
	}
	if len(groups) != 1 {
		t.Fatalf("got %d groups, want 1: %v", len(groups), groups)
	}
	for _, name := range want {
		if leader[name] != "projA" {
			t.Errorf("leader[%s] = %q, want projA", name, leader[name])
		}
	}
	if _, ok := leader["spatial"]; ok {
		t.Errorf("3x3 conv joined a 1x1 merge group")
	}
	if _, ok := leader["stem"]; ok {
		t.Errorf("source layer joined its consumers' merge group")
	}
}

func TestHorizontalGroupsNeedTwoSiblings(t *testing.T) {
	b := graph.NewBuilder("solo", [4]int{1, 4, 8, 8})
	b.Conv("stem", 8, 3, 1, 1).Conv("proj", 4, 1, 1, 0)
	b.G.Outputs = []string{"proj"}
	g := b.Done()
	leader, groups := horizontalGroups(g)
	if len(leader) != 0 || len(groups) != 0 {
		t.Fatalf("single 1x1 consumer formed a group: leader=%v groups=%v", leader, groups)
	}
}

func TestFoldBNDirect(t *testing.T) {
	// A 2-out-channel conv with known weights, folded with a batch-norm
	// whose per-channel affine transform is computed by hand.
	conv := &graph.Layer{
		Name: "conv", Op: graph.OpConv,
		Conv:    tensor.ConvParams{OutC: 2, Kernel: 1, Stride: 1, Groups: 1},
		Weights: map[string]*tensor.Tensor{},
	}
	w := tensor.New(2, 3, 1, 1)
	for i := range w.Data {
		w.Data[i] = float32(i + 1) // ch0: 1,2,3  ch1: 4,5,6
	}
	conv.Weights["w"] = w

	bn := &graph.Layer{Name: "bn", Op: graph.OpBatchNorm, Weights: map[string]*tensor.Tensor{}}
	gamma, beta := tensor.NewVec(2), tensor.NewVec(2)
	mean, variance := tensor.NewVec(2), tensor.NewVec(2)
	gamma.Data = []float32{2, 0.5}
	beta.Data = []float32{1, -1}
	mean.Data = []float32{0.5, -0.25}
	variance.Data = []float32{4, 1}
	bn.Weights["gamma"], bn.Weights["beta"] = gamma, beta
	bn.Weights["mean"], bn.Weights["var"] = mean, variance

	foldBN(conv, bn)

	for c := 0; c < 2; c++ {
		inv := 1 / math.Sqrt(float64(variance.Data[c])+1e-5)
		scale := float64(gamma.Data[c]) * inv
		shift := float64(beta.Data[c]) - float64(mean.Data[c])*scale
		for i := 0; i < 3; i++ {
			want := float32(float64(c*3+i+1) * scale)
			if got := conv.Weights["w"].Data[c*3+i]; !close32(got, want) {
				t.Errorf("w[%d][%d] = %v, want %v", c, i, got, want)
			}
		}
		if got := conv.Weights["b"].Data[c]; !close32(got, float32(shift)) {
			t.Errorf("b[%d] = %v, want %v", c, got, shift)
		}
	}
}

func TestFoldBNScaleLayer(t *testing.T) {
	// Scale layers fold gamma/beta only: no mean/var normalization.
	conv := &graph.Layer{
		Name: "conv", Op: graph.OpConv,
		Conv:    tensor.ConvParams{OutC: 1, Kernel: 1, Stride: 1, Groups: 1},
		Weights: map[string]*tensor.Tensor{},
	}
	w := tensor.New(1, 2, 1, 1)
	w.Data = []float32{1, -2}
	conv.Weights["w"] = w
	b := tensor.NewVec(1)
	b.Data = []float32{0.5}
	conv.Weights["b"] = b

	sc := &graph.Layer{Name: "scale", Op: graph.OpScale, Weights: map[string]*tensor.Tensor{}}
	gamma, beta := tensor.NewVec(1), tensor.NewVec(1)
	gamma.Data = []float32{3}
	beta.Data = []float32{-0.25}
	sc.Weights["gamma"], sc.Weights["beta"] = gamma, beta

	foldBN(conv, sc)
	if got := conv.Weights["w"].Data; !close32(got[0], 3) || !close32(got[1], -6) {
		t.Errorf("scaled weights = %v, want [3 -6]", got)
	}
	// b' = b*gamma + beta
	if got := conv.Weights["b"].Data[0]; !close32(got, 0.5*3-0.25) {
		t.Errorf("scaled bias = %v, want %v", got, 0.5*3-0.25)
	}
}

func TestFoldBNWithoutWeightsIsMetadataOnly(t *testing.T) {
	conv := &graph.Layer{
		Name: "conv", Op: graph.OpConv,
		Conv:    tensor.ConvParams{OutC: 2, Kernel: 3, Stride: 1, Groups: 1},
		Weights: map[string]*tensor.Tensor{},
	}
	bn := &graph.Layer{Name: "bn", Op: graph.OpBatchNorm, Weights: map[string]*tensor.Tensor{}}
	foldBN(conv, bn) // must not panic or materialize anything
	if len(conv.Weights) != 0 {
		t.Fatalf("timing-only fold materialized weights: %v", conv.Weights)
	}
}

func TestDeadLayerRemovalDirect(t *testing.T) {
	// A live trunk with a dropout (spliced no-op) and a two-layer dead
	// auxiliary head not reachable from the output.
	b := graph.NewBuilder("deadnet", [4]int{1, 4, 8, 8})
	b.Conv("conv1", 8, 3, 1, 1).ReLU("relu1").Dropout("drop").FC("fc", 6)
	b.From("relu1").GlobalAvgPool("aux_pool").FC("aux_fc", 3)
	b.G.Outputs = []string{"fc"}
	g := b.Done().Clone()
	g.Outputs = []string{"fc"}

	removed := deadLayerRemoval(g)
	if removed != 3 { // aux_pool, aux_fc, drop
		t.Fatalf("removed %d layers, want 3", removed)
	}
	if err := g.Finalize(); err != nil {
		t.Fatalf("finalize after removal: %v", err)
	}
	for _, dead := range []string{"aux_pool", "aux_fc", "drop"} {
		if g.Layer(dead) != nil {
			t.Errorf("dead layer %q survived", dead)
		}
	}
	// The dropout splice must rewire fc onto relu1.
	if in := g.Layer("fc").Inputs; len(in) != 1 || in[0] != "relu1" {
		t.Errorf("fc inputs after splice = %v, want [relu1]", in)
	}
}

func TestDeadLayerRemovalKeepsLiveGraph(t *testing.T) {
	b := graph.NewBuilder("livenet", [4]int{1, 4, 8, 8})
	b.Conv("conv1", 8, 3, 1, 1).ReLU("relu1").FC("fc", 6)
	b.G.Outputs = []string{"fc"}
	g := b.Done().Clone()
	g.Outputs = []string{"fc"}
	if removed := deadLayerRemoval(g); removed != 0 {
		t.Fatalf("removed %d layers from an all-live graph", removed)
	}
}

func close32(a, b float32) bool {
	return math.Abs(float64(a-b)) <= 1e-5*(1+math.Abs(float64(b)))
}
