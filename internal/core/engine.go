// Package core implements the inference-engine builder and runtime that
// the paper characterizes: the analogue of TensorRT. Building an engine
// runs the optimization pipeline of the paper's Figure 2 —
//
//  1. dead-layer removal
//  2. vertical fusion (conv+BN+activation into one kernel)
//  3. horizontal merging (sibling 1x1 convolutions into one launch)
//  4. quantization (FP32 -> FP16/INT8, with magnitude pruning)
//  5. kernel mapping (timing-based tactic selection on the device)
//
// Step 5 times candidate kernels on the (simulated) device under
// measurement noise, so engine generation is deliberately
// non-deterministic across builds — exactly the behaviour the paper
// observes (Findings 2 and 6). Determinism is recovered for experiments
// by seeding the noise with (model, platform, build-id).
package core

import (
	"fmt"
	"sync/atomic"

	"edgeinfer/internal/graph"
	"edgeinfer/internal/kernels"
	"edgeinfer/internal/tensor"
)

// ActKind is the activation fused into a kernel epilogue.
type ActKind uint8

const (
	ActNone ActKind = iota
	ActReLU
	ActLeaky
	ActSigmoid
)

// Fusion records what vertical fusion folded into a primary layer.
type Fusion struct {
	Act        ActKind
	LeakyAlpha float32
	FoldedBN   bool     // batch-norm folded into conv weights
	Absorbed   []string // names of removed layers
}

// Launch is one kernel invocation in the engine's execution plan.
type Launch struct {
	Symbol string   // kernel symbol, as nvprof would report it
	Layers []string // source layers (horizontal merges carry several)
	Spec   kernels.LaunchSpec
}

// Engine is a built, serializable inference engine: the analogue of a
// TensorRT plan file.
type Engine struct {
	ModelName string
	Platform  string // short name of the build platform ("NX"/"AGX")
	BuildID   int
	Precision tensor.Precision

	// Graph is the optimized network (dead layers removed, fused layers
	// spliced out). For numeric engines its weights are quantized and
	// BN-folded.
	Graph *graph.Graph

	// Choices maps conv/FC layer names to the tuner-selected variant.
	// Horizontally merged layers map to the same variant.
	Choices map[string]kernels.Variant

	// Fusions records vertical-fusion metadata per primary layer.
	Fusions map[string]Fusion

	// Int8Ranges holds calibrated per-layer activation ranges for INT8
	// engines (nil otherwise).
	Int8Ranges map[string]float32

	// Launches is the ordered kernel plan.
	Launches []Launch

	// Numeric reports whether weight tensors are materialized (numeric
	// proxies) or the engine is timing-only (full-scale models).
	Numeric bool

	// stats from the build, for reporting.
	RemovedLayers  int
	FusedLayers    int
	MergedLaunches int

	// Report is the per-pass build instrumentation (nil on engines
	// loaded from plans written before the report existed).
	Report *BuildReport

	// arena recycles activation buffers across inferences (lazily
	// created; not serialized — a loaded engine starts with an empty
	// arena).
	arena atomic.Pointer[tensorArena]
}

// bufArena returns the engine's activation arena, creating it on first
// use. Safe under concurrent inference.
func (e *Engine) bufArena() *tensorArena {
	if a := e.arena.Load(); a != nil {
		return a
	}
	a := newTensorArena()
	if e.arena.CompareAndSwap(nil, a) {
		return a
	}
	return e.arena.Load()
}

// WeightBytes returns the total engine-resident weight size in bytes.
func (e *Engine) WeightBytes() int64 {
	var total int64
	for _, l := range e.Launches {
		total += l.Spec.WeightBytes
	}
	return total
}

// WeightChunks returns the number of weight bindings the runtime copies
// host-to-device (one per weight-carrying launch) — the chunk count of
// the memcpy model.
func (e *Engine) WeightChunks() int {
	n := 0
	for _, l := range e.Launches {
		if l.Spec.WeightBytes > 0 {
			n++
		}
	}
	return n
}

// KernelCounts returns how many times each kernel symbol appears in the
// plan (the paper's Table XIII counts invocations of one symbol across
// engines).
func (e *Engine) KernelCounts() map[string]int {
	m := map[string]int{}
	for _, l := range e.Launches {
		m[l.Symbol]++
	}
	return m
}

// Key identifies the engine build for seeding purposes.
func (e *Engine) Key() string {
	return fmt.Sprintf("%s/%s/build%d", e.ModelName, e.Platform, e.BuildID)
}

// cubinBytes is the serialized kernel-binary cost per distinct tactic
// family/tile — TensorRT plans embed the CUBIN of every selected tactic,
// which is why a 1.9 MB model (MTCNN) can produce a 3.8 MB engine.
func cubinBytes(v kernels.Variant) int64 {
	switch v.Family {
	case kernels.FamWinograd:
		return 1_400_000
	case kernels.FamHMMAConv:
		return 180_000
	case kernels.FamCUDAConv:
		return 120_000
	case kernels.FamGEMM:
		return 200_000
	case kernels.FamDepthwise:
		return 60_000
	default:
		return 24_000
	}
}

// SizeBytes returns the serialized engine size: quantized weights plus
// one embedded kernel binary per distinct symbol plus a fixed header.
// Sub-network cascades (MTCNN) pay the header once per stage.
func (e *Engine) SizeBytes() int64 {
	const header = 950_000
	total := e.WeightBytes()
	seen := map[string]bool{}
	for _, l := range e.Launches {
		if !seen[l.Symbol] {
			seen[l.Symbol] = true
			total += cubinBytes(l.Spec.V)
		}
	}
	stages := int64(1)
	if e.ModelName == "mtcnn" {
		stages = 3 // P-Net, R-Net, O-Net build separate engines
	}
	return total + header*stages
}
