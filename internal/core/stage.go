package core

import (
	"fmt"

	"edgeinfer/internal/gpusim"
	"edgeinfer/internal/graph"
	"edgeinfer/internal/rtctx"
	"edgeinfer/internal/tensor"
)

// Stage-ranged execution: internal/cluster slices an engine's layer
// plan into contiguous stages and runs each stage on a different
// simulated node, streaming the single boundary activation between
// them. The APIs here expose what the partitioner needs — the legal
// cut positions, the analytic per-layer schedule, and the bytes a cut
// moves or a stage holds — plus InferRangeCtx, the stage analogue of
// InferBatchCtx.

// StageCuts returns the valid pipeline cut positions of the engine's
// layer graph, ascending. A cut at position c splits the plan into
// layers [0,c) and [c,n): it is valid when the only value crossing the
// boundary is the single activation produced by layer c-1 — every
// earlier layer's activation is fully consumed before the cut (no
// skip connection spans it), and no graph output lives in the front
// half. Cuts whose boundary layer is an input are excluded: a front
// stage that does no compute is not a stage. Chained stage runs over
// consecutive cuts reproduce Infer bit-for-bit (the per-image numeric
// path is unchanged; only the arena hand-off differs).
func (e *Engine) StageCuts() []int {
	g := e.Graph
	if g == nil {
		return nil
	}
	n := len(g.Layers)
	idx := make(map[string]int, n)
	for i, l := range g.Layers {
		idx[l.Name] = i
	}
	// lastUse[i] is the last layer index reading layer i's activation.
	lastUse := make([]int, n)
	for i := range lastUse {
		lastUse[i] = i
	}
	for i, l := range g.Layers {
		for _, in := range l.Inputs {
			if j, ok := idx[in]; ok && i > lastUse[j] {
				lastUse[j] = i
			}
		}
	}
	firstOut := n
	for _, o := range g.Outputs {
		if j, ok := idx[o]; ok && j < firstOut {
			firstOut = j
		}
	}
	var cuts []int
	maxUse := -1 // max lastUse over layers [0, c-2]
	for c := 1; c < n; c++ {
		if c >= 2 && lastUse[c-2] > maxUse {
			maxUse = lastUse[c-2]
		}
		if maxUse > c-1 { // a non-boundary activation crosses the cut
			continue
		}
		if firstOut < c { // a graph output would be stranded up front
			continue
		}
		if g.Layers[c-1].Op == graph.OpInput {
			continue
		}
		cuts = append(cuts, c)
	}
	return cuts
}

// LayerCostsSec exposes the noise-free per-layer schedule the budget
// guard charges: each launch's modeled time (with the steady-state
// overlap factor) plus launch overhead, attributed to the last of its
// source layers. The cluster partitioner prices candidate stages with
// it, so admission math and the mid-graph abort agree on what a stage
// costs.
func (e *Engine) LayerCostsSec(dev *gpusim.Device) map[string]float64 {
	return e.layerCostsSec(dev)
}

// BoundaryBytes returns the activation bytes one frame moves across cut
// position c: the FP32 size of layer c-1's output tensor. This is the
// per-frame payload the partitioner prices against link bandwidth.
func (e *Engine) BoundaryBytes(c int) int64 {
	g := e.Graph
	if g == nil || c < 1 || c >= len(g.Layers) {
		return 0
	}
	s := g.Layers[c-1].OutShape
	return int64(s[0]) * int64(s[1]) * int64(s[2]) * int64(s[3]) * 4
}

// StageWeightBytes returns the weight bytes a node running layers
// [from,to) must hold resident: every launch whose charging layer (the
// last of its source layers, matching LayerCostsSec attribution) falls
// inside the range. The partitioner checks it against each node's
// memory capacity.
func (e *Engine) StageWeightBytes(from, to int) int64 {
	g := e.Graph
	if g == nil {
		return 0
	}
	idx := make(map[string]int, len(g.Layers))
	for i, l := range g.Layers {
		idx[l.Name] = i
	}
	var total int64
	for _, l := range e.Launches {
		if len(l.Layers) == 0 {
			continue
		}
		if i, ok := idx[l.Layers[len(l.Layers)-1]]; ok && i >= from && i < to {
			total += l.Spec.WeightBytes
		}
	}
	return total
}

// InferRangeCtx runs layers [from,to) of the graph over a batch of
// per-stage inputs: the graph inputs when from==0, otherwise each x is
// the boundary activation produced by layer from-1 as returned by the
// upstream stage. It returns one tensor slice per input — the graph
// outputs when to reaches the end of the plan, else the single
// boundary activation of layer to-1 for the next stage. from and to
// must be 0, len(Layers), or positions StageCuts would bless; chained
// stages otherwise lose a crossing activation and fail on the missing
// name. Budget accounting matches InferBatchCtx: when the context
// aborts and a device is supplied, only this range's layers are
// charged on top of burnedSec, so a downstream stage prices its own
// slice against what the frame has already burned upstream.
func (e *Engine) InferRangeCtx(ctx *rtctx.Request, xs []*tensor.Tensor, from, to int, fi FaultInjector, dev *gpusim.Device, burnedSec float64) ([][]*tensor.Tensor, error) {
	g := e.Graph
	if g == nil || from < 0 || from >= to || to > len(g.Layers) {
		n := 0
		if g != nil {
			n = len(g.Layers)
		}
		return nil, fmt.Errorf("core: infer range %s: bad layer range [%d,%d) of %d", e.Key(), from, to, n)
	}
	var outNames []string
	if to < len(g.Layers) {
		outNames = []string{g.Layers[to-1].Name}
	}
	return e.inferBatchRange(xs, fi, e.budgetGuard(ctx, dev, burnedSec), from, to, outNames)
}
