package core

import (
	"errors"
	"fmt"

	"edgeinfer/internal/gpusim"
	"edgeinfer/internal/rtctx"
	"edgeinfer/internal/tensor"
)

// ErrBudgetExhausted is the layer-boundary abort: InferBatchCtx returns
// it (wrapped, test with errors.Is) when the batch's charged schedule
// proves the request cannot answer inside its budget, so the caller can
// abandon mid-graph instead of finishing a pass nobody is waiting for.
var ErrBudgetExhausted = errors.New("core: request budget exhausted mid-graph")

// layerGuard is consulted at each layer boundary of the batched
// inference loop, before the layer executes. A non-nil error aborts the
// batch there. A nil guard is free: the hot path never pays for it.
type layerGuard func(li int, name string) error

// layerCostsSec prices each graph layer on a device from the engine's
// kernel plan: every launch's modeled time (with the steady-state
// overlap factor) plus launch overhead is attributed to the last of its
// source layers, so a horizontally merged group charges when the group
// completes. Layers without a launch (inputs, folded ops) cost zero.
func (e *Engine) layerCostsSec(dev *gpusim.Device) map[string]float64 {
	costs := make(map[string]float64, len(e.Launches))
	for _, l := range e.Launches {
		if len(l.Layers) == 0 {
			continue
		}
		costs[l.Layers[len(l.Layers)-1]] += l.Spec.TimeSec(dev)*overlapFactor + dev.LaunchOverheadSec()
	}
	return costs
}

// InferBatchCtx is InferBatchFaulty under a request context: the
// single budget-carrying inference path the serving tiers dispatch
// through. burnedSec is the simulated latency the request has already
// paid (failed attempts, backoff, this attempt's timed pass) before
// this inference runs. When the context aborts (rtctx.Request.Aborts)
// and a device is supplied, each layer boundary charges the layer's
// modeled cost against the budget and aborts with a wrapped
// ErrBudgetExhausted once burned-plus-charged exceeds it — the batch
// stops mid-graph instead of completing an answer that can only be
// late. The charge uses the noise-free expected schedule, not the
// jittered run latency, so the abort is deterministic for a given
// engine and device.
//
// With a nil context, an unarmed one, or a nil device it is exactly
// InferBatchFaulty: same results, same injector draw order, no
// allocation added to the hot path.
func (e *Engine) InferBatchCtx(ctx *rtctx.Request, xs []*tensor.Tensor, fi FaultInjector, dev *gpusim.Device, burnedSec float64) ([][]*tensor.Tensor, error) {
	return e.inferBatchGuarded(xs, fi, e.budgetGuard(ctx, dev, burnedSec))
}

// budgetGuard builds the layer-boundary charging guard InferBatchCtx
// and InferRangeCtx arm: nil (free) unless the context aborts and a
// device prices the schedule.
func (e *Engine) budgetGuard(ctx *rtctx.Request, dev *gpusim.Device, burnedSec float64) layerGuard {
	if !ctx.Aborts() || dev == nil {
		return nil
	}
	costs := e.layerCostsSec(dev)
	budget := ctx.Budget()
	charged := burnedSec
	return func(li int, name string) error {
		charged += costs[name]
		if charged > budget {
			return fmt.Errorf("layer %d (%s) would end at %.3gs of a %.3gs budget: %w",
				li, name, charged, budget, ErrBudgetExhausted)
		}
		return nil
	}
}
