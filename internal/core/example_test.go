package core_test

import (
	"fmt"

	"edgeinfer/internal/core"
	"edgeinfer/internal/gpusim"
	"edgeinfer/internal/models"
)

// Building an engine runs the full optimization pipeline of the paper's
// Figure 2 and reports what each pass did.
func ExampleBuild() {
	g := models.MustBuild("googlenet")
	e, err := core.Build(g, core.DefaultConfig(gpusim.XavierNX(), 1))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("removed %d dead layers (aux heads + dropout)\n", e.RemovedLayers)
	fmt.Printf("fused %d layers vertically\n", e.FusedLayers)
	fmt.Printf("merged %d sibling 1x1 convolutions\n", e.MergedLaunches)
	fmt.Printf("precision: %s\n", e.Precision)
	// Output:
	// removed 13 dead layers (aux heads + dropout)
	// fused 57 layers vertically
	// merged 18 sibling 1x1 convolutions
	// precision: fp16
}

// Engines built with different build ids may select different kernels —
// the paper's Finding 6. The same id always reproduces the same engine.
func ExampleEngine_KernelCounts() {
	g := models.MustBuild("resnet18")
	a1, _ := core.Build(g, core.DefaultConfig(gpusim.XavierNX(), 1))
	a2, _ := core.Build(g, core.DefaultConfig(gpusim.XavierNX(), 1))
	fmt.Println("same build id, same plan:", len(a1.Launches) == len(a2.Launches))

	sameCounts := func(x, y map[string]int) bool {
		if len(x) != len(y) {
			return false
		}
		for k, v := range x {
			if y[k] != v {
				return false
			}
		}
		return true
	}
	fmt.Println("identical kernel counts:", sameCounts(a1.KernelCounts(), a2.KernelCounts()))
	// Output:
	// same build id, same plan: true
	// identical kernel counts: true
}

// A timed run prices the kernel plan on any platform — also one the
// engine was not built on (the paper's cross-platform cases).
func ExampleEngine_Run() {
	g := models.MustBuild("mobilenetv1")
	e, _ := core.Build(g, core.DefaultConfig(gpusim.XavierNX(), 1))
	nx := gpusim.NewDevice(gpusim.XavierNX(), 599)
	agx := gpusim.NewDevice(gpusim.XavierAGX(), 624)
	rNX := e.Run(core.RunConfig{Device: nx, IncludeMemcpy: true})
	rAGX := e.Run(core.RunConfig{Device: agx, IncludeMemcpy: true})
	fmt.Println("ran on NX and AGX:", rNX.LatencySec > 0 && rAGX.LatencySec > 0)
	fmt.Println("NX engine slower on the bigger AGX:", rAGX.LatencySec > rNX.LatencySec)
	// Output:
	// ran on NX and AGX: true
	// NX engine slower on the bigger AGX: true
}
