package core

import (
	"errors"
	"fmt"
	"math"

	"edgeinfer/internal/fixrand"
	"edgeinfer/internal/graph"
	"edgeinfer/internal/tensor"
)

// Fault-aware execution. RunFaulty and InferFaulty are the injectable
// twins of Run and Infer: they consult a FaultInjector (implemented by
// internal/faults) at every point where a real deployment can go wrong —
// the H2D weight copy, each kernel launch, and the numeric path's weights
// and activations. A nil injector reproduces Run/Infer bit-for-bit: the
// injector draws from its own seeded stream, never from the run's jitter
// stream, so enabling injection at fault rate zero changes nothing.

// Sentinel errors for transient accelerator faults. Callers (the serve
// package) match with errors.Is to decide between retry and fallback.
var (
	// ErrLaunchFailed is a transient kernel-launch failure (the analogue
	// of cudaErrorLaunchFailure): the submitted kernel never ran.
	ErrLaunchFailed = errors.New("core: transient kernel-launch failure")
	// ErrMemcpyFailed is a host-to-device copy that kept failing past the
	// injector's retry budget.
	ErrMemcpyFailed = errors.New("core: host-to-device memcpy failed")
)

// LaunchFault is the injector's verdict for one kernel launch.
type LaunchFault struct {
	// Fail aborts the run at this launch with ErrLaunchFailed.
	Fail bool
	// StallSec is extra stream-stall time serialized before the kernel
	// (a blocked stream, preempted context, or sync interference).
	StallSec float64
	// ClockScale scales the effective GPU clock for this launch
	// (0 or 1 = nominal; 0.5 = DVFS throttled to half clock).
	ClockScale float64
}

// FaultInjector is the hook surface RunFaulty/InferFaulty consult.
// internal/faults provides the deterministic, seeded implementation.
type FaultInjector interface {
	// MemcpyH2D is consulted once per weight copy. It returns how many
	// times the copy had to be retried (each retry pays the full copy
	// cost again) and a terminal error if it never succeeded.
	MemcpyH2D(bytes int64) (retries int, err error)
	// Launch is consulted once per kernel launch (timed path) or per
	// layer (numeric path).
	Launch(index int, symbol string) LaunchFault
	// CorruptWeights may return a bit-flipped copy of a weight tensor.
	// It must never mutate w in place — engines are shared.
	CorruptWeights(layer, key string, w *tensor.Tensor) *tensor.Tensor
	// CorruptActivation may flip bits in a freshly computed activation,
	// in place.
	CorruptActivation(layer string, y *tensor.Tensor)
}

// RunFaulty executes the engine plan like Run while consulting the
// injector. On a terminal fault it returns the partial result (the
// latency burned before the fault, including the failed launch's
// submission) together with the error, so callers can account for wasted
// time when retrying.
func (e *Engine) RunFaulty(cfg RunConfig, fi FaultInjector) (RunResult, error) {
	dev := cfg.Device
	jit := fixrand.NewKeyed(fmt.Sprintf("run/%s/%s@%.0f/%d/prof=%v",
		e.Key(), dev.Spec.Short(), dev.ClockMHz, cfg.RunIndex, cfg.Profile))
	var res RunResult
	if cfg.IncludeMemcpy {
		res.MemcpySec = dev.MemcpyH2DSec(e.WeightBytes(), e.WeightChunks())
		// Copy jitter (pageable memory, CPU contention).
		res.MemcpySec *= math.Exp(runJitterSigma * jit.NormFloat64())
		if fi != nil {
			retries, err := fi.MemcpyH2D(e.WeightBytes())
			res.MemcpySec *= float64(1 + retries)
			if err != nil {
				res.LatencySec = res.MemcpySec
				return res, fmt.Errorf("%w: %v", ErrMemcpyFailed, err)
			}
		}
	}
	total := res.MemcpySec
	for i, l := range e.Launches {
		t := l.Spec.TimeSec(dev)
		t *= math.Exp(runJitterSigma * jit.NormFloat64())
		if cfg.Profile {
			t = t*profSerialFactor + profPerLaunchSec
		} else {
			t *= overlapFactor
		}
		if fi != nil {
			lf := fi.Launch(i, l.Symbol)
			if lf.ClockScale > 0 && lf.ClockScale < 1 {
				t /= lf.ClockScale
			}
			t += lf.StallSec
			if lf.Fail {
				// The failed submission still burned its host overhead.
				res.LatencySec = total + t + dev.LaunchOverheadSec()
				return res, fmt.Errorf("launch %d (%s): %w", i, l.Symbol, ErrLaunchFailed)
			}
		}
		t += dev.LaunchOverheadSec()
		res.Kernels = append(res.Kernels, KernelInvocation{Symbol: l.Symbol, Layers: l.Layers, DurSec: t})
		total += t
	}
	res.LatencySec = total
	return res, nil
}

// InferFaulty runs the engine numerically like Infer while consulting
// the injector: transient launch failures abort the inference with
// ErrLaunchFailed, and bit-flip corruption is applied to weights (on a
// copy) and activations (in place) as the plan dictates.
func (e *Engine) InferFaulty(x *tensor.Tensor, fi FaultInjector) ([]*tensor.Tensor, error) {
	if !e.Numeric {
		return nil, fmt.Errorf("core: engine %s is timing-only (no weights materialized)", e.Key())
	}
	g := e.Graph
	ar := e.bufArena()
	acts := make(map[string]*tensor.Tensor, len(g.Layers))
	// Every non-input activation is recycled through the arena once the
	// inference ends — except the graph outputs (the caller owns those)
	// and anything aliasing the caller's input.
	owned := make([]*tensor.Tensor, 0, len(g.Layers))
	defer func() {
		keep := make(map[*tensor.Tensor]bool, len(g.Outputs)+1)
		keep[x] = true
		for _, name := range g.Outputs {
			keep[acts[name]] = true
		}
		ar.releaseActs(owned, keep)
	}()
	for i, l := range g.Layers {
		if fi != nil && l.Op != graph.OpInput {
			if lf := fi.Launch(i, l.Name); lf.Fail {
				return nil, fmt.Errorf("core: infer %s layer %s: %w", e.Key(), l.Name, ErrLaunchFailed)
			}
		}
		var y *tensor.Tensor
		var err error
		switch {
		case l.Op == graph.OpInput:
			y = x
		case l.Op == graph.OpConv:
			y, err = e.inferConv(l, acts, fi, ar)
		case l.Op == graph.OpFC:
			y, err = e.inferFC(l, acts, fi, ar)
		default:
			ins := make([]*tensor.Tensor, len(l.Inputs))
			for i, name := range l.Inputs {
				ins[i] = acts[name]
			}
			y, err = graph.EvalLayer(l, ins)
		}
		if err != nil {
			return nil, fmt.Errorf("core: infer %s layer %s: %w", e.Key(), l.Name, err)
		}
		// Activation corruption: never on the caller's input tensor (it
		// outlives this request); pass-through ops alias it directly.
		if fi != nil && l.Op != graph.OpInput && y != x {
			fi.CorruptActivation(l.Name, y)
		}
		acts[l.Name] = y
		if l.Op != graph.OpInput {
			owned = append(owned, y)
		}
	}
	outs := make([]*tensor.Tensor, len(g.Outputs))
	for i, name := range g.Outputs {
		outs[i] = acts[name]
	}
	return outs, nil
}
