package core

import (
	"bytes"
	"testing"

	"edgeinfer/internal/gpusim"
	"edgeinfer/internal/models"
)

func TestBuildReportPerPassStats(t *testing.T) {
	e, err := Build(tinyNet(t), nxCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	r := e.Report
	if r == nil {
		t.Fatal("engine has no BuildReport")
	}
	wantOrder := []string{
		PassDeadLayerRemoval, PassVerticalFusion, PassInt8Calibration,
		PassQuantization, PassHorizontalMerge, PassKernelTuning,
	}
	if len(r.Passes) != len(wantOrder) {
		t.Fatalf("report has %d passes, want %d", len(r.Passes), len(wantOrder))
	}
	for i, name := range wantOrder {
		if r.Passes[i].Pass != name {
			t.Errorf("pass %d = %q, want %q", i, r.Passes[i].Pass, name)
		}
	}
	// tinyNet has a two-layer dead aux head plus one dropout: exactly 3.
	if got := r.Pass(PassDeadLayerRemoval).LayersRemoved; got != 3 {
		t.Errorf("dead-layer pass removed %d, want 3", got)
	}
	if got := r.Pass(PassDeadLayerRemoval).LayersRemoved; got != e.RemovedLayers {
		t.Errorf("report (%d) and engine (%d) disagree on removed layers", got, e.RemovedLayers)
	}
	if got := r.Pass(PassVerticalFusion).LayersFused; got != e.FusedLayers || got == 0 {
		t.Errorf("fusion pass reports %d fused (engine %d)", got, e.FusedLayers)
	}
	if got := r.Pass(PassQuantization).TensorsQuantized; got == 0 {
		t.Errorf("quantization pass quantized no tensors on a numeric graph")
	}
	// The two 1x1 projection siblings form one merge group.
	if got := r.Pass(PassHorizontalMerge).MergeGroups; got != 1 {
		t.Errorf("horizontal-merge found %d groups, want 1", got)
	}
	kt := r.Pass(PassKernelTuning)
	if kt.MergedLaunches != e.MergedLaunches || kt.MergedLaunches != 1 {
		t.Errorf("kernel-tuning merged %d launches (engine %d), want 1", kt.MergedLaunches, e.MergedLaunches)
	}
	if kt.TacticsTimed == 0 || kt.TacticsTimed != r.TacticsTimed {
		t.Errorf("tactics timed: pass %d, total %d", kt.TacticsTimed, r.TacticsTimed)
	}
	if kt.TuneCostSec <= 0 {
		t.Errorf("cold build reports no tuning cost")
	}
	if r.CacheHits != 0 || r.CacheMisses != 0 || r.WarmBuild {
		t.Errorf("cache counters active without a cache: %+v", r)
	}
}

func TestBuildReportGoogLeNetMerges(t *testing.T) {
	g, err := models.Build("googlenet")
	if err != nil {
		t.Fatal(err)
	}
	e, err := Build(g, nxCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	// GoogLeNet's inception modules are the paper's canonical horizontal-
	// merge example (Figure 2, step 3): the report must show them.
	if got := e.Report.Pass(PassHorizontalMerge).MergeGroups; got == 0 {
		t.Fatal("googlenet reports zero horizontal merge groups")
	}
	if got := e.Report.Pass(PassKernelTuning).MergedLaunches; got == 0 {
		t.Fatal("googlenet reports zero merged launches")
	}
	if got := e.Report.Pass(PassDeadLayerRemoval).LayersRemoved; got == 0 {
		t.Fatal("googlenet's auxiliary heads were not removed")
	}
}

func TestDisablePasses(t *testing.T) {
	cfg := nxCfg(1)
	cfg.DisablePasses = []string{PassHorizontalMerge}
	e, err := Build(tinyNet(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if e.MergedLaunches != 0 {
		t.Errorf("merging disabled but %d launches merged", e.MergedLaunches)
	}
	ps := e.Report.Pass(PassHorizontalMerge)
	if !ps.Disabled || ps.MergeGroups != 0 {
		t.Errorf("disabled pass not reported as such: %+v", ps)
	}
	// The siblings must now be planned as individual launches.
	base, err := Build(tinyNet(t), nxCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Launches) != len(base.Launches)+1 {
		t.Errorf("unmerged plan has %d launches, merged %d: want exactly one more", len(e.Launches), len(base.Launches))
	}
}

func TestDisableUnknownPassErrors(t *testing.T) {
	cfg := nxCfg(1)
	cfg.DisablePasses = []string{"no-such-pass"}
	if _, err := Build(tinyNet(t), cfg); err == nil {
		t.Fatal("disabling an unknown pass did not error")
	}
}

func TestPassHookObservesPipeline(t *testing.T) {
	var seen []string
	cfg := nxCfg(1)
	cfg.DisablePasses = []string{PassQuantization}
	cfg.PassHook = func(ps PassStats) { seen = append(seen, ps.Pass) }
	if _, err := Build(tinyNet(t), cfg); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 6 {
		t.Fatalf("hook saw %d passes, want 6: %v", len(seen), seen)
	}
	if seen[3] != PassQuantization {
		t.Errorf("hook order wrong: %v", seen)
	}
}

func TestCustomPipelineOrder(t *testing.T) {
	// A pipeline without dead-layer removal, fusion first: still builds a
	// runnable engine; the dead aux head survives into the plan.
	pm := NewPassManager(verticalFusionPass{}, quantizePass{}, horizontalMergePass{}, kernelTuningPass{})
	e, err := pm.Build(tinyNet(t), nxCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	if e.RemovedLayers != 0 {
		t.Errorf("pipeline without dead-layer removal removed %d layers", e.RemovedLayers)
	}
	if e.Graph.Layer("aux_fc") == nil {
		t.Errorf("aux head removed despite missing pass")
	}
	if len(e.Report.Passes) != 4 {
		t.Errorf("report has %d passes, want 4", len(e.Report.Passes))
	}
	dev := gpusim.NewDevice(gpusim.XavierNX(), 0)
	if lat := e.Run(RunConfig{Device: dev}).LatencySec; lat <= 0 {
		t.Errorf("custom-pipeline engine does not run: latency %v", lat)
	}
}

func TestDuplicatePassRejected(t *testing.T) {
	pm := NewPassManager(deadLayerPass{}, deadLayerPass{})
	if _, err := pm.Build(tinyNet(t), nxCfg(1)); err == nil {
		t.Fatal("duplicate pass accepted")
	}
}

// TestWarmRebuildsByteIdentical is the §VI-A mechanism end to end: a cold
// build populates a timing cache; two independent rebuilds with different
// build ids and different noise settings take every tactic from the cache
// and serialize to byte-identical plans, at a simulated build cost ≥2×
// (in fact ≫2×) below the cold build's.
func TestWarmRebuildsByteIdentical(t *testing.T) {
	g, err := models.Build("resnet18")
	if err != nil {
		t.Fatal(err)
	}
	cache := NewTimingCache()

	cold := nxCfg(1)
	cold.TimingCache = cache
	ce, err := Build(g, cold)
	if err != nil {
		t.Fatal(err)
	}
	if ce.Report.CacheMisses == 0 || ce.Report.WarmBuild {
		t.Fatalf("cold build did not miss: %+v", ce.Report)
	}

	warm := func(buildID int, noise float64) *Engine {
		cfg := nxCfg(buildID)
		cfg.TunerNoise = noise
		cfg.TimingCache = cache
		cfg.CanonicalWarmID = true
		e, err := Build(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	w1, w2 := warm(7, 0.02), warm(9, 0.31)
	for _, w := range []*Engine{w1, w2} {
		if !w.Report.WarmBuild || w.Report.CacheMisses != 0 {
			t.Fatalf("rebuild not warm: %+v", w.Report)
		}
		if w.BuildID != 0 {
			t.Fatalf("warm canonical build id = %d, want 0", w.BuildID)
		}
	}
	var b1, b2 bytes.Buffer
	if err := w1.Save(&b1); err != nil {
		t.Fatal(err)
	}
	if err := w2.Save(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatalf("warm rebuilds differ: %d vs %d bytes", b1.Len(), b2.Len())
	}
	// Warm rebuilds select exactly the tactics the cold build measured.
	for layer, v := range ce.Choices {
		if w1.Choices[layer] != v {
			t.Fatalf("warm rebuild diverged from cold tactics at %s", layer)
		}
	}
	if w1.Report.TuneCostSec*2 > ce.Report.TuneCostSec {
		t.Fatalf("warm build cost %.6fs not ≥2× below cold %.6fs",
			w1.Report.TuneCostSec, ce.Report.TuneCostSec)
	}
}

// TestNoCacheBuildUnchanged pins that a nil TimingCache reproduces the
// pre-pipeline builder exactly (the golden engine fields the rest of the
// suite asserts; tables are compared wholesale in EXPERIMENTS.md).
func TestNoCacheBuildUnchanged(t *testing.T) {
	g, err := models.Build("resnet18")
	if err != nil {
		t.Fatal(err)
	}
	a, err := Build(g, nxCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(g, nxCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	var ba, bb bytes.Buffer
	if err := a.Save(&ba); err != nil {
		t.Fatal(err)
	}
	if err := b.Save(&bb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
		t.Fatal("same-config builds are not reproducible")
	}
}

// The acceptance benchmark pair. Tactic timing dominates a real trtexec
// build but is *simulated* here (no sleeping), so each benchmark also
// reports the modeled device-timing cost as sim-build-ms/op — the metric
// on which warm rebuilds are ≥2× (in fact ∞×) cheaper; wall clock
// improves too (no noise sampling, no timing model evaluation).
func BenchmarkBuildCold(b *testing.B) {
	g, err := models.Build("resnet18")
	if err != nil {
		b.Fatal(err)
	}
	var tuneSec float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := nxCfg(i + 1)
		cfg.TimingCache = NewTimingCache() // fresh: every tactic timed
		e, err := Build(g, cfg)
		if err != nil {
			b.Fatal(err)
		}
		tuneSec += e.Report.TuneCostSec
	}
	b.ReportMetric(tuneSec*1e3/float64(b.N), "sim-build-ms/op")
}

func BenchmarkBuildWarm(b *testing.B) {
	g, err := models.Build("resnet18")
	if err != nil {
		b.Fatal(err)
	}
	cache := NewTimingCache()
	seed := nxCfg(1)
	seed.TimingCache = cache
	if _, err := Build(g, seed); err != nil {
		b.Fatal(err)
	}
	var tuneSec float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := nxCfg(i + 2)
		cfg.TimingCache = cache
		cfg.CanonicalWarmID = true
		e, err := Build(g, cfg)
		if err != nil {
			b.Fatal(err)
		}
		tuneSec += e.Report.TuneCostSec
	}
	b.ReportMetric(tuneSec*1e3/float64(b.N), "sim-build-ms/op")
}
