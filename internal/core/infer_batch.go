package core

import (
	"fmt"

	"edgeinfer/internal/graph"
	"edgeinfer/internal/tensor"
)

// Batched numeric inference. InferBatch pipelines the layer plan across a
// batch of images: layers run in plan order, and within each layer every
// image executes back to back — the software analogue of one batched
// kernel launch. That keeps each layer's weights hot in cache across the
// whole batch, resolves kernel variants and fusion metadata once per
// layer instead of once per image, and (on the fault path) draws launch
// and weight-corruption verdicts once per layer, the way a single batched
// launch would fail or corrupt.
//
// Per-image numerics are untouched: each image's activations flow through
// the exact same convApply/fcApply/EvalLayer calls Infer performs, so on
// a pristine device InferBatch(xs)[i] is bit-identical to Infer(xs[i]).

// InferBatch runs the engine numerically on a batch of inputs and
// returns one output slice per input, in input order. It is
// InferBatchFaulty on a pristine device.
//
//rt:hotpath
func (e *Engine) InferBatch(xs []*tensor.Tensor) ([][]*tensor.Tensor, error) {
	return e.InferBatchFaulty(xs, nil)
}

// InferBatchFaulty is InferBatch consulting a fault injector. Unlike the
// per-image path, the injector is consulted once per layer — one Launch
// verdict and one weight-corruption draw cover the whole batch, modeling
// one batched kernel launch — while activation corruption still applies
// per image (each image's activation is a distinct tensor). Budget-
// carrying callers go through InferBatchCtx, which is this path with a
// layer-boundary guard armed.
func (e *Engine) InferBatchFaulty(xs []*tensor.Tensor, fi FaultInjector) ([][]*tensor.Tensor, error) {
	return e.inferBatchGuarded(xs, fi, nil)
}

// inferBatchGuarded is the whole-graph batched-inference body. The
// guard, when non-nil, is consulted at each layer boundary before the
// layer's launch verdict; its error aborts the batch mid-graph without
// drawing for the aborted layer. The nil-guard path is byte-for-byte
// InferBatchFaulty: identical injector draw order, no extra allocation.
func (e *Engine) inferBatchGuarded(xs []*tensor.Tensor, fi FaultInjector, guard layerGuard) ([][]*tensor.Tensor, error) {
	return e.inferBatchRange(xs, fi, guard, 0, -1, nil)
}

// inferBatchRange is the one batched-inference body, generalized to the
// half-open layer range [from, to) so a pipeline stage can run its
// slice of the graph on its own node (internal/cluster). from==0 with
// to<0 covers the whole graph and is exactly the pre-range body: same
// draw order, no allocation added. For from>0 each input tensor is
// bound as the boundary activation — the output of layer from-1 — so
// quantInput and consumer lookups resolve it by the producer's name.
// outNames, when non-nil, overrides the graph outputs as both the
// returned tensors and the arena keep set; stage callers pass the
// boundary layer's name so the hand-off tensor survives release.
func (e *Engine) inferBatchRange(xs []*tensor.Tensor, fi FaultInjector, guard layerGuard, from, to int, outNames []string) ([][]*tensor.Tensor, error) {
	if !e.Numeric {
		return nil, fmt.Errorf("core: engine %s is timing-only (no weights materialized)", e.Key())
	}
	if len(xs) == 0 {
		return nil, nil
	}
	for i, x := range xs {
		if x == nil {
			return nil, fmt.Errorf("core: infer batch %s: input %d is nil", e.Key(), i)
		}
	}
	g := e.Graph
	if to < 0 {
		to = len(g.Layers)
	}
	if from < 0 || from > to || to > len(g.Layers) {
		return nil, fmt.Errorf("core: infer %s: bad layer range [%d,%d) of %d", e.Key(), from, to, len(g.Layers))
	}
	if outNames == nil {
		outNames = g.Outputs
	}
	ar := e.bufArena()
	bs := batchScratchPool.Get().(*batchScratch)
	acts := bs.actMaps(len(xs))
	owned := bs.ownedBuf()
	defer func() {
		keep := bs.keepSet()
		for _, x := range xs {
			keep[x] = true
		}
		for _, am := range acts {
			for _, name := range outNames {
				keep[am[name]] = true
			}
		}
		ar.releaseActs(owned, keep)
		bs.release(owned)
	}()
	if from > 0 {
		bname := g.Layers[from-1].Name
		for img, x := range xs {
			acts[img][bname] = x
		}
	}
	for li := from; li < to; li++ {
		l := g.Layers[li]
		if guard != nil && l.Op != graph.OpInput {
			if err := guard(li, l.Name); err != nil {
				return nil, fmt.Errorf("core: infer %s: %w", e.Key(), err)
			}
		}
		if fi != nil && l.Op != graph.OpInput {
			if lf := fi.Launch(li, l.Name); lf.Fail {
				return nil, fmt.Errorf("core: infer %s layer %s: %w", e.Key(), l.Name, ErrLaunchFailed)
			}
		}
		isConv := l.Op == graph.OpConv
		isFC := l.Op == graph.OpFC
		var w, b *tensor.Tensor
		if isConv || isFC {
			w, b = l.Weights["w"], l.Weights["b"]
			if w == nil {
				kind := "conv"
				if isFC {
					kind = "fc"
				}
				return nil, fmt.Errorf("core: infer %s layer %s: %s %s has no weights", e.Key(), l.Name, kind, l.Name)
			}
			if fi != nil {
				w = fi.CorruptWeights(l.Name, "w", w)
			}
		}
		for img, x := range xs {
			var y *tensor.Tensor
			var err error
			switch {
			case l.Op == graph.OpInput:
				y = x
			case isConv:
				y, err = e.convApply(l, acts[img], w, b, ar)
			case isFC:
				y, err = e.fcApply(l, acts[img], w, b, ar)
			default:
				ins := bs.inputs(len(l.Inputs))
				for i, name := range l.Inputs {
					ins[i] = acts[img][name]
				}
				y, err = graph.EvalLayer(l, ins)
			}
			if err != nil {
				return nil, fmt.Errorf("core: infer %s layer %s: %w", e.Key(), l.Name, err)
			}
			if fi != nil && l.Op != graph.OpInput && y != x {
				fi.CorruptActivation(l.Name, y)
			}
			acts[img][l.Name] = y
			if l.Op != graph.OpInput {
				owned = append(owned, y)
			}
		}
	}
	outs := make([][]*tensor.Tensor, len(xs))
	for img := range xs {
		outs[img] = make([]*tensor.Tensor, len(outNames))
		for i, name := range outNames {
			outs[img][i] = acts[img][name]
		}
	}
	return outs, nil
}
