package core_test

import (
	"testing"

	"edgeinfer/internal/core"
	"edgeinfer/internal/gpusim"
	"edgeinfer/internal/models"
)

// ExpectedLatencySec must be the noise-free center of Run: the ratio of
// every observed run latency to the expectation stays within the
// lognormal jitter band, and the BuildReport carries the build-time
// stamp for the serving watchdog.
func TestExpectedLatencyCentersRun(t *testing.T) {
	g := models.MustBuild("resnet18")
	spec := gpusim.XavierNX()
	e, err := core.Build(g, core.DefaultConfig(spec, 1))
	if err != nil {
		t.Fatal(err)
	}
	if e.Report == nil || e.Report.ExpectedLatencySec <= 0 {
		t.Fatalf("build report missing expected latency: %+v", e.Report)
	}
	// The report stamp is the engine's own accessor on the build device
	// at the build clock (DefaultConfig leaves ClockMHz 0 = max).
	buildDev := gpusim.NewDevice(spec, 0)
	if got := e.ExpectedLatencySec(buildDev, false); got != e.Report.ExpectedLatencySec {
		t.Fatalf("report stamp %v != accessor %v", e.Report.ExpectedLatencySec, got)
	}
	dev := gpusim.NewDevice(spec, gpusim.PaperLatencyClock(spec))
	want := e.ExpectedLatencySec(dev, false)
	if want <= 0 {
		t.Fatal("expected latency not positive")
	}
	for run := 0; run < 10; run++ {
		obs := e.Run(core.RunConfig{Device: dev, RunIndex: run}).LatencySec
		if ratio := obs / want; ratio < 0.85 || ratio > 1.15 {
			t.Fatalf("run %d ratio %.3f outside the jitter band (obs %v, expected %v)", run, ratio, obs, want)
		}
	}
	// With memcpy the expectation grows by the H2D copy cost.
	withCopy := e.ExpectedLatencySec(dev, true)
	if withCopy <= want {
		t.Fatalf("memcpy expectation %v not above compute-only %v", withCopy, want)
	}
}
