package core

import (
	"bytes"
	"encoding/binary"
	"testing"

	"edgeinfer/internal/gpusim"
	"edgeinfer/internal/models"
	"edgeinfer/internal/planlint"
)

// The static verifier must reject every corrupt-plan fixture class the
// runtime loader rejects dynamically (corrupt_test.go's corpus), and
// pass pristine plans untouched.

func TestVerifyPlanDataPristine(t *testing.T) {
	plan, _ := savedPlan(t)
	if issues := VerifyPlanData(bytes.NewReader(plan)); len(issues) != 0 {
		t.Fatalf("pristine plan produced issues: %v", issues)
	}
}

func TestVerifyPlanEngineClean(t *testing.T) {
	for _, model := range []string{"resnet18", "alexnet"} {
		g, err := models.BuildProxy(model, models.DefaultProxyOptions())
		if err != nil {
			t.Fatal(err)
		}
		e, err := Build(g, DefaultConfig(gpusim.XavierNX(), 1))
		if err != nil {
			t.Fatal(err)
		}
		if issues := e.VerifyPlan(); len(issues) != 0 {
			t.Fatalf("%s: freshly built engine fails verification: %v", model, issues)
		}
	}
}

// Every hostile-header class the loader rejects must also fail static
// verification — with issues, never a panic or empty verdict.
func TestVerifyPlanDataHostileHeaders(t *testing.T) {
	plan, hlen := savedPlan(t)
	for name, data := range hostileHeaders(t, plan, hlen) {
		t.Run(name, func(t *testing.T) {
			issues := VerifyPlanData(bytes.NewReader(data))
			if !planlint.HasErrors(issues) {
				t.Fatalf("hostile header %s verified clean: %v", name, issues)
			}
		})
	}
}

func TestVerifyPlanDataTruncations(t *testing.T) {
	plan, hlen := savedPlan(t)
	cuts := []int{0, 3, 8, 10, 12, 12 + hlen/2, 12 + hlen, 12 + hlen + 2, len(plan) - 1}
	for _, cut := range cuts {
		issues := VerifyPlanData(bytes.NewReader(plan[:cut]))
		if !planlint.HasErrors(issues) {
			t.Fatalf("truncation at %d verified clean: %v", cut, issues)
		}
	}
}

func TestVerifyPlanDataHostileLengthFields(t *testing.T) {
	plan, hlen := savedPlan(t)
	patch := func(off int, v uint32) []byte {
		bad := append([]byte(nil), plan...)
		binary.LittleEndian.PutUint32(bad[off:], v)
		return bad
	}
	cases := map[string][]byte{
		"hlen-over-limit": patch(8, 1<<30),
		"hlen-truncated":  patch(8, maxHeaderBytes),
		"wcount-hostile":  patch(12+hlen, 0xffffffff),
		"rlen-over-limit": patch(12+hlen+4, 0xffffffff),
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			if issues := VerifyPlanData(bytes.NewReader(data)); !planlint.HasErrors(issues) {
				t.Fatalf("%s verified clean: %v", name, issues)
			}
		})
	}
}

// Semantic defects the loader cannot see are still caught statically:
// a weight record pointing at a layer absent from the topology.
func TestVerifyPlanDataOrphanWeights(t *testing.T) {
	plan, hlen := savedPlan(t)
	bad := mutateHeader(t, plan, hlen, func(h map[string]any) {
		ls := h["Layers"].([]any)
		h["Layers"] = ls[:len(ls)-1] // drop the last layer; its weights remain
	})
	issues := VerifyPlanData(bytes.NewReader(bad))
	if !planlint.HasErrors(issues) {
		t.Fatalf("orphan weights verified clean: %v", issues)
	}
}

// Save refuses an engine whose plan fails IR verification: the builder
// gate behind EXPERIMENTS.md's "never serializes a failing plan".
func TestSaveRefusesFailingPlan(t *testing.T) {
	g, err := models.BuildProxy("resnet18", models.DefaultProxyOptions())
	if err != nil {
		t.Fatal(err)
	}
	e, err := Build(g, DefaultConfig(gpusim.XavierNX(), 1))
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the launch plan: reference a layer the graph doesn't have.
	e.Launches = append(e.Launches, Launch{Symbol: "ghost_kernel", Layers: []string{"ghost"}})
	var buf bytes.Buffer
	if err := e.Save(&buf); err == nil {
		t.Fatal("Save accepted an engine with a corrupt launch plan")
	} else if !bytes.Contains([]byte(err.Error()), []byte("refusing to serialize")) {
		t.Fatalf("unexpected error: %v", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("Save wrote %d bytes before refusing", buf.Len())
	}
}
