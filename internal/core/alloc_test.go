package core

import (
	"testing"

	"edgeinfer/internal/kernels"
)

// TestInferBatchSteadyStateAllocs is the dynamic cross-check of the
// hotalloc analyzer's static verdict on Engine.InferBatch: once the
// arena and the pooled batch scratch are warm, per-batch allocation is a
// small constant owned by the caller-visible results (the outs slices
// and the reference-executed non-conv layers, whose outputs flow to the
// caller by design) — never proportional to plan length times batch in
// bookkeeping. The old implementation allocated four ledgers plus one
// activation map per image per call.
func TestInferBatchSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; counts only hold without it")
	}
	defer kernels.SetWorkers(kernels.SetWorkers(1))
	g := tinyNet(t)
	e, err := Build(g, nxCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	xs := batchInputs(t, "steady-alloc-x", 4)
	for i := 0; i < 3; i++ { // warm the arena and scratch pools
		if _, err := e.InferBatch(xs); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := e.InferBatch(xs); err != nil {
			t.Fatal(err)
		}
	})
	// Budget: 1 outs slice + len(xs) inner output slices, plus 2 allocs
	// (tensor header + data) per reference-executed layer instance. The
	// optimized tinynet plan retains 2 non-conv/FC layers (measured 21
	// total for a batch of 4); one layer of headroom keeps the pin from
	// flaking on pass-pipeline changes while still failing if per-call
	// ledger allocation ever comes back.
	const perImageRefLayers = 3
	budget := float64(1 + len(xs) + 2*perImageRefLayers*len(xs))
	if allocs > budget {
		t.Fatalf("InferBatch allocates %.1f objects per batch in steady state, budget %.0f", allocs, budget)
	}
}
