package core

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"

	"edgeinfer/internal/atomicfile"
	"edgeinfer/internal/kernels"
	"edgeinfer/internal/tensor"
)

// TimingCache is the reproduction of TensorRT's ITimingCache: a
// serializable table of tactic-timing measurements keyed by
// (device, kernel variant, layer dimensions, precision) — and explicitly
// NOT by build id. A cold build populates it with the tuner's (noisy)
// observations; a warm build takes every measurement from the cache and
// never re-times, so warm rebuilds of the same (model, platform,
// precision) select identical tactics and serialize to identical plans —
// the paper's §VI-A "build once" guarantee as a mechanism instead of an
// operational rule. Safe for concurrent use.
type TimingCache struct {
	mu      sync.Mutex
	entries map[string]float64
}

// NewTimingCache returns an empty cache.
func NewTimingCache() *TimingCache {
	return &TimingCache{entries: map[string]float64{}}
}

// TimingKey renders the cache key of one tactic measurement. The device
// string must identify platform and clock (timings transfer across
// neither); the variant is encoded in full because rendered kernel
// symbols do not distinguish split-K siblings. Build id and tuner noise
// deliberately do not appear: entries must be shareable across builds.
func TimingKey(device string, v kernels.Variant, d kernels.ConvDims, prec tensor.Precision) string {
	layout := "nchw"
	if v.NHWC {
		layout = "nhwc"
	}
	act := 0
	if v.FusedAct {
		act = 1
	}
	return fmt.Sprintf("%s|%s.t%dx%dx%d.sk%d.%s.a%d.p%d|b%d.ic%d.s%dx%d-oc%d.o%dx%d-k%d.st%d.g%d|p%d",
		device,
		v.Family, v.TileM, v.TileN, v.TileK, v.SplitK, layout, act, v.Precision,
		d.Batch, d.InC, d.H, d.W, d.OutC, d.OutH, d.OutW, d.Kernel, d.Stride, d.Groups,
		prec)
}

// ParseTimingKey is the inverse of TimingKey: it recovers the device
// string, kernel variant, layer dimensions and engine precision from a
// cache key. The learned latency predictor trains on timing-cache
// entries, so the key format — previously write-only — must round-trip.
// Keys are untrusted (they arrive from cache files on disk): malformed
// input returns an error, never a panic.
func ParseTimingKey(key string) (device string, v kernels.Variant, d kernels.ConvDims, prec tensor.Precision, err error) {
	fail := func(format string, args ...any) (string, kernels.Variant, kernels.ConvDims, tensor.Precision, error) {
		return "", kernels.Variant{}, kernels.ConvDims{}, 0, fmt.Errorf("core: timing key %q: "+format, append([]any{key}, args...)...)
	}
	parts := strings.Split(key, "|")
	if len(parts) < 4 {
		return fail("want 4 |-separated segments, got %d", len(parts))
	}
	// The device string is caller-supplied and could itself contain '|';
	// the three grammar segments are always the last three.
	device = strings.Join(parts[:len(parts)-3], "|")
	if device == "" {
		return fail("empty device segment")
	}
	vseg, dseg, pseg := parts[len(parts)-3], parts[len(parts)-2], parts[len(parts)-1]

	// Precision segment: "p%d".
	p64, perr := parseTagInt(pseg, "p")
	if perr != nil || p64 > int(tensor.INT8) {
		return fail("bad precision segment %q", pseg)
	}
	prec = tensor.Precision(p64)

	// Variant segment: "family.tMxNxK.skS.layout.aA.pP".
	vf := strings.Split(vseg, ".")
	if len(vf) != 6 {
		return fail("variant segment %q: want 6 fields, got %d", vseg, len(vf))
	}
	fam, ok := kernels.ParseFamily(vf[0])
	if !ok {
		return fail("unknown kernel family %q", vf[0])
	}
	v.Family = fam
	if v.TileM, v.TileN, v.TileK, err = parseTriple(vf[1], "t"); err != nil {
		return fail("variant tiles %q: %v", vf[1], err)
	}
	if v.SplitK, err = parseTagInt(vf[2], "sk"); err != nil {
		return fail("variant split-k %q: %v", vf[2], err)
	}
	switch vf[3] {
	case "nchw":
	case "nhwc":
		v.NHWC = true
	default:
		return fail("unknown layout %q", vf[3])
	}
	act, aerr := parseTagInt(vf[4], "a")
	if aerr != nil || act > 1 {
		return fail("bad activation flag %q", vf[4])
	}
	v.FusedAct = act == 1
	vp, vperr := parseTagInt(vf[5], "p")
	if vperr != nil || vp > int(tensor.INT8) {
		return fail("bad variant precision %q", vf[5])
	}
	v.Precision = tensor.Precision(vp)

	// Dims segment: "bB.icC.sHxW-ocOC.oOHxOW-kK.stST.gG".
	df := strings.Split(dseg, ".")
	if len(df) != 6 {
		return fail("dims segment %q: want 6 fields, got %d", dseg, len(df))
	}
	if d.Batch, err = parseTagInt(df[0], "b"); err != nil {
		return fail("dims batch %q: %v", df[0], err)
	}
	if d.InC, err = parseTagInt(df[1], "ic"); err != nil {
		return fail("dims in-channels %q: %v", df[1], err)
	}
	if d.H, d.W, d.OutC, err = parsePairTag(df[2], "s", "oc"); err != nil {
		return fail("dims spatial %q: %v", df[2], err)
	}
	if d.OutH, d.OutW, d.Kernel, err = parsePairTag(df[3], "o", "k"); err != nil {
		return fail("dims output %q: %v", df[3], err)
	}
	if d.Stride, err = parseTagInt(df[4], "st"); err != nil {
		return fail("dims stride %q: %v", df[4], err)
	}
	if d.Groups, err = parseTagInt(df[5], "g"); err != nil {
		return fail("dims groups %q: %v", df[5], err)
	}
	return device, v, d, prec, nil
}

// parseTagInt parses "<tag><int>" (e.g. "sk2"), rejecting signs, spaces
// and empty digit strings — strconv alone would accept "+2".
func parseTagInt(s, tag string) (int, error) {
	if !strings.HasPrefix(s, tag) {
		return 0, fmt.Errorf("missing %q tag", tag)
	}
	digits := s[len(tag):]
	if digits == "" {
		return 0, fmt.Errorf("empty %q value", tag)
	}
	for i := 0; i < len(digits); i++ {
		if digits[i] < '0' || digits[i] > '9' {
			return 0, fmt.Errorf("non-digit in %q value", tag)
		}
	}
	n, err := strconv.Atoi(digits)
	if err != nil {
		return 0, err
	}
	return n, nil
}

// parseTriple parses "<tag>AxBxC".
func parseTriple(s, tag string) (a, b, c int, err error) {
	if !strings.HasPrefix(s, tag) {
		return 0, 0, 0, fmt.Errorf("missing %q tag", tag)
	}
	f := strings.Split(s[len(tag):], "x")
	if len(f) != 3 {
		return 0, 0, 0, fmt.Errorf("want 3 x-separated values, got %d", len(f))
	}
	if a, err = parseTagInt(f[0], ""); err != nil {
		return 0, 0, 0, err
	}
	if b, err = parseTagInt(f[1], ""); err != nil {
		return 0, 0, 0, err
	}
	if c, err = parseTagInt(f[2], ""); err != nil {
		return 0, 0, 0, err
	}
	return a, b, c, nil
}

// parsePairTag parses "<tag1>AxB-<tag2>C" (e.g. "s56x56-oc64").
func parsePairTag(s, tag1, tag2 string) (a, b, c int, err error) {
	halves := strings.Split(s, "-")
	if len(halves) != 2 {
		return 0, 0, 0, fmt.Errorf("want 2 '-'-separated halves, got %d", len(halves))
	}
	if !strings.HasPrefix(halves[0], tag1) {
		return 0, 0, 0, fmt.Errorf("missing %q tag", tag1)
	}
	f := strings.Split(halves[0][len(tag1):], "x")
	if len(f) != 2 {
		return 0, 0, 0, fmt.Errorf("want 2 x-separated values, got %d", len(f))
	}
	if a, err = parseTagInt(f[0], ""); err != nil {
		return 0, 0, 0, err
	}
	if b, err = parseTagInt(f[1], ""); err != nil {
		return 0, 0, 0, err
	}
	if c, err = parseTagInt(halves[1], tag2); err != nil {
		return 0, 0, 0, err
	}
	return a, b, c, nil
}

// Lookup returns the cached observed time for a key.
func (c *TimingCache) Lookup(key string) (float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.entries[key]
	return v, ok
}

// Insert records an observed time. First write wins: once a measurement
// is published every later build must see the same value, or shared-cache
// convergence would depend on build order.
func (c *TimingCache) Insert(key string, secs float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; !ok {
		c.entries[key] = secs
	}
}

// Len returns the number of cached measurements.
func (c *TimingCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Keys returns the cache keys in sorted order.
func (c *TimingCache) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]string, 0, len(c.entries))
	for k := range c.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Timing-cache files: magic, entry count, then per entry a length-
// prefixed key and the float64 observed seconds. Like engine plans they
// are untrusted input on load; see LoadTimingCache. Documented next to
// the plan format in DESIGN.md.
const timingCacheMagic = "EDGETC01"

// Deserialization bounds: a hostile count or key length must fail after
// a small allocation, not reserve the claimed size.
const (
	maxCacheEntries  = 1 << 20
	maxCacheKeyBytes = 4096
)

// Save serializes the cache. Entries are written in sorted key order so
// the same cache contents always produce the same bytes.
func (c *TimingCache) Save(w io.Writer) error {
	keys := c.Keys()
	c.mu.Lock()
	defer c.mu.Unlock()
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(timingCacheMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(keys))); err != nil {
		return err
	}
	for _, k := range keys {
		if len(k) > maxCacheKeyBytes {
			return fmt.Errorf("core: timing-cache key %d bytes exceeds limit", len(k))
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(k))); err != nil {
			return err
		}
		if _, err := bw.WriteString(k); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, math.Float64bits(c.entries[k])); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadTimingCache deserializes a cache. Cache files are untrusted input:
// truncated, bit-flipped or hostile streams return an error — never a
// panic, and never an allocation driven by an unvalidated length field.
func LoadTimingCache(r io.Reader) (*TimingCache, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(timingCacheMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("core: read timing-cache magic: %w", err)
	}
	if string(magic) != timingCacheMagic {
		return nil, fmt.Errorf("core: bad timing-cache magic %q", magic)
	}
	var count uint32
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, err
	}
	if count > maxCacheEntries {
		return nil, fmt.Errorf("core: timing cache claims %d entries, limit %d", count, maxCacheEntries)
	}
	c := NewTimingCache()
	for i := uint32(0); i < count; i++ {
		var klen uint32
		if err := binary.Read(br, binary.LittleEndian, &klen); err != nil {
			return nil, fmt.Errorf("core: timing-cache entry %d: %w", i, err)
		}
		if klen == 0 || klen > maxCacheKeyBytes {
			return nil, fmt.Errorf("core: timing-cache key length %d out of range", klen)
		}
		kb, err := readBounded(br, int64(klen))
		if err != nil {
			return nil, fmt.Errorf("core: timing-cache entry %d key: %w", i, err)
		}
		var bits uint64
		if err := binary.Read(br, binary.LittleEndian, &bits); err != nil {
			return nil, fmt.Errorf("core: timing-cache entry %d value: %w", i, err)
		}
		secs := math.Float64frombits(bits)
		if math.IsNaN(secs) || math.IsInf(secs, 0) || secs <= 0 {
			return nil, fmt.Errorf("core: timing-cache entry %q has invalid time %v", kb, secs)
		}
		key := string(kb)
		if _, dup := c.entries[key]; dup {
			return nil, fmt.Errorf("core: timing cache has duplicate key %q", key)
		}
		c.entries[key] = secs
	}
	return c, nil
}

// SaveFile writes the cache to a file path. The write is crash-safe
// (serialize to memory, publish with an atomic rename), so an
// interrupted save never leaves a truncated cache that the hardened
// loader would then reject.
func (c *TimingCache) SaveFile(path string) error {
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		return err
	}
	return atomicfile.WriteFile(path, buf.Bytes(), 0o644)
}

// LoadTimingCacheFile reads a cache from a file path.
func LoadTimingCacheFile(path string) (*TimingCache, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadTimingCache(f)
}
