package core

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"sync"

	"edgeinfer/internal/atomicfile"
	"edgeinfer/internal/kernels"
	"edgeinfer/internal/tensor"
)

// TimingCache is the reproduction of TensorRT's ITimingCache: a
// serializable table of tactic-timing measurements keyed by
// (device, kernel variant, layer dimensions, precision) — and explicitly
// NOT by build id. A cold build populates it with the tuner's (noisy)
// observations; a warm build takes every measurement from the cache and
// never re-times, so warm rebuilds of the same (model, platform,
// precision) select identical tactics and serialize to identical plans —
// the paper's §VI-A "build once" guarantee as a mechanism instead of an
// operational rule. Safe for concurrent use.
type TimingCache struct {
	mu      sync.Mutex
	entries map[string]float64
}

// NewTimingCache returns an empty cache.
func NewTimingCache() *TimingCache {
	return &TimingCache{entries: map[string]float64{}}
}

// TimingKey renders the cache key of one tactic measurement. The device
// string must identify platform and clock (timings transfer across
// neither); the variant is encoded in full because rendered kernel
// symbols do not distinguish split-K siblings. Build id and tuner noise
// deliberately do not appear: entries must be shareable across builds.
func TimingKey(device string, v kernels.Variant, d kernels.ConvDims, prec tensor.Precision) string {
	layout := "nchw"
	if v.NHWC {
		layout = "nhwc"
	}
	act := 0
	if v.FusedAct {
		act = 1
	}
	return fmt.Sprintf("%s|%s.t%dx%dx%d.sk%d.%s.a%d.p%d|b%d.ic%d.s%dx%d-oc%d.o%dx%d-k%d.st%d.g%d|p%d",
		device,
		v.Family, v.TileM, v.TileN, v.TileK, v.SplitK, layout, act, v.Precision,
		d.Batch, d.InC, d.H, d.W, d.OutC, d.OutH, d.OutW, d.Kernel, d.Stride, d.Groups,
		prec)
}

// Lookup returns the cached observed time for a key.
func (c *TimingCache) Lookup(key string) (float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.entries[key]
	return v, ok
}

// Insert records an observed time. First write wins: once a measurement
// is published every later build must see the same value, or shared-cache
// convergence would depend on build order.
func (c *TimingCache) Insert(key string, secs float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; !ok {
		c.entries[key] = secs
	}
}

// Len returns the number of cached measurements.
func (c *TimingCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Keys returns the cache keys in sorted order.
func (c *TimingCache) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]string, 0, len(c.entries))
	for k := range c.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Timing-cache files: magic, entry count, then per entry a length-
// prefixed key and the float64 observed seconds. Like engine plans they
// are untrusted input on load; see LoadTimingCache. Documented next to
// the plan format in DESIGN.md.
const timingCacheMagic = "EDGETC01"

// Deserialization bounds: a hostile count or key length must fail after
// a small allocation, not reserve the claimed size.
const (
	maxCacheEntries  = 1 << 20
	maxCacheKeyBytes = 4096
)

// Save serializes the cache. Entries are written in sorted key order so
// the same cache contents always produce the same bytes.
func (c *TimingCache) Save(w io.Writer) error {
	keys := c.Keys()
	c.mu.Lock()
	defer c.mu.Unlock()
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(timingCacheMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(keys))); err != nil {
		return err
	}
	for _, k := range keys {
		if len(k) > maxCacheKeyBytes {
			return fmt.Errorf("core: timing-cache key %d bytes exceeds limit", len(k))
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(k))); err != nil {
			return err
		}
		if _, err := bw.WriteString(k); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, math.Float64bits(c.entries[k])); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadTimingCache deserializes a cache. Cache files are untrusted input:
// truncated, bit-flipped or hostile streams return an error — never a
// panic, and never an allocation driven by an unvalidated length field.
func LoadTimingCache(r io.Reader) (*TimingCache, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(timingCacheMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("core: read timing-cache magic: %w", err)
	}
	if string(magic) != timingCacheMagic {
		return nil, fmt.Errorf("core: bad timing-cache magic %q", magic)
	}
	var count uint32
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, err
	}
	if count > maxCacheEntries {
		return nil, fmt.Errorf("core: timing cache claims %d entries, limit %d", count, maxCacheEntries)
	}
	c := NewTimingCache()
	for i := uint32(0); i < count; i++ {
		var klen uint32
		if err := binary.Read(br, binary.LittleEndian, &klen); err != nil {
			return nil, fmt.Errorf("core: timing-cache entry %d: %w", i, err)
		}
		if klen == 0 || klen > maxCacheKeyBytes {
			return nil, fmt.Errorf("core: timing-cache key length %d out of range", klen)
		}
		kb, err := readBounded(br, int64(klen))
		if err != nil {
			return nil, fmt.Errorf("core: timing-cache entry %d key: %w", i, err)
		}
		var bits uint64
		if err := binary.Read(br, binary.LittleEndian, &bits); err != nil {
			return nil, fmt.Errorf("core: timing-cache entry %d value: %w", i, err)
		}
		secs := math.Float64frombits(bits)
		if math.IsNaN(secs) || math.IsInf(secs, 0) || secs <= 0 {
			return nil, fmt.Errorf("core: timing-cache entry %q has invalid time %v", kb, secs)
		}
		key := string(kb)
		if _, dup := c.entries[key]; dup {
			return nil, fmt.Errorf("core: timing cache has duplicate key %q", key)
		}
		c.entries[key] = secs
	}
	return c, nil
}

// SaveFile writes the cache to a file path. The write is crash-safe
// (serialize to memory, publish with an atomic rename), so an
// interrupted save never leaves a truncated cache that the hardened
// loader would then reject.
func (c *TimingCache) SaveFile(path string) error {
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		return err
	}
	return atomicfile.WriteFile(path, buf.Bytes(), 0o644)
}

// LoadTimingCacheFile reads a cache from a file path.
func LoadTimingCacheFile(path string) (*TimingCache, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadTimingCache(f)
}
