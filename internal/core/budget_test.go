package core

import (
	"errors"
	"testing"

	"edgeinfer/internal/gpusim"
	"edgeinfer/internal/rtctx"
)

func testDevice() *gpusim.Device {
	spec := gpusim.XavierNX()
	return gpusim.NewDevice(spec, gpusim.PaperLatencyClock(spec))
}

func TestLayerCostsCoverExpectedLatency(t *testing.T) {
	g := tinyNet(t)
	e, err := Build(g, nxCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	dev := testDevice()
	costs := e.layerCostsSec(dev)
	var total float64
	for _, c := range costs {
		total += c
	}
	want := e.ExpectedLatencySec(dev, false)
	if diff := total - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("layer costs sum %.9g, ExpectedLatencySec %.9g", total, want)
	}
	// Every charged layer must exist in the optimized graph, or the
	// guard would never collect its cost.
	names := make(map[string]bool, len(e.Graph.Layers))
	for _, l := range e.Graph.Layers {
		names[l.Name] = true
	}
	for name := range costs {
		if !names[name] {
			t.Fatalf("launch charged to layer %q absent from optimized graph", name)
		}
	}
}

func TestInferBatchCtxAbortsMidGraph(t *testing.T) {
	g := tinyNet(t)
	e, err := Build(g, nxCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	dev := testDevice()
	xs := batchInputs(t, "budget-abort-x", 3)

	// A budget below the full expected schedule must abort mid-graph.
	tight := e.ExpectedLatencySec(dev, false) / 2
	_, err = e.InferBatchCtx(rtctx.WithBudget(tight), xs, nil, dev, 0)
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("tight budget: err = %v, want ErrBudgetExhausted", err)
	}

	// Burned latency from earlier attempts counts against the budget
	// even when the schedule alone would fit.
	generous := e.ExpectedLatencySec(dev, false) * 2
	_, err = e.InferBatchCtx(rtctx.WithBudget(generous), xs, nil, dev, generous)
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("burned budget: err = %v, want ErrBudgetExhausted", err)
	}
}

func TestInferBatchCtxUnarmedMatchesFaulty(t *testing.T) {
	g := tinyNet(t)
	e, err := Build(g, nxCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	dev := testDevice()
	xs := batchInputs(t, "budget-pristine-x", 2)

	want, err := e.InferBatchFaulty(xs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, ctx := range []*rtctx.Request{
		nil,                    // no context
		rtctx.Background(),     // context without budget
		{BudgetSec: 1e-9},      // budget but Abort unarmed
		rtctx.WithBudget(10.0), // armed with a generous budget
	} {
		got, err := e.InferBatchCtx(ctx, xs, nil, dev, 0)
		if err != nil {
			t.Fatalf("ctx %+v: %v", ctx, err)
		}
		for img := range want {
			sameBitsBatch(t, "ctx outputs", got[img], want[img])
		}
	}

	// Armed but no device: the guard cannot price layers, so the call
	// degrades to the plain path instead of guessing.
	if _, err := e.InferBatchCtx(rtctx.WithBudget(1e-12), xs, nil, nil, 0); err != nil {
		t.Fatalf("nil device must disable the guard: %v", err)
	}
}
