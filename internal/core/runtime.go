package core

import (
	"fmt"

	"edgeinfer/internal/gpusim"
	"edgeinfer/internal/graph"
	"edgeinfer/internal/kernels"
	"edgeinfer/internal/tensor"
)

// RunConfig parameterizes a timed engine execution.
type RunConfig struct {
	// Device is the platform (and clock) the engine runs on — not
	// necessarily the one it was built on (paper's cNX_rAGX etc.).
	Device *gpusim.Device
	// IncludeMemcpy copies the engine weights host-to-device as part of
	// the measured run, as the paper's methodology does (Table VIII); set
	// false to reproduce the "CUDA memcpy excluded" columns of Table X.
	IncludeMemcpy bool
	// Profile attaches the nvprof-like profiler: per-launch
	// instrumentation cost and serialization of concurrent kernels.
	Profile bool
	// RunIndex seeds per-run jitter (the paper reports mean/std over 10
	// runs).
	RunIndex int
}

// KernelInvocation is one executed kernel, as the profiler records it.
type KernelInvocation struct {
	Symbol string
	Layers []string
	DurSec float64
}

// RunResult is the outcome of one timed inference.
type RunResult struct {
	LatencySec float64
	MemcpySec  float64
	Kernels    []KernelInvocation
}

// Per-launch host cost and profiler cost. Launch overhead is CPU-side
// work per kernel submission; the profiler adds instrumentation per
// launch and prevents inter-kernel overlap (without it, back-to-back
// kernels overlap their tails slightly).
const (
	profPerLaunchSec = 60e-6
	overlapFactor    = 0.88
	profSerialFactor = 1.05
	runJitterSigma   = 0.02
)

// Run executes the engine plan on a device and returns the simulated
// latency with a per-kernel trace. Deterministic given the engine key,
// device, and RunIndex. It is RunFaulty on a pristine device (no
// injector), which cannot fail.
func (e *Engine) Run(cfg RunConfig) RunResult {
	res, err := e.RunFaulty(cfg, nil)
	if err != nil {
		// Unreachable: every fault path requires a non-nil injector.
		panic(err)
	}
	return res
}

// ExpectedLatencySec is the noise-free center of Run's jittered latency
// on a device: per-launch model time with the steady-state overlap
// factor plus launch overhead, and the H2D weight copy when
// includeMemcpy is set. The serving layer's latency watchdog compares
// observed RunFaulty latencies against this expectation — a sustained
// ratio well above 1 means the replica, not the request, is sick.
func (e *Engine) ExpectedLatencySec(dev *gpusim.Device, includeMemcpy bool) float64 {
	var total float64
	if includeMemcpy {
		total += dev.MemcpyH2DSec(e.WeightBytes(), e.WeightChunks())
	}
	for _, l := range e.Launches {
		total += l.Spec.TimeSec(dev)*overlapFactor + dev.LaunchOverheadSec()
	}
	return total
}

// GPUTimeSec returns the pure GPU-resident time of one inference on a
// device (no memcpy, no profiler, no host gaps): the per-frame GPU cost
// used by the concurrency model.
func (e *Engine) GPUTimeSec(dev *gpusim.Device) float64 {
	var total float64
	for _, l := range e.Launches {
		total += l.Spec.TimeSec(dev) * overlapFactor
	}
	return total
}

// DRAMBytesPerFrame estimates the steady-state DRAM traffic of one
// inference under concurrency: weights are mostly L2/texture-resident
// (shared by every stream running the same engine), and fused producer-
// consumer conv chains keep most activations on chip; bandwidth-hungry
// layers without that locality (LRN, pooling, copies) pay full price.
func (e *Engine) DRAMBytesPerFrame() float64 {
	const (
		weightResidency = 0.15 // fraction of weights re-fetched per frame
		convActLocality = 0.08 // conv activations actually crossing DRAM
		miscLocality    = 0.20 // pooling/LRN/copy traffic surviving the L2
	)
	var total float64
	for _, l := range e.Launches {
		acts := float64(l.Spec.MemBytes - l.Spec.WeightBytes)
		switch l.Spec.V.Family {
		case kernels.FamHMMAConv, kernels.FamWinograd, kernels.FamCUDAConv,
			kernels.FamGEMM, kernels.FamDepthwise:
			total += float64(l.Spec.WeightBytes)*weightResidency + acts*convActLocality
		default:
			total += acts * miscLocality
		}
	}
	return total
}

// PerThreadMemBytes is the RAM footprint of one concurrent inference
// thread: a per-stream base allocation (CUDA stream state, staging
// buffers) plus a per-kernel workspace binding.
func (e *Engine) PerThreadMemBytes() float64 {
	const (
		perStreamBase    = 112e6
		perLaunchWorkspc = 2.85e6
	)
	return perStreamBase + float64(len(e.Launches))*perLaunchWorkspc
}

// hostPerFrameSec is the serialized host-side cost per frame: kernel
// submission for each launch plus fixed pre/post-processing.
func (e *Engine) hostPerFrameSec(dev *gpusim.Device) float64 {
	const fixedHost = 2.2e-3
	return fixedHost + float64(len(e.Launches))*dev.LaunchOverheadSec()
}

// StreamLoad derives the concurrency-model load of this engine on a
// device (paper Figures 3-4).
func (e *Engine) StreamLoad(dev *gpusim.Device) gpusim.StreamLoad {
	return gpusim.StreamLoad{
		PerFrameGPUSec:    e.GPUTimeSec(dev),
		PerFrameHostSec:   e.hostPerFrameSec(dev),
		PerFrameDRAMBytes: e.DRAMBytesPerFrame(),
		PerThreadMemBytes: e.PerThreadMemBytes(),
		LaunchCount:       len(e.Launches),
	}
}

// Infer runs the engine numerically on an input tensor, using each
// layer's selected kernel variant so that accumulation order and rounding
// match the tuned plan. Only numeric engines (built from proxies with
// materialized weights) support this. It is InferFaulty on a pristine
// device (no injector).
func (e *Engine) Infer(x *tensor.Tensor) ([]*tensor.Tensor, error) {
	return e.InferFaulty(x, nil)
}

// inferConv executes a conv layer for one image, drawing weight
// corruption from the injector. The batch path corrupts once per layer
// and calls convApply directly.
func (e *Engine) inferConv(l *graph.Layer, acts map[string]*tensor.Tensor, fi FaultInjector, ar *tensorArena) (*tensor.Tensor, error) {
	w, b := l.Weights["w"], l.Weights["b"]
	if w == nil {
		return nil, fmt.Errorf("conv %s has no weights", l.Name)
	}
	if fi != nil {
		w = fi.CorruptWeights(l.Name, "w", w)
	}
	return e.convApply(l, acts, w, b, ar)
}

// convApply runs a conv layer with already-resolved (possibly corrupted)
// weights. The output and the INT8 fake-quant copy come from the arena;
// the quant copy goes back as soon as the kernel has consumed it.
func (e *Engine) convApply(l *graph.Layer, acts map[string]*tensor.Tensor, w, b *tensor.Tensor, ar *tensorArena) (*tensor.Tensor, error) {
	src := acts[l.Inputs[0]]
	in := e.quantInput(l.Inputs[0], acts, ar)
	v, ok := e.Choices[l.Name]
	if !ok {
		v = kernels.UnoptimizedConv()
	}
	f := e.Fusions[l.Name]
	// The kernel's fused epilogue handles plain ReLU; other activations
	// are applied after (still one launch — epilogue code).
	execV := v
	execV.FusedAct = f.Act == ActReLU
	var y *tensor.Tensor
	var err error
	if oh, ow, ok := convOutShape(in, l.Conv); ok {
		y = ar.get(in.N, l.Conv.OutC, oh, ow)
		if err = kernels.ExecConvInto(execV, in, w, b, l.Conv, y); err != nil {
			ar.put(y)
			y = nil
		}
	} else {
		// Degenerate geometry: let the validating path produce the
		// canonical error (it cannot succeed).
		y, err = kernels.ExecConv(execV, in, w, b, l.Conv)
	}
	if in != src {
		ar.put(in)
	}
	if err != nil {
		return nil, err
	}
	out := applyEpilogue(y, f)
	if out != y {
		ar.put(y)
	}
	return out, nil
}

// convOutShape sizes a conv output, reporting false for degenerate
// parameters (which the exec path rejects with the canonical error).
func convOutShape(in *tensor.Tensor, p tensor.ConvParams) (oh, ow int, ok bool) {
	if in == nil || p.Kernel < 1 || p.Stride < 1 || p.Pad < 0 || p.OutC < 1 {
		return 0, 0, false
	}
	oh = tensor.ConvOutDim(in.H, p.Kernel, p.Stride, p.Pad)
	ow = tensor.ConvOutDim(in.W, p.Kernel, p.Stride, p.Pad)
	return oh, ow, oh >= 1 && ow >= 1
}

// inferFC executes an FC layer for one image; see inferConv.
func (e *Engine) inferFC(l *graph.Layer, acts map[string]*tensor.Tensor, fi FaultInjector, ar *tensorArena) (*tensor.Tensor, error) {
	w, b := l.Weights["w"], l.Weights["b"]
	if w == nil {
		return nil, fmt.Errorf("fc %s has no weights", l.Name)
	}
	if fi != nil {
		w = fi.CorruptWeights(l.Name, "w", w)
	}
	return e.fcApply(l, acts, w, b, ar)
}

// fcApply runs an FC layer with already-resolved weights; see convApply.
func (e *Engine) fcApply(l *graph.Layer, acts map[string]*tensor.Tensor, w, b *tensor.Tensor, ar *tensorArena) (*tensor.Tensor, error) {
	src := acts[l.Inputs[0]]
	in := e.quantInput(l.Inputs[0], acts, ar)
	v, ok := e.Choices[l.Name]
	if !ok {
		v = kernels.Variant{Family: kernels.FamGEMM, TileM: 128, TileN: 64, TileK: 32, Precision: tensor.FP32}
	}
	f := e.Fusions[l.Name]
	execV := v
	execV.FusedAct = f.Act == ActReLU
	var y *tensor.Tensor
	var err error
	if in != nil && l.OutUnits >= 1 {
		y = ar.get(in.N, l.OutUnits, 1, 1)
		if err = kernels.ExecFCInto(execV, in, w, b, l.OutUnits, y); err != nil {
			ar.put(y)
			y = nil
		}
	} else {
		y, err = kernels.ExecFC(execV, in, w, b, l.OutUnits)
	}
	if in != src {
		ar.put(in)
	}
	if err != nil {
		return nil, err
	}
	out := applyEpilogue(y, f)
	if out != y {
		ar.put(y)
	}
	return out, nil
}

// quantInput applies INT8 fake-quantization to a kernel's input
// activation using the calibrated range of its producer layer. The
// quantized copy is drawn from the arena (every element is overwritten);
// the caller releases it once the kernel has consumed it.
func (e *Engine) quantInput(producer string, acts map[string]*tensor.Tensor, ar *tensorArena) *tensor.Tensor {
	in := acts[producer]
	if e.Precision != tensor.INT8 || e.Int8Ranges == nil || in == nil {
		return in
	}
	rangeMax := e.Int8Ranges[producer]
	if rangeMax <= 0 {
		return in
	}
	scale := rangeMax / 127
	out := ar.get(in.N, in.C, in.H, in.W)
	for i, v := range in.Data {
		out.Data[i] = tensor.DequantizeINT8(tensor.QuantizeINT8(v, scale), scale)
	}
	return out
}

// applyEpilogue applies non-ReLU fused activations.
func applyEpilogue(y *tensor.Tensor, f Fusion) *tensor.Tensor {
	switch f.Act {
	case ActLeaky:
		return tensor.LeakyReLU(y, f.LeakyAlpha)
	case ActSigmoid:
		return tensor.Sigmoid(y)
	default:
		return y
	}
}

// --- un-optimized baseline -------------------------------------------------

// UnoptimizedRun prices one inference of the un-optimized model: the
// training framework's GPU path — FP32 generic kernels, one per layer, no
// fusion, framework dispatch and synchronization between layers. This is
// the baseline of the paper's Tables III, IV and VII.
func UnoptimizedRun(g *graph.Graph, dev *gpusim.Device) float64 {
	// The framework's direct FP32 kernels reach a small fraction of the
	// tactic-tuned library's efficiency, and every layer pays a dispatch
	// + synchronization cost on the host.
	const (
		frameworkSlowdown = 4.5
		perLayerSyncSec   = 1.2e-3
	)
	var total float64
	layers := 0
	for _, l := range g.Layers {
		if l.Op == graph.OpInput {
			continue
		}
		layers++
		switch l.Op {
		case graph.OpConv:
			d := convDims(g, l)
			ls := kernels.PlanConv(kernels.UnoptimizedConv(), d)
			total += ls.TimeSec(dev) * frameworkSlowdown
		case graph.OpFC:
			d := fcDims(g, l)
			v := kernels.Variant{Family: kernels.FamGEMM, TileM: 128, TileN: 64, TileK: 32, Precision: tensor.FP32}
			ls := kernels.PlanConv(v, d)
			total += ls.TimeSec(dev) * frameworkSlowdown
		default:
			if ls, ok := simpleLaunch(g, l, tensor.FP32); ok {
				total += ls.TimeSec(dev) * frameworkSlowdown
			}
		}
	}
	return total + float64(layers)*perLayerSyncSec
}

// UnoptimizedInfer runs the un-optimized model numerically: the FP32
// reference executor on the original (uncompressed, unpruned) graph.
func UnoptimizedInfer(g *graph.Graph, x *tensor.Tensor) ([]*tensor.Tensor, error) {
	return g.Execute(x)
}
