package core

import (
	"errors"
	"testing"

	"edgeinfer/internal/rtctx"
	"edgeinfer/internal/tensor"
)

// Every blessed cut must be a genuine single-tensor boundary: no layer
// before the boundary may feed a layer after the cut, and no graph
// output may sit in the front half.
func TestStageCutsAreSingleTensorBoundaries(t *testing.T) {
	e, err := Build(tinyNet(t), nxCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	g := e.Graph
	cuts := e.StageCuts()
	if len(cuts) == 0 {
		t.Fatal("tinynet has no valid cuts; expected at least the pre-FC boundary")
	}
	idx := map[string]int{}
	for i, l := range g.Layers {
		idx[l.Name] = i
	}
	for _, c := range cuts {
		if c < 1 || c >= len(g.Layers) {
			t.Fatalf("cut %d out of range (plan has %d layers)", c, len(g.Layers))
		}
		for i, l := range g.Layers[:c-1] {
			for _, consumer := range g.Consumers(l.Name) {
				if idx[consumer] >= c {
					t.Errorf("cut %d: layer %d (%s) feeds %s across the boundary", c, i, l.Name, consumer)
				}
			}
		}
		for _, o := range g.Outputs {
			if idx[o] < c-1 {
				t.Errorf("cut %d strands output %s in the front half", c, o)
			}
		}
	}
	// The skip region must be closed: relu1 feeds both projections, so no
	// cut may fall between proj1 and proj2.
	p1, ok1 := idx["proj1"]
	p2, ok2 := idx["proj2"]
	if ok1 && ok2 {
		lo, hi := p1, p2
		if lo > hi {
			lo, hi = hi, lo
		}
		for _, c := range cuts {
			if c > lo+1 && c <= hi {
				t.Errorf("cut %d falls inside the relu1 fan-out region (%d..%d)", c, lo, hi)
			}
		}
	}
}

// Chaining stage runs over every valid cut must reproduce the one-shot
// batched inference bit for bit — the property cluster failover leans
// on for its "never a wrong answer" guarantee.
func TestInferRangeChainMatchesInferBatch(t *testing.T) {
	e, err := Build(tinyNet(t), nxCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	xs := batchInputs(t, "stage-chain-x", 3)
	want, err := e.InferBatch(xs)
	if err != nil {
		t.Fatal(err)
	}
	n := len(e.Graph.Layers)
	for _, c := range e.StageCuts() {
		front, err := e.InferRangeCtx(nil, xs, 0, c, nil, nil, 0)
		if err != nil {
			t.Fatalf("cut %d front: %v", c, err)
		}
		boundary := make([]*tensor.Tensor, len(xs))
		for i := range front {
			if len(front[i]) != 1 {
				t.Fatalf("cut %d: front stage returned %d tensors, want the 1 boundary", c, len(front[i]))
			}
			boundary[i] = front[i][0]
		}
		back, err := e.InferRangeCtx(nil, boundary, c, n, nil, nil, 0)
		if err != nil {
			t.Fatalf("cut %d back: %v", c, err)
		}
		for i := range xs {
			sameBitsBatch(t, "cut", back[i], want[i])
		}
	}
}

// A three-stage chain across two cuts also matches (the hand-off tensor
// itself is a valid stage input).
func TestInferRangeThreeStageChain(t *testing.T) {
	e, err := Build(tinyNet(t), nxCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	cuts := e.StageCuts()
	if len(cuts) < 2 {
		t.Skip("tinynet yielded fewer than two cuts")
	}
	xs := batchInputs(t, "stage-chain3-x", 2)
	want, err := e.InferBatch(xs)
	if err != nil {
		t.Fatal(err)
	}
	bounds := []int{0, cuts[0], cuts[len(cuts)-1], len(e.Graph.Layers)}
	cur := xs
	var outs [][]*tensor.Tensor
	for s := 0; s+1 < len(bounds); s++ {
		res, err := e.InferRangeCtx(nil, cur, bounds[s], bounds[s+1], nil, nil, 0)
		if err != nil {
			t.Fatalf("stage [%d,%d): %v", bounds[s], bounds[s+1], err)
		}
		if s+2 < len(bounds) {
			next := make([]*tensor.Tensor, len(res))
			for i := range res {
				next[i] = res[i][0]
			}
			cur = next
		} else {
			outs = res
		}
	}
	for i := range xs {
		sameBitsBatch(t, "three-stage", outs[i], want[i])
	}
}

// A hopeless budget aborts inside the stage's own range with
// ErrBudgetExhausted; burnedSec from upstream hops counts against it.
func TestInferRangeCtxBudgetAbort(t *testing.T) {
	e, err := Build(tinyNet(t), nxCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	cuts := e.StageCuts()
	if len(cuts) == 0 {
		t.Fatal("no cuts")
	}
	c := cuts[len(cuts)-1]
	xs := batchInputs(t, "stage-budget-x", 1)
	front, err := e.InferRangeCtx(nil, xs, 0, c, nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx := rtctx.WithBudget(1e-9)
	_, err = e.InferRangeCtx(ctx, []*tensor.Tensor{front[0][0]}, c, len(e.Graph.Layers), nil, testDevice(), 0)
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("1ns budget on the back stage: err=%v, want ErrBudgetExhausted", err)
	}
	// An ample budget with upstream burn already past it aborts too.
	ample := rtctx.WithBudget(10)
	_, err = e.InferRangeCtx(ample, []*tensor.Tensor{front[0][0]}, c, len(e.Graph.Layers), nil, testDevice(), 11)
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("burned-out budget: err=%v, want ErrBudgetExhausted", err)
	}
}

// Stage weight attribution partitions the engine total, and every cut
// moves a positive payload.
func TestStageWeightAndBoundaryBytes(t *testing.T) {
	e, err := Build(tinyNet(t), nxCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	n := len(e.Graph.Layers)
	for _, c := range e.StageCuts() {
		if got := e.StageWeightBytes(0, c) + e.StageWeightBytes(c, n); got != e.WeightBytes() {
			t.Errorf("cut %d: stage weights sum %d, engine total %d", c, got, e.WeightBytes())
		}
		if e.BoundaryBytes(c) <= 0 {
			t.Errorf("cut %d: boundary moves %d bytes", c, e.BoundaryBytes(c))
		}
	}
	if e.BoundaryBytes(0) != 0 || e.BoundaryBytes(n) != 0 {
		t.Error("out-of-range boundary positions must price to zero")
	}
}
