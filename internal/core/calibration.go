package core

import (
	"fmt"
	"math"
	"sort"

	"edgeinfer/internal/graph"
	"edgeinfer/internal/tensor"
)

// INT8 calibration. TensorRT's INT8 mode needs per-tensor activation
// dynamic ranges collected by running a calibration set through the
// FP32 network (the paper's optimization step 4 covers "8 bit integers";
// its experiments use FP16 engines, so this path is an extension
// reproducing the full quantization pipeline).

// Calibrator produces per-layer activation scales (the symmetric INT8
// step size) for a finalized FP32 graph.
type Calibrator interface {
	// Ranges returns layer name -> activation max-abs range.
	Ranges(g *graph.Graph) (map[string]float32, error)
}

// MaxAbsCalibrator calibrates each layer's range to the maximum absolute
// activation observed over the calibration images (TensorRT's "legacy"
// calibrator).
type MaxAbsCalibrator struct {
	Images []*tensor.Tensor
}

// Ranges implements Calibrator.
func (c MaxAbsCalibrator) Ranges(g *graph.Graph) (map[string]float32, error) {
	return collectRanges(g, c.Images, func(vals []float32) float32 {
		var m float32
		for _, v := range vals {
			if a := abs32(v); a > m {
				m = a
			}
		}
		return m
	})
}

// PercentileCalibrator clips each layer's range to the given percentile
// of absolute activations (robust to outliers, like TensorRT's entropy
// calibrator in effect).
type PercentileCalibrator struct {
	Images []*tensor.Tensor
	Pct    float64 // e.g. 99.9
}

// Ranges implements Calibrator.
func (c PercentileCalibrator) Ranges(g *graph.Graph) (map[string]float32, error) {
	pct := c.Pct
	if pct <= 0 || pct > 100 {
		pct = 99.9
	}
	return collectRanges(g, c.Images, func(vals []float32) float32 {
		abs := make([]float64, len(vals))
		for i, v := range vals {
			abs[i] = float64(abs32(v))
		}
		sort.Float64s(abs)
		idx := int(pct / 100 * float64(len(abs)-1))
		return float32(abs[idx])
	})
}

// collectRanges runs the calibration images through the reference
// executor, gathering every layer's activations and reducing them.
func collectRanges(g *graph.Graph, images []*tensor.Tensor, reduce func([]float32) float32) (map[string]float32, error) {
	if len(images) == 0 {
		return nil, fmt.Errorf("core: calibration needs at least one image")
	}
	acc := map[string][]float32{}
	for _, img := range images {
		acts, err := executeAll(g, img)
		if err != nil {
			return nil, fmt.Errorf("core: calibration pass: %w", err)
		}
		for name, t := range acts {
			acc[name] = append(acc[name], t.Data...)
		}
	}
	out := make(map[string]float32, len(acc))
	for name, vals := range acc {
		r := reduce(vals)
		if r <= 0 || math.IsNaN(float64(r)) {
			r = 1
		}
		out[name] = r
	}
	return out, nil
}

// executeAll runs the reference executor and returns every layer's
// activation tensor.
func executeAll(g *graph.Graph, x *tensor.Tensor) (map[string]*tensor.Tensor, error) {
	acts := map[string]*tensor.Tensor{}
	for _, l := range g.Layers {
		var y *tensor.Tensor
		var err error
		if l.Op == graph.OpInput {
			y = x
		} else {
			ins := make([]*tensor.Tensor, len(l.Inputs))
			for i, name := range l.Inputs {
				ins[i] = acts[name]
			}
			y, err = graph.EvalLayer(l, ins)
			if err != nil {
				return nil, err
			}
		}
		acts[l.Name] = y
	}
	return acts, nil
}

// fakeQuantActivation quantize-dequantizes an activation tensor with the
// calibrated range — what INT8 inference does to every tensor flowing
// between kernels.
func fakeQuantActivation(t *tensor.Tensor, rangeMax float32) *tensor.Tensor {
	if rangeMax <= 0 {
		return t
	}
	scale := rangeMax / 127
	out := t.Clone()
	for i, v := range out.Data {
		out.Data[i] = tensor.DequantizeINT8(tensor.QuantizeINT8(v, scale), scale)
	}
	return out
}

func abs32(v float32) float32 {
	if v < 0 {
		return -v
	}
	return v
}
