package core

import (
	"sync"

	"edgeinfer/internal/tensor"
)

// tensorArena is a shape-keyed free list of activation buffers. Repeated
// inference through an engine allocates the same ladder of intermediate
// tensor shapes every time; recycling them removes nearly all steady-state
// GC churn from Engine.Infer. Buffers come back from get with stale
// contents — every consumer (ExecConvInto/ExecFCInto, the fake-quant
// copy) overwrites every element.
//
// The arena is safe for concurrent use: get removes a buffer from the
// free list before handing it out, so two inferences running on the same
// engine never share a buffer.
type tensorArena struct {
	mu   sync.Mutex
	free map[[4]int][]*tensor.Tensor
}

// arenaMaxPerShape caps how many idle buffers of one shape the arena
// retains, bounding resident memory under concurrent inference bursts.
const arenaMaxPerShape = 8

func newTensorArena() *tensorArena {
	return &tensorArena{free: map[[4]int][]*tensor.Tensor{}}
}

// get returns a buffer of the given shape, recycled if one is free.
// Steady state hits the free list; the tensor.New calls are the warm-up
// miss path.
//
//rt:hotpath
func (a *tensorArena) get(n, c, h, w int) *tensor.Tensor {
	if a == nil {
		return tensor.New(n, c, h, w)
	}
	k := [4]int{n, c, h, w}
	a.mu.Lock()
	if ts := a.free[k]; len(ts) > 0 {
		t := ts[len(ts)-1]
		ts[len(ts)-1] = nil
		a.free[k] = ts[:len(ts)-1]
		a.mu.Unlock()
		return t
	}
	a.mu.Unlock()
	return tensor.New(n, c, h, w)
}

// put returns a buffer to the free list. The caller must not retain any
// reference to t afterwards.
//
//rt:hotpath
func (a *tensorArena) put(t *tensor.Tensor) {
	if a == nil || t == nil {
		return
	}
	k := [4]int{t.N, t.C, t.H, t.W}
	a.mu.Lock()
	if len(a.free[k]) < arenaMaxPerShape {
		a.free[k] = append(a.free[k], t)
	}
	a.mu.Unlock()
}

// releaseActs returns every arena-owned intermediate of one inference,
// keeping the graph outputs (which the caller now owns) and the caller's
// input. Pass-through layers (dropout, single-input add) alias earlier
// activations, so buffers are deduplicated by pointer before release.
// Deduplication marks visited buffers in the caller's keep map instead
// of allocating a per-call set.
//
//rt:hotpath
func (a *tensorArena) releaseActs(owned []*tensor.Tensor, keep map[*tensor.Tensor]bool) {
	for _, t := range owned {
		if t == nil || keep[t] {
			continue
		}
		keep[t] = true // released: later aliases of t must not double-free
		a.put(t)
	}
}
