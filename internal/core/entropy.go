package core

import (
	"fmt"
	"math"

	"edgeinfer/internal/graph"
	"edgeinfer/internal/tensor"
)

// EntropyCalibrator implements TensorRT's INT8 entropy calibration: for
// each layer it histograms the absolute activations and chooses the
// clipping range whose quantized distribution minimizes the KL
// divergence from the original — clipping rare outliers when doing so
// preserves more of the distribution's information.
type EntropyCalibrator struct {
	Images []*tensor.Tensor
	// Bins is the histogram resolution (default 2048, TensorRT's value).
	Bins int
}

// Ranges implements Calibrator.
func (c EntropyCalibrator) Ranges(g *graph.Graph) (map[string]float32, error) {
	if len(c.Images) == 0 {
		return nil, fmt.Errorf("core: entropy calibration needs at least one image")
	}
	bins := c.Bins
	if bins <= 0 {
		bins = 2048
	}
	// First pass: max-abs per layer to size the histograms.
	maxAbs, err := collectRanges(g, c.Images, func(vals []float32) float32 {
		var m float32
		for _, v := range vals {
			if a := abs32(v); a > m {
				m = a
			}
		}
		return m
	})
	if err != nil {
		return nil, err
	}
	// Second pass: histogram per layer.
	hists := map[string][]float64{}
	for _, img := range c.Images {
		acts, err := executeAll(g, img)
		if err != nil {
			return nil, err
		}
		for name, t := range acts {
			h := hists[name]
			if h == nil {
				h = make([]float64, bins)
				hists[name] = h
			}
			m := maxAbs[name]
			if m <= 0 {
				continue
			}
			for _, v := range t.Data {
				idx := int(float64(abs32(v)) / float64(m) * float64(bins))
				if idx >= bins {
					idx = bins - 1
				}
				h[idx]++
			}
		}
	}
	out := make(map[string]float32, len(hists))
	for name, h := range hists {
		cut := bestKLCut(h)
		out[name] = maxAbs[name] * float32(cut) / float32(len(h))
		if out[name] <= 0 {
			out[name] = 1
		}
	}
	return out, nil
}

// bestKLCut scans candidate clipping bins and returns the one minimizing
// the KL divergence between the original distribution (clipped at the
// cut, outliers folded into the last bin) and its 128-level quantized
// reconstruction — the core of TensorRT's entropy calibrator.
func bestKLCut(hist []float64) int {
	const levels = 128
	bins := len(hist)
	best, bestCut := math.Inf(1), bins
	for cut := levels; cut <= bins; cut += levels / 2 {
		kl := klForCut(hist, cut, levels)
		if kl < best {
			best, bestCut = kl, cut
		}
	}
	return bestCut
}

// klForCut computes the KL divergence of quantizing hist[:cut] (with the
// tail mass folded into the last kept bin) to the given level count.
func klForCut(hist []float64, cut, levels int) float64 {
	if cut > len(hist) {
		cut = len(hist)
	}
	p := make([]float64, cut)
	copy(p, hist[:cut])
	for _, v := range hist[cut:] {
		p[cut-1] += v // fold clipped outliers
	}
	// Quantize: merge bins into `levels` groups, then spread each
	// group's mass uniformly over its nonzero members.
	q := make([]float64, cut)
	group := cut / levels
	if group < 1 {
		group = 1
	}
	for start := 0; start < cut; start += group {
		end := start + group
		if end > cut {
			end = cut
		}
		var mass float64
		nonzero := 0
		for i := start; i < end; i++ {
			mass += p[i]
			if p[i] > 0 {
				nonzero++
			}
		}
		if nonzero == 0 {
			continue
		}
		share := mass / float64(nonzero)
		for i := start; i < end; i++ {
			if p[i] > 0 {
				q[i] = share
			}
		}
	}
	// KL(p || q) over normalized distributions.
	var sumP, sumQ float64
	for i := range p {
		sumP += p[i]
		sumQ += q[i]
	}
	if sumP == 0 || sumQ == 0 {
		return math.Inf(1)
	}
	var kl float64
	for i := range p {
		if p[i] == 0 {
			continue
		}
		pi := p[i] / sumP
		qi := q[i] / sumQ
		if qi == 0 {
			return math.Inf(1)
		}
		kl += pi * math.Log(pi/qi)
	}
	return kl
}
