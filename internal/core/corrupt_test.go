package core

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"testing"

	"edgeinfer/internal/gpusim"
	"edgeinfer/internal/models"
	"edgeinfer/internal/tensor"
)

// Plan files are untrusted input (they cross machines, like serialized
// TensorRT engines). These tests corrupt a real plan at every section
// boundary — magic, header length, header JSON, weight count, record
// length, record JSON, weight data — and assert Load always returns a
// clean error or a usable engine, never a panic and never an allocation
// driven by a hostile length field.

// savedPlan builds a small numeric engine and returns its serialized
// plan plus the parsed header length (the header spans [12, 12+hlen)).
func savedPlan(tb testing.TB) (plan []byte, hlen int) {
	tb.Helper()
	g, err := models.BuildProxy("resnet18", models.DefaultProxyOptions())
	if err != nil {
		tb.Fatal(err)
	}
	e, err := Build(g, DefaultConfig(gpusim.XavierNX(), 1))
	if err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		tb.Fatal(err)
	}
	plan = buf.Bytes()
	return plan, int(binary.LittleEndian.Uint32(plan[8:12]))
}

// mutateHeader rebuilds the plan with the header JSON edited in place.
func mutateHeader(tb testing.TB, plan []byte, hlen int, edit func(h map[string]any)) []byte {
	tb.Helper()
	var h map[string]any
	if err := json.Unmarshal(plan[12:12+hlen], &h); err != nil {
		tb.Fatal(err)
	}
	edit(h)
	hb, err := json.Marshal(h)
	if err != nil {
		tb.Fatal(err)
	}
	out := make([]byte, 0, len(plan))
	out = append(out, plan[:8]...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(hb)))
	out = append(out, hb...)
	out = append(out, plan[12+hlen:]...)
	return out
}

// loadNoPanic runs Load and converts any panic into a test failure.
func loadNoPanic(t *testing.T, data []byte) (*Engine, error) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("Load panicked: %v", r)
		}
	}()
	return Load(bytes.NewReader(data))
}

func TestLoadTruncatedAtEveryBoundary(t *testing.T) {
	plan, hlen := savedPlan(t)
	// Section boundaries: magic, hlen, header, wcount, first rlen, then
	// representative interior cuts of each section.
	cuts := []int{
		0, 3, 8, 10, // inside magic, inside hlen
		12, 12 + hlen/2, 12 + hlen, // header start, middle, end (= wcount start)
		12 + hlen + 2, 12 + hlen + 4, // inside wcount, first rlen
		12 + hlen + 6, // inside first record length/JSON
		len(plan) - 1, // inside the last weight's data
	}
	for _, cut := range cuts {
		if cut < 0 || cut >= len(plan) {
			t.Fatalf("cut %d outside plan of %d bytes", cut, len(plan))
		}
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			if _, err := loadNoPanic(t, plan[:cut]); err == nil {
				t.Fatalf("truncation at %d accepted", cut)
			}
		})
	}
}

func TestLoadBitFlippedAtEveryBoundary(t *testing.T) {
	plan, hlen := savedPlan(t)
	// One flipped bit at the start of every section. Structural sections
	// must error; a flip inside raw weight data yields a loadable (if
	// numerically wrong) plan — either way, never a panic, and a returned
	// engine must actually serve inference without panicking.
	offsets := []struct {
		name      string
		off       int
		mustError bool
	}{
		{"magic", 0, true},
		{"hlen", 8, false},       // may grow or shrink the claimed header
		{"header", 12, true},     // JSON with a flipped first byte
		{"wcount", 12 + hlen, false},
		{"rlen", 12 + hlen + 4, false},
		{"record", 12 + hlen + 8, false},
		{"weight-data", len(plan) - 4, false},
	}
	for _, tc := range offsets {
		t.Run(tc.name, func(t *testing.T) {
			bad := append([]byte(nil), plan...)
			bad[tc.off] ^= 0x10
			e, err := loadNoPanic(t, bad)
			if tc.mustError && err == nil {
				t.Fatalf("flip in %s accepted", tc.name)
			}
			if err == nil {
				if e == nil {
					t.Fatal("nil engine without error")
				}
				if e.Numeric {
					x := tensor.New(1, e.Graph.InputShape[1], e.Graph.InputShape[2], e.Graph.InputShape[3])
					if _, ierr := e.Infer(x); ierr != nil {
						t.Logf("corrupted engine infers with error (acceptable): %v", ierr)
					}
				}
			}
		})
	}
}

func TestLoadHostileLengthFields(t *testing.T) {
	plan, hlen := savedPlan(t)
	patch := func(off int, v uint32) []byte {
		bad := append([]byte(nil), plan...)
		binary.LittleEndian.PutUint32(bad[off:], v)
		return bad
	}
	cases := []struct {
		name string
		data []byte
	}{
		// Claims a header far past the limit: must be rejected up front.
		{"hlen-over-limit", patch(8, 1<<30)},
		// Claims a huge header within the limit over a truncated stream:
		// must fail from missing bytes, not allocate 64MB first.
		{"hlen-truncated", patch(8, maxHeaderBytes)},
		// Billions of weight records over an exhausted stream.
		{"wcount-hostile", patch(12+hlen, 0xffffffff)},
		// First record claims a length past the record limit.
		{"rlen-over-limit", patch(12+hlen+4, 0xffffffff)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := loadNoPanic(t, tc.data); err == nil {
				t.Fatalf("%s accepted", tc.name)
			}
		})
	}
}

// hostileHeaders are malformed topologies that graph.Add/Finalize would
// panic on if the loader passed them through unvalidated.
func hostileHeaders(tb testing.TB, plan []byte, hlen int) map[string][]byte {
	first := func(h map[string]any) map[string]any {
		return h["Layers"].([]any)[0].(map[string]any)
	}
	return map[string][]byte{
		"duplicate-layer": mutateHeader(tb, plan, hlen, func(h map[string]any) {
			ls := h["Layers"].([]any)
			ls[1].(map[string]any)["Name"] = first(h)["Name"]
		}),
		"layer-named-data": mutateHeader(tb, plan, hlen, func(h map[string]any) {
			first(h)["Name"] = "data"
		}),
		"unknown-input-ref": mutateHeader(tb, plan, hlen, func(h map[string]any) {
			first(h)["Inputs"] = []any{"no-such-layer"}
		}),
		"no-inputs": mutateHeader(tb, plan, hlen, func(h map[string]any) {
			first(h)["Inputs"] = []any{}
		}),
		"redeclared-input-op": mutateHeader(tb, plan, hlen, func(h map[string]any) {
			first(h)["Op"] = float64(0) // graph.OpInput
		}),
		"conv-zero-stride": mutateHeader(tb, plan, hlen, func(h map[string]any) {
			first(h)["Conv"].(map[string]any)["Stride"] = float64(0)
		}),
		"zero-input-shape": mutateHeader(tb, plan, hlen, func(h map[string]any) {
			h["InputShape"] = []any{float64(0), float64(3), float64(32), float64(32)}
		}),
		"giant-input-shape": mutateHeader(tb, plan, hlen, func(h map[string]any) {
			h["InputShape"] = []any{float64(1 << 20), float64(1 << 20), float64(1 << 20), float64(1)}
		}),
	}
}

func TestLoadHostileHeaders(t *testing.T) {
	plan, hlen := savedPlan(t)
	for name, data := range hostileHeaders(t, plan, hlen) {
		t.Run(name, func(t *testing.T) {
			if _, err := loadNoPanic(t, data); err == nil {
				t.Fatalf("hostile header %s accepted", name)
			}
		})
	}
}

// A weight record with a huge in-limit shape over a truncated stream
// must fail from the missing bytes without reserving the claimed size.
func TestLoadHostileWeightShape(t *testing.T) {
	plan, hlen := savedPlan(t)
	wcountOff := 12 + hlen
	rlenOff := wcountOff + 4
	rlen := int(binary.LittleEndian.Uint32(plan[rlenOff : rlenOff+4]))
	var rec weightRecord
	if err := json.Unmarshal(plan[rlenOff+4:rlenOff+4+rlen], &rec); err != nil {
		t.Fatal(err)
	}

	build := func(shape [4]int) []byte {
		rec := rec
		rec.Shape = shape
		rb, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		out := append([]byte(nil), plan[:wcountOff]...)
		out = binary.LittleEndian.AppendUint32(out, 1)
		out = binary.LittleEndian.AppendUint32(out, uint32(len(rb)))
		out = append(out, rb...)
		// No weight data follows: the stream ends here.
		return out
	}

	if _, err := loadNoPanic(t, build([4]int{1 << 14, 1 << 14, 1, 1})); err == nil {
		t.Fatal("giant truncated weight accepted")
	}
	if _, err := loadNoPanic(t, build([4]int{1 << 10, 1 << 10, 1 << 10, 1})); err == nil {
		t.Fatal("over-limit weight shape accepted")
	}
	if _, err := loadNoPanic(t, build([4]int{0, 1, 1, 1})); err == nil {
		t.Fatal("zero weight dim accepted")
	}
	if _, err := loadNoPanic(t, build([4]int{-1, 1, 1, 1})); err == nil {
		t.Fatal("negative weight dim accepted")
	}
}

// Round trip stays intact: a pristine save still loads and infers.
func TestSaveLoadRoundTripNumeric(t *testing.T) {
	plan, _ := savedPlan(t)
	e, err := loadNoPanic(t, plan)
	if err != nil {
		t.Fatal(err)
	}
	if !e.Numeric {
		t.Fatal("round-tripped proxy engine lost Numeric")
	}
	x := tensor.New(1, e.Graph.InputShape[1], e.Graph.InputShape[2], e.Graph.InputShape[3])
	if _, err := e.Infer(x); err != nil {
		t.Fatal(err)
	}
}
