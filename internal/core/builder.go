package core

import (
	"fmt"
	"math"
	"sort"

	"edgeinfer/internal/fixrand"
	"edgeinfer/internal/gpusim"
	"edgeinfer/internal/graph"
	"edgeinfer/internal/kernels"
	"edgeinfer/internal/tensor"
)

// BuildConfig parameterizes engine building.
type BuildConfig struct {
	// Platform is the device the engine is built on. Tactic timing runs
	// on this platform, so engines are platform-specific — NVIDIA
	// recommends building where you run (paper §IV-C).
	Platform gpusim.DeviceSpec
	// ClockMHz is the GPU clock during tactic timing (0 = max).
	ClockMHz float64
	// Precision selects the quantization target; the default is FP16,
	// matching the paper's engines.
	Precision tensor.Precision
	// BuildID distinguishes repeated builds of the same model: it seeds
	// the tuner's measurement noise, so different IDs reproduce the
	// paper's build-to-build non-determinism deterministically.
	BuildID int
	// TunerNoise is the relative sigma of tactic timing measurement
	// noise. Zero disables it (ablation: all non-determinism vanishes).
	// The default 0.08 reflects observed kernel-timing jitter on Jetson.
	TunerNoise float64
	// PruneFrac is the magnitude-pruning threshold as a fraction of each
	// weight tensor's RMS (model compression). Zero disables pruning.
	PruneFrac float64
	// Calibrator supplies per-layer activation ranges for INT8 builds of
	// numeric graphs. Required when Precision is INT8 and the graph has
	// materialized weights; ignored otherwise.
	Calibrator Calibrator
	// TimingCache, when non-nil, is consulted before any tactic is timed
	// and populated with every measurement taken. Warm entries are
	// returned as-is (no re-timing, no fresh noise), so builds served
	// entirely from the cache are reproducible regardless of BuildID and
	// TunerNoise — the paper's §VI-A remedy as a mechanism. Nil keeps
	// today's per-build noisy timing exactly.
	TimingCache *TimingCache
	// Predictor, when non-nil, pre-prunes the tuner's candidate menu: all
	// candidates are ranked by predicted latency and only the best
	// PredictTopK are actually timed on the device (MAPLE-Edge style).
	// Tactic choices are unchanged as long as the noisy winner ranks
	// inside the kept set — the default k is pinned zoo-wide by test and
	// by the cmd/predbench CI gate. A layer falls back to full timing
	// when any of its candidates cannot be predicted (unknown family or
	// the predictor's own confidence gate), counted in
	// PassStats.PredictorFallbacks.
	Predictor LatencyPredictor
	// PredictTopK is the number of top-ranked candidates the pruned tuner
	// still times per layer (0 selects DefaultPredictTopK). Ignored
	// without a Predictor.
	PredictTopK int
	// CanonicalWarmID stamps BuildID 0 on engines whose every tactic
	// came from the timing cache (see BuildReport.WarmBuild): warm
	// rebuilds then serialize byte-identically. Off by default so that
	// cache-assisted regeneration keeps stable build identities.
	CanonicalWarmID bool
	// DisablePasses names pipeline passes to skip (see DefaultPasses for
	// the vocabulary). Skipped passes appear in the BuildReport flagged
	// Disabled.
	DisablePasses []string
	// PassHook, when non-nil, observes each pass's stats as it completes.
	PassHook func(PassStats)
}

// DefaultConfig returns the standard FP16 build configuration for a
// platform.
func DefaultConfig(spec gpusim.DeviceSpec, buildID int) BuildConfig {
	return BuildConfig{
		Platform:   spec,
		Precision:  tensor.FP16,
		BuildID:    buildID,
		TunerNoise: 0.08,
		PruneFrac:  0.60,
	}
}

// Build runs the full optimization pipeline on a model graph and returns
// a deployable engine. The input graph is not modified. It is the
// default pass pipeline (DefaultPasses) honouring cfg.DisablePasses and
// cfg.PassHook; custom pipelines go through NewPassManager directly.
func Build(src *graph.Graph, cfg BuildConfig) (*Engine, error) {
	pm := NewPassManager(DefaultPasses()...).Disable(cfg.DisablePasses...)
	if cfg.PassHook != nil {
		pm.Hook(cfg.PassHook)
	}
	return pm.Build(src, cfg)
}

// hasWeights reports whether any layer has materialized weight tensors.
func hasWeights(g *graph.Graph) bool {
	for _, l := range g.Layers {
		for _, w := range l.Weights {
			if w != nil {
				return true
			}
		}
	}
	return false
}

// LatencyPredictor estimates the noise-free device time of a candidate
// kernel launch without running it. Implementations live outside core
// (internal/latpred trains one from TimingCache entries); core only
// consumes the interface, keeping the builder free of the training
// machinery. PredictSec returns ok=false when it cannot predict the
// launch confidently — the tuner then falls back to timing the layer's
// full candidate menu.
type LatencyPredictor interface {
	PredictSec(dev *gpusim.Device, ls kernels.LaunchSpec) (secs float64, ok bool)
}

// DefaultPredictTopK is the pruned tuner's default kept-candidate count.
// It is chosen so that zoo-wide tactic choices match unpruned builds:
// the tuner's noise streams are pure functions of (engine, layer,
// candidate) — independent of which other candidates are timed — so
// pruning preserves the choice exactly when the noisy winner ranks
// inside the kept set. k=4 holds that across the 13-model zoo over the
// pinned build ids (TestPrunedBuildChoicesUnchanged, cmd/predbench)
// while cutting the modeled tactic-timing cost by well over half.
const DefaultPredictTopK = 4

// predictGuardBand widens the pruner's keep set past the top-k: any
// candidate predicted within this factor of the k-th kept is timed
// anyway. 1.3 ≈ exp(0.25), one multiple of the predictor's default
// residual gate — a candidate inside the band is statistically
// indistinguishable from the kept set, so skipping it could flip a
// tactic choice.
const predictGuardBand = 1.3

// tuner times kernel candidates on the build device with multiplicative
// log-normal measurement noise — the root cause of engine
// non-determinism. With a timing cache attached, cached measurements are
// reused instead of re-timed, which both removes the noise resample and
// skips the (simulated) cost of running the candidate on the device.
type tuner struct {
	dev    *gpusim.Device
	noise  *fixrand.Source
	sigma  float64
	devKey string       // platform@clock — the cache's device component
	cache  *TimingCache // nil: always measure
	stats  *PassStats   // kernel-tuning instrumentation sink
	pred   LatencyPredictor
	topK   int
}

// newTuner seeds the measurement-noise stream from the engine key, as
// the original monolithic Build did, and binds the timing cache.
func newTuner(dev *gpusim.Device, e *Engine, cfg BuildConfig, stats *PassStats) *tuner {
	topK := cfg.PredictTopK
	if topK <= 0 {
		topK = DefaultPredictTopK
	}
	return &tuner{
		dev:    dev,
		noise:  fixrand.NewKeyed(fmt.Sprintf("tuner/%s", e.Key())),
		sigma:  cfg.TunerNoise,
		devKey: fmt.Sprintf("%s@%.0fMHz", cfg.Platform.Short(), dev.ClockMHz),
		cache:  cfg.TimingCache,
		stats:  stats,
		pred:   cfg.Predictor,
		topK:   topK,
	}
}

// Simulated cost of timing one tactic on the device: trtexec-style
// averaging iterations of the kernel itself plus per-candidate setup
// (allocation, cudaEventRecord, synchronization).
const (
	tuneItersPerTactic = 10
	tuneOverheadSec    = 100e-6
)

// measure returns the observed time of a launch: the timing-cache entry
// when one exists, else a fresh noisy measurement (inserted into the
// cache when one is attached). Two noise components model real tactic
// timing on a busy SoC: a per-(build, kernel-family) systematic bias —
// the thermal/clock state of the board during that build session skews
// whole tactic classes together — and per-(layer, symbol) jitter. The
// systematic part is what makes rebuilt engines differ *coherently* (one
// build shuns HMMA tiles everywhere), producing the paper's 10-35%
// engine-to-engine latency spreads.
func (t *tuner) measure(key string, d kernels.ConvDims, ls kernels.LaunchSpec) float64 {
	var ck string
	if t.cache != nil {
		ck = TimingKey(t.devKey, ls.V, d, ls.V.Precision)
		if obs, ok := t.cache.Lookup(ck); ok {
			// A cache hit is served, not timed: TacticsTimed counts only
			// measurements that actually ran on the (simulated) device.
			t.stats.CacheHits++
			return obs
		}
		t.stats.CacheMisses++
	}
	t.stats.TacticsTimed++
	base := ls.TimeSec(t.dev)
	t.stats.TuneCostSec += tuneItersPerTactic*base + tuneOverheadSec
	obs := base
	if t.sigma > 0 {
		sys := t.noise.Fork("family/" + ls.V.Family.String()).NormFloat64()
		jit := t.noise.Fork(key + "/" + ls.Symbol).NormFloat64()
		obs = base * math.Exp(sysSigma*sys+t.sigma*jit)
	}
	if t.cache != nil {
		t.cache.Insert(ck, obs)
	}
	return obs
}

// sysSigma is the per-build systematic tactic-timing bias.
const sysSigma = 0.10

// pickConv selects the fastest-measured conv variant for the dims.
func (t *tuner) pickConv(layer string, d kernels.ConvDims, prec tensor.Precision) (kernels.Variant, kernels.LaunchSpec) {
	return t.pick(layer, d, kernels.ConvCandidates(d, prec))
}

// pickGEMM selects the fastest-measured FC variant.
func (t *tuner) pickGEMM(layer string, d kernels.ConvDims, prec tensor.Precision) (kernels.Variant, kernels.LaunchSpec) {
	return t.pick(layer, d, kernels.GEMMCandidates(d, prec))
}

func (t *tuner) pick(layer string, d kernels.ConvDims, cands []kernels.Variant) (kernels.Variant, kernels.LaunchSpec) {
	t.stats.TacticsConsidered += len(cands)
	specs := make([]kernels.LaunchSpec, len(cands))
	for i, v := range cands {
		specs[i] = kernels.PlanConv(v, d)
	}
	keep := t.prune(layer, specs)
	best := math.Inf(1)
	var bv kernels.Variant
	var bs kernels.LaunchSpec
	for _, i := range keep {
		obs := t.measure(layer, d, specs[i])
		if obs < best {
			best, bv, bs = obs, cands[i], specs[i]
		}
	}
	return bv, bs
}

// prune ranks the layer's candidate launches by the time the tuner
// *would observe* for each — the predictor's base-latency estimate
// scaled by this build session's measurement-noise factor, which the
// tuner can reproduce exactly because its noise streams are pure
// functions of (engine, family, layer, symbol) — and returns the
// indices of the topK to time, in original menu order (ties in later
// measurement resolve first-seen, as in the unpruned tuner). Ranking by
// observed rather than base time matters: the per-build systematic
// family bias (sysSigma) coherently reorders whole tactic classes, so a
// base-time ranking would need a far larger k to keep the noisy winner
// inside the kept set. Without a predictor — or when any candidate
// cannot be predicted confidently — the full menu is returned: a
// wrong-but-confident predictor can only reorder which tactics get
// timed, never invent a measurement, so the failure mode of a bad model
// is a slower build, not a different engine.
func (t *tuner) prune(layer string, specs []kernels.LaunchSpec) []int {
	all := make([]int, len(specs))
	for i := range specs {
		all[i] = i
	}
	if t.pred == nil || len(specs) <= t.topK {
		return all
	}
	pred := make([]float64, len(specs))
	for i, ls := range specs {
		p, ok := t.pred.PredictSec(t.dev, ls)
		if !ok || !(p > 0) || math.IsInf(p, 0) {
			t.stats.PredictorFallbacks++
			return all
		}
		pred[i] = p * t.noiseFactor(layer, ls)
	}
	order := make([]int, len(specs))
	copy(order, all)
	sort.SliceStable(order, func(a, b int) bool { return pred[order[a]] < pred[order[b]] })
	// Keep the top-k, then widen by a guard band: any candidate whose
	// predicted-observed time sits within predictGuardBand of the k-th
	// kept is too close to call given the model's residual, so it gets
	// timed rather than trusted away. The band is what lets a small k
	// stay byte-identical: the true winner is only ever lost when the
	// model mis-ranks it *and* by a margin larger than its own error bar.
	cut := t.topK
	limit := pred[order[t.topK-1]] * predictGuardBand
	for cut < len(order) && pred[order[cut]] <= limit {
		cut++
	}
	keep := append([]int(nil), order[:cut]...)
	sort.Ints(keep) // restore menu order for tie-stability
	for _, i := range order[cut:] {
		t.stats.PredictedPrunes++
		// The saved cost is modeled from the predictor's own estimate of
		// the pruned candidate — computing the simulator's ground truth
		// here would amount to timing the tactic we just skipped.
		t.stats.PrunedTuneCostSavedSec += tuneItersPerTactic*pred[i] + tuneOverheadSec
	}
	return keep
}

// noiseFactor reproduces the multiplicative measurement-noise factor
// measure would apply to this candidate. Forking is a pure read of the
// seeded stream, so computing the factor here neither disturbs the
// tuner's noise state nor changes what measure later observes.
func (t *tuner) noiseFactor(layer string, ls kernels.LaunchSpec) float64 {
	if t.sigma <= 0 {
		return 1
	}
	sys := t.noise.Fork("family/" + ls.V.Family.String()).NormFloat64()
	jit := t.noise.Fork(layer + "/" + ls.Symbol).NormFloat64()
	return math.Exp(sysSigma*sys + t.sigma*jit)
}

// convDims extracts the implicit-GEMM dimensions of a conv layer.
func convDims(g *graph.Graph, l *graph.Layer) kernels.ConvDims {
	in := g.Layer(l.Inputs[0]).OutShape
	out := l.OutShape
	return kernels.ConvDims{
		Batch: in[0], InC: in[1], H: in[2], W: in[3],
		OutC: out[1], OutH: out[2], OutW: out[3],
		Kernel: l.Conv.Kernel, Stride: l.Conv.Stride, Groups: l.Conv.Groups,
	}
}

// fcDims extracts the GEMM dimensions of a fully-connected layer.
func fcDims(g *graph.Graph, l *graph.Layer) kernels.ConvDims {
	in := g.Layer(l.Inputs[0]).OutShape
	return kernels.ConvDims{
		Batch: in[0], InC: in[1] * in[2] * in[3], H: 1, W: 1,
		OutC: l.OutUnits, OutH: 1, OutW: 1, Kernel: 1, Stride: 1, Groups: 1,
	}
}

// planLaunches builds the ordered kernel plan: tuned tactics for conv/FC
// (with sibling 1x1 convolutions launched as the horizontal-merge pass's
// groups), and fixed kernels for everything else. Detection models get
// the cub radix-sort pair that ranks boxes before NMS. mergeLeader and
// mergeGroup come from the horizontal-merge pass; nil maps plan every
// layer individually.
func planLaunches(e *Engine, tn *tuner, cfg BuildConfig, mergeLeader map[string]string, mergeGroup map[string][]string) error {
	g := e.Graph
	planned := map[string]bool{}

	for _, l := range g.Layers {
		switch l.Op {
		case graph.OpInput, graph.OpFlatten, graph.OpDropout:
			continue

		case graph.OpConv:
			if planned[l.Name] {
				continue
			}
			group := []string{l.Name}
			if leader, ok := mergeLeader[l.Name]; ok {
				if leader != l.Name {
					continue // a later leader launch covers this layer
				}
				group = mergeGroup[l.Name]
			}
			d := convDims(g, l)
			if len(group) > 1 {
				// Merged launch: one kernel computes the concatenated
				// output channels of all group members.
				totalC := 0
				for _, name := range group {
					totalC += g.Layer(name).Conv.OutC
				}
				d.OutC = totalC
				e.MergedLaunches += len(group) - 1
			}
			v, ls := tn.pickConv(l.Name, d, cfg.Precision)
			for _, name := range group {
				e.Choices[name] = v
				planned[name] = true
			}
			e.Launches = append(e.Launches, Launch{Symbol: ls.Symbol, Layers: group, Spec: ls})

		case graph.OpFC:
			d := fcDims(g, l)
			v, ls := tn.pickGEMM(l.Name, d, cfg.Precision)
			e.Choices[l.Name] = v
			e.Launches = append(e.Launches, Launch{Symbol: ls.Symbol, Layers: []string{l.Name}, Spec: ls})

		default:
			ls, ok := simpleLaunch(g, l, cfg.Precision)
			if !ok {
				continue
			}
			e.Launches = append(e.Launches, Launch{Symbol: ls.Symbol, Layers: []string{l.Name}, Spec: ls})
		}
	}

	if g.Task == "detection" {
		// Output stage: segmented radix sort of candidate boxes (two cub
		// kernel launches, as nvprof shows for the paper's detectors).
		var boxes int64
		for _, name := range g.Outputs {
			s := g.Layer(name).OutShape
			boxes += int64(s[1]) * int64(s[2]) * int64(s[3])
		}
		if boxes > 0 {
			ls := kernels.PlanSort(boxes)
			e.Launches = append(e.Launches,
				Launch{Symbol: ls.Symbol + "1", Layers: []string{"nms"}, Spec: ls},
				Launch{Symbol: ls.Symbol + "2", Layers: []string{"nms"}, Spec: ls})
		}
	}
	return nil
}

// simpleLaunch prices the non-tuned ops.
func simpleLaunch(g *graph.Graph, l *graph.Layer, prec tensor.Precision) (kernels.LaunchSpec, bool) {
	out := l.OutShape
	outElems := int64(out[0]) * int64(out[1]) * int64(out[2]) * int64(out[3])
	var inElems int64
	for _, in := range l.Inputs {
		s := g.Layer(in).OutShape
		inElems += int64(s[0]) * int64(s[1]) * int64(s[2]) * int64(s[3])
	}
	switch l.Op {
	case graph.OpMaxPool, graph.OpAvgPool, graph.OpGlobalAvgPool:
		k := int64(l.Pool.Kernel)
		if l.Op == graph.OpGlobalAvgPool {
			k = 1
		}
		return kernels.PlanSimple(kernels.FamPool, prec, inElems, outElems, k*k), true
	case graph.OpLRN:
		// Cross-channel LRN re-reads a (size+1)-wide channel window per
		// output — a notorious bandwidth hog (GoogLeNet/AlexNet norm
		// layers), visible in the paper's Table XI as lrnForward.
		return kernels.PlanSimple(kernels.FamLRN, prec, inElems*int64(l.LRNSize+1), outElems, int64(l.LRNSize)*4), true
	case graph.OpReLU, graph.OpLeakyReLU, graph.OpSigmoid, graph.OpBatchNorm, graph.OpScale:
		return kernels.PlanSimple(kernels.FamActivation, prec, inElems, outElems, 2), true
	case graph.OpAdd:
		return kernels.PlanSimple(kernels.FamEltwise, prec, inElems, outElems, 1), true
	case graph.OpConcat, graph.OpUpsample:
		return kernels.PlanSimple(kernels.FamCopy, prec, inElems, outElems, 0), true
	case graph.OpSoftmax:
		return kernels.PlanSimple(kernels.FamSoftmax, prec, inElems, outElems, 5), true
	default:
		return kernels.LaunchSpec{}, false
	}
}

// horizontalGroups finds sibling 1x1 convolutions sharing one input with
// identical stride/groups — TensorRT's horizontal merging (Figure 2,
// step 3). Returns a layer->leader map and leader->members map; members
// are ordered deterministically.
func horizontalGroups(g *graph.Graph) (map[string]string, map[string][]string) {
	leader := map[string]string{}
	groups := map[string][]string{}
	for _, src := range g.Layers {
		var sibs []string
		for _, cname := range g.Consumers(src.Name) {
			c := g.Layer(cname)
			if c.Op == graph.OpConv && c.Conv.Kernel == 1 && c.Conv.Stride == 1 &&
				(c.Conv.Groups <= 1) && len(c.Inputs) == 1 {
				sibs = append(sibs, cname)
			}
		}
		if len(sibs) < 2 {
			continue
		}
		sort.Strings(sibs)
		for _, s := range sibs {
			leader[s] = sibs[0]
		}
		groups[sibs[0]] = sibs
	}
	return leader, groups
}
