package core

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"edgeinfer/internal/atomicfile"
	"edgeinfer/internal/graph"
	"edgeinfer/internal/kernels"
	"edgeinfer/internal/planlint"
	"edgeinfer/internal/tensor"
)

// Engine plan files: a magic tag, a JSON header describing the optimized
// graph and kernel plan, and a binary weight section. The analogue of a
// serialized TensorRT engine — and like one, a plan built on one platform
// can be deserialized and run on another (the paper's cNX_rAGX cases).

const planMagic = "EDGERT01"

// Deserialization limits: plan files are untrusted input, so header and
// tensor sizes are bounded before allocation (the largest real tensor in
// the zoo, VGG-16's fc6, is ~103M elements).
const (
	maxHeaderBytes = 64 << 20
	maxRecordBytes = 1 << 20
	maxTensorElems = 256 << 20
)

type planHeader struct {
	ModelName      string
	Platform       string
	BuildID        int
	Precision      tensor.Precision
	Numeric        bool
	RemovedLayers  int
	FusedLayers    int
	MergedLaunches int

	Framework  string
	Task       string
	InputShape [4]int
	Outputs    []string
	Layers     []planLayer

	Choices    map[string]kernels.Variant
	Fusions    map[string]Fusion
	Int8Ranges map[string]float32 `json:",omitempty"`
	Launches   []Launch
	Report     *BuildReport `json:",omitempty"`
}

type planLayer struct {
	Name     string
	Op       graph.OpType
	Inputs   []string
	Conv     tensor.ConvParams `json:",omitempty"`
	Pool     tensor.PoolParams `json:",omitempty"`
	OutUnits int               `json:",omitempty"`
	Alpha    float32           `json:",omitempty"`
	LRNSize  int               `json:",omitempty"`
	LRNBeta  float32           `json:",omitempty"`
	LRNK     float32           `json:",omitempty"`
}

type weightRecord struct {
	Layer string
	Key   string
	Shape [4]int
}

// Save serializes the engine to a writer. Before emitting a single byte
// it runs the static plan-IR verifier (planlint): a plan that fails
// verification is refused, so no malformed engine ever reaches disk.
func (e *Engine) Save(w io.Writer) error {
	if issues := e.VerifyPlan(); planlint.HasErrors(issues) {
		return fmt.Errorf("core: refusing to serialize %s: plan fails IR verification: %s",
			e.Key(), firstErrors(issues, 3))
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(planMagic); err != nil {
		return err
	}
	h := planHeader{
		ModelName: e.ModelName, Platform: e.Platform, BuildID: e.BuildID,
		Precision: e.Precision, Numeric: e.Numeric,
		RemovedLayers: e.RemovedLayers, FusedLayers: e.FusedLayers,
		MergedLaunches: e.MergedLaunches,
		Framework:      e.Graph.Framework, Task: e.Graph.Task,
		InputShape: e.Graph.InputShape, Outputs: e.Graph.Outputs,
		Choices: e.Choices, Fusions: e.Fusions, Launches: e.Launches,
		Int8Ranges: e.Int8Ranges, Report: e.Report,
	}
	for _, l := range e.Graph.Layers {
		if l.Op == graph.OpInput {
			continue
		}
		h.Layers = append(h.Layers, planLayer{
			Name: l.Name, Op: l.Op, Inputs: l.Inputs, Conv: l.Conv, Pool: l.Pool,
			OutUnits: l.OutUnits, Alpha: l.Alpha, LRNSize: l.LRNSize,
			LRNBeta: l.LRNBeta, LRNK: l.LRNK,
		})
	}
	hb, err := json.Marshal(h)
	if err != nil {
		return fmt.Errorf("core: marshal plan header: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(hb))); err != nil {
		return err
	}
	if _, err := bw.Write(hb); err != nil {
		return err
	}
	// Weight section. Keys are emitted in sorted order: ranging over the
	// weight map directly would leak map iteration order into the
	// serialized bytes, making byte-identical engines differ run to run.
	var weights []struct {
		rec weightRecord
		t   *tensor.Tensor
	}
	for _, l := range e.Graph.Layers {
		keys := make([]string, 0, len(l.Weights))
		for key := range l.Weights {
			keys = append(keys, key)
		}
		sort.Strings(keys)
		for _, key := range keys {
			if t := l.Weights[key]; t != nil {
				weights = append(weights, struct {
					rec weightRecord
					t   *tensor.Tensor
				}{weightRecord{Layer: l.Name, Key: key, Shape: t.Shape()}, t})
			}
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(weights))); err != nil {
		return err
	}
	for _, wr := range weights {
		rb, err := json.Marshal(wr.rec)
		if err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(rb))); err != nil {
			return err
		}
		if _, err := bw.Write(rb); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, wr.t.Data); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// readBounded reads exactly n bytes in fixed-size chunks. Unlike a
// single make(n)+ReadFull, memory grows with the bytes actually present
// in the stream, so a hostile length field over a truncated file fails
// after a small allocation instead of reserving the full claimed size.
func readBounded(r io.Reader, n int64) ([]byte, error) {
	const chunk = 256 << 10
	buf := make([]byte, 0, min64(n, chunk))
	scratch := make([]byte, chunk)
	for int64(len(buf)) < n {
		want := min64(n-int64(len(buf)), chunk)
		if _, err := io.ReadFull(r, scratch[:want]); err != nil {
			return nil, err
		}
		buf = append(buf, scratch[:want]...)
	}
	return buf, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// validatePlanLayers checks a deserialized header's layer list against
// everything graph.Add would panic on: plans are untrusted input, so a
// malformed topology must surface as an error.
func validatePlanLayers(layers []planLayer) error {
	seen := map[string]bool{"data": true} // graph.New pre-adds the input layer
	for _, pl := range layers {
		if pl.Name == "" {
			return fmt.Errorf("core: plan layer with empty name")
		}
		if seen[pl.Name] {
			return fmt.Errorf("core: duplicate plan layer %q", pl.Name)
		}
		if pl.Op == graph.OpInput {
			return fmt.Errorf("core: plan layer %q redeclares the input", pl.Name)
		}
		if len(pl.Inputs) == 0 {
			return fmt.Errorf("core: plan layer %q has no inputs", pl.Name)
		}
		for _, in := range pl.Inputs {
			if !seen[in] {
				return fmt.Errorf("core: plan layer %q references unknown input %q", pl.Name, in)
			}
		}
		seen[pl.Name] = true
	}
	return nil
}

// validateInputShape bounds a deserialized input shape.
func validateInputShape(s [4]int) error {
	elems := int64(1)
	for _, d := range s {
		if d < 1 || int64(d) > maxTensorElems {
			return fmt.Errorf("core: plan input shape %v invalid", s)
		}
		elems *= int64(d)
		if elems > maxTensorElems {
			return fmt.Errorf("core: plan input shape %v too large", s)
		}
	}
	return nil
}

// decodedWeight is one weight tensor lifted out of the binary section.
type decodedWeight struct {
	rec  weightRecord
	data []float32
}

// decodePlan reads the structural sections of a plan stream — magic,
// header JSON, weight records — enforcing every length/shape bound, but
// without assembling a graph. Both the strict loader and the static plan
// verifier build on it.
func decodePlan(r io.Reader) (*planHeader, []decodedWeight, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(planMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, nil, fmt.Errorf("core: read plan magic: %w", err)
	}
	if string(magic) != planMagic {
		return nil, nil, fmt.Errorf("core: bad plan magic %q", magic)
	}
	var hlen uint32
	if err := binary.Read(br, binary.LittleEndian, &hlen); err != nil {
		return nil, nil, err
	}
	if hlen > maxHeaderBytes {
		return nil, nil, fmt.Errorf("core: plan header %d bytes exceeds limit", hlen)
	}
	hb, err := readBounded(br, int64(hlen))
	if err != nil {
		return nil, nil, fmt.Errorf("core: read plan header: %w", err)
	}
	var h planHeader
	if err := json.Unmarshal(hb, &h); err != nil {
		return nil, nil, fmt.Errorf("core: unmarshal plan header: %w", err)
	}
	var wcount uint32
	if err := binary.Read(br, binary.LittleEndian, &wcount); err != nil {
		return nil, nil, err
	}
	var weights []decodedWeight
	for i := uint32(0); i < wcount; i++ {
		var rlen uint32
		if err := binary.Read(br, binary.LittleEndian, &rlen); err != nil {
			return nil, nil, err
		}
		if rlen > maxRecordBytes {
			return nil, nil, fmt.Errorf("core: weight record %d bytes exceeds limit", rlen)
		}
		rb, err := readBounded(br, int64(rlen))
		if err != nil {
			return nil, nil, err
		}
		var rec weightRecord
		if err := json.Unmarshal(rb, &rec); err != nil {
			return nil, nil, err
		}
		elems := int64(1)
		for _, d := range rec.Shape {
			if d < 1 || int64(d) > maxTensorElems {
				return nil, nil, fmt.Errorf("core: weight shape %v invalid", rec.Shape)
			}
			elems *= int64(d)
			if elems > maxTensorElems {
				return nil, nil, fmt.Errorf("core: weight shape %v too large", rec.Shape)
			}
		}
		data, err := readFloat32s(br, elems)
		if err != nil {
			return nil, nil, fmt.Errorf("core: read weight %s/%s: %w", rec.Layer, rec.Key, err)
		}
		weights = append(weights, decodedWeight{rec: rec, data: data})
	}
	return &h, weights, nil
}

// graphFromHeader assembles the optimized graph from a decoded header
// through the error-returning graph API — a malformed topology surfaces
// as an error, never a panic.
func graphFromHeader(h *planHeader) (*graph.Graph, error) {
	g := graph.New(h.ModelName, h.InputShape)
	g.Framework, g.Task = h.Framework, h.Task
	for _, pl := range h.Layers {
		err := g.AddLayer(&graph.Layer{
			Name: pl.Name, Op: pl.Op, Inputs: pl.Inputs, Conv: pl.Conv, Pool: pl.Pool,
			OutUnits: pl.OutUnits, Alpha: pl.Alpha, LRNSize: pl.LRNSize,
			LRNBeta: pl.LRNBeta, LRNK: pl.LRNK,
		})
		if err != nil {
			return nil, fmt.Errorf("core: plan layer %q: %w", pl.Name, err)
		}
	}
	g.Outputs = h.Outputs
	return g, nil
}

// Load deserializes an engine plan. Plan files are untrusted input:
// truncated, bit-flipped or hostile plans return an error — never a
// panic, and never an allocation driven by an unvalidated length field.
func Load(r io.Reader) (*Engine, error) {
	h, weights, err := decodePlan(r)
	if err != nil {
		return nil, err
	}
	if err := validateInputShape(h.InputShape); err != nil {
		return nil, err
	}
	if err := validatePlanLayers(h.Layers); err != nil {
		return nil, err
	}
	g, err := graphFromHeader(h)
	if err != nil {
		return nil, err
	}
	// Weights are attached before Finalize so BN shape checks see them.
	for _, w := range weights {
		l := g.Layer(w.rec.Layer)
		if l == nil {
			return nil, fmt.Errorf("core: weight for unknown layer %q", w.rec.Layer)
		}
		l.Weights[w.rec.Key] = &tensor.Tensor{
			N: w.rec.Shape[0], C: w.rec.Shape[1], H: w.rec.Shape[2], W: w.rec.Shape[3],
			Data: w.data,
		}
	}
	if err := g.Finalize(); err != nil {
		return nil, fmt.Errorf("core: finalize loaded plan: %w", err)
	}
	return &Engine{
		ModelName: h.ModelName, Platform: h.Platform, BuildID: h.BuildID,
		Precision: h.Precision, Numeric: h.Numeric, Graph: g,
		Choices: h.Choices, Fusions: h.Fusions, Launches: h.Launches,
		Int8Ranges:    h.Int8Ranges,
		RemovedLayers: h.RemovedLayers, FusedLayers: h.FusedLayers,
		MergedLaunches: h.MergedLaunches, Report: h.Report,
	}, nil
}

// readFloat32s decodes elems little-endian float32 values, growing the
// result with the data actually read (see readBounded for the rationale).
func readFloat32s(r io.Reader, elems int64) ([]float32, error) {
	const chunkElems = 64 << 10
	data := make([]float32, 0, min64(elems, chunkElems))
	buf := make([]byte, chunkElems*4)
	for int64(len(data)) < elems {
		n := min64(elems-int64(len(data)), chunkElems)
		b := buf[:n*4]
		if _, err := io.ReadFull(r, b); err != nil {
			return nil, err
		}
		for i := int64(0); i < n; i++ {
			data = append(data, math.Float32frombits(binary.LittleEndian.Uint32(b[i*4:])))
		}
	}
	return data, nil
}

// SaveFile writes the engine plan to a file path. The write is
// crash-safe: the plan is serialized to memory first and published with
// an atomic rename, so an interrupted save never leaves a truncated
// plan for the hardened loader to reject.
func (e *Engine) SaveFile(path string) error {
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		return err
	}
	return atomicfile.WriteFile(path, buf.Bytes(), 0o644)
}

// LoadFile reads an engine plan from a file path.
func LoadFile(path string) (*Engine, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
