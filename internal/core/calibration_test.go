package core

import (
	"bytes"
	"math"
	"testing"

	"edgeinfer/internal/dataset"
	"edgeinfer/internal/fixrand"
	"edgeinfer/internal/gpusim"
	"edgeinfer/internal/kernels"
	"edgeinfer/internal/models"
	"edgeinfer/internal/tensor"
)

func calibImages(n int) []*tensor.Tensor {
	set := dataset.Benign(dataset.BenignConfig{Seed: "calib", Classes: 10, PerClass: (n + 9) / 10, NoiseSigma: 3.8})
	out := make([]*tensor.Tensor, 0, n)
	for i := 0; i < n && i < len(set); i++ {
		out = append(out, set[i].Image)
	}
	return out
}

func int8Config(buildID int, cal Calibrator) BuildConfig {
	cfg := DefaultConfig(gpusim.XavierNX(), buildID)
	cfg.Precision = tensor.INT8
	cfg.Calibrator = cal
	return cfg
}

func TestInt8BuildRequiresCalibrator(t *testing.T) {
	g, err := models.BuildProxy("resnet18", models.DefaultProxyOptions())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(gpusim.XavierNX(), 1)
	cfg.Precision = tensor.INT8
	if _, err := Build(g, cfg); err == nil {
		t.Fatal("INT8 numeric build without calibrator accepted")
	}
}

func TestInt8TimingOnlyNeedsNoCalibrator(t *testing.T) {
	g := models.MustBuild("resnet18") // no weights materialized
	cfg := DefaultConfig(gpusim.XavierNX(), 1)
	cfg.Precision = tensor.INT8
	e, err := Build(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if e.Numeric {
		t.Fatal("full-scale graph should be timing-only")
	}
}

func TestMaxAbsCalibratorRanges(t *testing.T) {
	g, err := models.BuildProxy("vgg16", models.DefaultProxyOptions())
	if err != nil {
		t.Fatal(err)
	}
	ranges, err := MaxAbsCalibrator{Images: calibImages(4)}.Ranges(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranges) < len(g.Layers)-1 {
		t.Fatalf("only %d ranges for %d layers", len(ranges), len(g.Layers))
	}
	for name, r := range ranges {
		if r <= 0 || math.IsNaN(float64(r)) {
			t.Fatalf("layer %s range %v", name, r)
		}
	}
}

func TestPercentileBelowMaxAbs(t *testing.T) {
	g, err := models.BuildProxy("vgg16", models.DefaultProxyOptions())
	if err != nil {
		t.Fatal(err)
	}
	images := calibImages(4)
	maxAbs, err := MaxAbsCalibrator{Images: images}.Ranges(g)
	if err != nil {
		t.Fatal(err)
	}
	pct, err := PercentileCalibrator{Images: images, Pct: 99}.Ranges(g)
	if err != nil {
		t.Fatal(err)
	}
	tighter := 0
	for name, m := range maxAbs {
		if pct[name] <= m {
			tighter++
		}
		if pct[name] > m+1e-5 {
			t.Fatalf("layer %s: percentile range %v exceeds maxabs %v", name, pct[name], m)
		}
	}
	if tighter == 0 {
		t.Fatal("percentile calibration never tightened a range")
	}
}

func TestCalibrationNeedsImages(t *testing.T) {
	g, _ := models.BuildProxy("vgg16", models.DefaultProxyOptions())
	if _, err := (MaxAbsCalibrator{}).Ranges(g); err == nil {
		t.Fatal("empty calibration set accepted")
	}
}

func TestInt8EngineAccuracyCloseToFP16(t *testing.T) {
	g, err := models.BuildProxy("resnet18", models.DefaultProxyOptions())
	if err != nil {
		t.Fatal(err)
	}
	fp16, err := Build(g, DefaultConfig(gpusim.XavierNX(), 1))
	if err != nil {
		t.Fatal(err)
	}
	int8, err := Build(g, int8Config(1, PercentileCalibrator{Images: calibImages(8), Pct: 99.9}))
	if err != nil {
		t.Fatal(err)
	}
	if int8.Int8Ranges == nil {
		t.Fatal("int8 engine missing ranges")
	}
	set := dataset.Benign(dataset.BenignConfig{Seed: "imagenet-proxy", Classes: 100, PerClass: 3, NoiseSigma: 3.8})
	agree, correct16, correct8 := 0, 0, 0
	for _, s := range set {
		o16, err := fp16.Infer(s.Image)
		if err != nil {
			t.Fatal(err)
		}
		o8, err := int8.Infer(s.Image)
		if err != nil {
			t.Fatal(err)
		}
		if o16[0].Argmax() == o8[0].Argmax() {
			agree++
		}
		if o16[0].Argmax() == s.Label {
			correct16++
		}
		if o8[0].Argmax() == s.Label {
			correct8++
		}
	}
	if float64(agree)/float64(len(set)) < 0.90 {
		t.Fatalf("INT8 agrees with FP16 on only %d/%d predictions", agree, len(set))
	}
	if float64(correct8) < 0.85*float64(correct16) {
		t.Fatalf("INT8 accuracy collapsed: %d vs FP16 %d of %d", correct8, correct16, len(set))
	}
}

func TestInt8RangesSurviveSerialization(t *testing.T) {
	g, _ := models.BuildProxy("resnet18", models.DefaultProxyOptions())
	e, err := Build(g, int8Config(2, MaxAbsCalibrator{Images: calibImages(2)}))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	e2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(e2.Int8Ranges) != len(e.Int8Ranges) {
		t.Fatal("ranges lost in serialization")
	}
	img := calibImages(1)[0]
	o1, err := e.Infer(img)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := e2.Infer(img)
	if err != nil {
		t.Fatal(err)
	}
	for i := range o1[0].Data {
		if o1[0].Data[i] != o2[0].Data[i] {
			t.Fatal("loaded INT8 engine computes differently")
		}
	}
}

func TestInt8KernelsFasterThanFP16(t *testing.T) {
	d := kernels.ConvDims{Batch: 1, InC: 256, H: 32, W: 32, OutC: 256, OutH: 32, OutW: 32, Kernel: 3, Stride: 1}
	dev := gpusim.NewDevice(gpusim.XavierNX(), 599)
	v16 := kernels.Variant{Family: kernels.FamHMMAConv, TileM: 128, TileN: 64, TileK: 64, Precision: tensor.FP16}
	v8 := v16
	v8.Precision = tensor.INT8
	t16 := kernels.PlanConv(v16, d).TimeSec(dev)
	t8 := kernels.PlanConv(v8, d).TimeSec(dev)
	if t8 >= t16 {
		t.Fatalf("INT8 kernel not faster: %v vs %v", t8, t16)
	}
}

func TestInt8EngineSmallerThanFP16(t *testing.T) {
	g := models.MustBuild("vgg16")
	cfg16 := DefaultConfig(gpusim.XavierNX(), 1)
	cfg8 := DefaultConfig(gpusim.XavierNX(), 1)
	cfg8.Precision = tensor.INT8
	e16, err := Build(g, cfg16)
	if err != nil {
		t.Fatal(err)
	}
	e8, err := Build(g, cfg8)
	if err != nil {
		t.Fatal(err)
	}
	if e8.WeightBytes() >= e16.WeightBytes() {
		t.Fatalf("INT8 weights %d not smaller than FP16 %d", e8.WeightBytes(), e16.WeightBytes())
	}
}

func TestFakeQuantBounded(t *testing.T) {
	src := fixrand.NewKeyed("fq")
	x := tensor.NewVec(256)
	for i := range x.Data {
		x.Data[i] = float32(src.NormFloat64()) * 3
	}
	q := fakeQuantActivation(x, 3)
	for i := range q.Data {
		diff := math.Abs(float64(q.Data[i] - clamp(x.Data[i], -3, 3)))
		if diff > 3.0/127/2+1e-6 {
			t.Fatalf("fake quant error %v at %d", diff, i)
		}
	}
	// zero range: identity
	q2 := fakeQuantActivation(x, 0)
	for i := range q2.Data {
		if q2.Data[i] != x.Data[i] {
			t.Fatal("zero range should be identity")
		}
	}
}

func clamp(v, lo, hi float32) float32 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func TestEntropyCalibratorRanges(t *testing.T) {
	g, err := models.BuildProxy("resnet18", models.DefaultProxyOptions())
	if err != nil {
		t.Fatal(err)
	}
	images := calibImages(4)
	ent, err := EntropyCalibrator{Images: images}.Ranges(g)
	if err != nil {
		t.Fatal(err)
	}
	maxAbs, err := MaxAbsCalibrator{Images: images}.Ranges(g)
	if err != nil {
		t.Fatal(err)
	}
	tighter := 0
	for name, m := range maxAbs {
		r := ent[name]
		if r <= 0 || r > m+1e-4 {
			t.Fatalf("layer %s: entropy range %v vs maxabs %v", name, r, m)
		}
		if r < m {
			tighter++
		}
	}
	if tighter == 0 {
		t.Fatal("entropy calibration never clipped an outlier")
	}
}

func TestEntropyCalibratorNeedsImages(t *testing.T) {
	g, _ := models.BuildProxy("vgg16", models.DefaultProxyOptions())
	if _, err := (EntropyCalibrator{}).Ranges(g); err == nil {
		t.Fatal("empty calibration set accepted")
	}
}

func TestInt8WithEntropyCalibration(t *testing.T) {
	g, err := models.BuildProxy("resnet18", models.DefaultProxyOptions())
	if err != nil {
		t.Fatal(err)
	}
	e, err := Build(g, int8Config(1, EntropyCalibrator{Images: calibImages(6)}))
	if err != nil {
		t.Fatal(err)
	}
	set := dataset.Benign(dataset.BenignConfig{Seed: "imagenet-proxy", Classes: 50, PerClass: 2, NoiseSigma: 3.8})
	correct := 0
	for _, s := range set {
		o, err := e.Infer(s.Image)
		if err != nil {
			t.Fatal(err)
		}
		if o[0].Argmax() == s.Label {
			correct++
		}
	}
	// Entropy-calibrated INT8 should classify comparably to FP16
	// (30-60% error regime, not collapsed).
	if float64(correct)/float64(len(set)) < 0.30 {
		t.Fatalf("entropy INT8 accuracy collapsed: %d/%d", correct, len(set))
	}
}
