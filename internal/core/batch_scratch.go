package core

import (
	"sync"

	"edgeinfer/internal/tensor"
)

// batchScratch is the reusable bookkeeping of one InferBatchFaulty call:
// per-image activation maps, the owned-buffer ledger the arena release
// walks, the keep set, and the per-layer input slice. Scratches are
// pooled so steady-state batched inference performs no bookkeeping
// allocation (the hotalloc analyzer verifies this statically; every
// tensor buffer itself comes from the engine's arena). A scratch is
// scrubbed of tensor references before it returns to the pool, so pooled
// scratches never extend activation lifetimes.
type batchScratch struct {
	acts  []map[string]*tensor.Tensor
	owned []*tensor.Tensor
	keep  map[*tensor.Tensor]bool
	ins   []*tensor.Tensor
}

var batchScratchPool = sync.Pool{New: func() any { return new(batchScratch) }}

// actMaps returns n empty per-image activation maps, reusing prior
// capacity. The maps are cleared on checkout rather than check-in so a
// scrub bug cannot leak one image's activations into the next batch.
//
//rt:hotpath
func (s *batchScratch) actMaps(n int) []map[string]*tensor.Tensor {
	if cap(s.acts) < n {
		s.acts = make([]map[string]*tensor.Tensor, n)
	}
	s.acts = s.acts[:n]
	for i := range s.acts {
		if s.acts[i] == nil {
			s.acts[i] = map[string]*tensor.Tensor{}
		} else {
			clear(s.acts[i])
		}
	}
	return s.acts
}

// keepSet returns the cleared keep map.
//
//rt:hotpath
func (s *batchScratch) keepSet() map[*tensor.Tensor]bool {
	if s.keep == nil {
		s.keep = map[*tensor.Tensor]bool{}
	}
	clear(s.keep)
	return s.keep
}

// ownedBuf returns the empty owned ledger; callers append to it and hand
// the grown slice back through release.
//
//rt:hotpath
func (s *batchScratch) ownedBuf() []*tensor.Tensor {
	return s.owned[:0]
}

// inputs returns the per-layer input slice resized to n.
//
//rt:hotpath
func (s *batchScratch) inputs(n int) []*tensor.Tensor {
	if cap(s.ins) < n {
		s.ins = make([]*tensor.Tensor, n)
	}
	return s.ins[:n]
}

// release scrubs every tensor reference out of the scratch (keeping the
// grown owned backing) and returns it to the pool.
//
//rt:hotpath
func (s *batchScratch) release(owned []*tensor.Tensor) {
	clear(owned)
	s.owned = owned[:0]
	clear(s.keep)
	clear(s.ins)
	for i := range s.acts {
		clear(s.acts[i])
	}
	batchScratchPool.Put(s)
}
