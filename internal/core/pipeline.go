package core

import (
	"fmt"

	"edgeinfer/internal/gpusim"
	"edgeinfer/internal/graph"
	"edgeinfer/internal/kernels"
	"edgeinfer/internal/tensor"
)

// The builder's optimization pipeline (paper Figure 2) as named,
// reorderable, individually-disableable passes. Build wires the default
// pipeline; NewPassManager lets ablations reorder or drop stages and
// still get a deployable engine plus a per-pass BuildReport.

// PassStats instruments one pipeline stage. Fields are zero where a
// counter does not apply to the pass.
type PassStats struct {
	Pass     string
	Disabled bool `json:",omitempty"`

	LayersRemoved    int `json:",omitempty"` // dead-layer-removal
	LayersFused      int `json:",omitempty"` // vertical-fusion
	LayersCalibrated int `json:",omitempty"` // int8-calibration
	TensorsQuantized int `json:",omitempty"` // quantization
	MergeGroups      int `json:",omitempty"` // horizontal-merge: sibling groups found
	MergedLaunches   int `json:",omitempty"` // kernel-tuning: launches saved by merging

	// Tactic-timing instrumentation (kernel-tuning pass). Every candidate
	// entering tactic selection is considered; it is then either pruned
	// by the latency predictor, served from the timing cache, or timed on
	// the device: TacticsConsidered == PredictedPrunes + CacheHits +
	// TacticsTimed (TestTunerStatsPartition pins the partition).
	TacticsConsidered int     `json:",omitempty"` // candidates entering tactic selection
	TacticsTimed      int     `json:",omitempty"` // measured on the device
	CacheHits         int     `json:",omitempty"` // served from the timing cache
	CacheMisses       int     `json:",omitempty"` // cache configured but entry absent
	TuneCostSec       float64 `json:",omitempty"` // simulated device time spent timing tactics

	// Learned-predictor pruning instrumentation (kernel-tuning pass).
	PredictedPrunes        int     `json:",omitempty"` // candidates skipped by predicted rank
	PredictorFallbacks     int     `json:",omitempty"` // layers timed in full (low confidence)
	PrunedTuneCostSavedSec float64 `json:",omitempty"` // modeled timing cost of skipped candidates
}

// BuildReport is the engine's build provenance: one PassStats per
// pipeline stage plus tactic-timing totals. It travels with the
// serialized plan.
type BuildReport struct {
	Passes []PassStats

	// Totals across passes.
	TacticsConsidered int
	TacticsTimed      int
	CacheHits         int
	CacheMisses       int
	// TuneCostSec is the simulated cost of the build's tactic timing
	// (the dominant term of a real trtexec build). Warm-cache builds
	// skip re-timing, so this is the mechanically-earned speedup.
	TuneCostSec float64

	// Learned-predictor pruning totals (see PassStats).
	PredictedPrunes        int     `json:",omitempty"`
	PredictorFallbacks     int     `json:",omitempty"`
	PrunedTuneCostSavedSec float64 `json:",omitempty"`

	// WarmBuild reports that a timing cache was configured and every
	// tactic came from it: the engine is a pure function of (model,
	// platform, precision, cache), independent of build id and noise.
	WarmBuild bool

	// ExpectedLatencySec is the noise-free plan latency on the build
	// device at the build clock (Engine.ExpectedLatencySec at build
	// time): the per-replica baseline a serving-side latency watchdog
	// compares observed run latencies against.
	ExpectedLatencySec float64 `json:",omitempty"`
}

// Pass returns the stats of a named pass, or nil if the pipeline did not
// contain it.
func (r *BuildReport) Pass(name string) *PassStats {
	for i := range r.Passes {
		if r.Passes[i].Pass == name {
			return &r.Passes[i]
		}
	}
	return nil
}

// PassContext is the mutable state a pass operates on: the engine under
// construction (whose Graph the passes rewrite) and the artifacts passes
// hand to later stages.
type PassContext struct {
	Cfg    BuildConfig
	Engine *Engine

	// MergeLeader/MergeGroups are produced by horizontal-merge and
	// consumed by kernel-tuning (empty when the merge pass is disabled).
	MergeLeader map[string]string
	MergeGroups map[string][]string

	// Int8Ranges are produced by int8-calibration and attached to the
	// engine for the runtime's quantized numeric path.
	Int8Ranges map[string]float32
}

// Pass is one named optimization stage of the builder pipeline.
type Pass interface {
	Name() string
	Run(pc *PassContext) (PassStats, error)
}

// Canonical pass names (the Disable / DisablePasses vocabulary).
const (
	PassDeadLayerRemoval = "dead-layer-removal"
	PassVerticalFusion   = "vertical-fusion"
	PassInt8Calibration  = "int8-calibration"
	PassQuantization     = "quantization"
	PassHorizontalMerge  = "horizontal-merge"
	PassKernelTuning     = "kernel-tuning"
)

// DefaultPasses returns the standard pipeline in the paper's Figure 2
// order: dead-layer removal, vertical fusion, INT8 calibration (on the
// still-FP32 fused graph), weight quantization, horizontal merging, and
// timing-based kernel tuning.
func DefaultPasses() []Pass {
	return []Pass{
		deadLayerPass{},
		verticalFusionPass{},
		calibrationPass{},
		quantizePass{},
		horizontalMergePass{},
		kernelTuningPass{},
	}
}

// PassManager runs a pass pipeline over a model graph.
type PassManager struct {
	passes   []Pass
	disabled map[string]bool
	hook     func(PassStats)
}

// NewPassManager assembles a pipeline from the given passes, in order.
func NewPassManager(passes ...Pass) *PassManager {
	return &PassManager{passes: passes, disabled: map[string]bool{}}
}

// Disable marks passes to be skipped (they still appear in the
// BuildReport, flagged Disabled). Unknown names error at Build time.
func (pm *PassManager) Disable(names ...string) *PassManager {
	for _, n := range names {
		pm.disabled[n] = true
	}
	return pm
}

// Hook registers a function called with each pass's stats as it
// completes (including disabled passes).
func (pm *PassManager) Hook(fn func(PassStats)) *PassManager {
	pm.hook = fn
	return pm
}

// validate checks the pipeline against its disable set.
func (pm *PassManager) validate() error {
	known := map[string]bool{}
	for _, p := range pm.passes {
		if known[p.Name()] {
			return fmt.Errorf("core: duplicate pass %q in pipeline", p.Name())
		}
		known[p.Name()] = true
	}
	for n := range pm.disabled {
		if !known[n] {
			return fmt.Errorf("core: cannot disable unknown pass %q", n)
		}
	}
	return nil
}

// Build runs the pipeline on a model graph and returns a deployable
// engine with its BuildReport. The input graph is not modified.
func (pm *PassManager) Build(src *graph.Graph, cfg BuildConfig) (*Engine, error) {
	if err := pm.validate(); err != nil {
		return nil, err
	}
	if !src.Finalized() {
		return nil, fmt.Errorf("core: build of unfinalized graph %s", src.Name)
	}
	g := src.Clone()
	g.Outputs = append([]string(nil), src.Outputs...)

	e := &Engine{
		ModelName: src.Name,
		Platform:  cfg.Platform.Short(),
		BuildID:   cfg.BuildID,
		Precision: cfg.Precision,
		Graph:     g,
		Choices:   map[string]kernels.Variant{},
		Fusions:   map[string]Fusion{},
		Numeric:   hasWeights(g),
	}
	report := &BuildReport{}
	pc := &PassContext{Cfg: cfg, Engine: e}

	for _, p := range pm.passes {
		var stats PassStats
		if pm.disabled[p.Name()] {
			stats = PassStats{Pass: p.Name(), Disabled: true}
		} else {
			var err error
			stats, err = p.Run(pc)
			if err != nil {
				return nil, err
			}
			stats.Pass = p.Name()
		}
		report.Passes = append(report.Passes, stats)
		report.TacticsConsidered += stats.TacticsConsidered
		report.TacticsTimed += stats.TacticsTimed
		report.CacheHits += stats.CacheHits
		report.CacheMisses += stats.CacheMisses
		report.TuneCostSec += stats.TuneCostSec
		report.PredictedPrunes += stats.PredictedPrunes
		report.PredictorFallbacks += stats.PredictorFallbacks
		report.PrunedTuneCostSavedSec += stats.PrunedTuneCostSavedSec
		if pm.hook != nil {
			pm.hook(stats)
		}
	}

	report.ExpectedLatencySec = e.ExpectedLatencySec(gpusim.NewDevice(cfg.Platform, cfg.ClockMHz), false)
	if cfg.TimingCache != nil && report.CacheMisses == 0 {
		report.WarmBuild = true
		// A fully-warm build never sampled tuner noise: the engine is
		// independent of the build counter. When the caller opts in, the
		// plan is stamped with the canonical build id 0 so independent
		// warm rebuilds serialize byte-identically (paper §VI-A).
		if cfg.CanonicalWarmID {
			e.BuildID = 0
		}
	}
	e.Report = report
	return e, nil
}

// --- the six standard passes ---

type deadLayerPass struct{}

func (deadLayerPass) Name() string { return PassDeadLayerRemoval }

func (deadLayerPass) Run(pc *PassContext) (PassStats, error) {
	g := pc.Engine.Graph
	removed := deadLayerRemoval(g)
	if err := g.Finalize(); err != nil {
		return PassStats{}, fmt.Errorf("core: after dead-layer removal: %w", err)
	}
	pc.Engine.RemovedLayers = removed
	return PassStats{LayersRemoved: removed}, nil
}

type verticalFusionPass struct{}

func (verticalFusionPass) Name() string { return PassVerticalFusion }

func (verticalFusionPass) Run(pc *PassContext) (PassStats, error) {
	g := pc.Engine.Graph
	fusions, fused := verticalFusion(g)
	if err := g.Finalize(); err != nil {
		return PassStats{}, fmt.Errorf("core: after vertical fusion: %w", err)
	}
	pc.Engine.Fusions = fusions
	pc.Engine.FusedLayers = fused
	return PassStats{LayersFused: fused}, nil
}

type calibrationPass struct{}

func (calibrationPass) Name() string { return PassInt8Calibration }

func (calibrationPass) Run(pc *PassContext) (PassStats, error) {
	g := pc.Engine.Graph
	// INT8 builds calibrate activation ranges on the still-FP32 fused
	// graph before weights are quantized; other precisions skip.
	if pc.Cfg.Precision != tensor.INT8 || !hasWeights(g) {
		return PassStats{}, nil
	}
	if pc.Cfg.Calibrator == nil {
		return PassStats{}, fmt.Errorf("core: INT8 build of %s requires a Calibrator", pc.Engine.ModelName)
	}
	ranges, err := pc.Cfg.Calibrator.Ranges(g)
	if err != nil {
		return PassStats{}, err
	}
	pc.Int8Ranges = ranges
	pc.Engine.Int8Ranges = ranges
	return PassStats{LayersCalibrated: len(ranges)}, nil
}

type quantizePass struct{}

func (quantizePass) Name() string { return PassQuantization }

func (quantizePass) Run(pc *PassContext) (PassStats, error) {
	n := quantizeWeights(pc.Engine.Graph, pc.Cfg.Precision, pc.Cfg.PruneFrac)
	return PassStats{TensorsQuantized: n}, nil
}

type horizontalMergePass struct{}

func (horizontalMergePass) Name() string { return PassHorizontalMerge }

func (horizontalMergePass) Run(pc *PassContext) (PassStats, error) {
	leader, groups := horizontalGroups(pc.Engine.Graph)
	pc.MergeLeader, pc.MergeGroups = leader, groups
	return PassStats{MergeGroups: len(groups)}, nil
}

type kernelTuningPass struct{}

func (kernelTuningPass) Name() string { return PassKernelTuning }

func (kernelTuningPass) Run(pc *PassContext) (PassStats, error) {
	cfg := pc.Cfg
	e := pc.Engine
	dev := gpusim.NewDevice(cfg.Platform, cfg.ClockMHz)
	var stats PassStats
	tn := newTuner(dev, e, cfg, &stats)
	if err := planLaunches(e, tn, cfg, pc.MergeLeader, pc.MergeGroups); err != nil {
		return PassStats{}, err
	}
	stats.MergedLaunches = e.MergedLaunches
	return stats, nil
}
