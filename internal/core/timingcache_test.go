package core

import (
	"bytes"
	"encoding/binary"
	"math"
	"reflect"
	"strings"
	"testing"

	"edgeinfer/internal/kernels"
	"edgeinfer/internal/models"
	"edgeinfer/internal/tensor"
)

// TestCacheKeysIgnoreBuildIdentity is the trap-guard test: timing-cache
// keys are (device, variant, dims, precision) — Engine.Key() includes the
// build id and must never leak into them. Two builds with different build
// ids AND different tuner noise must hit exactly the entries a first build
// wrote; a build on the other platform must share none of them.
func TestCacheKeysIgnoreBuildIdentity(t *testing.T) {
	g, err := models.Build("resnet18")
	if err != nil {
		t.Fatal(err)
	}
	cache := NewTimingCache()

	cold := nxCfg(1)
	cold.TimingCache = cache
	ce, err := Build(g, cold)
	if err != nil {
		t.Fatal(err)
	}
	if ce.Report.CacheMisses == 0 {
		t.Fatal("cold build missed nothing")
	}
	seeded := cache.Len()
	seededKeys := cache.Keys()
	for _, k := range seededKeys {
		if strings.Contains(k, "build") {
			t.Fatalf("cache key leaks build identity: %q", k)
		}
	}

	// Different build id, different noise: every measurement must come
	// from the cache, and the cache must not grow.
	warm := nxCfg(42)
	warm.TunerNoise = 0.25
	warm.TimingCache = cache
	we, err := Build(g, warm)
	if err != nil {
		t.Fatal(err)
	}
	if we.Report.CacheMisses != 0 {
		t.Fatalf("second NX build missed %d entries", we.Report.CacheMisses)
	}
	if we.Report.CacheHits != we.Report.TacticsConsidered || we.Report.CacheHits == 0 {
		t.Fatalf("hits %d != tactics considered %d", we.Report.CacheHits, we.Report.TacticsConsidered)
	}
	if we.Report.TacticsTimed != 0 {
		t.Fatalf("warm build timed %d tactics; cache hits must not count as timed", we.Report.TacticsTimed)
	}
	if we.Report.TuneCostSec != 0 {
		t.Fatalf("warm build charged %.6fs of tactic timing", we.Report.TuneCostSec)
	}
	if cache.Len() != seeded {
		t.Fatalf("warm build grew the cache: %d -> %d", seeded, cache.Len())
	}

	// Other platform: timings do not transfer. An AGX build against the
	// NX-seeded cache must behave exactly like one against a fresh cache
	// (hits on an AGX build come only from its own repeated layer shapes,
	// never from NX entries) and add only AGX-keyed entries.
	agx1 := agxCfg(1)
	agx1.TimingCache = cache
	ae1, err := Build(g, agx1)
	if err != nil {
		t.Fatal(err)
	}
	fresh := NewTimingCache()
	agx2 := agxCfg(1)
	agx2.TimingCache = fresh
	ae2, err := Build(g, agx2)
	if err != nil {
		t.Fatal(err)
	}
	if ae1.Report.CacheMisses == 0 || ae1.Report.CacheMisses != ae2.Report.CacheMisses ||
		ae1.Report.CacheHits != ae2.Report.CacheHits {
		t.Fatalf("NX entries changed the AGX build: seeded %+v vs fresh %+v",
			ae1.Report, ae2.Report)
	}
	if !reflect.DeepEqual(ae1.Choices, ae2.Choices) {
		t.Fatal("AGX tactic choices depend on NX cache contents")
	}
	if cache.Len() != seeded+fresh.Len() {
		t.Fatalf("shared cache has %d entries, want %d NX + %d AGX",
			cache.Len(), seeded, fresh.Len())
	}
	was := map[string]bool{}
	for _, k := range seededKeys {
		was[k] = true
	}
	for _, k := range cache.Keys() {
		if !was[k] && !strings.HasPrefix(k, "AGX@") {
			t.Fatalf("AGX build added non-AGX key %q", k)
		}
	}
}

func TestTimingKeyDistinguishesSplitK(t *testing.T) {
	// SplitK siblings render the same kernel symbol; the cache key must
	// still tell them apart or a split-K timing poisons its sibling.
	v := kernels.Variant{Family: kernels.FamHMMAConv, TileM: 64, TileN: 64, TileK: 32, Precision: tensor.FP16}
	sk := v
	sk.SplitK = 4
	d := kernels.ConvDims{Batch: 1, InC: 64, H: 56, W: 56, OutC: 64, OutH: 56, OutW: 56, Kernel: 3, Stride: 1, Groups: 1}
	k1 := TimingKey("NX@1109MHz", v, d, tensor.FP16)
	k2 := TimingKey("NX@1109MHz", sk, d, tensor.FP16)
	if k1 == k2 {
		t.Fatalf("split-K variants collide: %q", k1)
	}
	if TimingKey("AGX@1377MHz", v, d, tensor.FP16) == k1 {
		t.Fatal("device does not separate keys")
	}
	if TimingKey("NX@1109MHz", v, d, tensor.INT8) == k1 {
		t.Fatal("build precision does not separate keys")
	}
}

func TestTimingCacheFirstWriteWins(t *testing.T) {
	c := NewTimingCache()
	c.Insert("k", 1.5)
	c.Insert("k", 9.9)
	if v, ok := c.Lookup("k"); !ok || v != 1.5 {
		t.Fatalf("lookup = %v,%v; want 1.5,true", v, ok)
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestTimingCacheRoundTrip(t *testing.T) {
	c := NewTimingCache()
	c.Insert("zeta", 3.25e-5)
	c.Insert("alpha", 1.5e-4)
	c.Insert("mid", 7e-6)
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTimingCache(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 {
		t.Fatalf("round trip lost entries: %d", got.Len())
	}
	for _, k := range []string{"zeta", "alpha", "mid"} {
		want, _ := c.Lookup(k)
		if v, ok := got.Lookup(k); !ok || v != want {
			t.Fatalf("entry %q = %v,%v; want %v", k, v, ok, want)
		}
	}
	// Deterministic bytes: re-serializing produces the identical stream.
	var buf2 bytes.Buffer
	if err := got.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("cache serialization is not canonical")
	}
}

// TestLoadTimingCacheHostileInput: like the plan loader, the cache
// deserializer must return errors — never panic — on malformed input.
func TestLoadTimingCacheHostileInput(t *testing.T) {
	valid := func() []byte {
		c := NewTimingCache()
		c.Insert("key-a", 1e-4)
		c.Insert("key-b", 2e-4)
		var buf bytes.Buffer
		if err := c.Save(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}()

	u32 := func(v uint32) []byte {
		b := make([]byte, 4)
		binary.LittleEndian.PutUint32(b, v)
		return b
	}
	u64 := func(v uint64) []byte {
		b := make([]byte, 8)
		binary.LittleEndian.PutUint64(b, v)
		return b
	}
	entry := func(key string, bits uint64) []byte {
		var b []byte
		b = append(b, u32(uint32(len(key)))...)
		b = append(b, key...)
		b = append(b, u64(bits)...)
		return b
	}
	hdr := func(count uint32) []byte {
		return append([]byte(timingCacheMagic), u32(count)...)
	}

	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"bad magic", []byte("NOTCACHE\x00\x00\x00\x00")},
		{"plan magic", []byte("EDGERT01\x00\x00\x00\x00")},
		{"truncated magic", []byte("EDGETC")},
		{"no count", []byte(timingCacheMagic)},
		{"huge count", hdr(1 << 30)},
		{"count without entries", hdr(5)},
		{"zero key length", append(hdr(1), entry("", 0x3ff0000000000000)...)},
		{"huge key length", append(hdr(1), u32(1<<31)...)},
		{"key longer than stream", append(hdr(1), u32(4000)...)},
		{"missing value", append(hdr(1), append(u32(3), []byte("abc")...)...)},
		{"nan time", append(hdr(1), entry("k", math.Float64bits(math.NaN()))...)},
		{"inf time", append(hdr(1), entry("k", math.Float64bits(math.Inf(1)))...)},
		{"zero time", append(hdr(1), entry("k", math.Float64bits(0))...)},
		{"negative time", append(hdr(1), entry("k", math.Float64bits(-1e-4))...)},
		{"duplicate key", append(hdr(2), append(entry("k", math.Float64bits(1e-4)), entry("k", math.Float64bits(2e-4))...)...)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := LoadTimingCache(bytes.NewReader(tc.data)); err == nil {
				t.Fatalf("hostile input %q accepted", tc.name)
			}
		})
	}

	// Every truncation prefix of a valid stream errors too.
	for n := 0; n < len(valid); n++ {
		if _, err := LoadTimingCache(bytes.NewReader(valid[:n])); err == nil {
			t.Fatalf("truncation to %d/%d bytes accepted", n, len(valid))
		}
	}
	if _, err := LoadTimingCache(bytes.NewReader(valid)); err != nil {
		t.Fatalf("valid stream rejected: %v", err)
	}
}

func TestTimingCacheFileRoundTrip(t *testing.T) {
	path := t.TempDir() + "/tc.bin"
	c := NewTimingCache()
	c.Insert("k", 5e-5)
	if err := c.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTimingCacheFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := got.Lookup("k"); !ok || v != 5e-5 {
		t.Fatalf("file round trip lost entry: %v,%v", v, ok)
	}
	if _, err := LoadTimingCacheFile(t.TempDir() + "/absent.bin"); err == nil {
		t.Fatal("missing file accepted")
	}
}
