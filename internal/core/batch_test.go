package core

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"edgeinfer/internal/fixrand"
	"edgeinfer/internal/graph"
	"edgeinfer/internal/models"
	"edgeinfer/internal/tensor"
)

func batchInputs(t *testing.T, key string, n int) []*tensor.Tensor {
	t.Helper()
	src := fixrand.NewKeyed(key)
	xs := make([]*tensor.Tensor, n)
	for i := range xs {
		x := tensor.New(1, 4, 8, 8)
		for j := range x.Data {
			x.Data[j] = float32(src.NormFloat64())
		}
		xs[i] = x
	}
	return xs
}

func sameBitsBatch(t *testing.T, label string, got, want []*tensor.Tensor) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d outputs, want %d", label, len(got), len(want))
	}
	for oi := range want {
		if len(got[oi].Data) != len(want[oi].Data) {
			t.Fatalf("%s: output %d has %d elems, want %d", label, oi, len(got[oi].Data), len(want[oi].Data))
		}
		for j := range want[oi].Data {
			if math.Float32bits(got[oi].Data[j]) != math.Float32bits(want[oi].Data[j]) {
				t.Fatalf("%s: output %d diverges at %d: %v vs %v",
					label, oi, j, got[oi].Data[j], want[oi].Data[j])
			}
		}
	}
}

func TestInferBatchMatchesInfer(t *testing.T) {
	g := tinyNet(t)
	e, err := Build(g, nxCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	xs := batchInputs(t, "infer-batch-x", 5)
	batch, err := e.InferBatch(xs)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(xs) {
		t.Fatalf("batch returned %d results for %d inputs", len(batch), len(xs))
	}
	for i, x := range xs {
		want, err := e.Infer(x)
		if err != nil {
			t.Fatal(err)
		}
		sameBitsBatch(t, fmt.Sprintf("image %d", i), batch[i], want)
	}
}

func TestInferBatchValidation(t *testing.T) {
	g := tinyNet(t)
	e, err := Build(g, nxCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	outs, err := e.InferBatch(nil)
	if err != nil || outs != nil {
		t.Fatalf("empty batch: got (%v, %v), want (nil, nil)", outs, err)
	}
	xs := batchInputs(t, "batch-validate", 1)
	if _, err := e.InferBatch([]*tensor.Tensor{xs[0], nil}); err == nil || !strings.Contains(err.Error(), "input 1 is nil") {
		t.Fatalf("nil input: got %v", err)
	}
	timed, err := Build(models.MustBuild("resnet18"), nxCfg(1)) // no weights materialized
	if err != nil {
		t.Fatal(err)
	}
	if timed.Numeric {
		t.Fatal("full-scale graph should build timing-only")
	}
	if _, err := timed.InferBatch(xs); err == nil || !strings.Contains(err.Error(), "timing-only") {
		t.Fatalf("timing-only engine: got %v", err)
	}
}

// countingFaults records injector consultations without injecting faults,
// except for an optional layer whose launch fails.
type countingFaults struct {
	failLayer string
	launches  map[string]int
	weights   map[string]int
	acts      map[string]int
}

func newCountingFaults() *countingFaults {
	return &countingFaults{
		launches: map[string]int{},
		weights:  map[string]int{},
		acts:     map[string]int{},
	}
}

func (f *countingFaults) MemcpyH2D(bytes int64) (int, error) { return 0, nil }

func (f *countingFaults) Launch(index int, symbol string) LaunchFault {
	f.launches[symbol]++
	return LaunchFault{Fail: symbol == f.failLayer}
}

func (f *countingFaults) CorruptWeights(layer, key string, w *tensor.Tensor) *tensor.Tensor {
	f.weights[layer]++
	return w
}

func (f *countingFaults) CorruptActivation(layer string, y *tensor.Tensor) {
	f.acts[layer]++
}

func TestInferBatchFaultyDrawsOncePerLayer(t *testing.T) {
	g := tinyNet(t)
	e, err := Build(g, nxCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	xs := batchInputs(t, "batch-faulty", 4)
	fi := newCountingFaults()
	if _, err := e.InferBatchFaulty(xs, fi); err != nil {
		t.Fatal(err)
	}
	for _, l := range e.Graph.Layers {
		want := 1
		if l.Op == graph.OpInput {
			want = 0
		}
		if got := fi.launches[l.Name]; got != want {
			t.Errorf("layer %s drew %d launch verdicts, want %d (one per batched launch)", l.Name, got, want)
		}
		if l.Op == graph.OpConv || l.Op == graph.OpFC {
			if got := fi.weights[l.Name]; got != 1 {
				t.Errorf("layer %s drew %d weight corruptions, want 1", l.Name, got)
			}
		}
		// Activation corruption stays per image: each image's activation
		// is a distinct tensor.
		if l.Op != graph.OpInput {
			if got := fi.acts[l.Name]; got != len(xs) {
				t.Errorf("layer %s drew %d activation corruptions, want %d (one per image)", l.Name, got, len(xs))
			}
		}
	}

	fail := newCountingFaults()
	fail.failLayer = e.Graph.Layers[len(e.Graph.Layers)-1].Name
	if _, err := e.InferBatchFaulty(xs, fail); !errors.Is(err, ErrLaunchFailed) {
		t.Fatalf("failed launch: got %v, want ErrLaunchFailed", err)
	}
}

func TestInferOutputsSurviveArenaRecycling(t *testing.T) {
	// Graph outputs are kept out of the arena: a later inference must not
	// recycle (and overwrite) buffers the caller still holds.
	g := tinyNet(t)
	e, err := Build(g, nxCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	xs := batchInputs(t, "arena-keep", 4)
	first, err := e.Infer(xs[0])
	if err != nil {
		t.Fatal(err)
	}
	snap := append([]float32(nil), first[0].Data...)
	for _, x := range xs[1:] {
		if _, err := e.Infer(x); err != nil {
			t.Fatal(err)
		}
		if _, err := e.InferBatch(xs); err != nil {
			t.Fatal(err)
		}
	}
	for j := range snap {
		if math.Float32bits(first[0].Data[j]) != math.Float32bits(snap[j]) {
			t.Fatalf("held output mutated at %d: %v vs %v", j, first[0].Data[j], snap[j])
		}
	}
}

func TestTensorArenaRecycling(t *testing.T) {
	a := newTensorArena()
	t1 := a.get(1, 2, 3, 4)
	a.put(t1)
	if t2 := a.get(1, 2, 3, 4); t2 != t1 {
		t.Fatal("arena did not recycle the freed buffer")
	}
	if t3 := a.get(1, 2, 3, 4); t3 == t1 {
		t.Fatal("arena handed the same buffer out twice")
	}
	// The free list is capped per shape.
	for i := 0; i < arenaMaxPerShape+3; i++ {
		a.put(tensor.New(2, 2, 2, 2))
	}
	if n := len(a.free[[4]int{2, 2, 2, 2}]); n != arenaMaxPerShape {
		t.Fatalf("free list holds %d buffers, want cap %d", n, arenaMaxPerShape)
	}
	// A nil arena degrades to plain allocation.
	var nilArena *tensorArena
	if x := nilArena.get(1, 1, 2, 2); x == nil || len(x.Data) != 4 {
		t.Fatal("nil arena get failed")
	}
	nilArena.put(tensor.New(1, 1, 1, 1))
}

func TestConcurrentInferSharedEngine(t *testing.T) {
	// One engine, many goroutines: the arena must never hand the same
	// buffer to two in-flight inferences, so every result stays
	// bit-identical to its serial reference.
	g := tinyNet(t)
	e, err := Build(g, nxCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	xs := batchInputs(t, "concurrent-infer", 8)
	refs := make([][]*tensor.Tensor, len(xs))
	for i, x := range xs {
		r, err := e.Infer(x)
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = r
	}
	var wg sync.WaitGroup
	errc := make(chan error, len(xs)*6)
	for gi := range xs {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for it := 0; it < 5; it++ {
				var got []*tensor.Tensor
				var err error
				if it%2 == 0 {
					got, err = e.Infer(xs[gi])
				} else {
					var outs [][]*tensor.Tensor
					outs, err = e.InferBatch(xs[gi : gi+1])
					if err == nil {
						got = outs[0]
					}
				}
				if err != nil {
					errc <- err
					return
				}
				for oi := range refs[gi] {
					for j := range refs[gi][oi].Data {
						if math.Float32bits(got[oi].Data[j]) != math.Float32bits(refs[gi][oi].Data[j]) {
							errc <- fmt.Errorf("goroutine %d iter %d: output %d diverges at %d", gi, it, oi, j)
							return
						}
					}
				}
			}
		}(gi)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
