package core

import (
	"fmt"
	"io"
	"os"
	"strings"

	"edgeinfer/internal/planlint"
)

// Static plan-IR verification. The builder refuses to serialize a plan
// that fails these checks (see Engine.Save), and cmd/rtlint applies them
// to plan files on disk — catching statically every malformed-plan class
// the runtime loader rejects dynamically, plus semantic defects the
// loader cannot see (illegal fusions, missing calibration ranges, dead
// layers, launch/graph mismatches).

// planView adapts the engine to planlint's neutral plan representation.
func (e *Engine) planView() planlint.Plan {
	fusions := make(map[string][]string, len(e.Fusions))
	for primary, f := range e.Fusions {
		fusions[primary] = f.Absorbed
	}
	launches := make([][]string, len(e.Launches))
	for i, l := range e.Launches {
		launches[i] = l.Layers
	}
	return planlint.Plan{
		Graph:      e.Graph,
		Precision:  e.Precision,
		Numeric:    e.Numeric,
		Fusions:    fusions,
		Int8Ranges: e.Int8Ranges,
		Launches:   launches,
	}
}

// VerifyPlan statically verifies the engine's plan IR and returns every
// issue found. A freshly built engine verifies clean; Save refuses any
// engine with error-severity issues.
func (e *Engine) VerifyPlan() []planlint.Issue {
	return planlint.Check(e.planView())
}

// firstErrors renders up to n error-severity issues for error messages.
func firstErrors(issues []planlint.Issue, n int) string {
	var parts []string
	for _, i := range issues {
		if i.Severity != planlint.Error {
			continue
		}
		parts = append(parts, i.String())
		if len(parts) == n {
			break
		}
	}
	return strings.Join(parts, "; ")
}

// VerifyPlanData statically verifies a serialized plan stream without
// constructing a runnable engine. Decode and topology failures are
// reported as issues rather than errors, so a corrupt plan yields a
// verdict instead of an exception — the static twin of Load's dynamic
// rejection.
func VerifyPlanData(r io.Reader) []planlint.Issue {
	h, weights, err := decodePlan(r)
	if err != nil {
		return []planlint.Issue{{Check: "decode", Severity: planlint.Error, Message: err.Error()}}
	}
	var issues []planlint.Issue
	if err := validateInputShape(h.InputShape); err != nil {
		issues = append(issues, planlint.Issue{Check: "decode", Severity: planlint.Error, Message: err.Error()})
	}
	if err := validatePlanLayers(h.Layers); err != nil {
		// The graph below is assembled tolerantly, so record the precise
		// structural defect here and let planlint confirm it.
		issues = append(issues, planlint.Issue{Check: "topology", Severity: planlint.Error, Message: err.Error()})
	}
	g, err := graphFromHeader(h)
	if err != nil {
		// Assembly failed mid-way; verify whatever structure the header
		// declares by rebuilding without validation short-circuits.
		return append(issues, planlint.Issue{Check: "topology", Severity: planlint.Error, Message: err.Error()})
	}
	known := map[string]bool{}
	for _, l := range g.Layers {
		known[l.Name] = true
	}
	for _, w := range weights {
		if !known[w.rec.Layer] {
			issues = append(issues, planlint.Issue{Check: "weights", Severity: planlint.Error,
				Layer: w.rec.Layer, Message: "weight record references a layer missing from the plan"})
		}
	}
	fusions := make(map[string][]string, len(h.Fusions))
	for primary, f := range h.Fusions {
		fusions[primary] = f.Absorbed
	}
	launches := make([][]string, len(h.Launches))
	for i, l := range h.Launches {
		launches[i] = l.Layers
	}
	issues = append(issues, planlint.Check(planlint.Plan{
		Graph:      g,
		Precision:  h.Precision,
		Numeric:    h.Numeric,
		Fusions:    fusions,
		Int8Ranges: h.Int8Ranges,
		Launches:   launches,
	})...)
	return issues
}

// VerifyPlanFile runs VerifyPlanData over a plan file on disk.
func VerifyPlanFile(path string) ([]planlint.Issue, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: open plan: %w", err)
	}
	defer f.Close()
	return VerifyPlanData(f), nil
}
