package core

import (
	"bytes"
	"encoding/binary"
	"testing"

	"edgeinfer/internal/gpusim"
	"edgeinfer/internal/models"
)

// FuzzLoad throws arbitrary bytes (seeded with real plan prefixes) at the
// engine-plan loader: it must return an error or a valid engine, never
// panic or hang.
func FuzzLoad(f *testing.F) {
	g, err := models.BuildProxy("vgg16", models.DefaultProxyOptions())
	if err != nil {
		f.Fatal(err)
	}
	e, err := Build(g, DefaultConfig(gpusim.XavierNX(), 1))
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		f.Fatal(err)
	}
	plan := buf.Bytes()
	f.Add(plan)
	f.Add(plan[:len(plan)/2])
	f.Add([]byte("EDGERT01"))
	f.Add([]byte{})
	// corrupted header length
	bad := append([]byte(nil), plan...)
	if len(bad) > 12 {
		bad[8], bad[9] = 0xff, 0xff
	}
	f.Add(bad)
	// Hostile topologies and length fields (the crashers the corruption
	// tests pin down: duplicate layers, unknown input refs, a layer
	// shadowing "data", zero-stride convs, giant shapes over truncated
	// streams) seed the mutator near the interesting paths.
	smallPlan, hlen := savedPlan(f)
	f.Add(smallPlan)
	for _, hostile := range hostileHeaders(f, smallPlan, hlen) {
		f.Add(hostile)
	}
	hostileCount := append([]byte(nil), smallPlan...)
	binary.LittleEndian.PutUint32(hostileCount[12+hlen:], 0xffffffff)
	f.Add(hostileCount)

	f.Fuzz(func(t *testing.T, data []byte) {
		// cap pathological sizes the mutator may produce
		if len(data) > 1<<22 {
			t.Skip()
		}
		e, err := Load(bytes.NewReader(data))
		if err == nil && e == nil {
			t.Fatal("nil engine without error")
		}
	})
}

// FuzzLoadTimingCache throws arbitrary bytes (seeded with real cache
// streams and hostile length fields) at the timing-cache loader: it must
// return an error or a valid cache, never panic or hang.
func FuzzLoadTimingCache(f *testing.F) {
	c := NewTimingCache()
	c.Insert("NX@1109MHz|hmma.t64x64x32.sk0.nchw.a1.p1|b1.ic64.s56x56-oc64.o56x56-k3.st1.g1|p1", 3.2e-5)
	c.Insert("NX@1109MHz|cuda.t32x32x8.sk2.nchw.a0.p0|b1.ic3.s224x224-oc64.o112x112-k7.st2.g1|p1", 1.1e-4)
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		f.Fatal(err)
	}
	stream := buf.Bytes()
	f.Add(stream)
	f.Add(stream[:len(stream)/2])
	f.Add([]byte(timingCacheMagic))
	f.Add([]byte{})
	// hostile entry count
	badCount := append([]byte(nil), stream...)
	binary.LittleEndian.PutUint32(badCount[8:], 0xffffffff)
	f.Add(badCount)
	// hostile key length on the first entry
	badKey := append([]byte(nil), stream...)
	binary.LittleEndian.PutUint32(badKey[12:], 0x7fffffff)
	f.Add(badKey)

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<22 {
			t.Skip()
		}
		c, err := LoadTimingCache(bytes.NewReader(data))
		if err == nil && c == nil {
			t.Fatal("nil cache without error")
		}
	})
}
