package core

import (
	"bytes"
	"encoding/binary"
	"testing"

	"edgeinfer/internal/gpusim"
	"edgeinfer/internal/models"
)

// FuzzLoad throws arbitrary bytes (seeded with real plan prefixes) at the
// engine-plan loader: it must return an error or a valid engine, never
// panic or hang.
func FuzzLoad(f *testing.F) {
	g, err := models.BuildProxy("vgg16", models.DefaultProxyOptions())
	if err != nil {
		f.Fatal(err)
	}
	e, err := Build(g, DefaultConfig(gpusim.XavierNX(), 1))
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		f.Fatal(err)
	}
	plan := buf.Bytes()
	f.Add(plan)
	f.Add(plan[:len(plan)/2])
	f.Add([]byte("EDGERT01"))
	f.Add([]byte{})
	// corrupted header length
	bad := append([]byte(nil), plan...)
	if len(bad) > 12 {
		bad[8], bad[9] = 0xff, 0xff
	}
	f.Add(bad)
	// Hostile topologies and length fields (the crashers the corruption
	// tests pin down: duplicate layers, unknown input refs, a layer
	// shadowing "data", zero-stride convs, giant shapes over truncated
	// streams) seed the mutator near the interesting paths.
	smallPlan, hlen := savedPlan(f)
	f.Add(smallPlan)
	for _, hostile := range hostileHeaders(f, smallPlan, hlen) {
		f.Add(hostile)
	}
	hostileCount := append([]byte(nil), smallPlan...)
	binary.LittleEndian.PutUint32(hostileCount[12+hlen:], 0xffffffff)
	f.Add(hostileCount)

	f.Fuzz(func(t *testing.T, data []byte) {
		// cap pathological sizes the mutator may produce
		if len(data) > 1<<22 {
			t.Skip()
		}
		e, err := Load(bytes.NewReader(data))
		if err == nil && e == nil {
			t.Fatal("nil engine without error")
		}
	})
}
