package faults

import (
	"sync"

	"edgeinfer/internal/fixrand"
)

// Cluster-layer fault injection: links between pipeline nodes and the
// nodes themselves. The design splits the modes the same way NetPlan
// does — probabilistic faults (link delay, link drop) draw from their
// own fixrand stream, while window faults (link partition, node crash,
// node hang, restart) are pure functions of (stage|link, frame) and
// consume no draws. A cluster injector therefore never shifts the
// device or network fault streams (they are keyed separately), and
// enabling a window fault never shifts the cluster stream either, so a
// chaos run's link-delay sequence is identical with and without the
// stage kill — the property the recovery bit-identity check leans on.

// ClusterPlan is a declarative cluster fault scenario. Stage and link
// indices are positions in the pipeline's partition (stage s sends to
// stage s+1 over link s); negative indices disable the fault, which is
// why plans should start from NewClusterPlan rather than a zero
// struct.
type ClusterPlan struct {
	// Seed names the scenario; with the per-injector scenario key it
	// selects the fixrand stream ("faults/cluster/<seed>/<scenario>").
	Seed string

	// LinkDelayRate is the per-transfer probability the payload pays an
	// extra LinkDelaySec of propagation time.
	LinkDelayRate float64
	LinkDelaySec  float64

	// LinkDropRate is the per-transfer probability the payload is lost;
	// the sender still holds the activation, so a drop is retryable.
	LinkDropRate float64

	// PartitionLink blackholes link PartitionLink for frames
	// [PartitionFrom, PartitionFrom+PartitionFrames): every transfer in
	// the window is dropped, deterministically and without a draw.
	PartitionLink   int
	PartitionFrom   int
	PartitionFrames int

	// CrashStage kills the node serving that stage from frame
	// CrashAtFrame on — the mid-stream stage death. With
	// RestartAfterFrames > 0 the node comes back that many frames
	// later (as standby capacity, not automatically as the stage
	// owner); 0 means dead for the rest of the run.
	CrashStage         int
	CrashAtFrame       int
	RestartAfterFrames int

	// HangStage stalls that stage's node for HangSec extra seconds on
	// each of frames [HangAtFrame, HangAtFrame+HangFrames): no error,
	// just latency — the gray failure only a watchdog can see.
	HangStage   int
	HangAtFrame int
	HangFrames  int
	HangSec     float64
}

// NewClusterPlan returns a plan with every fault disabled (all window
// indices at -1) so callers enable only what the scenario needs.
func NewClusterPlan(seed string) ClusterPlan {
	return ClusterPlan{Seed: seed, PartitionLink: -1, CrashStage: -1, HangStage: -1}
}

// ClusterChaos is the chaos-soak scenario cmd/clusterbench runs: mild
// probabilistic link noise plus a mid-stream stage kill with a late
// restart, the headline robustness case.
func ClusterChaos(seed string, crashStage, crashAtFrame int) ClusterPlan {
	p := NewClusterPlan(seed)
	p.LinkDelayRate = 0.05
	p.LinkDelaySec = 1e-3
	p.LinkDropRate = 0.02
	p.CrashStage = crashStage
	p.CrashAtFrame = crashAtFrame
	p.RestartAfterFrames = 40
	return p
}

// Zero reports whether the plan injects nothing.
func (p ClusterPlan) Zero() bool {
	return p.LinkDelayRate == 0 && p.LinkDropRate == 0 &&
		p.PartitionLink < 0 && p.CrashStage < 0 && p.HangStage < 0
}

// New creates a cluster injector for the plan; scenario disambiguates
// several injectors drawn from one plan, mirroring Plan.New.
func (p ClusterPlan) New(scenario string) *ClusterInjector {
	return &ClusterInjector{
		plan: p,
		rng:  fixrand.NewKeyed("faults/cluster/" + p.Seed + "/" + scenario),
	}
}

// ClusterInjector replays a ClusterPlan deterministically. Safe for
// concurrent use, though the pipeline executor consults it from one
// goroutine in frame order — the contract that makes replays exact.
type ClusterInjector struct {
	plan ClusterPlan

	mu        sync.Mutex
	rng       *fixrand.Source
	crashSeen bool
	counters  Counters
}

// Plan returns the injector's plan.
func (in *ClusterInjector) Plan() ClusterPlan { return in.plan }

// Counters returns a snapshot of the fault tallies.
func (in *ClusterInjector) Counters() Counters {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counters
}

// Transfer is the per-hop verdict for sending frame's activation
// across link: extra delay seconds and whether the payload was lost.
// A partition window drops without drawing; the probabilistic delay
// and drop mechanisms each draw only when their rate is positive.
// Retries consult Transfer again, so a resend can be lost again.
func (in *ClusterInjector) Transfer(link, frame int) (delaySec float64, drop bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.plan.PartitionLink >= 0 && link == in.plan.PartitionLink &&
		frame >= in.plan.PartitionFrom && frame < in.plan.PartitionFrom+in.plan.PartitionFrames {
		in.counters.Add(KindLinkPartition, 1)
		return 0, true
	}
	if in.plan.LinkDelayRate > 0 && in.rng.Float64() < in.plan.LinkDelayRate {
		delaySec = in.plan.LinkDelaySec
		in.counters.Add(KindLinkDelay, 1)
	}
	if in.plan.LinkDropRate > 0 && in.rng.Float64() < in.plan.LinkDropRate {
		drop = true
		in.counters.Add(KindLinkDrop, 1)
	}
	return delaySec, drop
}

// NodeCrashed reports whether the node serving stage is dead when
// frame reaches it. Deterministic, no draws. The crash is counted
// once, on first detection.
func (in *ClusterInjector) NodeCrashed(stage, frame int) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	p := in.plan
	if p.CrashStage < 0 || stage != p.CrashStage || frame < p.CrashAtFrame {
		return false
	}
	if p.RestartAfterFrames > 0 && frame >= p.CrashAtFrame+p.RestartAfterFrames {
		return false
	}
	if !in.crashSeen {
		in.crashSeen = true
		in.counters.Add(KindNodeCrash, 1)
	}
	return true
}

// NodeRestarted reports whether the crashed node has come back by
// frame — eligible as standby capacity again, not reinstated as the
// stage owner.
func (in *ClusterInjector) NodeRestarted(frame int) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	p := in.plan
	return p.CrashStage >= 0 && p.RestartAfterFrames > 0 &&
		frame >= p.CrashAtFrame+p.RestartAfterFrames
}

// NodeHangSec returns the extra stall the stage's node pays at frame:
// HangSec inside the hang window, 0 outside. Deterministic, no draws.
func (in *ClusterInjector) NodeHangSec(stage, frame int) float64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	p := in.plan
	if p.HangStage < 0 || stage != p.HangStage ||
		frame < p.HangAtFrame || frame >= p.HangAtFrame+p.HangFrames {
		return 0
	}
	in.counters.Add(KindNodeHang, 1)
	return p.HangSec
}
