package faults

import (
	"testing"

	"edgeinfer/internal/fixrand"
	"edgeinfer/internal/tensor"
)

func TestZeroPlanInjectsNothing(t *testing.T) {
	in := Scenario("z", 0).New("nx")
	for i := 0; i < 1000; i++ {
		lf := in.Launch(i, "k")
		if lf.Fail || lf.StallSec != 0 || lf.ClockScale != 1 {
			t.Fatalf("zero plan injected at launch %d: %+v", i, lf)
		}
	}
	if r, err := in.MemcpyH2D(1 << 20); r != 0 || err != nil {
		t.Fatalf("zero plan memcpy: retries=%d err=%v", r, err)
	}
	w := tensor.NewVec(8)
	if got := in.CorruptWeights("l", "w", w); got != w {
		t.Fatal("zero plan returned a weight copy")
	}
	if err := in.Alloc(1e9); err != nil {
		t.Fatalf("zero plan alloc: %v", err)
	}
	if c := in.Counters(); c.Total() != 0 {
		t.Fatalf("zero plan counted faults: %s", c.String())
	}
}

func TestDeterministicReplay(t *testing.T) {
	mk := func() (faults []bool, stalls []float64, c Counters) {
		in := Scenario("replay", 0.3).New("agx")
		for i := 0; i < 500; i++ {
			lf := in.Launch(i, "k")
			faults = append(faults, lf.Fail)
			stalls = append(stalls, lf.StallSec)
		}
		return faults, stalls, in.Counters()
	}
	f1, s1, c1 := mk()
	f2, s2, c2 := mk()
	for i := range f1 {
		if f1[i] != f2[i] || s1[i] != s2[i] {
			t.Fatalf("replay diverges at %d", i)
		}
	}
	if c1 != c2 {
		t.Fatalf("counters diverge: %s vs %s", c1.String(), c2.String())
	}
	// Distinct scenarios must give distinct streams.
	other := Scenario("replay", 0.3).New("nx")
	diff := false
	for i := 0; i < 500; i++ {
		if other.Launch(i, "k").Fail != f1[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different scenario keys produced the same fault stream")
	}
}

func TestClockDropAndRecoveryRamp(t *testing.T) {
	p := Plan{Seed: "dvfs", ClockDropRate: 0.05, ClockDropFrac: 0.5, ClockRecoverStep: 1.1}
	in := p.New("nx")
	sawDrop, sawRamp, sawNominal := false, false, false
	for i := 0; i < 2000; i++ {
		s := in.Launch(i, "k").ClockScale
		if s <= 0 || s > 1 {
			t.Fatalf("clock scale %v out of range", s)
		}
		switch {
		case s == 0.5:
			sawDrop = true
		case s > 0.5 && s < 1:
			sawRamp = true
		case s == 1:
			sawNominal = true
		}
	}
	if !sawDrop || !sawRamp || !sawNominal {
		t.Fatalf("DVFS state machine incomplete: drop=%v ramp=%v nominal=%v", sawDrop, sawRamp, sawNominal)
	}
	if in.Counters().Get(KindClockDrop) == 0 {
		t.Fatal("no clock drops counted")
	}
}

func TestMemcpyRetryBudget(t *testing.T) {
	p := Plan{Seed: "cp", MemcpyRetryRate: 1, MemcpyMaxRetries: 3}
	in := p.New("nx")
	r, err := in.MemcpyH2D(1 << 20)
	if err == nil {
		t.Fatal("rate-1 memcpy should exhaust its retry budget")
	}
	if r != 3 {
		t.Fatalf("retries %d, want 3", r)
	}
	c := in.Counters()
	if c.Get(KindMemcpyRetry) != 3 || c.Get(KindMemcpyFail) != 1 {
		t.Fatalf("counters %s", c.String())
	}
}

func TestBitFlipCorruptsCopyNotOriginal(t *testing.T) {
	p := Plan{Seed: "flip", BitFlipRate: 1, FlipsPerEvent: 2}
	in := p.New("nx")
	w := tensor.NewVec(64)
	src := fixrand.NewKeyed("flip-w")
	for i := range w.Data {
		w.Data[i] = float32(src.NormFloat64())
	}
	orig := w.Clone()
	got := in.CorruptWeights("conv1", "w", w)
	if got == w {
		t.Fatal("rate-1 bit flip returned the original tensor")
	}
	for i := range w.Data {
		if w.Data[i] != orig.Data[i] {
			t.Fatal("original weights mutated")
		}
	}
	diff := 0
	for i := range got.Data {
		if got.Data[i] != orig.Data[i] {
			diff++
		}
	}
	if diff == 0 || diff > 2 {
		t.Fatalf("%d elements changed, want 1-2", diff)
	}
	// Activations corrupt in place.
	y := orig.Clone()
	in.CorruptActivation("conv1", y)
	same := true
	for i := range y.Data {
		if y.Data[i] != orig.Data[i] {
			same = false
		}
	}
	if same {
		t.Fatal("rate-1 activation corruption changed nothing")
	}
	if in.Counters().Get(KindBitFlip) != 2 {
		t.Fatalf("bit-flip count %d, want 2", in.Counters().Get(KindBitFlip))
	}
}

func TestAllocCapacityModel(t *testing.T) {
	p := Plan{Seed: "mem", CapacityBytes: 100}
	in := p.New("nx")
	if err := in.Alloc(60); err != nil {
		t.Fatal(err)
	}
	if err := in.Alloc(60); err == nil {
		t.Fatal("over-capacity alloc succeeded")
	}
	in.Free(60)
	if err := in.Alloc(60); err != nil {
		t.Fatalf("alloc after free: %v", err)
	}
	if in.Counters().Get(KindAllocFail) != 1 {
		t.Fatalf("alloc-fail count %d", in.Counters().Get(KindAllocFail))
	}

	always := Plan{Seed: "mem2", AllocFailRate: 1}.New("nx")
	if err := always.Alloc(1); err == nil {
		t.Fatal("rate-1 alloc succeeded")
	}
}

func TestLatencyInflateSustained(t *testing.T) {
	in := Plan{Seed: "slow", InflateFactor: 10}.New("r1")
	for i := 0; i < 50; i++ {
		lf := in.Launch(i, "k")
		if lf.ClockScale != 0.1 {
			t.Fatalf("launch %d clock scale %v, want sustained 0.1", i, lf.ClockScale)
		}
		if lf.Fail || lf.StallSec != 0 {
			t.Fatalf("inflation-only plan injected other faults: %+v", lf)
		}
	}
	if in.Counters().Get(KindLatencyInflate) != 50 {
		t.Fatalf("inflate count %d, want 50", in.Counters().Get(KindLatencyInflate))
	}
}

func TestStuckKernelMatchesSymbolOnly(t *testing.T) {
	in := Plan{Seed: "stuck", StuckSymbol: "winograd", StuckStallSec: 2e-3}.New("r2")
	if lf := in.Launch(0, "trt_volta_winograd_3x3"); lf.StallSec != 2e-3 {
		t.Fatalf("matching symbol not stalled: %+v", lf)
	}
	if lf := in.Launch(1, "trt_volta_hmma_128x64"); lf.StallSec != 0 {
		t.Fatalf("non-matching symbol stalled: %+v", lf)
	}
	if in.Counters().Get(KindStuckKernel) != 1 {
		t.Fatalf("stuck-kernel count %d, want 1", in.Counters().Get(KindStuckKernel))
	}
}

func TestSilentCorruptSpikesInPlace(t *testing.T) {
	in := Plan{Seed: "silent", SilentCorruptRate: 1}.New("r3")
	y := tensor.NewVec(32)
	orig := y.Clone()
	in.CorruptActivation("conv1", y)
	changed := 0
	for i := range y.Data {
		if y.Data[i] != orig.Data[i] {
			changed++
			if y.Data[i]-orig.Data[i] != silentSpike {
				t.Fatalf("element %d moved by %v, want the %v spike", i, y.Data[i]-orig.Data[i], silentSpike)
			}
		}
	}
	if changed != 1 {
		t.Fatalf("%d elements changed, want exactly 1", changed)
	}
	if in.Counters().Get(KindSilentCorrupt) != 1 {
		t.Fatalf("silent-corrupt count %d, want 1", in.Counters().Get(KindSilentCorrupt))
	}
	// Weights are untouched by this mode, and no stream draw happens for
	// disabled mechanisms (draw-order preservation).
	w := tensor.NewVec(8)
	if got := in.CorruptWeights("conv1", "w", w); got != w {
		t.Fatal("silent-corrupt plan copied weights")
	}
}

func TestReplicaHavocPlan(t *testing.T) {
	p := ReplicaHavoc("chaos", "hmma")
	if p.Zero() {
		t.Fatal("havoc plan reports zero")
	}
	if (Plan{Seed: "x"}).Zero() != true {
		t.Fatal("empty plan not zero")
	}
	// Each replica-scoped field alone must defeat Zero().
	for i, p := range []Plan{
		{InflateFactor: 2},
		{StuckSymbol: "k", StuckStallSec: 1e-3},
		{SilentCorruptRate: 0.1},
	} {
		if p.Zero() {
			t.Fatalf("plan %d reports zero", i)
		}
	}
}

func TestFaultRatesApproximatePlan(t *testing.T) {
	const n = 5000
	in := Scenario("rates", 0.2).New("nx")
	fails := 0
	for i := 0; i < n; i++ {
		if in.Launch(i, "k").Fail {
			fails++
		}
	}
	got := float64(fails) / n
	if got < 0.15 || got > 0.25 {
		t.Fatalf("launch-fail rate %.3f, want ~0.2", got)
	}
}
