package faults_test

import (
	"bytes"
	"io"
	"testing"
	"time"

	"edgeinfer/internal/faults"
)

// Same seed, same scenario: the verdict streams are byte-identical.
// Different scenarios diverge.
func TestNetInjectorDeterminism(t *testing.T) {
	plan := faults.NetPlan{Seed: "net-det", SlowClientRate: 0.5, DisconnectRate: 0.5}
	draw := func(scenario string) []bool {
		in := plan.NewNet(scenario)
		out := make([]bool, 0, 64)
		for i := 0; i < 32; i++ {
			_, _, slow := in.SlowClient()
			out = append(out, slow, in.Disconnect())
		}
		return out
	}
	a, b := draw("a"), draw("a")
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("verdict %d differs across same-scenario injectors", i)
		}
	}
	c := draw("b")
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("independent scenarios produced identical verdict streams")
	}
}

// A zero plan never fires and counts nothing.
func TestNetInjectorZeroPlan(t *testing.T) {
	in := faults.NetPlan{Seed: "net-zero"}.NewNet("z")
	for i := 0; i < 100; i++ {
		if _, _, slow := in.SlowClient(); slow {
			t.Fatal("zero plan drew a slow client")
		}
		if in.Disconnect() {
			t.Fatal("zero plan drew a disconnect")
		}
		if in.Burst(i+1) != 1 {
			t.Fatal("zero plan fired a burst")
		}
	}
	if got := in.Counters().Total(); got != 0 {
		t.Fatalf("zero plan counted %d faults", got)
	}
}

// Bursts are deterministic in the tick schedule and do not consume the
// random stream: enabling them must not shift slow/disconnect verdicts.
func TestNetBurstScheduleIndependent(t *testing.T) {
	base := faults.NetPlan{Seed: "net-burst", SlowClientRate: 0.3, DisconnectRate: 0.3}
	withBurst := base
	withBurst.BurstEvery, withBurst.BurstFactor = 5, 3

	a, b := base.NewNet("x"), withBurst.NewNet("x")
	for tick := 1; tick <= 40; tick++ {
		if got := b.Burst(tick); (tick%5 == 0) != (got == 3) {
			t.Fatalf("tick %d: burst factor %d", tick, got)
		}
		_, _, sa := a.SlowClient()
		_, _, sb := b.SlowClient()
		if sa != sb || a.Disconnect() != b.Disconnect() {
			t.Fatalf("tick %d: burst schedule perturbed the verdict stream", tick)
		}
	}
	if got := b.Counters().Get(faults.KindBurst); got != 8 {
		t.Fatalf("burst count %d, want 8", got)
	}
}

// Throttle paces the body but delivers every byte intact.
func TestThrottleDeliversAllBytes(t *testing.T) {
	payload := bytes.Repeat([]byte("edge"), 64) // 256 bytes
	r := faults.Throttle(bytes.NewReader(payload), 32, 100*time.Microsecond)
	start := time.Now()
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("throttled read corrupted the payload")
	}
	// 256 bytes at 32 per chunk is 8+ reads of >=100µs each.
	if elapsed := time.Since(start); elapsed < 800*time.Microsecond {
		t.Fatalf("throttle did not pace: %v elapsed", elapsed)
	}
}

// Counters tally the network kinds under their own names.
func TestNetCounterNames(t *testing.T) {
	in := faults.NetPlan{Seed: "net-names", SlowClientRate: 1, DisconnectRate: 1, BurstEvery: 1, BurstFactor: 2}.NewNet("n")
	in.SlowClient()
	in.Disconnect()
	in.Burst(1)
	c := in.Counters()
	for _, k := range []faults.Kind{faults.KindSlowClient, faults.KindClientGone, faults.KindBurst} {
		if c.Get(k) != 1 {
			t.Fatalf("kind %s count %d, want 1", k, c.Get(k))
		}
	}
	if s := c.String(); s == "" || s == "no faults" {
		t.Fatalf("counter string %q", s)
	}
}
