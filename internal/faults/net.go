// Network-layer chaos for the serving front-end. The device-side Plan
// models a hostile accelerator; NetPlan models hostile clients and
// traffic: request bodies that dribble in a few bytes at a time, clients
// that vanish after the server has admitted their work, and open-loop
// arrival bursts several times the nominal rate. These are the failure
// modes that only exist once requests arrive over a wire — a coalescing
// queue that is correct under them (every admitted request answered or
// explicitly shed, no batcher wedged behind a dead client) is the
// robustness property internal/netserve's chaos tests pin down.
//
// Like the device Injector, a NetInjector replays its plan from a
// fixrand stream, so every chaos scenario is exactly reproducible.
package faults

import (
	"fmt"
	"io"
	"sync"
	"time"

	"edgeinfer/internal/fixrand"
)

// NetPlan is a declarative network-chaos scenario. Rates are
// per-request probabilities in [0, 1]; a zero plan injects nothing.
type NetPlan struct {
	// Seed names the scenario; with the per-injector scenario key it
	// selects the fixrand stream.
	Seed string

	// SlowClientRate is the probability a request's body is dribbled:
	// written in SlowChunkBytes chunks with SlowChunkDelay between them
	// (defaults 64 bytes / 1ms).
	SlowClientRate float64
	SlowChunkBytes int
	SlowChunkDelay time.Duration

	// DisconnectRate is the probability a client abandons its request
	// mid-flight — after admission, before reading the response.
	DisconnectRate float64

	// BurstEvery fires an arrival burst every BurstEvery-th tick of an
	// open-loop generator: BurstFactor requests land where one would
	// (default factor 4). Zero disables bursts.
	BurstEvery  int
	BurstFactor int
}

// Zero reports whether the plan injects nothing.
func (p NetPlan) Zero() bool {
	return p.SlowClientRate == 0 && p.DisconnectRate == 0 && p.BurstEvery == 0
}

// NetInjector replays a NetPlan deterministically. Safe for concurrent
// use.
type NetInjector struct {
	plan NetPlan

	mu       sync.Mutex
	rng      *fixrand.Source
	counters Counters
}

// NewNet creates an injector for the plan; scenario disambiguates
// several injectors drawn from one plan so their verdict streams are
// independent but individually reproducible.
func (p NetPlan) NewNet(scenario string) *NetInjector {
	if p.SlowChunkBytes <= 0 {
		p.SlowChunkBytes = 64
	}
	if p.SlowChunkDelay <= 0 {
		p.SlowChunkDelay = time.Millisecond
	}
	if p.BurstFactor < 2 {
		p.BurstFactor = 4
	}
	if p.BurstEvery < 0 {
		p.BurstEvery = 0
	}
	return &NetInjector{
		plan: p,
		rng:  fixrand.NewKeyed("faults/net/" + p.Seed + "/" + scenario),
	}
}

// Plan returns the injector's plan.
func (in *NetInjector) Plan() NetPlan { return in.plan }

// Counters returns a snapshot of the fault tallies.
func (in *NetInjector) Counters() Counters {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counters
}

// SlowClient draws one request's slow-read verdict. When it fires, the
// caller should wrap the request body with Throttle(body, chunk, delay).
func (in *NetInjector) SlowClient() (chunk int, delay time.Duration, slow bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.plan.SlowClientRate <= 0 || in.rng.Float64() >= in.plan.SlowClientRate {
		return 0, 0, false
	}
	in.counters.Add(KindSlowClient, 1)
	return in.plan.SlowChunkBytes, in.plan.SlowChunkDelay, true
}

// Disconnect draws one request's mid-flight disconnect verdict. When it
// fires, the caller should cancel the request's context after admission
// and never read the response.
func (in *NetInjector) Disconnect() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.plan.DisconnectRate <= 0 || in.rng.Float64() >= in.plan.DisconnectRate {
		return false
	}
	in.counters.Add(KindClientGone, 1)
	return true
}

// Burst returns how many requests an open-loop generator should launch
// at tick (1-based position in the arrival schedule): 1 normally,
// BurstFactor on burst ticks. Deterministic — no stream draw — so
// enabling bursts never shifts the slow/disconnect verdict sequence.
func (in *NetInjector) Burst(tick int) int {
	if in.plan.BurstEvery <= 0 || tick <= 0 || tick%in.plan.BurstEvery != 0 {
		return 1
	}
	in.mu.Lock()
	in.counters.Add(KindBurst, 1)
	in.mu.Unlock()
	return in.plan.BurstFactor
}

// Throttle wraps a reader so each Read returns at most chunk bytes after
// sleeping delay: the slow-client body. The wrapped reader never errors
// on its own; it only paces the underlying stream.
func Throttle(r io.Reader, chunk int, delay time.Duration) io.Reader {
	if chunk <= 0 {
		chunk = 1
	}
	return &throttledReader{r: r, chunk: chunk, delay: delay}
}

type throttledReader struct {
	r     io.Reader
	chunk int
	delay time.Duration
}

// Read implements io.Reader.
func (t *throttledReader) Read(p []byte) (int, error) {
	if t.delay > 0 {
		time.Sleep(t.delay)
	}
	if len(p) > t.chunk {
		p = p[:t.chunk]
	}
	n, err := t.r.Read(p)
	if err != nil && err != io.EOF {
		err = fmt.Errorf("faults: throttled read: %w", err)
	}
	return n, err
}
