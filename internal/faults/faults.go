// Package faults implements a deterministic fault-injection subsystem
// for the simulated inference stack. The paper characterizes TensorRT
// engines on pristine, pinned devices; related work (Pasandideh et al.,
// fault injection on edge object detection; Chakraborty et al.,
// contended concurrent inference on Jetson) shows that deployed edge
// devices are anything but pristine. A faults.Plan describes how bad the
// device is allowed to get — DVFS/thermal clock drops with recovery
// ramps, transient kernel-launch failures, stream stalls, H2D memcpy
// retries, memory-pressure allocation failures, and bit-flip corruption
// of engine weights and activations — and an Injector replays that plan
// from a fixrand stream, so every scenario is exactly reproducible.
//
// The Injector implements core.FaultInjector; internal/serve wraps an
// engine plus an Injector into a resilient executor.
package faults

import (
	"fmt"
	"math"
	"strings"
	"sync"

	"edgeinfer/internal/core"
	"edgeinfer/internal/fixrand"
	"edgeinfer/internal/tensor"
)

// Kind enumerates the injectable fault classes.
type Kind uint8

const (
	// KindClockDrop is a DVFS/thermal event: the effective GPU clock
	// drops and then ramps back over subsequent launches.
	KindClockDrop Kind = iota
	// KindLaunchFail is a transient kernel-launch failure.
	KindLaunchFail
	// KindStreamStall is serialized dead time before a launch.
	KindStreamStall
	// KindMemcpyRetry is a failed H2D copy attempt that was retried.
	KindMemcpyRetry
	// KindMemcpyFail is an H2D copy that exhausted its retry budget.
	KindMemcpyFail
	// KindAllocFail is a memory-pressure allocation failure when a
	// request tries to reserve its per-thread footprint.
	KindAllocFail
	// KindBitFlip is a corruption event in weights or activations.
	KindBitFlip
	// KindLatencyInflate is a sustained per-launch slowdown scoped to one
	// replica (a sick clone, not a sick device): every launch runs
	// InflateFactor times slower until the replica is rebuilt.
	KindLatencyInflate
	// KindStuckKernel is a single kernel symbol that hangs for
	// StuckStallSec on every invocation — the paper's tactic-tuned plans
	// make this replica-specific, since diverged builds pick different
	// kernels for the same layer.
	KindStuckKernel
	// KindSilentCorrupt is a value-level corruption of an output
	// activation with no error signal: the fault the latency watchdog
	// cannot see and only quorum voting catches.
	KindSilentCorrupt
	// KindSlowClient is a network-layer fault: a client that dribbles its
	// request body a few bytes at a time, tying up a server read path.
	KindSlowClient
	// KindClientGone is a network-layer fault: a client that disconnects
	// mid-request, after the server has already admitted the work.
	KindClientGone
	// KindBurst is a network-layer fault: an open-loop arrival burst, a
	// multiple of the nominal request rate landing in one tick.
	KindBurst
	// KindLinkDelay is a cluster-layer fault: a transfer across an
	// inter-node link pays extra propagation delay.
	KindLinkDelay
	// KindLinkDrop is a cluster-layer fault: a transfer's payload is
	// lost and must be resent.
	KindLinkDrop
	// KindLinkPartition is a cluster-layer fault: a link blackholes
	// every transfer for a deterministic frame window.
	KindLinkPartition
	// KindNodeCrash is a cluster-layer fault: the node serving a
	// pipeline stage dies mid-stream (optionally restarting later).
	KindNodeCrash
	// KindNodeHang is a cluster-layer fault: a node stalls each frame
	// for a deterministic window without dying — the gray failure a
	// heartbeat watchdog has to infer from latency.
	KindNodeHang

	nKinds
)

var kindNames = [nKinds]string{
	"clock-drop", "launch-fail", "stream-stall",
	"memcpy-retry", "memcpy-fail", "alloc-fail", "bit-flip",
	"latency-inflate", "stuck-kernel", "silent-corrupt",
	"slow-client", "client-gone", "burst",
	"link-delay", "link-drop", "link-partition", "node-crash", "node-hang",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Plan is a complete, declarative fault scenario. All rates are
// per-consultation probabilities in [0, 1]: per kernel launch for
// launch/stall/clock faults, per weight copy for memcpy faults, per
// request for allocation faults, per layer for bit flips.
type Plan struct {
	// Seed names the scenario; together with the per-injector scenario
	// key it selects the fixrand stream.
	Seed string

	// LaunchFailRate is the probability a kernel launch transiently fails.
	LaunchFailRate float64

	// StallRate is the probability a launch is preceded by a stream
	// stall of StallSec seconds.
	StallRate float64
	StallSec  float64

	// ClockDropRate is the probability a launch triggers a DVFS/thermal
	// clock drop to ClockDropFrac of nominal; the clock then recovers
	// multiplicatively by ClockRecoverStep per subsequent launch (the
	// governor's ramp), mirroring gpusim's thermal model.
	ClockDropRate    float64
	ClockDropFrac    float64
	ClockRecoverStep float64

	// MemcpyRetryRate is the probability each H2D copy attempt fails;
	// attempts repeat up to MemcpyMaxRetries before the copy is declared
	// dead.
	MemcpyRetryRate  float64
	MemcpyMaxRetries int

	// AllocFailRate is the probability a per-request stream/workspace
	// allocation fails outright. Independently, if CapacityBytes > 0,
	// allocations that would push the in-use total past it fail
	// deterministically (the memory-pressure model: requests are keyed
	// off Engine.PerThreadMemBytes).
	AllocFailRate float64
	CapacityBytes float64

	// BitFlipRate is the per-layer probability of a corruption event in
	// the layer's weights or output activation; each event flips
	// FlipsPerEvent random bits (default 1).
	BitFlipRate   float64
	FlipsPerEvent int

	// Replica-scoped degradations (see ReplicaHavoc). InflateFactor > 1
	// slows every launch by that factor — sustained, not transient, so a
	// latency watchdog comparing against the replica's build expectation
	// can see it. StuckSymbol names a kernel symbol (substring match)
	// that stalls StuckStallSec on every invocation. SilentCorruptRate is
	// the per-layer probability an output activation is silently spiked —
	// no error, no latency signature, only disagreement with peers.
	InflateFactor     float64
	StuckSymbol       string
	StuckStallSec     float64
	SilentCorruptRate float64
}

// Scenario returns a plan in which every fault class fires at the given
// base rate, with representative severities: the single-knob sweep used
// by cmd/faultbench. Rate 0 is the pristine device.
func Scenario(seed string, rate float64) Plan {
	return Plan{
		Seed:             seed,
		LaunchFailRate:   rate,
		StallRate:        rate,
		StallSec:         2e-3,
		ClockDropRate:    rate,
		ClockDropFrac:    0.5,
		ClockRecoverStep: 1.03,
		MemcpyRetryRate:  rate,
		MemcpyMaxRetries: 3,
		AllocFailRate:    rate / 4,
		BitFlipRate:      rate / 2,
		FlipsPerEvent:    1,
	}
}

// ReplicaHavoc is the replica-scoped degradation scenario of the chaos
// study: a sustained 10x kernel-time inflation (a replica stuck in its
// minimum DVFS state), a stuck kernel (when stuckSymbol is non-empty),
// and silent output corruption — the three signatures a fleet
// supervisor must detect from outside, since none of them return
// errors. The inflation factor is chosen so the end-to-end latency
// ratio stays well above a watchdog threshold even on tiny proxy
// engines, where fixed launch overhead dominates and dilutes kernel-
// time inflation.
func ReplicaHavoc(seed, stuckSymbol string) Plan {
	return Plan{
		Seed:              seed,
		InflateFactor:     10,
		StuckSymbol:       stuckSymbol,
		StuckStallSec:     2e-3,
		SilentCorruptRate: 0.08,
	}
}

// Zero reports whether the plan injects nothing.
func (p Plan) Zero() bool {
	return p.LaunchFailRate == 0 && p.StallRate == 0 && p.ClockDropRate == 0 &&
		p.MemcpyRetryRate == 0 && p.AllocFailRate == 0 && p.CapacityBytes == 0 &&
		p.BitFlipRate == 0 && p.InflateFactor <= 1 && p.StuckSymbol == "" &&
		p.SilentCorruptRate == 0
}

// Counters tallies injected faults by kind. The zero value is ready to
// use; methods are not synchronized (Injector holds its own lock).
type Counters struct {
	counts [nKinds]uint64
}

// Add increments the counter for kind by n.
func (c *Counters) Add(k Kind, n uint64) { c.counts[k] += n }

// Get returns the count for kind.
func (c Counters) Get(k Kind) uint64 { return c.counts[k] }

// Total returns the sum over all kinds.
func (c Counters) Total() uint64 {
	var t uint64
	for _, n := range c.counts {
		t += n
	}
	return t
}

// String renders the non-zero counters.
func (c Counters) String() string {
	var parts []string
	for k := Kind(0); k < nKinds; k++ {
		if c.counts[k] > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", k, c.counts[k]))
		}
	}
	if len(parts) == 0 {
		return "no faults"
	}
	return strings.Join(parts, " ")
}

// Injector replays a Plan deterministically. It implements
// core.FaultInjector plus the Alloc/Free pair the serve package uses for
// memory-pressure admission. Safe for concurrent use.
type Injector struct {
	plan Plan

	mu         sync.Mutex
	rng        *fixrand.Source
	clockScale float64 // current DVFS state: 1 = nominal
	inUseBytes float64
	counters   Counters
}

// New creates an injector for the plan; scenario disambiguates several
// injectors drawn from one plan (e.g. one per platform) so their fault
// streams are independent but individually reproducible.
func (p Plan) New(scenario string) *Injector {
	if p.ClockDropFrac <= 0 || p.ClockDropFrac > 1 {
		p.ClockDropFrac = 0.5
	}
	if p.ClockRecoverStep <= 1 {
		p.ClockRecoverStep = 1.03
	}
	if p.FlipsPerEvent < 1 {
		p.FlipsPerEvent = 1
	}
	if p.MemcpyMaxRetries < 0 {
		p.MemcpyMaxRetries = 0
	}
	return &Injector{
		plan:       p,
		rng:        fixrand.NewKeyed("faults/" + p.Seed + "/" + scenario),
		clockScale: 1,
	}
}

// Injector implements the runtime's hook surface.
var _ core.FaultInjector = (*Injector)(nil)

// Plan returns the injector's plan.
func (in *Injector) Plan() Plan { return in.plan }

// Counters returns a snapshot of the fault tallies.
func (in *Injector) Counters() Counters {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counters
}

// MemcpyH2D implements core.FaultInjector: each copy attempt fails with
// MemcpyRetryRate; after MemcpyMaxRetries failed attempts the copy is
// declared dead.
func (in *Injector) MemcpyH2D(bytes int64) (int, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.plan.MemcpyRetryRate <= 0 {
		return 0, nil
	}
	retries := 0
	for in.rng.Float64() < in.plan.MemcpyRetryRate {
		if retries >= in.plan.MemcpyMaxRetries {
			in.counters.Add(KindMemcpyFail, 1)
			return retries, fmt.Errorf("faults: H2D copy of %d bytes failed after %d retries", bytes, retries)
		}
		retries++
		in.counters.Add(KindMemcpyRetry, 1)
	}
	return retries, nil
}

// Launch implements core.FaultInjector: per-launch transient failures,
// stream stalls, and the DVFS clock state machine (drop on fault,
// multiplicative recovery ramp on every subsequent launch).
func (in *Injector) Launch(index int, symbol string) (lf core.LaunchFault) {
	in.mu.Lock()
	defer in.mu.Unlock()
	// Recovery ramp first: the governor steps the clock back toward
	// nominal between launches.
	if in.clockScale < 1 {
		in.clockScale *= in.plan.ClockRecoverStep
		if in.clockScale > 1 {
			in.clockScale = 1
		}
	}
	if in.plan.ClockDropRate > 0 && in.rng.Float64() < in.plan.ClockDropRate {
		in.clockScale = in.plan.ClockDropFrac
		in.counters.Add(KindClockDrop, 1)
	}
	lf.ClockScale = in.clockScale
	// Sustained replica-scoped inflation rides on top of the DVFS state:
	// no random draw, so it never perturbs the transient-fault streams.
	if in.plan.InflateFactor > 1 {
		lf.ClockScale /= in.plan.InflateFactor
		in.counters.Add(KindLatencyInflate, 1)
	}
	if in.plan.StuckSymbol != "" && strings.Contains(symbol, in.plan.StuckSymbol) {
		lf.StallSec += in.plan.StuckStallSec
		in.counters.Add(KindStuckKernel, 1)
	}
	if in.plan.StallRate > 0 && in.rng.Float64() < in.plan.StallRate {
		lf.StallSec += in.plan.StallSec
		in.counters.Add(KindStreamStall, 1)
	}
	if in.plan.LaunchFailRate > 0 && in.rng.Float64() < in.plan.LaunchFailRate {
		lf.Fail = true
		in.counters.Add(KindLaunchFail, 1)
	}
	return lf
}

// CorruptWeights implements core.FaultInjector: with BitFlipRate it
// returns a copy of w with FlipsPerEvent random bits flipped; otherwise
// it returns w unchanged. The original tensor is never mutated.
func (in *Injector) CorruptWeights(layer, key string, w *tensor.Tensor) *tensor.Tensor {
	if w == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.plan.BitFlipRate <= 0 || in.rng.Float64() >= in.plan.BitFlipRate {
		return w
	}
	c := w.Clone()
	in.flipBits(c)
	return c
}

// silentSpike is the additive excursion of a silent-corruption event:
// large enough to move an argmax, invisible to every error path.
const silentSpike = 1e3

// CorruptActivation implements core.FaultInjector: with BitFlipRate it
// flips FlipsPerEvent random bits of y in place; with SilentCorruptRate
// it adds a large spike to one element. Each mechanism draws from the
// stream only when its rate is positive, so enabling one never shifts
// the other's draw sequence.
func (in *Injector) CorruptActivation(layer string, y *tensor.Tensor) {
	if y == nil || len(y.Data) == 0 {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.plan.BitFlipRate > 0 && in.rng.Float64() < in.plan.BitFlipRate {
		in.flipBits(y)
	}
	if in.plan.SilentCorruptRate > 0 && in.rng.Float64() < in.plan.SilentCorruptRate {
		y.Data[in.rng.Intn(len(y.Data))] += silentSpike
		in.counters.Add(KindSilentCorrupt, 1)
	}
}

// flipBits flips FlipsPerEvent random bits across the tensor. Bits 0-30
// (mantissa and exponent) are targeted; flipped exponent bits produce
// the large-magnitude excursions real SEU studies observe. Callers hold
// the lock.
func (in *Injector) flipBits(t *tensor.Tensor) {
	for i := 0; i < in.plan.FlipsPerEvent; i++ {
		idx := in.rng.Intn(len(t.Data))
		bit := uint(in.rng.Intn(31))
		t.Data[idx] = math.Float32frombits(math.Float32bits(t.Data[idx]) ^ (1 << bit))
	}
	in.counters.Add(KindBitFlip, 1)
}

// Alloc models reserving a request's per-thread memory footprint
// (Engine.PerThreadMemBytes): it fails under the plan's random
// allocation-failure rate, or deterministically when CapacityBytes is
// set and the reservation would exceed it. A successful Alloc must be
// paired with Free.
func (in *Injector) Alloc(bytes float64) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.plan.CapacityBytes > 0 && in.inUseBytes+bytes > in.plan.CapacityBytes {
		in.counters.Add(KindAllocFail, 1)
		return fmt.Errorf("faults: allocation of %.0f bytes exceeds capacity (%.0f of %.0f in use)",
			bytes, in.inUseBytes, in.plan.CapacityBytes)
	}
	if in.plan.AllocFailRate > 0 && in.rng.Float64() < in.plan.AllocFailRate {
		in.counters.Add(KindAllocFail, 1)
		return fmt.Errorf("faults: allocation of %.0f bytes failed under memory pressure", bytes)
	}
	in.inUseBytes += bytes
	return nil
}

// Free releases a reservation made by Alloc.
func (in *Injector) Free(bytes float64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.inUseBytes -= bytes
	if in.inUseBytes < 0 {
		in.inUseBytes = 0
	}
}
