package faults

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// Draw-order stability: the device, network, and cluster injectors each
// draw from their own fixrand stream, so adding a new fault layer (or
// consulting one mid-run) must never shift the verdict sequence of
// another. These goldens pin the exact verdict signatures of the device
// and network streams; if either literal ever changes, an existing
// fault layer's replay determinism broke — seeded chaos runs recorded
// before the change would no longer reproduce.

func bit(b bool) int {
	if b {
		return 1
	}
	return 0
}

// deviceDrawSignature consults a device injector through a fixed
// sequence of launches and H2D copies, calling interleave (when set)
// before every consult so tests can provoke cross-stream interference.
func deviceDrawSignature(interleave func(i int)) string {
	in := Scenario("draworder", 0.3).New("golden")
	var b strings.Builder
	for i := 0; i < 24; i++ {
		if interleave != nil {
			interleave(i)
		}
		lf := in.Launch(i, "k_conv")
		fmt.Fprintf(&b, "%d%d", bit(lf.Fail), bit(lf.StallSec > 0))
	}
	for i := 0; i < 4; i++ {
		if interleave != nil {
			interleave(24 + i)
		}
		retries, err := in.MemcpyH2D(4096)
		fmt.Fprintf(&b, ";m%d%d", retries, bit(err != nil))
	}
	fmt.Fprintf(&b, "|%v", in.Counters())
	return b.String()
}

// netDrawSignature is deviceDrawSignature for the network injector.
func netDrawSignature(interleave func(i int)) string {
	p := NetPlan{
		Seed: "draworder", SlowClientRate: 0.3, SlowChunkBytes: 8,
		SlowChunkDelay: time.Millisecond, DisconnectRate: 0.3,
		BurstEvery: 4, BurstFactor: 3,
	}
	in := p.NewNet("golden")
	var b strings.Builder
	for i := 0; i < 24; i++ {
		if interleave != nil {
			interleave(i)
		}
		_, _, slow := in.SlowClient()
		fmt.Fprintf(&b, "%d%d%d", bit(slow), bit(in.Disconnect()), in.Burst(i))
	}
	fmt.Fprintf(&b, "|%v", in.Counters())
	return b.String()
}

// The golden literals. Regenerate ONLY if a deliberate, documented
// stream-layout change is being made — and say so in the commit.
const (
	goldenDeviceSignature = "110000000101000100000011000111110100011101100010;m00;m00;m10;m00|clock-drop=8 launch-fail=7 stream-stall=12 memcpy-retry=1"
	goldenNetSignature    = "001001001011003001001001113001011001003001001101003001101011003111001011|slow-client=4 client-gone=6 burst=5"
)

func TestDeviceDrawOrderGolden(t *testing.T) {
	if got := deviceDrawSignature(nil); got != goldenDeviceSignature {
		t.Fatalf("device draw order shifted:\n got %s\nwant %s", got, goldenDeviceSignature)
	}
}

func TestNetDrawOrderGolden(t *testing.T) {
	if got := netDrawSignature(nil); got != goldenNetSignature {
		t.Fatalf("net draw order shifted:\n got %s\nwant %s", got, goldenNetSignature)
	}
}

// TestClusterInjectorDoesNotShiftExistingStreams interleaves cluster
// injector consults — including its probabilistic link draws — between
// every device and network consult: the golden signatures must hold.
func TestClusterInjectorDoesNotShiftExistingStreams(t *testing.T) {
	ci := ClusterChaos("draworder", 1, 4).New("golden")
	interleave := func(i int) {
		ci.Transfer(i%2, i)
		ci.NodeCrashed(1, i)
		ci.NodeHangSec(0, i)
		ci.NodeRestarted(i)
	}
	if got := deviceDrawSignature(interleave); got != goldenDeviceSignature {
		t.Fatalf("cluster consults shifted the device stream:\n got %s\nwant %s", got, goldenDeviceSignature)
	}
	if got := netDrawSignature(interleave); got != goldenNetSignature {
		t.Fatalf("cluster consults shifted the net stream:\n got %s\nwant %s", got, goldenNetSignature)
	}
	if ci.Counters().Total() == 0 {
		t.Fatal("interleave never consulted the cluster stream (vacuous test)")
	}
}

// TestKindNamesArePinned freezes the existing kind strings (counter
// rendering is part of archived chaos transcripts) and the invariant
// that new cluster kinds were appended, never inserted.
func TestKindNamesArePinned(t *testing.T) {
	want := map[Kind]string{
		KindClockDrop:      "clock-drop",
		KindLaunchFail:     "launch-fail",
		KindStreamStall:    "stream-stall",
		KindMemcpyRetry:    "memcpy-retry",
		KindMemcpyFail:     "memcpy-fail",
		KindAllocFail:      "alloc-fail",
		KindBitFlip:        "bit-flip",
		KindLatencyInflate: "latency-inflate",
		KindStuckKernel:    "stuck-kernel",
		KindSilentCorrupt:  "silent-corrupt",
		KindSlowClient:     "slow-client",
		KindClientGone:     "client-gone",
		KindBurst:          "burst",
		KindLinkDelay:      "link-delay",
		KindLinkDrop:       "link-drop",
		KindLinkPartition:  "link-partition",
		KindNodeCrash:      "node-crash",
		KindNodeHang:       "node-hang",
	}
	for k, name := range want {
		if k.String() != name {
			t.Fatalf("Kind(%d) renders %q, want %q", k, k.String(), name)
		}
	}
	if KindBurst != 12 || KindLinkDelay != 13 {
		t.Fatal("cluster kinds must append after the network kinds, never shift them")
	}
}
