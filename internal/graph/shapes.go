package graph

import (
	"fmt"

	"edgeinfer/internal/tensor"
)

// inferShapes walks the (already topologically sorted) layers and fills
// in OutShape for each, validating operator parameters against input
// shapes as it goes.
func (g *Graph) inferShapes() error {
	for _, l := range g.Layers {
		shape, err := g.layerOutShape(l)
		if err != nil {
			return fmt.Errorf("graph %s, layer %s(%s): %w", g.Name, l.Name, l.Op, err)
		}
		l.OutShape = shape
	}
	return nil
}

func (g *Graph) layerOutShape(l *Layer) ([4]int, error) {
	var in [4]int
	if l.Op != OpInput {
		in = g.byName[l.Inputs[0]].OutShape
	}
	switch l.Op {
	case OpInput:
		return g.InputShape, nil

	case OpConv:
		p := l.Conv
		if p.Kernel < 1 || p.Stride < 1 || p.Pad < 0 || p.OutC < 1 {
			return in, fmt.Errorf("conv params k=%d s=%d p=%d outC=%d invalid", p.Kernel, p.Stride, p.Pad, p.OutC)
		}
		groups := p.Groups
		if groups < 0 {
			return in, fmt.Errorf("conv groups %d negative", groups)
		}
		if groups == 0 {
			groups = 1
		}
		if in[1]%groups != 0 || p.OutC%groups != 0 {
			return in, fmt.Errorf("groups %d do not divide channels %d->%d", groups, in[1], p.OutC)
		}
		oh := tensor.ConvOutDim(in[2], p.Kernel, p.Stride, p.Pad)
		ow := tensor.ConvOutDim(in[3], p.Kernel, p.Stride, p.Pad)
		if oh <= 0 || ow <= 0 {
			return in, fmt.Errorf("non-positive output %dx%d from input %v", oh, ow, in)
		}
		return [4]int{in[0], p.OutC, oh, ow}, nil

	case OpMaxPool, OpAvgPool:
		p := l.Pool
		if p.Kernel < 1 || p.Stride < 1 || p.Pad < 0 {
			return in, fmt.Errorf("pool params k=%d s=%d p=%d invalid", p.Kernel, p.Stride, p.Pad)
		}
		oh := tensor.ConvOutDim(in[2], p.Kernel, p.Stride, p.Pad)
		ow := tensor.ConvOutDim(in[3], p.Kernel, p.Stride, p.Pad)
		if oh <= 0 || ow <= 0 {
			return in, fmt.Errorf("non-positive pool output %dx%d from input %v", oh, ow, in)
		}
		return [4]int{in[0], in[1], oh, ow}, nil

	case OpGlobalAvgPool:
		return [4]int{in[0], in[1], 1, 1}, nil

	case OpReLU, OpLeakyReLU, OpSigmoid, OpBatchNorm, OpLRN, OpSoftmax, OpDropout, OpScale:
		return in, nil

	case OpFC:
		if l.OutUnits <= 0 {
			return in, fmt.Errorf("fc with OutUnits=%d", l.OutUnits)
		}
		return [4]int{in[0], l.OutUnits, 1, 1}, nil

	case OpFlatten:
		return [4]int{in[0], in[1] * in[2] * in[3], 1, 1}, nil

	case OpAdd:
		if len(l.Inputs) < 2 {
			return in, fmt.Errorf("add needs >=2 inputs, got %d", len(l.Inputs))
		}
		for _, name := range l.Inputs[1:] {
			if g.byName[name].OutShape != in {
				return in, fmt.Errorf("add shape mismatch %v vs %v", g.byName[name].OutShape, in)
			}
		}
		return in, nil

	case OpConcat:
		if len(l.Inputs) < 2 {
			return in, fmt.Errorf("concat needs >=2 inputs, got %d", len(l.Inputs))
		}
		c := 0
		for _, name := range l.Inputs {
			s := g.byName[name].OutShape
			if s[0] != in[0] || s[2] != in[2] || s[3] != in[3] {
				return in, fmt.Errorf("concat spatial mismatch %v vs %v", s, in)
			}
			c += s[1]
		}
		return [4]int{in[0], c, in[2], in[3]}, nil

	case OpUpsample:
		return [4]int{in[0], in[1], in[2] * 2, in[3] * 2}, nil

	default:
		return in, fmt.Errorf("unknown op %v", l.Op)
	}
}

// OutputShapes returns the shapes of the declared graph outputs in order.
// The graph must be finalized.
func (g *Graph) OutputShapes() [][4]int {
	out := make([][4]int, len(g.Outputs))
	for i, name := range g.Outputs {
		out[i] = g.byName[name].OutShape
	}
	return out
}
