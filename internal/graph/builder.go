package graph

import "edgeinfer/internal/tensor"

// Builder provides a fluent chain API for constructing Graphs: each call
// appends a layer consuming the cursor (the previously added layer) and
// moves the cursor to it. Branching networks use From and the explicit
// multi-input ops (AddJoin, ConcatJoin).
type Builder struct {
	G      *Graph
	cursor string
}

// NewBuilder starts a graph with the given input shape; the cursor is the
// input layer "data".
func NewBuilder(name string, inputShape [4]int) *Builder {
	return &Builder{G: New(name, inputShape), cursor: "data"}
}

// From moves the cursor to an existing layer, returning the builder for
// chaining branch construction.
func (b *Builder) From(name string) *Builder {
	if b.G.Layer(name) == nil {
		panic("graph: From on unknown layer " + name)
	}
	nb := *b
	nb.cursor = name
	return &nb
}

// Cursor returns the name of the current cursor layer.
func (b *Builder) Cursor() string { return b.cursor }

func (b *Builder) add(l *Layer) *Builder {
	l.Inputs = []string{b.cursor}
	b.G.Add(l)
	b.cursor = l.Name
	return b
}

// Conv appends a 2-D convolution.
func (b *Builder) Conv(name string, outC, kernel, stride, pad int) *Builder {
	return b.add(&Layer{Name: name, Op: OpConv,
		Conv: tensor.ConvParams{OutC: outC, Kernel: kernel, Stride: stride, Pad: pad, Groups: 1}})
}

// DWConv appends a depthwise convolution (groups == input channels).
func (b *Builder) DWConv(name string, channels, kernel, stride, pad int) *Builder {
	return b.add(&Layer{Name: name, Op: OpConv,
		Conv: tensor.ConvParams{OutC: channels, Kernel: kernel, Stride: stride, Pad: pad, Groups: channels}})
}

// MaxPool appends a max-pooling layer.
func (b *Builder) MaxPool(name string, kernel, stride, pad int) *Builder {
	return b.add(&Layer{Name: name, Op: OpMaxPool, Pool: tensor.PoolParams{Kernel: kernel, Stride: stride, Pad: pad}})
}

// AvgPool appends an average-pooling layer.
func (b *Builder) AvgPool(name string, kernel, stride, pad int) *Builder {
	return b.add(&Layer{Name: name, Op: OpAvgPool, Pool: tensor.PoolParams{Kernel: kernel, Stride: stride, Pad: pad}})
}

// GlobalAvgPool appends a global average pool.
func (b *Builder) GlobalAvgPool(name string) *Builder {
	return b.add(&Layer{Name: name, Op: OpGlobalAvgPool})
}

// ReLU appends a ReLU activation.
func (b *Builder) ReLU(name string) *Builder {
	return b.add(&Layer{Name: name, Op: OpReLU})
}

// LeakyReLU appends a leaky ReLU with slope alpha.
func (b *Builder) LeakyReLU(name string, alpha float32) *Builder {
	return b.add(&Layer{Name: name, Op: OpLeakyReLU, Alpha: alpha})
}

// Sigmoid appends a sigmoid activation.
func (b *Builder) Sigmoid(name string) *Builder {
	return b.add(&Layer{Name: name, Op: OpSigmoid})
}

// FC appends a fully-connected layer with out units.
func (b *Builder) FC(name string, out int) *Builder {
	return b.add(&Layer{Name: name, Op: OpFC, OutUnits: out})
}

// BatchNorm appends an inference-mode batch normalization.
func (b *Builder) BatchNorm(name string) *Builder {
	return b.add(&Layer{Name: name, Op: OpBatchNorm})
}

// LRN appends local response normalization with AlexNet-style defaults.
func (b *Builder) LRN(name string, size int, alpha, beta, k float32) *Builder {
	return b.add(&Layer{Name: name, Op: OpLRN, LRNSize: size, Alpha: alpha, LRNBeta: beta, LRNK: k})
}

// Softmax appends a softmax.
func (b *Builder) Softmax(name string) *Builder {
	return b.add(&Layer{Name: name, Op: OpSoftmax})
}

// Dropout appends a training-only dropout layer (dead at inference).
func (b *Builder) Dropout(name string) *Builder {
	return b.add(&Layer{Name: name, Op: OpDropout})
}

// Scale appends an affine per-channel scale layer.
func (b *Builder) Scale(name string) *Builder {
	return b.add(&Layer{Name: name, Op: OpScale})
}

// Upsample appends a 2x nearest-neighbour upsample.
func (b *Builder) Upsample(name string) *Builder {
	return b.add(&Layer{Name: name, Op: OpUpsample})
}

// Flatten appends an explicit flatten.
func (b *Builder) Flatten(name string) *Builder {
	return b.add(&Layer{Name: name, Op: OpFlatten})
}

// AddJoin appends an elementwise-add joining the cursor with the named
// branches.
func (b *Builder) AddJoin(name string, others ...string) *Builder {
	l := &Layer{Name: name, Op: OpAdd, Inputs: append([]string{b.cursor}, others...)}
	b.G.Add(l)
	b.cursor = name
	return b
}

// ConcatJoin appends a channel concat of the named layers (the cursor is
// NOT implicitly included).
func (b *Builder) ConcatJoin(name string, inputs ...string) *Builder {
	l := &Layer{Name: name, Op: OpConcat, Inputs: inputs}
	b.G.Add(l)
	b.cursor = name
	return b
}

// Finish finalizes and returns the graph, reporting structural errors.
// Builders driven by external input (generated architectures, imported
// topologies) must use Finish so a bad graph surfaces as an error.
func (b *Builder) Finish() (*Graph, error) {
	if err := b.G.Finalize(); err != nil {
		return nil, err
	}
	return b.G, nil
}

// Done is Finish for static model definitions, where a structural failure
// is a programming bug and panicking at init/build time is the right
// behaviour. It is unreachable from the untrusted plan-loading path.
func (b *Builder) Done() *Graph {
	g, err := b.Finish()
	if err != nil {
		panic(err) //rtlint:allow panicpath -- static model definitions only; external input uses Finish
	}
	return g
}
