package graph

import (
	"fmt"
	"strings"
)

// dotColors maps op categories to Graphviz fill colors.
func dotColor(op OpType) string {
	switch op {
	case OpInput:
		return "lightgrey"
	case OpConv, OpFC:
		return "lightblue"
	case OpMaxPool, OpAvgPool, OpGlobalAvgPool:
		return "palegreen"
	case OpBatchNorm, OpScale, OpLRN:
		return "khaki"
	case OpReLU, OpLeakyReLU, OpSigmoid, OpSoftmax:
		return "mistyrose"
	case OpAdd, OpConcat:
		return "plum"
	case OpDropout:
		return "white"
	default:
		return "lightyellow"
	}
}

// DOT renders the graph in Graphviz format for visual inspection
// (rtexec -dot). Node labels carry the op and output shape; conv/FC
// nodes include their dimensions.
func (g *Graph) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n  node [shape=box, style=filled, fontname=\"monospace\"];\n", g.Name)
	for _, l := range g.Layers {
		label := fmt.Sprintf("%s\n%s", l.Name, l.Op)
		switch l.Op {
		case OpConv:
			label += fmt.Sprintf(" %dx%d/%d", l.Conv.Kernel, l.Conv.Kernel, l.Conv.Stride)
			if l.Conv.Groups > 1 {
				label += fmt.Sprintf(" g%d", l.Conv.Groups)
			}
		case OpFC:
			label += fmt.Sprintf(" ->%d", l.OutUnits)
		case OpMaxPool, OpAvgPool:
			label += fmt.Sprintf(" %dx%d/%d", l.Pool.Kernel, l.Pool.Kernel, l.Pool.Stride)
		}
		if g.finalized {
			s := l.OutShape
			label += fmt.Sprintf("\n[%d %d %d %d]", s[0], s[1], s[2], s[3])
		}
		fmt.Fprintf(&b, "  %q [label=%q, fillcolor=%s];\n", l.Name, label, dotColor(l.Op))
	}
	for _, l := range g.Layers {
		for _, in := range l.Inputs {
			fmt.Fprintf(&b, "  %q -> %q;\n", in, l.Name)
		}
	}
	for _, o := range g.Outputs {
		fmt.Fprintf(&b, "  %q [penwidth=3];\n", o)
	}
	b.WriteString("}\n")
	return b.String()
}
