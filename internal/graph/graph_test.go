package graph

import (
	"strings"
	"testing"
	"testing/quick"

	"edgeinfer/internal/fixrand"
	"edgeinfer/internal/tensor"
)

// smallNet builds a tiny LeNet-ish classifier used across tests.
func smallNet() *Graph {
	return NewBuilder("smallnet", [4]int{1, 3, 16, 16}).
		Conv("conv1", 8, 3, 1, 1).ReLU("relu1").
		MaxPool("pool1", 2, 2, 0).
		Conv("conv2", 16, 3, 1, 1).ReLU("relu2").
		MaxPool("pool2", 2, 2, 0).
		FC("fc", 10).Softmax("prob").Done()
}

// branchNet builds a graph with a residual add and an inception-style
// concat, exercising multi-input shape inference.
func branchNet() *Graph {
	b := NewBuilder("branchnet", [4]int{1, 4, 8, 8})
	b.Conv("stem", 8, 3, 1, 1)
	b.From("stem").Conv("b1", 8, 3, 1, 1)
	b.From("stem").Conv("b2", 8, 1, 1, 0)
	b.From("b1").AddJoin("res", "b2")
	b.From("stem").Conv("c1", 4, 1, 1, 0)
	b.ConcatJoin("cat", "res", "c1")
	b.From("cat").GlobalAvgPool("gap").FC("fc", 5)
	return b.Done()
}

func TestFinalizeShapes(t *testing.T) {
	g := smallNet()
	cases := map[string][4]int{
		"conv1": {1, 8, 16, 16},
		"pool1": {1, 8, 8, 8},
		"conv2": {1, 16, 8, 8},
		"pool2": {1, 16, 4, 4},
		"fc":    {1, 10, 1, 1},
		"prob":  {1, 10, 1, 1},
	}
	for name, want := range cases {
		if got := g.Layer(name).OutShape; got != want {
			t.Errorf("%s shape %v want %v", name, got, want)
		}
	}
	if len(g.Outputs) != 1 || g.Outputs[0] != "prob" {
		t.Fatalf("outputs %v", g.Outputs)
	}
}

func TestBranchShapes(t *testing.T) {
	g := branchNet()
	if got := g.Layer("res").OutShape; got != [4]int{1, 8, 8, 8} {
		t.Fatalf("res shape %v", got)
	}
	if got := g.Layer("cat").OutShape; got != [4]int{1, 12, 8, 8} {
		t.Fatalf("cat shape %v", got)
	}
	if got := g.Layer("fc").OutShape; got != [4]int{1, 5, 1, 1} {
		t.Fatalf("fc shape %v", got)
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on duplicate layer")
		}
	}()
	b := NewBuilder("dup", [4]int{1, 1, 4, 4})
	b.Conv("x", 1, 1, 1, 0).Conv("x", 1, 1, 1, 0)
}

func TestUnknownInputPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on unknown input")
		}
	}()
	g := New("bad", [4]int{1, 1, 4, 4})
	g.Add(&Layer{Name: "l", Op: OpReLU, Inputs: []string{"nope"}})
}

func TestCycleDetected(t *testing.T) {
	g := New("cyc", [4]int{1, 1, 4, 4})
	g.Add(&Layer{Name: "a", Op: OpReLU, Inputs: []string{"data"}})
	g.Add(&Layer{Name: "b", Op: OpReLU, Inputs: []string{"a"}})
	// introduce the cycle behind the API's back
	g.Layer("a").Inputs = []string{"b"}
	if err := g.Finalize(); err == nil {
		t.Fatal("cycle not detected")
	}
}

func TestTopoSortOrder(t *testing.T) {
	g := branchNet()
	pos := map[string]int{}
	for i, l := range g.Layers {
		pos[l.Name] = i
	}
	for _, l := range g.Layers {
		for _, in := range l.Inputs {
			if pos[in] >= pos[l.Name] {
				t.Fatalf("layer %s before its input %s", l.Name, in)
			}
		}
	}
}

func TestConsumers(t *testing.T) {
	g := branchNet()
	cs := g.Consumers("stem")
	if len(cs) != 3 {
		t.Fatalf("stem consumers %v", cs)
	}
}

func TestParamCount(t *testing.T) {
	g := smallNet()
	// conv1: 8*3*3*3 + 8 = 224
	if got := g.ParamCount(g.Layer("conv1")); got != 224 {
		t.Fatalf("conv1 params %d want 224", got)
	}
	// fc: input 16*4*4=256 -> 10: 2560 + 10
	if got := g.ParamCount(g.Layer("fc")); got != 2570 {
		t.Fatalf("fc params %d want 2570", got)
	}
	if g.TotalParams() <= 0 {
		t.Fatal("total params not positive")
	}
}

func TestFLOPs(t *testing.T) {
	g := smallNet()
	// conv1: 2 * (1*8*16*16) * (3*3*3) = 110592
	if got := g.FLOPs(g.Layer("conv1")); got != 110592 {
		t.Fatalf("conv1 flops %d want 110592", got)
	}
	if g.TotalFLOPs() <= g.FLOPs(g.Layer("conv1")) {
		t.Fatal("total flops should exceed a single layer")
	}
}

func TestModelSizeBytes(t *testing.T) {
	g := smallNet()
	want := g.TotalParams()*4 + int64(len(g.Layers))*256
	if got := g.ModelSizeBytes(); got != want {
		t.Fatalf("size %d want %d", got, want)
	}
}

func TestCountOps(t *testing.T) {
	g := smallNet()
	m := g.CountOps()
	if m[OpConv] != 2 || m[OpMaxPool] != 2 || m[OpFC] != 1 {
		t.Fatalf("op counts %v", m)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := smallNet()
	materialize(g)
	c := g.Clone()
	if err := c.Finalize(); err != nil {
		t.Fatal(err)
	}
	c.Layer("conv1").Weights["w"].Data[0] = 999
	if g.Layer("conv1").Weights["w"].Data[0] == 999 {
		t.Fatal("clone shares weights")
	}
	c.Remove("relu1")
	if g.Layer("relu1") == nil {
		t.Fatal("clone removal affected original")
	}
}

func TestRemoveSplices(t *testing.T) {
	g := smallNet()
	g.Remove("relu1")
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	if got := g.Layer("pool1").Inputs[0]; got != "conv1" {
		t.Fatalf("pool1 input %q want conv1", got)
	}
}

func TestRemoveOutputRedirects(t *testing.T) {
	g := smallNet()
	g.Remove("prob")
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	if g.Outputs[0] != "fc" {
		t.Fatalf("output %v want fc", g.Outputs)
	}
}

// materialize fills every parametric layer with small random weights.
func materialize(g *Graph) {
	src := fixrand.NewKeyed("test-weights/" + g.Name)
	for _, l := range g.Layers {
		switch l.Op {
		case OpConv:
			in := g.Layer(l.Inputs[0]).OutShape
			groups := l.Conv.Groups
			if groups == 0 {
				groups = 1
			}
			w := tensor.New(l.Conv.OutC, in[1]/groups, l.Conv.Kernel, l.Conv.Kernel)
			for i := range w.Data {
				w.Data[i] = float32(src.NormFloat64()) * 0.1
			}
			b := tensor.NewVec(l.Conv.OutC)
			l.Weights["w"], l.Weights["b"] = w, b
		case OpFC:
			in := g.Layer(l.Inputs[0]).OutShape
			n := in[1] * in[2] * in[3]
			w := tensor.New(1, l.OutUnits*n, 1, 1)
			for i := range w.Data {
				w.Data[i] = float32(src.NormFloat64()) * 0.1
			}
			l.Weights["w"], l.Weights["b"] = w, tensor.NewVec(l.OutUnits)
		case OpBatchNorm:
			in := g.Layer(l.Inputs[0]).OutShape
			gamma, beta := tensor.NewVec(in[1]), tensor.NewVec(in[1])
			mean, variance := tensor.NewVec(in[1]), tensor.NewVec(in[1])
			gamma.Fill(1)
			variance.Fill(1)
			l.Weights["gamma"], l.Weights["beta"] = gamma, beta
			l.Weights["mean"], l.Weights["var"] = mean, variance
		}
	}
}

func TestExecuteShapes(t *testing.T) {
	g := smallNet()
	materialize(g)
	x := tensor.New(1, 3, 16, 16)
	outs, err := g.Execute(x)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 {
		t.Fatalf("%d outputs", len(outs))
	}
	if outs[0].Shape() != [4]int{1, 10, 1, 1} {
		t.Fatalf("output shape %v", outs[0].Shape())
	}
}

func TestExecuteBranch(t *testing.T) {
	g := branchNet()
	materialize(g)
	src := fixrand.NewKeyed("xin")
	x := tensor.New(1, 4, 8, 8)
	for i := range x.Data {
		x.Data[i] = float32(src.NormFloat64())
	}
	outs, err := g.Execute(x)
	if err != nil {
		t.Fatal(err)
	}
	if outs[0].Shape() != [4]int{1, 5, 1, 1} {
		t.Fatalf("output shape %v", outs[0].Shape())
	}
}

func TestExecuteRejectsWrongInput(t *testing.T) {
	g := smallNet()
	materialize(g)
	if _, err := g.Execute(tensor.New(1, 1, 16, 16)); err == nil {
		t.Fatal("wrong input accepted")
	}
}

func TestExecuteRequiresFinalize(t *testing.T) {
	g := New("raw", [4]int{1, 1, 4, 4})
	if _, err := g.Execute(tensor.New(1, 1, 4, 4)); err == nil {
		t.Fatal("unfinalized graph executed")
	}
}

func TestDropoutIsIdentityAtInference(t *testing.T) {
	g := NewBuilder("dp", [4]int{1, 2, 4, 4}).Dropout("drop").Done()
	x := tensor.New(1, 2, 4, 4)
	x.Fill(3)
	outs, err := g.Execute(x)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range outs[0].Data {
		if v != 3 {
			t.Fatal("dropout altered values at inference")
		}
	}
}

// Property: topological sort of random layered DAGs always places inputs
// before consumers, and shape inference of pass-through chains preserves
// the input shape.
func TestRandomChainShapeProperty(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw uint8) bool {
		src := fixrand.New(seed)
		n := int(nRaw%10) + 1
		b := NewBuilder("chain", [4]int{1, 3, 8, 8})
		for i := 0; i < n; i++ {
			name := string(rune('a' + i))
			switch src.Intn(4) {
			case 0:
				b.ReLU("r" + name)
			case 1:
				b.Sigmoid("s" + name)
			case 2:
				b.Dropout("d" + name)
			case 3:
				b.Scale("c" + name)
			}
		}
		g := b.Done()
		last := g.Layers[len(g.Layers)-1]
		return last.OutShape == [4]int{1, 3, 8, 8}
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOutputShapes(t *testing.T) {
	g := branchNet()
	shapes := g.OutputShapes()
	if len(shapes) != 1 || shapes[0] != [4]int{1, 5, 1, 1} {
		t.Fatalf("output shapes %v", shapes)
	}
}

func TestOpString(t *testing.T) {
	if OpConv.String() != "conv" || OpType(250).String() == "" {
		t.Fatal("op string broken")
	}
}

func TestDOTRendering(t *testing.T) {
	g := branchNet()
	dot := g.DOT()
	for _, want := range []string{"digraph", `"stem" -> "b1"`, "fillcolor=lightblue", "rankdir"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
	// every layer appears as a node
	for _, l := range g.Layers {
		if !strings.Contains(dot, `"`+l.Name+`"`) {
			t.Errorf("layer %s missing from DOT", l.Name)
		}
	}
}

func TestBuilderFullMenu(t *testing.T) {
	b := NewBuilder("menu", [4]int{1, 4, 16, 16})
	b.Conv("c1", 8, 3, 1, 1).
		BatchNorm("bn").
		LeakyReLU("lk", 0.1).
		AvgPool("ap", 2, 2, 0).
		LRN("lrn", 5, 1e-4, 0.75, 1).
		Sigmoid("sg").
		Scale("sc").
		Upsample("up").
		MaxPool("mp", 2, 2, 0).
		Dropout("dp").
		Flatten("fl").
		FC("fc", 4).
		Softmax("sm")
	g := b.Done()
	if g.Layer("up").OutShape != [4]int{1, 8, 16, 16} {
		t.Fatalf("upsample shape %v", g.Layer("up").OutShape)
	}
	if g.Layer("fl").OutShape != [4]int{1, 8 * 8 * 8, 1, 1} {
		t.Fatalf("flatten shape %v", g.Layer("fl").OutShape)
	}
	if got := g.Layer("fc").OutShape; got != [4]int{1, 4, 1, 1} {
		t.Fatalf("fc shape %v", got)
	}
}

func TestBuilderDWConv(t *testing.T) {
	g := NewBuilder("dw", [4]int{1, 8, 8, 8}).DWConv("d", 8, 3, 1, 1).Done()
	l := g.Layer("d")
	if l.Conv.Groups != 8 || l.OutShape != [4]int{1, 8, 8, 8} {
		t.Fatalf("dwconv %+v shape %v", l.Conv, l.OutShape)
	}
}

func TestFromUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewBuilder("x", [4]int{1, 1, 4, 4}).From("nope")
}

func TestDonePanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	b := NewBuilder("bad", [4]int{1, 1, 4, 4})
	// pooling larger than the input makes shape inference fail
	b.MaxPool("p", 14, 9, 0)
	b.Done()
}

func TestFinalizeErrorPaths(t *testing.T) {
	// concat with mismatched spatial dims
	g := New("badcat", [4]int{1, 2, 8, 8})
	g.Add(&Layer{Name: "a", Op: OpMaxPool, Inputs: []string{"data"}, Pool: tensor.PoolParams{Kernel: 2, Stride: 2}})
	g.Add(&Layer{Name: "c", Op: OpConcat, Inputs: []string{"data", "a"}})
	if err := g.Finalize(); err == nil {
		t.Fatal("spatial-mismatch concat accepted")
	}
	// add with mismatched channels
	g2 := New("badadd", [4]int{1, 2, 8, 8})
	g2.Add(&Layer{Name: "cv", Op: OpConv, Inputs: []string{"data"}, Conv: tensor.ConvParams{OutC: 4, Kernel: 1, Stride: 1}})
	g2.Add(&Layer{Name: "ad", Op: OpAdd, Inputs: []string{"data", "cv"}})
	if err := g2.Finalize(); err == nil {
		t.Fatal("shape-mismatch add accepted")
	}
	// fc without units
	g3 := New("badfc", [4]int{1, 2, 4, 4})
	g3.Add(&Layer{Name: "f", Op: OpFC, Inputs: []string{"data"}})
	if err := g3.Finalize(); err == nil {
		t.Fatal("fc without units accepted")
	}
	// conv groups that do not divide
	g4 := New("badgrp", [4]int{1, 3, 4, 4})
	g4.Add(&Layer{Name: "c", Op: OpConv, Inputs: []string{"data"}, Conv: tensor.ConvParams{OutC: 4, Kernel: 1, Stride: 1, Groups: 2}})
	if err := g4.Finalize(); err == nil {
		t.Fatal("indivisible groups accepted")
	}
	// single-input add
	g5 := New("badadd1", [4]int{1, 2, 4, 4})
	g5.Add(&Layer{Name: "a", Op: OpAdd, Inputs: []string{"data"}})
	if err := g5.Finalize(); err == nil {
		t.Fatal("1-input add accepted")
	}
}

func TestRemovePanics(t *testing.T) {
	g := branchNet()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic removing multi-input layer")
		}
	}()
	g.Remove("res")
}

func TestRemoveInputPanics(t *testing.T) {
	g := smallNet()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic removing input")
		}
	}()
	g.Remove("data")
}

func TestRemoveUnknownIsNoop(t *testing.T) {
	g := smallNet()
	n := len(g.Layers)
	g.Remove("ghost")
	if len(g.Layers) != n {
		t.Fatal("removing unknown layer changed the graph")
	}
}
