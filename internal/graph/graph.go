// Package graph defines the neural-network intermediate representation
// shared by the whole system: framework importers produce Graphs, the
// inference-engine builder (internal/core) optimizes them, and the
// reference executor runs them numerically. A Graph is a DAG of named
// layers with full shape/parameter/FLOP accounting, which the GPU
// simulator uses for analytic timing at paper-scale dimensions.
package graph

import (
	"fmt"
	"sort"

	"edgeinfer/internal/tensor"
)

// OpType enumerates the layer operators supported by the IR. The set
// covers all 13 networks of the paper's Table II.
type OpType uint8

const (
	OpInput OpType = iota
	OpConv
	OpMaxPool
	OpAvgPool
	OpGlobalAvgPool
	OpReLU
	OpLeakyReLU
	OpSigmoid
	OpFC
	OpBatchNorm
	OpLRN
	OpSoftmax
	OpAdd
	OpConcat
	OpUpsample
	OpDropout // training-only; removed by the dead-layer pass
	OpScale   // identity affine; foldable
	OpFlatten // reshape to [N, C*H*W, 1, 1]
)

var opNames = map[OpType]string{
	OpInput: "input", OpConv: "conv", OpMaxPool: "maxpool",
	OpAvgPool: "avgpool", OpGlobalAvgPool: "gap", OpReLU: "relu",
	OpLeakyReLU: "leakyrelu", OpSigmoid: "sigmoid", OpFC: "fc",
	OpBatchNorm: "batchnorm", OpLRN: "lrn", OpSoftmax: "softmax",
	OpAdd: "add", OpConcat: "concat", OpUpsample: "upsample",
	OpDropout: "dropout", OpScale: "scale", OpFlatten: "flatten",
}

// String implements fmt.Stringer.
func (o OpType) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Layer is one node of the network DAG.
type Layer struct {
	Name   string
	Op     OpType
	Inputs []string // producer layer names; order matters for Concat/Add

	// Operator parameters (only the fields relevant to Op are used).
	Conv     tensor.ConvParams
	Pool     tensor.PoolParams
	OutUnits int     // FC output width
	Alpha    float32 // LeakyReLU slope or LRN alpha
	LRNSize  int
	LRNBeta  float32
	LRNK     float32

	// Weights maps parameter names ("w", "b", "gamma", "beta", "mean",
	// "var") to tensors. Populated by model builders or framework
	// importers; nil entries are permitted (e.g. bias-free conv).
	Weights map[string]*tensor.Tensor

	// OutShape is filled in by Graph.Finalize via shape inference.
	OutShape [4]int
}

// Graph is a network DAG. Layers are stored in insertion order; Finalize
// validates the DAG, topologically sorts it and infers shapes.
type Graph struct {
	Name       string
	Framework  string // training framework of origin ("caffe", "tensorflow", ...)
	Task       string // "classification", "detection", "segmentation"
	InputShape [4]int

	Layers  []*Layer
	Outputs []string // names of output layers; defaults to sinks

	byName    map[string]*Layer
	finalized bool
}

// New creates an empty graph with the given input shape [N, C, H, W].
func New(name string, inputShape [4]int) *Graph {
	g := &Graph{
		Name:       name,
		InputShape: inputShape,
		byName:     map[string]*Layer{},
	}
	in := &Layer{Name: "data", Op: OpInput, OutShape: inputShape}
	g.Layers = append(g.Layers, in)
	g.byName[in.Name] = in
	return g
}

// AddLayer appends a layer, validating the topology invariants every
// other method relies on. It is the entry point for layers that originate
// outside the process — deserialized engine plans, framework imports —
// where a malformed layer must surface as an error, never a panic.
func (g *Graph) AddLayer(l *Layer) error {
	if l.Name == "" {
		return fmt.Errorf("graph: layer with empty name")
	}
	if _, dup := g.byName[l.Name]; dup {
		return fmt.Errorf("graph: duplicate layer %q", l.Name)
	}
	if l.Op != OpInput && len(l.Inputs) == 0 {
		return fmt.Errorf("graph: layer %q has no inputs", l.Name)
	}
	for _, in := range l.Inputs {
		if _, ok := g.byName[in]; !ok {
			return fmt.Errorf("graph: layer %q references unknown input %q", l.Name, in)
		}
	}
	if l.Weights == nil {
		l.Weights = map[string]*tensor.Tensor{}
	}
	g.Layers = append(g.Layers, l)
	g.byName[l.Name] = l
	g.finalized = false
	return nil
}

// Add appends a layer. It panics on duplicate names or missing inputs —
// model construction errors are programming bugs, not runtime conditions.
// Untrusted callers (plan loaders, importers) must use AddLayer instead;
// Add is only reachable from static model definitions.
func (g *Graph) Add(l *Layer) *Layer {
	if err := g.AddLayer(l); err != nil {
		panic(err) //rtlint:allow panicpath -- static model definitions only; plan loaders use AddLayer
	}
	return l
}

// Layer returns the named layer, or nil if absent.
func (g *Graph) Layer(name string) *Layer { return g.byName[name] }

// Finalize validates the graph, sorts layers topologically, infers all
// output shapes and determines outputs (sink layers) if not set.
func (g *Graph) Finalize() error {
	sorted, err := g.topoSort()
	if err != nil {
		return err
	}
	g.Layers = sorted
	if err := g.inferShapes(); err != nil {
		return err
	}
	if len(g.Outputs) == 0 {
		g.Outputs = g.sinks()
	}
	for _, o := range g.Outputs {
		if g.byName[o] == nil {
			return fmt.Errorf("graph %s: declared output %q does not exist", g.Name, o)
		}
	}
	g.finalized = true
	return nil
}

// Finalized reports whether Finalize has succeeded since the last edit.
func (g *Graph) Finalized() bool { return g.finalized }

// sinks returns names of layers no other layer consumes, sorted for
// determinism.
func (g *Graph) sinks() []string {
	consumed := map[string]bool{}
	for _, l := range g.Layers {
		for _, in := range l.Inputs {
			consumed[in] = true
		}
	}
	var out []string
	for _, l := range g.Layers {
		if !consumed[l.Name] && l.Op != OpInput {
			out = append(out, l.Name)
		}
	}
	sort.Strings(out)
	return out
}

// topoSort returns the layers in topological order (Kahn's algorithm with
// deterministic tie-breaking by insertion order) or an error on cycles.
func (g *Graph) topoSort() ([]*Layer, error) {
	indeg := map[string]int{}
	dependents := map[string][]string{}
	for _, l := range g.Layers {
		indeg[l.Name] += 0
		for _, in := range l.Inputs {
			indeg[l.Name]++
			dependents[in] = append(dependents[in], l.Name)
		}
	}
	var queue []string
	for _, l := range g.Layers { // insertion order keeps sort stable
		if indeg[l.Name] == 0 {
			queue = append(queue, l.Name)
		}
	}
	var sorted []*Layer
	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		sorted = append(sorted, g.byName[name])
		for _, d := range dependents[name] {
			indeg[d]--
			if indeg[d] == 0 {
				queue = append(queue, d)
			}
		}
	}
	if len(sorted) != len(g.Layers) {
		return nil, fmt.Errorf("graph %s: cycle detected (%d of %d layers sorted)", g.Name, len(sorted), len(g.Layers))
	}
	return sorted, nil
}

// Consumers returns the names of layers that consume the named layer's
// output, in topological order.
func (g *Graph) Consumers(name string) []string {
	var out []string
	for _, l := range g.Layers {
		for _, in := range l.Inputs {
			if in == name {
				out = append(out, l.Name)
				break
			}
		}
	}
	return out
}

// Clone deep-copies the graph, including weights. The clone is
// un-finalized and must be Finalized before use.
func (g *Graph) Clone() *Graph {
	ng := &Graph{
		Name:       g.Name,
		Framework:  g.Framework,
		Task:       g.Task,
		InputShape: g.InputShape,
		Outputs:    append([]string(nil), g.Outputs...),
		byName:     map[string]*Layer{},
	}
	for _, l := range g.Layers {
		nl := *l
		nl.Inputs = append([]string(nil), l.Inputs...)
		nl.Weights = map[string]*tensor.Tensor{}
		for k, w := range l.Weights {
			if w != nil {
				nl.Weights[k] = w.Clone()
			}
		}
		ng.Layers = append(ng.Layers, &nl)
		ng.byName[nl.Name] = &nl
	}
	return ng
}

// RemoveLayer deletes the named layer, rewiring its consumers to its
// (single) input. Removing the input layer or a multi-input layer is a
// structural error; graphs assembled from untrusted plans go through this
// error-returning path rather than Remove.
func (g *Graph) RemoveLayer(name string) error {
	l := g.byName[name]
	if l == nil {
		return nil
	}
	if l.Op == OpInput {
		return fmt.Errorf("graph: cannot remove the input layer")
	}
	if len(l.Inputs) != 1 {
		return fmt.Errorf("graph: cannot splice out multi-input layer %q", name)
	}
	parent := l.Inputs[0]
	for _, other := range g.Layers {
		for i, in := range other.Inputs {
			if in == name {
				other.Inputs[i] = parent
			}
		}
	}
	for i, out := range g.Outputs {
		if out == name {
			g.Outputs[i] = parent
		}
	}
	idx := -1
	for i, ll := range g.Layers {
		if ll == l {
			idx = i
			break
		}
	}
	g.Layers = append(g.Layers[:idx], g.Layers[idx+1:]...)
	delete(g.byName, name)
	g.finalized = false
	return nil
}

// Remove is RemoveLayer for optimization passes over graphs the caller
// built itself, where a splice failure is a programming bug.
func (g *Graph) Remove(name string) {
	if err := g.RemoveLayer(name); err != nil {
		panic(err) //rtlint:allow panicpath -- pass-authored graphs only; plan paths use RemoveLayer
	}
}
