package graph

// ParamCount returns the number of learned scalar parameters of a layer,
// computed from its operator parameters and (finalized) input shape —
// independent of whether weight tensors are actually materialized, so the
// full-scale model sizes of the paper's Table II can be accounted without
// allocating gigabytes.
func (g *Graph) ParamCount(l *Layer) int64 {
	switch l.Op {
	case OpConv:
		in := g.byName[l.Inputs[0]].OutShape
		groups := l.Conv.Groups
		if groups == 0 {
			groups = 1
		}
		w := int64(l.Conv.OutC) * int64(in[1]/groups) * int64(l.Conv.Kernel) * int64(l.Conv.Kernel)
		return w + int64(l.Conv.OutC) // + bias
	case OpFC:
		in := g.byName[l.Inputs[0]].OutShape
		return int64(l.OutUnits)*int64(in[1]*in[2]*in[3]) + int64(l.OutUnits)
	case OpBatchNorm, OpScale:
		in := g.byName[l.Inputs[0]].OutShape
		return 2 * int64(in[1]) // gamma+beta (mean/var folded as constants)
	default:
		return 0
	}
}

// TotalParams sums ParamCount over all layers. The graph must be
// finalized.
func (g *Graph) TotalParams() int64 {
	var total int64
	for _, l := range g.Layers {
		total += g.ParamCount(l)
	}
	return total
}

// ModelSizeBytes returns the serialized un-optimized model size: FP32
// parameters plus a fixed per-layer framework header, approximating the
// .caffemodel / .pb / .weights sizes of Table II.
func (g *Graph) ModelSizeBytes() int64 {
	const perLayerHeader = 256
	return g.TotalParams()*4 + int64(len(g.Layers))*perLayerHeader
}

// FLOPs returns the multiply-accumulate-derived floating-point operation
// count of a single inference of layer l (2 ops per MAC), used by the GPU
// simulator's analytic kernel timing.
func (g *Graph) FLOPs(l *Layer) int64 {
	out := l.OutShape
	outElems := int64(out[0]) * int64(out[1]) * int64(out[2]) * int64(out[3])
	switch l.Op {
	case OpConv:
		in := g.byName[l.Inputs[0]].OutShape
		groups := l.Conv.Groups
		if groups == 0 {
			groups = 1
		}
		macsPerOut := int64(in[1]/groups) * int64(l.Conv.Kernel) * int64(l.Conv.Kernel)
		return 2 * outElems * macsPerOut
	case OpFC:
		in := g.byName[l.Inputs[0]].OutShape
		return 2 * int64(l.OutUnits) * int64(in[1]*in[2]*in[3])
	case OpMaxPool, OpAvgPool:
		return outElems * int64(l.Pool.Kernel) * int64(l.Pool.Kernel)
	case OpGlobalAvgPool:
		in := g.byName[l.Inputs[0]].OutShape
		return int64(in[0]) * int64(in[1]) * int64(in[2]) * int64(in[3])
	case OpLRN:
		return outElems * int64(l.LRNSize) * 4
	case OpBatchNorm, OpScale:
		return 2 * outElems
	case OpSoftmax:
		return 5 * outElems
	case OpAdd:
		return outElems * int64(len(l.Inputs)-1)
	case OpReLU, OpLeakyReLU, OpSigmoid:
		return outElems
	default:
		return 0
	}
}

// TotalFLOPs sums FLOPs over all layers.
func (g *Graph) TotalFLOPs() int64 {
	var total int64
	for _, l := range g.Layers {
		total += g.FLOPs(l)
	}
	return total
}

// ActivationBytes returns the output activation size of layer l in bytes
// at the given element width.
func (l *Layer) ActivationBytes(elemBytes int) int64 {
	s := l.OutShape
	return int64(s[0]) * int64(s[1]) * int64(s[2]) * int64(s[3]) * int64(elemBytes)
}

// CountOps returns the number of layers of each op type, used to report
// the "# Layers" column of Table II (e.g. "5 conv, 3 max pool").
func (g *Graph) CountOps() map[OpType]int {
	m := map[OpType]int{}
	for _, l := range g.Layers {
		m[l.Op]++
	}
	return m
}
