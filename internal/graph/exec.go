package graph

import (
	"fmt"

	"edgeinfer/internal/tensor"
)

// batchNormKeys is hoisted: EvalLayer sits on the batched-inference hot
// path and may not allocate the key list per call.
var batchNormKeys = []string{"gamma", "beta", "mean", "var"}

// Execute runs the graph numerically on input x using the bit-exact
// reference operators of internal/tensor, in FP32 throughout. This is the
// "un-optimized" execution path of the paper: one kernel per layer, no
// fusion, no quantization. It returns the tensors of all declared
// outputs. The graph must be finalized and must have weights materialized
// for every parametric layer.
func (g *Graph) Execute(x *tensor.Tensor) ([]*tensor.Tensor, error) {
	if !g.finalized {
		return nil, fmt.Errorf("graph %s: Execute before Finalize", g.Name)
	}
	want := g.InputShape
	if x.N != want[0] || x.C != want[1] || x.H != want[2] || x.W != want[3] {
		return nil, fmt.Errorf("graph %s: input shape %v, want %v", g.Name, x.Shape(), want)
	}
	acts := map[string]*tensor.Tensor{}
	for _, l := range g.Layers {
		var y *tensor.Tensor
		var err error
		if l.Op == OpInput {
			y = x
		} else {
			ins := make([]*tensor.Tensor, len(l.Inputs))
			for i, name := range l.Inputs {
				ins[i] = acts[name]
			}
			y, err = EvalLayer(l, ins)
			if err != nil {
				return nil, fmt.Errorf("graph %s, layer %s: %w", g.Name, l.Name, err)
			}
		}
		acts[l.Name] = y
	}
	outs := make([]*tensor.Tensor, len(g.Outputs))
	for i, name := range g.Outputs {
		outs[i] = acts[name]
	}
	return outs, nil
}

// EvalLayer evaluates a single layer on the given input tensors with the
// reference operators. It is exported so that the engine runtime can fall
// back to reference math for ops without specialized kernels.
//
// The reference operators in internal/tensor panic on malformed
// shapes/parameters — appropriate for model-construction bugs, but this
// entry point is also reachable from deserialized (untrusted) engine
// plans via Engine.Infer, so EvalLayer validates the hostile cases up
// front and converts any residual operator panic into an error: a
// corrupted engine must degrade, not crash the process.
func EvalLayer(l *Layer, ins []*tensor.Tensor) (y *tensor.Tensor, err error) {
	if len(ins) == 0 {
		return nil, fmt.Errorf("layer has no inputs")
	}
	for i, t := range ins {
		if t == nil {
			return nil, fmt.Errorf("input %d not materialized", i)
		}
	}
	defer func() {
		if r := recover(); r != nil {
			y, err = nil, fmt.Errorf("eval %s(%s): %v", l.Name, l.Op, r)
		}
	}()
	in := ins[0]
	switch l.Op {
	case OpConv:
		w, b := l.Weights["w"], l.Weights["b"]
		if w == nil {
			return nil, fmt.Errorf("conv has no weights materialized")
		}
		if err := checkConv(in, w, b, l.Conv); err != nil {
			return nil, err
		}
		return tensor.Conv2D(in, w, b, l.Conv), nil
	case OpMaxPool:
		return tensor.MaxPool2D(in, l.Pool), nil
	case OpAvgPool:
		return tensor.AvgPool2D(in, l.Pool), nil
	case OpGlobalAvgPool:
		return tensor.GlobalAvgPool2D(in), nil
	case OpReLU:
		return tensor.ReLU(in), nil
	case OpLeakyReLU:
		return tensor.LeakyReLU(in, l.Alpha), nil
	case OpSigmoid:
		return tensor.Sigmoid(in), nil
	case OpFC:
		w, b := l.Weights["w"], l.Weights["b"]
		if w == nil {
			return nil, fmt.Errorf("fc has no weights materialized")
		}
		if l.OutUnits < 1 {
			return nil, fmt.Errorf("fc with OutUnits=%d", l.OutUnits)
		}
		if want := l.OutUnits * in.C * in.H * in.W; w.Len() != want {
			return nil, fmt.Errorf("fc weight len %d, want %d", w.Len(), want)
		}
		if b != nil && b.Len() < l.OutUnits {
			return nil, fmt.Errorf("fc bias len %d, want %d", b.Len(), l.OutUnits)
		}
		return tensor.FC(in, w, b, l.OutUnits), nil
	case OpBatchNorm:
		for _, k := range batchNormKeys {
			if t := l.Weights[k]; t != nil && t.Len() < in.C {
				return nil, fmt.Errorf("batchnorm %s len %d, want %d", k, t.Len(), in.C)
			}
		}
		return tensor.BatchNorm(in, l.Weights["gamma"], l.Weights["beta"], l.Weights["mean"], l.Weights["var"], 1e-5), nil
	case OpLRN:
		return tensor.LRN(in, l.LRNSize, l.Alpha, l.LRNBeta, l.LRNK), nil
	case OpSoftmax:
		return tensor.Softmax(in), nil
	case OpAdd:
		y := ins[0]
		for _, t := range ins[1:] {
			if !y.SameShape(t) {
				return nil, fmt.Errorf("add shape mismatch %v vs %v", y.Shape(), t.Shape())
			}
			y = tensor.Add(y, t)
		}
		return y, nil
	case OpConcat:
		return tensor.Concat(ins...), nil
	case OpUpsample:
		return tensor.Upsample2x(in), nil
	case OpDropout:
		return in, nil // inference-time identity
	case OpScale:
		gamma, beta := l.Weights["gamma"], l.Weights["beta"]
		y := in.Clone()
		for c := 0; c < y.C; c++ {
			var sc, sh float32 = 1, 0
			if gamma != nil {
				sc = gamma.Data[c]
			}
			if beta != nil {
				sh = beta.Data[c]
			}
			for n := 0; n < y.N; n++ {
				for h := 0; h < y.H; h++ {
					for w := 0; w < y.W; w++ {
						y.Set(n, c, h, w, sc*in.At(n, c, h, w)+sh)
					}
				}
			}
		}
		return y, nil
	case OpFlatten:
		y := in.Clone()
		y.C, y.H, y.W = in.C*in.H*in.W, 1, 1
		return y, nil
	default:
		return nil, fmt.Errorf("EvalLayer: unsupported op %v", l.Op)
	}
}

// checkConv validates the conditions tensor.Conv2D would panic on, so a
// corrupted plan produces an error instead.
func checkConv(x, w, b *tensor.Tensor, p tensor.ConvParams) error {
	if p.Kernel < 1 || p.Stride < 1 || p.Pad < 0 || p.OutC < 1 {
		return fmt.Errorf("conv params k=%d s=%d p=%d outC=%d invalid", p.Kernel, p.Stride, p.Pad, p.OutC)
	}
	groups := p.Groups
	if groups <= 0 {
		groups = 1
	}
	if x.C%groups != 0 || p.OutC%groups != 0 {
		return fmt.Errorf("conv groups %d do not divide channels in=%d out=%d", groups, x.C, p.OutC)
	}
	if want := p.OutC * (x.C / groups) * p.Kernel * p.Kernel; w.Len() != want {
		return fmt.Errorf("conv weight len %d, want %d", w.Len(), want)
	}
	if b != nil && b.Len() < p.OutC {
		return fmt.Errorf("conv bias len %d, want %d", b.Len(), p.OutC)
	}
	if tensor.ConvOutDim(x.H, p.Kernel, p.Stride, p.Pad) < 1 ||
		tensor.ConvOutDim(x.W, p.Kernel, p.Stride, p.Pad) < 1 {
		return fmt.Errorf("conv output not positive for input %v", x.Shape())
	}
	return nil
}
