package graph

import (
	"fmt"

	"edgeinfer/internal/tensor"
)

// Execute runs the graph numerically on input x using the bit-exact
// reference operators of internal/tensor, in FP32 throughout. This is the
// "un-optimized" execution path of the paper: one kernel per layer, no
// fusion, no quantization. It returns the tensors of all declared
// outputs. The graph must be finalized and must have weights materialized
// for every parametric layer.
func (g *Graph) Execute(x *tensor.Tensor) ([]*tensor.Tensor, error) {
	if !g.finalized {
		return nil, fmt.Errorf("graph %s: Execute before Finalize", g.Name)
	}
	want := g.InputShape
	if x.N != want[0] || x.C != want[1] || x.H != want[2] || x.W != want[3] {
		return nil, fmt.Errorf("graph %s: input shape %v, want %v", g.Name, x.Shape(), want)
	}
	acts := map[string]*tensor.Tensor{}
	for _, l := range g.Layers {
		var y *tensor.Tensor
		var err error
		if l.Op == OpInput {
			y = x
		} else {
			ins := make([]*tensor.Tensor, len(l.Inputs))
			for i, name := range l.Inputs {
				ins[i] = acts[name]
			}
			y, err = EvalLayer(l, ins)
			if err != nil {
				return nil, fmt.Errorf("graph %s, layer %s: %w", g.Name, l.Name, err)
			}
		}
		acts[l.Name] = y
	}
	outs := make([]*tensor.Tensor, len(g.Outputs))
	for i, name := range g.Outputs {
		outs[i] = acts[name]
	}
	return outs, nil
}

// EvalLayer evaluates a single layer on the given input tensors with the
// reference operators. It is exported so that the engine runtime can fall
// back to reference math for ops without specialized kernels.
func EvalLayer(l *Layer, ins []*tensor.Tensor) (*tensor.Tensor, error) {
	in := ins[0]
	switch l.Op {
	case OpConv:
		w, b := l.Weights["w"], l.Weights["b"]
		if w == nil {
			return nil, fmt.Errorf("conv has no weights materialized")
		}
		return tensor.Conv2D(in, w, b, l.Conv), nil
	case OpMaxPool:
		return tensor.MaxPool2D(in, l.Pool), nil
	case OpAvgPool:
		return tensor.AvgPool2D(in, l.Pool), nil
	case OpGlobalAvgPool:
		return tensor.GlobalAvgPool2D(in), nil
	case OpReLU:
		return tensor.ReLU(in), nil
	case OpLeakyReLU:
		return tensor.LeakyReLU(in, l.Alpha), nil
	case OpSigmoid:
		return tensor.Sigmoid(in), nil
	case OpFC:
		w, b := l.Weights["w"], l.Weights["b"]
		if w == nil {
			return nil, fmt.Errorf("fc has no weights materialized")
		}
		return tensor.FC(in, w, b, l.OutUnits), nil
	case OpBatchNorm:
		return tensor.BatchNorm(in, l.Weights["gamma"], l.Weights["beta"], l.Weights["mean"], l.Weights["var"], 1e-5), nil
	case OpLRN:
		return tensor.LRN(in, l.LRNSize, l.Alpha, l.LRNBeta, l.LRNK), nil
	case OpSoftmax:
		return tensor.Softmax(in), nil
	case OpAdd:
		y := ins[0]
		for _, t := range ins[1:] {
			y = tensor.Add(y, t)
		}
		return y, nil
	case OpConcat:
		return tensor.Concat(ins...), nil
	case OpUpsample:
		return tensor.Upsample2x(in), nil
	case OpDropout:
		return in, nil // inference-time identity
	case OpScale:
		gamma, beta := l.Weights["gamma"], l.Weights["beta"]
		y := in.Clone()
		for c := 0; c < y.C; c++ {
			var sc, sh float32 = 1, 0
			if gamma != nil {
				sc = gamma.Data[c]
			}
			if beta != nil {
				sh = beta.Data[c]
			}
			for n := 0; n < y.N; n++ {
				for h := 0; h < y.H; h++ {
					for w := 0; w < y.W; w++ {
						y.Set(n, c, h, w, sc*in.At(n, c, h, w)+sh)
					}
				}
			}
		}
		return y, nil
	case OpFlatten:
		y := in.Clone()
		y.C, y.H, y.W = in.C*in.H*in.W, 1, 1
		return y, nil
	default:
		return nil, fmt.Errorf("EvalLayer: unsupported op %v", l.Op)
	}
}
