package cluster

import (
	"fmt"

	"edgeinfer/internal/metrics"
	"edgeinfer/internal/serve"
)

// The cluster supervisor tracks per-node health from stage heartbeats,
// reusing serve's replica state machine: a node misses a heartbeat
// (crash) or blows its stage latency expectation (hang) and walks
// healthy→suspect→quarantined exactly like a sick replica; a restarted
// node re-enters through rebuilding→readmitted when it comes back as
// standby capacity. The pipeline executor drives it single-threaded in
// frame order, so the transcript is deterministic.

type nodeHealth struct {
	state   serve.ReplicaState
	strikes int
}

type supervisor struct {
	fsm        serve.HealthFSM
	nodes      []nodeHealth
	names      []string
	trans      metrics.Transitions
	transcript []string
}

func newSupervisor(names []string, suspectConfirm int) *supervisor {
	return &supervisor{
		fsm:   serve.HealthFSM{SuspectConfirm: suspectConfirm},
		nodes: make([]nodeHealth, len(names)),
		names: names,
	}
}

func (s *supervisor) state(node int) serve.ReplicaState { return s.nodes[node].state }

// transition force-moves a node (failover bookkeeping: quarantine
// confirmation, rebuilding, readmission), counting the edge.
func (s *supervisor) transition(frame, node int, to serve.ReplicaState, detail string) {
	from := s.nodes[node].state
	s.trans.Add(from.String(), to.String())
	s.nodes[node].state = to
	line := fmt.Sprintf("frame %d: node %d (%s) %s->%s", frame, node, s.names[node], from, to)
	if detail != "" {
		line += " " + detail
	}
	s.transcript = append(s.transcript, line)
}

// observe folds one stage heartbeat verdict into the node's state and
// returns the FSM event so the executor can hang failover off the
// quarantine edge.
func (s *supervisor) observe(frame, node int, anomalous bool, signal string) serve.FSMEvent {
	h := &s.nodes[node]
	next, strikes, ev := s.fsm.Advance(h.state, h.strikes, anomalous)
	h.strikes = strikes
	switch ev {
	case serve.FSMDetected, serve.FSMQuarantined:
		s.transition(frame, node, next, signal)
	case serve.FSMCleared:
		s.transition(frame, node, next, "cleared")
	case serve.FSMProbationPassed:
		s.transition(frame, node, next, "probation passed")
	}
	return ev
}
