package cluster

import (
	"errors"
	"math"
	"testing"

	"edgeinfer/internal/core"
	"edgeinfer/internal/faults"
	"edgeinfer/internal/fixrand"
	"edgeinfer/internal/gpusim"
	"edgeinfer/internal/models"
	"edgeinfer/internal/tensor"
)

// proxyEngine builds the numeric resnet18 proxy on an NX plan — the
// same engine the chaos benchmarks stream.
func proxyEngine(t *testing.T) *core.Engine {
	t.Helper()
	g, err := models.BuildProxy("resnet18", models.DefaultProxyOptions())
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.Build(g, core.DefaultConfig(gpusim.XavierNX(), 1))
	if err != nil {
		t.Fatal(err)
	}
	if !e.Numeric {
		t.Fatal("proxy engine is not numeric")
	}
	return e
}

func frames(t *testing.T, key string, n int) []*tensor.Tensor {
	t.Helper()
	src := fixrand.NewKeyed(key)
	xs := make([]*tensor.Tensor, n)
	for i := range xs {
		x := tensor.New(1, 3, 32, 32)
		for j := range x.Data {
			x.Data[j] = float32(src.NormFloat64())
		}
		xs[i] = x
	}
	return xs
}

func sameBits(t *testing.T, label string, got, want []*tensor.Tensor) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d outputs, want %d", label, len(got), len(want))
	}
	for oi := range want {
		if len(got[oi].Data) != len(want[oi].Data) {
			t.Fatalf("%s: output %d size mismatch", label, oi)
		}
		for j := range want[oi].Data {
			if math.Float32bits(got[oi].Data[j]) != math.Float32bits(want[oi].Data[j]) {
				t.Fatalf("%s: output %d diverges at %d: %v vs %v",
					label, oi, j, got[oi].Data[j], want[oi].Data[j])
			}
		}
	}
}

func threeNX() []Node { return []Node{NX("nx-0"), NX("nx-1"), NX("nx-2")} }

// fastLinks is an interconnect quick enough that splitting the proxy's
// microsecond-scale compute actually pays; gigabit ethernet correctly
// collapses it to one stage (see the slow-link test).
func fastLinks(n int) []gpusim.Link {
	return UniformLinks(n, gpusim.Link{BandwidthBps: 1e11, LatencySec: 1e-7})
}

func TestPartitionCoversPlanContiguously(t *testing.T) {
	e := proxyEngine(t)
	part, err := PartitionEngine(e, threeNX(), fastLinks(2))
	if err != nil {
		t.Fatal(err)
	}
	n := len(e.Graph.Layers)
	valid := map[int]bool{}
	for _, c := range e.StageCuts() {
		valid[c] = true
	}
	from := 0
	var fill, bottleneck float64
	for i, st := range part.Stages {
		if st.From != from {
			t.Fatalf("stage %d starts at %d, want %d", i, st.From, from)
		}
		if st.To <= st.From {
			t.Fatalf("stage %d empty range [%d,%d)", i, st.From, st.To)
		}
		if st.To < n && !valid[st.To] {
			t.Fatalf("stage %d ends at %d, not a valid cut", i, st.To)
		}
		if st.Node != i {
			t.Fatalf("stage %d on node %d, want in-order assignment", i, st.Node)
		}
		if p := st.PeriodSec(); p > bottleneck {
			bottleneck = p
		}
		fill += st.PeriodSec()
		from = st.To
	}
	if from != n {
		t.Fatalf("stages end at %d, want %d", from, n)
	}
	if math.Abs(bottleneck-part.BottleneckSec) > 1e-15 {
		t.Fatalf("bottleneck %v, stages say %v", part.BottleneckSec, bottleneck)
	}
	if math.Abs(fill-part.FillSec) > 1e-12 {
		t.Fatalf("fill %v, stages sum to %v", part.FillSec, fill)
	}
	last := part.Stages[len(part.Stages)-1]
	if last.OutBytes != 0 || last.XferSec != 0 {
		t.Fatalf("final stage has outbound cost %d bytes / %v sec", last.OutBytes, last.XferSec)
	}
}

func TestPartitionRespectsMemoryConstraint(t *testing.T) {
	e := proxyEngine(t)
	n := len(e.Graph.Layers)
	total := e.StageWeightBytes(0, n)

	// The smallest cap any partition can satisfy is the heaviest minimal
	// segment between adjacent cut positions (the proxy's FC head
	// dominates). Cap nodes there: feasible, but the full model no
	// longer fits on one node, so a real split is forced.
	pos := append([]int{0}, e.StageCuts()...)
	pos = append(pos, n)
	var atom int64
	for i := 1; i < len(pos); i++ {
		if w := e.StageWeightBytes(pos[i-1], pos[i]); w > atom {
			atom = w
		}
	}
	if atom >= total {
		t.Skip("one segment holds all the weight; no cap can force a split")
	}
	nodes := threeNX()
	for i := range nodes {
		nodes[i].MemBytes = atom
	}
	part, err := PartitionEngine(e, nodes, fastLinks(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(part.Stages) < 2 {
		t.Fatalf("memory cap %d of %d should force >=2 stages, got %d", nodes[0].MemBytes, total, len(part.Stages))
	}
	for i, st := range part.Stages {
		if st.WeightBytes > nodes[st.Node].MemBytes {
			t.Fatalf("stage %d weights %d exceed node cap %d", i, st.WeightBytes, nodes[st.Node].MemBytes)
		}
	}

	// A single node that cannot hold even the smallest stage has no cut.
	tiny := []Node{NX("nx-0")}
	tiny[0].MemBytes = 16
	if _, err := PartitionEngine(e, tiny, nil); !errors.Is(err, ErrNoViableCut) {
		t.Fatalf("infeasible memory: got %v, want ErrNoViableCut", err)
	}
}

func TestPartitionPrefersFewerStagesOverSlowLinks(t *testing.T) {
	e := proxyEngine(t)
	// A catastrophically slow interconnect makes any transfer dominate:
	// the partitioner should collapse to one stage.
	slow := gpusim.Link{BandwidthBps: 1e3, LatencySec: 1}
	part, err := PartitionEngine(e, threeNX(), UniformLinks(2, slow))
	if err != nil {
		t.Fatal(err)
	}
	if len(part.Stages) != 1 {
		t.Fatalf("slow links should yield 1 stage, got %d: %s", len(part.Stages), part)
	}
}

// oracle runs the frames through the engine in one shot.
func oracle(t *testing.T, e *core.Engine, xs []*tensor.Tensor) [][]*tensor.Tensor {
	t.Helper()
	want, err := e.InferBatch(xs)
	if err != nil {
		t.Fatal(err)
	}
	return want
}

func TestPipelineFaultFreeMatchesInferBatch(t *testing.T) {
	e := proxyEngine(t)
	p, err := New(PipelineConfig{Engine: e, Nodes: threeNX(), Links: fastLinks(2)})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Partition().Stages) < 2 {
		t.Fatalf("want a real pipeline, got %s", p.Partition())
	}
	xs := frames(t, "cluster-clean", 8)
	rep, err := p.Run(xs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Lost != 0 || rep.Shed != 0 || rep.Answered != len(xs) {
		t.Fatalf("answered %d shed %d lost %d of %d", rep.Answered, rep.Shed, rep.Lost, len(xs))
	}
	want := oracle(t, e, xs)
	for f, v := range rep.Frames {
		sameBits(t, "frame", v.Outputs, want[f])
		if v.LatencySec <= 0 {
			t.Fatalf("frame %d has non-positive latency %v", f, v.LatencySec)
		}
	}
	if len(rep.Transcript) != 0 {
		t.Fatalf("fault-free run has transcript: %v", rep.Transcript)
	}
}

func TestPipelineCrashFailsOverToStandby(t *testing.T) {
	e := proxyEngine(t)
	plan := faults.NewClusterPlan("crash-standby")
	plan.CrashStage = 1
	plan.CrashAtFrame = 3
	plan.RestartAfterFrames = 6
	p, err := New(PipelineConfig{
		Engine:   e,
		Nodes:    threeNX(),
		Links:    fastLinks(2),
		Standby:  []Node{AGX("agx-sb")},
		Injector: plan.New("run"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Partition().Stages) < 2 {
		t.Skip("partition collapsed to one stage; crash stage unused")
	}
	xs := frames(t, "cluster-crash", 12)
	rep, err := p.Run(xs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Lost != 0 {
		t.Fatalf("%d frames lost silently", rep.Lost)
	}
	if rep.Shed != 0 || rep.Answered != len(xs) {
		t.Fatalf("standby failover should answer every frame: answered %d shed %d", rep.Answered, rep.Shed)
	}
	if rep.Failovers+rep.Merges == 0 {
		t.Fatal("no failover recorded")
	}
	if rep.CrashDetectFrame != 3 {
		t.Fatalf("crash detected at frame %d, want 3", rep.CrashDetectFrame)
	}
	if rep.RecoveryFrames < 0 || rep.RecoveryFrames > 4 {
		t.Fatalf("recovery took %d frames, want <=4", rep.RecoveryFrames)
	}
	if rep.RecoverySec <= 0 {
		t.Fatalf("recovery time %v, want > 0", rep.RecoverySec)
	}
	if rep.Counters.Get(faults.KindNodeCrash) != 1 {
		t.Fatalf("crash counted %d times, want 1", rep.Counters.Get(faults.KindNodeCrash))
	}
	// The robustness headline: every answered output is bit-identical
	// to the fault-free oracle, failover or not.
	want := oracle(t, e, xs)
	for f, v := range rep.Frames {
		sameBits(t, "frame", v.Outputs, want[f])
	}
	if len(rep.Transcript) == 0 {
		t.Fatal("failover left no transcript")
	}
}

func TestPipelineCrashMergesWithoutStandby(t *testing.T) {
	e := proxyEngine(t)
	plan := faults.NewClusterPlan("crash-merge")
	plan.CrashStage = 1
	plan.CrashAtFrame = 2
	p, err := New(PipelineConfig{Engine: e, Nodes: threeNX(), Links: fastLinks(2), Injector: plan.New("run")})
	if err != nil {
		t.Fatal(err)
	}
	stages := len(p.Partition().Stages)
	if stages < 2 {
		t.Skip("partition collapsed to one stage; crash stage unused")
	}
	xs := frames(t, "cluster-merge", 10)
	rep, err := p.Run(xs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Lost != 0 {
		t.Fatalf("%d frames lost silently", rep.Lost)
	}
	if stages == len(threeNX()) && rep.Merges == 0 {
		t.Fatalf("all nodes active: expected a neighbor merge, got failovers=%d merges=%d", rep.Failovers, rep.Merges)
	}
	if rep.Answered != len(xs) {
		t.Fatalf("merge should keep answering: answered %d shed %d", rep.Answered, rep.Shed)
	}
	want := oracle(t, e, xs)
	for f, v := range rep.Frames {
		sameBits(t, "frame", v.Outputs, want[f])
	}
}

func TestPipelineBudgetShedIsExplicit(t *testing.T) {
	e := proxyEngine(t)
	probe, err := PartitionEngine(e, threeNX(), fastLinks(2))
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(PipelineConfig{
		Engine:         e,
		Nodes:          threeNX(),
		Links:          fastLinks(2),
		FrameBudgetSec: probe.FillSec * 1e-3, // hopeless: no frame can finish
	})
	if err != nil {
		t.Fatal(err)
	}
	xs := frames(t, "cluster-budget", 5)
	rep, err := p.Run(xs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Lost != 0 {
		t.Fatalf("%d frames lost silently", rep.Lost)
	}
	if rep.Shed != len(xs) {
		t.Fatalf("hopeless budget shed %d of %d", rep.Shed, len(xs))
	}
	for _, v := range rep.Frames {
		if !v.Shed || v.Reason != "budget" {
			t.Fatalf("frame %d: shed=%v reason=%q, want explicit budget shed", v.Frame, v.Shed, v.Reason)
		}
	}

	// A generous budget answers everything.
	p2, err := New(PipelineConfig{Engine: e, Nodes: threeNX(), Links: fastLinks(2), FrameBudgetSec: probe.FillSec * 50})
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := p2.Run(xs)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Answered != len(xs) || rep2.Lost != 0 {
		t.Fatalf("generous budget: answered %d lost %d of %d", rep2.Answered, rep2.Lost, len(xs))
	}
}

func TestPipelinePartitionedLinkShedsExplicitly(t *testing.T) {
	e := proxyEngine(t)
	plan := faults.NewClusterPlan("link-partition")
	plan.PartitionLink = 0
	plan.PartitionFrom = 2
	plan.PartitionFrames = 3
	p, err := New(PipelineConfig{Engine: e, Nodes: threeNX(), Links: fastLinks(2), Injector: plan.New("run")})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Partition().Stages) < 2 {
		t.Skip("partition collapsed to one stage; no link to partition")
	}
	xs := frames(t, "cluster-partitioned", 8)
	rep, err := p.Run(xs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Lost != 0 {
		t.Fatalf("%d frames lost silently", rep.Lost)
	}
	want := oracle(t, e, xs)
	for f, v := range rep.Frames {
		inWindow := f >= 2 && f < 5
		if inWindow {
			if !v.Shed || v.Reason != "link" {
				t.Fatalf("frame %d in partition window: shed=%v reason=%q", f, v.Shed, v.Reason)
			}
			if v.Retries == 0 {
				t.Fatalf("frame %d shed without retrying", f)
			}
			continue
		}
		if v.Shed {
			t.Fatalf("frame %d outside window shed (%s)", f, v.Reason)
		}
		sameBits(t, "frame", v.Outputs, want[f])
	}
	if rep.Counters.Get(faults.KindLinkPartition) == 0 {
		t.Fatal("partition window never counted")
	}
}

func TestPipelineHangTripsWatchdog(t *testing.T) {
	e := proxyEngine(t)
	plan := faults.NewClusterPlan("hang")
	plan.HangStage = 0
	plan.HangAtFrame = 2
	plan.HangFrames = 6
	plan.HangSec = 0.5
	p, err := New(PipelineConfig{
		Engine:   e,
		Nodes:    threeNX(),
		Links:    fastLinks(2),
		Standby:  []Node{AGX("agx-sb")},
		Injector: plan.New("run"),
	})
	if err != nil {
		t.Fatal(err)
	}
	xs := frames(t, "cluster-hang", 10)
	rep, err := p.Run(xs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Lost != 0 || rep.Shed != 0 {
		t.Fatalf("gray failure must not drop frames: shed %d lost %d", rep.Shed, rep.Lost)
	}
	if rep.Failovers+rep.Merges == 0 {
		t.Fatal("watchdog never failed the hung stage over")
	}
	// The hung node answered its frames late but correctly, and the
	// replacement answered the rest — all bit-identical.
	want := oracle(t, e, xs)
	for f, v := range rep.Frames {
		sameBits(t, "frame", v.Outputs, want[f])
	}
	if rep.Counters.Get(faults.KindNodeHang) == 0 {
		t.Fatal("hang never counted")
	}
}

func TestPipelineRunIsDeterministic(t *testing.T) {
	e := proxyEngine(t)
	run := func() *Report {
		plan := faults.ClusterChaos("determinism", 1, 3)
		p, err := New(PipelineConfig{
			Engine:   e,
			Nodes:    threeNX(),
			Links:    fastLinks(2),
			Standby:  []Node{AGX("agx-sb")},
			Injector: plan.New("run"),
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := p.Run(frames(t, "cluster-det", 20))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if len(a.Frames) != len(b.Frames) {
		t.Fatalf("frame counts differ: %d vs %d", len(a.Frames), len(b.Frames))
	}
	for f := range a.Frames {
		va, vb := a.Frames[f], b.Frames[f]
		if va.Shed != vb.Shed || va.Reason != vb.Reason || va.Retries != vb.Retries ||
			va.HeartbeatMisses != vb.HeartbeatMisses ||
			math.Float64bits(va.LatencySec) != math.Float64bits(vb.LatencySec) {
			t.Fatalf("frame %d verdicts differ: %+v vs %+v", f, va, vb)
		}
	}
	if len(a.Transcript) != len(b.Transcript) {
		t.Fatalf("transcripts differ in length: %d vs %d", len(a.Transcript), len(b.Transcript))
	}
	for i := range a.Transcript {
		if a.Transcript[i] != b.Transcript[i] {
			t.Fatalf("transcript line %d differs:\n%s\n%s", i, a.Transcript[i], b.Transcript[i])
		}
	}
	if a.Counters != b.Counters {
		t.Fatalf("counters differ: %+v vs %+v", a.Counters, b.Counters)
	}
}
