// Package cluster simulates partitioned pipeline inference across a
// small edge cluster: N heterogeneous gpusim devices (NX/AGX mixes)
// joined by links with bandwidth and latency, an engine's layer plan
// split at cut points chosen by an analytic cost model, and a pipeline
// executor that streams frames through the stages with in-flight
// activations so stage throughput overlaps (SEIFER's deployment shape
// on top of the paper's single-device latency model).
//
// The robustness contract is the point: under a faults.ClusterPlan
// (link delay/drop/partition, node crash/hang/restart, mid-stream
// stage death) the pipeline answers every frame — a result or an
// explicit shed, never a silent drop and never a wrong answer. The
// sender of each hop retains the boundary activation until the
// downstream stage completes, so failover re-executes from retained
// state and recovered outputs are bit-identical to a fault-free run
// (numerics run on the host either way; only the timing model is
// per-device). Stage heartbeats feed a cluster supervisor that reuses
// serve's healthy→suspect→quarantined→rebuilding state machine, and
// failover promotes a standby node or merges the dead stage into a
// neighbor — re-partitioning the remaining graph — before degrading
// to explicit sheds when no viable cut is left.
package cluster

import (
	"errors"

	"edgeinfer/internal/gpusim"
)

// Node is one simulated cluster member: a device plus the weight
// memory it can hold resident. Edge nodes are memory-constrained
// (SEIFER's partitioning exists because one node cannot hold the whole
// model); MemBytes 0 means unconstrained.
type Node struct {
	// Name labels the node in transcripts ("nx-0", "agx-1", ...).
	Name string
	// Device prices the node's compute via the analytic kernel model.
	Device *gpusim.Device
	// MemBytes caps the stage weight bytes the node can hold; 0 is
	// unconstrained.
	MemBytes int64
}

// NX returns an Xavier NX node at the paper's latency clock.
func NX(name string) Node {
	spec := gpusim.XavierNX()
	return Node{Name: name, Device: gpusim.NewDevice(spec, gpusim.PaperLatencyClock(spec))}
}

// AGX returns an Xavier AGX node at the paper's latency clock.
func AGX(name string) Node {
	spec := gpusim.XavierAGX()
	return Node{Name: name, Device: gpusim.NewDevice(spec, gpusim.PaperLatencyClock(spec))}
}

// ErrNoViableCut is returned when no partition satisfies every
// constraint: not enough valid cut positions for the node count, or a
// memory-constrained node that no contiguous stage fits.
var ErrNoViableCut = errors.New("cluster: no viable partition of the layer plan")

// UniformLinks returns n copies of link — the homogeneous-interconnect
// convenience for PartitionEngine and PipelineConfig.
func UniformLinks(n int, link gpusim.Link) []gpusim.Link {
	ls := make([]gpusim.Link, n)
	for i := range ls {
		ls[i] = link
	}
	return ls
}
