package cluster

import (
	"errors"
	"fmt"

	"edgeinfer/internal/core"
	"edgeinfer/internal/faults"
	"edgeinfer/internal/gpusim"
	"edgeinfer/internal/rtctx"
	"edgeinfer/internal/serve"
	"edgeinfer/internal/tensor"
)

// PipelineConfig parameterizes a partitioned pipeline run. Engine and
// Nodes are required; everything else has working defaults.
type PipelineConfig struct {
	// Engine is the numeric engine whose layer plan is partitioned.
	Engine *core.Engine
	// Nodes are the pipeline candidates, in pipeline order. The
	// partitioner may use fewer stages than nodes; unused nodes join
	// the standby pool.
	Nodes []Node
	// Standby nodes serve no stage until a failover promotes one.
	Standby []Node
	// Links[i] carries stage i's boundary activation to stage i+1;
	// nil defaults to uniform gigabit ethernet. Must cover
	// len(Nodes)-1 positions when set.
	Links []gpusim.Link
	// Injector supplies cluster faults; nil runs fault-free.
	Injector *faults.ClusterInjector
	// FrameBudgetSec arms a per-frame rtctx budget (simulated seconds
	// from frame arrival); 0 leaves frames unbounded unless RunCtx is
	// given a budget-carrying template.
	FrameBudgetSec float64
	// ArrivalPeriodSec is the open-loop inter-frame gap; 0 paces
	// arrivals at the partition's bottleneck (steady state, no queue
	// growth).
	ArrivalPeriodSec float64
	// MaxTransferRetries bounds per-hop resends after a dropped
	// payload (default 3).
	MaxTransferRetries int
	// BackoffBaseSec is the first retry backoff, doubling per attempt
	// and clamped to the frame's remaining budget (default 0.5ms).
	BackoffBaseSec float64
	// HeartbeatTimeoutSec is the cost of one missed stage heartbeat
	// (default 5ms).
	HeartbeatTimeoutSec float64
	// SuspectConfirm is how many consecutive anomalous heartbeats
	// quarantine a node (default 2).
	SuspectConfirm int
	// LatencyThreshold is the stage watchdog trip point: observed over
	// expected stage service time (default 1.4), catching hangs that
	// never miss a heartbeat.
	LatencyThreshold float64
}

func (c *PipelineConfig) withDefaults() PipelineConfig {
	d := *c
	if d.MaxTransferRetries <= 0 {
		d.MaxTransferRetries = 3
	}
	if d.BackoffBaseSec <= 0 {
		d.BackoffBaseSec = 0.5e-3
	}
	if d.HeartbeatTimeoutSec <= 0 {
		d.HeartbeatTimeoutSec = 5e-3
	}
	if d.SuspectConfirm <= 0 {
		d.SuspectConfirm = 2
	}
	if d.LatencyThreshold <= 0 {
		d.LatencyThreshold = 1.4
	}
	return d
}

// FrameVerdict is one frame's outcome: outputs or an explicit shed,
// never neither.
type FrameVerdict struct {
	Frame int
	// Outputs are the engine outputs (nil when shed).
	Outputs []*tensor.Tensor
	// LatencySec is simulated arrival-to-answer (or arrival-to-shed).
	LatencySec float64
	// Shed marks an explicit no-answer verdict with its Reason:
	// "budget" (rtctx budget exhausted), "link" (transfer retries
	// exhausted), "no-capacity" (no viable owner left for a stage).
	Shed   bool
	Reason string
	// Retries counts transfer resends; HeartbeatMisses counts dead-
	// stage detections this frame paid for.
	Retries         int
	HeartbeatMisses int
}

// Report is one Run's accounting.
type Report struct {
	Partition *Partition
	Frames    []FrameVerdict

	Answered, Shed, Lost int
	Failovers            int // stage handed to a standby node
	Merges               int // stage merged onto an active neighbor (re-partition)

	// CrashDetectFrame is the first frame that observed a dead stage
	// (-1 without one); RecoveryFrames is how many frames later the
	// first clean answer landed, and RecoverySec the simulated time
	// from first missed heartbeat to the replacement node being ready.
	CrashDetectFrame int
	RecoveryFrames   int
	RecoverySec      float64

	// MakespanSec is the last completion time; latencies are per
	// answered frame, in frame order.
	MakespanSec float64
	Latencies   []float64

	Transcript []string
	Counters   faults.Counters
}

// Pipeline is a partitioned pipeline bound to its cluster state. Not
// safe for concurrent Runs: the executor is deterministic simulated
// time driven from one goroutine.
type Pipeline struct {
	cfg   PipelineConfig
	eng   *core.Engine
	nodes []Node // pipeline nodes then standbys; supervisor indexes this
	links []gpusim.Link
	part  *Partition
	sup   *supervisor

	stages    []Stage // mutable copy; Node reassigned on failover
	origOwner []int
	nodeFree  []float64
	inj       *faults.ClusterInjector

	crashedNode int
	detectT     float64
	deadReason  string
	report      *Report
}

// New partitions the engine across the nodes and builds the executor.
func New(cfg PipelineConfig) (*Pipeline, error) {
	c := cfg.withDefaults()
	if c.Engine == nil || len(c.Nodes) == 0 {
		return nil, fmt.Errorf("cluster: pipeline needs an engine and at least one node")
	}
	links := c.Links
	if links == nil {
		links = UniformLinks(maxInt(len(c.Nodes)-1, 0), gpusim.GigabitEthernet())
	}
	part, err := PartitionEngine(c.Engine, c.Nodes, links)
	if err != nil {
		return nil, err
	}
	nodes := append(append([]Node{}, c.Nodes...), c.Standby...)
	names := make([]string, len(nodes))
	for i, nd := range nodes {
		names[i] = nd.Name
	}
	p := &Pipeline{
		cfg:         c,
		eng:         c.Engine,
		nodes:       nodes,
		links:       links,
		part:        part,
		sup:         newSupervisor(names, c.SuspectConfirm),
		stages:      append([]Stage{}, part.Stages...),
		nodeFree:    make([]float64, len(nodes)),
		inj:         c.Injector,
		crashedNode: -1,
	}
	p.origOwner = make([]int, len(p.stages))
	for i, st := range p.stages {
		p.origOwner[i] = st.Node
	}
	return p, nil
}

// Partition returns the chosen partition.
func (p *Pipeline) Partition() *Partition { return p.part }

// Transcript returns the supervisor transcript so far.
func (p *Pipeline) Transcript() []string { return p.sup.transcript }

// Run streams the frames through the pipeline with no per-frame
// budget beyond PipelineConfig.FrameBudgetSec.
func (p *Pipeline) Run(xs []*tensor.Tensor) (*Report, error) {
	return p.RunCtx(nil, xs)
}

// RunCtx streams the frames through the pipeline. ctx is the
// per-frame budget template: every frame gets ctx's budget measured
// from its own arrival, accounted hop by hop (queueing, heartbeat
// waits, compute, transfer, backoff all charge it); a nil ctx falls
// back to FrameBudgetSec. Every frame is answered or explicitly shed
// — Report.Lost must be zero — and answered outputs are bit-identical
// to a fault-free run regardless of failovers.
func (p *Pipeline) RunCtx(ctx *rtctx.Request, xs []*tensor.Tensor) (*Report, error) {
	if ctx == nil && p.cfg.FrameBudgetSec > 0 {
		ctx = rtctx.WithBudget(p.cfg.FrameBudgetSec)
	}
	period := p.cfg.ArrivalPeriodSec
	if period <= 0 {
		period = p.part.BottleneckSec
	}
	rep := &Report{Partition: p.part, CrashDetectFrame: -1}
	p.report = rep
	firstClean := -1
	for f, x := range xs {
		v := p.runFrame(ctx, f, float64(f)*period, x)
		rep.Frames = append(rep.Frames, v)
		end := float64(f)*period + v.LatencySec
		if end > rep.MakespanSec {
			rep.MakespanSec = end
		}
		switch {
		case v.Shed:
			rep.Shed++
		case v.Outputs != nil:
			rep.Answered++
			rep.Latencies = append(rep.Latencies, v.LatencySec)
			if firstClean < 0 && rep.CrashDetectFrame >= 0 && v.HeartbeatMisses == 0 && f > rep.CrashDetectFrame {
				firstClean = f
			}
		default:
			rep.Lost++
		}
	}
	if rep.CrashDetectFrame >= 0 && firstClean >= 0 {
		rep.RecoveryFrames = firstClean - rep.CrashDetectFrame
	}
	rep.Transcript = append([]string{}, p.sup.transcript...)
	if p.inj != nil {
		rep.Counters = p.inj.Counters()
	}
	return rep, nil
}

// runFrame routes one frame through every stage. The sender's copy of
// the boundary activation (act) is retained until the downstream stage
// completes, so a stage death re-executes from retained state.
func (p *Pipeline) runFrame(ctx *rtctx.Request, f int, arrival float64, x *tensor.Tensor) FrameVerdict {
	v := FrameVerdict{Frame: f}
	shed := func(t float64, reason string) FrameVerdict {
		v.Shed, v.Reason = true, reason
		v.LatencySec = t - arrival
		return v
	}
	p.maybeReadmit(f)
	t := arrival
	act := x
	n := len(p.eng.Graph.Layers)
	for si := range p.stages {
		st := &p.stages[si]
		if p.deadReason != "" {
			return shed(t, p.deadReason)
		}
		if free := p.nodeFree[st.Node]; free > t {
			t = free
		}
		// Stage heartbeat: a dead owner misses heartbeats until the
		// supervisor confirms and failover re-routes the frame.
		for p.inj != nil && st.Node == p.origOwner[si] && p.inj.NodeCrashed(si, f) {
			t += p.cfg.HeartbeatTimeoutSec
			v.HeartbeatMisses++
			if p.report.CrashDetectFrame < 0 {
				p.report.CrashDetectFrame = f
				p.crashedNode = st.Node
				p.detectT = t - p.cfg.HeartbeatTimeoutSec
			}
			if ev := p.sup.observe(f, st.Node, true, "heartbeat-miss"); ev == serve.FSMQuarantined {
				if !p.failover(f, si, t) {
					p.deadReason = "no-capacity"
					return shed(t, p.deadReason)
				}
				if free := p.nodeFree[st.Node]; free > t {
					t = free
				}
			}
		}
		// Gray failure: the owner stalls without dying.
		var hang float64
		if p.inj != nil && st.Node == p.origOwner[si] {
			hang = p.inj.NodeHangSec(si, f)
			t += hang
		}
		// Per-hop budget accounting: everything burned so far plus this
		// stage's layer schedule must fit the frame budget.
		out, err := p.eng.InferRangeCtx(ctx, []*tensor.Tensor{act}, st.From, st.To, nil, p.nodes[st.Node].Device, t-arrival)
		if err != nil {
			if errors.Is(err, core.ErrBudgetExhausted) {
				return shed(t, "budget")
			}
			p.deadReason = "engine-error"
			return shed(t, p.deadReason)
		}
		t += st.ComputeSec
		// Watchdog heartbeat: service time against the stage expectation.
		anomalous := st.ComputeSec > 0 && (st.ComputeSec+hang)/st.ComputeSec > p.cfg.LatencyThreshold
		signal := ""
		if anomalous {
			signal = fmt.Sprintf("stage-lat=%.2fx", (st.ComputeSec+hang)/st.ComputeSec)
		}
		if ev := p.sup.observe(f, st.Node, anomalous, signal); ev == serve.FSMQuarantined {
			// The hung node still answered this frame (late); future
			// frames move to a replacement.
			if !p.failover(f, si, t) {
				p.deadReason = "no-capacity"
			}
		}
		// Hand the boundary activation to the next stage, retrying
		// dropped payloads with backoff clamped to remaining budget.
		if si < len(p.stages)-1 {
			ok, tEnd := p.transfer(ctx, &v, si, f, arrival, t)
			t = tEnd
			if !ok {
				p.nodeFree[st.Node] = t
				return shed(t, "link")
			}
		}
		p.nodeFree[st.Node] = t
		if ctx.Aborts() && ctx.RemainingBudgetSec(t-arrival) == 0 {
			return shed(t, "budget")
		}
		if st.To == n {
			v.Outputs = out[0]
		} else {
			act = out[0][0]
		}
	}
	v.LatencySec = t - arrival
	return v
}

// transfer moves one boundary payload across stage si's outbound link,
// consulting the injector per attempt. Returns whether the payload
// landed and the time it (or the give-up) completed.
func (p *Pipeline) transfer(ctx *rtctx.Request, v *FrameVerdict, si, f int, arrival, t float64) (bool, float64) {
	st := p.stages[si]
	for attempt := 0; ; attempt++ {
		t += p.linkOf(si).TransferSec(st.OutBytes)
		if p.inj == nil {
			return true, t
		}
		delay, drop := p.inj.Transfer(si, f)
		t += delay
		if !drop {
			return true, t
		}
		v.Retries++
		if attempt >= p.cfg.MaxTransferRetries {
			return false, t
		}
		back := p.cfg.BackoffBaseSec * float64(int(1)<<attempt)
		if rem := ctx.RemainingBudgetSec(t - arrival); back > rem {
			back = rem
		}
		t += back
		if ctx.Aborts() && ctx.RemainingBudgetSec(t-arrival) == 0 {
			return false, t
		}
	}
}

// failover hands stage si to a replacement owner: the first standby
// node that fits, else an active neighbor's node (merging the stage
// onto it — the tractable re-partition of the remaining graph: ranges
// are unchanged, the shared node serializes both stages). The
// replacement pays the stage's weights over the inbound link before
// it can serve. Returns false when nothing fits.
func (p *Pipeline) failover(f, si int, now float64) bool {
	st := &p.stages[si]
	old := st.Node
	for _, nb := range p.candidates(si) {
		if !p.fitsExtra(nb, st.WeightBytes) {
			continue
		}
		staging := p.linkOf(maxInt(si-1, 0)).TransferSec(st.WeightBytes)
		st.Node = nb
		st.ComputeSec = p.costRange(nb, st.From, st.To)
		if p.nodeFree[nb] < now {
			p.nodeFree[nb] = now
		}
		p.nodeFree[nb] += staging
		if p.isActiveOwner(nb, si) {
			p.report.Merges++
			p.sup.transition(f, nb, p.sup.state(nb), fmt.Sprintf("absorbs stage %d [%d:%d)", si, st.From, st.To))
		} else {
			p.report.Failovers++
			p.sup.transition(f, nb, serve.StateHealthy, fmt.Sprintf("takes over stage %d [%d:%d)", si, st.From, st.To))
		}
		if p.report.RecoverySec == 0 && p.report.CrashDetectFrame >= 0 {
			p.report.RecoverySec = p.nodeFree[nb] - p.detectT
		}
		if p.inj != nil && old == p.crashedNode && p.inj.Plan().RestartAfterFrames > 0 {
			p.sup.transition(f, old, serve.StateRebuilding, "restart pending")
		}
		return true
	}
	return false
}

// candidates orders replacement owners for a failing stage: standbys
// and idle pipeline nodes first, then active neighbors nearest first.
func (p *Pipeline) candidates(si int) []int {
	owned := make(map[int]bool, len(p.stages))
	for i := range p.stages {
		if i != si {
			owned[p.stages[i].Node] = true
		}
	}
	var idle, active []int
	for ni := range p.nodes {
		if ni == p.stages[si].Node || !p.available(ni) {
			continue
		}
		if owned[ni] {
			active = append(active, ni)
		} else {
			idle = append(idle, ni)
		}
	}
	// Neighbors nearest the failing stage first among active owners.
	for i := 0; i < len(active); i++ {
		for j := i + 1; j < len(active); j++ {
			if absInt(active[j]-si) < absInt(active[i]-si) {
				active[i], active[j] = active[j], active[i]
			}
		}
	}
	return append(idle, active...)
}

// available reports whether a node can take work: healthy or on
// post-restart probation.
func (p *Pipeline) available(ni int) bool {
	switch p.sup.state(ni) {
	case serve.StateHealthy, serve.StateReadmitted:
		return true
	}
	return false
}

// isActiveOwner reports whether nb already serves another stage.
func (p *Pipeline) isActiveOwner(nb, except int) bool {
	for i := range p.stages {
		if i != except && p.stages[i].Node == nb {
			return true
		}
	}
	return false
}

// fitsExtra checks a node's weight-memory budget against its current
// stages plus extra bytes.
func (p *Pipeline) fitsExtra(nb int, extra int64) bool {
	limit := p.nodes[nb].MemBytes
	if limit <= 0 {
		return true
	}
	held := extra
	for i := range p.stages {
		if p.stages[i].Node == nb {
			held += p.stages[i].WeightBytes
		}
	}
	return held <= limit
}

// costRange prices layers [from,to) on node nb's device.
func (p *Pipeline) costRange(nb, from, to int) float64 {
	costs := p.eng.LayerCostsSec(p.nodes[nb].Device)
	var sum float64
	for _, l := range p.eng.Graph.Layers[from:to] {
		sum += costs[l.Name]
	}
	return sum
}

// maybeReadmit brings a restarted crashed node back as standby
// capacity on probation.
func (p *Pipeline) maybeReadmit(f int) {
	if p.inj == nil || p.crashedNode < 0 {
		return
	}
	if p.sup.state(p.crashedNode) == serve.StateRebuilding && p.inj.NodeRestarted(f) {
		p.sup.transition(f, p.crashedNode, serve.StateReadmitted, "restarted as standby")
	}
}

func (p *Pipeline) linkOf(si int) gpusim.Link {
	if len(p.links) == 0 {
		return gpusim.Link{}
	}
	if si >= len(p.links) {
		si = len(p.links) - 1
	}
	return p.links[si]
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func absInt(a int) int {
	if a < 0 {
		return -a
	}
	return a
}
