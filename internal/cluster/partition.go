package cluster

import (
	"fmt"
	"strings"

	"edgeinfer/internal/core"
	"edgeinfer/internal/gpusim"
)

// Stage is one pipeline stage of a partition: a contiguous layer range
// bound to a node, priced by the analytic cost model.
type Stage struct {
	// Node indexes the partition's node list.
	Node int
	// From, To bound the half-open layer range [From, To).
	From, To int
	// ComputeSec is one frame's modeled compute on the node's device:
	// the sum of the stage's per-layer launch costs.
	ComputeSec float64
	// WeightBytes is what the stage holds resident.
	WeightBytes int64
	// OutBytes is the boundary activation one frame sends onward (0
	// for the final stage).
	OutBytes int64
	// XferSec is the modeled fault-free transfer time of OutBytes over
	// the stage's outbound link (0 for the final stage).
	XferSec float64
}

// PeriodSec is the stage's occupancy per frame — compute plus outbound
// transfer — the quantity the partitioner's bottleneck minimizes.
func (s Stage) PeriodSec() float64 { return s.ComputeSec + s.XferSec }

// Partition is a chosen split of the layer plan across nodes.
type Partition struct {
	Stages []Stage
	// BottleneckSec is the largest stage period: the steady-state
	// inter-frame interval, so pipeline throughput is 1/BottleneckSec.
	BottleneckSec float64
	// FillSec is one frame's end-to-end latency through an idle
	// pipeline: the sum of every stage period.
	FillSec float64
}

// Cuts returns the chosen cut positions (each stage's To except the
// last) — the partition choice the benchmark archives.
func (p *Partition) Cuts() []int {
	cuts := make([]int, 0, len(p.Stages)-1)
	for _, s := range p.Stages[:len(p.Stages)-1] {
		cuts = append(cuts, s.To)
	}
	return cuts
}

// String renders the partition compactly for transcripts.
func (p *Partition) String() string {
	var b strings.Builder
	for i, s := range p.Stages {
		if i > 0 {
			b.WriteString(" | ")
		}
		fmt.Fprintf(&b, "node%d[%d:%d) %.3gms", s.Node, s.From, s.To, s.ComputeSec*1e3)
		if s.XferSec > 0 {
			fmt.Fprintf(&b, " +%.3gms xfer", s.XferSec*1e3)
		}
	}
	fmt.Fprintf(&b, " (bottleneck %.3gms)", p.BottleneckSec*1e3)
	return b.String()
}

// PartitionEngine splits eng's layer plan across up to len(nodes)
// pipeline stages, nodes in the given order, stage s sending to s+1
// over links[s] (len(links) must be at least len(nodes)-1). Cut points
// come from the engine's valid single-tensor boundaries (StageCuts);
// the cost model prices each candidate stage as its analytic compute
// on that node's device plus its boundary activation over the outbound
// link, and a dynamic program minimizes the largest stage period — the
// pipeline's steady-state bottleneck. Memory-constrained nodes reject
// stages whose weights exceed MemBytes. Fewer stages than nodes is
// allowed (trailing nodes idle as implicit standbys) and chosen
// whenever transfer cost outweighs the parallelism; ties prefer fewer
// stages. Returns ErrNoViableCut when no assignment satisfies every
// constraint.
func PartitionEngine(eng *core.Engine, nodes []Node, links []gpusim.Link) (*Partition, error) {
	if eng == nil || len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: partition needs an engine and at least one node")
	}
	if len(links) < len(nodes)-1 {
		return nil, fmt.Errorf("cluster: %d nodes need %d links, have %d", len(nodes), len(nodes)-1, len(links))
	}
	layers := eng.Graph.Layers
	n := len(layers)
	if n == 0 {
		return nil, ErrNoViableCut
	}

	// Candidate stage boundaries: position 0, every valid cut, position n.
	pos := append([]int{0}, eng.StageCuts()...)
	pos = append(pos, n)

	// Per-node prefix sums of the layer cost schedule, so any candidate
	// range prices in O(1).
	prefix := make([][]float64, len(nodes))
	for ni, node := range nodes {
		costs := eng.LayerCostsSec(node.Device)
		ps := make([]float64, n+1)
		for li, l := range layers {
			ps[li+1] = ps[li] + costs[l.Name]
		}
		prefix[ni] = ps
	}
	linkAt := func(ni int) gpusim.Link {
		// The last node's outbound link is never used in a final answer
		// (its stage always ends at n), but the DP prices intermediate
		// table entries for it; clamp rather than index past the edge.
		if ni >= len(links) {
			if len(links) == 0 {
				return gpusim.Link{}
			}
			ni = len(links) - 1
		}
		return links[ni]
	}
	stageCost := func(ni, a, b int) float64 {
		c := prefix[ni][b] - prefix[ni][a]
		if b < n {
			c += linkAt(ni).TransferSec(eng.BoundaryBytes(b))
		}
		return c
	}
	fits := func(ni, a, b int) bool {
		return nodes[ni].MemBytes <= 0 || eng.StageWeightBytes(a, b) <= nodes[ni].MemBytes
	}

	const inf = 1e300
	P := len(pos)
	maxStages := len(nodes)
	if maxStages > P-1 {
		maxStages = P - 1 // each stage needs at least one boundary gap
	}
	// best[s][j]: minimal bottleneck covering layers [0, pos[j]) with
	// stages 0..s on nodes 0..s; choice[s][j] reconstructs the split.
	best := make([][]float64, maxStages)
	choice := make([][]int, maxStages)
	for s := range best {
		best[s] = make([]float64, P)
		choice[s] = make([]int, P)
		for j := range best[s] {
			best[s][j] = inf
			choice[s][j] = -1
		}
	}
	for j := 1; j < P; j++ {
		if fits(0, 0, pos[j]) {
			best[0][j] = stageCost(0, 0, pos[j])
		}
	}
	for s := 1; s < maxStages; s++ {
		for j := s + 1; j < P; j++ {
			for k := s; k < j; k++ {
				if best[s-1][k] >= inf || !fits(s, pos[k], pos[j]) {
					continue
				}
				cand := best[s-1][k]
				if c := stageCost(s, pos[k], pos[j]); c > cand {
					cand = c
				}
				if cand < best[s][j] {
					best[s][j] = cand
					choice[s][j] = k
				}
			}
		}
	}

	bestS, bottleneck := -1, inf
	for s := 0; s < maxStages; s++ {
		if best[s][P-1] < bottleneck {
			bottleneck = best[s][P-1]
			bestS = s
		}
	}
	if bestS < 0 {
		return nil, ErrNoViableCut
	}

	// Reconstruct the stage list back to front.
	ends := make([]int, bestS+1)
	j := P - 1
	for s := bestS; s >= 0; s-- {
		ends[s] = j
		if s > 0 {
			j = choice[s][j]
		}
	}
	part := &Partition{BottleneckSec: bottleneck}
	from := 0
	for s := 0; s <= bestS; s++ {
		to := pos[ends[s]]
		st := Stage{
			Node:        s,
			From:        from,
			To:          to,
			ComputeSec:  prefix[s][to] - prefix[s][from],
			WeightBytes: eng.StageWeightBytes(from, to),
		}
		if to < n {
			st.OutBytes = eng.BoundaryBytes(to)
			st.XferSec = links[s].TransferSec(st.OutBytes)
		}
		part.FillSec += st.PeriodSec()
		part.Stages = append(part.Stages, st)
		from = to
	}
	return part, nil
}
