package rtctx

import (
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	var r *Request
	if r.Budget() != 0 {
		t.Fatalf("nil Budget = %v, want 0", r.Budget())
	}
	if r.Aborts() {
		t.Fatal("nil Aborts = true")
	}
	if r.HasDeadline() {
		t.Fatal("nil HasDeadline = true")
	}
	if r.Expired(time.Now()) {
		t.Fatal("nil Expired = true")
	}
	if r.RemainingSec(time.Now()) != 0 {
		t.Fatal("nil RemainingSec != 0")
	}
}

func TestConstructors(t *testing.T) {
	if b := Background(); b.Aborts() || b.Budget() != 0 {
		t.Fatalf("Background = %+v, want no budget, no abort", b)
	}
	w := WithBudget(0.25)
	if !w.Aborts() || w.Budget() != 0.25 {
		t.Fatalf("WithBudget = %+v, want budget 0.25, aborting", w)
	}
	if WithBudget(0).Aborts() {
		t.Fatal("WithBudget(0) aborts: zero budget must mean unbounded")
	}
}

func TestExpiredAndRemaining(t *testing.T) {
	t0 := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	r := &Request{Arrival: t0, Deadline: t0.Add(100 * time.Millisecond)}
	if r.Expired(t0) {
		t.Fatal("expired at arrival")
	}
	if r.Expired(r.Deadline) {
		t.Fatal("expired exactly at deadline (must be strictly after)")
	}
	if !r.Expired(r.Deadline.Add(time.Nanosecond)) {
		t.Fatal("not expired past deadline")
	}
	if got := r.RemainingSec(t0); got != 0.1 {
		t.Fatalf("RemainingSec at arrival = %v, want 0.1", got)
	}
	if got := r.RemainingSec(t0.Add(200 * time.Millisecond)); got >= 0 {
		t.Fatalf("RemainingSec past deadline = %v, want negative", got)
	}
}

func TestBandString(t *testing.T) {
	if BandLow.String() != "low" || BandHigh.String() != "high" {
		t.Fatalf("band strings: low=%q high=%q", BandLow, BandHigh)
	}
}

func TestEarlierThanOrdering(t *testing.T) {
	t0 := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	mk := func(deadlineMs int, b Band, arriveMs int) *Request {
		r := &Request{Band: b, Arrival: t0.Add(time.Duration(arriveMs) * time.Millisecond)}
		if deadlineMs > 0 {
			r.Deadline = t0.Add(time.Duration(deadlineMs) * time.Millisecond)
		}
		return r
	}

	early, late := mk(10, BandLow, 0), mk(20, BandHigh, 0)
	if !early.EarlierThan(late) || late.EarlierThan(early) {
		t.Fatal("earlier deadline must win regardless of band")
	}

	hi, lo := mk(10, BandHigh, 5), mk(10, BandLow, 0)
	if !hi.EarlierThan(lo) || lo.EarlierThan(hi) {
		t.Fatal("equal deadlines: high band must win")
	}

	a, b := mk(10, BandLow, 1), mk(10, BandLow, 2)
	if !a.EarlierThan(b) || b.EarlierThan(a) {
		t.Fatal("equal deadline+band: earlier arrival must win")
	}

	withD, without := mk(10, BandLow, 0), mk(0, BandHigh, 0)
	if !withD.EarlierThan(without) || without.EarlierThan(withD) {
		t.Fatal("a deadline must sort ahead of none")
	}

	// Ordering is a strict weak order: a request is never earlier than
	// itself.
	if a.EarlierThan(a) {
		t.Fatal("request earlier than itself")
	}
}
