// Package rtctx defines the first-class request context threaded
// through every serving layer: netserve's HTTP handler stamps one
// Request per arrival, the queue orders and sheds by it, the batcher
// derives a batch context from its members, serve.Executor/Pool clamp
// and account against its budget, and core.Engine.InferBatchCtx
// consults it at layer boundaries to abort a hopeless batch mid-graph.
//
// The package is a leaf — it imports only time and math — so every
// layer can depend on it without cycles. A nil *Request means "no
// real-time context": every accessor is nil-safe and reads as the zero
// value, so legacy callers (Do/DoBatch) simply pass nil.
package rtctx

import (
	"math"
	"time"
)

// Band is the request's priority band. The zero value is BandLow, so
// an unstamped request is low priority.
type Band int

const (
	// BandLow is best-effort traffic: first to be shed under pressure.
	BandLow Band = iota
	// BandHigh is latency-critical traffic: admitted ahead of low and
	// kept when the queue must evict.
	BandHigh
)

// String implements fmt.Stringer.
func (b Band) String() string {
	if b == BandHigh {
		return "high"
	}
	return "low"
}

// Request is one inference request's real-time context. It is a plain
// value bag, not a cancellation tree: the serving stack is
// deterministic simulated time, so the budget is data to account
// against, not a channel to select on.
type Request struct {
	// BudgetSec is the request's latency budget in simulated seconds
	// (netserve conflates wall-clock header budgets with simulated
	// budgets; see DESIGN). Zero means unbounded.
	BudgetSec float64
	// Abort arms the abandon paths: when the budget expires before any
	// tier has answered — or a layer-boundary check proves it must —
	// the request errors with serve.ErrDeadlineExceeded instead of
	// answering late. With Abort false the budget only records misses.
	Abort bool
	// Band is the admission priority band.
	Band Band
	// Tenant identifies the submitting tenant (X-Tenant header);
	// empty for anonymous traffic.
	Tenant string
	// Arrival is when the request entered the system (wall clock).
	Arrival time.Time
	// Deadline is the wall-clock instant the client stops caring:
	// Arrival plus the wall-clock budget. The EDF queue orders by it.
	Deadline time.Time
}

// Background returns a context with no budget and no abort: the
// explicit spelling of "serve this whenever".
func Background() *Request { return &Request{} }

// WithBudget returns a budget-carrying context that aborts on expiry —
// the context the DoDeadline/DoBatchDeadline compatibility wrappers
// build at the API edge.
func WithBudget(sec float64) *Request {
	return &Request{BudgetSec: sec, Abort: true}
}

// Budget is the nil-safe budget accessor.
func (r *Request) Budget() float64 {
	if r == nil {
		return 0
	}
	return r.BudgetSec
}

// Aborts reports whether the abandon paths are armed: a non-nil
// context with a positive budget and Abort set.
func (r *Request) Aborts() bool {
	return r != nil && r.Abort && r.BudgetSec > 0
}

// Expired reports whether the wall-clock deadline has passed at now.
// A context without a deadline never expires.
func (r *Request) Expired(now time.Time) bool {
	return r != nil && !r.Deadline.IsZero() && now.After(r.Deadline)
}

// RemainingSec is the wall-clock budget left at now, negative once
// expired. Without a deadline it reports +Inf worth of slack as 0
// budget semantics don't apply — callers must check HasDeadline.
func (r *Request) RemainingSec(now time.Time) float64 {
	if r == nil || r.Deadline.IsZero() {
		return 0
	}
	return r.Deadline.Sub(now).Seconds()
}

// RemainingBudgetSec is the simulated budget left after burnedSec has
// been spent — the per-hop accounting primitive for pipelined
// execution: each hop charges its compute and transfer time against
// the one request budget and clamps retry backoff to what remains.
// Exhausted budgets floor at zero; unbounded contexts (nil, or no
// budget) report +Inf so "clamp to remaining" never truncates them.
func (r *Request) RemainingBudgetSec(burnedSec float64) float64 {
	if r == nil || r.BudgetSec <= 0 {
		return math.Inf(1)
	}
	if rem := r.BudgetSec - burnedSec; rem > 0 {
		return rem
	}
	return 0
}

// HasDeadline reports whether a wall-clock deadline was stamped.
func (r *Request) HasDeadline() bool {
	return r != nil && !r.Deadline.IsZero()
}

// EarlierThan orders requests for EDF dispatch: earlier deadline
// first; equal deadlines break by band (high first), then by earlier
// arrival, so the order is total and deterministic for any admission
// sequence. Deadline-less requests sort last.
func (r *Request) EarlierThan(o *Request) bool {
	rd, od := r.HasDeadline(), o.HasDeadline()
	if rd != od {
		return rd // a deadline sorts ahead of none
	}
	if rd && !r.Deadline.Equal(o.Deadline) {
		return r.Deadline.Before(o.Deadline)
	}
	if r.band() != o.band() {
		return r.band() == BandHigh
	}
	return r.arrival().Before(o.arrival())
}

func (r *Request) band() Band {
	if r == nil {
		return BandLow
	}
	return r.Band
}

func (r *Request) arrival() time.Time {
	if r == nil {
		return time.Time{}
	}
	return r.Arrival
}
