package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// Shared machinery for the concurrency/performance analyzers (lockorder,
// goleak, hotalloc, deadlineflow): an index of every function body in the
// module, call-edge resolution, and a witness-chain renderer for
// transitive diagnostics.

// declInfo is one declared function body plus the package context needed
// to resolve identifiers inside it.
type declInfo struct {
	pkg *Package
	fd  *ast.FuncDecl
	id  string
}

// moduleFuncDecls indexes every function declaration in the module by
// canonical funcID.
func moduleFuncDecls(m *Module) map[string]*declInfo {
	decls := map[string]*declInfo{}
	for _, pkg := range m.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				id := funcID(obj)
				decls[id] = &declInfo{pkg: pkg, fd: fd, id: id}
			}
		}
	}
	return decls
}

// resolvedCallee returns the *types.Func a call statically resolves to
// (module or standard library), or nil for builtins, function values and
// interface-method calls.
func resolvedCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	return calleeFunc(info, call)
}

// moduleCalleeID returns the funcID of a call's target when it is a
// module function with a body, else "".
func moduleCalleeID(m *Module, pkg *Package, call *ast.CallExpr) string {
	f := calleeFunc(pkg.Info, call)
	if f == nil || !moduleFunc(m, f) {
		return ""
	}
	return funcID(f)
}

// exprKey renders a lock receiver expression ("p.mu", "pool.mu") as a
// stable string key. Distinct dynamic instances sharing a key (e.g. the
// same field of two different structs in one function) are conservatively
// treated as one lock.
func exprKey(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprKey(e.X) + "." + e.Sel.Name
	case *ast.StarExpr:
		return exprKey(e.X)
	case *ast.IndexExpr:
		return exprKey(e.X) + "[i]"
	case *ast.CallExpr:
		return exprKey(e.Fun) + "()"
	}
	return "?"
}

// witnessChain renders a transitive diagnosis "f -> g -> h: <why>" from
// a per-function witness map (each entry names the callee that carries
// the property, terminated by a direct description).
type witness struct {
	next string // callee id carrying the property ("" for a direct site)
	why  string // direct description at the chain's end
}

func renderChain(witnesses map[string]witness, start string) string {
	var hops []string
	seen := map[string]bool{}
	cur := start
	for cur != "" && !seen[cur] {
		seen[cur] = true
		hops = append(hops, shortFuncID(cur))
		w, ok := witnesses[cur]
		if !ok {
			break
		}
		if w.next == "" {
			return strings.Join(hops, " -> ") + ": " + w.why
		}
		cur = w.next
	}
	return strings.Join(hops, " -> ")
}

// propagate computes the transitive closure of a per-function property
// over static call edges: any function calling a property-carrying
// function carries it too, with the callee recorded as witness. direct
// holds the seed set (witnesses with next == ""); callees the per-
// function outgoing edges. The fixed point is deterministic: functions
// and edges are visited in sorted order.
func propagate(direct map[string]witness, callees map[string][]string) map[string]witness {
	out := make(map[string]witness, len(direct))
	for id, w := range direct {
		out[id] = w
	}
	ids := make([]string, 0, len(callees))
	for id := range callees {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for changed := true; changed; {
		changed = false
		for _, id := range ids {
			if _, ok := out[id]; ok {
				continue
			}
			for _, c := range callees[id] {
				if _, ok := out[c]; ok {
					out[id] = witness{next: c}
					changed = true
					break
				}
			}
		}
	}
	return out
}

// funcLitInvokedInline reports whether a function literal's body runs
// within the enclosing function's own control flow: immediately invoked
// (`func(){...}()`) or deferred (defers run before the function returns,
// within its dynamic extent). Literals launched with `go` or stored for
// later run elsewhere.
func funcLitInvokedInline(stack []ast.Node, lit *ast.FuncLit) bool {
	if len(stack) < 2 {
		return false
	}
	parent := stack[len(stack)-2]
	call, ok := parent.(*ast.CallExpr)
	if !ok || ast.Unparen(call.Fun) != ast.Expr(lit) {
		return false
	}
	if len(stack) < 3 {
		return true
	}
	switch stack[len(stack)-3].(type) {
	case *ast.GoStmt:
		return false
	case *ast.DeferStmt:
		return true
	}
	return true
}

// inspectWithStack walks a subtree keeping the ancestor stack, calling f
// with each node and its path from the root (inclusive). Returning false
// from f prunes the subtree.
func inspectWithStack(root ast.Node, f func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if !f(n, stack) {
			stack = stack[:len(stack)-1]
			return false
		}
		return true
	})
}
