// Package analysis is a small, dependency-free static-analysis framework
// over go/ast + go/types, purpose-built for this repository's invariants:
// deterministic builds, panic-free serving paths, and checked errors.
// It loads a whole module (LoadModule), runs a set of Analyzers over it
// and reports Findings with exact positions. Findings can be suppressed
// at a specific line with a
//
//	//rtlint:allow <analyzer>[, <analyzer>...] -- <justification>
//	//rt:allow <analyzer> <justification>
//
// directive placed on the flagged line or on the line directly above it.
// Suppressions are recorded (with their justifications) and surfaced by
// the driver, never silently swallowed. Functions annotated
// `//rt:hotpath` in their doc comment opt into the hotalloc analyzer's
// static allocation-freedom check.
package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// Severity classifies a finding. Error-severity findings fail the build
// (cmd/rtlint exits non-zero); warnings are advisory.
type Severity uint8

const (
	Warn Severity = iota
	Error
)

// String implements fmt.Stringer.
func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warn"
}

// Finding is one diagnostic produced by an analyzer.
type Finding struct {
	Analyzer string
	Severity Severity
	Pos      token.Position
	Message  string
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: [%s] %s",
		f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Severity, f.Analyzer, f.Message)
}

// Analyzer is one named check run over a loaded module.
type Analyzer struct {
	// Name identifies the analyzer in findings and allow directives.
	Name string
	// Doc is a one-line description shown by the driver.
	Doc string
	// Run inspects the module and reports findings through r.
	Run func(m *Module, r *Reporter)
}

// Suppression is a finding an allow directive silenced, kept so the
// driver can surface every active suppression with its justification —
// a directive that fires silently is a directive nobody re-audits.
type Suppression struct {
	Analyzer string
	Severity Severity
	Pos      token.Position
	Message  string
	Reason   string
}

// String renders the suppression with its justification.
func (s Suppression) String() string {
	reason := s.Reason
	if reason == "" {
		reason = "no justification given"
	}
	return fmt.Sprintf("%s:%d:%d: allowed: [%s] %s (%s)",
		s.Pos.Filename, s.Pos.Line, s.Pos.Column, s.Analyzer, s.Message, reason)
}

// Reporter collects findings for one analyzer, applying allow-directive
// suppression at report time.
type Reporter struct {
	module     *Module
	analyzer   string
	findings   *[]Finding
	suppressed *[]Suppression
}

// Report records a finding at pos unless an allow directive suppresses
// it there (in which case the suppression itself is recorded).
func (r *Reporter) Report(sev Severity, pos token.Pos, format string, args ...any) {
	p := r.module.Fset.Position(pos)
	if ok, reason := r.module.Allowed(r.analyzer, p.Filename, p.Line); ok {
		if r.suppressed != nil {
			*r.suppressed = append(*r.suppressed, Suppression{
				Analyzer: r.analyzer,
				Severity: sev,
				Pos:      p,
				Message:  fmt.Sprintf(format, args...),
				Reason:   reason,
			})
		}
		return
	}
	*r.findings = append(*r.findings, Finding{
		Analyzer: r.analyzer,
		Severity: sev,
		Pos:      p,
		Message:  fmt.Sprintf(format, args...),
	})
}

// RunAll executes every analyzer over the module and returns the
// findings plus the suppressions allow directives fired on, both sorted
// by position, then analyzer name.
func RunAll(m *Module, analyzers []*Analyzer) ([]Finding, []Suppression) {
	var findings []Finding
	var suppressed []Suppression
	for _, a := range analyzers {
		r := &Reporter{module: m, analyzer: a.Name, findings: &findings, suppressed: &suppressed}
		a.Run(m, r)
	}
	sort.Slice(findings, func(i, j int) bool {
		return posLess(findings[i].Pos, findings[j].Pos, findings[i].Analyzer, findings[j].Analyzer)
	})
	sort.Slice(suppressed, func(i, j int) bool {
		return posLess(suppressed[i].Pos, suppressed[j].Pos, suppressed[i].Analyzer, suppressed[j].Analyzer)
	})
	return findings, suppressed
}

// RunAnalyzers is RunAll without the suppression report.
func RunAnalyzers(m *Module, analyzers []*Analyzer) []Finding {
	findings, _ := RunAll(m, analyzers)
	return findings
}

// posLess is the canonical finding order: file, line, column, analyzer.
func posLess(a, b token.Position, an, bn string) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	if a.Column != b.Column {
		return a.Column < b.Column
	}
	return an < bn
}

// HasErrors reports whether any finding is error severity.
func HasErrors(findings []Finding) bool {
	for _, f := range findings {
		if f.Severity == Error {
			return true
		}
	}
	return false
}
