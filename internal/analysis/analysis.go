// Package analysis is a small, dependency-free static-analysis framework
// over go/ast + go/types, purpose-built for this repository's invariants:
// deterministic builds, panic-free serving paths, and checked errors.
// It loads a whole module (LoadModule), runs a set of Analyzers over it
// and reports Findings with exact positions. Findings can be suppressed
// at a specific line with a
//
//	//rtlint:allow <analyzer>[, <analyzer>...] -- <justification>
//
// directive placed on the flagged line or on the line directly above it.
package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// Severity classifies a finding. Error-severity findings fail the build
// (cmd/rtlint exits non-zero); warnings are advisory.
type Severity uint8

const (
	Warn Severity = iota
	Error
)

// String implements fmt.Stringer.
func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warn"
}

// Finding is one diagnostic produced by an analyzer.
type Finding struct {
	Analyzer string
	Severity Severity
	Pos      token.Position
	Message  string
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: [%s] %s",
		f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Severity, f.Analyzer, f.Message)
}

// Analyzer is one named check run over a loaded module.
type Analyzer struct {
	// Name identifies the analyzer in findings and allow directives.
	Name string
	// Doc is a one-line description shown by the driver.
	Doc string
	// Run inspects the module and reports findings through r.
	Run func(m *Module, r *Reporter)
}

// Reporter collects findings for one analyzer, applying allow-directive
// suppression at report time.
type Reporter struct {
	module   *Module
	analyzer string
	findings *[]Finding
}

// Report records a finding at pos unless an allow directive suppresses
// it there.
func (r *Reporter) Report(sev Severity, pos token.Pos, format string, args ...any) {
	p := r.module.Fset.Position(pos)
	if r.module.Allowed(r.analyzer, p.Filename, p.Line) {
		return
	}
	*r.findings = append(*r.findings, Finding{
		Analyzer: r.analyzer,
		Severity: sev,
		Pos:      p,
		Message:  fmt.Sprintf(format, args...),
	})
}

// RunAnalyzers executes every analyzer over the module and returns all
// findings sorted by position, then analyzer name.
func RunAnalyzers(m *Module, analyzers []*Analyzer) []Finding {
	var findings []Finding
	for _, a := range analyzers {
		r := &Reporter{module: m, analyzer: a.Name, findings: &findings}
		a.Run(m, r)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings
}

// HasErrors reports whether any finding is error severity.
func HasErrors(findings []Finding) bool {
	for _, f := range findings {
		if f.Severity == Error {
			return true
		}
	}
	return false
}
