package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// lockorder flags a sync.Mutex/RWMutex held across a blocking operation:
// a channel send/receive, a blocking select, a range over a channel, a
// sync.WaitGroup/Cond wait, time.Sleep, network I/O, or a call whose
// static call graph reaches one of those. This is the bug class that
// freezes a serving process: the request path blocks while holding the
// state lock, and every health probe and reader queues up behind it.
//
// Known limitations (documented in DESIGN.md): lock regions are computed
// by source-order Lock/Unlock pairing per receiver expression (a defer
// extends the region to the function end); blocking inside deferred
// closures and stored function values is not attributed to the enclosing
// region; lock-ordering inversions between two mutexes are out of scope.

// DefaultBlockingFuncs are serving entry points treated as blocking even
// if the call-graph walk cannot prove it — each one serializes a whole
// simulated inference, so holding any lock across them stalls the
// process for a full request.
var DefaultBlockingFuncs = []string{
	"(*edgeinfer/internal/serve.Executor).Do",
	"(*edgeinfer/internal/serve.Executor).DoCtx",
	"(*edgeinfer/internal/serve.Executor).DoDeadline",
	"(*edgeinfer/internal/serve.Executor).DoBatch",
	"(*edgeinfer/internal/serve.Executor).DoBatchCtx",
	"(*edgeinfer/internal/serve.Executor).DoBatchDeadline",
	"(*edgeinfer/internal/serve.Pool).Do",
	"(*edgeinfer/internal/serve.Pool).DoCtx",
	"(*edgeinfer/internal/serve.Pool).DoBatch",
	"(*edgeinfer/internal/serve.Pool).DoBatchCtx",
	"(*edgeinfer/internal/serve.Pool).DoBatchDeadline",
	// The cluster pipeline executor serializes a whole partitioned
	// stream — frames × stages of simulated inference per call.
	"(*edgeinfer/internal/cluster.Pipeline).Run",
	"(*edgeinfer/internal/cluster.Pipeline).RunCtx",
}

// LockOrder returns the lock-across-blocking analyzer. extraBlocking
// names functions treated as blocking regardless of what the call-graph
// walk finds (see DefaultBlockingFuncs).
func LockOrder(extraBlocking []string) *Analyzer {
	return &Analyzer{
		Name: "lockorder",
		Doc:  "forbid a sync.Mutex/RWMutex held across a blocking operation",
		Run: func(m *Module, r *Reporter) {
			runLockOrder(m, extraBlocking, r)
		},
	}
}

const (
	evLock = iota + 1
	evUnlock
	evDeferUnlock
)

type lockEvent struct {
	pos  token.Pos
	key  string
	kind int
}

// blockItem is one potentially blocking site in a function body: either
// a direct operation (desc set) or a call into the module (callee set).
type blockItem struct {
	pos    token.Pos
	desc   string
	callee string
}

type lockFacts struct {
	events  []lockEvent
	items   []blockItem
	bodyEnd token.Pos
}

func runLockOrder(m *Module, extraBlocking []string, r *Reporter) {
	decls := moduleFuncDecls(m)
	named := moduleNamedTypes(m)

	ids := make([]string, 0, len(decls))
	for id := range decls {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	facts := map[string]*lockFacts{}
	direct := map[string]witness{}
	callees := map[string][]string{}
	for _, id := range extraBlocking {
		direct[id] = witness{why: "serving entry point (serializes a full request)"}
	}
	for _, id := range ids {
		d := decls[id]
		f := scanLockFacts(m, d, named)
		facts[id] = f
		var edges []string
		edgeSeen := map[string]bool{}
		for _, it := range f.items {
			if it.desc != "" {
				if _, ok := direct[id]; !ok {
					direct[id] = witness{why: it.desc}
				}
				continue
			}
			if !edgeSeen[it.callee] {
				edgeSeen[it.callee] = true
				edges = append(edges, it.callee)
			}
		}
		sort.Strings(edges)
		callees[id] = edges
	}
	blocking := propagate(direct, callees)

	for _, id := range ids {
		f := facts[id]
		regions := lockRegions(f)
		if len(regions) == 0 {
			continue
		}
		reported := map[token.Pos]bool{}
		for _, reg := range regions {
			for _, it := range f.items {
				if it.pos <= reg.start || it.pos >= reg.end || reported[it.pos] {
					continue
				}
				switch {
				case it.desc != "":
					reported[it.pos] = true
					r.Report(Error, it.pos, "%s held across %s", reg.key, it.desc)
				case blocking[it.callee].why != "" || blocking[it.callee].next != "":
					reported[it.pos] = true
					r.Report(Error, it.pos, "%s held across blocking call: %s",
						reg.key, renderChain(blocking, it.callee))
				}
			}
		}
	}
}

// scanLockFacts walks one function body collecting lock events and
// potentially blocking sites. Goroutine launches and stored closures run
// outside the function's own extent and are skipped; immediately invoked
// literals are part of it.
func scanLockFacts(m *Module, d *declInfo, named []*types.Named) *lockFacts {
	info := d.pkg.Info
	f := &lockFacts{bodyEnd: d.fd.Body.End()}
	commOp := map[ast.Node]bool{} // comm statements subsumed by their select's verdict
	inspectWithStack(d.fd.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.FuncLit:
			if !funcLitInvokedInline(stack, n) {
				return false
			}
		case *ast.SelectStmt:
			hasDefault := false
			for _, cl := range n.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok {
					if cc.Comm == nil {
						hasDefault = true
					} else {
						commOp[cc.Comm] = true
					}
				}
			}
			if !hasDefault {
				f.items = append(f.items, blockItem{pos: n.Pos(), desc: "blocking select"})
			}
		case *ast.SendStmt:
			if !underCommOp(stack, commOp) {
				f.items = append(f.items, blockItem{pos: n.Pos(), desc: "channel send"})
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !underCommOp(stack, commOp) {
				f.items = append(f.items, blockItem{pos: n.Pos(), desc: "channel receive"})
			}
		case *ast.RangeStmt:
			if isChanExpr(info, n.X) {
				f.items = append(f.items, blockItem{pos: n.X.Pos(), desc: "range over a channel"})
			}
		case *ast.DeferStmt:
			// Deferred unlocks extend the region to the function end.
			// Blocking inside other deferred calls runs at exit and is out
			// of scope (documented limitation).
			recordDeferUnlocks(info, n, f)
			return false
		case *ast.CallExpr:
			if fn := resolvedCallee(info, n); fn != nil {
				if desc := blockingStdlibDesc(fn); desc != "" {
					f.items = append(f.items, blockItem{pos: n.Pos(), desc: desc})
					return true
				}
				if key, kind := syncLockCall(info, n); kind != 0 {
					f.events = append(f.events, lockEvent{pos: n.Pos(), key: key, kind: kind})
					return true
				}
				if moduleFunc(m, fn) {
					f.items = append(f.items, blockItem{pos: n.Pos(), callee: funcID(fn)})
				}
				return true
			}
			// Interface-method calls resolve to every module implementation.
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
					if iface, ok := s.Recv().Underlying().(*types.Interface); ok {
						for _, impl := range implementations(named, iface, s.Obj().Name()) {
							f.items = append(f.items, blockItem{pos: n.Pos(), callee: impl})
						}
					}
				}
			}
		}
		return true
	})
	return f
}

// underCommOp reports whether a node sits inside a select comm statement
// (those are judged by the select's own default/no-default verdict).
func underCommOp(stack []ast.Node, commOp map[ast.Node]bool) bool {
	for _, a := range stack {
		if commOp[a] {
			return true
		}
	}
	return false
}

// recordDeferUnlocks registers `defer mu.Unlock()` (directly or inside a
// deferred closure) as region-extending unlock events.
func recordDeferUnlocks(info *types.Info, d *ast.DeferStmt, f *lockFacts) {
	if key, kind := syncLockCall(info, d.Call); kind == evUnlock {
		f.events = append(f.events, lockEvent{pos: d.Pos(), key: key, kind: evDeferUnlock})
		return
	}
	lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit)
	if !ok {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if key, kind := syncLockCall(info, call); kind == evUnlock {
				f.events = append(f.events, lockEvent{pos: d.Pos(), key: key, kind: evDeferUnlock})
			}
		}
		return true
	})
}

// syncLockCall classifies a call as a sync.Mutex/RWMutex lock or unlock
// on a receiver expression key. TryLock variants never block and are
// ignored.
func syncLockCall(info *types.Info, call *ast.CallExpr) (key string, kind int) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", 0
	}
	fn, _ := info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", 0
	}
	switch recvTypeName(fn) {
	case "Mutex", "RWMutex":
	default:
		return "", 0
	}
	switch fn.Name() {
	case "Lock", "RLock":
		return exprKey(sel.X), evLock
	case "Unlock", "RUnlock":
		return exprKey(sel.X), evUnlock
	}
	return "", 0
}

// blockingStdlibDesc describes a standard-library call that can block
// indefinitely ("" for everything else).
func blockingStdlibDesc(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Sleep" {
			return "time.Sleep"
		}
	case "sync":
		if fn.Name() == "Wait" {
			switch recvTypeName(fn) {
			case "WaitGroup":
				return "sync.WaitGroup.Wait"
			case "Cond":
				return "sync.Cond.Wait"
			}
		}
	case "net", "net/http":
		return fn.Pkg().Path() + "." + fn.Name() + " (network I/O)"
	}
	return ""
}

// recvTypeName returns the bare receiver type name of a method ("" for
// plain functions).
func recvTypeName(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// isChanExpr reports whether an expression has channel type.
func isChanExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}

// lockSpan is one region of a function body during which a lock key is
// held.
type lockSpan struct {
	start, end token.Pos
	key        string
}

// lockRegions pairs lock events into held regions: a lock matches the
// next unlock of the same key in source order; a deferred unlock (or a
// lock with no unlock at all) extends the region to the function end.
func lockRegions(f *lockFacts) []lockSpan {
	events := append([]lockEvent(nil), f.events...)
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	deferred := map[string]bool{}
	for _, ev := range events {
		if ev.kind == evDeferUnlock {
			deferred[ev.key] = true
		}
	}
	var regions []lockSpan
	pending := map[string][]token.Pos{}
	for _, ev := range events {
		switch ev.kind {
		case evLock:
			if deferred[ev.key] {
				regions = append(regions, lockSpan{start: ev.pos, end: f.bodyEnd, key: ev.key})
			} else {
				pending[ev.key] = append(pending[ev.key], ev.pos)
			}
		case evUnlock:
			if q := pending[ev.key]; len(q) > 0 {
				regions = append(regions, lockSpan{start: q[len(q)-1], end: ev.pos, key: ev.key})
				pending[ev.key] = q[:len(q)-1]
			}
		}
	}
	keys := make([]string, 0, len(pending))
	for k := range pending {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, p := range pending[k] {
			regions = append(regions, lockSpan{start: p, end: f.bodyEnd, key: k})
		}
	}
	return regions
}
