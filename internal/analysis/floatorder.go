package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// kernelReductionPaths lists the packages whose float reductions must
// flow through the Variant rounding discipline: partial sums rounded by
// roundTo at tile boundaries and folded by combine. A raw accumulation
// loop there silently changes the precision contract the paper's
// consistency tables (V/VI) are built on.
var kernelReductionPaths = []string{"edgeinfer/internal/kernels"}

// FloatOrder returns the analyzer that flags floating-point accumulation
// under range-over-map, in every package. Float addition is not
// associative, so even a commutative-looking `sum += v` produces
// run-to-run different low bits when the iteration order changes —
// exactly the class of drift that breaks golden-number tables.
//
// In the kernel packages (kernelReductionPaths) it additionally flags
// accumulation loops whose enclosing function never calls roundTo or
// combine: every reduction there must round partials through the
// Variant discipline, or the engine's accumulation order drifts from
// the modeled one.
func FloatOrder() *Analyzer {
	return &Analyzer{
		Name: "floatorder",
		Doc:  "flag float32/float64 accumulation inside range-over-map (order-dependent rounding) and kernel reductions bypassing roundTo/combine",
		Run: func(m *Module, r *Reporter) {
			for _, pkg := range m.Packages {
				kernels := pathRestricted(pkg.Path, kernelReductionPaths)
				for _, file := range pkg.Files {
					ast.Inspect(file, func(n ast.Node) bool {
						rng, ok := n.(*ast.RangeStmt)
						if !ok {
							return true
						}
						checkFloatAccumulation(pkg, rng, r)
						return true
					})
					if kernels {
						checkKernelReductions(pkg, file, r)
					}
				}
			}
		},
	}
}

func checkFloatAccumulation(pkg *Package, rng *ast.RangeStmt, r *Reporter) {
	tv, ok := pkg.Info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		default:
			return true
		}
		for _, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := pkg.Info.Uses[id]
			if obj == nil || !declaredOutside(obj, rng) || !isFloat(obj.Type()) {
				continue
			}
			r.Report(Error, as.Pos(),
				"float accumulation into %s inside range over map is order-dependent; iterate sorted keys instead", id.Name)
		}
		return true
	})
}

// checkKernelReductions flags float accumulation loops in a kernel
// package whose enclosing function never touches the Variant rounding
// discipline (a roundTo or combine call). Map-range accumulation is the
// base rule's domain and skipped here.
func checkKernelReductions(pkg *Package, file *ast.File, r *Reporter) {
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		if fd.Name.Name == "roundTo" || fd.Name.Name == "combine" {
			continue // these implement the discipline
		}
		if callsRounding(fd.Body) {
			continue
		}
		reportUnroundedLoops(pkg, fd, r)
	}
}

// callsRounding reports whether the body contains a call to a function
// or method named roundTo or combine (name-based: the discipline is a
// package-local convention, not an exported interface).
func callsRounding(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			if fun.Name == "roundTo" || fun.Name == "combine" {
				found = true
			}
		case *ast.SelectorExpr:
			if fun.Sel.Name == "roundTo" || fun.Sel.Name == "combine" {
				found = true
			}
		}
		return !found
	})
	return found
}

// loopSpan is one for/range statement of a function, with map ranges
// marked so they can be left to the base rule.
type loopSpan struct {
	pos, end token.Pos
	mapRange bool
}

// reportUnroundedLoops reports every compound float accumulation whose
// innermost enclosing loop is a non-map for/range statement.
func reportUnroundedLoops(pkg *Package, fd *ast.FuncDecl, r *Reporter) {
	var loops []loopSpan
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			loops = append(loops, loopSpan{pos: n.Pos(), end: n.End()})
		case *ast.RangeStmt:
			isMap := false
			if tv, ok := pkg.Info.Types[n.X]; ok {
				_, isMap = tv.Type.Underlying().(*types.Map)
			}
			loops = append(loops, loopSpan{pos: n.Pos(), end: n.End(), mapRange: isMap})
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		default:
			return true
		}
		inner := innermostLoop(loops, as.Pos())
		if inner == nil || inner.mapRange {
			return true
		}
		for _, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := pkg.Info.Uses[id]
			if obj == nil || !isFloat(obj.Type()) {
				continue
			}
			if obj.Pos() >= inner.pos && obj.Pos() < inner.end {
				continue // loop-local accumulator feeding nothing outside
			}
			r.Report(Error, as.Pos(),
				"float accumulation into %s in %s bypasses the kernel rounding discipline; fold partial sums through Variant.roundTo/combine", id.Name, fd.Name.Name)
		}
		return true
	})
}

// innermostLoop returns the smallest loop span containing pos, or nil.
func innermostLoop(loops []loopSpan, pos token.Pos) *loopSpan {
	var best *loopSpan
	for i := range loops {
		l := &loops[i]
		if pos < l.pos || pos >= l.end {
			continue
		}
		if best == nil || (l.pos >= best.pos && l.end <= best.end) {
			best = l // loops containing the same pos nest; the later, tighter span wins
		}
	}
	return best
}
