package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatOrder returns the analyzer that flags floating-point accumulation
// under range-over-map, in every package. Float addition is not
// associative, so even a commutative-looking `sum += v` produces
// run-to-run different low bits when the iteration order changes —
// exactly the class of drift that breaks golden-number tables.
func FloatOrder() *Analyzer {
	return &Analyzer{
		Name: "floatorder",
		Doc:  "flag float32/float64 accumulation inside range-over-map (order-dependent rounding)",
		Run: func(m *Module, r *Reporter) {
			for _, pkg := range m.Packages {
				for _, file := range pkg.Files {
					ast.Inspect(file, func(n ast.Node) bool {
						rng, ok := n.(*ast.RangeStmt)
						if !ok {
							return true
						}
						checkFloatAccumulation(pkg, rng, r)
						return true
					})
				}
			}
		},
	}
}

func checkFloatAccumulation(pkg *Package, rng *ast.RangeStmt, r *Reporter) {
	tv, ok := pkg.Info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		default:
			return true
		}
		for _, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := pkg.Info.Uses[id]
			if obj == nil || !declaredOutside(obj, rng) || !isFloat(obj.Type()) {
				continue
			}
			r.Report(Error, as.Pos(),
				"float accumulation into %s inside range over map is order-dependent; iterate sorted keys instead", id.Name)
		}
		return true
	})
}
