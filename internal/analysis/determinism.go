package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// DefaultRestricted lists the packages whose output must be bit-for-bit
// reproducible: the engine builder, the IR, the kernel library and the
// GPU timing model. Tables in the paper are regenerated from these, so
// any nondeterminism shows up as diffs between runs.
var DefaultRestricted = []string{
	"edgeinfer/internal/core",
	"edgeinfer/internal/graph",
	"edgeinfer/internal/kernels",
	"edgeinfer/internal/gpusim",
}

// Determinism returns the analyzer that forbids nondeterminism sources
// in the restricted packages (each entry matches itself and its
// subpackages): wall-clock reads (time.Now/Since/Until), the math/rand
// generators (fixrand is the sanctioned seeded source), and map
// iterations whose visit order leaks into an ordered result.
func Determinism(restricted []string) *Analyzer {
	return &Analyzer{
		Name: "determinism",
		Doc:  "forbid wall-clock, math/rand and map-order leaks in reproducibility-critical packages",
		Run: func(m *Module, r *Reporter) {
			for _, pkg := range m.Packages {
				if !pathRestricted(pkg.Path, restricted) {
					continue
				}
				for _, file := range pkg.Files {
					checkDeterminismFile(pkg, file, r)
				}
			}
		},
	}
}

func pathRestricted(path string, restricted []string) bool {
	for _, p := range restricted {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

func checkDeterminismFile(pkg *Package, file *ast.File, r *Reporter) {
	for _, imp := range file.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		if p == "math/rand" || p == "math/rand/v2" {
			r.Report(Error, imp.Pos(), "import of %s in restricted package %s; use internal/fixrand for seeded, reproducible randomness", p, pkg.Path)
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn := calleeFunc(pkg.Info, n); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "time" {
				switch fn.Name() {
				case "Now", "Since", "Until":
					r.Report(Error, n.Pos(), "time.%s in restricted package %s makes results depend on wall-clock", fn.Name(), pkg.Path)
				}
			}
		case *ast.RangeStmt:
			checkMapRangeLeaks(pkg, n, r)
		}
		return true
	})
}

// calleeFunc resolves a call to the *types.Func it invokes, or nil for
// builtins, conversions and calls through function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// checkMapRangeLeaks flags statements inside a range-over-map whose
// effect depends on the (randomized) iteration order: appends to outer
// slices that are never sorted afterwards, string concatenation into
// outer variables, and plain assignment of the loop variables to outer
// variables. Float accumulation is floatorder's domain and skipped here.
func checkMapRangeLeaks(pkg *Package, rng *ast.RangeStmt, r *Reporter) {
	tv, ok := pkg.Info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	loopVars := rangeLoopVars(pkg.Info, rng)
	fn := enclosingFuncBody(pkg, rng)
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := pkg.Info.Uses[id]
			if obj == nil || !declaredOutside(obj, rng) {
				continue
			}
			if isFloat(obj.Type()) {
				continue // floatorder reports accumulation-order hazards
			}
			switch {
			case as.Tok == token.ASSIGN && i < len(as.Rhs) && isAppendTo(pkg.Info, as.Rhs[min(i, len(as.Rhs)-1)], obj):
				if !sortedLater(pkg, fn, rng, obj) {
					r.Report(Error, as.Pos(), "append to %s inside range over map leaks iteration order; sort the result or the keys first", id.Name)
				}
			case as.Tok == token.ADD_ASSIGN && isString(obj.Type()):
				r.Report(Error, as.Pos(), "string concatenation into %s inside range over map depends on iteration order", id.Name)
			case as.Tok == token.ASSIGN && i < len(as.Rhs) && isLoopVarExpr(pkg.Info, as.Rhs[min(i, len(as.Rhs)-1)], loopVars):
				r.Report(Error, as.Pos(), "assignment of map loop variable to %s keeps an arbitrary iteration's value", id.Name)
			}
		}
		return true
	})
}

// rangeLoopVars returns the objects bound by the range statement's
// key/value variables.
func rangeLoopVars(info *types.Info, rng *ast.RangeStmt) map[types.Object]bool {
	vars := map[types.Object]bool{}
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := info.Defs[id]; obj != nil {
				vars[obj] = true
			} else if obj := info.Uses[id]; obj != nil {
				vars[obj] = true // range with = instead of :=
			}
		}
	}
	return vars
}

// declaredOutside reports whether obj's declaration lies outside the
// range statement's span (an "outer" variable).
func declaredOutside(obj types.Object, rng *ast.RangeStmt) bool {
	return obj.Pos() < rng.Pos() || obj.Pos() >= rng.End()
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isAppendTo reports whether e is append(obj, ...).
func isAppendTo(info *types.Info, e ast.Expr, obj types.Object) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	if _, builtin := info.Uses[id].(*types.Builtin); !builtin {
		return false
	}
	if len(call.Args) == 0 {
		return false
	}
	arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	return ok && info.Uses[arg] == obj
}

// isLoopVarExpr reports whether e is exactly one of the loop variables.
func isLoopVarExpr(info *types.Info, e ast.Expr, loopVars map[types.Object]bool) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && loopVars[info.Uses[id]]
}

// enclosingFuncBody finds the body of the function declaration that
// contains the node, for the sorted-afterwards check.
func enclosingFuncBody(pkg *Package, n ast.Node) *ast.BlockStmt {
	for _, file := range pkg.Files {
		if n.Pos() < file.Pos() || n.Pos() >= file.End() {
			continue
		}
		var body *ast.BlockStmt
		ast.Inspect(file, func(c ast.Node) bool {
			switch fd := c.(type) {
			case *ast.FuncDecl:
				if fd.Body != nil && n.Pos() >= fd.Body.Pos() && n.Pos() < fd.Body.End() {
					body = fd.Body
				}
			case *ast.FuncLit:
				if n.Pos() >= fd.Body.Pos() && n.Pos() < fd.Body.End() {
					body = fd.Body
				}
			}
			return true
		})
		return body
	}
	return nil
}

// sortedLater reports whether, after the range statement, the enclosing
// function passes obj to a sort-package function — the canonical
// collect-then-sort idiom that restores determinism.
func sortedLater(pkg *Package, fn *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	if fn == nil {
		return false
	}
	sorted := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		f := calleeFunc(pkg.Info, call)
		if f == nil || f.Pkg() == nil || (f.Pkg().Path() != "sort" && f.Pkg().Path() != "slices") {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && pkg.Info.Uses[id] == obj {
				sorted = true
			}
		}
		return true
	})
	return sorted
}
