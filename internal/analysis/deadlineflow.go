package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// deadlineflow catches the dropped-deadline bug class: a function that
// accepts a deadline (a context.Context, or a parameter named like
// deadlineSec/timeout/budget) calling a module function that has a
// deadline-aware sibling — e.g. calling Pool.DoBatch from a path that
// was handed a deadline when Pool.DoBatchDeadline exists. The request
// then runs with no budget at all and the caller's deadline accounting
// silently lies.
//
// A sibling is the same function name with a "Deadline" suffix on the
// same receiver (Do -> DoDeadline, DoBatch -> DoBatchDeadline). Calls
// already targeting a *Deadline function are never flagged. Goroutine
// launches are skipped: work intentionally detached from the request
// outlives its deadline by design and is goleak's jurisdiction.
//
// Known limitation (documented in DESIGN.md): the analyzer checks that
// the deadline-aware sibling is chosen, not that the right value is
// passed to it.

// DeadlineFlow returns the deadline-threading analyzer.
func DeadlineFlow() *Analyzer {
	return &Analyzer{
		Name: "deadlineflow",
		Doc:  "deadline-carrying functions must call deadline-aware siblings",
		Run:  runDeadlineFlow,
	}
}

func runDeadlineFlow(m *Module, r *Reporter) {
	decls := moduleFuncDecls(m)
	ids := make([]string, 0, len(decls))
	for id := range decls {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	for _, id := range ids {
		d := decls[id]
		param := deadlineParam(d.pkg.Info, d.fd)
		if param == "" {
			continue
		}
		info := d.pkg.Info
		inspectWithStack(d.fd.Body, func(n ast.Node, stack []ast.Node) bool {
			if _, ok := n.(*ast.GoStmt); ok {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := resolvedCallee(info, call)
			if fn == nil || !moduleFunc(m, fn) || strings.HasSuffix(fn.Name(), "Deadline") {
				return true
			}
			sibling := funcID(fn) + "Deadline"
			if _, ok := decls[sibling]; !ok {
				return true
			}
			r.Report(Error, call.Pos(),
				"deadline parameter %q is dropped: %s has a deadline-aware sibling %s",
				param, shortFuncID(funcID(fn)), shortFuncID(sibling))
			return true
		})
	}
}

// deadlineParam returns the name of the first parameter that carries a
// deadline — a context.Context, or a name containing deadline, timeout
// or budget ("" when the function carries none).
func deadlineParam(info *types.Info, fd *ast.FuncDecl) string {
	if fd.Type.Params == nil {
		return ""
	}
	for _, f := range fd.Type.Params.List {
		for _, name := range f.Names {
			lower := strings.ToLower(name.Name)
			if strings.Contains(lower, "deadline") ||
				strings.Contains(lower, "timeout") ||
				strings.Contains(lower, "budget") {
				return name.Name
			}
			if obj := info.Defs[name]; obj != nil && isContextType(obj.Type()) {
				return name.Name
			}
		}
	}
	return ""
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "context" && n.Obj().Name() == "Context"
}
