package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// deadlineflow catches the dropped-budget bug class: a function that
// was handed a request budget — an *rtctx.Request, a context.Context,
// or a parameter named like deadlineSec/timeout/budget — calling a
// module function that has a budget-aware sibling, discarding the
// budget at the call. The canonical miss: calling Pool.DoBatch from a
// path that was handed an rtctx.Request when Pool.DoBatchCtx exists.
// The request then runs with no budget at all and the caller's
// deadline accounting silently lies.
//
// A sibling is the same function name with a "Ctx" or "Deadline"
// suffix on the same receiver (DoBatch -> DoBatchCtx, Run ->
// RunDeadline). Calls already targeting a *Ctx or *Deadline function
// are never flagged, and a call is reported at most once even when
// both sibling spellings exist. Goroutine launches are skipped: work
// intentionally detached from the request outlives its budget by
// design and is goleak's jurisdiction.
//
// Known limitation (documented in DESIGN.md): the analyzer checks that
// the budget-aware sibling is chosen, not that the right value is
// passed to it.

// budgetSuffixes are the sibling spellings, most canonical first: the
// reported fix suggests the Ctx sibling when both exist.
var budgetSuffixes = [...]string{"Ctx", "Deadline"}

// DeadlineFlow returns the budget-threading analyzer.
func DeadlineFlow() *Analyzer {
	return &Analyzer{
		Name: "deadlineflow",
		Doc:  "budget-carrying functions must call budget-aware (Ctx/Deadline) siblings",
		Run:  runDeadlineFlow,
	}
}

func runDeadlineFlow(m *Module, r *Reporter) {
	decls := moduleFuncDecls(m)
	ids := make([]string, 0, len(decls))
	for id := range decls {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	for _, id := range ids {
		d := decls[id]
		param := budgetParam(d.pkg.Info, d.fd)
		if param == "" {
			continue
		}
		info := d.pkg.Info
		inspectWithStack(d.fd.Body, func(n ast.Node, stack []ast.Node) bool {
			if _, ok := n.(*ast.GoStmt); ok {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := resolvedCallee(info, call)
			if fn == nil || !moduleFunc(m, fn) || budgetAware(fn.Name()) {
				return true
			}
			for _, suffix := range budgetSuffixes {
				sibling := funcID(fn) + suffix
				if _, ok := decls[sibling]; !ok {
					continue
				}
				r.Report(Error, call.Pos(),
					"budget parameter %q is dropped: %s has a budget-aware sibling %s",
					param, shortFuncID(funcID(fn)), shortFuncID(sibling))
				break // one finding per call, even when both siblings exist
			}
			return true
		})
	}
}

// budgetAware reports whether a function name already spells a
// budget-taking variant.
func budgetAware(name string) bool {
	for _, suffix := range budgetSuffixes {
		if strings.HasSuffix(name, suffix) {
			return true
		}
	}
	return false
}

// budgetParam returns the name of the first parameter that carries a
// request budget — an rtctx.Request (pointer or value), a
// context.Context, or a name containing deadline, timeout or budget
// ("" when the function carries none).
func budgetParam(info *types.Info, fd *ast.FuncDecl) string {
	if fd.Type.Params == nil {
		return ""
	}
	for _, f := range fd.Type.Params.List {
		for _, name := range f.Names {
			lower := strings.ToLower(name.Name)
			if strings.Contains(lower, "deadline") ||
				strings.Contains(lower, "timeout") ||
				strings.Contains(lower, "budget") {
				return name.Name
			}
			if obj := info.Defs[name]; obj != nil &&
				(isContextType(obj.Type()) || isRequestCtxType(obj.Type())) {
				return name.Name
			}
		}
	}
	return ""
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "context" && n.Obj().Name() == "Context"
}

// isRequestCtxType reports whether t is rtctx.Request or
// *rtctx.Request — the module's first-class request context.
func isRequestCtxType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return strings.HasSuffix(n.Obj().Pkg().Path(), "/rtctx") && n.Obj().Name() == "Request"
}
