package analysis

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixtureAnalyzers is the production analyzer set, run against the
// fixture module under testdata/module (whose module path is also
// "edgeinfer", so the default restricted paths and panic roots resolve).
func fixtureAnalyzers() []*Analyzer {
	return []*Analyzer{
		Determinism(DefaultRestricted),
		PanicPath(DefaultPanicRoots),
		ErrCheck(),
		FloatOrder(),
		LockOrder(DefaultBlockingFuncs),
		GoLeak(DefaultGoroutinePackages),
		HotAlloc(),
		DeadlineFlow(),
	}
}

func loadFixture(t *testing.T) *Module {
	t.Helper()
	m, err := LoadModule(filepath.Join("testdata", "module"))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// fixtureMarkers scans the fixture sources for `want:<analyzer>` line
// markers and returns the expected finding set as "file:line:analyzer".
func fixtureMarkers(t *testing.T, root string) map[string]bool {
	t.Helper()
	want := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			text := sc.Text()
			i := strings.Index(text, "want:")
			if i < 0 || !strings.Contains(text[:i], "//") {
				continue
			}
			for _, name := range strings.Fields(text[i+len("want:"):]) {
				want[fmt.Sprintf("%s:%d:%s", filepath.ToSlash(rel), line, name)] = true
			}
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	return want
}

// TestFixtureFindingsMatchMarkers is the golden test: the analyzers
// must report exactly the marked (file, line, analyzer) set — nothing
// missing, nothing extra. The unmarked negative cases (sorted append,
// recover barrier, handled errors, allow directives) are proven by the
// "nothing extra" direction.
func TestFixtureFindingsMatchMarkers(t *testing.T) {
	m := loadFixture(t)
	findings := RunAnalyzers(m, fixtureAnalyzers())
	got := map[string]int{}
	for _, f := range findings {
		rel, err := filepath.Rel(m.Dir, f.Pos.Filename)
		if err != nil {
			t.Fatal(err)
		}
		got[fmt.Sprintf("%s:%d:%s", filepath.ToSlash(rel), f.Pos.Line, f.Analyzer)]++
	}
	want := fixtureMarkers(t, m.Dir)
	if len(want) == 0 {
		t.Fatal("no want: markers found in fixtures")
	}
	for k := range want {
		if got[k] == 0 {
			t.Errorf("missing finding %s", k)
		}
	}
	for k, n := range got {
		if !want[k] {
			t.Errorf("unexpected finding %s (x%d)", k, n)
		}
	}
}

// TestDeadlineFlowReportsOncePerCall: the fixture's Run has BOTH a
// RunCtx and a RunDeadline sibling, so a dropped budget could
// double-report; the analyzer must emit exactly one finding per call
// site, suggesting the canonical Ctx sibling.
func TestDeadlineFlowReportsOncePerCall(t *testing.T) {
	m := loadFixture(t)
	findings := RunAnalyzers(m, []*Analyzer{DeadlineFlow()})
	perLine := map[string]int{}
	for _, f := range findings {
		perLine[fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)]++
		if !strings.Contains(f.Message, "RunCtx") {
			t.Errorf("finding %s does not suggest the Ctx sibling", f)
		}
	}
	if len(perLine) == 0 {
		t.Fatal("no deadlineflow findings on the fixture")
	}
	for line, n := range perLine {
		if n != 1 {
			t.Errorf("call at %s reported %d times, want exactly once", line, n)
		}
	}
}

// TestSeededViolationsFailDriver proves cmd/rtlint's non-zero exit
// contract: the fixture's seeded violations are error severity, so
// HasErrors — the driver's exit-code predicate — is true.
func TestSeededViolationsFailDriver(t *testing.T) {
	m := loadFixture(t)
	findings := RunAnalyzers(m, fixtureAnalyzers())
	if !HasErrors(findings) {
		t.Fatal("seeded fixture violations must produce error-severity findings")
	}
	var sawDeterminism bool
	for _, f := range findings {
		if f.Analyzer == "determinism" && strings.Contains(f.Message, "time.Since") {
			sawDeterminism = true
		}
	}
	if !sawDeterminism {
		t.Error("seeded time.Since violation not reported")
	}
}

// TestAllowDirectiveSuppresses is the negative fixture: every line
// carrying an rtlint:allow directive (and the line after an own-line
// directive) yields no finding, while the same constructs without a
// directive do (checked by the golden test above).
func TestAllowDirectiveSuppresses(t *testing.T) {
	m := loadFixture(t)
	findings := RunAnalyzers(m, fixtureAnalyzers())
	directiveLines := map[string]bool{}
	err := filepath.WalkDir(m.Dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			if strings.Contains(line, "rtlint:allow") || strings.Contains(line, "rt:allow") {
				directiveLines[fmt.Sprintf("%s:%d", path, i+1)] = true
				directiveLines[fmt.Sprintf("%s:%d", path, i+2)] = true
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(directiveLines) == 0 {
		t.Fatal("no rtlint:allow directives in fixtures")
	}
	for _, f := range findings {
		if directiveLines[fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)] {
			t.Errorf("finding on a directive-suppressed line: %s", f)
		}
	}
}

// TestSuppressionsCarryReasons: RunAll's suppression records surface
// each directive's analyzer and justification, for both the legacy
// `//rtlint:allow a -- why` and the compact `//rt:allow a why` grammar.
func TestSuppressionsCarryReasons(t *testing.T) {
	m := loadFixture(t)
	_, suppressed := RunAll(m, fixtureAnalyzers())
	if len(suppressed) == 0 {
		t.Fatal("fixtures carry allow directives; no suppressions recorded")
	}
	byAnalyzer := map[string]bool{}
	for _, s := range suppressed {
		byAnalyzer[s.Analyzer] = true
		if s.Reason == "" {
			t.Errorf("suppression %s carries no reason", s)
		}
		if r := s.String(); !strings.Contains(r, "allowed: ") || !strings.Contains(r, s.Reason) {
			t.Errorf("suppression rendering %q does not surface the reason", r)
		}
	}
	for _, a := range []string{"determinism", "lockorder", "goleak", "hotalloc", "deadlineflow"} {
		if !byAnalyzer[a] {
			t.Errorf("no suppression recorded for the fixture's %s directive", a)
		}
	}
}

// TestParseAllowGrammars pins the two directive grammars side by side.
func TestParseAllowGrammars(t *testing.T) {
	cases := []struct {
		text    string
		compact bool
		names   []string
		reason  string
	}{
		{"determinism -- seeded fixture", false, []string{"determinism"}, "seeded fixture"},
		{"lockorder, goleak -- drain owns both", false, []string{"lockorder", "goleak"}, "drain owns both"},
		{"hotalloc warm-up only", true, []string{"hotalloc"}, "warm-up only"},
		{"deadlineflow -- explicit separator still works", true, []string{"deadlineflow"}, "explicit separator still works"},
		{"Prose, not a directive body", true, nil, ""},
	}
	for _, c := range cases {
		names, reason := parseAllow(c.text, c.compact)
		if strings.Join(names, ",") != strings.Join(c.names, ",") || reason != c.reason {
			t.Errorf("parseAllow(%q, compact=%v) = %v, %q; want %v, %q",
				c.text, c.compact, names, reason, c.names, c.reason)
		}
	}
}

// TestFindingOrdering checks RunAnalyzers' stable sort contract.
func TestFindingOrdering(t *testing.T) {
	m := loadFixture(t)
	findings := RunAnalyzers(m, fixtureAnalyzers())
	for i := 1; i < len(findings); i++ {
		a, b := findings[i-1], findings[i]
		if a.Pos.Filename > b.Pos.Filename ||
			(a.Pos.Filename == b.Pos.Filename && a.Pos.Line > b.Pos.Line) {
			t.Fatalf("findings out of order: %s before %s", a, b)
		}
	}
}
