package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Baseline support: a checked-in ledger of grandfathered error-severity
// findings. CI compares the current run against it — any finding not in
// the ledger fails the build, while fixed findings prompt a shrink so
// the ledger only ever ratchets down. Keys are (analyzer, file, message)
// with an occurrence count, deliberately excluding line numbers so
// unrelated edits to a file do not churn the ledger.

// BaselineEntry is one grandfathered finding group.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	// File is module-relative and slash-separated.
	File    string `json:"file"`
	Message string `json:"message"`
	Count   int    `json:"count"`
}

// Key identifies the entry's finding group.
func (e BaselineEntry) Key() string {
	return e.Analyzer + "\x00" + e.File + "\x00" + e.Message
}

// String renders the entry for human-readable diff output.
func (e BaselineEntry) String() string {
	return fmt.Sprintf("[%s] %s: %s (x%d)", e.Analyzer, e.File, e.Message, e.Count)
}

// Baseline is the on-disk ledger format.
type Baseline struct {
	Findings []BaselineEntry `json:"findings"`
}

// NewBaseline groups a run's error-severity findings into a ledger.
// Warnings never enter the baseline: they do not gate CI.
func NewBaseline(m *Module, findings []Finding) *Baseline {
	counts := map[string]*BaselineEntry{}
	for _, f := range findings {
		if f.Severity != Error {
			continue
		}
		e := BaselineEntry{
			Analyzer: f.Analyzer,
			File:     moduleRelPath(m, f.Pos.Filename),
			Message:  f.Message,
			Count:    1,
		}
		if prev, ok := counts[e.Key()]; ok {
			prev.Count++
		} else {
			counts[e.Key()] = &e
		}
	}
	b := &Baseline{Findings: []BaselineEntry{}}
	for _, e := range counts {
		b.Findings = append(b.Findings, *e)
	}
	sort.Slice(b.Findings, func(i, j int) bool {
		return b.Findings[i].Key() < b.Findings[j].Key()
	})
	return b
}

// moduleRelPath renders a position filename relative to the module root
// with forward slashes, so baselines are stable across checkouts.
func moduleRelPath(m *Module, filename string) string {
	if rel, err := filepath.Rel(m.Dir, filename); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(filename)
}

// LoadBaseline reads a ledger from disk.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("analysis: read baseline: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("analysis: parse baseline %s: %w", path, err)
	}
	return &b, nil
}

// WriteBaseline writes the ledger as stable, human-diffable JSON.
func (b *Baseline) Write(path string) error {
	if b.Findings == nil {
		b.Findings = []BaselineEntry{}
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Diff compares the current run against the ledger. fresh holds finding
// groups absent from (or more numerous than) the baseline — these fail
// CI. fixed holds baseline entries the current run no longer produces
// (fully or partially) — these prompt shrinking the ledger.
func (b *Baseline) Diff(current *Baseline) (fresh, fixed []BaselineEntry) {
	base := map[string]int{}
	for _, e := range b.Findings {
		base[e.Key()] = e.Count
	}
	seen := map[string]int{}
	for _, e := range current.Findings {
		seen[e.Key()] = e.Count
		if extra := e.Count - base[e.Key()]; extra > 0 {
			n := e
			n.Count = extra
			fresh = append(fresh, n)
		}
	}
	for _, e := range b.Findings {
		if gone := e.Count - seen[e.Key()]; gone > 0 {
			f := e
			f.Count = gone
			fixed = append(fixed, f)
		}
	}
	return fresh, fixed
}
