package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// goleak proves every goroutine launched in the scoped packages has a
// reachable stop path. A goroutine leaks when its body (or anything it
// statically calls) can spin forever: an endless `for {}` whose body has
// no return, no break out of the loop, and no panic, or a `range` over a
// module channel that no code ever closes. Such a goroutine survives
// Drain/Close, pins its arena buffers, and turns graceful shutdown into
// a hang — the exact property the netserve drain path promises to avoid.
//
// Known limitations (documented in DESIGN.md): goroutines launched
// through function values or unexported callbacks the type checker
// cannot resolve are skipped (conservatively assumed stoppable), and
// "never closed" is judged per channel variable/field object across the
// whole module, not per dynamic channel instance.

// DefaultGoroutinePackages are the packages whose go statements are
// audited: the serving, batching, kernel worker-pool and experiment
// surfaces where a leaked goroutine outlives a request or a drain.
var DefaultGoroutinePackages = []string{
	"edgeinfer/internal/serve",
	"edgeinfer/internal/netserve",
	"edgeinfer/internal/kernels",
	"edgeinfer/internal/experiments",
}

// GoLeak returns the goroutine-stop-path analyzer scoped to the given
// package paths (every module package when empty).
func GoLeak(pkgPaths []string) *Analyzer {
	return &Analyzer{
		Name: "goleak",
		Doc:  "every goroutine in the serving/kernel packages needs a stop path",
		Run: func(m *Module, r *Reporter) {
			runGoLeak(m, pkgPaths, r)
		},
	}
}

func runGoLeak(m *Module, pkgPaths []string, r *Reporter) {
	scoped := map[string]bool{}
	for _, p := range pkgPaths {
		scoped[p] = true
	}
	decls := moduleFuncDecls(m)
	named := moduleNamedTypes(m)
	closed := closedChannelObjs(m)

	ids := make([]string, 0, len(decls))
	for id := range decls {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	direct := map[string]witness{}
	callees := map[string][]string{}
	for _, id := range ids {
		d := decls[id]
		if why, pos := spinSite(d.pkg.Info, d.fd.Body, closed); pos.IsValid() {
			direct[id] = witness{why: why}
		}
		callees[id] = calleeEdges(m, d.pkg, d.fd.Body, named)
	}
	spins := propagate(direct, callees)

	for _, pkg := range m.Packages {
		if len(pkgPaths) > 0 && !scoped[pkg.Path] {
			continue
		}
		for _, file := range pkg.Files {
			p := pkg
			ast.Inspect(file, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				checkGoStmt(m, p, g, named, closed, spins, r)
				return true
			})
		}
	}
}

// checkGoStmt reports a go statement whose goroutine provably spins.
func checkGoStmt(m *Module, pkg *Package, g *ast.GoStmt, named []*types.Named,
	closed map[types.Object]bool, spins map[string]witness, r *Reporter) {
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		if why, pos := spinSite(pkg.Info, lit.Body, closed); pos.IsValid() {
			r.Report(Error, g.Pos(), "goroutine has no stop path: %s", why)
			return
		}
		for _, c := range calleeEdges(m, pkg, lit.Body, named) {
			if w, ok := spins[c]; ok && (w.why != "" || w.next != "") {
				r.Report(Error, g.Pos(), "goroutine has no stop path: %s", renderChain(spins, c))
				return
			}
		}
		return
	}
	if id := goTargetID(m, pkg, g.Call, named); id != "" {
		if w, ok := spins[id]; ok && (w.why != "" || w.next != "") {
			r.Report(Error, g.Pos(), "goroutine has no stop path: %s", renderChain(spins, id))
		}
	}
}

// goTargetID resolves the function a go statement launches, following
// interface dispatch to the single module implementation when unique.
func goTargetID(m *Module, pkg *Package, call *ast.CallExpr, named []*types.Named) string {
	if id := moduleCalleeID(m, pkg, call); id != "" {
		return id
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := pkg.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			if iface, ok := s.Recv().Underlying().(*types.Interface); ok {
				impls := implementations(named, iface, s.Obj().Name())
				if len(impls) == 1 {
					return impls[0]
				}
			}
		}
	}
	return ""
}

// spinSite finds the first provably endless construct in a function
// extent: an escape-free `for {}` or a range over a never-closed module
// channel. Goroutine launches and stored closures inside are separate
// extents and are skipped.
func spinSite(info *types.Info, body ast.Node, closed map[types.Object]bool) (string, token.Pos) {
	var why string
	var at token.Pos
	inspectWithStack(body, func(n ast.Node, stack []ast.Node) bool {
		if at.IsValid() {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.FuncLit:
			if !funcLitInvokedInline(stack, n) {
				return false
			}
		case *ast.ForStmt:
			if n.Cond == nil && !loopEscapes(n.Body) {
				why, at = "endless for loop with no return, break, or panic", n.Pos()
				return false
			}
		case *ast.RangeStmt:
			if isChanExpr(info, n.X) && !loopEscapes(n.Body) {
				obj := chanObj(info, n.X)
				if obj != nil && !closed[obj] {
					why = "ranges over channel '" + obj.Name() + "' that no module code ever closes"
					at = n.Pos()
					return false
				}
			}
		}
		return true
	})
	return why, at
}

// loopEscapes reports whether a loop body can exit its loop: a return,
// an unlabeled break binding to this loop, any labeled break or goto
// (conservatively assumed to escape), or a panic call. Returns inside
// nested function literals do not count.
func loopEscapes(body *ast.BlockStmt) bool {
	escapes := false
	inspectWithStack(body, func(n ast.Node, stack []ast.Node) bool {
		if escapes {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			escapes = true
		case *ast.BranchStmt:
			switch n.Tok {
			case token.GOTO:
				escapes = true
			case token.BREAK:
				if n.Label != nil {
					escapes = true
					return true
				}
				// An unlabeled break escapes only when no inner construct
				// between this loop's body and the break would capture it.
				captured := false
				for _, a := range stack[:len(stack)-1] {
					switch a.(type) {
					case *ast.ForStmt, *ast.RangeStmt, *ast.SelectStmt,
						*ast.SwitchStmt, *ast.TypeSwitchStmt:
						captured = true
					}
				}
				if !captured {
					escapes = true
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "panic" {
				escapes = true
			}
		}
		return true
	})
	return escapes
}

// chanObj resolves the variable or struct field a channel expression
// names (nil when it cannot).
func chanObj(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		if s, ok := info.Selections[e]; ok {
			return s.Obj()
		}
		return info.Uses[e.Sel]
	}
	return nil
}

// closedChannelObjs collects every channel variable/field the module
// passes to close(), anywhere.
func closedChannelObjs(m *Module) map[types.Object]bool {
	closed := map[types.Object]bool{}
	for _, pkg := range m.Packages {
		for _, file := range pkg.Files {
			info := pkg.Info
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) != 1 {
					return true
				}
				id, ok := ast.Unparen(call.Fun).(*ast.Ident)
				if !ok || id.Name != "close" {
					return true
				}
				if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "close" {
					return true
				}
				if obj := chanObj(info, call.Args[0]); obj != nil {
					closed[obj] = true
				}
				return true
			})
		}
	}
	return closed
}

// calleeEdges collects the unique, sorted module functions an extent
// statically calls (interface calls resolve to every implementation).
// Goroutine launches and stored closures are separate extents.
func calleeEdges(m *Module, pkg *Package, body ast.Node, named []*types.Named) []string {
	seen := map[string]bool{}
	var edges []string
	add := func(id string) {
		if id != "" && !seen[id] {
			seen[id] = true
			edges = append(edges, id)
		}
	}
	inspectWithStack(body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.FuncLit:
			if !funcLitInvokedInline(stack, n) {
				return false
			}
		case *ast.CallExpr:
			if id := moduleCalleeID(m, pkg, n); id != "" {
				add(id)
				return true
			}
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if s, ok := pkg.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
					if iface, ok := s.Recv().Underlying().(*types.Interface); ok {
						for _, impl := range implementations(named, iface, s.Obj().Name()) {
							add(impl)
						}
					}
				}
			}
		}
		return true
	})
	sort.Strings(edges)
	return edges
}
