package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// DefaultPanicRoots are the entry points that process untrusted input —
// plan bytes off disk, inference requests off the wire. A panic anywhere
// in their call graphs turns a malformed request into a crashed server,
// so every failure on these paths must be a returned error.
var DefaultPanicRoots = []string{
	"edgeinfer/internal/core.Load",
	"(*edgeinfer/internal/core.Engine).Infer",
	"(*edgeinfer/internal/core.Engine).InferFaulty",
	"(*edgeinfer/internal/serve.Executor).Do",
	"(*edgeinfer/internal/serve.Executor).DoCtx",
	"(*edgeinfer/internal/serve.Executor).DoDeadline",
	"(*edgeinfer/internal/serve.Executor).DoBatch",
	"(*edgeinfer/internal/serve.Executor).DoBatchCtx",
	"(*edgeinfer/internal/serve.Executor).DoBatchDeadline",
	"(*edgeinfer/internal/serve.Pool).Do",
	"(*edgeinfer/internal/serve.Pool).DoCtx",
	"(*edgeinfer/internal/serve.Pool).DoBatch",
	"(*edgeinfer/internal/serve.Pool).DoBatchCtx",
	// The network front-end: the HTTP handler parses untrusted request
	// bodies and the batcher goroutine serves them.
	"(*edgeinfer/internal/netserve.Server).handleInfer",
	"(*edgeinfer/internal/netserve.modelQueue).run",
	// The cluster pipeline executor: streams whole frames through a
	// partitioned engine under fault injection — a panic here kills an
	// entire soak mid-stream instead of shedding the offending frame.
	"(*edgeinfer/internal/cluster.Pipeline).Run",
	"(*edgeinfer/internal/cluster.Pipeline).RunCtx",
	// The learned latency predictor: Load parses untrusted model files
	// off disk, and PredictSec sits inside every pruned build's tuning
	// loop — a panic in either turns a corrupt model file into a crashed
	// build instead of a full-menu fallback.
	"edgeinfer/internal/latpred.Load",
	"(*edgeinfer/internal/latpred.Model).PredictSec",
}

// PanicPath returns the analyzer that walks the static call graph from
// the given roots and reports every reachable panic site. Functions that
// install a defer/recover barrier stop the walk: panics below them are
// converted to errors at runtime. Calls through interface methods are
// resolved to every module type implementing the interface; calls
// through plain function values are not traversed.
func PanicPath(roots []string) *Analyzer {
	return &Analyzer{
		Name: "panicpath",
		Doc:  "forbid panics reachable from plan-loading and request-serving entry points",
		Run: func(m *Module, r *Reporter) {
			runPanicPath(m, roots, r)
		},
	}
}

// funcNode is one function in the module's call graph.
type funcNode struct {
	id      string
	panics  []token.Pos
	callees []string
	barrier bool // has a defer/recover barrier; panics below are caught
}

func runPanicPath(m *Module, roots []string, r *Reporter) {
	nodes := buildCallGraph(m)
	type visit struct{ id, parent string }
	parent := map[string]string{}
	var queue []visit
	for _, root := range roots {
		if _, ok := nodes[root]; ok {
			queue = append(queue, visit{id: root})
		}
	}
	seen := map[string]bool{}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if seen[v.id] {
			continue
		}
		seen[v.id] = true
		parent[v.id] = v.parent
		node := nodes[v.id]
		if node == nil || node.barrier {
			continue
		}
		for _, pos := range node.panics {
			r.Report(Error, pos, "panic reachable from entry point: %s", chain(parent, v.id))
		}
		for _, c := range node.callees {
			if !seen[c] {
				queue = append(queue, visit{id: c, parent: v.id})
			}
		}
	}
}

// chain renders the call path root → ... → id for diagnostics.
func chain(parent map[string]string, id string) string {
	var path []string
	for cur := id; cur != ""; cur = parent[cur] {
		path = append(path, shortFuncID(cur))
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return strings.Join(path, " -> ")
}

// shortFuncID drops the package-path prefix from a function ID for
// readable diagnostics: "(*edgeinfer/internal/core.Engine).Infer"
// becomes "(*core.Engine).Infer".
func shortFuncID(id string) string {
	i := strings.LastIndex(id, "/")
	if i < 0 {
		return id
	}
	prefix := ""
	if strings.HasPrefix(id, "(*") {
		prefix = "(*"
	} else if strings.HasPrefix(id, "(") {
		prefix = "("
	}
	return prefix + id[i+1:]
}

func buildCallGraph(m *Module) map[string]*funcNode {
	nodes := map[string]*funcNode{}
	ifaceTypes := moduleNamedTypes(m)
	for _, pkg := range m.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := analyzeFunc(m, pkg, fd, ifaceTypes)
				node.id = funcID(obj)
				nodes[node.id] = node
			}
		}
	}
	return nodes
}

// analyzeFunc collects a function's panic sites, outgoing call edges and
// recover barriers. Function-literal bodies are treated as part of the
// enclosing function: deferred and stored closures may run within its
// dynamic extent.
func analyzeFunc(m *Module, pkg *Package, fd *ast.FuncDecl, named []*types.Named) *funcNode {
	node := &funcNode{}
	callees := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if deferRecovers(pkg.Info, n) {
				node.barrier = true
			}
		case *ast.CallExpr:
			fun := ast.Unparen(n.Fun)
			if id, ok := fun.(*ast.Ident); ok {
				if _, builtin := pkg.Info.Uses[id].(*types.Builtin); builtin && id.Name == "panic" {
					node.panics = append(node.panics, n.Pos())
					return true
				}
			}
			if sel, ok := fun.(*ast.SelectorExpr); ok {
				if s, ok := pkg.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
					if iface, ok := s.Recv().Underlying().(*types.Interface); ok {
						for _, impl := range implementations(named, iface, s.Obj().Name()) {
							callees[impl] = true
						}
						return true
					}
				}
			}
			if f := calleeFunc(pkg.Info, n); moduleFunc(m, f) {
				callees[funcID(f)] = true
			}
		}
		return true
	})
	for c := range callees {
		node.callees = append(node.callees, c)
	}
	sort.Strings(node.callees)
	return node
}

// deferRecovers reports whether the defer statement installs a recover
// barrier: `defer recover()` or `defer func() { ... recover() ... }()`.
func deferRecovers(info *types.Info, d *ast.DeferStmt) bool {
	isRecover := func(call *ast.CallExpr) bool {
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "recover" {
			return false
		}
		_, builtin := info.Uses[id].(*types.Builtin)
		return builtin
	}
	if isRecover(d.Call) {
		return true
	}
	lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isRecover(call) {
			found = true
		}
		return !found
	})
	return found
}

// moduleNamedTypes lists every named type declared in the module, for
// interface-implementation resolution.
func moduleNamedTypes(m *Module) []*types.Named {
	var out []*types.Named
	for _, pkg := range m.Packages {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if n, ok := tn.Type().(*types.Named); ok {
				out = append(out, n)
			}
		}
	}
	return out
}

// implementations resolves an interface method call to the concrete
// module methods that may satisfy it.
func implementations(named []*types.Named, iface *types.Interface, method string) []string {
	var out []string
	for _, n := range named {
		if _, isIface := n.Underlying().(*types.Interface); isIface {
			continue
		}
		recv := types.Type(n)
		if !types.Implements(recv, iface) {
			recv = types.NewPointer(n)
			if !types.Implements(recv, iface) {
				continue
			}
		}
		obj, _, _ := types.LookupFieldOrMethod(recv, true, n.Obj().Pkg(), method)
		if f, ok := obj.(*types.Func); ok {
			out = append(out, funcID(f))
		}
	}
	sort.Strings(out)
	return out
}

// funcID canonicalizes a function as "pkgpath.Func",
// "(pkgpath.Type).Method" or "(*pkgpath.Type).Method".
func funcID(f *types.Func) string {
	sig, _ := f.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		ptr := false
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			ptr = true
		}
		if n, ok := t.(*types.Named); ok {
			full := n.Obj().Name()
			if n.Obj().Pkg() != nil {
				full = n.Obj().Pkg().Path() + "." + full
			}
			if ptr {
				return "(*" + full + ")." + f.Name()
			}
			return "(" + full + ")." + f.Name()
		}
		return "(" + t.String() + ")." + f.Name()
	}
	if f.Pkg() != nil {
		return f.Pkg().Path() + "." + f.Name()
	}
	return f.Name()
}
