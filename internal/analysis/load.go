package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Module is a fully parsed and type-checked Go module: the unit every
// analyzer runs over.
type Module struct {
	// Path is the module path from go.mod (e.g. "edgeinfer").
	Path string
	// Dir is the module root directory.
	Dir string
	// Fset maps every parsed position.
	Fset *token.FileSet
	// Packages in dependency (topological) order.
	Packages []*Package

	// allow maps file -> line -> analyzer name -> justification for
	// findings suppressed by an `//rtlint:allow` or `//rt:allow`
	// directive on that line.
	allow map[string]map[int]map[string]string
}

// Package is one type-checked package of the module. Test files
// (_test.go) are excluded: the analyzers police production code.
type Package struct {
	// Path is the import path.
	Path string
	// Dir is the package directory.
	Dir string
	// Files are the parsed source files, sorted by filename.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the resolved identifier/type maps for Files.
	Info *types.Info
}

// LoadModule parses and type-checks every non-test package under root
// (which must contain go.mod), using only the standard library: module
// packages are resolved internally and the standard library is
// type-checked from GOROOT source. testdata, vendor and hidden
// directories are skipped, matching the go tool.
func LoadModule(root string) (*Module, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	m := &Module{
		Path:  modPath,
		Dir:   abs,
		Fset:  token.NewFileSet(),
		allow: map[string]map[int]map[string]string{},
	}
	dirs, err := packageDirs(abs)
	if err != nil {
		return nil, err
	}
	// Parse every package first so import edges are known before
	// type-checking begins.
	parsed := map[string]*Package{} // import path -> package
	imports := map[string][]string{}
	for _, dir := range dirs {
		pkg, deps, err := m.parsePackage(dir)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			continue // no buildable files
		}
		parsed[pkg.Path] = pkg
		imports[pkg.Path] = deps
	}
	order, err := topoOrder(parsed, imports)
	if err != nil {
		return nil, err
	}
	// Type-check in dependency order. Standard-library imports go through
	// the source importer; module-internal imports resolve to packages
	// checked earlier in the order.
	checked := map[string]*types.Package{}
	imp := &moduleImporter{
		std:    importer.ForCompiler(m.Fset, "source", nil),
		module: checked,
	}
	for _, path := range order {
		pkg := parsed[path]
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(path, m.Fset, pkg.Files, info)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-check %s: %w", path, err)
		}
		pkg.Types = tpkg
		pkg.Info = info
		checked[path] = tpkg
		m.Packages = append(m.Packages, pkg)
	}
	return m, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("analysis: read %s: %w", gomod, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s", gomod)
}

// packageDirs walks root collecting directories that hold .go files.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	return dirs, err
}

// parsePackage parses the non-test files of one directory, records allow
// directives, and returns the package plus its module-internal imports.
func (m *Module) parsePackage(dir string) (*Package, []string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	rel, err := filepath.Rel(m.Dir, dir)
	if err != nil {
		return nil, nil, err
	}
	path := m.Path
	if rel != "." {
		path = m.Path + "/" + filepath.ToSlash(rel)
	}
	pkg := &Package{Path: path, Dir: dir}
	var deps []string
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	for _, name := range names {
		file, err := parser.ParseFile(m.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, fmt.Errorf("analysis: parse %s: %w", filepath.Join(dir, name), err)
		}
		pkg.Files = append(pkg.Files, file)
		m.recordDirectives(file)
		for _, imp := range file.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if p == m.Path || strings.HasPrefix(p, m.Path+"/") {
				deps = append(deps, p)
			}
		}
	}
	if len(pkg.Files) == 0 {
		return nil, nil, nil
	}
	return pkg, deps, nil
}

// topoOrder sorts packages so every module-internal dependency precedes
// its importer.
func topoOrder(pkgs map[string]*Package, imports map[string][]string) ([]string, error) {
	var order []string
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(string) error
	visit = func(path string) error {
		switch state[path] {
		case 1:
			return fmt.Errorf("analysis: import cycle through %s", path)
		case 2:
			return nil
		}
		state[path] = 1
		deps := append([]string(nil), imports[path]...)
		sort.Strings(deps)
		for _, d := range deps {
			if _, ok := pkgs[d]; ok {
				if err := visit(d); err != nil {
					return err
				}
			}
		}
		state[path] = 2
		order = append(order, path)
		return nil
	}
	var paths []string
	for p := range pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// moduleImporter resolves module-internal imports to already-checked
// packages and everything else through the GOROOT source importer.
type moduleImporter struct {
	std    types.Importer
	module map[string]*types.Package
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.module[path]; ok {
		return p, nil
	}
	return m.std.Import(path)
}

// recordDirectives scans a file's comments for suppression directives.
// Two grammars are accepted:
//
//	//rtlint:allow <analyzer>[, <analyzer>...] -- <justification>
//	//rt:allow <analyzer> <justification>
//	//rt:allow <analyzer>[, <analyzer>...] -- <justification>
//
// A directive suppresses matching findings on its own line and on the
// line immediately following (so it can trail the flagged statement or
// sit on its own line above it). The justification is kept and surfaced
// with every suppression the directive fires on.
func (m *Module) recordDirectives(file *ast.File) {
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			body := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			var text string
			var compact bool
			if t, ok := strings.CutPrefix(body, "rtlint:allow"); ok {
				text = t
			} else if t, ok := strings.CutPrefix(body, "rt:allow"); ok {
				text, compact = t, true
			} else {
				continue
			}
			names, reason := parseAllow(text, compact)
			if len(names) == 0 {
				continue
			}
			pos := m.Fset.Position(c.Pos())
			byLine := m.allow[pos.Filename]
			if byLine == nil {
				byLine = map[int]map[string]string{}
				m.allow[pos.Filename] = byLine
			}
			set := byLine[pos.Line]
			if set == nil {
				set = map[string]string{}
				byLine[pos.Line] = set
			}
			for _, n := range names {
				set[n] = reason
			}
		}
	}
}

// parseAllow splits a directive body into analyzer names and the
// justification. A `--` separates the name list from free-form text; in
// the compact `//rt:allow <analyzer> <reason>` form (no `--`) the first
// token is the one analyzer and everything after it is the reason.
func parseAllow(text string, compact bool) (names []string, reason string) {
	if before, after, ok := strings.Cut(text, "--"); ok {
		reason = strings.TrimSpace(after)
		text = before
	} else if compact {
		fields := strings.Fields(text)
		if len(fields) == 0 || !isAnalyzerName(fields[0]) {
			return nil, ""
		}
		rest := strings.TrimSpace(text)
		return fields[:1], strings.TrimSpace(strings.TrimPrefix(rest, fields[0]))
	}
	for _, f := range strings.FieldsFunc(text, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
		if f == "" {
			continue
		}
		if !isAnalyzerName(f) {
			break // start of untagged justification text
		}
		names = append(names, f)
	}
	return names, reason
}

// isAnalyzerName reports whether s looks like an analyzer identifier
// (leading letter, then letters/digits/dashes). The `--` justification
// separator and prose words with punctuation fail this test.
func isAnalyzerName(s string) bool {
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z':
		case i > 0 && (r == '-' || r == '_' || (r >= '0' && r <= '9')):
		default:
			return false
		}
	}
	return s != ""
}

// Allowed reports whether findings of the named analyzer are suppressed
// at file:line, and the directive's justification when they are.
func (m *Module) Allowed(analyzer, file string, line int) (bool, string) {
	byLine := m.allow[file]
	if byLine == nil {
		return false, ""
	}
	for _, l := range [2]int{line, line - 1} {
		if set := byLine[l]; set != nil {
			if reason, ok := set[analyzer]; ok {
				return true, reason
			}
		}
	}
	return false, ""
}
