package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrCheck returns the analyzer that flags discarded error returns from
// module-internal calls: calls used as bare statements (including go and
// defer), and error result positions assigned to the blank identifier.
// Standard-library calls are exempt — the module controls its own error
// contracts, and its loaders and executors must surface every failure.
func ErrCheck() *Analyzer {
	return &Analyzer{
		Name: "errcheck",
		Doc:  "forbid discarded error returns from module-internal calls",
		Run: func(m *Module, r *Reporter) {
			for _, pkg := range m.Packages {
				for _, file := range pkg.Files {
					checkErrFile(m, pkg, file, r)
				}
			}
		},
	}
}

func checkErrFile(m *Module, pkg *Package, file *ast.File, r *Reporter) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			reportDiscardedCall(m, pkg, n.X, "result discarded", r)
		case *ast.GoStmt:
			reportDiscardedCall(m, pkg, n.Call, "result discarded by go statement", r)
		case *ast.DeferStmt:
			reportDiscardedCall(m, pkg, n.Call, "result discarded by defer", r)
		case *ast.AssignStmt:
			checkBlankErrAssign(m, pkg, n, r)
		}
		return true
	})
}

// reportDiscardedCall flags e when it is a call to a module function
// whose results include an error.
func reportDiscardedCall(m *Module, pkg *Package, e ast.Expr, how string, r *Reporter) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return
	}
	fn := calleeFunc(pkg.Info, call)
	if !moduleFunc(m, fn) {
		return
	}
	if idx := errResultIndex(fn); idx >= 0 {
		r.Report(Error, call.Pos(), "%s returns an error; %s", qualifiedName(fn), how)
	}
}

// checkBlankErrAssign flags `v, _ := f()` where the blank position is
// f's error result.
func checkBlankErrAssign(m *Module, pkg *Package, as *ast.AssignStmt, r *Reporter) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	fn := calleeFunc(pkg.Info, call)
	if !moduleFunc(m, fn) {
		return
	}
	idx := errResultIndex(fn)
	if idx < 0 || idx >= len(as.Lhs) {
		return
	}
	if id, ok := as.Lhs[idx].(*ast.Ident); ok && id.Name == "_" {
		r.Report(Error, as.Lhs[idx].Pos(), "error result of %s assigned to blank identifier", qualifiedName(fn))
	}
}

// moduleFunc reports whether fn is declared inside the analyzed module.
func moduleFunc(m *Module, fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	p := fn.Pkg().Path()
	return p == m.Path || strings.HasPrefix(p, m.Path+"/")
}

// errResultIndex returns the index of fn's error result, or -1.
func errResultIndex(fn *types.Func) int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return -1
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if named, ok := res.At(i).Type().(*types.Named); ok &&
			named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
			return i
		}
	}
	return -1
}

// qualifiedName renders fn as pkg.Func or (recv).Method for messages.
func qualifiedName(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	if fn.Pkg() != nil {
		parts := strings.Split(fn.Pkg().Path(), "/")
		return parts[len(parts)-1] + "." + fn.Name()
	}
	return fn.Name()
}
