module edgeinfer

go 1.22
