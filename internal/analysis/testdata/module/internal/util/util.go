// Package util is an errcheck fixture: discarded error returns from
// module-internal calls are flagged in every discard position; handled
// errors and standard-library calls are not. It is off the restricted
// list, so floatorder (which runs everywhere) fires here but
// determinism does not.
package util

import "fmt"

// Flush returns an error the callers below are obliged to check.
func Flush() error { return nil }

// Pair returns a value and an error.
func Pair() (int, error) { return 1, nil }

// Drop discards errors in every flagged way.
func Drop() {
	Flush()        // want:errcheck
	defer Flush()  // want:errcheck
	go Flush()     // want:errcheck
	v, _ := Pair() // want:errcheck
	_ = v
	fmt.Println("standard-library calls are exempt")
}

// Keep handles every error: no findings.
func Keep() error {
	if err := Flush(); err != nil {
		return err
	}
	v, err := Pair()
	if err != nil {
		return err
	}
	_ = v
	return nil
}

// Mean accumulates floats under map range outside the restricted list —
// floatorder still applies everywhere.
func Mean(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v // want:floatorder
	}
	return total / float64(len(m))
}
