// Package netserve is a goleak fixture: the package path is on the
// audited goroutine list, so every go statement here must launch a
// goroutine with a reachable stop path. `work` is never closed anywhere
// in the module — spinning on it is flagged; `feed` is closed by Close
// and `quit` gives the select loop its exit. A marker comment naming an
// analyzer means the line must produce exactly one finding of it.
package netserve

// Batcher mirrors the real front-end's goroutine shapes.
type Batcher struct {
	work chan int
	feed chan int
	quit chan struct{}
}

// StartSpin launches an escape-free infinite loop.
func (b *Batcher) StartSpin() {
	go func() { // want:goleak
		for {
			b.work <- 1
		}
	}()
}

// StartRange launches a named helper that ranges over a channel no
// module code ever closes.
func (b *Batcher) StartRange() {
	go b.pump() // want:goleak
}

func (b *Batcher) pump() {
	for range b.work {
	}
}

// StartStoppable selects on the quit channel: the loop can return, no
// finding.
func (b *Batcher) StartStoppable() {
	go func() {
		for {
			select {
			case <-b.work:
			case <-b.quit:
				return
			}
		}
	}()
}

// StartDrain ranges over the channel Close closes: terminates once the
// producer is done, no finding.
func (b *Batcher) StartDrain() {
	go func() {
		for range b.feed {
		}
	}()
}

// StartPinned is a sanctioned process-lifetime pump: suppressed, with
// the reason surfaced in rtlint's output.
func (b *Batcher) StartPinned() {
	//rt:allow goleak fixture proves process-lifetime goroutines can be sanctioned
	go func() {
		for {
			b.work <- 0
		}
	}()
}

// Stop ends the stoppable loop; Close ends the drain loop.
func (b *Batcher) Stop()  { close(b.quit) }
func (b *Batcher) Close() { close(b.feed) }
