// Hot-path allocation fixtures: //rt:hotpath roots and everything they
// statically reach must be allocation-free, with the warm-up, result-
// flow and cold-tail idioms sanctioned. See kernels.go for this
// package's determinism/floatorder fixtures.

package kernels

// trace absorbs the suppressed append below.
var trace []float32

// Blend is a hot root: the local scratch allocation is flagged; writing
// through caller-provided buffers is the sanctioned shape.
//
//rt:hotpath
func Blend(dst, src []float32) {
	tmp := make([]float32, len(src)) // want:hotalloc
	copy(tmp, src)
	copy(dst, tmp)
}

// Dispatch reaches stage transitively: stage's allocation is flagged
// with the discovery chain even though stage itself is unannotated.
//
//rt:hotpath
func Dispatch(dst, src []float32) {
	stage(dst, src)
}

func stage(dst, src []float32) {
	buf := make([]float32, len(src)) // want:hotalloc
	copy(buf, src)
	copy(dst, buf)
}

// warmBuf grows its buffer only under a cap guard — the warm-up idiom,
// no finding once buffers reach steady size.
type warmBuf struct{ buf []float32 }

//rt:hotpath
func (w *warmBuf) take(n int) []float32 {
	if cap(w.buf) < n {
		w.buf = make([]float32, n)
	}
	return w.buf[:n]
}

// Fresh allocates its own result — the function's contract with its
// caller, not per-call garbage: no finding.
//
//rt:hotpath
func Fresh(n int) []float32 {
	return make([]float32, n)
}

// Traced appends to a package-level slice on the hot path — flagged
// without a directive, sanctioned here with a surfaced reason.
//
//rt:hotpath
func Traced(x float32) {
	trace = append(trace, x) //rt:allow hotalloc fixture proves hot-path suppression with a reason
}
