// Package kernels is a determinism fixture: the real package of this
// name is on the restricted-path list, so wall-clock reads, math/rand
// and map-order leaks are all flagged here. A marker comment naming an
// analyzer means the line must produce exactly one finding of it.
package kernels

import (
	"math/rand" // want:determinism
	"sort"
	"time"
)

// Elapsed reads the wall clock in a restricted package.
func Elapsed(start time.Time) float64 {
	return time.Since(start).Seconds() // want:determinism
}

// Jitter draws from the unseeded global generator.
func Jitter() float64 { return rand.Float64() }

// Names leaks map iteration order into a slice.
func Names(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want:determinism
	}
	return out
}

// SortedNames collects then sorts — the sanctioned idiom, no finding.
func SortedNames(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Join concatenates strings in map order.
func Join(m map[string]int) string {
	s := ""
	for k := range m {
		s += k // want:determinism
	}
	return s
}

// AnyKey keeps an arbitrary iteration's key.
func AnyKey(m map[string]int) string {
	var last string
	for k := range m {
		last = k // want:determinism
	}
	return last
}

// Sum accumulates floats in map order — floatorder's domain, which
// determinism leaves alone.
func Sum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want:floatorder
	}
	return sum
}

// Allowed is suppressed by a trailing directive: no finding.
func Allowed() int64 {
	return time.Now().UnixNano() //rtlint:allow determinism -- fixture proves trailing-directive suppression
}

// AllowedAbove is suppressed by a directive on the preceding line.
func AllowedAbove() int64 {
	//rtlint:allow determinism -- fixture proves own-line directive covers the next line
	return time.Now().UnixNano()
}
