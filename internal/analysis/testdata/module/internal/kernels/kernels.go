// Package kernels is a determinism fixture: the real package of this
// name is on the restricted-path list, so wall-clock reads, math/rand
// and map-order leaks are all flagged here. A marker comment naming an
// analyzer means the line must produce exactly one finding of it.
package kernels

import (
	"math/rand" // want:determinism
	"sort"
	"time"
)

// Elapsed reads the wall clock in a restricted package.
func Elapsed(start time.Time) float64 {
	return time.Since(start).Seconds() // want:determinism
}

// Jitter draws from the unseeded global generator.
func Jitter() float64 { return rand.Float64() }

// Names leaks map iteration order into a slice.
func Names(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want:determinism
	}
	return out
}

// SortedNames collects then sorts — the sanctioned idiom, no finding.
func SortedNames(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Join concatenates strings in map order.
func Join(m map[string]int) string {
	s := ""
	for k := range m {
		s += k // want:determinism
	}
	return s
}

// AnyKey keeps an arbitrary iteration's key.
func AnyKey(m map[string]int) string {
	var last string
	for k := range m {
		last = k // want:determinism
	}
	return last
}

// Sum accumulates floats in map order — floatorder's domain, which
// determinism leaves alone.
func Sum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want:floatorder
	}
	return sum
}

// Variant mirrors the real kernel library's rounding carrier: partial
// sums are rounded by roundTo and folded by combine.
type Variant struct{ SplitK int }

func (v Variant) roundTo(x float32) float32 { return x }

func (v Variant) combine(partials []float32) float32 {
	var acc float32
	for _, p := range partials {
		acc = v.roundTo(acc + p)
	}
	return acc
}

// Dot reduces without the rounding discipline: flagged by the kernels
// reduction rule.
func Dot(x, w []float32) float32 {
	var acc float32
	for i, xv := range x {
		acc += w[i] * xv // want:floatorder
	}
	return acc
}

// DotRounded folds the same reduction through roundTo — the sanctioned
// shape, no finding.
func DotRounded(v Variant, x, w []float32) float32 {
	var acc float32
	for i, xv := range x {
		acc += w[i] * xv
	}
	return v.roundTo(acc)
}

// TiledDot accumulates per tile and folds the partials through combine
// — sanctioned, no finding anywhere in the function.
func TiledDot(v Variant, x, w []float32) float32 {
	var partials []float32
	for t := 0; t < len(x); t += 4 {
		var acc float32
		for i := t; i < t+4 && i < len(x); i++ {
			acc += w[i] * x[i]
		}
		partials = append(partials, acc)
	}
	return v.combine(partials)
}

// Norm accumulates a float64 across a plain counted loop with no
// rounding anywhere in the function: flagged.
func Norm(xs []float64) float64 {
	var total float64
	for i := 0; i < len(xs); i++ {
		total += xs[i] * xs[i] // want:floatorder
	}
	return total
}

// ResetPerIteration declares its accumulator inside the loop body, so
// nothing carries across iterations: no finding.
func ResetPerIteration(xs []float32) []float32 {
	out := make([]float32, len(xs))
	for i := range xs {
		y := xs[i]
		y += 1
		out[i] = y
	}
	return out
}

// Allowed is suppressed by a trailing directive: no finding.
func Allowed() int64 {
	return time.Now().UnixNano() //rtlint:allow determinism -- fixture proves trailing-directive suppression
}

// AllowedAbove is suppressed by a directive on the preceding line.
func AllowedAbove() int64 {
	//rtlint:allow determinism -- fixture proves own-line directive covers the next line
	return time.Now().UnixNano()
}
