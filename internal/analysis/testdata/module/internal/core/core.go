// Package core is a panicpath fixture: Load, (*Engine).Infer and
// (*Engine).InferFaulty match the default entry-point roots, so panics
// in their call graphs are flagged — except behind recover barriers,
// behind allow directives, or in unreachable functions.
package core

import "fmt"

// Engine mirrors the real engine type so the default roots resolve.
type Engine struct{ name string }

type validator interface {
	validate(n int) error
}

type strict struct{}

func (strict) validate(n int) error {
	if n < 0 {
		panic("negative length") // want:panicpath
	}
	return nil
}

// Load is a default panicpath root.
func Load(data []byte) (*Engine, error) {
	if err := parse(data); err != nil {
		return nil, err
	}
	return &Engine{name: "ok"}, nil
}

// parse panics directly and dispatches through an interface whose
// module implementation panics too.
func parse(data []byte) error {
	if len(data) == 0 {
		panic("empty plan") // want:panicpath
	}
	var v validator = strict{}
	return v.validate(len(data))
}

// Infer is a default panicpath root.
func (e *Engine) Infer(x float64) (float64, error) {
	y, err := safeEval(x)
	if err != nil {
		return 0, err
	}
	return y + guarded(x), nil
}

// safeEval installs a recover barrier, so panics below it are converted
// to errors at runtime and not reported.
func safeEval(x float64) (y float64, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("eval: %v", r)
		}
	}()
	return riskyEval(x), nil
}

func riskyEval(x float64) float64 {
	if x < 0 {
		panic("negative input") // no finding: behind safeEval's recover barrier
	}
	return x * 2
}

// guarded panics only on a caller-contract violation; the directive
// suppresses the finding.
func guarded(x float64) float64 {
	if x > 1e308 {
		panic("overflow") //rtlint:allow panicpath -- fixture proves suppression on a reachable panic
	}
	return x
}

// InferFaulty is also a root; it reaches no panic.
func (e *Engine) InferFaulty(x float64) (float64, error) { return x, nil }

// unreachablePanic is not called from any root: no finding.
func unreachablePanic() {
	panic("never called")
}
