// Package serve is a lockorder and deadlineflow fixture. Executor.Do
// matches the seeded blocking entry points (DefaultBlockingFuncs), so
// holding a mutex across it is flagged without any call-graph proof;
// the other cases exercise direct blocking operations, transitive
// blocking through a module callee, and the deadline-sibling rule. A
// marker comment naming an analyzer means the line must produce exactly
// one finding of it.
package serve

import (
	"sync"
	"time"

	"edgeinfer/internal/rtctx"
)

// Executor mirrors the real serving executor so the seeded blocking
// list resolves against this module.
type Executor struct{ n int }

// Do matches "(*edgeinfer/internal/serve.Executor).Do".
func (ex *Executor) Do(x int) int { return x + ex.n }

// Queue is the lock-discipline specimen.
type Queue struct {
	mu sync.Mutex
	ch chan int
	ex *Executor
}

// SendUnderLock holds the mutex across a channel send.
func (q *Queue) SendUnderLock(v int) {
	q.mu.Lock()
	q.ch <- v // want:lockorder
	q.mu.Unlock()
}

// SleepUnderLock holds a deferred-unlock mutex across time.Sleep.
func (q *Queue) SleepUnderLock() {
	q.mu.Lock()
	defer q.mu.Unlock()
	time.Sleep(time.Millisecond) // want:lockorder
}

// InferUnderLock holds the mutex across a seeded serving entry point.
func (q *Queue) InferUnderLock(x int) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.ex.Do(x) // want:lockorder
}

// DrainUnderLock blocks transitively: drain receives from a channel.
func (q *Queue) DrainUnderLock() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.drain() // want:lockorder
}

func (q *Queue) drain() int { return <-q.ch }

// ReleaseFirst drops the lock before blocking: no finding.
func (q *Queue) ReleaseFirst(v int) {
	q.mu.Lock()
	q.mu.Unlock()
	q.ch <- v
}

// PollUnderLock uses select-with-default under the lock — non-blocking
// by construction, no finding.
func (q *Queue) PollUnderLock(v int) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	select {
	case q.ch <- v:
		return true
	default:
		return false
	}
}

// AllowedSend is sanctioned with a reason: suppressed, reason surfaced.
func (q *Queue) AllowedSend(v int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.ch <- v //rt:allow lockorder fixture proves compact-directive suppression
}

// Run, RunCtx and RunDeadline are the budget-sibling family: both
// suffix spellings exist, so a dropped budget must still report
// exactly once per call.
func (q *Queue) Run(x int) int { return x }

// RunCtx is Run under a request context.
func (q *Queue) RunCtx(ctx *rtctx.Request, x int) int {
	_ = ctx.Budget()
	return x
}

// RunDeadline is Run under a scalar budget.
func (q *Queue) RunDeadline(x int, deadlineSec float64) int {
	_ = deadlineSec
	return x
}

// Serve drops its deadline: Run has budget-aware siblings.
func (q *Queue) Serve(x int, deadlineSec float64) int {
	return q.Run(x) // want:deadlineflow
}

// ServeRequest drops its request context: the rtctx.Request parameter
// marks it a budget carrier even without a deadline-flavored name.
func (q *Queue) ServeRequest(ctx *rtctx.Request, x int) int {
	return q.Run(x) // want:deadlineflow
}

// ServeBudget threads the budget into the Deadline sibling: no finding.
func (q *Queue) ServeBudget(x int, deadlineSec float64) int {
	return q.RunDeadline(x, deadlineSec)
}

// ServeThreaded threads the context into the Ctx sibling: no finding.
func (q *Queue) ServeThreaded(ctx *rtctx.Request, x int) int {
	return q.RunCtx(ctx, x)
}

// ServeAllowed documents why the plain call is correct here.
func (q *Queue) ServeAllowed(ctx *rtctx.Request, x int) int {
	_ = ctx.Budget()
	return q.Run(x) //rt:allow deadlineflow fixture: budget is checked before dispatch
}
