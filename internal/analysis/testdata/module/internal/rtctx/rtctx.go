// Package rtctx mirrors the real request-context leaf package so the
// deadlineflow fixtures can declare budget-carrying parameters: the
// analyzer recognizes rtctx.Request (pointer or value) by its package
// path suffix and type name.
package rtctx

// Request is one request's real-time identity.
type Request struct {
	BudgetSec float64
	Abort     bool
}

// Budget is the nil-safe budget accessor.
func (r *Request) Budget() float64 {
	if r == nil {
		return 0
	}
	return r.BudgetSec
}
