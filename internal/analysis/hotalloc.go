package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// hotalloc statically verifies that functions annotated `//rt:hotpath`
// (and everything they statically call) perform no per-call heap
// allocation in steady state. It is the compile-time twin of the
// runtime 0-allocs/op pin (TestExecIntoSteadyStateZeroAllocs): the
// paper's enqueue-cost and tail-latency numbers depend on the engine
// never touching the allocator between warm-up and teardown.
//
// Flagged on a hot path: make/new, append growth, heap composite
// literals (&T{...}, slice/map literals), string concatenation,
// allocating stdlib calls (fmt/strconv/strings/errors/sort/bytes),
// goroutine launches, and escaping closures.
//
// Allowed without a directive, because each is how warm steady state is
// built rather than per-call garbage:
//   - result flow: an allocation inside a return statement or assigned
//     to a result variable is the function's contract with its caller;
//   - warm-up and lazy init: an allocation guarded by a cap/len check
//     or a nil check runs only until buffers reach steady size;
//   - error/panic tails: blocks ending in a non-nil error return or a
//     panic are cold by definition;
//   - recover barriers: a function literal containing recover() exists
//     to handle the already-failed case.
//
// Known limitations (documented in DESIGN.md): interface-method calls
// are not traversed (annotate the implementations directly, as done for
// the kernel chunk workers), and result-flow allocations are trusted
// rather than traced to the caller — the dynamic allocs/op test remains
// the end-to-end backstop.

// HotAlloc returns the hot-path allocation-freedom analyzer.
func HotAlloc() *Analyzer {
	return &Analyzer{
		Name: "hotalloc",
		Doc:  "//rt:hotpath functions must be statically allocation-free",
		Run:  runHotAlloc,
	}
}

func runHotAlloc(m *Module, r *Reporter) {
	decls := moduleFuncDecls(m)
	ids := make([]string, 0, len(decls))
	for id := range decls {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	var roots []string
	for _, id := range ids {
		if hotPathAnnotated(decls[id].fd) {
			roots = append(roots, id)
		}
	}

	// Breadth-first walk of the static call graph from the annotated
	// roots, keeping the discovery parent for chain diagnostics.
	parent := map[string]string{}
	visited := map[string]bool{}
	queue := append([]string(nil), roots...)
	for _, id := range roots {
		visited[id] = true
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		d, ok := decls[id]
		if !ok {
			continue
		}
		allocs, edges := scanHot(m, d)
		for _, a := range allocs {
			r.Report(Error, a.pos, "allocation on hot path %s: %s", chain(parent, id), a.desc)
		}
		for _, e := range edges {
			if !visited[e] {
				visited[e] = true
				parent[e] = id
				queue = append(queue, e)
			}
		}
	}
}

// hotPathAnnotated reports whether a declaration's doc comment carries
// the //rt:hotpath directive.
func hotPathAnnotated(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		t := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if t == "rt:hotpath" || strings.HasPrefix(t, "rt:hotpath ") {
			return true
		}
	}
	return false
}

type hotSite struct {
	pos  token.Pos
	desc string
}

// scanHot walks one hot function body, returning the allocation sites
// that violate the contract and the module callees the hot region
// reaches (cold tails excluded).
func scanHot(m *Module, d *declInfo) (allocs []hotSite, edges []string) {
	info := d.pkg.Info
	cold := coldBlocks(info, d.fd)
	results := resultObjs(info, d.fd)
	edgeSeen := map[string]bool{}
	addEdge := func(id string) {
		if id != "" && !edgeSeen[id] {
			edgeSeen[id] = true
			edges = append(edges, id)
		}
	}
	inspectWithStack(d.fd.Body, func(n ast.Node, stack []ast.Node) bool {
		if cold[n] {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			allocs = append(allocs, hotSite{n.Pos(), "goroutine launch"})
			return false
		case *ast.FuncLit:
			if litRecovers(info, n) {
				return false // recover barrier: cold by construction
			}
			if !funcLitInvokedInline(stack, n) && !allowedByFlow(info, n, stack, results) {
				allocs = append(allocs, hotSite{n.Pos(), "escaping closure"})
				return false
			}
		case *ast.CompositeLit:
			if desc := compositeAllocDesc(info, n, stack); desc != "" &&
				!allowedByFlow(info, n, stack, results) && !warmupGuarded(info, stack) {
				allocs = append(allocs, hotSite{n.Pos(), desc})
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringExpr(info, n) &&
				!allowedByFlow(info, n, stack, results) {
				allocs = append(allocs, hotSite{n.Pos(), "string concatenation"})
			}
		case *ast.CallExpr:
			switch calleeBuiltin(info, n) {
			case "make", "new":
				if !allowedByFlow(info, n, stack, results) && !warmupGuarded(info, stack) {
					allocs = append(allocs, hotSite{n.Pos(), calleeBuiltin(info, n) + "()"})
				}
				return true
			case "append":
				if !allowedByFlow(info, n, stack, results) && !warmupGuarded(info, stack) &&
					!trustedAppend(m, info, d.fd, n) {
					allocs = append(allocs, hotSite{n.Pos(), "append growth on untrusted slice"})
				}
				return true
			}
			if fn := resolvedCallee(info, n); fn != nil {
				if moduleFunc(m, fn) {
					addEdge(funcID(fn))
				} else if pkg := allocStdlibPkg(fn); pkg != "" &&
					!allowedByFlow(info, n, stack, results) {
					allocs = append(allocs, hotSite{n.Pos(),
						"allocating call to " + pkg + "." + fn.Name()})
				}
			}
		}
		return true
	})
	sort.Strings(edges)
	return allocs, edges
}

// coldBlocks marks blocks whose last statement is recognizably an error
// or panic tail: `return ..., err`, `return ..., fmt.Errorf(...)`,
// `return &SomeError{...}`, or `panic(...)`. Allocation inside them is
// off the steady-state path.
func coldBlocks(info *types.Info, fd *ast.FuncDecl) map[ast.Node]bool {
	cold := map[ast.Node]bool{}
	mark := func(block ast.Node, list []ast.Stmt) {
		if len(list) == 0 {
			return
		}
		switch last := list[len(list)-1].(type) {
		case *ast.ReturnStmt:
			if len(last.Results) > 0 && coldTailExpr(info, last.Results[len(last.Results)-1]) {
				cold[block] = true
			}
		case *ast.ExprStmt:
			if call, ok := last.X.(*ast.CallExpr); ok {
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
					if _, builtin := info.Uses[id].(*types.Builtin); builtin {
						cold[block] = true
					}
				}
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt:
			mark(n, n.List)
		case *ast.CaseClause:
			mark(n, n.Body)
		case *ast.CommClause:
			mark(n, n.Body)
		}
		return true
	})
	return cold
}

// coldTailExpr reports whether a return's final expression is an error
// value rather than a hot delegation: a non-nil error-typed identifier,
// a fmt/errors constructor, or a heap error literal.
func coldTailExpr(info *types.Info, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if e.Name == "nil" {
			return false
		}
		tv, ok := info.Types[e]
		return ok && tv.Type != nil && isErrorType(tv.Type)
	case *ast.CallExpr:
		fn := calleeFunc(info, e)
		if fn == nil || fn.Pkg() == nil {
			return false
		}
		switch fn.Pkg().Path() {
		case "fmt", "errors":
			return true
		}
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			_, isLit := e.X.(*ast.CompositeLit)
			return isLit
		}
	}
	return false
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() == nil && n.Obj().Name() == "error"
}

// resultObjs collects the function's result variables: named results
// plus every identifier returned anywhere in the body. Allocations that
// flow into them are the function's contract, not per-call garbage.
func resultObjs(info *types.Info, fd *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	if fd.Type.Results != nil {
		for _, f := range fd.Type.Results.List {
			for _, name := range f.Names {
				if obj := info.Defs[name]; obj != nil {
					out[obj] = true
				}
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if id, ok := ast.Unparen(res).(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

// allowedByFlow reports whether an allocation's value flows into the
// function's results: it sits inside a return statement, or on the
// right-hand side of an assignment whose matching left-hand side is
// rooted in a result variable.
func allowedByFlow(info *types.Info, n ast.Node, stack []ast.Node, results map[types.Object]bool) bool {
	for i := len(stack) - 2; i >= 0; i-- {
		switch a := stack[i].(type) {
		case *ast.ReturnStmt:
			return true
		case *ast.AssignStmt:
			if len(a.Lhs) != len(a.Rhs) {
				return false
			}
			for j, rhs := range a.Rhs {
				if !containsNode(rhs, n) {
					continue
				}
				if obj := baseIdentObj(info, a.Lhs[j]); obj != nil && results[obj] {
					return true
				}
			}
			return false
		case *ast.BlockStmt, *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt,
			*ast.SwitchStmt, *ast.CaseClause, *ast.ExprStmt, *ast.DeferStmt, *ast.GoStmt:
			return false
		}
	}
	return false
}

// containsNode reports whether target is within the subtree rooted at n.
func containsNode(n ast.Node, target ast.Node) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if found {
			return false
		}
		if x == target {
			found = true
		}
		return !found
	})
	return found
}

// baseIdentObj resolves the root identifier of an lvalue chain
// (outs[i], sc.acts, *p) to its object.
func baseIdentObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return info.ObjectOf(x)
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// warmupGuarded reports whether an allocation sits under an if whose
// condition checks cap/len or nil — the warm-up/lazy-init idiom that
// stops allocating once buffers reach steady size.
func warmupGuarded(info *types.Info, stack []ast.Node) bool {
	for i := len(stack) - 2; i >= 0; i-- {
		ifs, ok := stack[i].(*ast.IfStmt)
		if !ok {
			continue
		}
		guarded := false
		ast.Inspect(ifs.Cond, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
					if b, isB := info.Uses[id].(*types.Builtin); isB &&
						(b.Name() == "cap" || b.Name() == "len") {
						guarded = true
					}
				}
			case *ast.BinaryExpr:
				if n.Op == token.EQL || n.Op == token.NEQ {
					if isNilIdent(n.X) || isNilIdent(n.Y) {
						guarded = true
					}
				}
			}
			return !guarded
		})
		if guarded {
			return true
		}
	}
	return false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// trustedAppend reports whether append's slice operand was created in
// this function with known capacity: defined from make, a slice
// expression, or a module call's result. Appending to such a slice in
// steady state reuses the warmed capacity.
func trustedAppend(m *Module, info *types.Info, fd *ast.FuncDecl, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	obj := baseIdentObj(info, call.Args[0])
	if obj == nil {
		return false
	}
	trusted := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if trusted {
			return false
		}
		a, ok := n.(*ast.AssignStmt)
		if !ok || len(a.Lhs) != len(a.Rhs) {
			return true
		}
		for j, lhs := range a.Lhs {
			if baseIdentObj(info, lhs) != obj {
				continue
			}
			switch rhs := ast.Unparen(a.Rhs[j]).(type) {
			case *ast.SliceExpr:
				trusted = true
			case *ast.CallExpr:
				if calleeBuiltin(info, rhs) == "make" {
					trusted = true
				} else if fn := resolvedCallee(info, rhs); fn != nil && moduleFunc(m, fn) {
					trusted = true
				}
			}
		}
		return true
	})
	return trusted
}

// compositeAllocDesc classifies a composite literal: slice and map
// literals allocate, as does &T{...}; plain struct and array values do
// not. Literals nested inside an already-reported parent literal are
// skipped.
func compositeAllocDesc(info *types.Info, lit *ast.CompositeLit, stack []ast.Node) string {
	if len(stack) >= 2 {
		switch p := stack[len(stack)-2].(type) {
		case *ast.UnaryExpr:
			if p.Op == token.AND {
				return "heap composite literal (&" + types.ExprString(lit.Type) + "{...})"
			}
		case *ast.CompositeLit, *ast.KeyValueExpr:
			return "" // inner literal of an outer one: judged at the outer node
		}
	}
	tv, ok := info.Types[lit]
	if !ok || tv.Type == nil {
		return ""
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice:
		return "slice literal"
	case *types.Map:
		return "map literal"
	}
	return ""
}

// litRecovers reports whether a function literal contains a recover()
// call (at any depth not crossing another literal boundary is not
// distinguished — any recover marks it as a barrier).
func litRecovers(info *types.Info, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "recover" {
			if _, builtin := info.Uses[id].(*types.Builtin); builtin {
				found = true
			}
		}
		return !found
	})
	return found
}

// calleeBuiltin returns the name of the builtin a call invokes ("" for
// non-builtins).
func calleeBuiltin(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// allocStdlibPkg names the standard-library packages whose calls imply
// allocation on the caller's side ("" for everything else).
func allocStdlibPkg(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	switch p := fn.Pkg().Path(); p {
	case "fmt", "strconv", "strings", "errors", "sort", "bytes":
		return p
	}
	return ""
}

// isStringExpr reports whether an expression has string type.
func isStringExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
