package kernels

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"testing"
	"time"

	"edgeinfer/internal/tensor"
)

// Bit-identity suite for the parallel executor. refExecConv/refExecFC
// below are verbatim re-derivations of the original serial per-element
// implementation (one partials slice per output element, taps skipped by
// bounds checks); the pool-based executor must reproduce their outputs
// bit for bit — same Float32bits — for every variant shape, precision,
// split-K setting and worker count, because the engine consistency
// tables (paper Tables V/VI) are golden-number artifacts of exactly this
// accumulation order.

// refExecConv is the retained serial conv reference.
func refExecConv(v Variant, x, w, b *tensor.Tensor, p tensor.ConvParams) *tensor.Tensor {
	groups := p.Groups
	if groups <= 0 {
		groups = 1
	}
	icg := x.C / groups
	ocg := p.OutC / groups
	oh := tensor.ConvOutDim(x.H, p.Kernel, p.Stride, p.Pad)
	ow := tensor.ConvOutDim(x.W, p.Kernel, p.Stride, p.Pad)
	y := tensor.New(x.N, p.OutC, oh, ow)
	tileC := v.tileChannels(p.Kernel)
	for n := 0; n < x.N; n++ {
		for oc := 0; oc < p.OutC; oc++ {
			g := oc / ocg
			var bias float32
			if b != nil {
				bias = b.Data[oc]
			}
			for i := 0; i < oh; i++ {
				for j := 0; j < ow; j++ {
					val := refReduceConv(v, x, w, n, oc, g, icg, i, j, p, tileC)
					val = v.roundTo(val + bias)
					if v.FusedAct && val < 0 {
						val = 0
					}
					y.Set(n, oc, i, j, val)
				}
			}
		}
	}
	return y
}

func refReduceConv(v Variant, x, w *tensor.Tensor, n, oc, g, icg, i, j int, p tensor.ConvParams, tileC int) float32 {
	var partials []float32
	for c0 := 0; c0 < icg; c0 += tileC {
		c1 := c0 + tileC
		if c1 > icg {
			c1 = icg
		}
		var acc float32
		for c := c0; c < c1; c++ {
			ic := g*icg + c
			for kh := 0; kh < p.Kernel; kh++ {
				ih := i*p.Stride + kh - p.Pad
				if ih < 0 || ih >= x.H {
					continue
				}
				for kw := 0; kw < p.Kernel; kw++ {
					iw := j*p.Stride + kw - p.Pad
					if iw < 0 || iw >= x.W {
						continue
					}
					wv := w.Data[((oc*icg+c)*p.Kernel+kh)*p.Kernel+kw]
					acc += wv * x.At(n, ic, ih, iw)
				}
			}
		}
		partials = append(partials, v.roundTo(acc))
	}
	return v.combine(partials)
}

// refExecFC is the retained serial FC reference.
func refExecFC(v Variant, x, w, b *tensor.Tensor, out int) *tensor.Tensor {
	in := x.C * x.H * x.W
	tile := v.TileK
	if tile < 1 {
		tile = in
	}
	y := tensor.New(x.N, out, 1, 1)
	for n := 0; n < x.N; n++ {
		xoff := n * in
		for o := 0; o < out; o++ {
			woff := o * in
			var partials []float32
			for k0 := 0; k0 < in; k0 += tile {
				k1 := k0 + tile
				if k1 > in {
					k1 = in
				}
				var acc float32
				for k := k0; k < k1; k++ {
					acc += w.Data[woff+k] * x.Data[xoff+k]
				}
				partials = append(partials, v.roundTo(acc))
			}
			val := v.combine(partials)
			if b != nil {
				val = v.roundTo(val + b.Data[o])
			}
			if v.FusedAct && val < 0 {
				val = 0
			}
			y.Set(n, o, 0, 0, val)
		}
	}
	return y
}

// sameBits fails the test at the first element whose Float32bits differ
// (NaN-exact, signed-zero-exact comparison).
func sameBits(t *testing.T, label string, got, want *tensor.Tensor) {
	t.Helper()
	if len(got.Data) != len(want.Data) {
		t.Fatalf("%s: length %d vs %d", label, len(got.Data), len(want.Data))
	}
	for i := range want.Data {
		if math.Float32bits(got.Data[i]) != math.Float32bits(want.Data[i]) {
			t.Fatalf("%s: bit mismatch at %d: %v (%08x) vs %v (%08x)", label, i,
				got.Data[i], math.Float32bits(got.Data[i]),
				want.Data[i], math.Float32bits(want.Data[i]))
		}
	}
}

// matrixVariants pairs families with precisions, reduction tiles and
// split-K factors so every Family and every rounding mode appears.
func matrixVariants(fams []Family) []Variant {
	precs := []tensor.Precision{tensor.FP32, tensor.FP16, tensor.INT8}
	tileKs := []int{9, 32, 64, 288}
	splitKs := []int{1, 2, 4}
	var out []Variant
	for ti, tk := range tileKs {
		for si, sk := range splitKs {
			for pi, prec := range precs {
				out = append(out, Variant{
					Family:    fams[(ti+si+pi)%len(fams)],
					TileM:     64,
					TileN:     64,
					TileK:     tk,
					Precision: prec,
					SplitK:    sk,
					FusedAct:  (ti+si+pi)%2 == 0,
				})
			}
		}
	}
	return out
}

type convShape struct {
	name                              string
	n, c, h, w                        int
	outC, kernel, stride, pad, groups int
}

var convShapes = []convShape{
	{"pad1-3x3", 1, 16, 12, 12, 8, 3, 1, 1, 1},
	{"nopad", 2, 8, 9, 9, 12, 3, 1, 0, 1},
	{"stride2", 1, 12, 15, 15, 10, 3, 2, 1, 1},
	{"pointwise", 1, 32, 7, 7, 16, 1, 1, 0, 1},
	{"k5-pad2", 1, 6, 11, 11, 6, 5, 1, 2, 1},
	{"grouped", 1, 16, 8, 8, 16, 3, 1, 1, 4},
	{"depthwise", 1, 24, 10, 10, 24, 3, 1, 1, 24},
	{"deep", 1, 64, 4, 4, 48, 3, 1, 1, 1},
	{"tall-window", 1, 4, 3, 9, 4, 3, 1, 1, 1},
}

// TestParallelConvBitIdentical is the conv half of the issue's
// bit-identity matrix: every family/precision/TileK/SplitK combination,
// on shapes covering padding edges, strides, groups, depthwise and
// windows larger than the input, across worker counts 1, 4 and 8.
func TestParallelConvBitIdentical(t *testing.T) {
	variants := matrixVariants([]Family{FamHMMAConv, FamWinograd, FamCUDAConv, FamDepthwise})
	defer SetWorkers(SetWorkers(1))
	for shapeIdx, cs := range convShapes {
		p := tensor.ConvParams{OutC: cs.outC, Kernel: cs.kernel, Stride: cs.stride, Pad: cs.pad, Groups: cs.groups}
		x := randTensor("pc-x/"+cs.name, cs.n, cs.c, cs.h, cs.w)
		icg := cs.c / cs.groups
		w := randTensor("pc-w/"+cs.name, cs.outC, icg, cs.kernel, cs.kernel)
		bias := randTensor("pc-b/"+cs.name, 1, cs.outC, 1, 1)
		for vi, v := range variants {
			b := bias
			if (shapeIdx+vi)%2 == 0 {
				b = nil
			}
			want := refExecConv(v, x, w, b, p)
			for _, workers := range []int{1, 4, 8} {
				SetWorkers(workers)
				got := mustExecConv(t, v, x, w, b, p)
				sameBits(t, fmt.Sprintf("%s %+v workers=%d", cs.name, v, workers), got, want)
			}
		}
	}
}

// TestParallelFCBitIdentical is the FC half of the matrix, including the
// TileK<1 whole-reduction fallback and multi-image batches.
func TestParallelFCBitIdentical(t *testing.T) {
	shapes := []struct {
		name       string
		n, c, h, w int
		out        int
	}{
		{"fc-small", 1, 32, 2, 2, 10},
		{"fc-flat", 2, 128, 1, 1, 33},
		{"fc-odd", 1, 7, 3, 3, 5},
	}
	variants := matrixVariants([]Family{FamGEMM})
	variants = append(variants,
		Variant{Family: FamGEMM, TileK: 0, Precision: tensor.FP16, SplitK: 2},
		Variant{Family: FamGEMM, TileK: 1 << 20, Precision: tensor.FP16})
	defer SetWorkers(SetWorkers(1))
	for shapeIdx, cs := range shapes {
		in := cs.c * cs.h * cs.w
		x := randTensor("pf-x/"+cs.name, cs.n, cs.c, cs.h, cs.w)
		w := randTensor("pf-w/"+cs.name, 1, cs.out*in, 1, 1)
		bias := randTensor("pf-b/"+cs.name, 1, cs.out, 1, 1)
		for vi, v := range variants {
			b := bias
			if (shapeIdx+vi)%2 == 0 {
				b = nil
			}
			want := refExecFC(v, x, w, b, cs.out)
			for _, workers := range []int{1, 4, 8} {
				SetWorkers(workers)
				got := mustExecFC(t, v, x, w, b, cs.out)
				sameBits(t, fmt.Sprintf("%s %+v workers=%d", cs.name, v, workers), got, want)
			}
		}
	}
}

// TestExecIntoValidatesBuffers covers the reuse-path buffer contracts.
func TestExecIntoValidatesBuffers(t *testing.T) {
	x := randTensor("ei-x", 1, 8, 10, 10)
	w := randTensor("ei-w", 8, 8, 3, 3)
	p := tensor.ConvParams{OutC: 8, Kernel: 3, Stride: 1, Pad: 1, Groups: 1}
	v := Variant{Family: FamCUDAConv, TileM: 128, TileN: 64, TileK: 32, Precision: tensor.FP32}
	if err := ExecConvInto(v, x, w, nil, p, tensor.New(1, 8, 9, 9)); err == nil {
		t.Fatal("ExecConvInto accepted a mis-shaped output buffer")
	}
	if err := ExecConvInto(v, x, w, nil, p, nil); err == nil {
		t.Fatal("ExecConvInto accepted a nil output buffer")
	}
	y := tensor.New(1, 8, 10, 10)
	for i := range y.Data {
		y.Data[i] = float32(math.NaN()) // stale contents must be fully overwritten
	}
	if err := ExecConvInto(v, x, w, nil, p, y); err != nil {
		t.Fatal(err)
	}
	sameBits(t, "conv into", y, mustExecConv(t, v, x, w, nil, p))

	fx := randTensor("ei-fx", 2, 16, 2, 2)
	fw := randTensor("ei-fw", 1, 10*64, 1, 1)
	fv := Variant{Family: FamGEMM, TileM: 64, TileN: 64, TileK: 32, Precision: tensor.FP16}
	if err := ExecFCInto(fv, fx, fw, nil, 10, tensor.New(2, 9, 1, 1)); err == nil {
		t.Fatal("ExecFCInto accepted a mis-shaped output buffer")
	}
	fy := tensor.New(2, 10, 1, 1)
	if err := ExecFCInto(fv, fx, fw, nil, 10, fy); err != nil {
		t.Fatal(err)
	}
	sameBits(t, "fc into", fy, mustExecFC(t, fv, fx, fw, nil, 10))
}

// TestConcurrentExecRace hammers the shared pool from many goroutines —
// mixed conv and FC calls plus worker-count churn — and checks every
// result stays bit-identical to the serial reference. Run under -race
// this is the issue's data-race gate for the executor.
func TestConcurrentExecRace(t *testing.T) {
	x := randTensor("race-x", 1, 32, 10, 10)
	w := randTensor("race-w", 16, 32, 3, 3)
	p := tensor.ConvParams{OutC: 16, Kernel: 3, Stride: 1, Pad: 1, Groups: 1}
	cv := Variant{Family: FamHMMAConv, TileM: 128, TileN: 64, TileK: 64, Precision: tensor.FP16, SplitK: 2}
	fx := randTensor("race-fx", 1, 64, 2, 2)
	fw := randTensor("race-fw", 1, 20*256, 1, 1)
	fv := Variant{Family: FamGEMM, TileM: 64, TileN: 64, TileK: 64, Precision: tensor.FP16}
	wantConv := refExecConv(cv, x, w, nil, p)
	wantFC := refExecFC(fv, fx, fw, nil, 20)

	defer SetWorkers(SetWorkers(4))
	const goroutines, iters = 8, 20
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				if gi == 0 && it%5 == 0 {
					SetWorkers(1 + (it/5)%8) // churn the width mid-flight
				}
				if (gi+it)%2 == 0 {
					got, err := ExecConv(cv, x, w, nil, p)
					if err != nil {
						errs <- err
						return
					}
					for i := range wantConv.Data {
						if math.Float32bits(got.Data[i]) != math.Float32bits(wantConv.Data[i]) {
							errs <- fmt.Errorf("goroutine %d iter %d: conv bit mismatch at %d", gi, it, i)
							return
						}
					}
				} else {
					got, err := ExecFC(fv, fx, fw, nil, 20)
					if err != nil {
						errs <- err
						return
					}
					for i := range wantFC.Data {
						if math.Float32bits(got.Data[i]) != math.Float32bits(wantFC.Data[i]) {
							errs <- fmt.Errorf("goroutine %d iter %d: fc bit mismatch at %d", gi, it, i)
							return
						}
					}
				}
			}
		}(gi)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestExecIntoSteadyStateZeroAllocs proves the issue's allocation fix:
// once warm, the reuse-path kernels perform no heap allocation at all —
// the per-output-element partials slice of the old implementation is
// gone. Measured serially; the parallel dispatcher adds only O(1) small
// allocations per kernel launch (the chunk descriptor), never per
// element.
func TestExecIntoSteadyStateZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; exact counts only hold without it")
	}
	defer SetWorkers(SetWorkers(1))
	x := randTensor("za-x", 1, 32, 12, 12)
	w := randTensor("za-w", 16, 32, 3, 3)
	p := tensor.ConvParams{OutC: 16, Kernel: 3, Stride: 1, Pad: 1, Groups: 1}
	v := Variant{Family: FamHMMAConv, TileM: 128, TileN: 64, TileK: 64, Precision: tensor.FP16, SplitK: 2}
	y := tensor.New(1, 16, 12, 12)
	fx := randTensor("za-fx", 1, 64, 2, 2)
	fw := randTensor("za-fw", 1, 20*256, 1, 1)
	fv := Variant{Family: FamGEMM, TileM: 64, TileN: 64, TileK: 64, Precision: tensor.FP16}
	fy := tensor.New(1, 20, 1, 1)
	for i := 0; i < 3; i++ { // warm the scratch pool
		if err := ExecConvInto(v, x, w, nil, p, y); err != nil {
			t.Fatal(err)
		}
		if err := ExecFCInto(fv, fx, fw, nil, 20, fy); err != nil {
			t.Fatal(err)
		}
	}
	if allocs := testing.AllocsPerRun(20, func() {
		if err := ExecConvInto(v, x, w, nil, p, y); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("ExecConvInto allocates %.1f objects per run in steady state, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(20, func() {
		if err := ExecFCInto(fv, fx, fw, nil, 20, fy); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("ExecFCInto allocates %.1f objects per run in steady state, want 0", allocs)
	}
}

// TestWorkerPoolKnobs pins the SetWorkers contract: floor of 1, previous
// value returned, Workers reflecting the current width.
func TestWorkerPoolKnobs(t *testing.T) {
	orig := Workers()
	defer SetWorkers(orig)
	if prev := SetWorkers(3); prev != orig {
		t.Fatalf("SetWorkers returned %d, want previous %d", prev, orig)
	}
	if Workers() != 3 {
		t.Fatalf("Workers() %d after SetWorkers(3)", Workers())
	}
	SetWorkers(-5)
	if Workers() != 1 {
		t.Fatalf("Workers() %d after SetWorkers(-5), want floor 1", Workers())
	}
}

// BenchmarkExecConvInto is the kernel-level -benchmem witness for the
// zero-allocation steady state (run serially so the dispatcher's O(1)
// launch bookkeeping does not show up as per-op noise).
func BenchmarkExecConvInto(b *testing.B) {
	defer SetWorkers(SetWorkers(1))
	x := randTensor("bench-x", 1, 64, 16, 16)
	w := randTensor("bench-w", 64, 64, 3, 3)
	p := tensor.ConvParams{OutC: 64, Kernel: 3, Stride: 1, Pad: 1, Groups: 1}
	v := Variant{Family: FamHMMAConv, TileM: 128, TileN: 64, TileK: 64, Precision: tensor.FP16}
	y := tensor.New(1, 64, 16, 16)
	if err := ExecConvInto(v, x, w, nil, p, y); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ExecConvInto(v, x, w, nil, p, y); err != nil {
			b.Fatal(err)
		}
	}
}

// TestStopWorkersRetiresHelpers pins the worker-pool stop path the
// goleak analyzer demands: StopWorkers terminates every helper
// goroutine, kernel execution stays bit-identical afterwards via the
// serial fallback, and SetWorkers respawns a working fleet.
func TestStopWorkersRetiresHelpers(t *testing.T) {
	orig := Workers()
	defer SetWorkers(orig)

	SetWorkers(4)
	x := randTensor("stop-x", 1, 8, 10, 10)
	w := randTensor("stop-w", 8, 8, 3, 3)
	p := tensor.ConvParams{OutC: 8, Kernel: 3, Stride: 1, Pad: 1, Groups: 1}
	v := Variant{Family: FamCUDAConv, TileM: 32, TileN: 32, TileK: 8, Precision: tensor.FP32}
	want := mustExecConv(t, v, x, w, nil, p)

	before := runtime.NumGoroutine()
	StopWorkers()
	StopWorkers() // idempotent: second call must not hang or panic
	// hwg.Wait returns once every helper has run its deferred Done; the
	// goroutines themselves unwind an instant later, so poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() >= before && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got >= before {
		t.Fatalf("goroutine count %d after StopWorkers, want below %d", got, before)
	}

	// With zero helpers the non-blocking enlist finds no takers and the
	// caller does all chunks itself — still bit-identical.
	sameBits(t, "serial fallback after StopWorkers", mustExecConv(t, v, x, w, nil, p), want)

	SetWorkers(4)
	sameBits(t, "respawned fleet", mustExecConv(t, v, x, w, nil, p), want)
}
