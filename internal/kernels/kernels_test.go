package kernels

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"edgeinfer/internal/fixrand"
	"edgeinfer/internal/gpusim"
	"edgeinfer/internal/tensor"
)

// pednetDims approximates a mid-network pednet conv: 512x512 input
// detection net at stride 16, moderate channels.
func pednetDims() ConvDims {
	return ConvDims{Batch: 1, InC: 256, H: 32, W: 32, OutC: 256, OutH: 32, OutW: 32, Kernel: 3, Stride: 1, Groups: 1}
}

func TestConvDimsGEMMView(t *testing.T) {
	d := pednetDims()
	if d.M() != 1024 || d.N() != 256 || d.K() != 2304 {
		t.Fatalf("M=%d N=%d K=%d", d.M(), d.N(), d.K())
	}
	if d.FLOPs() != 2*1024*256*2304 {
		t.Fatalf("flops %d", d.FLOPs())
	}
	if d.WeightParams() != 256*256*9 {
		t.Fatalf("weights %d", d.WeightParams())
	}
}

func TestConvCandidatesMenu(t *testing.T) {
	cands := ConvCandidates(pednetDims(), tensor.FP16)
	var hmma, wino, fp32, splitk int
	for _, v := range cands {
		switch v.Family {
		case FamHMMAConv:
			hmma++
			if v.SplitK > 1 {
				splitk++
			}
		case FamWinograd:
			wino++
		case FamCUDAConv:
			fp32++
		}
	}
	if hmma < 5 {
		t.Errorf("only %d HMMA tiles", hmma)
	}
	if wino != 2 {
		t.Errorf("%d winograd candidates, want 2 (3x3 s1)", wino)
	}
	if fp32 != 1 {
		t.Errorf("%d fp32 fallbacks", fp32)
	}
	if splitk == 0 {
		t.Error("deep reduction should offer split-K tactics")
	}
}

func TestNoWinogradForStride2(t *testing.T) {
	d := pednetDims()
	d.Stride = 2
	for _, v := range ConvCandidates(d, tensor.FP16) {
		if v.Family == FamWinograd {
			t.Fatal("winograd offered for stride-2 conv")
		}
	}
}

func TestDepthwiseCandidates(t *testing.T) {
	d := ConvDims{Batch: 1, InC: 256, H: 20, W: 20, OutC: 256, OutH: 20, OutW: 20, Kernel: 3, Stride: 1, Groups: 256}
	cands := ConvCandidates(d, tensor.FP16)
	if cands[0].Family != FamDepthwise {
		t.Fatal("depthwise conv should lead with the depthwise kernel")
	}
}

func TestFP32PrecisionGetsNoHMMA(t *testing.T) {
	for _, v := range ConvCandidates(pednetDims(), tensor.FP32) {
		if v.Family == FamHMMAConv || v.Family == FamWinograd {
			t.Fatal("fp32 build offered tensor-core kernels")
		}
	}
}

func TestKernelNamesLookLikeTRT(t *testing.T) {
	v := Variant{Family: FamHMMAConv, TileM: 256, TileN: 64, TileK: 64, Precision: tensor.FP16, FusedAct: true, NHWC: true}
	name := v.Name(1024)
	if name != "trt_volta_h884cudnn_256x64_ldg8_relu_exp_small_nhwc_tn_v1" {
		t.Fatalf("kernel name %q", name)
	}
	if !strings.Contains(Variant{Family: FamSort}.Name(100), "RadixSort") {
		t.Fatal("sort kernel name wrong")
	}
}

func TestSizeClassBuckets(t *testing.T) {
	if SizeClass(1000) != "small" || SizeClass(10000) != "medium" ||
		SizeClass(100000) != "large" || SizeClass(1000000) != "xlarge" {
		t.Fatal("size class buckets wrong")
	}
}

func TestWeightBytesFactor(t *testing.T) {
	fp16 := Variant{Family: FamHMMAConv, Precision: tensor.FP16}
	if fp16.WeightBytesFactor() != 0.5 {
		t.Fatal("fp16 direct should store half-size weights")
	}
	wino := Variant{Family: FamWinograd, Precision: tensor.FP16}
	if wino.WeightBytesFactor() != 2.0 {
		t.Fatal("winograd should store 2x fp32-relative weights")
	}
	if (Variant{Family: FamCUDAConv, Precision: tensor.FP32}).WeightBytesFactor() != 1.0 {
		t.Fatal("fp32 factor wrong")
	}
}

func TestPlanConvBlocksAndTraffic(t *testing.T) {
	d := pednetDims()
	v := Variant{Family: FamHMMAConv, TileM: 256, TileN: 64, TileK: 64, Precision: tensor.FP16, FusedAct: true}
	ls := PlanConv(v, d)
	if ls.Blocks != 4*4 { // ceil(1024/256) * ceil(256/64)
		t.Fatalf("blocks %d want 16", ls.Blocks)
	}
	if ls.WeightBytes != int64(256*256*9*2) {
		t.Fatalf("weight bytes %d", ls.WeightBytes)
	}
	if ls.WorkingSet != int64(256+64)*64*2*2+4096 {
		t.Fatalf("working set %d", ls.WorkingSet)
	}
}

func TestWinogradTradesFLOPsForWeightTraffic(t *testing.T) {
	d := pednetDims()
	direct := PlanConv(Variant{Family: FamHMMAConv, TileM: 128, TileN: 64, TileK: 64, Precision: tensor.FP16}, d)
	wino := PlanConv(Variant{Family: FamWinograd, TileM: 128, TileN: 128, TileK: 64, Precision: tensor.FP16}, d)
	if wino.FLOPs >= direct.FLOPs {
		t.Fatal("winograd should reduce FLOPs")
	}
	if wino.WeightBytes <= direct.WeightBytes {
		t.Fatal("winograd should increase weight bytes")
	}
}

func TestTimeSecPositiveAndClockScales(t *testing.T) {
	d := pednetDims()
	ls := PlanConv(Variant{Family: FamHMMAConv, TileM: 128, TileN: 64, TileK: 64, Precision: tensor.FP16}, d)
	lo := gpusim.NewDevice(gpusim.XavierNX(), 599)
	hi := gpusim.NewDevice(gpusim.XavierNX(), 1100)
	tl, th := ls.TimeSec(lo), ls.TimeSec(hi)
	if tl <= 0 || th <= 0 {
		t.Fatal("non-positive kernel time")
	}
	if th >= tl {
		t.Fatal("higher clock should be faster for compute-bound conv")
	}
}

// The Table XI phenomenon: a 256x64 HMMA kernel (73KB working set) is
// slower on AGX than NX at comparable clocks because AGX's per-SM L2
// share is smaller.
func TestBigTileKernelSlowerOnAGX(t *testing.T) {
	// A memory-bound conv: large weights, modest FLOPs (late detection layers).
	d := ConvDims{Batch: 1, InC: 832, H: 16, W: 16, OutC: 384, OutH: 16, OutW: 16, Kernel: 3, Stride: 1, Groups: 1}
	v := Variant{Family: FamHMMAConv, TileM: 256, TileN: 64, TileK: 64, Precision: tensor.FP16, FusedAct: true}
	ls := PlanConv(v, d)
	nx := gpusim.NewDevice(gpusim.XavierNX(), 599)
	agx := gpusim.NewDevice(gpusim.XavierAGX(), 624)
	tn, ta := ls.TimeSec(nx), ls.TimeSec(agx)
	if ta <= tn*0.9 {
		t.Logf("NX %.4fms AGX %.4fms", tn*1e3, ta*1e3)
	}
	// The L2 contention factor must differ across the devices for this tile.
	if nx.L2ContentionFactor(ls.WorkingSet) >= agx.L2ContentionFactor(ls.WorkingSet) {
		t.Fatal("73KB working set should contend on AGX but not NX")
	}
}

func TestSortLatencyBoundAndSlowerOnAGX(t *testing.T) {
	ls := PlanSort(25800)
	nx := gpusim.NewDevice(gpusim.XavierNX(), 599)
	agx := gpusim.NewDevice(gpusim.XavierAGX(), 624)
	tn, ta := ls.TimeSec(nx), ls.TimeSec(agx)
	if ta <= tn {
		t.Fatalf("radix sort should be slower on AGX (device-wide sync): NX %v AGX %v", tn, ta)
	}
	if tn < 0.4e-3 || tn > 2e-3 {
		t.Errorf("sort time %.3fms out of the paper's ~1ms ballpark", tn*1e3)
	}
}

func TestPlanSimpleIsBandwidthBound(t *testing.T) {
	ls := PlanSimple(FamActivation, tensor.FP16, 1<<20, 1<<20, 1)
	d := gpusim.NewDevice(gpusim.XavierNX(), 599)
	got := ls.TimeSec(d)
	wantMin := float64(2*(1<<20)*2) / (d.DRAMBandwidth() * memEff)
	if got < wantMin {
		t.Fatalf("activation faster than memory allows: %v < %v", got, wantMin)
	}
}

// --- numeric execution ---

func randTensor(key string, n, c, h, w int) *tensor.Tensor {
	src := fixrand.NewKeyed(key)
	x := tensor.New(n, c, h, w)
	for i := range x.Data {
		x.Data[i] = float32(src.NormFloat64())
	}
	return x
}

func mustExecConv(t *testing.T, v Variant, x, w, b *tensor.Tensor, p tensor.ConvParams) *tensor.Tensor {
	t.Helper()
	y, err := ExecConv(v, x, w, b, p)
	if err != nil {
		t.Fatal(err)
	}
	return y
}

func mustExecFC(t *testing.T, v Variant, x, w, b *tensor.Tensor, out int) *tensor.Tensor {
	t.Helper()
	y, err := ExecFC(v, x, w, b, out)
	if err != nil {
		t.Fatal(err)
	}
	return y
}

func TestExecRejectsCorruptWeights(t *testing.T) {
	x := randTensor("cw-x", 1, 8, 10, 10)
	short := randTensor("cw-w", 8, 8, 3, 1) // wrong length for a 3x3 conv
	p := tensor.ConvParams{OutC: 8, Kernel: 3, Stride: 1, Pad: 1, Groups: 1}
	v := Variant{Family: FamCUDAConv, TileM: 128, TileN: 64, TileK: 32, Precision: tensor.FP32}
	if _, err := ExecConv(v, x, short, nil, p); err == nil {
		t.Fatal("ExecConv accepted mismatched weights")
	}
	if _, err := ExecConv(v, x, nil, nil, p); err == nil {
		t.Fatal("ExecConv accepted nil weights")
	}
	if _, err := ExecConv(v, x, short, nil, tensor.ConvParams{OutC: 8, Kernel: 3, Stride: 0}); err == nil {
		t.Fatal("ExecConv accepted zero stride")
	}
	if _, err := ExecFC(v, x, short, nil, 10); err == nil {
		t.Fatal("ExecFC accepted mismatched weights")
	}
	if _, err := ExecFC(v, x, nil, nil, 10); err == nil {
		t.Fatal("ExecFC accepted nil weights")
	}
}

func TestExecConvFP32MatchesReference(t *testing.T) {
	x := randTensor("ec-x", 1, 8, 10, 10)
	w := randTensor("ec-w", 8, 8, 3, 3)
	p := tensor.ConvParams{OutC: 8, Kernel: 3, Stride: 1, Pad: 1, Groups: 1}
	v := Variant{Family: FamCUDAConv, TileM: 128, TileN: 64, TileK: 32, Precision: tensor.FP32}
	got := mustExecConv(t, v, x, w, nil, p)
	want := tensor.Conv2D(x, w, nil, p)
	for i := range want.Data {
		if math.Abs(float64(got.Data[i]-want.Data[i])) > 1e-4 {
			t.Fatalf("fp32 exec diverges at %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestExecConvFusedReLU(t *testing.T) {
	x := randTensor("ecr-x", 1, 4, 6, 6)
	w := randTensor("ecr-w", 4, 4, 3, 3)
	p := tensor.ConvParams{OutC: 4, Kernel: 3, Stride: 1, Pad: 1, Groups: 1}
	v := Variant{Family: FamHMMAConv, TileM: 64, TileN: 64, TileK: 64, Precision: tensor.FP16, FusedAct: true}
	y := mustExecConv(t, v, x, w, nil, p)
	for _, val := range y.Data {
		if val < 0 {
			t.Fatal("fused relu produced negative output")
		}
	}
}

func TestDifferentVariantsDifferentOutputs(t *testing.T) {
	// Two FP16 variants with different reduction tiles round partial sums
	// at different boundaries: outputs must differ somewhere.
	x := randTensor("dv-x", 1, 64, 8, 8)
	w := randTensor("dv-w", 32, 64, 3, 3)
	p := tensor.ConvParams{OutC: 32, Kernel: 3, Stride: 1, Pad: 1, Groups: 1}
	v1 := Variant{Family: FamHMMAConv, TileM: 64, TileN: 64, TileK: 64, Precision: tensor.FP16}
	v2 := Variant{Family: FamHMMAConv, TileM: 256, TileN: 64, TileK: 256, Precision: tensor.FP16}
	y1 := mustExecConv(t, v1, x, w, nil, p)
	y2 := mustExecConv(t, v2, x, w, nil, p)
	diff := 0
	for i := range y1.Data {
		if y1.Data[i] != y2.Data[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different tile sizes produced bit-identical outputs")
	}
	// But they must agree closely (same math, different rounding): within
	// a few FP16 ulps relative.
	// Bound: per-tile rounding errors accumulate, so allow a small
	// absolute term (cancellation makes relative bounds meaningless near
	// zero) plus a few ulps relative.
	for i := range y1.Data {
		diff := math.Abs(float64(y1.Data[i] - y2.Data[i]))
		if diff > 0.1+4e-3*math.Abs(float64(y1.Data[i])) {
			t.Fatalf("variants diverge too much at %d: %v vs %v", i, y1.Data[i], y2.Data[i])
		}
	}
}

func TestSplitKChangesCombination(t *testing.T) {
	x := randTensor("sk-x", 1, 128, 4, 4)
	w := randTensor("sk-w", 16, 128, 3, 3)
	p := tensor.ConvParams{OutC: 16, Kernel: 3, Stride: 1, Pad: 1, Groups: 1}
	base := Variant{Family: FamHMMAConv, TileM: 128, TileN: 64, TileK: 64, Precision: tensor.FP16}
	split := base
	split.SplitK = 2
	y1 := mustExecConv(t, base, x, w, nil, p)
	y2 := mustExecConv(t, split, x, w, nil, p)
	diff := 0
	for i := range y1.Data {
		if y1.Data[i] != y2.Data[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("split-K produced bit-identical outputs")
	}
}

func TestExecFCMatchesReferenceFP32(t *testing.T) {
	x := randTensor("fc-x", 1, 32, 2, 2)
	w := randTensor("fc-w", 1, 10*128, 1, 1)
	v := Variant{Family: FamGEMM, TileM: 128, TileN: 64, TileK: 32, Precision: tensor.FP32}
	got := mustExecFC(t, v, x, w, nil, 10)
	want := tensor.FC(x, w, nil, 10)
	for i := range want.Data {
		if math.Abs(float64(got.Data[i]-want.Data[i])) > 1e-4 {
			t.Fatalf("fc exec diverges: %v vs %v", got.Data[i], want.Data[i])
		}
	}
}

func TestExecFCFP16CloseToReference(t *testing.T) {
	x := randTensor("fch-x", 1, 64, 2, 2)
	w := randTensor("fch-w", 1, 10*256, 1, 1)
	v := Variant{Family: FamGEMM, TileM: 64, TileN: 64, TileK: 64, Precision: tensor.FP16}
	got := mustExecFC(t, v, x, w, nil, 10)
	want := tensor.FC(x, w, nil, 10)
	for i := range want.Data {
		rel := math.Abs(float64(got.Data[i]-want.Data[i])) / (math.Abs(float64(want.Data[i])) + 1)
		if rel > 0.01 {
			t.Fatalf("fp16 fc too far off: %v vs %v", got.Data[i], want.Data[i])
		}
	}
}

// Property: kernel time decreases (or holds) as clock rises, for any
// variant in the menu.
func TestTimeMonotoneInClock(t *testing.T) {
	d := pednetDims()
	cands := ConvCandidates(d, tensor.FP16)
	if err := quick.Check(func(seed uint64) bool {
		src := fixrand.New(seed)
		v := cands[src.Intn(len(cands))]
		ls := PlanConv(v, d)
		c1 := 400 + src.Float64()*800
		c2 := c1 + 100
		d1 := gpusim.NewDevice(gpusim.XavierNX(), c1)
		d2 := gpusim.NewDevice(gpusim.XavierNX(), c2)
		return ls.TimeSec(d2) <= ls.TimeSec(d1)+1e-12
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: more FLOPs never makes the same kernel faster on the same
// device (monotone latency model).
func TestTimeMonotoneInWork(t *testing.T) {
	dev := gpusim.NewDevice(gpusim.XavierNX(), 599)
	v := Variant{Family: FamHMMAConv, TileM: 128, TileN: 64, TileK: 64, Precision: tensor.FP16}
	if err := quick.Check(func(hRaw, cRaw uint8) bool {
		h := int(hRaw%32) + 4
		c := (int(cRaw%16) + 1) * 32
		small := PlanConv(v, ConvDims{Batch: 1, InC: c, H: h, W: h, OutC: c, OutH: h, OutW: h, Kernel: 3, Stride: 1})
		big := PlanConv(v, ConvDims{Batch: 1, InC: c, H: 2 * h, W: 2 * h, OutC: c, OutH: 2 * h, OutW: 2 * h, Kernel: 3, Stride: 1})
		return big.TimeSec(dev) >= small.TimeSec(dev)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFamilyStrings(t *testing.T) {
	for fam, want := range map[Family]string{
		FamHMMAConv: "hmma-conv", FamWinograd: "winograd-conv", FamCUDAConv: "cuda-conv",
		FamDepthwise: "depthwise", FamGEMM: "gemm", FamPool: "pool", FamLRN: "lrn",
		FamActivation: "activation", FamEltwise: "eltwise", FamCopy: "copy",
		FamSoftmax: "softmax", FamSort: "sort",
	} {
		if fam.String() != want {
			t.Errorf("family %d string %q want %q", fam, fam.String(), want)
		}
	}
	if Family(200).String() != "unknown" {
		t.Fatal("unknown family string")
	}
}

func TestAllKernelNamesRender(t *testing.T) {
	for _, fam := range []Family{FamHMMAConv, FamWinograd, FamCUDAConv, FamDepthwise,
		FamGEMM, FamPool, FamLRN, FamActivation, FamEltwise, FamCopy, FamSoftmax, FamSort} {
		v := Variant{Family: fam, TileM: 128, TileN: 64, TileK: 32, Precision: tensor.FP16}
		if v.Name(1000) == "" || v.Name(1000) == "unknown_kernel" {
			t.Errorf("family %v renders no name", fam)
		}
	}
	if (Variant{Family: Family(200)}).Name(1) != "unknown_kernel" {
		t.Fatal("unknown family should render unknown_kernel")
	}
}

func TestGEMMCandidatesFP32(t *testing.T) {
	d := ConvDims{Batch: 1, InC: 9216, H: 1, W: 1, OutC: 1000, OutH: 1, OutW: 1, Kernel: 1, Stride: 1}
	cands := GEMMCandidates(d, tensor.FP32)
	if len(cands) != 1 || cands[0].Precision != tensor.FP32 {
		t.Fatalf("fp32 gemm menu %v", cands)
	}
	fp16 := GEMMCandidates(d, tensor.FP16)
	splitk := 0
	for _, v := range fp16 {
		if v.SplitK > 1 {
			splitk++
		}
	}
	if splitk == 0 {
		t.Fatal("deep FC should offer split-K")
	}
	if len(fp16) <= len(cands) {
		t.Fatal("fp16 menu should be larger")
	}
}

func TestINT8WeightFactor(t *testing.T) {
	v := Variant{Family: FamHMMAConv, Precision: tensor.INT8}
	if v.WeightBytesFactor() != 0.25 {
		t.Fatalf("int8 factor %v", v.WeightBytesFactor())
	}
}

func TestDepthwisePlanAndTime(t *testing.T) {
	d := ConvDims{Batch: 1, InC: 512, H: 20, W: 20, OutC: 512, OutH: 20, OutW: 20, Kernel: 3, Stride: 1, Groups: 512}
	v := Variant{Family: FamDepthwise, TileM: 128, TileN: 8, TileK: 16, Precision: tensor.FP16, FusedAct: true}
	ls := PlanConv(v, d)
	if ls.Blocks <= 0 {
		t.Fatal("depthwise blocks")
	}
	dev := gpusim.NewDevice(gpusim.XavierNX(), 599)
	if ls.TimeSec(dev) <= 0 {
		t.Fatal("depthwise time")
	}
	// Depthwise FLOPs are k*k per output, far below a dense conv's.
	dense := d
	dense.Groups = 1
	dls := PlanConv(Variant{Family: FamHMMAConv, TileM: 128, TileN: 64, TileK: 64, Precision: tensor.FP16}, dense)
	if ls.FLOPs >= dls.FLOPs {
		t.Fatal("depthwise should be far lighter than dense")
	}
}

func TestSplitKPlanExpandsBlocks(t *testing.T) {
	d := pednetDims()
	base := Variant{Family: FamHMMAConv, TileM: 128, TileN: 64, TileK: 64, Precision: tensor.FP16}
	split := base
	split.SplitK = 2
	if PlanConv(split, d).Blocks != 2*PlanConv(base, d).Blocks {
		t.Fatal("split-K should double the block count")
	}
}

func TestUnoptimizedConvVariant(t *testing.T) {
	v := UnoptimizedConv()
	if v.Family != FamCUDAConv || v.Precision != tensor.FP32 || v.FusedAct {
		t.Fatalf("unoptimized variant %+v", v)
	}
}
