package kernels

import "edgeinfer/internal/tensor"

// ConvCandidates enumerates the kernel variants TensorRT's tactic
// selection would consider for a convolution of the given dimensions at
// the given engine precision. The menu is the heart of the paper's
// non-determinism: several candidates are usually within measurement
// noise of each other, so the timing-based tuner's choice varies across
// builds.
func ConvCandidates(d ConvDims, prec tensor.Precision) []Variant {
	g := d.Groups
	if g == 0 {
		g = 1
	}
	if g == d.InC && g > 1 {
		// Depthwise convolutions have one specialized kernel plus the
		// generic FP32 fallback.
		return []Variant{
			{Family: FamDepthwise, TileM: 128, TileN: 8, TileK: 16, Precision: prec, FusedAct: true, NHWC: true},
			fallbackFP32(),
		}
	}
	var out []Variant
	if prec == tensor.FP16 || prec == tensor.INT8 {
		for _, t := range hmmaTiles {
			v := Variant{Family: FamHMMAConv, TileM: t[0], TileN: t[1], TileK: t[2],
				Precision: prec, FusedAct: true, NHWC: true}
			out = append(out, v)
			if d.K() > 2048 {
				// Deep reductions offer a split-K tactic: more blocks,
				// different accumulation order.
				v2 := v
				v2.SplitK = 2
				out = append(out, v2)
			}
		}
		// Winograd is offered for small-spatial 3x3 stride-1 layers,
		// where its weight-traffic cost can pay for the FLOP reduction.
		if d.Kernel == 3 && d.Stride == 1 && g == 1 && d.M() <= 8192 {
			for _, t := range [][2]int{{128, 128}, {256, 64}} {
				out = append(out, Variant{Family: FamWinograd, TileM: t[0], TileN: t[1], TileK: 64,
					Precision: tensor.FP16, FusedAct: true})
			}
		}
	}
	out = append(out, fallbackFP32())
	return out
}

// GEMMCandidates enumerates fully-connected tactics.
func GEMMCandidates(d ConvDims, prec tensor.Precision) []Variant {
	var out []Variant
	if prec == tensor.FP16 || prec == tensor.INT8 {
		for _, t := range [][3]int{{64, 64, 32}, {128, 64, 64}, {128, 128, 128}} {
			v := Variant{Family: FamGEMM, TileM: t[0], TileN: t[1], TileK: t[2],
				Precision: prec, NHWC: true}
			out = append(out, v)
			if d.K() > 4096 {
				v2 := v
				v2.SplitK = 2
				out = append(out, v2)
			}
		}
	}
	out = append(out, Variant{Family: FamGEMM, TileM: 128, TileN: 64, TileK: 32, Precision: tensor.FP32})
	return out
}

// fallbackFP32 is the generic CUDA-core convolution every layer can run.
func fallbackFP32() Variant {
	return Variant{Family: FamCUDAConv, TileM: 128, TileN: 64, TileK: 32, Precision: tensor.FP32, FusedAct: true}
}

// UnoptimizedConv is the kernel the un-optimized framework path uses: the
// generic FP32 kernel without fused activation.
func UnoptimizedConv() Variant {
	v := fallbackFP32()
	v.FusedAct = false
	return v
}
