//go:build race

package kernels

// raceEnabled reports the race detector is active; its instrumentation
// adds allocations of its own, so exact allocation counts are skipped.
const raceEnabled = true
