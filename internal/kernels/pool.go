package kernels

// Shared worker pool for numeric kernel execution. ExecConv and ExecFC
// partition their output space into contiguous row/unit ranges and fan
// the ranges across a process-wide set of persistent helper goroutines.
// Every output element is still reduced in exactly the order the variant
// dictates and every worker writes a disjoint region of the output
// tensor, so results are bit-identical to serial execution regardless of
// the worker count or how chunks land on workers.
//
// The pool is deliberately simple and allocation-light:
//
//   - helpers are persistent goroutines blocked on a channel; they are
//     spawned lazily up to Workers()-1 and live until StopWorkers
//     retires the generation (an idle helper costs one blocked
//     goroutine);
//   - the submitting goroutine always participates, so a parallelFor
//     cannot deadlock even when every helper is busy with another call
//     (the enlist send is non-blocking — busy helpers are simply not
//     used);
//   - chunks are handed out through an atomic counter, so load balances
//     without any per-chunk allocation;
//   - each participant checks out one execScratch for its whole share of
//     the work, which is what removes the per-output-element partials
//     allocation the serial implementation paid.

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// execScratch is one worker's reusable numeric workspace: the partial-sum
// accumulator the variant's tile reduction fills (previously a fresh heap
// allocation per output element) and the im2col patch buffer of the
// cached-input-patch path. Scratches are pooled, so steady-state kernel
// execution performs no heap allocation in the inner loops.
type execScratch struct {
	partials []float32
	patch    []float32
}

// tiles returns the partials buffer with capacity for n tile sums.
func (s *execScratch) tiles(n int) []float32 {
	if cap(s.partials) < n {
		s.partials = make([]float32, 0, n)
	}
	return s.partials[:0]
}

// patchBuf returns the patch buffer resized to n elements.
func (s *execScratch) patchBuf(n int) []float32 {
	if cap(s.patch) < n {
		s.patch = make([]float32, n)
	}
	return s.patch[:n]
}

var scratchPool = sync.Pool{New: func() any { return new(execScratch) }}

// chunkBody is one parallelizable kernel execution: chunk processes the
// contiguous range [lo,hi) of its work units with a private scratch.
// It is an interface (implemented by pooled exec descriptors) rather
// than a closure so dispatching a kernel allocates nothing.
type chunkBody interface {
	chunk(s *execScratch, lo, hi int)
}

// chunkSet is one parallelFor invocation: [0,n) split into grain-sized
// chunks handed out through an atomic cursor. Sets are pooled; a set is
// only recycled after wg.Wait proves every participant is done with it.
type chunkSet struct {
	next  atomic.Int64
	n     int
	grain int
	body  chunkBody
	wg    sync.WaitGroup
}

var chunkSetPool = sync.Pool{New: func() any { return new(chunkSet) }}

// run processes chunks until the set is exhausted. Each participant
// (caller or helper) runs with its own scratch.
func (cs *chunkSet) run() {
	s := scratchPool.Get().(*execScratch)
	for {
		hi := int(cs.next.Add(int64(cs.grain)))
		lo := hi - cs.grain
		if lo >= cs.n {
			break
		}
		if hi > cs.n {
			hi = cs.n
		}
		cs.body.chunk(s, lo, hi)
	}
	scratchPool.Put(s)
}

// workerPool is the process-wide helper set. Helpers of one generation
// share a quit channel and a WaitGroup; StopWorkers closes the channel
// to retire them all and waits on the group, so the pool's goroutines
// always have a reachable stop path (enforced statically by goleak).
type workerPool struct {
	mu      sync.Mutex
	width   int // participants per parallelFor (caller + helpers)
	helpers int // live helper goroutines (high-water mark of width-1)
	tasks   chan *chunkSet
	quit    chan struct{}   // closed to retire the current helper generation
	hwg     *sync.WaitGroup // counts the current generation's live helpers
}

var pool = newWorkerPool(runtime.GOMAXPROCS(0))

func newWorkerPool(width int) *workerPool {
	p := &workerPool{
		tasks: make(chan *chunkSet),
		quit:  make(chan struct{}),
		hwg:   new(sync.WaitGroup),
	}
	p.setWidth(width)
	return p
}

func (p *workerPool) setWidth(n int) int {
	if n < 1 {
		n = 1
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	prev := p.width
	p.width = n
	for p.helpers < n-1 {
		p.helpers++
		p.hwg.Add(1)
		go p.helper(p.quit, p.hwg)
	}
	return prev
}

func (p *workerPool) helper(quit chan struct{}, hwg *sync.WaitGroup) {
	defer hwg.Done()
	for {
		select {
		case cs := <-p.tasks:
			cs.run()
			cs.wg.Done()
		case <-quit:
			return
		}
	}
}

// stop retires the current helper generation: swap in fresh lifecycle
// state under the lock, then signal and wait outside it (waiting under
// the mutex would hold it across a blocking operation — the exact
// pattern lockorder forbids).
func (p *workerPool) stop() {
	p.mu.Lock()
	if p.helpers == 0 {
		p.mu.Unlock()
		return
	}
	quit, hwg := p.quit, p.hwg
	p.helpers = 0
	p.quit = make(chan struct{})
	p.hwg = new(sync.WaitGroup)
	p.mu.Unlock()
	close(quit)
	hwg.Wait()
}

// Workers returns the degree of parallelism kernel execution uses.
func Workers() int {
	pool.mu.Lock()
	defer pool.mu.Unlock()
	return pool.width
}

// SetWorkers sets the degree of parallelism for kernel execution (minimum
// 1 — the calling goroutine always works) and returns the previous value.
// Helpers beyond the high-water mark are spawned on demand; shrinking
// only narrows future parallelFor calls, it does not tear helpers down
// (use StopWorkers for that).
func SetWorkers(n int) int {
	return pool.setWidth(n)
}

// StopWorkers retires every helper goroutine and blocks until they have
// exited. Kernel execution stays correct afterwards — parallelFor falls
// back to the calling goroutine when no helper answers — but runs
// serially until a SetWorkers call respawns the fleet. Intended for
// drain/shutdown paths and leak-checking tests.
func StopWorkers() {
	pool.stop()
}

// parallelFor runs body over [0,n) in grain-sized chunks across the pool.
// body.chunk receives a private scratch and a contiguous [lo,hi) range;
// it must only write output regions derived from that range. Serial
// fallback (one participant, or a single chunk) runs inline on the
// caller. Steady state allocates nothing: the chunk descriptor is pooled
// and bodies are pooled exec structs.
func parallelFor(n, grain int, body chunkBody) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	width := Workers()
	chunks := (n + grain - 1) / grain
	if width <= 1 || chunks <= 1 {
		s := scratchPool.Get().(*execScratch)
		body.chunk(s, 0, n)
		scratchPool.Put(s)
		return
	}
	cs := chunkSetPool.Get().(*chunkSet)
	cs.next.Store(0)
	cs.n, cs.grain, cs.body = n, grain, body
	helpers := width - 1
	if helpers > chunks-1 {
		helpers = chunks - 1
	}
enlist:
	for i := 0; i < helpers; i++ {
		cs.wg.Add(1)
		select {
		case pool.tasks <- cs:
		default:
			// Every helper is busy with another kernel call: the caller
			// does the remaining work itself.
			cs.wg.Done()
			break enlist
		}
	}
	cs.run()
	cs.wg.Wait()
	cs.body = nil // drop the tensor-holding descriptor before pooling
	chunkSetPool.Put(cs)
}
