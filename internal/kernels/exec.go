package kernels

import (
	"fmt"
	"sync"

	"edgeinfer/internal/tensor"
)

// Numeric execution of conv/FC variants. Each variant accumulates in a
// different order and rounds partial sums to its precision at its own
// tile boundaries, exactly as real kernels with different tile shapes and
// reduction splits do. Two engines that picked different variants for the
// same layer therefore produce (slightly) different outputs on the same
// input — the mechanism behind the paper's Tables V and VI.
//
// Execution is parallel and allocation-free in the steady state: the
// output space is partitioned into contiguous row/unit ranges across the
// shared worker pool (pool.go), workers write disjoint output regions,
// and every output element's reduction runs in exactly the serial order —
// tile partials in ascending channel order through dotTile/reduceEdge,
// folded by Variant.combine — so outputs are bit-identical to serial
// execution for every variant, worker count and chunk placement.

// roundTo rounds a partial sum to the variant's compute precision.
func (v Variant) roundTo(x float32) float32 {
	if v.Precision == tensor.FP16 || v.Precision == tensor.INT8 {
		// INT8 kernels accumulate in FP16-equivalent precision here; the
		// weight quantization itself is applied by the builder.
		return tensor.RoundFP16(x)
	}
	return x
}

// tileChannels converts the reduction tile (in GEMM-K units) to input
// channels for a kxk convolution.
func (v Variant) tileChannels(kernel int) int {
	tc := v.TileK / (kernel * kernel)
	if tc < 1 {
		tc = 1
	}
	return tc
}

// chunkMACs sizes a parallel work chunk: one chunk is roughly this many
// multiply-accumulates, so small layers run inline (a single chunk) and
// large layers split finely enough to balance across workers.
const chunkMACs = 16384

// grainFor converts per-unit work into a chunk grain of ~chunkMACs.
func grainFor(unitMACs int) int {
	if unitMACs >= chunkMACs || unitMACs <= 0 {
		return 1
	}
	return (chunkMACs + unitMACs - 1) / unitMACs
}

// validateConv checks conv inputs the way a hardened runtime must:
// mismatched weights or degenerate parameters — the signature of a
// corrupted engine plan — return an error rather than crashing.
func validateConv(x, w, b *tensor.Tensor, p tensor.ConvParams) (oh, ow, groups, icg int, err error) {
	if x == nil || w == nil {
		return 0, 0, 0, 0, fmt.Errorf("kernels: conv with nil input or weights")
	}
	if p.Kernel < 1 || p.Stride < 1 || p.Pad < 0 || p.OutC < 1 {
		return 0, 0, 0, 0, fmt.Errorf("kernels: conv params k=%d s=%d p=%d outC=%d invalid", p.Kernel, p.Stride, p.Pad, p.OutC)
	}
	groups = p.Groups
	if groups <= 0 {
		groups = 1
	}
	if x.C%groups != 0 || p.OutC%groups != 0 {
		return 0, 0, 0, 0, fmt.Errorf("kernels: conv groups %d do not divide channels in=%d out=%d", groups, x.C, p.OutC)
	}
	icg = x.C / groups
	if want := p.OutC * icg * p.Kernel * p.Kernel; w.Len() != want {
		return 0, 0, 0, 0, fmt.Errorf("kernels: conv weight len %d, want %d", w.Len(), want)
	}
	if b != nil && b.Len() < p.OutC {
		return 0, 0, 0, 0, fmt.Errorf("kernels: conv bias len %d, want %d", b.Len(), p.OutC)
	}
	oh = tensor.ConvOutDim(x.H, p.Kernel, p.Stride, p.Pad)
	ow = tensor.ConvOutDim(x.W, p.Kernel, p.Stride, p.Pad)
	if oh < 1 || ow < 1 {
		return 0, 0, 0, 0, fmt.Errorf("kernels: conv output %dx%d not positive", oh, ow)
	}
	return oh, ow, groups, icg, nil
}

// ExecConv runs a convolution with variant-specific accumulation. The
// weight tensor layout matches tensor.Conv2D. Mismatched weights or
// degenerate parameters — the signature of a corrupted engine plan —
// return an error rather than crashing the process.
func ExecConv(v Variant, x, w, b *tensor.Tensor, p tensor.ConvParams) (*tensor.Tensor, error) {
	oh, ow, groups, icg, err := validateConv(x, w, b, p)
	if err != nil {
		return nil, err
	}
	y := tensor.New(x.N, p.OutC, oh, ow)
	execConv(v, x, w, b, p, y, oh, ow, groups, icg)
	return y, nil
}

// ExecConvInto is ExecConv writing into a caller-provided output tensor
// (every element is overwritten), so activation buffers can be reused
// across inferences instead of churning the allocator. y must have shape
// [x.N, p.OutC, oh, ow].
//
//rt:hotpath
func ExecConvInto(v Variant, x, w, b *tensor.Tensor, p tensor.ConvParams, y *tensor.Tensor) error {
	oh, ow, groups, icg, err := validateConv(x, w, b, p)
	if err != nil {
		return err
	}
	if y == nil || y.N != x.N || y.C != p.OutC || y.H != oh || y.W != ow {
		return fmt.Errorf("kernels: conv output buffer %v, want [%d %d %d %d]", y, x.N, p.OutC, oh, ow)
	}
	execConv(v, x, w, b, p, y, oh, ow, groups, icg)
	return nil
}

// convExec carries the validated geometry of one conv execution.
type convExec struct {
	v       Variant
	x, w, b *tensor.Tensor
	p       tensor.ConvParams
	y       *tensor.Tensor
	oh, ow  int
	groups  int
	icg     int // input channels per group
	ocg     int // output channels per group
	kk      int // Kernel*Kernel
	tileC   int // reduction-tile width in input channels
}

var convExecPool = sync.Pool{New: func() any { return new(convExec) }}

// execConv partitions the output by (batch, output row) across the
// worker pool. Each row task computes every output channel of that row,
// so the im2col patch gathered for one output pixel is reused across all
// channels of its group. The descriptor is pooled: dispatching a conv
// allocates nothing in the steady state.
func execConv(v Variant, x, w, b *tensor.Tensor, p tensor.ConvParams, y *tensor.Tensor, oh, ow, groups, icg int) {
	c := convExecPool.Get().(*convExec)
	*c = convExec{
		v: v, x: x, w: w, b: b, p: p, y: y,
		oh: oh, ow: ow, groups: groups, icg: icg,
		ocg: p.OutC / groups, kk: p.Kernel * p.Kernel,
		tileC: v.tileChannels(p.Kernel),
	}
	rows := x.N * oh
	rowMACs := ow * p.OutC * icg * c.kk
	parallelFor(rows, grainFor(rowMACs), c)
	*c = convExec{} // drop tensor references before pooling
	convExecPool.Put(c)
}

// chunk implements chunkBody over (batch, output row) units. Annotated
// directly because hotalloc does not traverse the chunkBody interface
// dispatch inside parallelFor.
//
//rt:hotpath
func (c *convExec) chunk(s *execScratch, lo, hi int) {
	for r := lo; r < hi; r++ {
		c.row(s, r/c.oh, r%c.oh)
	}
}

// row computes one output row (n, i, all channels, all columns).
func (c *convExec) row(s *execScratch, n, i int) {
	k, stride, pad := c.p.Kernel, c.p.Stride, c.p.Pad
	ih0 := i*stride - pad
	khLo, khHi := 0, k
	if ih0 < 0 {
		khLo = -ih0
	}
	if ih0+k > c.x.H {
		khHi = c.x.H - ih0
	}
	for j := 0; j < c.ow; j++ {
		iw0 := j*stride - pad
		kwLo, kwHi := 0, k
		if iw0 < 0 {
			kwLo = -iw0
		}
		if iw0+k > c.x.W {
			kwHi = c.x.W - iw0
		}
		interior := khLo == 0 && khHi == k && kwLo == 0 && kwHi == k
		for g := 0; g < c.groups; g++ {
			oc0 := g * c.ocg
			if interior && c.ocg > 1 {
				// Implicit-GEMM path: gather the input patch once and
				// reuse it for every output channel of the group. The
				// patch is laid out exactly in reduction order (channel,
				// kh, kw), matching the weight layout, so each tile's dot
				// product accumulates in the serial order.
				patch := c.gather(s, n, g, ih0, iw0)
				for oc := oc0; oc < oc0+c.ocg; oc++ {
					wrow := c.w.Data[oc*c.icg*c.kk : (oc+1)*c.icg*c.kk]
					c.store(n, oc, i, j, c.v.reducePatch(s, patch, wrow, c.tileC, c.kk, c.icg))
				}
			} else {
				for oc := oc0; oc < oc0+c.ocg; oc++ {
					c.store(n, oc, i, j, c.reduceEdge(s, n, oc, g, ih0, iw0, khLo, khHi, kwLo, kwHi))
				}
			}
		}
	}
}

// store applies bias, the variant's epilogue rounding and the fused
// activation, then writes the element. Workers write disjoint rows, so
// no synchronization is needed.
func (c *convExec) store(n, oc, i, j int, val float32) {
	var bias float32
	if c.b != nil {
		bias = c.b.Data[oc]
	}
	val = c.v.roundTo(val + bias)
	if c.v.FusedAct && val < 0 {
		val = 0
	}
	c.y.Data[((n*c.y.C+oc)*c.oh+i)*c.ow+j] = val
}

// gather copies the full kxk input window of group g at (ih0, iw0) into
// the scratch patch buffer, in (channel, kh, kw) order. Only called for
// interior pixels, where the whole window is in bounds.
func (c *convExec) gather(s *execScratch, n, g, ih0, iw0 int) []float32 {
	k := c.p.Kernel
	patch := s.patchBuf(c.icg * c.kk)
	pi := 0
	for cc := 0; cc < c.icg; cc++ {
		ic := g*c.icg + cc
		off := ((n*c.x.C+ic)*c.x.H+ih0)*c.x.W + iw0
		for kh := 0; kh < k; kh++ {
			copy(patch[pi:pi+k], c.x.Data[off:off+k])
			pi += k
			off += c.x.W
		}
	}
	return patch
}

// reducePatch accumulates one output element from a gathered patch:
// channel tiles of tileC, each tile's partial rounded by dotTile, folded
// by combine — the exact serial reduction order.
func (v Variant) reducePatch(s *execScratch, patch, wrow []float32, tileC, kk, icg int) float32 {
	partials := s.tiles((icg + tileC - 1) / tileC)
	for c0 := 0; c0 < icg; c0 += tileC {
		c1 := c0 + tileC
		if c1 > icg {
			c1 = icg
		}
		partials = append(partials, v.dotTile(patch[c0*kk:c1*kk], wrow[c0*kk:c1*kk]))
	}
	s.partials = partials
	return v.combine(partials)
}

// dotTile computes one reduction tile's partial sum and rounds it to the
// variant precision. Every multiply-accumulate of the patch path flows
// through here, in ascending index order with w*x operand order — the
// same sequence the per-element serial loop produced.
func (v Variant) dotTile(x, w []float32) float32 {
	var acc float32
	for i, xv := range x {
		acc += w[i] * xv
	}
	return v.roundTo(acc)
}

// reduceEdge accumulates one output element the general way, iterating
// only the in-bounds kernel taps (identical to the serial loop, which
// skipped out-of-bounds taps). Row slices hoist the index arithmetic out
// of the inner loop.
func (c *convExec) reduceEdge(s *execScratch, n, oc, g, ih0, iw0, khLo, khHi, kwLo, kwHi int) float32 {
	k := c.p.Kernel
	partials := s.tiles((c.icg + c.tileC - 1) / c.tileC)
	for c0 := 0; c0 < c.icg; c0 += c.tileC {
		c1 := c0 + c.tileC
		if c1 > c.icg {
			c1 = c.icg
		}
		var acc float32
		for cc := c0; cc < c1; cc++ {
			ic := g*c.icg + cc
			wbase := (oc*c.icg + cc) * c.kk
			for kh := khLo; kh < khHi; kh++ {
				xoff := ((n*c.x.C+ic)*c.x.H+ih0+kh)*c.x.W + iw0
				woff := wbase + kh*k
				xrow := c.x.Data[xoff+kwLo : xoff+kwHi]
				wrow := c.w.Data[woff+kwLo : woff+kwHi]
				for t, xv := range xrow {
					acc += wrow[t] * xv
				}
			}
		}
		partials = append(partials, c.v.roundTo(acc))
	}
	s.partials = partials
	return c.v.combine(partials)
}

// combine folds tile partials into the final sum in the variant's order.
func (v Variant) combine(partials []float32) float32 {
	if len(partials) == 0 {
		return 0
	}
	if v.SplitK > 1 && len(partials) > 1 {
		// Split-K: independent accumulators per half, combined at the end.
		mid := len(partials) / 2
		var lo, hi float32
		for _, p := range partials[:mid] {
			lo = v.roundTo(lo + p)
		}
		for _, p := range partials[mid:] {
			hi = v.roundTo(hi + p)
		}
		return v.roundTo(lo + hi)
	}
	var acc float32
	for _, p := range partials {
		acc = v.roundTo(acc + p)
	}
	return acc
}

// validateFC checks FC inputs; see validateConv.
func validateFC(x, w, b *tensor.Tensor, out int) (in int, err error) {
	if x == nil || w == nil {
		return 0, fmt.Errorf("kernels: fc with nil input or weights")
	}
	if out < 1 {
		return 0, fmt.Errorf("kernels: fc with out=%d", out)
	}
	in = x.C * x.H * x.W
	if w.Len() != out*in {
		return 0, fmt.Errorf("kernels: fc weight len %d, want %d", w.Len(), out*in)
	}
	if b != nil && b.Len() < out {
		return 0, fmt.Errorf("kernels: fc bias len %d, want %d", b.Len(), out)
	}
	return in, nil
}

// ExecFC runs a fully-connected layer with variant-specific accumulation.
// Like ExecConv, malformed weights return an error instead of panicking.
func ExecFC(v Variant, x, w, b *tensor.Tensor, out int) (*tensor.Tensor, error) {
	in, err := validateFC(x, w, b, out)
	if err != nil {
		return nil, err
	}
	y := tensor.New(x.N, out, 1, 1)
	execFC(v, x, w, b, out, in, y)
	return y, nil
}

// ExecFCInto is ExecFC writing into a caller-provided [x.N, out, 1, 1]
// output tensor; every element is overwritten.
//
//rt:hotpath
func ExecFCInto(v Variant, x, w, b *tensor.Tensor, out int, y *tensor.Tensor) error {
	in, err := validateFC(x, w, b, out)
	if err != nil {
		return err
	}
	if y == nil || y.N != x.N || y.C != out || y.H != 1 || y.W != 1 {
		return fmt.Errorf("kernels: fc output buffer %v, want [%d %d 1 1]", y, x.N, out)
	}
	execFC(v, x, w, b, out, in, y)
	return nil
}

// fcExec carries the validated geometry of one FC execution.
type fcExec struct {
	v           Variant
	x, w, b     *tensor.Tensor
	y           *tensor.Tensor
	out, in     int
	tile, tiles int
}

var fcExecPool = sync.Pool{New: func() any { return new(fcExec) }}

// execFC partitions the output by (batch, output unit) across the worker
// pool; each unit's reduction tiles accumulate through dotTile in the
// serial order. Like execConv, the descriptor is pooled.
func execFC(v Variant, x, w, b *tensor.Tensor, out, in int, y *tensor.Tensor) {
	tile := v.TileK
	if tile < 1 {
		tile = in
	}
	f := fcExecPool.Get().(*fcExec)
	*f = fcExec{
		v: v, x: x, w: w, b: b, y: y,
		out: out, in: in, tile: tile, tiles: (in + tile - 1) / tile,
	}
	parallelFor(x.N*out, grainFor(in), f)
	*f = fcExec{}
	fcExecPool.Put(f)
}

// chunk implements chunkBody over (batch, output unit) units. Annotated
// directly, like (*convExec).chunk, to cover the interface dispatch.
//
//rt:hotpath
func (f *fcExec) chunk(s *execScratch, lo, hi int) {
	for u := lo; u < hi; u++ {
		n, o := u/f.out, u%f.out
		xrow := f.x.Data[n*f.in : (n+1)*f.in]
		wrow := f.w.Data[o*f.in : (o+1)*f.in]
		partials := s.tiles(f.tiles)
		for k0 := 0; k0 < f.in; k0 += f.tile {
			k1 := k0 + f.tile
			if k1 > f.in {
				k1 = f.in
			}
			partials = append(partials, f.v.dotTile(xrow[k0:k1], wrow[k0:k1]))
		}
		s.partials = partials
		val := f.v.combine(partials)
		if f.b != nil {
			val = f.v.roundTo(val + f.b.Data[o])
		}
		if f.v.FusedAct && val < 0 {
			val = 0
		}
		f.y.Data[n*f.out+o] = val
	}
}
