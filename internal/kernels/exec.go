package kernels

import (
	"fmt"

	"edgeinfer/internal/tensor"
)

// Numeric execution of conv/FC variants. Each variant accumulates in a
// different order and rounds partial sums to its precision at its own
// tile boundaries, exactly as real kernels with different tile shapes and
// reduction splits do. Two engines that picked different variants for the
// same layer therefore produce (slightly) different outputs on the same
// input — the mechanism behind the paper's Tables V and VI.

// roundTo rounds a partial sum to the variant's compute precision.
func (v Variant) roundTo(x float32) float32 {
	if v.Precision == tensor.FP16 || v.Precision == tensor.INT8 {
		// INT8 kernels accumulate in FP16-equivalent precision here; the
		// weight quantization itself is applied by the builder.
		return tensor.RoundFP16(x)
	}
	return x
}

// tileChannels converts the reduction tile (in GEMM-K units) to input
// channels for a kxk convolution.
func (v Variant) tileChannels(kernel int) int {
	tc := v.TileK / (kernel * kernel)
	if tc < 1 {
		tc = 1
	}
	return tc
}

// ExecConv runs a convolution with variant-specific accumulation. The
// weight tensor layout matches tensor.Conv2D. Mismatched weights or
// degenerate parameters — the signature of a corrupted engine plan —
// return an error rather than crashing the process.
func ExecConv(v Variant, x, w, b *tensor.Tensor, p tensor.ConvParams) (*tensor.Tensor, error) {
	if x == nil || w == nil {
		return nil, fmt.Errorf("kernels: conv with nil input or weights")
	}
	if p.Kernel < 1 || p.Stride < 1 || p.Pad < 0 || p.OutC < 1 {
		return nil, fmt.Errorf("kernels: conv params k=%d s=%d p=%d outC=%d invalid", p.Kernel, p.Stride, p.Pad, p.OutC)
	}
	groups := p.Groups
	if groups <= 0 {
		groups = 1
	}
	if x.C%groups != 0 || p.OutC%groups != 0 {
		return nil, fmt.Errorf("kernels: conv groups %d do not divide channels in=%d out=%d", groups, x.C, p.OutC)
	}
	icg := x.C / groups
	ocg := p.OutC / groups
	if want := p.OutC * icg * p.Kernel * p.Kernel; w.Len() != want {
		return nil, fmt.Errorf("kernels: conv weight len %d, want %d", w.Len(), want)
	}
	if b != nil && b.Len() < p.OutC {
		return nil, fmt.Errorf("kernels: conv bias len %d, want %d", b.Len(), p.OutC)
	}
	oh := tensor.ConvOutDim(x.H, p.Kernel, p.Stride, p.Pad)
	ow := tensor.ConvOutDim(x.W, p.Kernel, p.Stride, p.Pad)
	if oh < 1 || ow < 1 {
		return nil, fmt.Errorf("kernels: conv output %dx%d not positive", oh, ow)
	}
	y := tensor.New(x.N, p.OutC, oh, ow)
	tileC := v.tileChannels(p.Kernel)

	for n := 0; n < x.N; n++ {
		for oc := 0; oc < p.OutC; oc++ {
			g := oc / ocg
			var bias float32
			if b != nil {
				bias = b.Data[oc]
			}
			for i := 0; i < oh; i++ {
				for j := 0; j < ow; j++ {
					val := v.reduceConv(x, w, n, oc, g, icg, i, j, p, tileC)
					val = v.roundTo(val + bias)
					if v.FusedAct && val < 0 {
						val = 0
					}
					y.Set(n, oc, i, j, val)
				}
			}
		}
	}
	return y, nil
}

// reduceConv accumulates one output element. Channels are processed in
// tiles of tileC; each tile's partial sum is rounded to the variant
// precision; partials combine sequentially (SplitK<=1) or pairwise by
// halves (SplitK>1), mirroring split-K kernels' separate accumulators.
func (v Variant) reduceConv(x, w *tensor.Tensor, n, oc, g, icg, i, j int, p tensor.ConvParams, tileC int) float32 {
	var partials []float32
	for c0 := 0; c0 < icg; c0 += tileC {
		c1 := c0 + tileC
		if c1 > icg {
			c1 = icg
		}
		var acc float32
		for c := c0; c < c1; c++ {
			ic := g*icg + c
			for kh := 0; kh < p.Kernel; kh++ {
				ih := i*p.Stride + kh - p.Pad
				if ih < 0 || ih >= x.H {
					continue
				}
				for kw := 0; kw < p.Kernel; kw++ {
					iw := j*p.Stride + kw - p.Pad
					if iw < 0 || iw >= x.W {
						continue
					}
					wv := w.Data[((oc*icg+c)*p.Kernel+kh)*p.Kernel+kw]
					acc += wv * x.At(n, ic, ih, iw)
				}
			}
		}
		partials = append(partials, v.roundTo(acc))
	}
	return v.combine(partials)
}

// combine folds tile partials into the final sum in the variant's order.
func (v Variant) combine(partials []float32) float32 {
	if len(partials) == 0 {
		return 0
	}
	if v.SplitK > 1 && len(partials) > 1 {
		// Split-K: independent accumulators per half, combined at the end.
		mid := len(partials) / 2
		var lo, hi float32
		for _, p := range partials[:mid] {
			lo = v.roundTo(lo + p)
		}
		for _, p := range partials[mid:] {
			hi = v.roundTo(hi + p)
		}
		return v.roundTo(lo + hi)
	}
	var acc float32
	for _, p := range partials {
		acc = v.roundTo(acc + p)
	}
	return acc
}

// ExecFC runs a fully-connected layer with variant-specific accumulation.
// Like ExecConv, malformed weights return an error instead of panicking.
func ExecFC(v Variant, x, w, b *tensor.Tensor, out int) (*tensor.Tensor, error) {
	if x == nil || w == nil {
		return nil, fmt.Errorf("kernels: fc with nil input or weights")
	}
	if out < 1 {
		return nil, fmt.Errorf("kernels: fc with out=%d", out)
	}
	in := x.C * x.H * x.W
	if w.Len() != out*in {
		return nil, fmt.Errorf("kernels: fc weight len %d, want %d", w.Len(), out*in)
	}
	if b != nil && b.Len() < out {
		return nil, fmt.Errorf("kernels: fc bias len %d, want %d", b.Len(), out)
	}
	tile := v.TileK
	if tile < 1 {
		tile = in
	}
	y := tensor.New(x.N, out, 1, 1)
	for n := 0; n < x.N; n++ {
		xoff := n * in
		for o := 0; o < out; o++ {
			woff := o * in
			var partials []float32
			for k0 := 0; k0 < in; k0 += tile {
				k1 := k0 + tile
				if k1 > in {
					k1 = in
				}
				var acc float32
				for k := k0; k < k1; k++ {
					acc += w.Data[woff+k] * x.Data[xoff+k]
				}
				partials = append(partials, v.roundTo(acc))
			}
			val := v.combine(partials)
			if b != nil {
				val = v.roundTo(val + b.Data[o])
			}
			if v.FusedAct && val < 0 {
				val = 0
			}
			y.Set(n, o, 0, 0, val)
		}
	}
	return y, nil
}
