package kernels

import (
	"edgeinfer/internal/gpusim"
	"edgeinfer/internal/tensor"
)

// ConvDims carries the implicit-GEMM view of a convolution (or FC, with
// Kernel=1 and OutH=OutW=1) that kernel planning needs.
type ConvDims struct {
	Batch, InC, H, W       int
	OutC, OutH, OutW       int
	Kernel, Stride, Groups int
}

// M is the implicit-GEMM row count (output pixels).
func (d ConvDims) M() int { return d.Batch * d.OutH * d.OutW }

// N is the implicit-GEMM column count (output channels).
func (d ConvDims) N() int { return d.OutC }

// K is the reduction depth (input patch size).
func (d ConvDims) K() int {
	g := d.Groups
	if g == 0 {
		g = 1
	}
	return (d.InC / g) * d.Kernel * d.Kernel
}

// FLOPs is the multiply-add work of the convolution (2 ops per MAC).
func (d ConvDims) FLOPs() int64 {
	return 2 * int64(d.M()) * int64(d.N()) * int64(d.K())
}

// WeightParams is the number of weight scalars.
func (d ConvDims) WeightParams() int64 {
	g := d.Groups
	if g == 0 {
		g = 1
	}
	return int64(d.OutC) * int64(d.InC/g) * int64(d.Kernel) * int64(d.Kernel)
}

// LaunchSpec is a priced kernel launch: a variant bound to concrete layer
// dimensions, with everything the device model needs to time it.
type LaunchSpec struct {
	V           Variant
	Symbol      string // rendered kernel name
	Blocks      int
	FLOPs       int64
	MemBytes    int64 // DRAM traffic per launch
	WeightBytes int64 // engine-resident weight size for this layer
	WorkingSet  int64 // per-SM cache working set (drives L2 contention)
	Elems       int64 // output elements (for latency-bound kernels)
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// PlanConv binds a conv/GEMM variant to layer dimensions.
func PlanConv(v Variant, d ConvDims) LaunchSpec {
	m, n := d.M(), d.N()
	elemBytes := int64(v.Precision.Bytes())
	weightBytes := int64(float64(d.WeightParams()*4) * v.WeightBytesFactor())
	inBytes := int64(d.Batch*d.InC*d.H*d.W) * elemBytes
	outBytes := int64(d.Batch*d.OutC*d.OutH*d.OutW) * elemBytes

	flops := d.FLOPs()
	// Per-SM L2 working set: double-buffered input and weight tiles (the
	// output tile lives in registers) plus scheduler state.
	ws := int64(v.TileM+v.TileN)*int64(v.TileK)*elemBytes*2 + 4096
	blocks := ceilDiv(m, v.TileM) * ceilDiv(n, v.TileN)
	switch v.Family {
	case FamWinograd:
		// F(4x4,3x3): 2.25x fewer multiplies, 4x transformed weights.
		flops = int64(float64(flops) / 2.25)
		ws = ws * 2
	case FamDepthwise:
		// One block per channel slab; reduction is tiny (k*k).
		blocks = ceilDiv(d.OutC, 8) * ceilDiv(d.OutH*d.OutW, 256)
		ws = 32 * 1024
	}
	if v.SplitK > 1 {
		blocks *= v.SplitK
	}
	return LaunchSpec{
		V:           v,
		Symbol:      v.Name(m),
		Blocks:      blocks,
		FLOPs:       flops,
		MemBytes:    weightBytes + inBytes + outBytes,
		WeightBytes: weightBytes,
		WorkingSet:  ws,
		Elems:       int64(m) * int64(n),
	}
}

// PlanSimple builds a launch for the non-GEMM families (pooling,
// activation, eltwise, copy, LRN, softmax): bandwidth-dominated kernels
// over inElems inputs and outElems outputs at the given precision.
func PlanSimple(fam Family, prec tensor.Precision, inElems, outElems, flopsPerElem int64) LaunchSpec {
	v := Variant{Family: fam, Precision: prec, TileM: 128, TileN: 1, TileK: 1}
	eb := int64(prec.Bytes())
	return LaunchSpec{
		V:          v,
		Symbol:     v.Name(int(outElems)),
		Blocks:     ceilDiv(int(outElems), 4096),
		FLOPs:      outElems * flopsPerElem,
		MemBytes:   inElems*eb + outElems*eb,
		WorkingSet: 16 * 1024,
		Elems:      outElems,
	}
}

// PlanSort builds the cub segmented radix-sort launch pair used by the
// detection models' output stage (box ranking before NMS).
func PlanSort(boxes int64) LaunchSpec {
	v := Variant{Family: FamSort, Precision: tensor.FP32}
	return LaunchSpec{
		V:          v,
		Symbol:     v.Name(int(boxes)),
		Blocks:     ceilDiv(int(boxes), 2048),
		FLOPs:      boxes * 8,
		MemBytes:   boxes * 8 * 6, // 6 radix passes over key+value
		WorkingSet: 48 * 1024,
		Elems:      boxes,
	}
}

// famEff is the achievable fraction of the relevant peak rate per family.
func famEff(f Family) float64 {
	switch f {
	case FamHMMAConv:
		return 0.50
	case FamWinograd:
		return 0.55
	case FamGEMM:
		return 0.35
	case FamCUDAConv:
		return 0.30
	case FamDepthwise:
		return 0.25
	default:
		return 0.20 // scalar elementwise work on CUDA cores
	}
}

// tileEff is the efficiency multiplier of the tile shape: larger tiles
// amortize scheduling and expose more ILP, which is why the library
// offers them at all — the price is the larger L2 working set that the
// contention model charges.
func tileEff(v Variant) float64 {
	switch v.Family {
	case FamHMMAConv, FamWinograd, FamCUDAConv, FamGEMM:
		area := v.TileM * v.TileN
		switch {
		case area <= 64*64:
			return 0.78
		case area <= 128*64:
			return 0.90
		case area <= 128*128:
			return 1.00
		default:
			return 1.06
		}
	default:
		return 1
	}
}

// usesTensorCores reports whether the family issues HMMA instructions.
func usesTensorCores(f Family) bool {
	switch f {
	case FamHMMAConv, FamWinograd, FamGEMM:
		return true
	default:
		return false
	}
}

// memEff is the achievable fraction of DRAM bandwidth for streaming
// kernels.
const memEff = 0.75

// int8Speedup is the tensor-core INT8 rate relative to FP16 on Xavier's
// Volta (IMMA issues at roughly 1.8x the HMMA FP16 rate in practice).
const int8Speedup = 1.8

// TimeSec prices the launch on a device: the roofline of tile-padded
// compute vs. L2-contended memory traffic, divided by wave efficiency,
// with radix sort priced per latency-bound pass. Host-side launch
// overhead is accounted separately by the engine runtime.
func (ls LaunchSpec) TimeSec(dev *gpusim.Device) float64 {
	if ls.V.Family == FamSort {
		// 6 radix passes, each a device-wide sync whose cost grows with
		// the number of SMs to quiesce; the payload itself is tiny.
		perPass := 2.0e-5 * float64(dev.Spec.SMs)
		stream := float64(ls.MemBytes) / (dev.DRAMBandwidth() * memEff)
		return 6*perPass + stream
	}
	util := ls.tileUtilization()
	peak := dev.PeakFLOPS(usesTensorCores(ls.V.Family)) * famEff(ls.V.Family) * tileEff(ls.V) * util
	if ls.V.Precision == tensor.INT8 && usesTensorCores(ls.V.Family) {
		peak *= int8Speedup
	}
	compute := float64(ls.FLOPs) / peak
	mem := float64(ls.MemBytes) / (dev.DRAMBandwidth() * memEff)
	t := compute
	if mem > t {
		t = mem
	}
	// L2 thrashing stalls the whole kernel (tensor cores starve on
	// misses), so contention scales the roofline result, not just the
	// memory term.
	return t * dev.L2ContentionFactor(ls.WorkingSet) / dev.WaveEfficiency(ls.Blocks)
}

// TileUtilization is the fraction of tile slots doing useful work: tiles
// overhanging the M/N extents compute padding (1 for non-GEMM families).
// Exported as an engineered feature for the learned latency predictor.
func (ls LaunchSpec) TileUtilization() float64 { return ls.tileUtilization() }

// tileUtilization is the fraction of tile slots doing useful work: tiles
// overhanging the M/N extents compute padding. Only meaningful for the
// GEMM-shaped families.
func (ls LaunchSpec) tileUtilization() float64 {
	if ls.V.TileM <= 0 || ls.V.TileN <= 0 {
		return 1
	}
	switch ls.V.Family {
	case FamHMMAConv, FamWinograd, FamCUDAConv, FamGEMM:
		m := ls.Elems / int64(ls.V.TileN) // recover M (Elems = M*N)
		_ = m
	default:
		return 1
	}
	// Blocks * TileM * TileN slots vs. M*N useful outputs.
	slots := float64(ls.Blocks) * float64(ls.V.TileM) * float64(ls.V.TileN)
	if ls.V.SplitK > 1 {
		slots /= float64(ls.V.SplitK)
	}
	if slots <= 0 {
		return 1
	}
	u := float64(ls.Elems) / slots
	if u > 1 {
		u = 1
	}
	if u < 0.05 {
		u = 0.05
	}
	return u
}
