// Package kernels models the pre-implemented CUDA kernel library that
// TensorRT's hardware-mapping step (paper Fig. 2, step 5) selects from.
// Each operator has several variants — tensor-core HMMA tiles of
// different shapes, Winograd transforms, plain FP32 CUDA-core kernels,
// depthwise specializations — with (a) an analytic latency on a simulated
// device and (b) a numeric implementation whose accumulation order and
// rounding points differ per variant. (a) drives the tuner and all
// performance tables; (b) makes independently tuned engines genuinely
// produce different outputs on the same input, the paper's Finding 2.
package kernels

import (
	"fmt"

	"edgeinfer/internal/tensor"
)

// Family classifies kernel implementations.
type Family uint8

const (
	FamHMMAConv   Family = iota // tensor-core FP16 implicit GEMM convolution
	FamWinograd                 // tensor-core FP16 Winograd F(4x4,3x3) convolution
	FamCUDAConv                 // FP32 CUDA-core direct convolution
	FamDepthwise                // depthwise convolution specialization
	FamGEMM                     // fully-connected HMMA GEMM
	FamPool                     // max/avg pooling
	FamLRN                      // local response normalization
	FamActivation               // relu / leaky / sigmoid
	FamEltwise                  // elementwise add (residual)
	FamCopy                     // concat / reformat / upsample copies
	FamSoftmax
	FamSort // cub radix sort used by detection output (NMS)
)

// String implements fmt.Stringer.
func (f Family) String() string {
	switch f {
	case FamHMMAConv:
		return "hmma-conv"
	case FamWinograd:
		return "winograd-conv"
	case FamCUDAConv:
		return "cuda-conv"
	case FamDepthwise:
		return "depthwise"
	case FamGEMM:
		return "gemm"
	case FamPool:
		return "pool"
	case FamLRN:
		return "lrn"
	case FamActivation:
		return "activation"
	case FamEltwise:
		return "eltwise"
	case FamCopy:
		return "copy"
	case FamSoftmax:
		return "softmax"
	case FamSort:
		return "sort"
	default:
		return "unknown"
	}
}

// ParseFamily is the inverse of Family.String. It exists for consumers
// that must recover the family from rendered identifiers — most notably
// core.ParseTimingKey, which turns timing-cache keys back into training
// rows for the learned latency predictor.
func ParseFamily(s string) (Family, bool) {
	for f := FamHMMAConv; f <= FamSort; f++ {
		if f.String() == s {
			return f, true
		}
	}
	return 0, false
}

// TensorCore reports whether the family issues HMMA/IMMA instructions —
// a feature the latency predictor uses to pick the relevant peak rate.
func (f Family) TensorCore() bool { return usesTensorCores(f) }

// Variant identifies one concrete kernel implementation.
type Variant struct {
	Family    Family
	TileM     int // output-pixel tile (implicit-GEMM M)
	TileN     int // output-channel tile (implicit-GEMM N)
	TileK     int // reduction tile (accumulation chunk)
	Precision tensor.Precision
	FusedAct  bool // activation fused into the epilogue
	NHWC      bool // weight/activation layout
	SplitK    int  // reduction split factor (1 = none); changes accumulation order
}

// SizeClass buckets the implicit-GEMM M dimension the way TensorRT's
// kernel names do (small / medium / large / xlarge).
func SizeClass(m int) string {
	switch {
	case m <= 4096:
		return "small"
	case m <= 32768:
		return "medium"
	case m <= 262144:
		return "large"
	default:
		return "xlarge"
	}
}

// Name renders the kernel symbol in the style nvprof reports for
// TensorRT engines (paper Table XI), parameterized by the implicit-GEMM
// M of the layer the variant is bound to.
func (v Variant) Name(m int) string {
	layout := "nchw"
	if v.NHWC {
		layout = "nhwc"
	}
	act := ""
	if v.FusedAct {
		act = "relu_"
	}
	switch v.Family {
	case FamHMMAConv:
		return fmt.Sprintf("trt_volta_h884cudnn_%dx%d_ldg8_%sexp_%s_%s_tn_v1",
			v.TileM, v.TileN, act, SizeClass(m), layout)
	case FamWinograd:
		return fmt.Sprintf("trt_volta_h884cudnn_winograd_fp16_%dx%d_ldg1_%stile148t_nt_v1",
			v.TileM, v.TileN, act)
	case FamCUDAConv:
		return fmt.Sprintf("trt_volta_scudnn_%dx%d_%ssmall_nn_v1", v.TileM, v.TileN, act)
	case FamDepthwise:
		return "cuDepthwise::depthwiseConvHMMAPrefetchKernel"
	case FamGEMM:
		return fmt.Sprintf("trt_volta_h884gemm_%dx%d_ldg8_tn_v1", v.TileM, v.TileN)
	case FamPool:
		return "poolingForward_NCHW_kernel"
	case FamLRN:
		return "lrn::lrnForward_NChWH2"
	case FamActivation:
		return "activationForward_kernel"
	case FamEltwise:
		return "eltwiseSum_kernel"
	case FamCopy:
		return "copyPackedKernel"
	case FamSoftmax:
		return "softmaxForward_kernel"
	case FamSort:
		return "cub::DeviceSegmentedRadixSortKernel"
	default:
		return "unknown_kernel"
	}
}

// hmmaTiles is the tensor-core tile menu (M x N x K). The K step is the
// accumulation chunk: variants with different K round partial sums at
// different boundaries, so engines that picked different tiles compute
// (slightly) different outputs.
var hmmaTiles = [][3]int{{64, 64, 32}, {128, 64, 64}, {256, 64, 64}, {128, 128, 32}, {256, 128, 64}}

// WeightBytesFactor returns the engine-stored weight size multiplier of
// the variant relative to the layer's FP32 weight size. Direct FP16
// kernels store half-size weights; Winograd kernels store the 6x6
// transformed filters (36/9 = 4x the coefficients, in FP16 -> 2x);
// FP32 kernels keep full-size weights.
func (v Variant) WeightBytesFactor() float64 {
	switch v.Family {
	case FamWinograd:
		return 2.0
	case FamCUDAConv:
		return 1.0
	default:
		if v.Precision == tensor.FP16 {
			return 0.5
		}
		if v.Precision == tensor.INT8 {
			return 0.25
		}
		return 1.0
	}
}
