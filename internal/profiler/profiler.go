// Package profiler provides the measurement tooling of the paper's
// methodology: an nvprof-like kernel profiler (summary and GPU-trace
// modes over engine runs) and a tegrastats-like utilization sampler.
// Attaching the profiler is not free — the engine runtime charges
// per-launch instrumentation cost when RunConfig.Profile is set, which is
// how the paper's Table VIII (with nvprof) differs from Table IX
// (without).
package profiler

import (
	"fmt"
	"sort"
	"strings"

	"edgeinfer/internal/core"
	"edgeinfer/internal/gpusim"
)

// KernelStat aggregates invocations of one kernel symbol, as nvprof's
// summary mode reports.
type KernelStat struct {
	Symbol      string
	Calls       int
	TotalSec    float64
	MinSec      float64
	MaxSec      float64
	PerCallSecs []float64
}

// AvgSec returns the mean time per invocation.
func (k KernelStat) AvgSec() float64 {
	if k.Calls == 0 {
		return 0
	}
	return k.TotalSec / float64(k.Calls)
}

// Summary is an nvprof summary-mode profile of one or more runs.
type Summary struct {
	Stats     []KernelStat
	MemcpySec float64
	TotalSec  float64
	Runs      int
}

// Summarize aggregates run results into summary-mode statistics, sorted
// by total time descending (nvprof's default ordering).
func Summarize(results ...core.RunResult) Summary {
	bySym := map[string]*KernelStat{}
	var s Summary
	for _, r := range results {
		s.Runs++
		s.MemcpySec += r.MemcpySec
		s.TotalSec += r.LatencySec
		for _, k := range r.Kernels {
			st, ok := bySym[k.Symbol]
			if !ok {
				st = &KernelStat{Symbol: k.Symbol, MinSec: k.DurSec, MaxSec: k.DurSec}
				bySym[k.Symbol] = st
			}
			st.Calls++
			st.TotalSec += k.DurSec
			st.PerCallSecs = append(st.PerCallSecs, k.DurSec)
			if k.DurSec < st.MinSec {
				st.MinSec = k.DurSec
			}
			if k.DurSec > st.MaxSec {
				st.MaxSec = k.DurSec
			}
		}
	}
	for _, st := range bySym {
		s.Stats = append(s.Stats, *st)
	}
	sort.Slice(s.Stats, func(i, j int) bool {
		if s.Stats[i].TotalSec != s.Stats[j].TotalSec {
			return s.Stats[i].TotalSec > s.Stats[j].TotalSec
		}
		return s.Stats[i].Symbol < s.Stats[j].Symbol
	})
	return s
}

// Render prints the summary in nvprof's summary-mode layout.
func (s Summary) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "==PROF== Profiling result (%d runs):\n", s.Runs)
	fmt.Fprintf(&b, "%10s  %7s  %12s  %12s  %12s  %s\n",
		"Time(%)", "Calls", "Avg", "Min", "Max", "Name")
	gpuTotal := 0.0
	for _, st := range s.Stats {
		gpuTotal += st.TotalSec
	}
	for _, st := range s.Stats {
		fmt.Fprintf(&b, "%9.2f%%  %7d  %10.3fus  %10.3fus  %10.3fus  %s\n",
			100*st.TotalSec/gpuTotal, st.Calls,
			st.AvgSec()*1e6, st.MinSec*1e6, st.MaxSec*1e6, st.Symbol)
	}
	if s.MemcpySec > 0 {
		fmt.Fprintf(&b, "%9.2f%%  %7d  %10.3fms  [CUDA memcpy HtoD]\n",
			100*s.MemcpySec/s.TotalSec, s.Runs, s.MemcpySec/float64(s.Runs)*1e3)
	}
	return b.String()
}

// Trace renders GPU-trace mode: every kernel launch of a run in order.
func Trace(r core.RunResult) string {
	var b strings.Builder
	b.WriteString("==PROF== GPU trace:\n")
	t := r.MemcpySec
	if r.MemcpySec > 0 {
		fmt.Fprintf(&b, "%12.3fms  %10.3fms  [CUDA memcpy HtoD]\n", 0.0, r.MemcpySec*1e3)
	}
	for _, k := range r.Kernels {
		fmt.Fprintf(&b, "%12.3fms  %10.3fus  %s\n", t*1e3, k.DurSec*1e6, k.Symbol)
		t += k.DurSec
	}
	return b.String()
}

// TegraSample is one line of tegrastats output.
type TegraSample struct {
	RAMUsedMB  int
	RAMTotalMB int
	GPUUtilPct float64
	GPUFreqMHz float64
	PowerMW    int
}

// Render formats the sample in tegrastats' style, including the INA
// power rail reading.
func (t TegraSample) Render() string {
	return fmt.Sprintf("RAM %d/%dMB GR3D_FREQ %.0f%%@%.0f VDD_GPU_SOC %dmW",
		t.RAMUsedMB, t.RAMTotalMB, t.GPUUtilPct, t.GPUFreqMHz, t.PowerMW)
}

// Tegrastats samples the simulated device state for a concurrent
// inference workload: n threads of the given engine-derived load.
func Tegrastats(dev *gpusim.Device, load gpusim.StreamLoad, threads int) TegraSample {
	used := float64(threads)*load.PerThreadMemBytes/1e6 + 1800 // OS + runtime
	total := float64(dev.Spec.MemGB) * 1024
	if used > total {
		used = total
	}
	util := gpusim.GPUUtilization(dev, load, threads)
	return TegraSample{
		RAMUsedMB:  int(used),
		RAMTotalMB: int(total),
		GPUUtilPct: 100 * util,
		GPUFreqMHz: dev.ClockMHz,
		PowerMW:    int(dev.PowerW(util) * 1000),
	}
}
