package profiler

import (
	"encoding/json"
	"fmt"

	"edgeinfer/internal/core"
)

// Chrome-trace export: the timeline view nvvp/Nsight would show, in the
// chrome://tracing (Perfetto) JSON event format, so engine runs can be
// inspected visually.

type traceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`  // microseconds
	Dur  float64           `json:"dur"` // microseconds
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// ChromeTrace renders one run as a chrome://tracing JSON document: the
// memcpy on the copy-engine track and every kernel on the compute track.
func ChromeTrace(label string, r core.RunResult) ([]byte, error) {
	var events []traceEvent
	t := 0.0
	if r.MemcpySec > 0 {
		events = append(events, traceEvent{
			Name: "[CUDA memcpy HtoD]", Cat: "memcpy", Ph: "X",
			TS: 0, Dur: r.MemcpySec * 1e6, PID: 1, TID: 1,
			Args: map[string]string{"engine": label},
		})
		t = r.MemcpySec
	}
	for _, k := range r.Kernels {
		args := map[string]string{"engine": label}
		if len(k.Layers) > 0 {
			args["layers"] = fmt.Sprint(k.Layers)
		}
		events = append(events, traceEvent{
			Name: k.Symbol, Cat: "kernel", Ph: "X",
			TS: t * 1e6, Dur: k.DurSec * 1e6, PID: 1, TID: 2, Args: args,
		})
		t += k.DurSec
	}
	doc := struct {
		TraceEvents []traceEvent `json:"traceEvents"`
		DisplayUnit string       `json:"displayTimeUnit"`
	}{events, "ms"}
	return json.MarshalIndent(doc, "", " ")
}
