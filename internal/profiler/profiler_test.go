package profiler

import (
	"encoding/json"
	"strings"
	"testing"

	"edgeinfer/internal/core"
	"edgeinfer/internal/gpusim"
	"edgeinfer/internal/models"
)

func engineAndDevice(t *testing.T) (*core.Engine, *gpusim.Device) {
	t.Helper()
	g := models.MustBuild("resnet18")
	e, err := core.Build(g, core.DefaultConfig(gpusim.XavierNX(), 1))
	if err != nil {
		t.Fatal(err)
	}
	return e, gpusim.NewDevice(gpusim.XavierNX(), 599)
}

func TestSummarizeAggregates(t *testing.T) {
	e, dev := engineAndDevice(t)
	var results []core.RunResult
	for i := 0; i < 3; i++ {
		results = append(results, e.Run(core.RunConfig{Device: dev, IncludeMemcpy: true, Profile: true, RunIndex: i}))
	}
	s := Summarize(results...)
	if s.Runs != 3 {
		t.Fatalf("runs %d", s.Runs)
	}
	totalCalls := 0
	for _, st := range s.Stats {
		totalCalls += st.Calls
		if st.MinSec > st.MaxSec || st.AvgSec() <= 0 {
			t.Fatalf("bad stat %+v", st)
		}
		if len(st.PerCallSecs) != st.Calls {
			t.Fatal("per-call record mismatch")
		}
	}
	if totalCalls != 3*len(e.Launches) {
		t.Fatalf("calls %d want %d", totalCalls, 3*len(e.Launches))
	}
	// Sorted by total time descending.
	for i := 1; i < len(s.Stats); i++ {
		if s.Stats[i].TotalSec > s.Stats[i-1].TotalSec {
			t.Fatal("summary not sorted by total time")
		}
	}
}

func TestSummaryRender(t *testing.T) {
	e, dev := engineAndDevice(t)
	r := e.Run(core.RunConfig{Device: dev, IncludeMemcpy: true, Profile: true})
	out := Summarize(r).Render()
	for _, want := range []string{"==PROF==", "Calls", "CUDA memcpy HtoD", "trt_volta"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary output missing %q", want)
		}
	}
}

func TestTraceOrdering(t *testing.T) {
	e, dev := engineAndDevice(t)
	r := e.Run(core.RunConfig{Device: dev, IncludeMemcpy: true, Profile: true})
	out := Trace(r)
	if !strings.Contains(out, "GPU trace") {
		t.Fatal("trace header missing")
	}
	if strings.Count(out, "\n") < len(e.Launches) {
		t.Fatal("trace too short")
	}
}

func TestTegrastats(t *testing.T) {
	e, dev := engineAndDevice(t)
	load := e.StreamLoad(dev)
	s1 := Tegrastats(dev, load, 1)
	s8 := Tegrastats(dev, load, 8)
	if s8.GPUUtilPct <= s1.GPUUtilPct {
		t.Fatal("utilization should rise with threads")
	}
	if s8.RAMUsedMB <= s1.RAMUsedMB {
		t.Fatal("RAM should rise with threads")
	}
	if s8.RAMUsedMB > s8.RAMTotalMB {
		t.Fatal("RAM used exceeds total")
	}
	if !strings.Contains(s1.Render(), "GR3D_FREQ") {
		t.Fatalf("tegrastats format: %q", s1.Render())
	}
}

func TestChromeTrace(t *testing.T) {
	e, dev := engineAndDevice(t)
	r := e.Run(core.RunConfig{Device: dev, IncludeMemcpy: true, Profile: true})
	doc, err := ChromeTrace(e.Key(), r)
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Dur  float64 `json:"dur"`
			TS   float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(doc, &parsed); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(parsed.TraceEvents) != len(e.Launches)+1 {
		t.Fatalf("%d events, want %d", len(parsed.TraceEvents), len(e.Launches)+1)
	}
	if parsed.TraceEvents[0].Name != "[CUDA memcpy HtoD]" {
		t.Fatal("memcpy event missing")
	}
	// Events must be ordered and non-overlapping on the timeline.
	end := 0.0
	for _, ev := range parsed.TraceEvents[1:] {
		if ev.TS+1e-9 < end {
			t.Fatal("kernel events overlap")
		}
		end = ev.TS + ev.Dur
		if ev.Dur <= 0 {
			t.Fatalf("event %s has non-positive duration", ev.Name)
		}
	}
}
