// Package perfmodel implements the BSP-inspired GPU performance
// prediction model the paper uses (§VI-B, after Amarís et al.): a
// kernel's execution time is predicted from computation, global-memory
// and shared-memory communication terms scaled by core count and clock,
// with a per-kernel fudge factor lambda calibrated on one platform and
// reused on another:
//
//	T = N * (Comp + CommGM + CommSM) / (F * C * lambda)     (paper Eq. 2)
//
// The paper's point — which this package reproduces — is that the
// optimization engine breaks this methodology: different engines of the
// same model invoke different kernels different numbers of times with
// different lambdas, so cross-platform prediction error varies by
// several percent from engine to engine (Tables XVII, XVIII).
package perfmodel

import (
	"fmt"
	"math"

	"edgeinfer/internal/core"
	"edgeinfer/internal/gpusim"
)

// Latency constants (cycles), as a microbenchmark calibration would
// produce for Volta-class parts.
const (
	latInstr = 4
	latSM    = 25
	latL1    = 32
	latL2    = 190
	latGM    = 420
)

// Counters are the per-kernel profile counters the model consumes
// (instructions, loads/stores, cache hits) — what nvprof metrics mode
// would report.
type Counters struct {
	Threads      float64
	InstrPerThrd float64
	LDG, STG     float64 // global transactions per thread
	LDS, STS     float64 // shared-memory transactions per thread
	L1HitFrac    float64
	L2HitFrac    float64
}

// CountersFor derives the counters of a launch from its plan metadata:
// one thread per output element, reduction-depth instructions, memory
// transactions from the traffic estimate, and cache hit fractions from
// the working set against the device's L2 share.
func CountersFor(l core.Launch, dev *gpusim.Device) Counters {
	n := float64(l.Spec.Elems)
	if n <= 0 {
		n = 1
	}
	instr := float64(l.Spec.FLOPs) / n * 2 // MAC + addressing per FLOP pair
	bytesPerThread := float64(l.Spec.MemBytes) / n
	ldg := bytesPerThread / 32 // 32B transactions
	share := float64(dev.Spec.L2KB) * 1024 / float64(dev.Spec.SMs)
	l2hit := 0.85
	if ws := float64(l.Spec.WorkingSet); ws > share {
		l2hit = 0.85 * share / ws
	}
	return Counters{
		Threads:      n,
		InstrPerThrd: instr,
		LDG:          ldg,
		STG:          1.0 / 8, // coalesced stores
		LDS:          float64(l.Spec.V.TileK) / 8,
		STS:          float64(l.Spec.V.TileK) / 16,
		L1HitFrac:    0.55,
		L2HitFrac:    l2hit,
	}
}

// RawPredictSec evaluates Eq. 2 with lambda = 1.
func RawPredictSec(c Counters, dev *gpusim.Device) float64 {
	comp := c.InstrPerThrd * latInstr
	gmAccesses := c.LDG + c.STG
	l1 := gmAccesses * c.L1HitFrac
	l2 := (gmAccesses - l1) * c.L2HitFrac
	miss := gmAccesses - l1 - l2
	commGM := miss*latGM + l1*latL1 + l2*latL2
	commSM := (c.LDS + c.STS) * latSM
	cycles := c.Threads * (comp + commGM + commSM)
	return cycles / (dev.ClockMHz * 1e6 * float64(dev.Spec.CUDACores))
}

// Calibration holds per-kernel-symbol lambdas measured on a source
// platform.
type Calibration struct {
	SourcePlatform string
	Lambda         map[string]float64
}

// Calibrate measures every kernel of an engine on the source device and
// computes lambda = predicted/measured per symbol (averaged over
// invocations), following the paper's methodology of calibrating on a
// single platform and input size.
func Calibrate(e *core.Engine, src *gpusim.Device) Calibration {
	sums := map[string][2]float64{} // symbol -> (sum lambda, count)
	for _, l := range e.Launches {
		measured := l.Spec.TimeSec(src)
		if measured <= 0 {
			continue
		}
		raw := RawPredictSec(CountersFor(l, src), src)
		s := sums[l.Symbol]
		s[0] += raw / measured
		s[1]++
		sums[l.Symbol] = s
	}
	out := Calibration{SourcePlatform: src.Spec.Short(), Lambda: map[string]float64{}}
	for sym, s := range sums {
		out.Lambda[sym] = s[0] / s[1]
	}
	return out
}

// PredictEngineSec predicts the kernel-time total of an engine on a
// target device using lambdas calibrated elsewhere. Kernels without a
// calibrated lambda (a tactic the source engine never used) fall back to
// lambda = 1 — one of the failure modes the paper identifies.
func PredictEngineSec(e *core.Engine, target *gpusim.Device, cal Calibration) float64 {
	var total float64
	for _, l := range e.Launches {
		raw := RawPredictSec(CountersFor(l, target), target)
		lambda := cal.Lambda[l.Symbol]
		if lambda <= 0 {
			lambda = 1
		}
		total += raw / lambda
	}
	return total
}

// MeasuredEngineSec is the simulator's ground truth for the same
// quantity (kernel time only, no memcpy/profiler overheads).
func MeasuredEngineSec(e *core.Engine, dev *gpusim.Device) float64 {
	var total float64
	for _, l := range e.Launches {
		total += l.Spec.TimeSec(dev)
	}
	return total
}

// ErrorPct returns |predicted-measured|/measured in percent.
func ErrorPct(predicted, measured float64) float64 {
	if measured == 0 {
		return 0
	}
	return 100 * math.Abs(predicted-measured) / measured
}

// Report is the per-engine prediction summary used by Tables XVII/XVIII.
type Report struct {
	Engine      string
	LambdaBySym map[string]float64
	PredictedMS float64
	MeasuredMS  float64
	ErrorPct    float64
}

// CrossPredict calibrates on src, predicts on dst, and reports.
func CrossPredict(e *core.Engine, src, dst *gpusim.Device) Report {
	cal := Calibrate(e, src)
	pred := PredictEngineSec(e, dst, cal)
	meas := MeasuredEngineSec(e, dst)
	return Report{
		Engine:      fmt.Sprintf("%s (build %d)", e.ModelName, e.BuildID),
		LambdaBySym: cal.Lambda,
		PredictedMS: pred * 1e3,
		MeasuredMS:  meas * 1e3,
		ErrorPct:    ErrorPct(pred, meas),
	}
}
