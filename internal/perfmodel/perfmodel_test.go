package perfmodel

import (
	"testing"

	"edgeinfer/internal/core"
	"edgeinfer/internal/gpusim"
	"edgeinfer/internal/models"
)

func buildOn(t *testing.T, model string, spec gpusim.DeviceSpec, id int) *core.Engine {
	t.Helper()
	g := models.MustBuild(model)
	e, err := core.Build(g, core.DefaultConfig(spec, id))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestCalibrationSelfPredicts(t *testing.T) {
	// Calibrating and predicting on the same device must be near-exact
	// (lambda absorbs the model error by construction).
	e := buildOn(t, "resnet18", gpusim.XavierNX(), 1)
	nx := gpusim.NewDevice(gpusim.XavierNX(), 599)
	cal := Calibrate(e, nx)
	pred := PredictEngineSec(e, nx, cal)
	meas := MeasuredEngineSec(e, nx)
	if ErrorPct(pred, meas) > 5 {
		t.Fatalf("self-prediction error %.1f%%, want <5%%", ErrorPct(pred, meas))
	}
}

func TestCrossPlatformPredictionErrs(t *testing.T) {
	// Predicting AGX from NX-calibrated lambdas must carry real error —
	// the paper's central point about this methodology.
	e := buildOn(t, "inceptionv4", gpusim.XavierNX(), 1)
	nx := gpusim.NewDevice(gpusim.XavierNX(), 599)
	agx := gpusim.NewDevice(gpusim.XavierAGX(), 624)
	rep := CrossPredict(e, nx, agx)
	if rep.ErrorPct <= 0.5 {
		t.Fatalf("cross-platform prediction suspiciously exact: %.2f%%", rep.ErrorPct)
	}
	if rep.ErrorPct > 60 {
		t.Fatalf("cross-platform prediction useless: %.2f%%", rep.ErrorPct)
	}
	if len(rep.LambdaBySym) == 0 {
		t.Fatal("no lambdas calibrated")
	}
}

func TestPredictionErrorVariesAcrossEngines(t *testing.T) {
	// Table XVII: three engines of the same model calibrated the same way
	// give different prediction errors (the paper sees 2-13% spread).
	nx := gpusim.NewDevice(gpusim.XavierNX(), 599)
	agx := gpusim.NewDevice(gpusim.XavierAGX(), 624)
	var errs []float64
	for id := 1; id <= 3; id++ {
		e := buildOn(t, "inceptionv4", gpusim.XavierNX(), id)
		errs = append(errs, CrossPredict(e, nx, agx).ErrorPct)
	}
	if errs[0] == errs[1] && errs[1] == errs[2] {
		t.Fatalf("prediction error identical across engines: %v", errs)
	}
}

func TestLambdasDifferAcrossEngines(t *testing.T) {
	nx := gpusim.NewDevice(gpusim.XavierNX(), 599)
	e1 := buildOn(t, "inceptionv4", gpusim.XavierNX(), 1)
	e2 := buildOn(t, "inceptionv4", gpusim.XavierNX(), 2)
	c1, c2 := Calibrate(e1, nx), Calibrate(e2, nx)
	diff := false
	for sym, l1 := range c1.Lambda {
		if l2, ok := c2.Lambda[sym]; ok && l1 != l2 {
			diff = true
		}
	}
	if !diff && len(c1.Lambda) == len(c2.Lambda) {
		// identical kernel sets AND identical lambdas would mean the
		// engines are the same binary
		t.Log("engines share lambdas; acceptable only if kernel sets differ")
		same := true
		for sym := range c1.Lambda {
			if _, ok := c2.Lambda[sym]; !ok {
				same = false
			}
		}
		if same {
			t.Fatal("engines indistinguishable to the performance model")
		}
	}
}

func TestRawPredictPositiveAndScales(t *testing.T) {
	e := buildOn(t, "alexnet", gpusim.XavierNX(), 1)
	lo := gpusim.NewDevice(gpusim.XavierNX(), 599)
	hi := gpusim.NewDevice(gpusim.XavierNX(), 1100)
	for _, l := range e.Launches {
		cl := CountersFor(l, lo)
		tl, th := RawPredictSec(cl, lo), RawPredictSec(CountersFor(l, hi), hi)
		if tl <= 0 {
			t.Fatalf("non-positive prediction for %s", l.Symbol)
		}
		if th >= tl {
			t.Fatalf("prediction does not scale with clock for %s", l.Symbol)
		}
	}
}

func TestErrorPct(t *testing.T) {
	if ErrorPct(110, 100) != 10 || ErrorPct(90, 100) != 10 {
		t.Fatal("error pct wrong")
	}
	if ErrorPct(1, 0) != 0 {
		t.Fatal("zero measured should not divide")
	}
}
