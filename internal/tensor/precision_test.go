package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"edgeinfer/internal/fixrand"
)

func TestPrecisionString(t *testing.T) {
	if FP32.String() != "fp32" || FP16.String() != "fp16" || INT8.String() != "int8" {
		t.Fatal("precision strings wrong")
	}
	if Precision(99).String() != "unknown" {
		t.Fatal("unknown precision string")
	}
}

func TestPrecisionBytes(t *testing.T) {
	if FP32.Bytes() != 4 || FP16.Bytes() != 2 || INT8.Bytes() != 1 {
		t.Fatal("precision byte sizes wrong")
	}
}

func TestRoundFP16Exact(t *testing.T) {
	// Values exactly representable in binary16 are unchanged.
	for _, v := range []float32{0, 1, -1, 0.5, 2048, -0.25, 65504} {
		if got := RoundFP16(v); got != v {
			t.Errorf("RoundFP16(%v)=%v, want exact", v, got)
		}
	}
}

func TestRoundFP16KnownRounding(t *testing.T) {
	// 1 + 2^-11 is exactly between 1 and 1+2^-10; round-to-even gives 1.
	v := float32(1 + math.Pow(2, -11))
	if got := RoundFP16(v); got != 1 {
		t.Errorf("round-to-even: RoundFP16(%v)=%v want 1", v, got)
	}
	// 1 + 3*2^-11 rounds up to 1+2^-9... check it rounds to nearest: 1+2^-10*2
	v2 := float32(1 + 3*math.Pow(2, -11))
	want := float32(1 + 2*math.Pow(2, -10))
	if got := RoundFP16(v2); got != want {
		t.Errorf("RoundFP16(%v)=%v want %v", v2, got, want)
	}
}

func TestRoundFP16Overflow(t *testing.T) {
	if !math.IsInf(float64(RoundFP16(1e6)), 1) {
		t.Fatal("large value should overflow to +Inf")
	}
	if !math.IsInf(float64(RoundFP16(-1e6)), -1) {
		t.Fatal("large negative should overflow to -Inf")
	}
}

func TestRoundFP16NaN(t *testing.T) {
	nan := float32(math.NaN())
	if !math.IsNaN(float64(RoundFP16(nan))) {
		t.Fatal("NaN not preserved")
	}
}

func TestRoundFP16Subnormal(t *testing.T) {
	// Smallest positive half subnormal is 2^-24.
	v := float32(math.Pow(2, -24))
	if got := RoundFP16(v); got != v {
		t.Errorf("subnormal 2^-24: got %v want %v", got, v)
	}
	// 2^-26 underflows to zero.
	if got := RoundFP16(float32(math.Pow(2, -26))); got != 0 {
		t.Errorf("2^-26 should flush to 0, got %v", got)
	}
}

// Property: FP16 rounding is idempotent and relative error is bounded by
// 2^-11 for normal-range values.
func TestRoundFP16Properties(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		src := fixrand.New(seed)
		v := float32((src.Float64()*2 - 1) * 1000)
		r := RoundFP16(v)
		if RoundFP16(r) != r {
			return false // not idempotent
		}
		if v != 0 {
			rel := math.Abs(float64(r-v)) / math.Abs(float64(v))
			if rel > math.Pow(2, -10) { // generous bound incl. subnormal edge
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantScale(t *testing.T) {
	x := NewVec(4)
	copy(x.Data, []float32{-254, 1, 0, 127})
	if got := QuantScale(x); got != 2 {
		t.Fatalf("scale %v want 2", got)
	}
	z := NewVec(3)
	if QuantScale(z) != 1 {
		t.Fatal("zero tensor scale should be 1")
	}
}

func TestQuantizeINT8Clamps(t *testing.T) {
	if QuantizeINT8(1000, 1) != 127 || QuantizeINT8(-1000, 1) != -127 {
		t.Fatal("int8 clamp failed")
	}
}

func TestQuantDequantRoundTripBound(t *testing.T) {
	// Property: |dequant(quant(v)) - v| <= scale/2 for v within range.
	if err := quick.Check(func(seed uint64) bool {
		src := fixrand.New(seed)
		scale := float32(src.Float64()*10 + 0.01)
		v := float32((src.Float64()*2 - 1)) * scale * 127
		q := QuantizeINT8(v, scale)
		d := DequantizeINT8(q, scale)
		return math.Abs(float64(d-v)) <= float64(scale)/2+1e-6
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTensorINT8(t *testing.T) {
	x := NewVec(3)
	copy(x.Data, []float32{-127, 0, 127})
	y, scale := RoundTensorINT8(x)
	if scale != 1 {
		t.Fatalf("scale %v want 1", scale)
	}
	if y.Data[0] != -127 || y.Data[2] != 127 {
		t.Fatalf("round trip %v", y.Data)
	}
}

func TestRoundTensorFP16InPlace(t *testing.T) {
	x := NewVec(2)
	copy(x.Data, []float32{1.0000001, 2})
	y := RoundTensorFP16(x)
	if y != x {
		t.Fatal("should return same tensor")
	}
	if x.Data[0] != 1 {
		t.Fatalf("not rounded: %v", x.Data[0])
	}
}

func TestRoundValueDispatch(t *testing.T) {
	if RoundValue(1.5, FP32, 1) != 1.5 {
		t.Fatal("fp32 should be identity")
	}
	if RoundValue(1.0004883, FP16, 1) == 1.0004883 {
		// 1.0004883 is representable? 1+2^-11 is not; ensure rounding occurred
		t.Log("fp16 kept value (representable)")
	}
	got := RoundValue(3.4, INT8, 1)
	if got != 3 {
		t.Fatalf("int8 round %v want 3", got)
	}
}
