package tensor

import "math"

// Precision identifies the numeric precision a kernel or engine computes
// in. The builder's quantization pass converts FP32 graphs to FP16 or
// INT8 plans, mirroring TensorRT optimization step 4 of the paper.
type Precision uint8

const (
	FP32 Precision = iota
	FP16
	INT8
)

// String implements fmt.Stringer.
func (p Precision) String() string {
	switch p {
	case FP32:
		return "fp32"
	case FP16:
		return "fp16"
	case INT8:
		return "int8"
	default:
		return "unknown"
	}
}

// Bytes returns the storage size in bytes of one element at precision p.
func (p Precision) Bytes() int {
	switch p {
	case FP32:
		return 4
	case FP16:
		return 2
	case INT8:
		return 1
	default:
		return 4
	}
}

// RoundFP16 rounds a float32 to the nearest IEEE 754 binary16 value and
// returns it widened back to float32. Overflow saturates to ±Inf and
// subnormals flush following round-to-nearest-even.
func RoundFP16(v float32) float32 {
	return fp16BitsToFloat(floatToFP16Bits(v))
}

// floatToFP16Bits converts float32 to IEEE binary16 bits with
// round-to-nearest-even.
func floatToFP16Bits(v float32) uint16 {
	b := math.Float32bits(v)
	sign := uint16(b>>16) & 0x8000
	exp := int32(b>>23) & 0xff
	man := b & 0x7fffff
	switch {
	case exp == 0xff: // Inf or NaN
		if man != 0 {
			return sign | 0x7e00 // quiet NaN
		}
		return sign | 0x7c00
	case exp > 142: // overflow -> Inf (exp-127 > 15)
		return sign | 0x7c00
	case exp >= 113: // normal range (exp-127 >= -14)
		he := uint16(exp-112) << 10
		hm := uint16(man >> 13)
		// round to nearest even on the truncated 13 bits
		round := man & 0x1fff
		if round > 0x1000 || (round == 0x1000 && hm&1 == 1) {
			hm++
			if hm == 0x400 {
				hm = 0
				he += 1 << 10
				if he >= 0x7c00 {
					return sign | 0x7c00
				}
			}
		}
		return sign | he | hm
	case exp >= 103: // subnormal half: value = hm * 2^-24
		shift := uint32(126 - exp) // in [14, 23]
		full := man | 0x800000
		hm := uint16(full >> shift)
		round := full & (1<<shift - 1)
		half := uint32(1) << (shift - 1)
		if round > half || (round == half && hm&1 == 1) {
			hm++ // may carry into the normal range, which is still correct bits
		}
		return sign | hm
	default: // underflow to zero
		return sign
	}
}

// fp16BitsToFloat widens IEEE binary16 bits to float32.
func fp16BitsToFloat(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h>>10) & 0x1f
	man := uint32(h & 0x3ff)
	switch {
	case exp == 0x1f: // Inf/NaN
		return math.Float32frombits(sign | 0x7f800000 | man<<13)
	case exp == 0:
		if man == 0 {
			return math.Float32frombits(sign)
		}
		// subnormal: normalize
		e := uint32(113)
		for man&0x400 == 0 {
			man <<= 1
			e--
		}
		man &= 0x3ff
		return math.Float32frombits(sign | (e << 23) | (man << 13))
	default:
		return math.Float32frombits(sign | ((exp + 112) << 23) | (man << 13))
	}
}

// RoundTensorFP16 rounds every element of t to FP16 in place and returns t.
func RoundTensorFP16(t *Tensor) *Tensor {
	for i, v := range t.Data {
		t.Data[i] = RoundFP16(v)
	}
	return t
}

// QuantScale returns the symmetric INT8 quantization scale for a tensor
// calibrated to its max-abs dynamic range: scale = maxabs / 127.
// A zero tensor yields scale 1 so that quantization is a no-op.
func QuantScale(t *Tensor) float32 {
	m := t.MaxAbs()
	if m == 0 {
		return 1
	}
	return m / 127
}

// QuantizeINT8 quantizes v symmetrically with the given scale, clamping
// to [-127, 127].
func QuantizeINT8(v, scale float32) int8 {
	q := float64(v / scale)
	r := math.RoundToEven(q)
	if r > 127 {
		r = 127
	} else if r < -127 {
		r = -127
	}
	return int8(r)
}

// DequantizeINT8 widens a quantized value back to float32.
func DequantizeINT8(q int8, scale float32) float32 {
	return float32(q) * scale
}

// RoundTensorINT8 quantize-dequantizes every element of t in place with a
// tensor-wide max-abs calibrated scale, emulating INT8 inference numerics.
// It returns t and the scale used.
func RoundTensorINT8(t *Tensor) (*Tensor, float32) {
	scale := QuantScale(t)
	for i, v := range t.Data {
		t.Data[i] = DequantizeINT8(QuantizeINT8(v, scale), scale)
	}
	return t, scale
}

// RoundValue rounds v to precision p (identity for FP32).
func RoundValue(v float32, p Precision, int8Scale float32) float32 {
	switch p {
	case FP16:
		return RoundFP16(v)
	case INT8:
		return DequantizeINT8(QuantizeINT8(v, int8Scale), int8Scale)
	default:
		return v
	}
}
