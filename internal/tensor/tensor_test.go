package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"edgeinfer/internal/fixrand"
)

func randTensor(key string, n, c, h, w int) *Tensor {
	src := fixrand.NewKeyed(key)
	t := New(n, c, h, w)
	for i := range t.Data {
		t.Data[i] = float32(src.NormFloat64())
	}
	return t
}

func TestNewShapeAndLen(t *testing.T) {
	x := New(2, 3, 4, 5)
	if x.Len() != 120 || len(x.Data) != 120 {
		t.Fatalf("len %d, want 120", x.Len())
	}
	if x.Shape() != [4]int{2, 3, 4, 5} {
		t.Fatalf("shape %v", x.Shape())
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0,1,1,1) did not panic")
		}
	}()
	New(0, 1, 1, 1)
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(2, 3, 4, 5)
	x.Set(1, 2, 3, 4, 42)
	if x.At(1, 2, 3, 4) != 42 {
		t.Fatal("At/Set mismatch")
	}
	// last element of the buffer
	if x.Data[119] != 42 {
		t.Fatal("indexing formula wrong for last element")
	}
}

func TestCloneIsDeep(t *testing.T) {
	x := randTensor("clone", 1, 2, 3, 3)
	y := x.Clone()
	y.Data[0] = 999
	if x.Data[0] == 999 {
		t.Fatal("clone shares storage")
	}
}

func TestArgmax(t *testing.T) {
	x := NewVec(5)
	copy(x.Data, []float32{0.1, -3, 7, 7, 2})
	if got := x.Argmax(); got != 2 {
		t.Fatalf("argmax %d, want 2 (first of ties)", got)
	}
}

func TestConvOutDim(t *testing.T) {
	cases := []struct{ in, k, s, p, want int }{
		{224, 11, 4, 2, 55}, // AlexNet conv1
		{224, 3, 1, 1, 224}, // VGG same-conv
		{224, 7, 2, 3, 112}, // ResNet stem
		{13, 3, 1, 1, 13},
	}
	for _, c := range cases {
		if got := ConvOutDim(c.in, c.k, c.s, c.p); got != c.want {
			t.Errorf("ConvOutDim(%d,%d,%d,%d)=%d want %d", c.in, c.k, c.s, c.p, got, c.want)
		}
	}
}

func TestConv2DIdentityKernel(t *testing.T) {
	x := randTensor("convid", 1, 3, 5, 5)
	// 1x1 conv with identity weights per channel maps input to itself.
	w := New(3, 3, 1, 1)
	for c := 0; c < 3; c++ {
		w.Set(c, c, 0, 0, 1)
	}
	y := Conv2D(x, w, nil, ConvParams{OutC: 3, Kernel: 1, Stride: 1, Pad: 0, Groups: 1})
	if !y.SameShape(x) {
		t.Fatalf("shape %v want %v", y.Shape(), x.Shape())
	}
	for i := range x.Data {
		if x.Data[i] != y.Data[i] {
			t.Fatalf("identity conv altered data at %d", i)
		}
	}
}

func TestConv2DKnownValues(t *testing.T) {
	// 1x1x3x3 input, 3x3 all-ones kernel, pad 1: center output = sum of all.
	x := New(1, 1, 3, 3)
	for i := range x.Data {
		x.Data[i] = float32(i + 1) // 1..9
	}
	w := New(1, 1, 3, 3)
	w.Fill(1)
	y := Conv2D(x, w, nil, ConvParams{OutC: 1, Kernel: 3, Stride: 1, Pad: 1})
	if y.H != 3 || y.W != 3 {
		t.Fatalf("shape %v", y.Shape())
	}
	if got := y.At(0, 0, 1, 1); got != 45 {
		t.Fatalf("center %v want 45", got)
	}
	// corner (0,0) sees elements 1,2,4,5
	if got := y.At(0, 0, 0, 0); got != 12 {
		t.Fatalf("corner %v want 12", got)
	}
}

func TestConv2DBias(t *testing.T) {
	x := New(1, 1, 2, 2)
	w := New(1, 1, 1, 1)
	w.Fill(0)
	b := NewVec(1)
	b.Data[0] = 3.5
	y := Conv2D(x, w, b, ConvParams{OutC: 1, Kernel: 1, Stride: 1})
	for _, v := range y.Data {
		if v != 3.5 {
			t.Fatalf("bias not applied: %v", v)
		}
	}
}

func TestConv2DDepthwise(t *testing.T) {
	// Depthwise conv: groups == C. Each channel convolved independently.
	x := randTensor("dw", 1, 4, 6, 6)
	w := New(4, 1, 3, 3)
	wsrc := fixrand.NewKeyed("dww")
	for i := range w.Data {
		w.Data[i] = float32(wsrc.NormFloat64())
	}
	y := Conv2D(x, w, nil, ConvParams{OutC: 4, Kernel: 3, Stride: 1, Pad: 1, Groups: 4})
	if y.C != 4 || y.H != 6 {
		t.Fatalf("shape %v", y.Shape())
	}
	// Channel 0 of output must not depend on channel 1 of input.
	x2 := x.Clone()
	x2.Set(0, 1, 3, 3, x2.At(0, 1, 3, 3)+100)
	y2 := Conv2D(x2, w, nil, ConvParams{OutC: 4, Kernel: 3, Stride: 1, Pad: 1, Groups: 4})
	for h := 0; h < 6; h++ {
		for wi := 0; wi < 6; wi++ {
			if y.At(0, 0, h, wi) != y2.At(0, 0, h, wi) {
				t.Fatal("depthwise channel 0 depends on channel 1")
			}
		}
	}
}

func TestConv2DPanicsOnBadWeights(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on wrong weight size")
		}
	}()
	x := New(1, 3, 4, 4)
	w := New(1, 1, 1, 1)
	Conv2D(x, w, nil, ConvParams{OutC: 8, Kernel: 3, Stride: 1, Pad: 1})
}

func TestMaxPool(t *testing.T) {
	x := New(1, 1, 4, 4)
	for i := range x.Data {
		x.Data[i] = float32(i)
	}
	y := MaxPool2D(x, PoolParams{Kernel: 2, Stride: 2})
	want := []float32{5, 7, 13, 15}
	for i, v := range want {
		if y.Data[i] != v {
			t.Fatalf("maxpool[%d]=%v want %v", i, y.Data[i], v)
		}
	}
}

func TestMaxPoolIgnoresPadding(t *testing.T) {
	x := New(1, 1, 2, 2)
	x.Fill(-5)
	y := MaxPool2D(x, PoolParams{Kernel: 3, Stride: 1, Pad: 1})
	for _, v := range y.Data {
		if v != -5 {
			t.Fatalf("padding treated as zero in maxpool: %v", v)
		}
	}
}

func TestAvgPool(t *testing.T) {
	x := New(1, 1, 2, 2)
	copy(x.Data, []float32{1, 2, 3, 4})
	y := AvgPool2D(x, PoolParams{Kernel: 2, Stride: 2})
	if y.Data[0] != 2.5 {
		t.Fatalf("avgpool %v want 2.5", y.Data[0])
	}
}

func TestGlobalAvgPool(t *testing.T) {
	x := New(2, 3, 4, 4)
	x.Fill(2)
	y := GlobalAvgPool2D(x)
	if y.N != 2 || y.C != 3 || y.H != 1 || y.W != 1 {
		t.Fatalf("shape %v", y.Shape())
	}
	for _, v := range y.Data {
		if v != 2 {
			t.Fatalf("gap value %v want 2", v)
		}
	}
}

func TestReLU(t *testing.T) {
	x := NewVec(3)
	copy(x.Data, []float32{-1, 0, 2})
	y := ReLU(x)
	if y.Data[0] != 0 || y.Data[1] != 0 || y.Data[2] != 2 {
		t.Fatalf("relu %v", y.Data)
	}
	if x.Data[0] != -1 {
		t.Fatal("relu mutated input")
	}
}

func TestLeakyReLU(t *testing.T) {
	x := NewVec(2)
	copy(x.Data, []float32{-10, 10})
	y := LeakyReLU(x, 0.1)
	if y.Data[0] != -1 || y.Data[1] != 10 {
		t.Fatalf("leaky %v", y.Data)
	}
}

func TestSigmoidBounds(t *testing.T) {
	x := NewVec(3)
	copy(x.Data, []float32{-100, 0, 100})
	y := Sigmoid(x)
	if y.Data[0] > 1e-6 || math.Abs(float64(y.Data[1]-0.5)) > 1e-6 || y.Data[2] < 1-1e-6 {
		t.Fatalf("sigmoid %v", y.Data)
	}
}

func TestFC(t *testing.T) {
	x := New(1, 2, 1, 1)
	copy(x.Data, []float32{1, 2})
	w := New(1, 6, 1, 1) // [3 out, 2 in]
	copy(w.Data, []float32{1, 0, 0, 1, 1, 1})
	b := NewVec(3)
	copy(b.Data, []float32{0, 0, 10})
	y := FC(x, w, b, 3)
	want := []float32{1, 2, 13}
	for i, v := range want {
		if y.Data[i] != v {
			t.Fatalf("fc[%d]=%v want %v", i, y.Data[i], v)
		}
	}
}

func TestFCBatch(t *testing.T) {
	x := New(2, 3, 1, 1)
	copy(x.Data, []float32{1, 0, 0, 0, 1, 0})
	w := New(1, 9, 1, 1)
	for i := 0; i < 3; i++ {
		w.Data[i*3+i] = float32(i + 1) // diag(1,2,3)
	}
	y := FC(x, w, nil, 3)
	if y.At(0, 0, 0, 0) != 1 || y.At(1, 1, 0, 0) != 2 {
		t.Fatalf("fc batch wrong: %v", y.Data)
	}
}

func TestBatchNorm(t *testing.T) {
	x := New(1, 2, 1, 2)
	copy(x.Data, []float32{1, 3, 10, 20})
	gamma, beta, mean, variance := NewVec(2), NewVec(2), NewVec(2), NewVec(2)
	gamma.Fill(1)
	copy(mean.Data, []float32{2, 15})
	copy(variance.Data, []float32{1, 25})
	y := BatchNorm(x, gamma, beta, mean, variance, 0)
	want := []float32{-1, 1, -1, 1}
	for i, v := range want {
		if math.Abs(float64(y.Data[i]-v)) > 1e-5 {
			t.Fatalf("bn[%d]=%v want %v", i, y.Data[i], v)
		}
	}
}

func TestSoftmaxSumsToOne(t *testing.T) {
	x := randTensor("sm", 2, 7, 3, 3)
	y := Softmax(x)
	for n := 0; n < 2; n++ {
		for h := 0; h < 3; h++ {
			for w := 0; w < 3; w++ {
				var sum float64
				for c := 0; c < 7; c++ {
					v := y.At(n, c, h, w)
					if v < 0 || v > 1 {
						t.Fatalf("softmax out of range: %v", v)
					}
					sum += float64(v)
				}
				if math.Abs(sum-1) > 1e-5 {
					t.Fatalf("softmax sum %v", sum)
				}
			}
		}
	}
}

func TestSoftmaxPreservesArgmax(t *testing.T) {
	x := randTensor("sma", 1, 10, 1, 1)
	y := Softmax(x)
	if x.Argmax() != y.Argmax() {
		t.Fatal("softmax changed argmax")
	}
}

func TestAdd(t *testing.T) {
	a := randTensor("adda", 1, 2, 2, 2)
	b := randTensor("addb", 1, 2, 2, 2)
	y := Add(a, b)
	for i := range y.Data {
		if y.Data[i] != a.Data[i]+b.Data[i] {
			t.Fatal("add wrong")
		}
	}
}

func TestAddPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on shape mismatch")
		}
	}()
	Add(New(1, 1, 1, 1), New(1, 2, 1, 1))
}

func TestConcat(t *testing.T) {
	a := New(1, 2, 2, 2)
	a.Fill(1)
	b := New(1, 3, 2, 2)
	b.Fill(2)
	y := Concat(a, b)
	if y.C != 5 {
		t.Fatalf("concat C=%d want 5", y.C)
	}
	if y.At(0, 0, 0, 0) != 1 || y.At(0, 2, 0, 0) != 2 {
		t.Fatal("concat data placement wrong")
	}
}

func TestUpsample2x(t *testing.T) {
	x := New(1, 1, 2, 2)
	copy(x.Data, []float32{1, 2, 3, 4})
	y := Upsample2x(x)
	if y.H != 4 || y.W != 4 {
		t.Fatalf("shape %v", y.Shape())
	}
	if y.At(0, 0, 0, 0) != 1 || y.At(0, 0, 1, 1) != 1 || y.At(0, 0, 3, 3) != 4 {
		t.Fatal("upsample values wrong")
	}
}

func TestLRNIdentityForZeroAlpha(t *testing.T) {
	x := randTensor("lrn", 1, 8, 3, 3)
	y := LRN(x, 5, 0, 0.75, 1)
	for i := range x.Data {
		if math.Abs(float64(y.Data[i]-x.Data[i])) > 1e-6 {
			t.Fatal("LRN with alpha=0, k=1 should be identity")
		}
	}
}

func TestLRNReducesMagnitude(t *testing.T) {
	x := New(1, 5, 1, 1)
	x.Fill(10)
	y := LRN(x, 5, 1e-1, 0.75, 1)
	for i := range y.Data {
		if math.Abs(float64(y.Data[i])) >= math.Abs(float64(x.Data[i])) {
			t.Fatal("LRN did not attenuate large responses")
		}
	}
}

// Property: conv with stride 1, pad k/2 (odd k) preserves spatial dims.
func TestConvSamePaddingProperty(t *testing.T) {
	if err := quick.Check(func(seed uint64, hw, kRaw uint8) bool {
		h := int(hw%10) + 3
		k := []int{1, 3, 5}[int(kRaw)%3]
		return ConvOutDim(h, k, 1, k/2) == h
	}, nil); err != nil {
		t.Fatal(err)
	}
}
