// Package tensor implements dense NCHW float32 tensors and the reference
// numeric operators needed to execute neural-network inference: 2-D
// convolution, pooling, fully-connected layers, normalization, activation
// and elementwise ops, plus FP16 and INT8 precision emulation used by the
// quantization passes of the inference-engine builder.
//
// These are the bit-exact reference implementations. Kernel variants in
// internal/kernels compute the same math in different accumulation orders
// and precisions, which is the source of cross-engine output differences
// characterized by the paper.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense 4-D tensor in NCHW layout. Lower-rank data uses
// trailing singleton dimensions (a vector of length K is [1, K, 1, 1]).
type Tensor struct {
	N, C, H, W int
	Data       []float32
}

// New allocates a zero tensor with the given shape. It panics on
// non-positive dimensions.
func New(n, c, h, w int) *Tensor {
	if n <= 0 || c <= 0 || h <= 0 || w <= 0 {
		panic(fmt.Sprintf("tensor: invalid shape [%d %d %d %d]", n, c, h, w)) //rtlint:allow panicpath -- allocation-contract bug, not data-driven: loaders and kernels validate shapes before allocating
	}
	return &Tensor{N: n, C: c, H: h, W: w, Data: make([]float32, n*c*h*w)}
}

// NewVec allocates a [1, k, 1, 1] tensor, the conventional shape for
// per-channel parameters and classifier logits.
func NewVec(k int) *Tensor { return New(1, k, 1, 1) }

// Len returns the number of elements.
func (t *Tensor) Len() int { return t.N * t.C * t.H * t.W }

// Shape returns the shape as a 4-element array.
func (t *Tensor) Shape() [4]int { return [4]int{t.N, t.C, t.H, t.W} }

// SameShape reports whether t and u have identical dimensions.
func (t *Tensor) SameShape(u *Tensor) bool {
	return t.N == u.N && t.C == u.C && t.H == u.H && t.W == u.W
}

// At returns the element at (n, c, h, w).
func (t *Tensor) At(n, c, h, w int) float32 {
	return t.Data[((n*t.C+c)*t.H+h)*t.W+w]
}

// Set stores v at (n, c, h, w).
func (t *Tensor) Set(n, c, h, w int, v float32) {
	t.Data[((n*t.C+c)*t.H+h)*t.W+w] = v
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	u := &Tensor{N: t.N, C: t.C, H: t.H, W: t.W, Data: make([]float32, len(t.Data))}
	copy(u.Data, t.Data)
	return u
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Argmax returns the flat index of the maximum element (first occurrence
// on ties) — the class decision for logit vectors.
func (t *Tensor) Argmax() int {
	best, bi := float32(math.Inf(-1)), 0
	for i, v := range t.Data {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// MaxAbs returns the maximum absolute value, used for quantization
// calibration.
func (t *Tensor) MaxAbs() float32 {
	var m float32
	for _, v := range t.Data {
		a := v
		if a < 0 {
			a = -a
		}
		if a > m {
			m = a
		}
	}
	return m
}

// String implements fmt.Stringer with a compact shape description.
func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor[%dx%dx%dx%d]", t.N, t.C, t.H, t.W)
}
