package tensor

import (
	"fmt"
	"math"
)

// ConvParams describes a 2-D convolution: square kernel, symmetric stride
// and padding, optional channel groups (groups == C_in gives depthwise).
type ConvParams struct {
	OutC, Kernel, Stride, Pad, Groups int
}

// ConvOutDim returns the spatial output size of a convolution or pooling
// window over an input of size in.
func ConvOutDim(in, kernel, stride, pad int) int {
	return (in+2*pad-kernel)/stride + 1
}

// Conv2D computes a grouped 2-D convolution of x with weights w and
// per-output-channel bias b (b may be nil). w has logical shape
// [outC, inC/groups, k, k] flattened into w.Data. This is the bit-exact
// reference: accumulation runs in row-major (c, kh, kw) order in float32.
func Conv2D(x, w, b *Tensor, p ConvParams) *Tensor {
	if p.Groups <= 0 {
		p.Groups = 1
	}
	if x.C%p.Groups != 0 || p.OutC%p.Groups != 0 {
		panic(fmt.Sprintf("tensor: conv groups %d do not divide channels in=%d out=%d", p.Groups, x.C, p.OutC))
	}
	icg := x.C / p.Groups // input channels per group
	ocg := p.OutC / p.Groups
	if want := p.OutC * icg * p.Kernel * p.Kernel; w.Len() != want {
		panic(fmt.Sprintf("tensor: conv weight len %d, want %d", w.Len(), want))
	}
	oh := ConvOutDim(x.H, p.Kernel, p.Stride, p.Pad)
	ow := ConvOutDim(x.W, p.Kernel, p.Stride, p.Pad)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: conv output %dx%d not positive (in %dx%d k=%d s=%d p=%d)", oh, ow, x.H, x.W, p.Kernel, p.Stride, p.Pad))
	}
	y := New(x.N, p.OutC, oh, ow)
	for n := 0; n < x.N; n++ {
		for oc := 0; oc < p.OutC; oc++ {
			g := oc / ocg
			var bias float32
			if b != nil {
				bias = b.Data[oc]
			}
			for i := 0; i < oh; i++ {
				for j := 0; j < ow; j++ {
					var acc float32
					for c := 0; c < icg; c++ {
						ic := g*icg + c
						for kh := 0; kh < p.Kernel; kh++ {
							ih := i*p.Stride + kh - p.Pad
							if ih < 0 || ih >= x.H {
								continue
							}
							for kw := 0; kw < p.Kernel; kw++ {
								iw := j*p.Stride + kw - p.Pad
								if iw < 0 || iw >= x.W {
									continue
								}
								wv := w.Data[((oc*icg+c)*p.Kernel+kh)*p.Kernel+kw]
								acc += wv * x.At(n, ic, ih, iw)
							}
						}
					}
					y.Set(n, oc, i, j, acc+bias)
				}
			}
		}
	}
	return y
}

// PoolParams describes a pooling window.
type PoolParams struct {
	Kernel, Stride, Pad int
}

// MaxPool2D computes max pooling. Padded positions are ignored (treated as
// -inf), matching cuDNN semantics.
func MaxPool2D(x *Tensor, p PoolParams) *Tensor {
	oh := ConvOutDim(x.H, p.Kernel, p.Stride, p.Pad)
	ow := ConvOutDim(x.W, p.Kernel, p.Stride, p.Pad)
	y := New(x.N, x.C, oh, ow)
	for n := 0; n < x.N; n++ {
		for c := 0; c < x.C; c++ {
			for i := 0; i < oh; i++ {
				for j := 0; j < ow; j++ {
					best := float32(math.Inf(-1))
					for kh := 0; kh < p.Kernel; kh++ {
						ih := i*p.Stride + kh - p.Pad
						if ih < 0 || ih >= x.H {
							continue
						}
						for kw := 0; kw < p.Kernel; kw++ {
							iw := j*p.Stride + kw - p.Pad
							if iw < 0 || iw >= x.W {
								continue
							}
							if v := x.At(n, c, ih, iw); v > best {
								best = v
							}
						}
					}
					y.Set(n, c, i, j, best)
				}
			}
		}
	}
	return y
}

// AvgPool2D computes average pooling over valid (unpadded) positions.
func AvgPool2D(x *Tensor, p PoolParams) *Tensor {
	oh := ConvOutDim(x.H, p.Kernel, p.Stride, p.Pad)
	ow := ConvOutDim(x.W, p.Kernel, p.Stride, p.Pad)
	y := New(x.N, x.C, oh, ow)
	for n := 0; n < x.N; n++ {
		for c := 0; c < x.C; c++ {
			for i := 0; i < oh; i++ {
				for j := 0; j < ow; j++ {
					var sum float32
					count := 0
					for kh := 0; kh < p.Kernel; kh++ {
						ih := i*p.Stride + kh - p.Pad
						if ih < 0 || ih >= x.H {
							continue
						}
						for kw := 0; kw < p.Kernel; kw++ {
							iw := j*p.Stride + kw - p.Pad
							if iw < 0 || iw >= x.W {
								continue
							}
							sum += x.At(n, c, ih, iw)
							count++
						}
					}
					if count > 0 {
						y.Set(n, c, i, j, sum/float32(count))
					}
				}
			}
		}
	}
	return y
}

// GlobalAvgPool2D reduces each channel's spatial plane to its mean,
// producing an [N, C, 1, 1] tensor.
func GlobalAvgPool2D(x *Tensor) *Tensor {
	y := New(x.N, x.C, 1, 1)
	inv := 1 / float32(x.H*x.W)
	for n := 0; n < x.N; n++ {
		for c := 0; c < x.C; c++ {
			var sum float32
			for h := 0; h < x.H; h++ {
				for w := 0; w < x.W; w++ {
					sum += x.At(n, c, h, w)
				}
			}
			y.Set(n, c, 0, 0, sum*inv)
		}
	}
	return y
}

// ReLU applies max(0, x) elementwise, returning a new tensor.
func ReLU(x *Tensor) *Tensor {
	y := x.Clone()
	for i, v := range y.Data {
		if v < 0 {
			y.Data[i] = 0
		}
	}
	return y
}

// LeakyReLU applies x>=0 ? x : alpha*x elementwise.
func LeakyReLU(x *Tensor, alpha float32) *Tensor {
	y := x.Clone()
	for i, v := range y.Data {
		if v < 0 {
			y.Data[i] = alpha * v
		}
	}
	return y
}

// Sigmoid applies the logistic function elementwise.
func Sigmoid(x *Tensor) *Tensor {
	y := x.Clone()
	for i, v := range y.Data {
		y.Data[i] = float32(1 / (1 + math.Exp(-float64(v))))
	}
	return y
}

// FC computes a fully-connected layer y = W·flatten(x) + b for each batch
// element. w has logical shape [out, in] with in == C*H*W of x; b may be
// nil. Output shape is [N, out, 1, 1].
func FC(x, w, b *Tensor, out int) *Tensor {
	in := x.C * x.H * x.W
	if w.Len() != out*in {
		panic(fmt.Sprintf("tensor: fc weight len %d, want %d (out=%d in=%d)", w.Len(), out*in, out, in))
	}
	y := New(x.N, out, 1, 1)
	for n := 0; n < x.N; n++ {
		xoff := n * in
		for o := 0; o < out; o++ {
			var acc float32
			woff := o * in
			for i := 0; i < in; i++ {
				acc += w.Data[woff+i] * x.Data[xoff+i]
			}
			if b != nil {
				acc += b.Data[o]
			}
			y.Set(n, o, 0, 0, acc)
		}
	}
	return y
}

// BatchNorm applies per-channel affine normalization using precomputed
// inference statistics: y = gamma*(x-mean)/sqrt(var+eps) + beta.
func BatchNorm(x, gamma, beta, mean, variance *Tensor, eps float32) *Tensor {
	y := New(x.N, x.C, x.H, x.W)
	for c := 0; c < x.C; c++ {
		scale := gamma.Data[c] / float32(math.Sqrt(float64(variance.Data[c]+eps)))
		shift := beta.Data[c] - scale*mean.Data[c]
		for n := 0; n < x.N; n++ {
			for h := 0; h < x.H; h++ {
				for w := 0; w < x.W; w++ {
					y.Set(n, c, h, w, scale*x.At(n, c, h, w)+shift)
				}
			}
		}
	}
	return y
}

// LRN applies local response normalization across channels with window
// size, alpha, beta and k as in AlexNet/GoogLeNet (Caffe semantics: alpha
// is divided by the window size).
func LRN(x *Tensor, size int, alpha, beta, k float32) *Tensor {
	y := New(x.N, x.C, x.H, x.W)
	half := size / 2
	for n := 0; n < x.N; n++ {
		for c := 0; c < x.C; c++ {
			lo, hi := c-half, c+half
			if lo < 0 {
				lo = 0
			}
			if hi >= x.C {
				hi = x.C - 1
			}
			for h := 0; h < x.H; h++ {
				for w := 0; w < x.W; w++ {
					var sq float32
					for cc := lo; cc <= hi; cc++ {
						v := x.At(n, cc, h, w)
						sq += v * v
					}
					denom := math.Pow(float64(k+alpha/float32(size)*sq), float64(beta))
					y.Set(n, c, h, w, x.At(n, c, h, w)/float32(denom))
				}
			}
		}
	}
	return y
}

// Softmax applies channelwise softmax per batch element (over C, at each
// spatial position).
func Softmax(x *Tensor) *Tensor {
	y := New(x.N, x.C, x.H, x.W)
	for n := 0; n < x.N; n++ {
		for h := 0; h < x.H; h++ {
			for w := 0; w < x.W; w++ {
				maxv := float32(math.Inf(-1))
				for c := 0; c < x.C; c++ {
					if v := x.At(n, c, h, w); v > maxv {
						maxv = v
					}
				}
				var sum float64
				for c := 0; c < x.C; c++ {
					sum += math.Exp(float64(x.At(n, c, h, w) - maxv))
				}
				for c := 0; c < x.C; c++ {
					y.Set(n, c, h, w, float32(math.Exp(float64(x.At(n, c, h, w)-maxv))/sum))
				}
			}
		}
	}
	return y
}

// Add returns the elementwise sum of two same-shaped tensors (residual
// connections).
func Add(a, b *Tensor) *Tensor {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: add shape mismatch %v vs %v", a.Shape(), b.Shape()))
	}
	y := a.Clone()
	for i, v := range b.Data {
		y.Data[i] += v
	}
	return y
}

// Concat concatenates tensors along the channel dimension. All inputs
// must agree on N, H, W.
func Concat(ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("tensor: concat of zero tensors")
	}
	n, h, w := ts[0].N, ts[0].H, ts[0].W
	totalC := 0
	for _, t := range ts {
		if t.N != n || t.H != h || t.W != w {
			panic(fmt.Sprintf("tensor: concat shape mismatch %v vs [N=%d H=%d W=%d]", t.Shape(), n, h, w))
		}
		totalC += t.C
	}
	y := New(n, totalC, h, w)
	for ni := 0; ni < n; ni++ {
		coff := 0
		for _, t := range ts {
			for c := 0; c < t.C; c++ {
				for hi := 0; hi < h; hi++ {
					for wi := 0; wi < w; wi++ {
						y.Set(ni, coff+c, hi, wi, t.At(ni, c, hi, wi))
					}
				}
			}
			coff += t.C
		}
	}
	return y
}

// Upsample2x nearest-neighbour upsamples the spatial dims by 2 (used by
// Tiny-YOLOv3 and FCN decoders).
func Upsample2x(x *Tensor) *Tensor {
	y := New(x.N, x.C, x.H*2, x.W*2)
	for n := 0; n < x.N; n++ {
		for c := 0; c < x.C; c++ {
			for h := 0; h < y.H; h++ {
				for w := 0; w < y.W; w++ {
					y.Set(n, c, h, w, x.At(n, c, h/2, w/2))
				}
			}
		}
	}
	return y
}
