// Package models defines the 13 neural networks of the paper's Table II
// at full scale (real layer topologies, real parameter counts) for the
// analytic timing experiments, plus reduced-scale numeric proxies used by
// the accuracy and output-consistency experiments.
//
// Full-scale graphs carry no weight tensors — parameter counts are
// accounted analytically from layer dimensions, so a 527 MB VGG-16 costs
// nothing to "load". Numeric proxies (proxy.go) materialize real weights
// at reduced dimensions.
package models

import (
	"fmt"
	"sort"

	"edgeinfer/internal/graph"
)

// Info describes one zoo entry.
type Info struct {
	Name      string
	Task      string // "classification", "detection", "segmentation"
	Framework string // "caffe", "tensorflow", "darknet", "pytorch"
	Build     func() *graph.Graph
}

// registry holds the zoo in the paper's Table II order.
var registry = []Info{
	{"alexnet", "classification", "caffe", AlexNet},
	{"resnet18", "classification", "caffe", ResNet18},
	{"vgg16", "classification", "caffe", VGG16},
	{"inceptionv4", "classification", "caffe", InceptionV4},
	{"googlenet", "classification", "caffe", GoogLeNet},
	{"ssd-inceptionv2", "detection", "tensorflow", SSDInceptionV2},
	{"detectnet-coco-dog", "detection", "caffe", DetectNetCocoDog},
	{"pednet", "detection", "caffe", PedNet},
	{"tiny-yolov3", "detection", "darknet", TinyYOLOv3},
	{"facenet", "detection", "caffe", FaceNet},
	{"mobilenetv1", "detection", "tensorflow", MobileNetV1},
	{"mtcnn", "detection", "caffe", MTCNN},
	{"fcn-resnet18-cityscapes", "segmentation", "pytorch", FCNResNet18},
}

// List returns the model names in Table II order.
func List() []string {
	names := make([]string, len(registry))
	for i, e := range registry {
		names[i] = e.Name
	}
	return names
}

// Lookup returns the zoo entry for a model name.
func Lookup(name string) (Info, error) {
	for _, e := range registry {
		if e.Name == name {
			return e, nil
		}
	}
	var known []string
	for _, e := range registry {
		known = append(known, e.Name)
	}
	sort.Strings(known)
	return Info{}, fmt.Errorf("models: unknown model %q (known: %v)", name, known)
}

// Build constructs the full-scale graph for a model name.
func Build(name string) (*graph.Graph, error) {
	e, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	g := e.Build()
	g.Framework = e.Framework
	g.Task = e.Task
	return g, nil
}

// MustBuild is Build for static model names; it panics on unknown names.
func MustBuild(name string) *graph.Graph {
	g, err := Build(name)
	if err != nil {
		panic(err)
	}
	return g
}

// BuildBatched constructs a model graph with the given batch size —
// trtexec-style batched engines amortize per-launch overheads at the
// cost of per-frame latency (the classic edge throughput/latency trade).
func BuildBatched(name string, batch int) (*graph.Graph, error) {
	if batch < 1 {
		return nil, fmt.Errorf("models: batch %d invalid", batch)
	}
	e, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	g := e.Build()
	if batch > 1 {
		g.InputShape[0] = batch
		if err := g.Finalize(); err != nil {
			return nil, fmt.Errorf("models: batched finalize: %w", err)
		}
	}
	g.Framework = e.Framework
	g.Task = e.Task
	return g, nil
}
