package models

import (
	"testing"

	"edgeinfer/internal/dataset"
)

func TestProxyBuilds(t *testing.T) {
	for name := range proxySpecs {
		g, err := BuildProxy(name, DefaultProxyOptions())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !g.Finalized() {
			t.Fatalf("%s proxy not finalized", name)
		}
		shape := g.OutputShapes()[0]
		if shape[1] != dataset.NumClasses {
			t.Fatalf("%s proxy output width %d", name, shape[1])
		}
	}
}

func TestHasProxy(t *testing.T) {
	if !HasProxy("alexnet") || HasProxy("mtcnn") {
		t.Fatal("proxy registry wrong")
	}
}

func TestProxyUnknownModel(t *testing.T) {
	if _, err := BuildProxy("mtcnn", DefaultProxyOptions()); err == nil {
		t.Fatal("mtcnn proxy should not exist")
	}
}

func TestProxyClassifiesCleanTemplates(t *testing.T) {
	// Noise-free templates must classify (nearly) perfectly with a clean
	// (overfit-free) proxy.
	opts := DefaultProxyOptions()
	opts.OverfitSigma = 0
	g, err := BuildProxy("resnet18", opts)
	if err != nil {
		t.Fatal(err)
	}
	tpls := dataset.Templates(opts.Seed, opts.Classes)
	wrong := 0
	for c, tpl := range tpls {
		outs, err := g.Execute(tpl)
		if err != nil {
			t.Fatal(err)
		}
		if outs[0].Argmax() != c {
			wrong++
		}
	}
	// The truncated (sparse) matched-filter head trades some clean
	// accuracy for prunability; ~4/5 of noise-free templates must still
	// classify correctly.
	if wrong > opts.Classes/4 {
		t.Fatalf("%d/%d clean templates misclassified", wrong, opts.Classes)
	}
}

func TestProxyErrorOrderingMatchesPaper(t *testing.T) {
	// Paper Table III: error(alexnet) > error(resnet18) > error(vgg16).
	cfg := dataset.DefaultBenign(5) // 500 images for speed
	benign := dataset.Benign(cfg)
	errs := map[string]float64{}
	for _, name := range []string{"alexnet", "resnet18", "vgg16"} {
		g, err := BuildProxy(name, DefaultProxyOptions())
		if err != nil {
			t.Fatal(err)
		}
		wrong := 0
		for _, s := range benign {
			outs, err := g.Execute(s.Image)
			if err != nil {
				t.Fatal(err)
			}
			if outs[0].Argmax() != s.Label {
				wrong++
			}
		}
		errs[name] = float64(wrong) / float64(len(benign))
	}
	if !(errs["alexnet"] > errs["resnet18"] && errs["resnet18"] > errs["vgg16"]) {
		t.Fatalf("error ordering wrong: %v", errs)
	}
	for name, e := range errs {
		if e < 0.20 || e > 0.70 {
			t.Errorf("%s error %.0f%% outside the paper's 30-55%% regime", name, e*100)
		}
	}
}

func TestProxyDeterministic(t *testing.T) {
	g1, _ := BuildProxy("vgg16", DefaultProxyOptions())
	g2, _ := BuildProxy("vgg16", DefaultProxyOptions())
	w1 := g1.Layer("fc_head").Weights["w"]
	w2 := g2.Layer("fc_head").Weights["w"]
	for i := range w1.Data {
		if w1.Data[i] != w2.Data[i] {
			t.Fatal("proxy weights not deterministic")
		}
	}
}

func TestOverfitPerturbsOnlyZeros(t *testing.T) {
	clean, _ := BuildProxy("resnet18", ProxyOptions{OverfitSigma: 0})
	noisy, _ := BuildProxy("resnet18", ProxyOptions{OverfitSigma: 0.45})
	wc := clean.Layer("fc_head").Weights["w"]
	wn := noisy.Layer("fc_head").Weights["w"]
	changedNonzero := 0
	addedOnZero := 0
	for i := range wc.Data {
		if wc.Data[i] == 0 {
			if wn.Data[i] != 0 {
				addedOnZero++
			}
		} else if wc.Data[i] != wn.Data[i] {
			changedNonzero++
		}
	}
	if addedOnZero == 0 {
		t.Fatal("overfit perturbation missing")
	}
	if changedNonzero != 0 {
		t.Fatal("overfit perturbation touched supported coordinates")
	}
}
