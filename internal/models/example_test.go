package models_test

import (
	"fmt"

	"edgeinfer/internal/graph"
	"edgeinfer/internal/models"
)

// The zoo holds the paper's 13 networks in Table II order.
func ExampleList() {
	names := models.List()
	fmt.Println(len(names), "models")
	fmt.Println("first:", names[0])
	fmt.Println("last: ", names[len(names)-1])
	// Output:
	// 13 models
	// first: alexnet
	// last:  fcn-resnet18-cityscapes
}

// Full-scale graphs carry the paper's exact layer counts.
func ExampleBuild() {
	g, err := models.Build("inceptionv4")
	if err != nil {
		fmt.Println(err)
		return
	}
	ops := g.CountOps()
	fmt.Printf("%d conv, %d max pool\n", ops[graph.OpConv], ops[graph.OpMaxPool])
	// Output:
	// 149 conv, 19 max pool
}
