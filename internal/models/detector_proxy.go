package models

import (
	"fmt"

	"edgeinfer/internal/dataset"
	"edgeinfer/internal/graph"
	"edgeinfer/internal/tensor"
)

// Numeric detection proxy: a DetectNet-style coverage network scaled to
// the synthetic traffic scenes. A matched box filter (zero-mean, so the
// road background cancels) convolves the scene at stride 2 and a sigmoid
// turns the response into per-cell coverage — the same coverage+decode
// structure as the zoo's DetectNet family, small enough to compute.
// Box decoding, NMS and class assignment live in internal/detect and
// ClassifyBoxIntensity below.

// DetectorStride is the coverage-map stride of the detection proxy.
const DetectorStride = 2

// detectorKernel is the local-average filter size.
const detectorKernel = 3

// detectorGain and detectorBias shape the sigmoid: coverage fires when
// the local 3x3 brightness average exceeds ~0.42 — vehicles render at
// 0.5-1.0 against a 0-0.3 road background.
const (
	detectorGain = 20.0
	detectorBias = -20.0 * 0.42
)

// featureChannels is the width of the intermediate feature map. The
// reduction depth of the head conv (72 > the kernels' 32/64 TileK steps)
// is what lets different tuned variants round partial sums differently —
// the engine-consistency phenomenon needs a deep enough reduction.
const featureChannels = 72

// BuildDetectorProxy constructs the numeric detection proxy for the
// synthetic traffic scenes of dataset.Generate: input [1, 3, hw, hw],
// a 72-channel brightness feature bank, and a 1x1 head producing a
// [1, 1, hw/2, hw/2] coverage map.
func BuildDetectorProxy(name string, sceneHW int) (*graph.Graph, error) {
	if sceneHW < 8*detectorKernel {
		return nil, fmt.Errorf("models: scene size %d too small for the detector proxy", sceneHW)
	}
	g := graph.New(name, [4]int{1, dataset.ImgC, sceneHW, sceneHW})
	g.Task = "detection"
	g.Framework = "caffe"
	g.Add(&graph.Layer{
		Name: "features", Op: graph.OpConv, Inputs: []string{"data"},
		Conv:    tensor.ConvParams{OutC: featureChannels, Kernel: detectorKernel, Stride: DetectorStride, Pad: detectorKernel / 2, Groups: 1},
		Weights: map[string]*tensor.Tensor{"w": featureBank(), "b": tensor.NewVec(featureChannels)},
	})
	g.Add(&graph.Layer{
		Name: "coverage_conv", Op: graph.OpConv, Inputs: []string{"features"},
		Conv:    tensor.ConvParams{OutC: 1, Kernel: 1, Stride: 1, Pad: 0, Groups: 1},
		Weights: map[string]*tensor.Tensor{"w": headWeights(), "b": biasVec()},
	})
	g.Add(&graph.Layer{Name: "coverage", Op: graph.OpSigmoid, Inputs: []string{"coverage_conv"}})
	g.Outputs = []string{"coverage"}
	if err := g.Finalize(); err != nil {
		return nil, err
	}
	return g, nil
}

// featureBank replicates the brightness filter across featureChannels
// with deterministic per-channel scale jitter (a trained feature bank's
// redundancy); the head averages the scales back out.
func featureBank() *tensor.Tensor {
	base := matchedBoxFilter()
	w := tensor.New(featureChannels, dataset.ImgC, detectorKernel, detectorKernel)
	per := base.Len()
	for j := 0; j < featureChannels; j++ {
		scale := channelScale(j)
		for i := 0; i < per; i++ {
			w.Data[j*per+i] = base.Data[i] * scale
		}
	}
	return w
}

// headWeights averages the feature bank back to one brightness estimate.
func headWeights() *tensor.Tensor {
	w := tensor.New(1, featureChannels, 1, 1)
	for j := 0; j < featureChannels; j++ {
		w.Data[j] = 1 / (float32(featureChannels) * channelScale(j))
	}
	return w
}

// channelScale is the deterministic per-channel jitter in [0.85, 1.15].
func channelScale(j int) float32 {
	return 0.85 + 0.3*float32(j)/float32(featureChannels-1)
}

// matchedBoxFilter builds the brightness filter: a gained 3x3 local
// average over all channels. Vehicles (0.5-1.0) push the sigmoid to ~1;
// road background (<0.35 after averaging) stays near 0.
func matchedBoxFilter() *tensor.Tensor {
	k := detectorKernel
	w := tensor.New(1, dataset.ImgC, k, k)
	for c := 0; c < dataset.ImgC; c++ {
		for y := 0; y < k; y++ {
			for x := 0; x < k; x++ {
				w.Set(0, c, y, x, float32(detectorGain)/float32(k*k*dataset.ImgC))
			}
		}
	}
	return w
}

// biasVec shifts the sigmoid threshold (see detectorBias).
func biasVec() *tensor.Tensor {
	b := tensor.NewVec(1)
	b.Data[0] = detectorBias
	return b
}

// ClassifyBoxIntensity assigns a vehicle class to a detected box by the
// mean pixel intensity inside it — the synthetic scenes encode class as
// brightness (dataset.Generate), standing in for DetectNet's per-class
// coverage channels.
func ClassifyBoxIntensity(img *tensor.Tensor, x, y, w, h int) dataset.VehicleClass {
	var sum float64
	n := 0
	for c := 0; c < img.C; c++ {
		for yy := y; yy < y+h && yy < img.H; yy++ {
			if yy < 0 {
				continue
			}
			for xx := x; xx < x+w && xx < img.W; xx++ {
				if xx < 0 {
					continue
				}
				sum += float64(img.At(0, c, yy, xx))
				n++
			}
		}
	}
	if n == 0 {
		return dataset.Car
	}
	mean := sum / float64(n)
	// Scene intensity encoding: val = 0.5 + 0.5*class/4.
	best, bi := 1e9, 0
	for cls := 0; cls < 5; cls++ {
		val := 0.5 + 0.5*float64(cls)/4
		if d := abs64(mean - val); d < best {
			best, bi = d, cls
		}
	}
	return dataset.VehicleClass(bi)
}

func abs64(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
