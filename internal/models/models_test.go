package models

import (
	"math"
	"testing"

	"edgeinfer/internal/graph"
)

// tableII is the paper's Table II: conv/maxpool layer counts and
// un-optimized model sizes in MB.
var tableII = []struct {
	name     string
	conv     int
	maxpool  int
	sizeMB   float64
	task     string
	framewrk string
}{
	{"alexnet", 5, 3, 232.56, "classification", "caffe"},
	{"resnet18", 21, 2, 44.65, "classification", "caffe"},
	{"vgg16", 13, 5, 527.8, "classification", "caffe"},
	{"inceptionv4", 149, 19, 163.12, "classification", "caffe"},
	{"googlenet", 57, 14, 51.05, "classification", "caffe"},
	{"ssd-inceptionv2", 90, 12, 95.58, "detection", "tensorflow"},
	{"detectnet-coco-dog", 59, 12, 22.82, "detection", "caffe"},
	{"pednet", 59, 12, 22.82, "detection", "caffe"},
	{"tiny-yolov3", 13, 6, 33.1, "detection", "darknet"},
	{"facenet", 59, 12, 22.82, "detection", "caffe"},
	{"mobilenetv1", 28, 1, 26.07, "detection", "tensorflow"},
	{"mtcnn", 12, 6, 1.9, "detection", "caffe"},
	{"fcn-resnet18-cityscapes", 22, 1, 44.95, "segmentation", "pytorch"},
}

func TestZooMatchesTableII(t *testing.T) {
	for _, row := range tableII {
		g, err := Build(row.name)
		if err != nil {
			t.Fatalf("%s: %v", row.name, err)
		}
		ops := g.CountOps()
		if ops[graph.OpConv] != row.conv {
			t.Errorf("%s: %d conv layers, Table II says %d", row.name, ops[graph.OpConv], row.conv)
		}
		if ops[graph.OpMaxPool] != row.maxpool {
			t.Errorf("%s: %d max pools, Table II says %d", row.name, ops[graph.OpMaxPool], row.maxpool)
		}
		sizeMB := float64(g.ModelSizeBytes()) / 1e6
		rel := math.Abs(sizeMB-row.sizeMB) / row.sizeMB
		if rel > 0.20 {
			t.Errorf("%s: model size %.2f MB vs Table II %.2f MB (%.0f%% off)",
				row.name, sizeMB, row.sizeMB, rel*100)
		}
		if g.Task != row.task || g.Framework != row.framewrk {
			t.Errorf("%s: task/framework %s/%s want %s/%s", row.name, g.Task, g.Framework, row.task, row.framewrk)
		}
	}
}

func TestListOrderAndLookup(t *testing.T) {
	names := List()
	if len(names) != 13 {
		t.Fatalf("%d models, want 13", len(names))
	}
	if names[0] != "alexnet" || names[12] != "fcn-resnet18-cityscapes" {
		t.Fatalf("order wrong: %v", names)
	}
	if _, err := Lookup("nonexistent"); err == nil {
		t.Fatal("unknown model accepted")
	}
	if _, err := Build("nonexistent"); err == nil {
		t.Fatal("unknown model built")
	}
}

func TestMustBuildPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild did not panic")
		}
	}()
	MustBuild("nonexistent")
}

func TestAllModelsFinalize(t *testing.T) {
	for _, name := range List() {
		g := MustBuild(name)
		if !g.Finalized() {
			t.Errorf("%s not finalized", name)
		}
		if g.TotalFLOPs() <= 0 {
			t.Errorf("%s has non-positive FLOPs", name)
		}
		if len(g.Outputs) == 0 {
			t.Errorf("%s has no outputs", name)
		}
	}
}

func TestGoogLeNetAuxHeadsAreDead(t *testing.T) {
	g := MustBuild("googlenet")
	if len(g.Outputs) != 1 || g.Outputs[0] != "prob" {
		t.Fatalf("googlenet outputs %v", g.Outputs)
	}
	// The aux classifiers exist in the un-optimized model...
	if g.Layer("aux1_fc1") == nil || g.Layer("aux2_fc2") == nil {
		t.Fatal("aux heads missing from the un-optimized googlenet")
	}
	// ...and hold a large fraction of its parameters (the paper's
	// GoogLeNet engine is ~13.6MB vs a 51MB model because they die).
	aux := g.ParamCount(g.Layer("aux1_fc1")) + g.ParamCount(g.Layer("aux1_fc2")) +
		g.ParamCount(g.Layer("aux2_fc1")) + g.ParamCount(g.Layer("aux2_fc2"))
	if frac := float64(aux) / float64(g.TotalParams()); frac < 0.3 {
		t.Errorf("aux heads hold only %.0f%% of params", frac*100)
	}
}

func TestDetectNetFamilySharesStructure(t *testing.T) {
	ped, face := MustBuild("pednet"), MustBuild("facenet")
	if len(ped.Layers) != len(face.Layers) {
		t.Fatalf("pednet %d layers, facenet %d", len(ped.Layers), len(face.Layers))
	}
	if ped.TotalParams() != face.TotalParams() {
		t.Fatal("detectnet family should share parameter counts")
	}
	// But they run at different input resolutions (pednet is the heavier).
	if ped.TotalFLOPs() <= face.TotalFLOPs() {
		t.Fatal("pednet (512x512) should cost more FLOPs than facenet (360x360)")
	}
}

func TestClassifierOutputWidth(t *testing.T) {
	for _, name := range []string{"alexnet", "vgg16", "googlenet", "inceptionv4"} {
		g := MustBuild(name)
		shape := g.OutputShapes()[0]
		if shape[1] != 1000 {
			t.Errorf("%s output width %d, want 1000", name, shape[1])
		}
	}
	// resnet18's classifier is a 1x1 conv in the TRT view.
	g := MustBuild("resnet18")
	if shape := g.OutputShapes()[0]; shape[1] != 1000 {
		t.Errorf("resnet18 output width %d", shape[1])
	}
}

func TestTinyYOLOHasTwoHeads(t *testing.T) {
	g := MustBuild("tiny-yolov3")
	shapes := g.OutputShapes()
	if len(shapes) != 2 {
		t.Fatalf("%d outputs, want 2", len(shapes))
	}
	if shapes[0] != [4]int{1, 255, 13, 13} {
		t.Errorf("head1 shape %v, want [1 255 13 13]", shapes[0])
	}
	if shapes[1] != [4]int{1, 255, 26, 26} {
		t.Errorf("head2 shape %v, want [1 255 26 26]", shapes[1])
	}
}

func TestMTCNNCascadeOutputs(t *testing.T) {
	g := MustBuild("mtcnn")
	if len(g.Outputs) != 7 {
		t.Fatalf("mtcnn outputs %v", g.Outputs)
	}
}

func TestFLOPsOrdering(t *testing.T) {
	// VGG-16 is the heaviest classifier; mtcnn the lightest model overall.
	vgg := MustBuild("vgg16").TotalFLOPs()
	alex := MustBuild("alexnet").TotalFLOPs()
	mtcnn := MustBuild("mtcnn").TotalFLOPs()
	if vgg <= alex {
		t.Fatal("vgg16 should out-FLOP alexnet")
	}
	if mtcnn >= alex {
		t.Fatal("mtcnn should be far lighter than alexnet")
	}
}

// Full-scale FLOPs sanity against the literature: AlexNet ~1.4 GFLOPs,
// ResNet-18 ~3.6, VGG-16 ~31, GoogLeNet ~3.2 (2 ops per MAC, 224-class
// inputs as built).
func TestZooFLOPsMatchLiterature(t *testing.T) {
	expect := map[string][2]float64{ // GFLOPs [lo, hi]
		"alexnet":     {1.0, 2.2},
		"resnet18":    {3.0, 4.5},
		"vgg16":       {28, 34},
		"googlenet":   {2.5, 4.5},
		"tiny-yolov3": {4.0, 8.0},
		"mobilenetv1": {0.8, 3.2}, // 320x320 + SSD head vs the 224 classifier
	}
	for name, band := range expect {
		g := MustBuild(name)
		gf := float64(g.TotalFLOPs()) / 1e9
		if gf < band[0] || gf > band[1] {
			t.Errorf("%s: %.2f GFLOPs outside literature band [%.1f, %.1f]", name, gf, band[0], band[1])
		}
	}
}

func TestBuildBatched(t *testing.T) {
	g, err := BuildBatched("resnet18", 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.InputShape[0] != 4 {
		t.Fatalf("batch %d", g.InputShape[0])
	}
	if shape := g.OutputShapes()[0]; shape[0] != 4 {
		t.Fatalf("output batch %d", shape[0])
	}
	// FLOPs scale linearly with batch.
	b1, _ := BuildBatched("resnet18", 1)
	if g.TotalFLOPs() != 4*b1.TotalFLOPs() {
		t.Fatalf("flops %d vs 4x %d", g.TotalFLOPs(), b1.TotalFLOPs())
	}
	if _, err := BuildBatched("resnet18", 0); err == nil {
		t.Fatal("batch 0 accepted")
	}
	if _, err := BuildBatched("nonexistent", 2); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestDetectorProxyValidation(t *testing.T) {
	if _, err := BuildDetectorProxy("d", 8); err == nil {
		t.Fatal("tiny scene accepted")
	}
	g, err := BuildDetectorProxy("d", 64)
	if err != nil {
		t.Fatal(err)
	}
	if g.OutputShapes()[0] != [4]int{1, 1, 32, 32} {
		t.Fatalf("coverage shape %v", g.OutputShapes()[0])
	}
}
