package models

import (
	"fmt"

	"edgeinfer/internal/graph"
)

// numClasses is the ImageNet-style classifier head width used by the
// paper's classification networks.
const numClasses = 1000

// AlexNet builds the 5-conv/3-maxpool Caffe AlexNet (Table II row 1) with
// the original grouped conv2/4/5 and the two LRN layers.
func AlexNet() *graph.Graph {
	b := graph.NewBuilder("alexnet", [4]int{1, 3, 227, 227})
	b.Conv("conv1", 96, 11, 4, 0).ReLU("relu1").
		LRN("norm1", 5, 1e-4, 0.75, 1).
		MaxPool("pool1", 3, 2, 0)
	// Grouped convolution as in the original two-GPU AlexNet.
	b.G.Add(&graph.Layer{Name: "conv2", Op: graph.OpConv, Inputs: []string{"pool1"},
		Conv: convP(256, 5, 1, 2, 2)})
	b = b.From("conv2")
	b.ReLU("relu2").LRN("norm2", 5, 1e-4, 0.75, 1).MaxPool("pool2", 3, 2, 0).
		Conv("conv3", 384, 3, 1, 1).ReLU("relu3")
	b.G.Add(&graph.Layer{Name: "conv4", Op: graph.OpConv, Inputs: []string{"relu3"},
		Conv: convP(384, 3, 1, 1, 2)})
	b = b.From("conv4")
	b.ReLU("relu4")
	b.G.Add(&graph.Layer{Name: "conv5", Op: graph.OpConv, Inputs: []string{"relu4"},
		Conv: convP(256, 3, 1, 1, 2)})
	b = b.From("conv5")
	b.ReLU("relu5").MaxPool("pool5", 3, 2, 0).
		FC("fc6", 4096).ReLU("relu6").Dropout("drop6").
		FC("fc7", 4096).ReLU("relu7").Dropout("drop7").
		FC("fc8", numClasses).Softmax("prob")
	return b.Done()
}

// VGG16 builds the 13-conv/5-maxpool VGG-16 (Table II row 3).
func VGG16() *graph.Graph {
	b := graph.NewBuilder("vgg16", [4]int{1, 3, 224, 224})
	block := func(stage, n, outC int) {
		for i := 1; i <= n; i++ {
			name := fmt.Sprintf("conv%d_%d", stage, i)
			b.Conv(name, outC, 3, 1, 1).ReLU("relu" + name[4:])
		}
		b.MaxPool(fmt.Sprintf("pool%d", stage), 2, 2, 0)
	}
	block(1, 2, 64)
	block(2, 2, 128)
	block(3, 3, 256)
	block(4, 3, 512)
	block(5, 3, 512)
	b.FC("fc6", 4096).ReLU("relu6").Dropout("drop6").
		FC("fc7", 4096).ReLU("relu7").Dropout("drop7").
		FC("fc8", numClasses).Softmax("prob")
	return b.Done()
}

// ResNet18 builds the Caffe ResNet-18 in the 21-conv/2-maxpool TensorRT
// view of Table II: the classifier is a 1x1 convolution after a 7x7 max
// pool (how TensorRT lowers GAP+FC for this model zoo entry).
func ResNet18() *graph.Graph {
	b := graph.NewBuilder("resnet18", [4]int{1, 3, 224, 224})
	b.Conv("conv1", 64, 7, 2, 3).BatchNorm("bn1").ReLU("relu1").
		MaxPool("pool1", 3, 2, 1)
	channels := []int{64, 128, 256, 512}
	for s, c := range channels {
		for blk := 0; blk < 2; blk++ {
			stride := 1
			if s > 0 && blk == 0 {
				stride = 2
			}
			in := b.Cursor()
			p := fmt.Sprintf("res%d%c", s+2, 'a'+blk)
			b.Conv(p+"_conv1", c, 3, stride, 1).BatchNorm(p+"_bn1").ReLU(p+"_relu1").
				Conv(p+"_conv2", c, 3, 1, 1).BatchNorm(p + "_bn2")
			shortcut := in
			if stride != 1 || s > 0 && blk == 0 {
				sb := b.From(in)
				sb.Conv(p+"_proj", c, 1, stride, 0).BatchNorm(p + "_projbn")
				shortcut = sb.Cursor()
			}
			b.AddJoin(p+"_add", shortcut).ReLU(p + "_relu")
		}
	}
	b.MaxPool("pool5", 7, 1, 0).
		Conv("fc1000", numClasses, 1, 1, 0).Softmax("prob")
	return b.Done()
}

// inception is the classic GoogLeNet inception module: four branches
// (1x1; 1x1→3x3; 1x1→5x5; maxpool→1x1) concatenated on channels.
func inception(b *graph.Builder, name, from string, c1, c3r, c3, c5r, c5, cp int) string {
	b1 := b.From(from).Conv(name+"_1x1", c1, 1, 1, 0).ReLU(name + "_relu1x1").Cursor()
	b2 := b.From(from).Conv(name+"_3x3r", c3r, 1, 1, 0).ReLU(name+"_relu3x3r").
		Conv(name+"_3x3", c3, 3, 1, 1).ReLU(name + "_relu3x3").Cursor()
	b3 := b.From(from).Conv(name+"_5x5r", c5r, 1, 1, 0).ReLU(name+"_relu5x5r").
		Conv(name+"_5x5", c5, 5, 1, 2).ReLU(name + "_relu5x5").Cursor()
	b4 := b.From(from).MaxPool(name+"_pool", 3, 1, 1).
		Conv(name+"_poolproj", cp, 1, 1, 0).ReLU(name + "_relupool").Cursor()
	b.ConcatJoin(name+"_out", b1, b2, b3, b4)
	return name + "_out"
}

// GoogLeNet builds the 57-conv/14-maxpool BVLC GoogLeNet of Table II,
// including the two auxiliary training classifiers. The auxiliary heads
// are not declared as outputs, so the engine builder's dead-layer pass
// removes them — which is why the paper's GoogLeNet engine (13.62 MB) is
// much smaller than half the 51.05 MB model.
func GoogLeNet() *graph.Graph {
	b := graph.NewBuilder("googlenet", [4]int{1, 3, 224, 224})
	b.Conv("conv1", 64, 7, 2, 3).ReLU("relu_conv1").MaxPool("pool1", 3, 2, 1).
		LRN("norm1", 5, 1e-4, 0.75, 1).
		Conv("conv2_reduce", 64, 1, 1, 0).ReLU("relu_conv2r").
		Conv("conv2", 192, 3, 1, 1).ReLU("relu_conv2").
		LRN("norm2", 5, 1e-4, 0.75, 1).
		MaxPool("pool2", 3, 2, 1)
	cur := inception(b, "i3a", "pool2", 64, 96, 128, 16, 32, 32)
	cur = inception(b, "i3b", cur, 128, 128, 192, 32, 96, 64)
	cur = b.From(cur).MaxPool("pool3", 3, 2, 1).Cursor()
	cur = inception(b, "i4a", cur, 192, 96, 208, 16, 48, 64)
	auxHead(b, "aux1", cur)
	cur = inception(b, "i4b", cur, 160, 112, 224, 24, 64, 64)
	cur = inception(b, "i4c", cur, 128, 128, 256, 24, 64, 64)
	cur = inception(b, "i4d", cur, 112, 144, 288, 32, 64, 64)
	auxHead(b, "aux2", cur)
	cur = inception(b, "i4e", cur, 256, 160, 320, 32, 128, 128)
	cur = b.From(cur).MaxPool("pool4", 3, 2, 1).Cursor()
	cur = inception(b, "i5a", cur, 256, 160, 320, 32, 128, 128)
	cur = inception(b, "i5b", cur, 384, 192, 384, 48, 128, 128)
	b.From(cur).MaxPool("pool5", 7, 1, 0).Dropout("drop").
		FC("loss3_classifier", numClasses).Softmax("prob")
	b.G.Outputs = []string{"prob"}
	return b.Done()
}

// auxHead attaches a GoogLeNet auxiliary classifier (training-only). The
// Caffe original bottlenecks through a 1x1 conv before its FCs; here the
// head is FC-only with an equivalent parameter budget so the Table II
// conv count (57) matches the TensorRT view of the model.
func auxHead(b *graph.Builder, name, from string) {
	b.From(from).AvgPool(name+"_pool", 5, 3, 0).
		FC(name+"_fc1", 300).ReLU(name+"_relufc").Dropout(name+"_drop").
		FC(name+"_fc2", numClasses).Softmax(name + "_prob")
}

// InceptionV4 builds the 149-conv/19-maxpool Inception-v4 of Table II.
// Asymmetric 1x7/7x1 factorized convolutions are approximated by square
// 3x3 convolutions (the IR supports square kernels), preserving the layer
// count; the paper's Caffe port pools with max pooling in the block
// branches, which is followed here.
func InceptionV4() *graph.Graph {
	b := graph.NewBuilder("inceptionv4", [4]int{1, 3, 299, 299})

	// Stem: 11 convs, 2 maxpools, ending at 384 channels, 35x35.
	b.Conv("stem_c1", 32, 3, 2, 0).ReLU("stem_r1").
		Conv("stem_c2", 32, 3, 1, 0).ReLU("stem_r2").
		Conv("stem_c3", 64, 3, 1, 1).ReLU("stem_r3")
	p1 := b.From("stem_r3").MaxPool("stem_pool1", 3, 2, 0).Cursor()
	c1 := b.From("stem_r3").Conv("stem_c4", 96, 3, 2, 0).ReLU("stem_r4").Cursor()
	b.ConcatJoin("stem_cat1", p1, c1) // 160ch @ 73
	l := b.From("stem_cat1").Conv("stem_c5", 64, 1, 1, 0).ReLU("stem_r5").
		Conv("stem_c6", 96, 3, 1, 0).ReLU("stem_r6").Cursor()
	r := b.From("stem_cat1").Conv("stem_c7", 64, 1, 1, 0).ReLU("stem_r7").
		Conv("stem_c8", 64, 3, 1, 1).ReLU("stem_r8").
		Conv("stem_c9", 64, 3, 1, 1).ReLU("stem_r9").
		Conv("stem_c10", 96, 3, 1, 0).ReLU("stem_r10").Cursor()
	b.ConcatJoin("stem_cat2", l, r) // 192ch @ 71
	c2 := b.From("stem_cat2").Conv("stem_c11", 192, 3, 2, 0).ReLU("stem_r11").Cursor()
	p2 := b.From("stem_cat2").MaxPool("stem_pool2", 3, 2, 0).Cursor()
	b.ConcatJoin("stem_out", c2, p2) // 384ch @ 35
	cur := "stem_out"

	// 4 x Inception-A: 7 convs + 1 pool each.
	for i := 1; i <= 4; i++ {
		cur = inceptionA(b, fmt.Sprintf("a%d", i), cur)
	}
	// Reduction-A: 4 convs + 1 pool -> 1024ch @ 17.
	ra1 := b.From(cur).Conv("ra_c1", 384, 3, 2, 0).ReLU("ra_r1").Cursor()
	ra2 := b.From(cur).Conv("ra_c2", 192, 1, 1, 0).ReLU("ra_r2").
		Conv("ra_c3", 224, 3, 1, 1).ReLU("ra_r3").
		Conv("ra_c4", 256, 3, 2, 0).ReLU("ra_r4").Cursor()
	ra3 := b.From(cur).MaxPool("ra_pool", 3, 2, 0).Cursor()
	b.ConcatJoin("ra_out", ra1, ra2, ra3)
	cur = "ra_out"

	// 7 x Inception-B: 10 convs + 1 pool each.
	for i := 1; i <= 7; i++ {
		cur = inceptionB(b, fmt.Sprintf("b%d", i), cur)
	}
	// Reduction-B: 6 convs + 1 pool -> 1536ch @ 8.
	rb1 := b.From(cur).Conv("rb_c1", 192, 1, 1, 0).ReLU("rb_r1").
		Conv("rb_c2", 192, 3, 2, 0).ReLU("rb_r2").Cursor()
	rb2 := b.From(cur).Conv("rb_c3", 256, 1, 1, 0).ReLU("rb_r3").
		Conv("rb_c4", 256, 3, 1, 1).ReLU("rb_r4").
		Conv("rb_c5", 320, 3, 1, 1).ReLU("rb_r5").
		Conv("rb_c6", 320, 3, 2, 0).ReLU("rb_r6").Cursor()
	rb3 := b.From(cur).MaxPool("rb_pool", 3, 2, 0).Cursor()
	b.ConcatJoin("rb_out", rb1, rb2, rb3)
	cur = "rb_out"

	// 3 x Inception-C: 10 convs + 1 pool each.
	for i := 1; i <= 3; i++ {
		cur = inceptionC(b, fmt.Sprintf("c%d", i), cur)
	}
	b.From(cur).MaxPool("pool_final", 8, 1, 0).Dropout("drop").
		FC("classifier", numClasses).Softmax("prob")
	b.G.Outputs = []string{"prob"}
	return b.Done()
}

func inceptionA(b *graph.Builder, name, from string) string {
	b1 := b.From(from).Conv(name+"_b1c1", 96, 1, 1, 0).ReLU(name + "_b1r1").Cursor()
	b2 := b.From(from).Conv(name+"_b2c1", 64, 1, 1, 0).ReLU(name+"_b2r1").
		Conv(name+"_b2c2", 96, 3, 1, 1).ReLU(name + "_b2r2").Cursor()
	b3 := b.From(from).Conv(name+"_b3c1", 64, 1, 1, 0).ReLU(name+"_b3r1").
		Conv(name+"_b3c2", 96, 3, 1, 1).ReLU(name+"_b3r2").
		Conv(name+"_b3c3", 96, 3, 1, 1).ReLU(name + "_b3r3").Cursor()
	b4 := b.From(from).MaxPool(name+"_pool", 3, 1, 1).
		Conv(name+"_b4c1", 96, 1, 1, 0).ReLU(name + "_b4r1").Cursor()
	b.ConcatJoin(name+"_out", b1, b2, b3, b4) // 384ch
	return name + "_out"
}

func inceptionB(b *graph.Builder, name, from string) string {
	b1 := b.From(from).Conv(name+"_b1c1", 384, 1, 1, 0).ReLU(name + "_b1r1").Cursor()
	b2 := b.From(from).Conv(name+"_b2c1", 192, 1, 1, 0).ReLU(name+"_b2r1").
		Conv(name+"_b2c2", 160, 3, 1, 1).ReLU(name+"_b2r2").
		Conv(name+"_b2c3", 256, 3, 1, 1).ReLU(name + "_b2r3").Cursor()
	b3 := b.From(from).Conv(name+"_b3c1", 192, 1, 1, 0).ReLU(name+"_b3r1").
		Conv(name+"_b3c2", 160, 3, 1, 1).ReLU(name+"_b3r2").
		Conv(name+"_b3c3", 160, 3, 1, 1).ReLU(name+"_b3r3").
		Conv(name+"_b3c4", 176, 3, 1, 1).ReLU(name+"_b3r4").
		Conv(name+"_b3c5", 256, 3, 1, 1).ReLU(name + "_b3r5").Cursor()
	b4 := b.From(from).MaxPool(name+"_pool", 3, 1, 1).
		Conv(name+"_b4c1", 128, 1, 1, 0).ReLU(name + "_b4r1").Cursor()
	b.ConcatJoin(name+"_out", b1, b2, b3, b4) // 1024ch
	return name + "_out"
}

func inceptionC(b *graph.Builder, name, from string) string {
	b1 := b.From(from).Conv(name+"_b1c1", 256, 1, 1, 0).ReLU(name + "_b1r1").Cursor()
	b2 := b.From(from).Conv(name+"_b2c1", 256, 1, 1, 0).ReLU(name + "_b2r1").Cursor()
	b2a := b.From(b2).Conv(name+"_b2c2", 256, 3, 1, 1).ReLU(name + "_b2r2").Cursor()
	b2b := b.From(b2).Conv(name+"_b2c3", 256, 3, 1, 1).ReLU(name + "_b2r3").Cursor()
	b3 := b.From(from).Conv(name+"_b3c1", 256, 1, 1, 0).ReLU(name+"_b3r1").
		Conv(name+"_b3c2", 288, 3, 1, 1).ReLU(name+"_b3r2").
		Conv(name+"_b3c3", 320, 3, 1, 1).ReLU(name + "_b3r3").Cursor()
	b3a := b.From(b3).Conv(name+"_b3c4", 256, 3, 1, 1).ReLU(name + "_b3r4").Cursor()
	b3b := b.From(b3).Conv(name+"_b3c5", 256, 3, 1, 1).ReLU(name + "_b3r5").Cursor()
	b4 := b.From(from).MaxPool(name+"_pool", 3, 1, 1).
		Conv(name+"_b4c1", 256, 1, 1, 0).ReLU(name + "_b4r1").Cursor()
	b.ConcatJoin(name+"_out", b1, b2a, b2b, b3a, b3b, b4) // 1536ch
	return name + "_out"
}
