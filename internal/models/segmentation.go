package models

import "edgeinfer/internal/graph"

// FCNResNet18 builds the PyTorch fcn-resnet18-cityscapes segmentation
// network of Table II row 13 (22 conv, 1 max pool): a ResNet-18 backbone
// without the classifier, a two-conv FCN head over the 21 Cityscapes
// classes, and bilinear-style upsampling back toward input resolution.
func FCNResNet18() *graph.Graph {
	b := graph.NewBuilder("fcn-resnet18-cityscapes", [4]int{1, 3, 512, 256})
	b.Conv("conv1", 64, 7, 2, 3).BatchNorm("bn1").ReLU("relu1").
		MaxPool("pool1", 3, 2, 1)
	channels := []int{64, 128, 256, 512}
	for s, c := range channels {
		for blk := 0; blk < 2; blk++ {
			stride := 1
			if s > 0 && blk == 0 {
				stride = 2
			}
			in := b.Cursor()
			p := [8]string{"res2a", "res2b", "res3a", "res3b", "res4a", "res4b", "res5a", "res5b"}[s*2+blk]
			b.Conv(p+"_conv1", c, 3, stride, 1).BatchNorm(p+"_bn1").ReLU(p+"_relu1").
				Conv(p+"_conv2", c, 3, 1, 1).BatchNorm(p + "_bn2")
			shortcut := in
			if stride != 1 {
				sb := b.From(in)
				sb.Conv(p+"_proj", c, 1, stride, 0).BatchNorm(p + "_projbn")
				shortcut = sb.Cursor()
			}
			b.AddJoin(p+"_add", shortcut).ReLU(p + "_relu")
		}
	}
	// FCN head: 1x1 bottleneck and per-class score conv, then 2x2x
	// upsampling toward input resolution.
	b.Conv("head_conv", 128, 1, 1, 0).ReLU("head_relu").
		Conv("score", 21, 1, 1, 0).
		Upsample("up1").Upsample("up2").
		Softmax("prob")
	b.G.Outputs = []string{"prob"}
	return b.Done()
}
