package models

import (
	"fmt"

	"edgeinfer/internal/graph"
	"edgeinfer/internal/tensor"
)

// convP is shorthand for grouped convolution parameters.
func convP(outC, k, s, p, groups int) tensor.ConvParams {
	return tensor.ConvParams{OutC: outC, Kernel: k, Stride: s, Pad: p, Groups: groups}
}

// detectNetBackbone builds the GoogLeNet-FCN detection network that
// DetectNet, PedNet and FaceNet share (Table II: 59 conv, 12 max pool,
// 22.82 MB each): the GoogLeNet stem and nine inception modules kept
// fully convolutional (no pool4/pool5, no classifier), with a coverage
// head and a bounding-box regression head.
func detectNetBackbone(name string, inputHW int) *graph.Graph {
	b := graph.NewBuilder(name, [4]int{1, 3, inputHW, inputHW})
	b.Conv("conv1", 64, 7, 2, 3).ReLU("relu_conv1").MaxPool("pool1", 3, 2, 1).
		Conv("conv2_reduce", 64, 1, 1, 0).ReLU("relu_conv2r").
		Conv("conv2", 192, 3, 1, 1).ReLU("relu_conv2").
		MaxPool("pool2", 3, 2, 1)
	cur := inception(b, "i3a", "pool2", 64, 96, 128, 16, 32, 32)
	cur = inception(b, "i3b", cur, 128, 128, 192, 32, 96, 64)
	cur = b.From(cur).MaxPool("pool3", 3, 2, 1).Cursor()
	cur = inception(b, "i4a", cur, 192, 96, 208, 16, 48, 64)
	cur = inception(b, "i4b", cur, 160, 112, 224, 24, 64, 64)
	cur = inception(b, "i4c", cur, 128, 128, 256, 24, 64, 64)
	cur = inception(b, "i4d", cur, 112, 144, 288, 32, 64, 64)
	cur = inception(b, "i4e", cur, 256, 160, 320, 32, 128, 128)
	cur = inception(b, "i5a", cur, 256, 160, 320, 32, 128, 128)
	cur = inception(b, "i5b", cur, 384, 192, 384, 48, 128, 128)
	// DetectNet heads: per-cell coverage confidence and box regression.
	cov := b.From(cur).Conv("coverage", 1, 1, 1, 0).Sigmoid("coverage_sig").Cursor()
	bbox := b.From(cur).Conv("bboxes", 4, 1, 1, 0).Cursor()
	b.G.Outputs = []string{cov, bbox}
	g := b.Done()
	g.Task = "detection"
	return g
}

// DetectNetCocoDog builds the DetectNet dog detector (Table II row 7).
func DetectNetCocoDog() *graph.Graph { return detectNetBackbone("detectnet-coco-dog", 480) }

// PedNet builds the multi-ped DetectNet variant (Table II row 8).
func PedNet() *graph.Graph { return detectNetBackbone("pednet", 512) }

// FaceNet builds the face-detection DetectNet variant (Table II row 10).
func FaceNet() *graph.Graph { return detectNetBackbone("facenet", 360) }

// TinyYOLOv3 builds the 13-conv/6-maxpool Darknet Tiny-YOLOv3 (Table II
// row 9) with its two detection heads and the upsample+route branch.
func TinyYOLOv3() *graph.Graph {
	b := graph.NewBuilder("tiny-yolov3", [4]int{1, 3, 416, 416})
	c := 16
	for i := 1; i <= 5; i++ {
		b.Conv(fmt.Sprintf("conv%d", i), c, 3, 1, 1).
			BatchNorm(fmt.Sprintf("bn%d", i)).
			LeakyReLU(fmt.Sprintf("leaky%d", i), 0.1).
			MaxPool(fmt.Sprintf("pool%d", i), 2, 2, 0)
		c *= 2
	}
	// conv5 output (256ch @ 26x26) feeds the route to the second head.
	route26 := "leaky5"
	_ = route26
	b.From("pool5").Conv("conv6", 512, 3, 1, 1).BatchNorm("bn6").LeakyReLU("leaky6", 0.1).
		MaxPool("pool6", 3, 1, 1). // stride-1 pool, keeps 13x13
		Conv("conv7", 1024, 3, 1, 1).BatchNorm("bn7").LeakyReLU("leaky7", 0.1).
		Conv("conv8", 256, 1, 1, 0).BatchNorm("bn8").LeakyReLU("leaky8", 0.1)
	// Head 1 at 13x13.
	b.From("leaky8").Conv("conv9", 512, 3, 1, 1).BatchNorm("bn9").LeakyReLU("leaky9", 0.1).
		Conv("conv10", 255, 1, 1, 0)
	// Head 2: upsample to 26x26 and route with conv5's features.
	b.From("leaky8").Conv("conv11", 128, 1, 1, 0).BatchNorm("bn11").LeakyReLU("leaky11", 0.1).
		Upsample("upsample")
	b.ConcatJoin("route", "upsample", "leaky5")
	b.From("route").Conv("conv12", 256, 3, 1, 1).BatchNorm("bn12").LeakyReLU("leaky12", 0.1).
		Conv("conv13", 255, 1, 1, 0)
	b.G.Outputs = []string{"conv10", "conv13"}
	g := b.Done()
	return g
}

// MobileNetV1 builds the SSD-MobileNet-v1 detector of Table II row 11:
// the 27-conv depthwise-separable backbone plus a combined detection head
// (28 conv, 1 max pool).
func MobileNetV1() *graph.Graph {
	b := graph.NewBuilder("mobilenetv1", [4]int{1, 3, 320, 320})
	b.Conv("conv0", 32, 3, 2, 1).BatchNorm("bn0").ReLU("relu0")
	type sep struct{ outC, stride int }
	blocks := []sep{
		{64, 1}, {128, 2}, {128, 1}, {256, 2}, {256, 1}, {512, 2},
		{512, 1}, {512, 1}, {512, 1}, {512, 1}, {512, 1}, {1024, 2}, {1024, 1},
	}
	inC := 32
	for i, blk := range blocks {
		dw := fmt.Sprintf("conv%d_dw", i+1)
		pw := fmt.Sprintf("conv%d_pw", i+1)
		b.G.Add(&graph.Layer{Name: dw, Op: graph.OpConv, Inputs: []string{b.Cursor()},
			Conv: convP(inC, 3, blk.stride, 1, inC)})
		b = b.From(dw)
		b.BatchNorm(dw+"_bn").ReLU(dw+"_relu").
			Conv(pw, blk.outC, 1, 1, 0).BatchNorm(pw + "_bn").ReLU(pw + "_relu")
		inC = blk.outC
	}
	// SSD-style head: a single 3x3 predictor over the final 10x10 grid
	// (6 anchors x (4 box + 39 class logits)).
	b.MaxPool("pool_head", 3, 1, 1).
		Conv("head_pred", 258, 3, 1, 1)
	b.G.Outputs = []string{"head_pred"}
	return b.Done()
}

// SSDInceptionV2 builds the TensorFlow SSD-Inception-v2 detector of
// Table II row 6 (90 conv, 12 max pool): an Inception-v2-style backbone
// of eleven modules, two SSD extra-feature stages and six predictor
// convolutions.
func SSDInceptionV2() *graph.Graph {
	b := graph.NewBuilder("ssd-inceptionv2", [4]int{1, 3, 300, 300})
	b.Conv("conv1", 64, 7, 2, 3).ReLU("relu1").MaxPool("pool1", 3, 2, 1).
		Conv("conv2_reduce", 64, 1, 1, 0).ReLU("relu2r").
		Conv("conv2", 192, 3, 2, 1).ReLU("relu2") // stride-2 conv in place of pool2
	cur := "relu2"
	// Eleven inception-v2 modules (7 conv + 1 max pool each = 77 conv,
	// 11 pools -> 80 conv / 13 pools with the stem... the last module set
	// uses stride-2 pools inside the module chain below).
	type mod struct {
		c1, c3r, c3, d3r, d3, cp int
	}
	mods := []mod{
		{64, 64, 64, 64, 96, 32},
		{64, 64, 96, 64, 96, 64},
		{160, 64, 96, 96, 128, 64},
		{224, 64, 96, 96, 128, 128},
		{192, 96, 128, 96, 128, 128},
		{160, 128, 160, 128, 160, 96},
		{96, 128, 192, 160, 192, 96},
		{352, 192, 320, 160, 224, 128},
		{352, 192, 320, 192, 224, 128},
		{352, 192, 320, 192, 224, 128},
		{352, 192, 320, 192, 224, 128},
	}
	for i, m := range mods {
		name := fmt.Sprintf("m%d", i+1)
		stridePool := i == 3 || i == 7 // downscale entering modules 5 and 9
		cur = inceptionV2(b, name, cur, m, stridePool)
	}
	feat1 := cur // final backbone feature map
	// SSD extra feature layers: two 1x1 + 3x3/2 pairs.
	b.From(feat1).Conv("extra1_1", 256, 1, 1, 0).ReLU("extra1_relu1").
		Conv("extra1_2", 512, 3, 2, 1).ReLU("extra1_relu2")
	feat2 := "extra1_relu2"
	b.From(feat2).Conv("extra2_1", 128, 1, 1, 0).ReLU("extra2_relu1").
		Conv("extra2_2", 256, 3, 2, 1).ReLU("extra2_relu2")
	feat3 := "extra2_relu2"
	// Predictors: class + box conv per feature map.
	var outs []string
	for i, f := range []string{feat1, feat2, feat3} {
		cls := fmt.Sprintf("cls%d", i+1)
		box := fmt.Sprintf("box%d", i+1)
		b.From(f).Conv(cls, 546, 3, 1, 1) // 6 anchors x 91 COCO classes
		b.From(f).Conv(box, 24, 3, 1, 1)  // 6 anchors x 4
		outs = append(outs, cls, box)
	}
	b.G.Outputs = outs
	return b.Done()
}

// inceptionV2 adds one inception-v2 module: 1x1; 1x1-3x3; 1x1-3x3-3x3;
// maxpool-1x1 (7 convs, 1 max pool). When stridePool is set the module's
// convs and pool use stride 2 (the "reduction" modules).
func inceptionV2(b *graph.Builder, name, from string, m struct{ c1, c3r, c3, d3r, d3, cp int }, stridePool bool) string {
	s := 1
	if stridePool {
		s = 2
	}
	var branches []string
	if !stridePool { // reduction modules drop the plain 1x1 branch
		b1 := b.From(from).Conv(name+"_1x1", m.c1, 1, 1, 0).ReLU(name + "_r1").Cursor()
		branches = append(branches, b1)
	} else { // keep conv count at 7: give the double-3x3 branch a third conv
		b1 := b.From(from).Conv(name+"_1x1r", m.c1, 1, 1, 0).ReLU(name+"_r1a").
			Conv(name+"_1x1s", m.c1, 3, s, 1).ReLU(name + "_r1b").Cursor()
		branches = append(branches, b1)
	}
	b2 := b.From(from).Conv(name+"_3x3r", m.c3r, 1, 1, 0).ReLU(name+"_r2a").
		Conv(name+"_3x3", m.c3, 3, s, 1).ReLU(name + "_r2b").Cursor()
	branches = append(branches, b2)
	if !stridePool {
		b3 := b.From(from).Conv(name+"_d3r", m.d3r, 1, 1, 0).ReLU(name+"_r3a").
			Conv(name+"_d3a", m.d3, 3, 1, 1).ReLU(name+"_r3b").
			Conv(name+"_d3b", m.d3, 3, s, 1).ReLU(name + "_r3c").Cursor()
		branches = append(branches, b3)
	} else {
		b3 := b.From(from).Conv(name+"_d3r", m.d3r, 1, 1, 0).ReLU(name+"_r3a").
			Conv(name+"_d3b", m.d3, 3, s, 1).ReLU(name + "_r3c").Cursor()
		branches = append(branches, b3)
	}
	pool := b.From(from).MaxPool(name+"_pool", 3, s, 1).Cursor()
	if m.cp > 0 {
		pool = b.From(pool).Conv(name+"_poolproj", m.cp, 1, 1, 0).ReLU(name + "_r4").Cursor()
	}
	b.ConcatJoin(name+"_out", append(branches, pool)...)
	return name + "_out"
}

// MTCNN builds the three-stage face-detection cascade of Table II row 12
// (12 conv, 6 max pool, 1.9 MB) as a single graph: the P-Net runs on a
// 4x-downscaled view, the R-Net on a 2x view and the O-Net at full
// resolution, mirroring how the cascade's stages see the image pyramid.
func MTCNN() *graph.Graph {
	b := graph.NewBuilder("mtcnn", [4]int{1, 3, 48, 48})

	// P-Net (fully convolutional) on a 12x12 view.
	p := b.From("data").AvgPool("pnet_scale", 4, 4, 0).
		Conv("pnet_conv1", 10, 3, 1, 0).ReLU("pnet_relu1").
		MaxPool("pnet_pool1", 2, 2, 0).
		Conv("pnet_conv2", 16, 3, 1, 0).ReLU("pnet_relu2").
		Conv("pnet_conv3", 32, 3, 1, 0).ReLU("pnet_relu3").Cursor()
	pCls := b.From(p).Conv("pnet_cls", 2, 1, 1, 0).Softmax("pnet_prob").Cursor()
	pBox := b.From(p).Conv("pnet_box", 4, 1, 1, 0).Cursor()

	// R-Net on a 24x24 view.
	r := b.From("data").AvgPool("rnet_scale", 2, 2, 0).
		Conv("rnet_conv1", 28, 3, 1, 0).ReLU("rnet_relu1").
		MaxPool("rnet_pool1", 3, 2, 0).
		Conv("rnet_conv2", 48, 3, 1, 0).ReLU("rnet_relu2").
		MaxPool("rnet_pool2", 3, 2, 0).
		Conv("rnet_conv3", 64, 2, 1, 0).ReLU("rnet_relu3").
		FC("rnet_fc", 224).ReLU("rnet_relu4").Cursor()
	rCls := b.From(r).FC("rnet_cls", 2).Softmax("rnet_prob").Cursor()
	rBox := b.From(r).FC("rnet_box", 4).Cursor()

	// O-Net at 48x48.
	o := b.From("data").
		Conv("onet_conv1", 32, 3, 1, 0).ReLU("onet_relu1").
		MaxPool("onet_pool1", 3, 2, 0).
		Conv("onet_conv2", 64, 3, 1, 0).ReLU("onet_relu2").
		MaxPool("onet_pool2", 3, 2, 0).
		Conv("onet_conv3", 64, 3, 1, 0).ReLU("onet_relu3").
		MaxPool("onet_pool3", 2, 2, 0).
		Conv("onet_conv4", 128, 2, 1, 0).ReLU("onet_relu4").
		FC("onet_fc", 448).ReLU("onet_relu5").Cursor()
	oCls := b.From(o).FC("onet_cls", 2).Softmax("onet_prob").Cursor()
	oBox := b.From(o).FC("onet_box", 4).Cursor()
	oLmk := b.From(o).FC("onet_landmarks", 10).Cursor()

	b.G.Outputs = []string{pCls, pBox, rCls, rBox, oCls, oBox, oLmk}
	return b.Done()
}
