package models

import (
	"fmt"

	"edgeinfer/internal/dataset"
	"edgeinfer/internal/fixrand"
	"edgeinfer/internal/graph"
	"edgeinfer/internal/tensor"
)

// Numeric proxies: reduced-scale instances of the classification models
// that actually compute. Full-scale numeric inference of (say) VGG-16
// over 60k images is intractable in pure Go and irrelevant to the
// paper's claims, so accuracy and output-consistency experiments run on
// proxies that preserve what matters:
//
//   - a model-specific convolutional feature extractor (depth and pooling
//     cadence scaled down from the real architecture), followed by
//   - a template-matching classifier head whose FC weights are the class
//     templates pushed through the same extractor. Deeper/smoother
//     extractors average away more observation noise, reproducing the
//     paper's per-model accuracy ordering (VGG < ResNet < AlexNet error).
//
// The "un-optimized" proxy carries a dense low-magnitude perturbation on
// its head weights — the overfitting the paper blames for un-optimized
// models' higher error. The engine builder's magnitude pruning and
// quantization shrink that perturbation, mechanically reproducing
// Finding 1 (TensorRT slightly improves accuracy).

// ProxyOptions tunes proxy construction.
type ProxyOptions struct {
	// OverfitSigma is the relative amplitude of the dense perturbation on
	// the head weights (relative to the weight RMS).
	OverfitSigma float64
	// Classes overrides the class count (default dataset.NumClasses).
	Classes int
	// Seed must match the dataset seed so templates line up.
	Seed string
}

// DefaultProxyOptions mirrors the experiment defaults.
func DefaultProxyOptions() ProxyOptions {
	return ProxyOptions{OverfitSigma: 0.45, Classes: dataset.NumClasses, Seed: "imagenet-proxy"}
}

// proxySpec captures how a model's architecture scales down: smoothing
// depth and pooling cadence derived from the real network's depth.
type proxySpec struct {
	convs     int
	poolAfter map[int]bool // pool after i-th conv (1-based)
}

// Depth ordering: more smoothing convs blur the (correlated) class
// templates into each other, so lossier extractors err more. AlexNet's
// aggressive stride-4 stem makes it the lossiest of the paper's
// classifiers (45% top-1 error vs VGG's 34%), so its proxy smooths most.
var proxySpecs = map[string]proxySpec{
	"alexnet":     {convs: 4, poolAfter: map[int]bool{2: true, 4: true}},
	"googlenet":   {convs: 3, poolAfter: map[int]bool{1: true, 3: true}},
	"resnet18":    {convs: 3, poolAfter: map[int]bool{2: true, 3: true}},
	"inceptionv4": {convs: 3, poolAfter: map[int]bool{1: true, 2: true}},
	"vgg16":       {convs: 2, poolAfter: map[int]bool{1: true, 2: true}},
}

// HasProxy reports whether a numeric proxy is defined for the model.
func HasProxy(name string) bool {
	_, ok := proxySpecs[name]
	return ok
}

// BuildProxy constructs the numeric proxy for a classification model.
// The returned graph is finalized with materialized weights; it is the
// "un-optimized" model, ready for core.Build or direct execution.
func BuildProxy(name string, opts ProxyOptions) (*graph.Graph, error) {
	spec, ok := proxySpecs[name]
	if !ok {
		return nil, fmt.Errorf("models: no numeric proxy for %q", name)
	}
	if opts.Classes == 0 {
		opts.Classes = dataset.NumClasses
	}
	if opts.Seed == "" {
		opts.Seed = "imagenet-proxy"
	}
	templates := dataset.Templates(opts.Seed, opts.Classes)

	// Extractor graph (shared weights for template embedding and the
	// final proxy).
	extractor := buildExtractor(name+"-extractor", spec)
	if err := extractor.Finalize(); err != nil {
		return nil, err
	}
	featShape := extractor.OutputShapes()[0]
	featDim := featShape[1] * featShape[2] * featShape[3]

	// Head weights: embedded class templates, centered by the mean
	// embedding. Centering never changes the argmax (it shifts every
	// class score by the same amount) but strips the shared-base
	// component, leaving sparse discriminative weights — the structure
	// magnitude pruning exploits.
	w := tensor.New(1, opts.Classes*featDim, 1, 1)
	mean := make([]float32, featDim)
	for c, tpl := range templates {
		outs, err := extractor.Execute(tpl)
		if err != nil {
			return nil, fmt.Errorf("models: embedding template %d: %w", c, err)
		}
		copy(w.Data[c*featDim:(c+1)*featDim], outs[0].Data)
		for i, v := range outs[0].Data {
			mean[i] += v / float32(opts.Classes)
		}
	}
	for c := 0; c < opts.Classes; c++ {
		row := w.Data[c*featDim : (c+1)*featDim]
		var rowMax float32
		for i := 0; i < featDim; i++ {
			row[i] -= mean[i]
			if a := absf32(row[i]); a > rowMax {
				rowMax = a
			}
		}
		// A trained classifier concentrates on the discriminative
		// coordinates; keep only the strong ones (weights end up bimodal:
		// zero or large), as L1-regularized training would produce.
		thresh := 0.25 * rowMax
		for i := 0; i < featDim; i++ {
			if a := absf32(row[i]); a < thresh {
				row[i] = 0
			}
		}
	}
	// Overfit perturbation: training on finite noisy data fits noise in
	// directions the true signal does not support, so the perturbation
	// concentrates on near-zero weight coordinates (plus a small dense
	// component everywhere). Magnitude pruning removes most of it — the
	// paper's explanation for why TensorRT's compression slightly
	// improves accuracy.
	if opts.OverfitSigma > 0 {
		var sumsq float64
		for _, v := range w.Data {
			sumsq += float64(v) * float64(v)
		}
		rms := sqrtf(sumsq / float64(len(w.Data)))
		src := fixrand.NewKeyed("overfit/" + name + "/" + opts.Seed)
		eps := float32(opts.OverfitSigma) * rms
		for i := range w.Data {
			if w.Data[i] == 0 {
				// Bounded (uniform) perturbation on the unsupported
				// coordinates: each entry is individually below any
				// sensible pruning threshold, but collectively the noise
				// shifts decisions on near-boundary inputs.
				w.Data[i] = eps * float32(2*src.Float64()-1)
			}
		}
	}

	// Full proxy: extractor + FC head + softmax.
	g := buildExtractor(name, spec)
	fc := &graph.Layer{Name: "fc_head", Op: graph.OpFC, Inputs: []string{"feat"},
		OutUnits: opts.Classes, Weights: map[string]*tensor.Tensor{"w": w, "b": tensor.NewVec(opts.Classes)}}
	g.Add(fc)
	g.Add(&graph.Layer{Name: "prob", Op: graph.OpSoftmax, Inputs: []string{"fc_head"}})
	g.Outputs = []string{"prob"}
	// Copy the extractor weights (identical construction, same seed) —
	// already in place since buildExtractor materializes deterministically.
	if err := g.Finalize(); err != nil {
		return nil, err
	}
	g.Task = "classification"
	if info, err := Lookup(name); err == nil {
		g.Framework = info.Framework
	}
	return g, nil
}

func sqrtf(v float64) float32 {
	if v <= 0 {
		return 1
	}
	x := v
	for i := 0; i < 30; i++ {
		x = 0.5 * (x + v/x)
	}
	return float32(x)
}

// buildExtractor constructs the smoothing feature extractor: depthwise
// binomial 3x3 convolutions (plus ReLU-free linear chain so templates
// embed linearly) with the spec's pooling cadence, ending in a layer
// named "feat".
func buildExtractor(name string, spec proxySpec) *graph.Graph {
	g := graph.New(name, [4]int{1, dataset.ImgC, dataset.ImgHW, dataset.ImgHW})
	prev := "data"
	for i := 1; i <= spec.convs; i++ {
		conv := fmt.Sprintf("smooth%d", i)
		l := &graph.Layer{Name: conv, Op: graph.OpConv, Inputs: []string{prev},
			Conv:    tensor.ConvParams{OutC: dataset.ImgC, Kernel: 3, Stride: 1, Pad: 1, Groups: dataset.ImgC},
			Weights: map[string]*tensor.Tensor{"w": binomialKernel(dataset.ImgC)},
		}
		g.Add(l)
		prev = conv
		if spec.poolAfter[i] {
			pool := fmt.Sprintf("pool%d", i)
			g.Add(&graph.Layer{Name: pool, Op: graph.OpAvgPool, Inputs: []string{prev},
				Pool: tensor.PoolParams{Kernel: 2, Stride: 2}})
			prev = pool
		}
	}
	g.Add(&graph.Layer{Name: "feat", Op: graph.OpFlatten, Inputs: []string{prev}})
	g.Outputs = []string{"feat"}
	return g
}

// binomialKernel returns depthwise [1 2 1]x[1 2 1]/16 smoothing weights.
func binomialKernel(channels int) *tensor.Tensor {
	w := tensor.New(channels, 1, 3, 3)
	coeff := []float32{1, 2, 1, 2, 4, 2, 1, 2, 1}
	for c := 0; c < channels; c++ {
		for i, v := range coeff {
			w.Data[c*9+i] = v / 16
		}
	}
	return w
}

func absf32(v float32) float32 {
	if v < 0 {
		return -v
	}
	return v
}
