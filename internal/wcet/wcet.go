// Package wcet provides the worst-case-execution-time analysis the
// paper's ADAS discussion calls for (§VI-A): empirical WCET estimation
// with safety margins, deadline-miss accounting, cross-rebuild WCET
// stability checks, and end-to-end pipeline budgets. The paper's point —
// that engine rebuilds invalidate WCET certification — becomes a
// checkable property here.
package wcet

import (
	"fmt"
	"math"
	"sort"

	"edgeinfer/internal/core"
	"edgeinfer/internal/gpusim"
)

// Profile is an empirical latency profile of one engine on one device.
type Profile struct {
	Engine  string
	Samples []float64 // seconds, sorted ascending
	MeanSec float64
	P99Sec  float64
	MaxSec  float64
	StdSec  float64
}

// Measure runs the engine n times on the device (memcpy excluded — the
// steady-state serving path keeps weights resident) and returns its
// profile.
func Measure(e *core.Engine, dev *gpusim.Device, n int) Profile {
	if n < 1 {
		n = 1
	}
	samples := make([]float64, n)
	var sum float64
	for i := 0; i < n; i++ {
		samples[i] = e.Run(core.RunConfig{Device: dev, RunIndex: i}).LatencySec
		sum += samples[i]
	}
	sort.Float64s(samples)
	mean := sum / float64(n)
	var sq float64
	for _, s := range samples {
		sq += (s - mean) * (s - mean)
	}
	return Profile{
		Engine:  e.Key(),
		Samples: samples,
		MeanSec: mean,
		P99Sec:  Percentile(samples, 99),
		MaxSec:  samples[n-1],
		StdSec:  math.Sqrt(sq / float64(n)),
	}
}

// Percentile returns the p-th percentile of sorted samples (nearest-rank).
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	idx := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

// WCETSec returns the certified worst case: the observed maximum plus a
// safety margin (fraction of the max, e.g. 0.2 for 20%).
func (p Profile) WCETSec(margin float64) float64 {
	return p.MaxSec * (1 + margin)
}

// MissRate returns the fraction of samples exceeding the deadline. An
// empty profile has no misses (rate 0), not a NaN.
func (p Profile) MissRate(deadlineSec float64) float64 {
	if len(p.Samples) == 0 {
		return 0
	}
	misses := 0
	for _, s := range p.Samples {
		if s > deadlineSec {
			misses++
		}
	}
	return float64(misses) / float64(len(p.Samples))
}

// Certification is the verdict of certifying one engine build against a
// deadline.
type Certification struct {
	Profile  Profile
	Deadline float64
	Margin   float64
	WCET     float64
	Passes   bool
}

// Certify checks an engine's measured WCET (with margin) against a
// deadline.
func Certify(e *core.Engine, dev *gpusim.Device, runs int, deadlineSec, margin float64) Certification {
	prof := Measure(e, dev, runs)
	w := prof.WCETSec(margin)
	return Certification{Profile: prof, Deadline: deadlineSec, Margin: margin, WCET: w, Passes: w <= deadlineSec}
}

// RebuildStability re-certifies several independent builds of the same
// model and reports whether certification is stable — the paper's
// hazard is exactly that it is not.
type RebuildStability struct {
	Certs        []Certification
	AllPass      bool
	AnyPass      bool
	WCETSpreadMS float64
}

// CheckRebuilds certifies builds 1..n of a model graph on a device.
func CheckRebuilds(build func(id int) (*core.Engine, error), dev *gpusim.Device, n, runs int, deadlineSec, margin float64) (RebuildStability, error) {
	if n < 1 {
		return RebuildStability{}, fmt.Errorf("wcet: need at least one build")
	}
	res := RebuildStability{AllPass: true}
	lo, hi := math.Inf(1), math.Inf(-1)
	for id := 1; id <= n; id++ {
		e, err := build(id)
		if err != nil {
			return RebuildStability{}, fmt.Errorf("wcet: build %d: %w", id, err)
		}
		c := Certify(e, dev, runs, deadlineSec, margin)
		res.Certs = append(res.Certs, c)
		res.AllPass = res.AllPass && c.Passes
		res.AnyPass = res.AnyPass || c.Passes
		lo = math.Min(lo, c.WCET)
		hi = math.Max(hi, c.WCET)
	}
	res.WCETSpreadMS = (hi - lo) * 1e3
	return res, nil
}

// Stage is one step of an end-to-end real-time pipeline.
type Stage struct {
	Name   string
	DurSec float64
}

// PipelineBudget schedules stages back-to-back on a stream and reports
// the makespan against a budget.
type PipelineBudget struct {
	Stages      []Stage
	MakespanSec float64
	BudgetSec   float64
	Fits        bool
}

// AnalyzePipeline runs the stages through a gpusim stream timeline.
func AnalyzePipeline(dev *gpusim.Device, budgetSec float64, stages ...Stage) PipelineBudget {
	ctx := gpusim.NewContext(dev)
	stream := ctx.NewStream()
	t := 0.0
	for _, s := range stages {
		t = stream.Enqueue(t, s.DurSec)
	}
	return PipelineBudget{Stages: stages, MakespanSec: t, BudgetSec: budgetSec, Fits: t <= budgetSec}
}
