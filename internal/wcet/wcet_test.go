package wcet

import (
	"testing"

	"edgeinfer/internal/core"
	"edgeinfer/internal/gpusim"
	"edgeinfer/internal/models"
)

func pednetEngine(t *testing.T, id int) *core.Engine {
	t.Helper()
	e, err := core.Build(models.MustBuild("pednet"), core.DefaultConfig(gpusim.XavierNX(), id))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func nxDev() *gpusim.Device {
	return gpusim.NewDevice(gpusim.XavierNX(), gpusim.PaperLatencyClock(gpusim.XavierNX()))
}

func TestMeasureProfile(t *testing.T) {
	p := Measure(pednetEngine(t, 1), nxDev(), 50)
	if p.MeanSec <= 0 || p.MaxSec < p.MeanSec || p.P99Sec > p.MaxSec {
		t.Fatalf("profile inconsistent: %+v", p)
	}
	if p.StdSec <= 0 {
		t.Fatal("run-to-run jitter missing")
	}
	for i := 1; i < len(p.Samples); i++ {
		if p.Samples[i] < p.Samples[i-1] {
			t.Fatal("samples not sorted")
		}
	}
}

func TestPercentile(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if Percentile(s, 50) != 5 {
		t.Fatalf("p50 %v", Percentile(s, 50))
	}
	if Percentile(s, 100) != 10 || Percentile(s, 0) != 1 {
		t.Fatal("extremes wrong")
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile")
	}
}

func TestWCETWithMargin(t *testing.T) {
	p := Profile{MaxSec: 0.010}
	if p.WCETSec(0.2) != 0.012 {
		t.Fatalf("wcet %v", p.WCETSec(0.2))
	}
}

func TestMissRate(t *testing.T) {
	p := Profile{Samples: []float64{1, 2, 3, 4}}
	if p.MissRate(2.5) != 0.5 {
		t.Fatalf("miss rate %v", p.MissRate(2.5))
	}
}

func TestCertify(t *testing.T) {
	e := pednetEngine(t, 1)
	pass := Certify(e, nxDev(), 30, 0.040, 0.2)
	if !pass.Passes {
		t.Fatalf("pednet should certify against 40ms: WCET %.1fms", pass.WCET*1e3)
	}
	failCert := Certify(e, nxDev(), 30, 0.005, 0.2)
	if failCert.Passes {
		t.Fatal("pednet cannot certify against 5ms")
	}
}

func TestCheckRebuildsSpread(t *testing.T) {
	dev := nxDev()
	res, err := CheckRebuilds(func(id int) (*core.Engine, error) {
		return core.Build(models.MustBuild("pednet"), core.DefaultConfig(gpusim.XavierNX(), id))
	}, dev, 3, 30, 0.040, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Certs) != 3 {
		t.Fatalf("%d certs", len(res.Certs))
	}
	if res.WCETSpreadMS <= 0 {
		t.Fatal("rebuilt engines should have different WCETs (the paper's hazard)")
	}
	if !res.AnyPass {
		t.Fatal("no build certifies against a generous deadline")
	}
}

func TestCheckRebuildsValidation(t *testing.T) {
	if _, err := CheckRebuilds(nil, nxDev(), 0, 1, 1, 0); err == nil {
		t.Fatal("zero builds accepted")
	}
}

func TestAnalyzePipeline(t *testing.T) {
	dev := nxDev()
	pb := AnalyzePipeline(dev, 0.030,
		Stage{"capture", 0.002}, Stage{"preprocess", 0.0015},
		Stage{"inference", 0.020}, Stage{"brake", 0.0008})
	if !pb.Fits {
		t.Fatalf("pipeline should fit 30ms: makespan %.1fms", pb.MakespanSec*1e3)
	}
	if pb.MakespanSec != 0.002+0.0015+0.020+0.0008 {
		t.Fatalf("makespan %v", pb.MakespanSec)
	}
	tight := AnalyzePipeline(dev, 0.010, Stage{"inference", 0.020})
	if tight.Fits {
		t.Fatal("over-budget pipeline reported as fitting")
	}
}
