package wcet

import (
	"testing"

	"edgeinfer/internal/core"
	"edgeinfer/internal/gpusim"
	"edgeinfer/internal/models"
)

func pednetEngine(t *testing.T, id int) *core.Engine {
	t.Helper()
	e, err := core.Build(models.MustBuild("pednet"), core.DefaultConfig(gpusim.XavierNX(), id))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func nxDev() *gpusim.Device {
	return gpusim.NewDevice(gpusim.XavierNX(), gpusim.PaperLatencyClock(gpusim.XavierNX()))
}

func TestMeasureProfile(t *testing.T) {
	p := Measure(pednetEngine(t, 1), nxDev(), 50)
	if p.MeanSec <= 0 || p.MaxSec < p.MeanSec || p.P99Sec > p.MaxSec {
		t.Fatalf("profile inconsistent: %+v", p)
	}
	if p.StdSec <= 0 {
		t.Fatal("run-to-run jitter missing")
	}
	for i := 1; i < len(p.Samples); i++ {
		if p.Samples[i] < p.Samples[i-1] {
			t.Fatal("samples not sorted")
		}
	}
}

func TestPercentile(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if Percentile(s, 50) != 5 {
		t.Fatalf("p50 %v", Percentile(s, 50))
	}
	if Percentile(s, 100) != 10 || Percentile(s, 0) != 1 {
		t.Fatal("extremes wrong")
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile")
	}
}

func TestWCETWithMargin(t *testing.T) {
	p := Profile{MaxSec: 0.010}
	if p.WCETSec(0.2) != 0.012 {
		t.Fatalf("wcet %v", p.WCETSec(0.2))
	}
}

func TestMissRate(t *testing.T) {
	p := Profile{Samples: []float64{1, 2, 3, 4}}
	if p.MissRate(2.5) != 0.5 {
		t.Fatalf("miss rate %v", p.MissRate(2.5))
	}
}

func TestMissRateEdges(t *testing.T) {
	// An empty profile has no misses — 0, never NaN.
	var empty Profile
	if r := empty.MissRate(0.010); r != 0 {
		t.Fatalf("empty profile miss rate %v, want 0", r)
	}
	p := Profile{Samples: []float64{1, 2, 3, 4}}
	// Zero budget: every sample misses.
	if r := p.MissRate(0); r != 1 {
		t.Fatalf("zero-budget miss rate %v, want 1", r)
	}
	// A deadline exactly at a sample is met (strictly-greater misses).
	if r := p.MissRate(4); r != 0 {
		t.Fatalf("deadline==max miss rate %v, want 0", r)
	}
	// A deadline beyond the max misses nothing.
	if r := p.MissRate(100); r != 0 {
		t.Fatalf("generous deadline miss rate %v, want 0", r)
	}
}

func TestPercentileEdges(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	// Sub-percent percentiles stay inside the sample range (the
	// nearest-rank index clamps at 0).
	if Percentile(s, 1.0) != 1 {
		t.Fatalf("p1 %v, want first sample", Percentile(s, 1.0))
	}
	if Percentile(s, 0.1) != 1 {
		t.Fatalf("p0.1 %v, want first sample", Percentile(s, 0.1))
	}
	// Out-of-range p clamps to the extremes rather than indexing out of
	// bounds.
	if Percentile(s, -5) != 1 || Percentile(s, 250) != 10 {
		t.Fatal("out-of-range percentiles must clamp")
	}
	// A single sample answers every percentile.
	one := []float64{7}
	for _, p := range []float64{0, 1, 50, 99, 100} {
		if Percentile(one, p) != 7 {
			t.Fatalf("single-sample p%v = %v", p, Percentile(one, p))
		}
	}
}

func TestWCETSecEdges(t *testing.T) {
	// An empty profile certifies a zero bound: MaxSec is the zero value
	// and any margin scales it to zero — the caller must measure first.
	var empty Profile
	if w := empty.WCETSec(0.2); w != 0 {
		t.Fatalf("empty profile WCET %v, want 0", w)
	}
	// Zero margin certifies the observed max as-is.
	p := Profile{MaxSec: 0.010}
	if w := p.WCETSec(0); w != 0.010 {
		t.Fatalf("zero-margin WCET %v", w)
	}
}

func TestAnalyzePipelineEdges(t *testing.T) {
	dev := nxDev()
	// No stages: an empty pipeline fits any non-negative budget with a
	// zero makespan.
	pb := AnalyzePipeline(dev, 0)
	if pb.MakespanSec != 0 || !pb.Fits {
		t.Fatalf("empty pipeline: makespan %v fits %v, want 0/true", pb.MakespanSec, pb.Fits)
	}
	// Zero budget with real stages cannot fit.
	tight := AnalyzePipeline(dev, 0, Stage{"inference", 0.020})
	if tight.Fits {
		t.Fatal("zero-budget pipeline reported as fitting")
	}
	if tight.MakespanSec != 0.020 {
		t.Fatalf("makespan %v", tight.MakespanSec)
	}
}

func TestCertify(t *testing.T) {
	e := pednetEngine(t, 1)
	pass := Certify(e, nxDev(), 30, 0.040, 0.2)
	if !pass.Passes {
		t.Fatalf("pednet should certify against 40ms: WCET %.1fms", pass.WCET*1e3)
	}
	failCert := Certify(e, nxDev(), 30, 0.005, 0.2)
	if failCert.Passes {
		t.Fatal("pednet cannot certify against 5ms")
	}
}

func TestCheckRebuildsSpread(t *testing.T) {
	dev := nxDev()
	res, err := CheckRebuilds(func(id int) (*core.Engine, error) {
		return core.Build(models.MustBuild("pednet"), core.DefaultConfig(gpusim.XavierNX(), id))
	}, dev, 3, 30, 0.040, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Certs) != 3 {
		t.Fatalf("%d certs", len(res.Certs))
	}
	if res.WCETSpreadMS <= 0 {
		t.Fatal("rebuilt engines should have different WCETs (the paper's hazard)")
	}
	if !res.AnyPass {
		t.Fatal("no build certifies against a generous deadline")
	}
}

func TestCheckRebuildsValidation(t *testing.T) {
	if _, err := CheckRebuilds(nil, nxDev(), 0, 1, 1, 0); err == nil {
		t.Fatal("zero builds accepted")
	}
}

func TestAnalyzePipeline(t *testing.T) {
	dev := nxDev()
	pb := AnalyzePipeline(dev, 0.030,
		Stage{"capture", 0.002}, Stage{"preprocess", 0.0015},
		Stage{"inference", 0.020}, Stage{"brake", 0.0008})
	if !pb.Fits {
		t.Fatalf("pipeline should fit 30ms: makespan %.1fms", pb.MakespanSec*1e3)
	}
	if pb.MakespanSec != 0.002+0.0015+0.020+0.0008 {
		t.Fatalf("makespan %v", pb.MakespanSec)
	}
	tight := AnalyzePipeline(dev, 0.010, Stage{"inference", 0.020})
	if tight.Fits {
		t.Fatal("over-budget pipeline reported as fitting")
	}
}
