package metrics

import "testing"

func TestTransitionsCountAndRender(t *testing.T) {
	tr := NewTransitions()
	if tr.String() != "no transitions" {
		t.Fatalf("empty render %q", tr.String())
	}
	tr.Add("healthy", "suspect")
	tr.Add("suspect", "quarantined")
	tr.Add("healthy", "suspect")
	if got := tr.Get("healthy", "suspect"); got != 2 {
		t.Fatalf("healthy->suspect = %d, want 2", got)
	}
	if got := tr.Get("suspect", "healthy"); got != 0 {
		t.Fatalf("unrecorded edge = %d, want 0", got)
	}
	if tr.Total() != 3 {
		t.Fatalf("total %d, want 3", tr.Total())
	}
	// Deterministic sorted rendering, independent of insertion order.
	want := "healthy->suspect=2 suspect->quarantined=1"
	if tr.String() != want {
		t.Fatalf("render %q, want %q", tr.String(), want)
	}
	snap := tr.Snapshot()
	snap["healthy->suspect"] = 99
	if tr.Get("healthy", "suspect") != 2 {
		t.Fatal("snapshot aliases the live counter")
	}
}

func TestTransitionsZeroValue(t *testing.T) {
	var tr Transitions
	tr.Add("a", "b")
	if tr.Get("a", "b") != 1 {
		t.Fatal("zero-value Transitions unusable")
	}
}
