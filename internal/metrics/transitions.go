package metrics

import (
	"fmt"
	"sort"
	"strings"
)

// Transitions counts labeled state-machine transitions ("healthy" →
// "suspect", "quarantined" → "rebuilding", …). The serving fleet's
// supervisor records every replica state change here, so a health
// endpoint can report not just where each replica is but how it got
// there. Methods are not synchronized — the owner holds its own lock,
// as with Counters in internal/faults.
type Transitions struct {
	counts map[string]uint64
}

// NewTransitions returns an empty transition counter.
func NewTransitions() *Transitions {
	return &Transitions{counts: map[string]uint64{}}
}

func transitionKey(from, to string) string { return from + "->" + to }

// Add records one from→to transition.
func (t *Transitions) Add(from, to string) {
	if t.counts == nil {
		t.counts = map[string]uint64{}
	}
	t.counts[transitionKey(from, to)]++
}

// Get returns the count of one from→to transition.
func (t *Transitions) Get(from, to string) uint64 {
	return t.counts[transitionKey(from, to)]
}

// Total returns the number of transitions recorded across all edges.
func (t *Transitions) Total() uint64 {
	var n uint64
	for _, c := range t.counts {
		n += c
	}
	return n
}

// Snapshot returns a copy of the edge counts, keyed "from->to".
func (t *Transitions) Snapshot() map[string]uint64 {
	out := make(map[string]uint64, len(t.counts))
	for k, v := range t.counts {
		out[k] = v
	}
	return out
}

// String renders the non-zero edges in deterministic (sorted) order.
func (t *Transitions) String() string {
	if len(t.counts) == 0 {
		return "no transitions"
	}
	keys := make([]string, 0, len(t.counts))
	for k := range t.counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%d", k, t.counts[k])
	}
	return strings.Join(parts, " ")
}
