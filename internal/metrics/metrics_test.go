package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"edgeinfer/internal/fixrand"
)

func TestTop1Error(t *testing.T) {
	if e := Top1Error([]int{1, 2, 3, 4}, []int{1, 2, 0, 0}); e != 50 {
		t.Fatalf("error %v want 50", e)
	}
	if e := Top1Error(nil, nil); e != 0 {
		t.Fatalf("empty error %v", e)
	}
}

func TestTop1ErrorPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Top1Error([]int{1}, []int{1, 2})
}

func TestMismatches(t *testing.T) {
	if m := Mismatches([]int{1, 2, 3}, []int{1, 0, 3}); m != 1 {
		t.Fatalf("mismatches %d", m)
	}
}

func TestIoUIdentical(t *testing.T) {
	r := Rect{10, 10, 20, 20}
	if IoU(r, r) != 1 {
		t.Fatal("identical boxes should have IoU 1")
	}
}

func TestIoUDisjoint(t *testing.T) {
	if IoU(Rect{0, 0, 5, 5}, Rect{10, 10, 5, 5}) != 0 {
		t.Fatal("disjoint boxes should have IoU 0")
	}
}

func TestIoUHalfOverlap(t *testing.T) {
	// Two 10x10 boxes overlapping in a 5x10 strip: IoU = 50/150.
	got := IoU(Rect{0, 0, 10, 10}, Rect{5, 0, 10, 10})
	if math.Abs(got-1.0/3) > 1e-9 {
		t.Fatalf("IoU %v want 1/3", got)
	}
}

// Property: IoU is symmetric and within [0, 1].
func TestIoUProperties(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		src := fixrand.New(seed)
		a := Rect{src.Intn(50), src.Intn(50), src.Intn(30) + 1, src.Intn(30) + 1}
		b := Rect{src.Intn(50), src.Intn(50), src.Intn(30) + 1, src.Intn(30) + 1}
		ab, ba := IoU(a, b), IoU(b, a)
		return ab == ba && ab >= 0 && ab <= 1
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPrecisionRecall(t *testing.T) {
	truth := []Rect{{0, 0, 10, 10}, {50, 50, 10, 10}}
	pred := []Rect{{0, 0, 10, 10}, {100, 100, 10, 10}}
	p, r := PrecisionRecall(pred, truth, 0.75)
	if p != 50 || r != 50 {
		t.Fatalf("p=%v r=%v want 50/50", p, r)
	}
	p, r = PrecisionRecall(nil, nil, 0.75)
	if p != 100 || r != 100 {
		t.Fatal("empty case should be perfect")
	}
}

func TestPrecisionRecallNoDoubleMatch(t *testing.T) {
	truth := []Rect{{0, 0, 10, 10}}
	pred := []Rect{{0, 0, 10, 10}, {0, 0, 10, 10}}
	p, r := PrecisionRecall(pred, truth, 0.75)
	if p != 50 || r != 100 {
		t.Fatalf("p=%v r=%v; a truth box must match at most one prediction", p, r)
	}
}

func TestLatencies(t *testing.T) {
	s := Latencies([]float64{0.010, 0.012, 0.011})
	if math.Abs(s.MeanMS-11) > 1e-9 {
		t.Fatalf("mean %v", s.MeanMS)
	}
	if s.StdMS <= 0 || s.N != 3 {
		t.Fatalf("stats %+v", s)
	}
	if s.MinMS != 10 || s.MaxMS != 12 {
		t.Fatalf("min/max %v/%v", s.MinMS, s.MaxMS)
	}
	if Latencies(nil).N != 0 {
		t.Fatal("empty latencies")
	}
}

func TestLatencyString(t *testing.T) {
	s := Latencies([]float64{0.0126, 0.0126})
	if s.String() != "12.60 (0.00)" {
		t.Fatalf("string %q", s.String())
	}
}

func TestFPS(t *testing.T) {
	if FPS(0.02) != 50 {
		t.Fatal("fps wrong")
	}
	if FPS(0) != 0 {
		t.Fatal("fps of zero latency")
	}
}

func TestAnomalyCases(t *testing.T) {
	mk := func(a, b, c, d float64) LatencyMatrix {
		return LatencyMatrix{
			CNXRNX:   LatencyStats{MeanMS: a},
			CNXRAGX:  LatencyStats{MeanMS: b},
			CAGXRAGX: LatencyStats{MeanMS: c},
			CAGXRNX:  LatencyStats{MeanMS: d},
		}
	}
	// AGX faster everywhere: no anomalies.
	if s := mk(10, 9, 8, 9).AnomalyString(); s != "none" {
		t.Fatalf("expected none, got %q", s)
	}
	// Case 1: platform-specific engines, AGX slower.
	m := mk(10, 9, 11, 12)
	cases := m.Anomalies()
	if len(cases) != 1 || cases[0] != Case1 {
		t.Fatalf("cases %v", cases)
	}
	// All three.
	m = mk(10, 11, 12, 11)
	if got := m.AnomalyString(); got != "case 1, case 2, case 3" {
		t.Fatalf("got %q", got)
	}
}

func TestPercentileNearestRank(t *testing.T) {
	samples := []float64{5, 1, 4, 2, 3} // sorted: 1 2 3 4 5
	cases := []struct {
		p    float64
		want float64
	}{
		{50, 3}, {20, 1}, {21, 2}, {99, 5}, {100, 5}, {1, 1}, {0, 1}, {150, 5},
	}
	for _, c := range cases {
		if got := Percentile(samples, c.p); got != c.want {
			t.Fatalf("p%.0f = %v, want %v", c.p, got, c.want)
		}
	}
	// Input untouched.
	if samples[0] != 5 {
		t.Fatal("Percentile sorted the caller's slice")
	}
}

func TestPercentilesEmptyAndSingle(t *testing.T) {
	for _, got := range Percentiles(nil, 50, 99, 99.9) {
		t.Helper()
		if got != 0 {
			t.Fatalf("empty percentile %v, want 0", got)
		}
	}
	for _, got := range Percentiles([]float64{7}, 50, 99, 99.9) {
		if got != 7 {
			t.Fatalf("singleton percentile %v, want 7", got)
		}
	}
}

// Every percentile of a set is a member of the set, and percentiles are
// monotone in p.
func TestPercentilesPropertyMembershipMonotone(t *testing.T) {
	src := fixrand.NewKeyed("metrics/percentile")
	samples := make([]float64, 200)
	member := map[float64]bool{}
	for i := range samples {
		samples[i] = src.Float64() * 1e3
		member[samples[i]] = true
	}
	ps := []float64{1, 10, 25, 50, 75, 90, 99, 99.9, 100}
	got := Percentiles(samples, ps...)
	prev := math.Inf(-1)
	for i, v := range got {
		if !member[v] {
			t.Fatalf("p%v = %v is not an observed sample", ps[i], v)
		}
		if v < prev {
			t.Fatalf("percentiles not monotone: p%v = %v < %v", ps[i], v, prev)
		}
		prev = v
	}
}
