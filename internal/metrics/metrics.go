// Package metrics implements the paper's evaluation metrics: top-1
// classification error, IoU-based detection precision/recall, throughput
// (FPS), latency statistics over repeated runs, prediction-mismatch
// counting between engines, and the three-case latency-anomaly
// classification of Table VIII.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Top1Error returns the percentage of predictions that differ from the
// labels. It panics on length mismatch — a harness bug, not a runtime
// condition.
func Top1Error(pred, label []int) float64 {
	if len(pred) != len(label) {
		panic(fmt.Sprintf("metrics: %d predictions vs %d labels", len(pred), len(label)))
	}
	if len(pred) == 0 {
		return 0
	}
	wrong := 0
	for i := range pred {
		if pred[i] != label[i] {
			wrong++
		}
	}
	return 100 * float64(wrong) / float64(len(pred))
}

// Mismatches counts positions where two prediction vectors disagree —
// the paper's Tables V and VI compare engine pairs this way.
func Mismatches(a, b []int) int {
	if len(a) != len(b) {
		panic(fmt.Sprintf("metrics: mismatch lengths %d vs %d", len(a), len(b)))
	}
	n := 0
	for i := range a {
		if a[i] != b[i] {
			n++
		}
	}
	return n
}

// Rect is an axis-aligned rectangle for IoU computation.
type Rect struct{ X, Y, W, H int }

// IoU returns the intersection-over-union of two rectangles.
func IoU(a, b Rect) float64 {
	x1, y1 := max(a.X, b.X), max(a.Y, b.Y)
	x2, y2 := min(a.X+a.W, b.X+b.W), min(a.Y+a.H, b.Y+b.H)
	iw, ih := x2-x1, y2-y1
	if iw <= 0 || ih <= 0 {
		return 0
	}
	inter := float64(iw * ih)
	union := float64(a.W*a.H+b.W*b.H) - inter
	if union <= 0 {
		return 0
	}
	return inter / union
}

// PrecisionRecall matches predictions to ground truth greedily at the
// given IoU threshold (the paper reports precision/recall at IoU 0.75)
// and returns (precision, recall) percentages.
func PrecisionRecall(pred, truth []Rect, iouThresh float64) (float64, float64) {
	if len(pred) == 0 && len(truth) == 0 {
		return 100, 100
	}
	matched := make([]bool, len(truth))
	tp := 0
	for _, p := range pred {
		best, bi := 0.0, -1
		for i, t := range truth {
			if matched[i] {
				continue
			}
			if iou := IoU(p, t); iou > best {
				best, bi = iou, i
			}
		}
		if bi >= 0 && best >= iouThresh {
			matched[bi] = true
			tp++
		}
	}
	prec, rec := 100.0, 100.0
	if len(pred) > 0 {
		prec = 100 * float64(tp) / float64(len(pred))
	}
	if len(truth) > 0 {
		rec = 100 * float64(tp) / float64(len(truth))
	}
	return prec, rec
}

// LatencyStats summarizes repeated latency measurements.
type LatencyStats struct {
	MeanMS, StdMS, MinMS, MaxMS float64
	N                           int
}

// Latencies computes mean/std/min/max over latencies in seconds,
// reporting milliseconds (the paper's unit).
func Latencies(secs []float64) LatencyStats {
	if len(secs) == 0 {
		return LatencyStats{}
	}
	var sum float64
	mn, mx := math.Inf(1), math.Inf(-1)
	for _, s := range secs {
		sum += s
		mn = math.Min(mn, s)
		mx = math.Max(mx, s)
	}
	mean := sum / float64(len(secs))
	var sq float64
	for _, s := range secs {
		sq += (s - mean) * (s - mean)
	}
	std := 0.0
	if len(secs) > 1 {
		std = math.Sqrt(sq / float64(len(secs)-1))
	}
	return LatencyStats{MeanMS: mean * 1e3, StdMS: std * 1e3, MinMS: mn * 1e3, MaxMS: mx * 1e3, N: len(secs)}
}

// String renders "mean (std)" in the paper's table style.
func (l LatencyStats) String() string {
	return fmt.Sprintf("%.2f (%.2f)", l.MeanMS, l.StdMS)
}

// Percentile returns the p-th percentile (0 < p <= 100) of the samples
// by the nearest-rank method: the smallest sample at or above rank
// ceil(p/100 * n). Fleet-level serving reports tails this way — p999 of
// an open-loop run is an actual observed latency, never an interpolated
// value between two. Returns 0 for an empty set; p outside (0, 100]
// clamps to the nearest bound. The input is not modified.
func Percentile(samples []float64, p float64) float64 {
	return Percentiles(samples, p)[0]
}

// Percentiles is Percentile over several ranks with one sort: the
// p50/p99/p999 triple of a load run costs one O(n log n) pass.
func Percentiles(samples []float64, ps ...float64) []float64 {
	out := make([]float64, len(ps))
	if len(samples) == 0 {
		return out
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	for i, p := range ps {
		if p <= 0 {
			out[i] = sorted[0]
			continue
		}
		if p > 100 {
			p = 100
		}
		rank := int(math.Ceil(p / 100 * float64(len(sorted))))
		if rank < 1 {
			rank = 1
		}
		out[i] = sorted[rank-1]
	}
	return out
}

// FPS converts a per-frame latency in seconds to frames per second.
func FPS(latencySec float64) float64 {
	if latencySec <= 0 {
		return 0
	}
	return 1 / latencySec
}

// AnomalyCase is the paper's Table VIII classification of "AGX slower
// than NX" anomalies.
type AnomalyCase int

const (
	// Case1 compares platform-specific engines: cNX_rNX vs cAGX_rAGX.
	Case1 AnomalyCase = iota + 1
	// Case2 runs the NX-built engine on both platforms: cNX_rNX vs cNX_rAGX.
	Case2
	// Case3 runs the AGX-built engine on both platforms: cAGX_rNX vs cAGX_rAGX.
	Case3
)

// String implements fmt.Stringer.
func (c AnomalyCase) String() string { return fmt.Sprintf("case %d", int(c)) }

// LatencyMatrix is one model's row of Table VIII: the four
// compile/run-platform combinations.
type LatencyMatrix struct {
	CNXRNX, CNXRAGX, CAGXRAGX, CAGXRNX LatencyStats
}

// Anomalies returns which of the paper's three cases show the AGX-slower
// anomaly, using mean latencies.
func (m LatencyMatrix) Anomalies() []AnomalyCase {
	var out []AnomalyCase
	if m.CAGXRAGX.MeanMS > m.CNXRNX.MeanMS {
		out = append(out, Case1)
	}
	if m.CNXRAGX.MeanMS > m.CNXRNX.MeanMS {
		out = append(out, Case2)
	}
	if m.CAGXRAGX.MeanMS > m.CAGXRNX.MeanMS {
		out = append(out, Case3)
	}
	return out
}

// AnomalyString renders the anomaly set like the paper's last column
// ("case 1, case 2" or "none").
func (m LatencyMatrix) AnomalyString() string {
	cs := m.Anomalies()
	if len(cs) == 0 {
		return "none"
	}
	s := ""
	for i, c := range cs {
		if i > 0 {
			s += ", "
		}
		s += c.String()
	}
	return s
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
