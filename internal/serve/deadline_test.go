package serve_test

// Typed deadline error and per-request deadline variants (issue
// satellite: the serving front-end maps deadline misses to a distinct
// HTTP status and metric, which needs errors.Is, not string matching).

import (
	"errors"
	"testing"

	"edgeinfer/internal/faults"
	"edgeinfer/internal/serve"
)

// stallPlan burns well over a microsecond of simulated latency on every
// attempt (a 2ms stream stall per launch) and fails every launch, so a
// tiny per-request deadline is guaranteed to expire before any
// accelerated tier serves.
func stallPlan(seed string) faults.Plan {
	return faults.Plan{
		Seed:           seed,
		LaunchFailRate: 1,
		StallRate:      1,
		StallSec:       2e-3,
	}
}

// A request whose per-request deadline expires before any tier serves is
// abandoned with the typed error, never answered late and never an
// untyped string.
func TestDoDeadlineAbortsWithTypedError(t *testing.T) {
	_, _, _, inputs := fixture(t)
	ex := newExec(t, stallPlan("dl-abort").New("nx"), nil)
	res, err := ex.DoDeadline(inputs[0], 0, 1e-6)
	if err == nil {
		t.Fatalf("expected deadline abort, got result %+v", res)
	}
	if !errors.Is(err, serve.ErrDeadlineExceeded) {
		t.Fatalf("error %v is not serve.ErrDeadlineExceeded", err)
	}
	st := ex.Stats()
	if st.DeadlineAborts != 1 {
		t.Fatalf("DeadlineAborts = %d, want 1", st.DeadlineAborts)
	}
	if st.DeadlineMisses == 0 {
		t.Fatalf("an aborted request must also count as a deadline miss: %+v", st)
	}
}

// DoBatchDeadline shares the abort contract.
func TestDoBatchDeadlineAbortsWithTypedError(t *testing.T) {
	_, _, _, inputs := fixture(t)
	ex := newExec(t, stallPlan("dl-batch-abort").New("nx"), nil)
	_, err := ex.DoBatchDeadline(inputs[:4], 0, 1e-6)
	if !errors.Is(err, serve.ErrDeadlineExceeded) {
		t.Fatalf("error %v is not serve.ErrDeadlineExceeded", err)
	}
	if got := ex.Stats().DeadlineAborts; got != 1 {
		t.Fatalf("DeadlineAborts = %d, want 1", got)
	}
}

// With a generous per-request deadline on a pristine executor, the
// deadline variants are bit-identical to Do/DoBatch: same tier, same
// latency, same outputs, no misses, no error.
func TestDoDeadlinePristineMatchesDo(t *testing.T) {
	_, _, _, inputs := fixture(t)
	ex := newExec(t, nil, nil)
	want, err := ex.Do(inputs[0], 7)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ex.DoDeadline(inputs[0], 7, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tier != want.Tier || got.LatencySec != want.LatencySec || got.DeadlineMiss {
		t.Fatalf("DoDeadline %+v differs from Do %+v", got, want)
	}
	if !sameOutputs(got.Outputs, want.Outputs) {
		t.Fatal("DoDeadline outputs differ from Do")
	}

	wb, err := ex.DoBatch(inputs[:3], 8)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := ex.DoBatchDeadline(inputs[:3], 8, 10)
	if err != nil {
		t.Fatal(err)
	}
	if gb.LatencySec != wb.LatencySec || gb.Tier != wb.Tier || gb.DeadlineMiss {
		t.Fatalf("DoBatchDeadline %+v differs from DoBatch %+v", gb, wb)
	}
	for i := range wb.Outputs {
		if !sameOutputs(gb.Outputs[i], wb.Outputs[i]) {
			t.Fatalf("batch image %d outputs differ", i)
		}
	}
}

// The per-request budget clamps against the configured deadline: the
// tighter of the two governs. A configured 1µs deadline must abort even
// when the per-request budget is generous.
func TestDoDeadlineClampsAgainstConfig(t *testing.T) {
	_, _, _, inputs := fixture(t)
	ex := newExec(t, stallPlan("dl-clamp").New("nx"), func(c *serve.Config) { c.DeadlineSec = 1e-6 })
	if _, err := ex.DoDeadline(inputs[0], 0, 10); !errors.Is(err, serve.ErrDeadlineExceeded) {
		t.Fatalf("config deadline did not clamp the request budget: err=%v", err)
	}
}

// Do keeps the historical answer-late contract even when the same
// scenario would abort DoDeadline: every request is answered, via FP32,
// with the miss recorded — never ErrDeadlineExceeded.
func TestDoStillAnswersLate(t *testing.T) {
	_, _, _, inputs := fixture(t)
	ex := newExec(t, stallPlan("dl-late").New("nx"), func(c *serve.Config) { c.DeadlineSec = 1e-6 })
	res, err := ex.Do(inputs[0], 0)
	if err != nil {
		t.Fatalf("Do must not return deadline errors: %v", err)
	}
	if res.Tier != serve.TierFP32 || !res.DeadlineMiss || res.Outputs == nil {
		t.Fatalf("late request not answered by FP32 with a recorded miss: %+v", res)
	}
	if got := ex.Stats().DeadlineAborts; got != 0 {
		t.Fatalf("Do counted %d deadline aborts", got)
	}
}
