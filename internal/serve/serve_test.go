package serve_test

import (
	"sync"
	"testing"

	"edgeinfer/internal/core"
	"edgeinfer/internal/dataset"
	"edgeinfer/internal/faults"
	"edgeinfer/internal/gpusim"
	"edgeinfer/internal/graph"
	"edgeinfer/internal/models"
	"edgeinfer/internal/serve"
	"edgeinfer/internal/tensor"
)

var (
	fixtureOnce sync.Once
	fixEngine   *core.Engine
	fixGraph    *graph.Graph
	fixDevice   *gpusim.Device
	fixInputs   []*tensor.Tensor
)

// fixture builds one numeric proxy engine (resnet18 on NX) shared by all
// tests; engines are immutable, so sharing is safe.
func fixture(t *testing.T) (*core.Engine, *graph.Graph, *gpusim.Device, []*tensor.Tensor) {
	t.Helper()
	fixtureOnce.Do(func() {
		g, err := models.BuildProxy("resnet18", models.DefaultProxyOptions())
		if err != nil {
			panic(err)
		}
		spec := gpusim.XavierNX()
		e, err := core.Build(g, core.DefaultConfig(spec, 1))
		if err != nil {
			panic(err)
		}
		fixEngine, fixGraph = e, g
		fixDevice = gpusim.NewDevice(spec, gpusim.PaperLatencyClock(spec))
		for _, s := range dataset.Benign(dataset.DefaultBenign(1))[:16] {
			fixInputs = append(fixInputs, s.Image)
		}
	})
	return fixEngine, fixGraph, fixDevice, fixInputs
}

func newExec(t *testing.T, inj core.FaultInjector, mut func(*serve.Config)) *serve.Executor {
	t.Helper()
	eng, g, dev, _ := fixture(t)
	cfg := serve.Config{Engine: eng, Fallback: g, Device: dev, Injector: inj, Seed: "test"}
	if mut != nil {
		mut(&cfg)
	}
	ex, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ex
}

func sameOutputs(a, b []*tensor.Tensor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i].Data) != len(b[i].Data) {
			return false
		}
		for j := range a[i].Data {
			if a[i].Data[j] != b[i].Data[j] {
				return false
			}
		}
	}
	return true
}

// At fault rate zero the executor must be bit-identical to calling
// Engine.Run and Engine.Infer directly (issue acceptance criterion).
func TestZeroRateBitIdentical(t *testing.T) {
	eng, _, dev, inputs := fixture(t)
	for _, inj := range []core.FaultInjector{nil, faults.Scenario("zr", 0).New("nx")} {
		ex := newExec(t, inj, nil)
		for run := 0; run < 3; run++ {
			x := inputs[run]
			got, err := ex.Do(x, run)
			if err != nil {
				t.Fatal(err)
			}
			direct := eng.Run(core.RunConfig{Device: dev, RunIndex: run})
			if got.LatencySec != direct.LatencySec {
				t.Fatalf("latency %v != direct %v (injector=%v)", got.LatencySec, direct.LatencySec, inj != nil)
			}
			want, err := eng.Infer(x)
			if err != nil {
				t.Fatal(err)
			}
			if !sameOutputs(got.Outputs, want) {
				t.Fatalf("outputs differ from direct Infer (injector=%v)", inj != nil)
			}
			if got.Tier != serve.TierTuned || got.Degraded || got.Retries != 0 {
				t.Fatalf("pristine request degraded: %+v", got)
			}
		}
	}
}

// Property: under a 100%-fault plan every request is still answered, via
// the FP32 reference tier, with outputs identical to UnoptimizedInfer —
// never an error to the caller (issue satellite 4).
func TestTotalFaultAlwaysServesFP32(t *testing.T) {
	_, g, _, inputs := fixture(t)
	inj := faults.Scenario("total", 1).New("nx")
	ex := newExec(t, inj, nil)
	for i, x := range inputs {
		res, err := ex.Do(x, i)
		if err != nil {
			t.Fatalf("request %d errored under total faults: %v", i, err)
		}
		if res.Tier != serve.TierFP32 || !res.Degraded {
			t.Fatalf("request %d served by %v, want fp32 fallback", i, res.Tier)
		}
		want, err := core.UnoptimizedInfer(g, x)
		if err != nil {
			t.Fatal(err)
		}
		if !sameOutputs(res.Outputs, want) {
			t.Fatalf("request %d fallback outputs differ from UnoptimizedInfer", i)
		}
	}
	st := ex.Stats()
	if st.TierServed[serve.TierFP32] != uint64(len(inputs)) {
		t.Fatalf("fp32 served %d of %d", st.TierServed[serve.TierFP32], len(inputs))
	}
	if inj.Counters().Total() == 0 {
		t.Fatal("no faults counted under a rate-1 plan")
	}
	if ex.Health().State == "healthy" {
		t.Fatal("health still reports healthy under total faults")
	}
}

// With only launch failures enabled, every injected fault is one failed
// attempt, so the injector and executor ledgers must reconcile exactly:
// launch-fails == retries + terminal tier failures.
func TestCountersAccountForEveryFault(t *testing.T) {
	inj := faults.Plan{Seed: "ledger", LaunchFailRate: 1}.New("nx")
	ex := newExec(t, inj, func(c *serve.Config) {
		c.BreakerThreshold = 3
		c.BreakerCooldown = 4
	})
	const n = 40
	for i := 0; i < n; i++ {
		if _, err := ex.Do(nil, i); err != nil {
			t.Fatal(err)
		}
	}
	st := ex.Stats()
	if st.Requests != n {
		t.Fatalf("requests %d, want %d", st.Requests, n)
	}
	var served uint64
	for _, c := range st.TierServed {
		served += c
	}
	if served != n {
		t.Fatalf("tier-served sum %d, want %d", served, n)
	}
	var tierFails uint64
	for _, c := range st.TierFailures {
		tierFails += c
	}
	launchFails := inj.Counters().Get(faults.KindLaunchFail)
	if launchFails != st.Retries+tierFails {
		t.Fatalf("ledger mismatch: %d launch faults vs %d retries + %d tier failures",
			launchFails, st.Retries, tierFails)
	}
	if st.BreakerTrips == 0 || st.BreakerSkips == 0 {
		t.Fatalf("breaker never engaged: %+v", st)
	}
}

// The breaker must trip after BreakerThreshold consecutive primary
// failures, short-circuit for BreakerCooldown requests, then probe.
func TestCircuitBreakerLifecycle(t *testing.T) {
	inj := faults.Plan{Seed: "brk", LaunchFailRate: 1}.New("nx")
	ex := newExec(t, inj, func(c *serve.Config) {
		c.BreakerThreshold = 2
		c.BreakerCooldown = 3
		c.MaxRetries = 1
	})
	// Two failing requests trip the breaker.
	for i := 0; i < 2; i++ {
		if _, err := ex.Do(nil, i); err != nil {
			t.Fatal(err)
		}
	}
	if ex.Health().State != "open" {
		t.Fatalf("breaker state %q after threshold failures, want open", ex.Health().State)
	}
	if ex.Stats().BreakerTrips != 1 {
		t.Fatalf("trips %d, want 1", ex.Stats().BreakerTrips)
	}
	// The next BreakerCooldown requests skip the primary entirely: no new
	// launch faults are drawn for the tuned tier.
	before := inj.Counters().Get(faults.KindLaunchFail)
	for i := 0; i < 3; i++ {
		if _, err := ex.Do(nil, 10+i); err != nil {
			t.Fatal(err)
		}
	}
	if got := inj.Counters().Get(faults.KindLaunchFail); got != before {
		t.Fatalf("open breaker still reached the engine: %d new faults", got-before)
	}
	if ex.Stats().BreakerSkips != 3 {
		t.Fatalf("skips %d, want 3", ex.Stats().BreakerSkips)
	}
	// Cooldown spent: the next request is a half-open probe that reaches
	// the (still failing) engine and re-arms the cooldown.
	if _, err := ex.Do(nil, 20); err != nil {
		t.Fatal(err)
	}
	if got := inj.Counters().Get(faults.KindLaunchFail); got == before {
		t.Fatal("half-open probe never reached the engine")
	}
	if ex.Health().State != "open" {
		t.Fatal("failed probe should leave the breaker open")
	}
}

// A lower-batch standby engine is tried before the FP32 tier.
func TestLowBatchTier(t *testing.T) {
	eng, g, dev, inputs := fixture(t)
	// The primary cannot serve numeric requests (timing-only engine); the
	// numeric standby should pick them up before the FP32 tier.
	ex, err := serve.New(serve.Config{
		Engine:   failingEngine(t),
		LowBatch: eng,
		Fallback: g,
		Device:   dev,
		Injector: nil,
		Seed:     "lb",
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ex.Do(inputs[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tier != serve.TierLowBatch || !res.Degraded {
		t.Fatalf("served by %v, want low-batch", res.Tier)
	}
}

// failingEngine returns a timing-only engine: numeric requests cannot be
// served by it (InferFaulty errors), forcing degradation without faults.
func failingEngine(t *testing.T) *core.Engine {
	t.Helper()
	g := models.MustBuild("resnet18")
	e, err := core.Build(g, core.DefaultConfig(gpusim.XavierNX(), 7))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// Deadlines are recorded but never prevent an answer.
func TestDeadlineMissStillServes(t *testing.T) {
	ex := newExec(t, nil, func(c *serve.Config) { c.DeadlineSec = 1e-9 })
	_, _, _, inputs := fixture(t)
	res, err := ex.Do(inputs[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.DeadlineMiss {
		t.Fatal("1ns deadline not recorded as missed")
	}
	if res.Outputs == nil {
		t.Fatal("deadline miss dropped the answer")
	}
	if ex.Stats().DeadlineMisses != 1 {
		t.Fatalf("deadline misses %d, want 1", ex.Stats().DeadlineMisses)
	}
}

// Memory-pressure admission: a capacity too small for the engine's
// per-thread footprint pushes every request to the FP32 tier.
func TestAllocPressureDegrades(t *testing.T) {
	eng, _, _, inputs := fixture(t)
	inj := faults.Plan{Seed: "mem", CapacityBytes: eng.PerThreadMemBytes() / 2}.New("nx")
	ex := newExec(t, inj, nil)
	res, err := ex.Do(inputs[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tier != serve.TierFP32 {
		t.Fatalf("served by %v under memory pressure, want fp32", res.Tier)
	}
	if ex.Stats().AllocRejects != 1 {
		t.Fatalf("alloc rejects %d, want 1", ex.Stats().AllocRejects)
	}
}

// Concurrent requests under a mid-rate plan: exercised under -race; all
// requests complete and the ledgers stay consistent.
func TestConcurrentRequests(t *testing.T) {
	_, _, _, inputs := fixture(t)
	inj := faults.Scenario("conc", 0.2).New("nx")
	ex := newExec(t, inj, nil)
	const workers, perWorker = 8, 6
	var wg sync.WaitGroup
	errs := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				x := inputs[(w*perWorker+i)%len(inputs)]
				if _, err := ex.Do(x, w*perWorker+i); err != nil {
					errs <- err
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := ex.Stats()
	if st.Requests != workers*perWorker {
		t.Fatalf("requests %d, want %d", st.Requests, workers*perWorker)
	}
	var served uint64
	for _, c := range st.TierServed {
		served += c
	}
	if served != workers*perWorker {
		t.Fatalf("tier-served sum %d, want %d", served, workers*perWorker)
	}
}

// Retry backoff must not accumulate past the request deadline: the
// modeled wait is clamped to the remaining budget (and the clamp is
// counted), so a deadlined request's latency is bounded by the deadline
// plus real attempt/fallback work — never deadline plus a full
// exponential backoff ladder (issue bug fix).
func TestBackoffClampedByDeadline(t *testing.T) {
	_, g, dev, _ := fixture(t)
	const deadline = 0.5e-3
	mk := func(dl float64) *serve.Executor {
		return newExec(t, faults.Plan{Seed: "clamp", LaunchFailRate: 1}.New("nx"),
			func(c *serve.Config) {
				c.DeadlineSec = dl
				c.MaxRetries = 4
				c.BackoffBaseSec = 2e-3 // the first backoff alone overshoots the deadline
			})
	}
	clamped := mk(deadline)
	res, err := clamped.Do(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st := clamped.Stats(); st.BackoffClamps == 0 {
		t.Fatalf("no backoff clamps recorded: %+v", st)
	}
	// Bound: deadline + the burned time of failed attempts (each dies at
	// its first launch, microseconds) + the FP32 fallback's serve cost.
	bound := deadline + core.UnoptimizedRun(g, dev) + 0.3e-3
	if res.LatencySec > bound {
		t.Fatalf("latency %.6fs exceeds %.6fs: backoff accumulated past the deadline", res.LatencySec, bound)
	}
	if !res.DeadlineMiss {
		t.Fatal("deadline miss not recorded")
	}

	// Without a deadline the same fault sequence pays the full ladder,
	// and the clamp counter must stay untouched.
	free := mk(0)
	res2, err := free.Do(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res2.LatencySec <= res.LatencySec {
		t.Fatalf("unclamped latency %.6fs not above clamped %.6fs", res2.LatencySec, res.LatencySec)
	}
	if free.Stats().BackoffClamps != 0 {
		t.Fatal("clamp counted with no deadline configured")
	}
}

func TestConfigValidation(t *testing.T) {
	eng, g, dev, _ := fixture(t)
	for _, cfg := range []serve.Config{
		{Fallback: g, Device: dev},
		{Engine: eng, Device: dev},
		{Engine: eng, Fallback: g},
	} {
		if _, err := serve.New(cfg); err == nil {
			t.Fatalf("config %+v accepted", cfg)
		}
	}
}
