package serve_test

import (
	"fmt"
	"testing"

	"edgeinfer/internal/core"
	"edgeinfer/internal/faults"
	"edgeinfer/internal/serve"
	"edgeinfer/internal/tensor"
)

// Executor.DoBatch on a pristine executor must be bit-identical to direct
// Engine.Infer per image, pay exactly one timed run for the whole batch,
// and stay on the tuned tier.
func TestExecutorBatchMatchesDirect(t *testing.T) {
	eng, _, dev, inputs := fixture(t)
	ex := newExec(t, nil, nil)
	xs := inputs[:5]
	br, err := ex.DoBatch(xs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if br.Tier != serve.TierTuned || br.Degraded || br.Retries != 0 {
		t.Fatalf("pristine batch degraded: %+v", br)
	}
	if len(br.Outputs) != len(xs) {
		t.Fatalf("batch outputs %d, want %d", len(br.Outputs), len(xs))
	}
	for i, x := range xs {
		want, err := eng.Infer(x)
		if err != nil {
			t.Fatal(err)
		}
		if !sameOutputs(br.Outputs[i], want) {
			t.Fatalf("batch image %d differs from direct Infer", i)
		}
	}
	direct := eng.Run(core.RunConfig{Device: dev, RunIndex: 3})
	if br.LatencySec != direct.LatencySec {
		t.Fatalf("batch latency %v, want one run %v", br.LatencySec, direct.LatencySec)
	}
}

// Under a 100%-fault plan the batch drains to the FP32 tier and every
// image's outputs match UnoptimizedInfer — never an error.
func TestExecutorBatchTotalFaultServesFP32(t *testing.T) {
	_, g, _, inputs := fixture(t)
	ex := newExec(t, faults.Scenario("batch-total", 1).New("nx"), nil)
	xs := inputs[:4]
	br, err := ex.DoBatch(xs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if br.Tier != serve.TierFP32 || !br.Degraded {
		t.Fatalf("served by %v under total faults, want fp32", br.Tier)
	}
	for i, x := range xs {
		want, err := core.UnoptimizedInfer(g, x)
		if err != nil {
			t.Fatal(err)
		}
		if !sameOutputs(br.Outputs[i], want) {
			t.Fatalf("image %d fallback outputs differ from UnoptimizedInfer", i)
		}
	}
}

func TestBatchValidation(t *testing.T) {
	_, _, _, inputs := fixture(t)
	ex := newExec(t, nil, nil)
	if _, err := ex.DoBatch(nil, 0); err == nil {
		t.Fatal("empty executor batch accepted")
	}
	if _, err := ex.DoBatch([]*tensor.Tensor{inputs[0], nil}, 0); err == nil {
		t.Fatal("nil executor batch input accepted")
	}
	p := newPool(t, nil)
	if _, err := p.DoBatch(nil, 0); err == nil {
		t.Fatal("empty pool batch accepted")
	}
	if _, err := p.DoBatch([]*tensor.Tensor{nil}, 0); err == nil {
		t.Fatal("nil pool batch input accepted")
	}
}

// Quorum voting over batched outputs must match per-image serving: a
// fresh identically-configured fleet answering image by image produces
// the same winners, voter counts and bit-identical outputs (issue
// satellite).
func TestPoolBatchQuorumMatchesPerImage(t *testing.T) {
	_, _, _, inputs := fixture(t)
	xs := inputs[:6]
	batch := newPool(t, func(c *serve.PoolConfig) { c.Quorum = true })
	single := newPool(t, func(c *serve.PoolConfig) { c.Quorum = true })
	br, err := batch.DoBatch(xs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != len(xs) {
		t.Fatalf("batch results %d, want %d", len(br.Results), len(xs))
	}
	for i, x := range xs {
		res, err := single.Do(x, 0)
		if err != nil {
			t.Fatal(err)
		}
		got := br.Results[i]
		if got.Fallback || res.Fallback {
			t.Fatalf("image %d fell back with zero faults (batch=%v single=%v)", i, got.Fallback, res.Fallback)
		}
		if got.Replica != res.Replica || got.BuildID != res.BuildID {
			t.Fatalf("image %d winner replica %d/build %d, per-image %d/%d",
				i, got.Replica, got.BuildID, res.Replica, res.BuildID)
		}
		if got.Voters != res.Voters || got.Majority != res.Majority {
			t.Fatalf("image %d vote shape %d/%d, per-image %d/%d",
				i, got.Voters, got.Majority, res.Voters, res.Majority)
		}
		if got.LatencySec != res.LatencySec {
			t.Fatalf("image %d release %v, per-image %v", i, got.LatencySec, res.LatencySec)
		}
		if !sameOutputs(got.Outputs, res.Outputs) {
			t.Fatalf("image %d batched quorum outputs differ from per-image outputs", i)
		}
	}
	if br.LatencySec <= 0 {
		t.Fatal("batch release time not modeled")
	}
}

// Round-robin batches ride one replica; the outputs must match that
// replica's direct batched inference.
func TestPoolBatchRoundRobin(t *testing.T) {
	_, _, _, inputs := fixture(t)
	xs := inputs[:4]
	p := newPool(t, nil)
	engines := p.Engines()
	br, err := p.DoBatch(xs, 0)
	if err != nil {
		t.Fatal(err)
	}
	slot := br.Results[0].Replica
	if slot < 0 {
		t.Fatalf("round-robin batch fell back with zero faults: %+v", br.Results[0])
	}
	want, err := engines[slot].InferBatch(xs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if br.Results[i].Replica != slot {
			t.Fatalf("image %d served by replica %d, batch replica %d", i, br.Results[i].Replica, slot)
		}
		if !sameOutputs(br.Results[i].Outputs, want[i]) {
			t.Fatalf("image %d differs from replica %d batched Infer", i, slot)
		}
	}
}

// A fleet under total havoc still answers batched requests (FP32 tier or
// reference fill-in) — never an error to the caller.
func TestPoolBatchUnderHavoc(t *testing.T) {
	_, _, _, inputs := fixture(t)
	p := newPool(t, func(c *serve.PoolConfig) {
		c.Quorum = true
		c.RebuildDelay = 1000
		c.ReplicaInjector = func(slot int, e *core.Engine) core.FaultInjector {
			return faults.ReplicaHavoc("batch-havoc", "").New(fmt.Sprintf("replica%d", slot))
		}
	})
	for req := 0; req < 6; req++ {
		br, err := p.DoBatch(inputs[:3], req)
		if err != nil {
			t.Fatalf("batch %d errored under havoc: %v", req, err)
		}
		for i, r := range br.Results {
			if r.Outputs == nil {
				t.Fatalf("batch %d image %d has no outputs under havoc", req, i)
			}
		}
	}
}
