package serve_test

// Concurrency hammer tests (issue satellite: run under -race via ci.sh).
// They assert no data races and consistent ledgers when the registry,
// the executor and the pool are driven from parallel goroutines.

import (
	"fmt"
	"sync"
	"testing"

	"edgeinfer/internal/core"
	"edgeinfer/internal/faults"
	"edgeinfer/internal/gpusim"
	"edgeinfer/internal/serve"
)

// Registry.Engine / ProxyEngine / Rebuild / Stats hammered in parallel:
// memoization, the shared timing cache, and the build counter must stay
// consistent, and every caller must get a servable engine.
func TestRegistryConcurrentEngineRebuild(t *testing.T) {
	reg := serve.NewRegistry(gpusim.XavierNX(), nil)
	names := []string{"resnet18", "alexnet"}
	const workers, iters = 8, 3
	var wg sync.WaitGroup
	errs := make(chan error, workers*iters)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				m := names[(w+i)%len(names)]
				var e *core.Engine
				var err error
				switch (w + i) % 3 {
				case 0:
					e, err = reg.Engine(m)
				case 1:
					e, err = reg.ProxyEngine(m)
				default:
					e, err = reg.Rebuild(m)
				}
				if err != nil {
					errs <- err
					continue
				}
				if e.ModelName != m {
					errs <- fmt.Errorf("got engine %s for model %s", e.ModelName, m)
				}
				reg.Stats()
				reg.TimingCache().Len()
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Post-hammer: the cache is warm, so a rebuild is canonical.
	e, err := reg.Rebuild("resnet18")
	if err != nil {
		t.Fatal(err)
	}
	if e.BuildID != 0 || e.Report == nil || !e.Report.WarmBuild {
		t.Fatalf("post-hammer rebuild not warm-canonical: id=%d report=%+v", e.BuildID, e.Report)
	}
}

// Executor.Do hammered from parallel goroutines under a mid-rate fault
// plan while Stats/Health are polled concurrently.
func TestExecutorConcurrentDoWithPolling(t *testing.T) {
	_, _, _, inputs := fixture(t)
	inj := faults.Scenario("race-exec", 0.3).New("nx")
	ex := newExec(t, inj, func(c *serve.Config) { c.DeadlineSec = 1.0 })
	const workers, perWorker = 8, 5
	var wg sync.WaitGroup
	errs := make(chan error, workers*perWorker)
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				ex.Stats()
				ex.Health()
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				x := inputs[(w+i)%len(inputs)]
				if _, err := ex.Do(x, w*perWorker+i); err != nil {
					errs <- err
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := ex.Stats().Requests; got != workers*perWorker {
		t.Fatalf("requests %d, want %d", got, workers*perWorker)
	}
}

// Pool.Do hammered in parallel under replica havoc while health and
// transcript are polled: the supervisor's bookkeeping must stay
// consistent (requests serialize on the pool lock, pollers race it).
func TestPoolConcurrentDo(t *testing.T) {
	_, _, _, inputs := fixture(t)
	reg := serve.NewRegistry(gpusim.XavierNX(), nil)
	p, err := serve.NewPool(reg, serve.PoolConfig{
		Model:           "resnet18",
		Quorum:          true,
		ReplicaInjector: havocOn(2, "race-pool"),
		Canary:          inputs[:2],
	})
	if err != nil {
		t.Fatal(err)
	}
	const workers, perWorker = 6, 5
	var wg sync.WaitGroup
	errs := make(chan error, workers*perWorker)
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				p.Health()
				p.Stats()
				p.Transcript()
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := p.Do(inputs[(w+i)%len(inputs)], w*perWorker+i); err != nil {
					errs <- err
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := p.Stats().Requests; got != workers*perWorker {
		t.Fatalf("requests %d, want %d", got, workers*perWorker)
	}
}

// Pool.Health / Pool.Stats polled and invariant-checked while replica
// havoc drives quarantine/readmission churn (issue satellite): every
// snapshot a concurrent observer can take must be internally consistent
// — Active matches the dispatch-eligible replica states, every state
// name is a real state, slots stay put, and the healing counters only
// ever move forward.
func TestPoolHealthInvariantsUnderChurn(t *testing.T) {
	_, _, _, inputs := fixture(t)
	reg := serve.NewRegistry(gpusim.XavierNX(), nil)
	p, err := serve.NewPool(reg, serve.PoolConfig{
		Model:           "resnet18",
		Quorum:          true,
		ReplicaInjector: havocOn(2, "race-health"),
		Canary:          inputs[:2],
	})
	if err != nil {
		t.Fatal(err)
	}
	dispatchable := map[string]bool{"healthy": true, "suspect": true, "readmitted": true}
	known := map[string]bool{
		"healthy": true, "suspect": true, "quarantined": true,
		"rebuilding": true, "readmitted": true,
	}

	const workers, perWorker = 6, 5
	var wg sync.WaitGroup
	errs := make(chan error, workers*perWorker+64)
	stop := make(chan struct{})
	pollerDone := make(chan struct{})
	go func() {
		defer close(pollerDone)
		var prev serve.PoolStats
		polls := 0
		for {
			select {
			case <-stop:
				if polls == 0 {
					errs <- fmt.Errorf("health poller never ran")
				}
				return
			default:
			}
			polls++
			h := p.Health()
			eligible := 0
			for i, r := range h.Replicas {
				if !known[r.State] {
					errs <- fmt.Errorf("replica %d in unknown state %q", r.Slot, r.State)
				}
				if r.Slot != i {
					errs <- fmt.Errorf("replica slot %d reported at index %d", r.Slot, i)
				}
				if dispatchable[r.State] {
					eligible++
				}
			}
			if h.Active != eligible {
				errs <- fmt.Errorf("health says %d active, states say %d: %+v", h.Active, eligible, h.Replicas)
			}
			s := p.Stats()
			if s.Requests < prev.Requests || s.Quarantines < prev.Quarantines ||
				s.Rebuilds < prev.Rebuilds || s.Readmissions < prev.Readmissions ||
				s.Detections < prev.Detections {
				errs <- fmt.Errorf("pool counters moved backwards: %+v -> %+v", prev, s)
			}
			if s.Readmissions > s.Quarantines {
				errs <- fmt.Errorf("%d readmissions exceed %d quarantines", s.Readmissions, s.Quarantines)
			}
			prev = s
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := p.Do(inputs[(w+i)%len(inputs)], w*perWorker+i); err != nil {
					errs <- err
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-pollerDone
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// The havoc plan must actually have exercised the lifecycle, or the
	// invariants above were vacuous.
	if s := p.Stats(); s.Quarantines == 0 {
		t.Fatalf("no quarantine churn under havoc: %+v", s)
	}
}
