package serve_test

// Regression tests for the lockorder fixes: the fleet mutex must never
// be held across replica inference, so observability calls answer while
// a request is in flight, and a deadline-carrying batch whose budget is
// already burned is abandoned instead of paying the FP32 tier.

import (
	"errors"
	"sync"
	"testing"
	"time"

	"edgeinfer/internal/core"
	"edgeinfer/internal/serve"
	"edgeinfer/internal/tensor"
)

// gateInjector parks the first kernel launch until released, simulating
// a slow in-flight inference without touching wall-clock modeling.
type gateInjector struct {
	once    sync.Once
	entered chan struct{}
	release chan struct{}
}

func newGateInjector() *gateInjector {
	return &gateInjector{entered: make(chan struct{}), release: make(chan struct{})}
}

func (g *gateInjector) Launch(int, string) core.LaunchFault {
	g.once.Do(func() { close(g.entered) })
	<-g.release
	return core.LaunchFault{}
}
func (g *gateInjector) MemcpyH2D(int64) (int, error)                                { return 0, nil }
func (g *gateInjector) CorruptWeights(_, _ string, _ *tensor.Tensor) *tensor.Tensor { return nil }
func (g *gateInjector) CorruptActivation(string, *tensor.Tensor)                    {}

// failInjector fails every kernel launch, so each replica attempt burns
// latency and errors.
type failInjector struct{}

func (failInjector) Launch(int, string) core.LaunchFault                         { return core.LaunchFault{Fail: true} }
func (failInjector) MemcpyH2D(int64) (int, error)                                { return 0, nil }
func (failInjector) CorruptWeights(_, _ string, _ *tensor.Tensor) *tensor.Tensor { return nil }
func (failInjector) CorruptActivation(string, *tensor.Tensor)                    {}

// Health, Stats and Transcript must answer while an inference is in
// flight: the request path holds the serialization token end to end but
// may not hold p.mu across replica execution (the exact pattern the
// lockorder analyzer forbids).
func TestPoolHealthNotBlockedDuringInference(t *testing.T) {
	_, _, _, inputs := fixture(t)
	gate := newGateInjector()
	p := newPool(t, func(c *serve.PoolConfig) {
		c.ReplicaInjector = func(int, *core.Engine) core.FaultInjector { return gate }
	})

	done := make(chan error, 1)
	go func() {
		_, err := p.Do(inputs[0], 0)
		done <- err
	}()

	select {
	case <-gate.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("inference never reached the gated launch")
	}

	observed := make(chan struct{})
	go func() {
		p.Health()
		p.Stats()
		p.Transcript()
		close(observed)
	}()
	select {
	case <-observed:
	case <-time.After(5 * time.Second):
		close(gate.release)
		t.Fatal("Health/Stats/Transcript blocked behind an in-flight inference")
	}

	close(gate.release)
	if err := <-done; err != nil {
		t.Fatalf("gated request failed: %v", err)
	}
}

// A deadline-carrying batch whose replicas all burned the budget is
// abandoned with ErrDeadlineExceeded and counted, in both dispatch
// modes; the deadline-free twin still degrades to FP32.
func TestPoolDoBatchDeadlineAborts(t *testing.T) {
	_, _, _, inputs := fixture(t)
	for _, quorum := range []bool{false, true} {
		p := newPool(t, func(c *serve.PoolConfig) {
			c.Quorum = quorum
			c.ReplicaInjector = func(int, *core.Engine) core.FaultInjector { return failInjector{} }
		})
		_, err := p.DoBatchDeadline(inputs[:2], 0, 1e-12)
		if !errors.Is(err, serve.ErrDeadlineExceeded) {
			t.Fatalf("quorum=%v error %v is not serve.ErrDeadlineExceeded", quorum, err)
		}
		if st := p.Stats(); st.DeadlineAborts != 1 {
			t.Fatalf("quorum=%v DeadlineAborts = %d, want 1", quorum, st.DeadlineAborts)
		}
		br, err := p.DoBatch(inputs[:2], 1)
		if err != nil {
			t.Fatalf("quorum=%v deadline-free batch errored: %v", quorum, err)
		}
		for i, r := range br.Results {
			if !r.Fallback {
				t.Fatalf("quorum=%v image %d not served by FP32 tier: %+v", quorum, i, r)
			}
		}
	}
}
