package serve_test

import (
	"fmt"
	"strings"
	"testing"

	"edgeinfer/internal/core"
	"edgeinfer/internal/faults"
	"edgeinfer/internal/gpusim"
	"edgeinfer/internal/serve"
)

// havocOn returns a ReplicaInjector targeting one build id with the
// replica-havoc plan (sustained latency inflation + silent corruption).
// Rebuilt replicas carry the canonical build id 0 and so heal.
func havocOn(buildID int, seed string) func(int, *core.Engine) core.FaultInjector {
	return func(slot int, e *core.Engine) core.FaultInjector {
		if e.BuildID != buildID {
			return nil
		}
		return faults.ReplicaHavoc(seed, "").New(fmt.Sprintf("replica%d", slot))
	}
}

func newPool(t *testing.T, mut func(*serve.PoolConfig)) *serve.Pool {
	t.Helper()
	reg := serve.NewRegistry(gpusim.XavierNX(), nil)
	cfg := serve.PoolConfig{Model: "resnet18"}
	if mut != nil {
		mut(&cfg)
	}
	p, err := serve.NewPool(reg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// With no injected faults the fleet must be bit-identical to direct
// Engine.Infer on the serving replica, in both dispatch modes, and the
// supervisor must record no transitions (issue acceptance criterion).
func TestPoolZeroFaultBitIdentity(t *testing.T) {
	_, _, _, inputs := fixture(t)
	for _, quorum := range []bool{false, true} {
		p := newPool(t, func(c *serve.PoolConfig) { c.Quorum = quorum })
		engines := p.Engines()
		for i := 0; i < 6; i++ {
			x := inputs[i]
			res, err := p.Do(x, i)
			if err != nil {
				t.Fatal(err)
			}
			if res.Fallback || res.Replica < 0 {
				t.Fatalf("quorum=%v req %d fell back with zero faults: %+v", quorum, i, res)
			}
			want, err := engines[res.Replica].Infer(x)
			if err != nil {
				t.Fatal(err)
			}
			if !sameOutputs(res.Outputs, want) {
				t.Fatalf("quorum=%v req %d outputs differ from replica %d direct Infer", quorum, i, res.Replica)
			}
			if quorum && res.Majority < 2 {
				t.Fatalf("req %d majority %d of %d voters with zero faults", i, res.Majority, res.Voters)
			}
		}
		if lines := p.Transcript(); len(lines) != 0 {
			t.Fatalf("quorum=%v transitions with zero faults: %v", quorum, lines)
		}
		h := p.Health()
		if h.Active != 3 {
			t.Fatalf("quorum=%v active %d, want 3", quorum, h.Active)
		}
		for _, r := range h.Replicas {
			if r.State != "healthy" {
				t.Fatalf("quorum=%v replica %d state %s with zero faults", quorum, r.Slot, r.State)
			}
		}
	}
}

// Replica fleets must genuinely diverge: distinct build ids, and at
// least one pair of replicas choosing different tactics (paper Finding
// 6 is what makes quorum voting non-vacuous).
func TestPoolReplicasDiverge(t *testing.T) {
	p := newPool(t, nil)
	engines := p.Engines()
	ids := map[int]bool{}
	for _, e := range engines {
		if ids[e.BuildID] {
			t.Fatalf("duplicate build id %d in fleet", e.BuildID)
		}
		ids[e.BuildID] = true
	}
	diverged := false
	for layer, v := range engines[1].Choices {
		if w, ok := engines[2].Choices[layer]; ok && v != w {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("cold replicas 1 and 2 chose identical tactics everywhere; no divergence")
	}
}

// The full healing lifecycle: a latency-inflated + silently-corrupting
// replica is detected, quarantined, rebuilt warm through the shared
// timing cache (canonical build id 0), canary-validated and readmitted
// — and every request along the way is answered with the correct-tier
// argmax (no wrong-answer escapes).
func TestPoolQuarantineRebuildReadmit(t *testing.T) {
	_, _, _, inputs := fixture(t)
	const faultyBuild = 2 // slot 1 of a fresh registry (builds 1,2,3)
	p := newPool(t, func(c *serve.PoolConfig) {
		c.Quorum = true
		c.ReplicaInjector = havocOn(faultyBuild, "lifecycle")
		c.Canary = inputs[:4]
	})
	pristine := map[int]*core.Engine{}
	for _, e := range p.Engines() {
		pristine[e.BuildID] = e
	}
	for i := 0; i < 24; i++ {
		x := inputs[i%len(inputs)]
		res, err := p.Do(x, i)
		if err != nil {
			t.Fatal(err)
		}
		if res.Fallback {
			continue // FP32 tier is always a correct answer
		}
		eng := pristine[res.BuildID]
		if eng == nil {
			// A rebuilt (canonical) engine joined the fleet mid-soak.
			for _, e := range p.Engines() {
				if e.BuildID == res.BuildID {
					eng = e
				}
			}
			pristine[res.BuildID] = eng
		}
		want, err := eng.Infer(x)
		if err != nil {
			t.Fatal(err)
		}
		if !sameOutputs(res.Outputs, want) {
			t.Fatalf("req %d: served outputs differ from replica build %d pristine Infer (wrong-answer escape)", i, res.BuildID)
		}
	}
	st := p.Stats()
	if st.Detections == 0 || st.Quarantines == 0 || st.Rebuilds == 0 || st.Readmissions == 0 {
		t.Fatalf("lifecycle incomplete: %+v\ntranscript:\n%s", st, strings.Join(p.Transcript(), "\n"))
	}
	h := p.Health()
	if h.Active != 3 {
		t.Fatalf("fleet did not heal: %d active\n%s", h.Active, strings.Join(p.Transcript(), "\n"))
	}
	healed := h.Replicas[1]
	if healed.BuildID != 0 {
		t.Fatalf("rebuilt replica has build id %d, want canonical 0", healed.BuildID)
	}
	if healed.State != "healthy" {
		t.Fatalf("healed replica state %s, want healthy", healed.State)
	}
	if h.Transitions["healthy->suspect"] == 0 || h.Transitions["suspect->quarantined"] == 0 ||
		h.Transitions["quarantined->rebuilding"] == 0 || h.Transitions["rebuilding->readmitted"] == 0 {
		t.Fatalf("missing state-machine edges: %v", h.Transitions)
	}
}

// Same seed, same fleet, same requests → byte-identical transcript and
// identical stats (issue satellite: determinism test).
func TestPoolDeterministicTranscript(t *testing.T) {
	_, _, _, inputs := fixture(t)
	run := func() ([]string, serve.PoolStats) {
		p := newPool(t, func(c *serve.PoolConfig) {
			c.Quorum = true
			c.ReplicaInjector = havocOn(2, "determinism")
			c.Canary = inputs[:4]
		})
		for i := 0; i < 20; i++ {
			if _, err := p.Do(inputs[i%len(inputs)], i); err != nil {
				t.Fatal(err)
			}
		}
		return p.Transcript(), p.Stats()
	}
	t1, s1 := run()
	t2, s2 := run()
	if strings.Join(t1, "\n") != strings.Join(t2, "\n") {
		t.Fatalf("same-seed transcripts differ:\n--- run 1:\n%s\n--- run 2:\n%s",
			strings.Join(t1, "\n"), strings.Join(t2, "\n"))
	}
	if s1 != s2 {
		t.Fatalf("same-seed stats differ: %+v vs %+v", s1, s2)
	}
	if len(t1) == 0 {
		t.Fatal("lifecycle produced no transcript")
	}
}

// When every replica goes bad the dispatch set drains to the FP32
// reference tier — requests keep being answered, never an error.
func TestPoolDrainsToFP32WhenAllQuarantined(t *testing.T) {
	_, g, _, inputs := fixture(t)
	p := newPool(t, func(c *serve.PoolConfig) {
		c.Quorum = true
		c.RebuildDelay = 1000 // quarantine forever within the test window
		c.ReplicaInjector = func(slot int, e *core.Engine) core.FaultInjector {
			return faults.ReplicaHavoc("all-bad", "").New(fmt.Sprintf("replica%d", slot))
		}
	})
	sawFP32 := false
	for i := 0; i < 16; i++ {
		x := inputs[i%len(inputs)]
		res, err := p.Do(x, i)
		if err != nil {
			t.Fatal(err)
		}
		if res.Fallback {
			sawFP32 = true
			want, err := core.UnoptimizedInfer(g, x)
			if err != nil {
				t.Fatal(err)
			}
			if !sameOutputs(res.Outputs, want) {
				t.Fatal("FP32 tier outputs differ from UnoptimizedInfer")
			}
		}
	}
	if !sawFP32 {
		t.Fatalf("fleet never drained to FP32: %+v\n%s", p.Stats(), strings.Join(p.Transcript(), "\n"))
	}
	if h := p.Health(); h.Active != 0 {
		t.Fatalf("active %d after total havoc, want 0\n%s", h.Active, strings.Join(p.Transcript(), "\n"))
	}
}

// Round-robin dispatch has no peers to vote with: the latency watchdog
// still catches an inflated replica.
func TestPoolRoundRobinWatchdog(t *testing.T) {
	_, _, _, inputs := fixture(t)
	p := newPool(t, func(c *serve.PoolConfig) {
		c.ReplicaInjector = havocOn(2, "rr-watchdog")
		c.Canary = inputs[:2]
	})
	for i := 0; i < 36; i++ {
		if _, err := p.Do(inputs[i%len(inputs)], i); err != nil {
			t.Fatal(err)
		}
	}
	st := p.Stats()
	if st.Quarantines == 0 {
		t.Fatalf("round-robin watchdog never quarantined the inflated replica: %+v\n%s",
			st, strings.Join(p.Transcript(), "\n"))
	}
	found := false
	for _, line := range p.Transcript() {
		if strings.Contains(line, "lat-ewma=") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no latency-watchdog signal in transcript:\n%s", strings.Join(p.Transcript(), "\n"))
	}
}

// Timed-only requests (nil input) hedge without voting.
func TestPoolTimedOnlyRequests(t *testing.T) {
	p := newPool(t, func(c *serve.PoolConfig) { c.Quorum = true })
	res, err := p.Do(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs != nil || res.Fallback || res.Voters != 3 {
		t.Fatalf("timed-only quorum result: %+v", res)
	}
	if res.LatencySec <= 0 {
		t.Fatal("no latency modeled")
	}
}

func TestPoolConfigValidation(t *testing.T) {
	reg := serve.NewRegistry(gpusim.XavierNX(), nil)
	if _, err := serve.NewPool(reg, serve.PoolConfig{}); err == nil {
		t.Fatal("pool without a model accepted")
	}
	if _, err := serve.NewPool(reg, serve.PoolConfig{Model: "no-such-model"}); err == nil {
		t.Fatal("pool of unknown model accepted")
	}
	if _, err := reg.ReplicaEngines("resnet18", 0); err == nil {
		t.Fatal("zero-replica fleet accepted")
	}
}
