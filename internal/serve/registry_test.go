package serve

import (
	"bytes"
	"reflect"
	"testing"

	"edgeinfer/internal/gpusim"
	"edgeinfer/internal/tensor"
)

func TestRegistryMemoizesAndSharesCache(t *testing.T) {
	r := NewRegistry(gpusim.XavierNX(), nil)
	e1, err := r.ProxyEngine("vgg16")
	if err != nil {
		t.Fatal(err)
	}
	e2, err := r.ProxyEngine("vgg16")
	if err != nil {
		t.Fatal(err)
	}
	if e1 != e2 {
		t.Fatal("second lookup rebuilt the engine")
	}
	st := r.Stats()
	if st.ColdBuilds != 1 || st.WarmBuilds != 0 {
		t.Fatalf("stats after one build: %+v", st)
	}
	if st.CacheMisses == 0 || st.TuneCostSec <= 0 {
		t.Fatalf("cold build paid no tuning cost: %+v", st)
	}
	if r.TimingCache().Len() == 0 {
		t.Fatal("shared cache not populated")
	}
	// A second model reuses cached shapes where they overlap (the
	// downscaled proxies share conv shapes, so this build may even be
	// fully warm).
	if _, err := r.ProxyEngine("resnet18"); err != nil {
		t.Fatal(err)
	}
	got := r.Stats()
	if got.ColdBuilds+got.WarmBuilds != 2 {
		t.Fatalf("stats after two models: %+v", got)
	}
	if got.CacheHits <= st.CacheHits {
		t.Fatalf("second model hit no shared entries: %+v", got)
	}
}

func TestRegistryRebuildIsWarmAndCanonical(t *testing.T) {
	r := NewRegistry(gpusim.XavierNX(), nil)
	cold, err := r.ProxyEngine("resnet18")
	if err != nil {
		t.Fatal(err)
	}
	w1, err := r.Rebuild("resnet18")
	if err != nil {
		t.Fatal(err)
	}
	w2, err := r.Rebuild("resnet18")
	if err != nil {
		t.Fatal(err)
	}
	if !w1.Report.WarmBuild || !w2.Report.WarmBuild {
		t.Fatalf("rebuilds not warm: %+v / %+v", w1.Report, w2.Report)
	}
	if w1.BuildID != 0 || w2.BuildID != 0 {
		t.Fatalf("warm rebuilds not canonical: ids %d, %d", w1.BuildID, w2.BuildID)
	}
	if !reflect.DeepEqual(cold.Choices, w1.Choices) {
		t.Fatal("warm rebuild diverged from the cold build's tactics")
	}
	var b1, b2 bytes.Buffer
	if err := w1.Save(&b1); err != nil {
		t.Fatal(err)
	}
	if err := w2.Save(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("warm rebuilds are not byte-identical")
	}
	st := r.Stats()
	if st.ColdBuilds != 1 || st.WarmBuilds != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestRegistryPreloadedCacheMakesFirstBuildWarm(t *testing.T) {
	seed := NewRegistry(gpusim.XavierNX(), nil)
	if _, err := seed.ProxyEngine("resnet18"); err != nil {
		t.Fatal(err)
	}
	// A second registry (a fresh process) starting from the persisted
	// cache never pays the timing cost.
	r := NewRegistry(gpusim.XavierNX(), seed.TimingCache())
	e, err := r.ProxyEngine("resnet18")
	if err != nil {
		t.Fatal(err)
	}
	if !e.Report.WarmBuild || e.Report.TuneCostSec != 0 {
		t.Fatalf("first build against preloaded cache not warm: %+v", e.Report)
	}
}

func TestRegistryExecutorServes(t *testing.T) {
	r := NewRegistry(gpusim.XavierNX(), nil)
	ex, err := r.Executor("vgg16", Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ex.Do(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tier != TierTuned || res.LatencySec <= 0 {
		t.Fatalf("pristine registry executor served %+v", res)
	}
	// A numeric request through the shared proxy engine.
	e, _ := r.ProxyEngine("vgg16")
	shape := e.Graph.InputShape
	x := tensor.New(shape[0], shape[1], shape[2], shape[3])
	nres, err := ex.Do(x, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(nres.Outputs) == 0 {
		t.Fatal("numeric request returned no outputs")
	}
	// Both executors for one model share the registry's single build.
	if _, err := r.Executor("vgg16", Config{}); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.ColdBuilds != 1 {
		t.Fatalf("second executor rebuilt the engine: %+v", st)
	}
}

func TestRegistryUnknownModel(t *testing.T) {
	r := NewRegistry(gpusim.XavierNX(), nil)
	if _, err := r.ProxyEngine("no-such-model"); err == nil {
		t.Fatal("unknown model accepted")
	}
	if _, err := r.Executor("no-such-model", Config{}); err == nil {
		t.Fatal("executor for unknown model accepted")
	}
}
