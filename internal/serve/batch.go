// Batched serving. DoBatch is the batch twin of Executor.Do/Pool.Do,
// built on Engine.InferBatchFaulty: one timed pass and one batched
// numeric inference per attempt instead of one of each per image, so the
// replica fleet amortizes launch, retry and voting overhead across the
// batch. Per-image numerics are untouched — on a pristine executor or
// fleet, the batch outputs are bit-identical to serving each image
// individually.
package serve

import (
	"errors"
	"fmt"
	"sort"

	"edgeinfer/internal/core"
	"edgeinfer/internal/rtctx"
	"edgeinfer/internal/tensor"
)

// BatchResult is one served batch request.
type BatchResult struct {
	// Outputs[i] are the numeric outputs of input i, in input order.
	Outputs [][]*tensor.Tensor
	// LatencySec is the batch's end-to-end simulated latency (attempts,
	// stalls, backoff), shared by every image of the batch.
	LatencySec float64
	// Tier that finally served the batch.
	Tier Tier
	// Retries issued across all tiers.
	Retries int
	// Degraded reports the batch was not served by the tuned engine.
	Degraded bool
	// DeadlineMiss reports the accumulated latency exceeded the deadline.
	DeadlineMiss bool
}

// DoBatch serves one batched numeric request through the same
// degradation chain as Do. Each tier attempt is a single timed pass over
// the engine plan plus one batched inference; a fault anywhere in the
// batch fails the whole attempt (the batch rides one launch sequence).
// On a pristine executor, Outputs[i] is bit-identical to Do(xs[i]).
// It is DoBatchCtx without a request context.
func (ex *Executor) DoBatch(xs []*tensor.Tensor, runIndex int) (*BatchResult, error) {
	return ex.DoBatchCtx(nil, xs, runIndex)
}

// DoBatchDeadline is DoBatch under a per-request deadline (clamped with
// the configured DeadlineSec): a batch whose deadline expires before
// any tier has served is abandoned with a wrapped ErrDeadlineExceeded
// instead of paying the per-image FP32 reference passes. It is a
// compatibility wrapper over DoBatchCtx.
func (ex *Executor) DoBatchDeadline(xs []*tensor.Tensor, runIndex int, deadlineSec float64) (*BatchResult, error) {
	return ex.DoBatchCtx(rtctx.WithBudget(deadlineSec), xs, runIndex)
}

// DoBatchCtx is the single budget-carrying batch path: the coalescing
// front-end's serving route, where the batch context carries the
// tightest member deadline. The context's budget clamps through the
// configured DeadlineSec; an aborting context additionally arms the
// layer-boundary guard (core.InferBatchCtx), so a batch whose burned
// latency plus remaining expected schedule proves it hopeless stops
// mid-graph with a wrapped ErrDeadlineExceeded instead of finishing a
// late answer or paying the FP32 tier.
func (ex *Executor) DoBatchCtx(ctx *rtctx.Request, xs []*tensor.Tensor, runIndex int) (*BatchResult, error) {
	return ex.doBatch(xs, runIndex, ex.effectiveDeadline(ctx.Budget()), ctx.Aborts())
}

func (ex *Executor) doBatch(xs []*tensor.Tensor, runIndex int, deadlineSec float64, abort bool) (*BatchResult, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("serve: DoBatch needs at least one input")
	}
	for i, x := range xs {
		if x == nil {
			return nil, fmt.Errorf("serve: DoBatch input %d is nil", i)
		}
	}
	ex.count(func(s *Stats) { s.Requests++ })
	res := &Result{Tier: TierFP32, deadlineSec: deadlineSec}

	// The normalized context the accelerated tiers dispatch through:
	// armed only on the abort paths, so Do/DoBatch callers keep their
	// exact injector draw order and answer-late contract.
	var cctx *rtctx.Request
	if abort && deadlineSec > 0 {
		cctx = rtctx.WithBudget(deadlineSec)
	}

	tryTuned := ex.admitTuned()
	alloc, _ := ex.cfg.Injector.(Allocator)
	exhausted := false

	for tier := TierTuned; tier < TierFP32; tier++ {
		eng := ex.cfg.Engine
		if tier == TierLowBatch {
			eng = ex.cfg.LowBatch
		}
		if eng == nil || (tier == TierTuned && !tryTuned) {
			continue
		}
		if !eng.Numeric {
			continue
		}
		if ex.deadlineExceeded(res) {
			break
		}
		if alloc != nil {
			if err := alloc.Alloc(eng.PerThreadMemBytes()); err != nil {
				ex.count(func(s *Stats) { s.AllocRejects++ })
				if tier == TierTuned {
					ex.recordPrimary(false)
				}
				continue
			}
		}
		var outs [][]*tensor.Tensor
		var ok bool
		outs, ok, exhausted = ex.tryTierBatch(eng, cctx, xs, runIndex, res)
		if alloc != nil {
			alloc.Free(eng.PerThreadMemBytes())
		}
		if exhausted {
			// A layer-boundary check proved the budget unmeetable: not an
			// engine fault, so the breaker and tier-failure counters stay
			// untouched, and no cheaper tier is tried — it runs the same
			// schedule against the same spent budget.
			break
		}
		if tier == TierTuned {
			ex.recordPrimary(ok)
		}
		if ok {
			res.Tier = tier
			res.Degraded = tier != TierTuned
			ex.count(func(s *Stats) { s.TierServed[tier]++ })
			ex.setLastTier(tier)
			return batchResult(res, outs), nil
		}
		ex.count(func(s *Stats) { s.TierFailures[tier]++ })
	}

	if exhausted {
		if !res.DeadlineMiss {
			res.DeadlineMiss = true
			ex.count(func(s *Stats) { s.DeadlineMisses++ })
		}
		ex.count(func(s *Stats) { s.DeadlineAborts++ })
		return nil, fmt.Errorf("serve: batch abandoned mid-graph at %.3gs of a %.3gs budget: %w",
			res.LatencySec, res.deadlineSec, ErrDeadlineExceeded)
	}

	// Terminal tier: the FP32 host path has no batched kernels — every
	// image pays the full reference pass.
	if err := ex.abortLate(res, abort); err != nil {
		return nil, err
	}
	res.LatencySec += float64(len(xs)) * core.UnoptimizedRun(ex.cfg.Fallback, ex.cfg.Device)
	ex.deadlineExceeded(res)
	outs := make([][]*tensor.Tensor, len(xs))
	for i, x := range xs {
		o, err := core.UnoptimizedInfer(ex.cfg.Fallback, x)
		if err != nil {
			return nil, fmt.Errorf("serve: FP32 fallback failed: %w", err)
		}
		outs[i] = o
	}
	res.Tier = TierFP32
	res.Degraded = true
	ex.count(func(s *Stats) { s.TierServed[TierFP32]++ })
	ex.setLastTier(TierFP32)
	return batchResult(res, outs), nil
}

func batchResult(res *Result, outs [][]*tensor.Tensor) *BatchResult {
	return &BatchResult{
		Outputs:      outs,
		LatencySec:   res.LatencySec,
		Tier:         res.Tier,
		Retries:      res.Retries,
		Degraded:     res.Degraded,
		DeadlineMiss: res.DeadlineMiss,
	}
}

// tryTierBatch is tryTier with one batched inference per attempt, run
// under the normalized request context. The third result reports a
// mid-graph budget abort: the layer-boundary guard proved the budget
// unmeetable, so retrying (or degrading) cannot help. The aborted
// attempt still books its timed-pass latency — the abort saves the
// remaining host-side numeric work, the other tiers and the FP32
// reference pass, not the already-priced launch schedule.
func (ex *Executor) tryTierBatch(eng *core.Engine, ctx *rtctx.Request, xs []*tensor.Tensor, runIndex int, res *Result) (outs [][]*tensor.Tensor, ok, exhausted bool) {
	cfg := core.RunConfig{
		Device:        ex.cfg.Device,
		IncludeMemcpy: ex.cfg.IncludeMemcpy,
		RunIndex:      runIndex,
	}
	for attempt := 0; attempt <= ex.cfg.MaxRetries; attempt++ {
		if attempt > 0 && !ex.retryWait(attempt, res) {
			return nil, false, false
		}
		burned := res.LatencySec
		run, err := eng.RunFaulty(cfg, ex.cfg.Injector)
		res.LatencySec += run.LatencySec
		if err == nil {
			outs, err = eng.InferBatchCtx(ctx, xs, ex.cfg.Injector, ex.cfg.Device, burned)
			if errors.Is(err, core.ErrBudgetExhausted) {
				return nil, false, true
			}
		}
		if err == nil {
			ex.deadlineExceeded(res)
			return outs, true, false
		}
	}
	return nil, false, false
}

// PoolBatchResult is one batched fleet request.
type PoolBatchResult struct {
	// Results[i] is the per-image outcome — the same verdicts Do would
	// produce for xs[i] given identical replica answers.
	Results []*PoolResult
	// LatencySec is the batch release time: the latest per-image release.
	LatencySec float64
	// DeadlineMiss reports the batch release time overran the request
	// context's budget: the fleet's own verdict, computed centrally in
	// DoBatchCtx so every backend reports misses identically.
	DeadlineMiss bool
}

// DoBatch serves one batch through the fleet. Each replica runs once and
// answers with one batched inference; under quorum, majority voting then
// happens per image over the batched outputs. With no injected faults
// the per-image winners and outputs are bit-identical to serving each
// image with Do. The supervisor folds one latency observation per
// replica (one run happened) and one divergence vote per image. It is
// DoBatchCtx without a request context.
func (p *Pool) DoBatch(xs []*tensor.Tensor, runIndex int) (*PoolBatchResult, error) {
	return p.DoBatchCtx(nil, xs, runIndex)
}

// DoBatchDeadline is DoBatch under a simulated-seconds budget: a
// compatibility wrapper over DoBatchCtx.
func (p *Pool) DoBatchDeadline(xs []*tensor.Tensor, runIndex int, deadlineSec float64) (*PoolBatchResult, error) {
	return p.DoBatchCtx(rtctx.WithBudget(deadlineSec), xs, runIndex)
}

// DoBatchCtx is the fleet's single budget-carrying batch path and the
// serving route the network front-end's pool backend threads its batch
// budget through (the deadlineflow analyzer enforces that choice).
// Under round-robin dispatch the context arms core.InferBatchCtx's
// layer-boundary guard on every replica attempt, so a hopeless batch
// aborts mid-graph; when the latency burned by failed replica attempts
// already exceeds the budget, the batch is abandoned with a wrapped
// ErrDeadlineExceeded instead of paying the per-image FP32 reference
// passes nobody is waiting for. The batch's DeadlineMiss verdict is
// computed here — once, against the context budget — so executor- and
// pool-backed front-ends report misses identically.
func (p *Pool) DoBatchCtx(ctx *rtctx.Request, xs []*tensor.Tensor, runIndex int) (*PoolBatchResult, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("serve: pool DoBatch needs at least one input")
	}
	for i, x := range xs {
		if x == nil {
			return nil, fmt.Errorf("serve: pool DoBatch input %d is nil", i)
		}
	}
	<-p.turn
	defer func() { p.turn <- struct{}{} }()
	var req uint64
	p.locked(func() {
		p.stats.Requests++
		req = p.stats.Requests
	})
	p.advanceRebuilds(req)
	var br *PoolBatchResult
	var err error
	if p.cfg.Quorum {
		br, err = p.serveQuorumBatch(req, xs, runIndex, ctx)
	} else {
		br, err = p.serveRRBatch(req, xs, runIndex, ctx)
	}
	if err != nil {
		return nil, err
	}
	if b := ctx.Budget(); b > 0 && br.LatencySec > b {
		br.DeadlineMiss = true
		p.locked(func() { p.stats.DeadlineMisses++ })
	}
	return br, nil
}

// batchBudgetExpired decides the pre-FP32 abort: a deadline-carrying
// batch whose burned latency has already consumed the budget is
// abandoned rather than degraded.
func (p *Pool) batchBudgetExpired(burnedSec float64, ctx *rtctx.Request) error {
	if !ctx.Aborts() || burnedSec < ctx.BudgetSec {
		return nil
	}
	p.locked(func() { p.stats.DeadlineAborts++ })
	return fmt.Errorf("serve: pool batch abandoned at %.3gs of a %.3gs budget: %w",
		burnedSec, ctx.BudgetSec, ErrDeadlineExceeded)
}

// serveRRBatch dispatches the whole batch to the next active replica,
// failing over like serveRR. The request context gates the terminal
// FP32 tier (an already-blown budget abandons the batch) and arms the
// layer-boundary guard inside each replica's batched inference, so a
// hopeless batch aborts mid-graph without trying further replicas —
// every replica runs the same schedule against the same spent budget.
func (p *Pool) serveRRBatch(req uint64, xs []*tensor.Tensor, runIndex int, ctx *rtctx.Request) (*PoolBatchResult, error) {
	active := p.sup.active()
	if len(active) == 0 {
		return p.serveFP32Batch(xs, 0)
	}
	var start int
	p.locked(func() {
		start = p.rr
		p.rr++
	})
	var total float64
	for i := 0; i < len(active); i++ {
		r := active[(start+i)%len(active)]
		if !r.activeState() {
			continue
		}
		burned := total
		run, runErr := r.eng.RunFaulty(p.runCfg(runIndex), r.inj)
		total += run.LatencySec
		var outs [][]*tensor.Tensor
		var inferErr error
		if runErr == nil {
			outs, inferErr = r.eng.InferBatchCtx(ctx, xs, r.inj, p.cfg.Device, burned)
			if errors.Is(inferErr, core.ErrBudgetExhausted) {
				// The replica behaved — the budget ran out. Fold its
				// latency observation without an error mark, then abandon.
				p.locked(func() {
					p.countObservation(p.sup.observe(req, r, run.LatencySec, false))
					p.stats.DeadlineAborts++
					p.stats.DeadlineMisses++
				})
				return nil, fmt.Errorf("serve: pool batch abandoned mid-graph at %.3gs of a %.3gs budget: %w",
					total, ctx.BudgetSec, ErrDeadlineExceeded)
			}
		}
		errored := runErr != nil || inferErr != nil
		served := false
		p.locked(func() {
			p.countObservation(p.sup.observe(req, r, run.LatencySec, errored))
			if errored {
				p.stats.ReplicaFails++
				return
			}
			p.stats.RoundRobin++
			served = true
		})
		if served {
			br := &PoolBatchResult{LatencySec: total}
			for _, o := range outs {
				br.Results = append(br.Results, &PoolResult{
					Outputs:    o,
					LatencySec: total,
					Replica:    r.slot,
					BuildID:    r.eng.BuildID,
				})
			}
			return br, nil
		}
	}
	if err := p.batchBudgetExpired(total, ctx); err != nil {
		return nil, err
	}
	return p.serveFP32Batch(xs, total)
}

// bvote is one replica's answer to a batched quorum request.
type bvote struct {
	r       *replica
	lat     float64
	outs    [][]*tensor.Tensor
	errored bool
}

// serveQuorumBatch runs every active replica once over the batch, then
// applies serveQuorum's majority rule image by image. The request
// context gates the whole-fleet-errored FP32 fallback; the per-image
// no-majority fallback still runs (the majority images already paid for
// their answers, abandoning the stragglers would discard served work).
// The layer-boundary guard is deliberately NOT armed inside the voters'
// inferences: majority voting needs every replica's complete answer, so
// the budget gates dispatch and the terminal tier instead of truncating
// a ballot mid-graph.
func (p *Pool) serveQuorumBatch(req uint64, xs []*tensor.Tensor, runIndex int, ctx *rtctx.Request) (*PoolBatchResult, error) {
	active := p.sup.active()
	if len(active) == 0 {
		return p.serveFP32Batch(xs, 0)
	}
	votes := make([]bvote, 0, len(active))
	voterCount := 0
	var maxLat, burned float64
	for _, r := range active {
		run, runErr := r.eng.RunFaulty(p.runCfg(runIndex), r.inj)
		v := bvote{r: r, lat: run.LatencySec, errored: runErr != nil}
		if !v.errored {
			outs, err := r.eng.InferBatchFaulty(xs, r.inj)
			if err != nil || len(outs) != len(xs) {
				v.errored = true
			} else {
				v.outs = outs
			}
		}
		if v.errored {
			p.locked(func() { p.stats.ReplicaFails++ })
			burned += v.lat
		} else {
			voterCount++
			if v.lat > maxLat {
				maxLat = v.lat
			}
		}
		votes = append(votes, v)
	}
	if voterCount == 0 {
		// Every replica errored: the batch is headed for the FP32 tier
		// with nothing but burned hedge latency to show for it.
		if err := p.batchBudgetExpired(burned, ctx); err != nil {
			p.locked(func() {
				for i := range votes {
					v := &votes[i]
					p.countObservation(p.sup.observe(req, v.r, v.lat, v.errored))
				}
			})
			return nil, err
		}
	}

	br := &PoolBatchResult{Results: make([]*PoolResult, len(xs))}
	for img, x := range xs {
		voters := make([]vote, 0, len(votes))
		for _, v := range votes {
			if v.errored {
				continue
			}
			o := v.outs[img]
			arg := -1
			if len(o) > 0 {
				arg = argmax(o[0])
			}
			voters = append(voters, vote{r: v.r, lat: v.lat, outs: o, arg: arg})
		}

		// Strict-majority argmax; at most one can hold it.
		majArg, majority := -1, []vote(nil)
		for _, v := range voters {
			n := 0
			for _, w := range voters {
				if w.arg == v.arg {
					n++
				}
			}
			if 2*n > len(voters) {
				majArg = v.arg
				for _, w := range voters {
					if w.arg == majArg {
						majority = append(majority, w)
					}
				}
				break
			}
		}

		// Divergence signal, per image in slot order (each image of the
		// batch is one quorum vote's worth of evidence).
		var refArg = -1
		var refOuts []*tensor.Tensor
		if majArg < 0 && len(voters) > 0 {
			outs, err := core.UnoptimizedInfer(p.fallback, x)
			if err == nil && len(outs) > 0 {
				refOuts = outs
				refArg = argmax(outs[0])
			}
		}
		p.locked(func() {
			for _, v := range voters {
				switch {
				case majArg >= 0:
					p.sup.noteDivergence(v.r, v.arg != majArg)
				case refArg >= 0:
					p.sup.noteDivergence(v.r, v.arg != refArg)
				}
			}
		})

		if len(majority) == 0 {
			p.locked(func() { p.stats.NoMajority++ })
			res, err := p.serveFP32(x, maxLat)
			if err != nil {
				return nil, err
			}
			if res.Outputs == nil && refOuts != nil {
				res.Outputs = refOuts
			}
			res.Voters = len(voters)
			br.Results[img] = res
		} else {
			winner := majority[0]
			lats := make([]float64, len(majority))
			for i, v := range majority {
				lats[i] = v.lat
			}
			sort.Float64s(lats)
			release := lats[0]
			if len(lats) > 1 {
				release = lats[1]
			}
			p.locked(func() { p.stats.QuorumServed++ })
			br.Results[img] = &PoolResult{
				Outputs:    winner.outs,
				LatencySec: release,
				Replica:    winner.r.slot,
				BuildID:    winner.r.eng.BuildID,
				Voters:     len(voters),
				Majority:   len(majority),
			}
		}
		if br.Results[img].LatencySec > br.LatencySec {
			br.LatencySec = br.Results[img].LatencySec
		}
	}

	// One latency observation per replica: the batch was one run each.
	p.locked(func() {
		for i := range votes {
			v := &votes[i]
			p.countObservation(p.sup.observe(req, v.r, v.lat, v.errored))
		}
	})
	return br, nil
}

// serveFP32Batch serves every image of the batch from the FP32 tier.
func (p *Pool) serveFP32Batch(xs []*tensor.Tensor, baseLat float64) (*PoolBatchResult, error) {
	br := &PoolBatchResult{}
	for _, x := range xs {
		res, err := p.serveFP32(x, baseLat)
		if err != nil {
			return nil, err
		}
		br.Results = append(br.Results, res)
		if res.LatencySec > br.LatencySec {
			br.LatencySec = res.LatencySec
		}
	}
	return br, nil
}
