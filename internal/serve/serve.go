// Package serve wraps a built engine into a resilient inference
// executor: the layer a production deployment needs between "an engine
// exists" and "requests get answered" once the device stops being
// pristine. It provides per-request deadlines, bounded retry with
// exponential backoff and seeded jitter, a circuit breaker that trips on
// persistent primary-engine faults, health/heartbeat state, and a
// graceful-degradation fallback chain:
//
//	tuned engine  →  lower-batch engine  →  FP32 reference path
//
// The final tier runs the un-optimized model on the host
// (core.UnoptimizedRun / core.UnoptimizedInfer), which the accelerator
// fault plan cannot touch, so a correctly configured executor answers
// every request — at degraded latency and baseline accuracy — even under
// a 100%-fault plan. Every fault seen, retry issued, deadline missed and
// fallback taken is counted.
package serve

import (
	"errors"
	"fmt"
	"sync"

	"edgeinfer/internal/core"
	"edgeinfer/internal/fixrand"
	"edgeinfer/internal/gpusim"
	"edgeinfer/internal/graph"
	"edgeinfer/internal/rtctx"
	"edgeinfer/internal/tensor"
)

// ErrDeadlineExceeded is the typed deadline error: DoDeadline and
// DoBatchDeadline return it (wrapped, test with errors.Is) when a
// request's deadline expires before any tier has produced an answer, so
// a serving front-end can map deadline misses to a distinct status code
// and metric instead of string-matching. Do and DoBatch never return it:
// they keep the historical answer-late-rather-than-never contract.
var ErrDeadlineExceeded = errors.New("serve: request deadline exceeded")

// Tier identifies which stage of the degradation chain served a request.
type Tier int

const (
	// TierTuned is the primary TRT-style engine.
	TierTuned Tier = iota
	// TierLowBatch is the optional reduced-batch engine (smaller memory
	// footprint, shorter plan).
	TierLowBatch
	// TierFP32 is the un-optimized host reference path.
	TierFP32

	numTiers
)

var tierNames = [numTiers]string{"tuned", "low-batch", "fp32"}

// String implements fmt.Stringer.
func (t Tier) String() string {
	if int(t) < len(tierNames) {
		return tierNames[t]
	}
	return fmt.Sprintf("tier(%d)", int(t))
}

// Allocator is the memory-pressure admission interface
// (faults.Injector implements it). Alloc reserves a request's per-thread
// footprint; Free releases it.
type Allocator interface {
	Alloc(bytes float64) error
	Free(bytes float64)
}

// Config parameterizes an Executor. Engine, Fallback and Device are
// required; everything else has working defaults.
type Config struct {
	// Engine is the primary tuned engine.
	Engine *core.Engine
	// LowBatch is an optional reduced-batch engine tried after the
	// primary fails (nil skips the tier).
	LowBatch *core.Engine
	// Fallback is the pristine un-optimized graph for the FP32 tier. It
	// must have materialized weights if numeric requests are served.
	Fallback *graph.Graph
	// Device the requests run on.
	Device *gpusim.Device
	// Injector is the fault plan to execute under (nil = pristine).
	Injector core.FaultInjector
	// IncludeMemcpy counts the H2D weight copy in each attempt.
	IncludeMemcpy bool
	// DeadlineSec bounds one request's accumulated simulated latency;
	// exceeding it abandons the current tier and degrades (0 = none).
	DeadlineSec float64
	// MaxRetries bounds retries per accelerated tier (so each tier makes
	// at most MaxRetries+1 attempts). Default 2.
	MaxRetries int
	// BackoffBaseSec is the first retry's backoff; it doubles per retry
	// with ±50% seeded jitter, capped at BackoffMaxSec. Defaults 1ms/50ms.
	BackoffBaseSec float64
	BackoffMaxSec  float64
	// BreakerThreshold trips the circuit breaker after this many
	// consecutive primary-tier terminal failures (default 5).
	BreakerThreshold int
	// BreakerCooldown is how many requests the breaker stays open
	// (short-circuiting the primary tier) before a half-open probe
	// (default 10).
	BreakerCooldown int
	// Seed keys the backoff-jitter stream.
	Seed string
}

func (c *Config) withDefaults() Config {
	d := *c
	if d.MaxRetries <= 0 {
		d.MaxRetries = 2
	}
	if d.BackoffBaseSec <= 0 {
		d.BackoffBaseSec = 1e-3
	}
	if d.BackoffMaxSec <= 0 {
		d.BackoffMaxSec = 50e-3
	}
	if d.BreakerThreshold <= 0 {
		d.BreakerThreshold = 5
	}
	if d.BreakerCooldown <= 0 {
		d.BreakerCooldown = 10
	}
	return d
}

// Result is one served request.
type Result struct {
	// Outputs are the numeric outputs (nil for timed-only requests).
	Outputs []*tensor.Tensor
	// LatencySec is the end-to-end simulated latency: every attempt's
	// run time (including the partial time of failed attempts), stalls,
	// memcpy retries, and backoff waits.
	LatencySec float64
	// Tier that finally served the request.
	Tier Tier
	// Retries issued across all tiers.
	Retries int
	// Degraded reports the request was not served by the tuned engine.
	Degraded bool
	// DeadlineMiss reports the accumulated latency exceeded the deadline
	// (the request is still answered, by a cheaper tier).
	DeadlineMiss bool

	// deadlineSec is this request's effective deadline: the config
	// deadline for Do/DoBatch, clamped with the per-request budget for
	// DoDeadline/DoBatchDeadline. Zero means none.
	deadlineSec float64
}

// Stats are the executor's cumulative degradation counters.
type Stats struct {
	Requests       uint64
	Retries        uint64
	DeadlineMisses uint64
	AllocRejects   uint64
	TierServed     [numTiers]uint64
	BreakerTrips   uint64
	BreakerSkips   uint64 // requests that short-circuited the open breaker
	TierFailures   [numTiers]uint64
	// BackoffClamps counts retry backoffs truncated because the full
	// jittered wait would have overshot the request deadline.
	BackoffClamps uint64
	// DeadlineAborts counts requests abandoned with ErrDeadlineExceeded
	// (DoDeadline/DoBatchDeadline only; Do always answers).
	DeadlineAborts uint64
}

// Health is the executor's heartbeat view.
type Health struct {
	// State is "healthy", "degraded" (last request fell back) or "open"
	// (circuit breaker tripped).
	State string
	// ConsecutiveFailures of the primary tier.
	ConsecutiveFailures int
	// LastTier that served a request.
	LastTier Tier
	Requests uint64
}

// Executor is the resilient inference front end. Safe for concurrent use.
type Executor struct {
	cfg Config

	mu          sync.Mutex
	rng         *fixrand.Source
	consecFails int
	open        bool
	cooldown    int // requests left before a half-open probe
	lastTier    Tier
	stats       Stats
}

// New validates the config and builds an executor.
func New(cfg Config) (*Executor, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("serve: config needs a primary engine")
	}
	if cfg.Device == nil {
		return nil, fmt.Errorf("serve: config needs a device")
	}
	if cfg.Fallback == nil {
		return nil, fmt.Errorf("serve: config needs a fallback graph")
	}
	if !cfg.Fallback.Finalized() {
		return nil, fmt.Errorf("serve: fallback graph is not finalized")
	}
	c := cfg.withDefaults()
	return &Executor{
		cfg: c,
		rng: fixrand.NewKeyed("serve/" + c.Seed + "/" + c.Engine.Key()),
	}, nil
}

// Stats returns a snapshot of the degradation counters.
func (ex *Executor) Stats() Stats {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	return ex.stats
}

// Health returns the heartbeat state.
func (ex *Executor) Health() Health {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	h := Health{
		ConsecutiveFailures: ex.consecFails,
		LastTier:            ex.lastTier,
		Requests:            ex.stats.Requests,
	}
	switch {
	case ex.open:
		h.State = "open"
	case ex.lastTier != TierTuned && ex.stats.Requests > 0:
		h.State = "degraded"
	default:
		h.State = "healthy"
	}
	return h
}

// admitTuned decides whether this request may try the primary tier,
// honouring the circuit breaker's open/half-open cycle.
func (ex *Executor) admitTuned() bool {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	if !ex.open {
		return true
	}
	if ex.cooldown > 0 {
		ex.cooldown--
		ex.stats.BreakerSkips++
		return false
	}
	// Half-open: let one probe through; recordPrimary re-opens on failure.
	return true
}

func (ex *Executor) recordPrimary(ok bool) {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	if ok {
		ex.consecFails = 0
		ex.open = false
		return
	}
	ex.consecFails++
	if ex.open {
		// Failed half-open probe: re-arm the cooldown.
		ex.cooldown = ex.cfg.BreakerCooldown
		return
	}
	if ex.consecFails >= ex.cfg.BreakerThreshold {
		ex.open = true
		ex.cooldown = ex.cfg.BreakerCooldown
		ex.stats.BreakerTrips++
	}
}

// backoff returns the jittered wait before retry attempt (1-based).
func (ex *Executor) backoff(attempt int) float64 {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	d := ex.cfg.BackoffBaseSec * float64(int(1)<<uint(attempt-1))
	if d > ex.cfg.BackoffMaxSec {
		d = ex.cfg.BackoffMaxSec
	}
	return d * (0.5 + ex.rng.Float64()) // ±50% jitter
}

func (ex *Executor) count(f func(s *Stats)) {
	ex.mu.Lock()
	f(&ex.stats)
	ex.mu.Unlock()
}

// effectiveDeadline clamps the configured deadline with a per-request
// budget; zero values mean "no bound" on that side.
func (ex *Executor) effectiveDeadline(deadlineSec float64) float64 {
	eff := ex.cfg.DeadlineSec
	if deadlineSec > 0 && (eff <= 0 || deadlineSec < eff) {
		eff = deadlineSec
	}
	return eff
}

// abortLate decides the terminal-tier fate of a deadline-expired request:
// answer-late (Do/DoBatch) or abandon with the typed error
// (DoDeadline/DoBatchDeadline). It must be called before the FP32 tier
// pays its reference pass, so an abandoned request never burns the
// fallback's latency.
func (ex *Executor) abortLate(res *Result, abort bool) error {
	if !abort || !ex.deadlineExceeded(res) {
		return nil
	}
	ex.count(func(s *Stats) { s.DeadlineAborts++ })
	return fmt.Errorf("serve: request abandoned at %.3gs of a %.3gs budget: %w",
		res.LatencySec, res.deadlineSec, ErrDeadlineExceeded)
}

// Do serves one request: a timed pass over the engine plan and — when x
// is non-nil and the serving tier is numeric — a numeric inference whose
// outputs are returned. With a nil or zero-rate injector the result is
// bit-identical to calling Engine.Run and Engine.Infer directly. Under
// faults it degrades down the chain; it returns an error only if the
// FP32 reference path itself cannot serve (a configuration bug, not a
// device fault). It is DoCtx without a request context.
func (ex *Executor) Do(x *tensor.Tensor, runIndex int) (*Result, error) {
	return ex.DoCtx(nil, x, runIndex)
}

// DoDeadline is Do under a per-request deadline (clamped with the
// configured DeadlineSec). Unlike Do, a request whose deadline expires
// before any tier has served is abandoned with a wrapped
// ErrDeadlineExceeded instead of falling through to the FP32 tier — the
// answer could only arrive after the client stopped caring, so the
// reference pass is not paid. A request served late by the tier that was
// already running still gets its answer, with DeadlineMiss set. It is a
// compatibility wrapper over DoCtx.
func (ex *Executor) DoDeadline(x *tensor.Tensor, runIndex int, deadlineSec float64) (*Result, error) {
	return ex.DoCtx(rtctx.WithBudget(deadlineSec), x, runIndex)
}

// DoCtx is the single budget-carrying serving path: the context's
// budget clamps through the configured DeadlineSec, and an aborting
// context (rtctx.Request.Aborts) abandons an expired request with a
// wrapped ErrDeadlineExceeded before the FP32 tier instead of
// answering late. A nil context serves unbounded — exactly Do.
func (ex *Executor) DoCtx(ctx *rtctx.Request, x *tensor.Tensor, runIndex int) (*Result, error) {
	return ex.do(x, runIndex, ex.effectiveDeadline(ctx.Budget()), ctx.Aborts())
}

func (ex *Executor) do(x *tensor.Tensor, runIndex int, deadlineSec float64, abort bool) (*Result, error) {
	ex.count(func(s *Stats) { s.Requests++ })
	res := &Result{Tier: TierFP32, deadlineSec: deadlineSec}

	tryTuned := ex.admitTuned()
	alloc, _ := ex.cfg.Injector.(Allocator)

	for tier := TierTuned; tier < TierFP32; tier++ {
		eng := ex.cfg.Engine
		if tier == TierLowBatch {
			eng = ex.cfg.LowBatch
		}
		if eng == nil || (tier == TierTuned && !tryTuned) {
			continue
		}
		// A numeric request needs a numeric engine; a timing-only tier
		// cannot serve it (configuration mismatch, not a device fault).
		if x != nil && !eng.Numeric {
			continue
		}
		if ex.deadlineExceeded(res) {
			break
		}
		// Memory-pressure admission: reserve the engine's per-thread
		// footprint for the attempt window.
		if alloc != nil {
			if err := alloc.Alloc(eng.PerThreadMemBytes()); err != nil {
				ex.count(func(s *Stats) { s.AllocRejects++ })
				if tier == TierTuned {
					ex.recordPrimary(false)
				}
				continue // engine needs memory it cannot get: degrade
			}
		}
		ok := ex.tryTier(eng, tier, x, runIndex, res)
		if alloc != nil {
			alloc.Free(eng.PerThreadMemBytes())
		}
		if tier == TierTuned {
			ex.recordPrimary(ok)
		}
		if ok {
			res.Tier = tier
			res.Degraded = tier != TierTuned
			ex.count(func(s *Stats) { s.TierServed[tier]++ })
			ex.setLastTier(tier)
			return res, nil
		}
		ex.count(func(s *Stats) { s.TierFailures[tier]++ })
	}

	// Terminal tier: the FP32 host path, outside the accelerator fault
	// domain. UnoptimizedRun prices the framework's reference execution.
	if err := ex.abortLate(res, abort); err != nil {
		return nil, err
	}
	res.LatencySec += core.UnoptimizedRun(ex.cfg.Fallback, ex.cfg.Device)
	ex.deadlineExceeded(res) // count the miss if the fallback pushed us over
	if x != nil {
		outs, err := core.UnoptimizedInfer(ex.cfg.Fallback, x)
		if err != nil {
			return nil, fmt.Errorf("serve: FP32 fallback failed: %w", err)
		}
		res.Outputs = outs
	}
	res.Tier = TierFP32
	res.Degraded = true
	ex.count(func(s *Stats) { s.TierServed[TierFP32]++ })
	ex.setLastTier(TierFP32)
	return res, nil
}

// tryTier makes up to MaxRetries+1 attempts on one engine, accumulating
// latency (including failed attempts and backoff) into res. Returns
// whether the tier served the request, leaving outputs in res on success.
func (ex *Executor) tryTier(eng *core.Engine, tier Tier, x *tensor.Tensor, runIndex int, res *Result) bool {
	cfg := core.RunConfig{
		Device:        ex.cfg.Device,
		IncludeMemcpy: ex.cfg.IncludeMemcpy,
		RunIndex:      runIndex,
	}
	for attempt := 0; attempt <= ex.cfg.MaxRetries; attempt++ {
		if attempt > 0 && !ex.retryWait(attempt, res) {
			return false
		}
		run, err := eng.RunFaulty(cfg, ex.cfg.Injector)
		res.LatencySec += run.LatencySec
		if err == nil && x != nil && eng.Numeric {
			var outs []*tensor.Tensor
			outs, err = eng.InferFaulty(x, ex.cfg.Injector)
			if err == nil {
				res.Outputs = outs
			}
		}
		if err == nil {
			if ex.deadlineExceeded(res) {
				// Served, but too late: keep the answer, record the miss.
				return true
			}
			return true
		}
	}
	return false
}

// retryWait accounts one retry's backoff into res. The modeled wait
// must not accumulate past the request deadline: sleeping beyond the
// remaining budget cannot help the request, it only inflates the
// recorded miss, so the wait is clamped to what is left (the
// backoff-jitter stream still advances, so clamping never perturbs
// later requests). Reports false when the deadline is already gone.
func (ex *Executor) retryWait(attempt int, res *Result) bool {
	res.Retries++
	ex.count(func(s *Stats) { s.Retries++ })
	wait := ex.backoff(attempt)
	if res.deadlineSec > 0 {
		if remain := res.deadlineSec - res.LatencySec; wait > remain {
			if remain < 0 {
				remain = 0
			}
			wait = remain
			ex.count(func(s *Stats) { s.BackoffClamps++ })
		}
	}
	res.LatencySec += wait
	return !ex.deadlineExceeded(res)
}

// deadlineExceeded checks (and counts, once) the request deadline.
func (ex *Executor) deadlineExceeded(res *Result) bool {
	if res.deadlineSec <= 0 || res.LatencySec <= res.deadlineSec {
		return false
	}
	if !res.DeadlineMiss {
		res.DeadlineMiss = true
		ex.count(func(s *Stats) { s.DeadlineMisses++ })
	}
	return true
}

func (ex *Executor) setLastTier(t Tier) {
	ex.mu.Lock()
	ex.lastTier = t
	ex.mu.Unlock()
}
