// Self-healing replica fleet. The paper's Findings 2 and 6 establish
// that independently built engines of the same model genuinely diverge —
// different tactic choices, different rounding, occasionally different
// argmaxes. A Pool turns that liability into a fault detector: K
// replicas with distinct build ids serve together, a quorum dispatcher
// votes on their argmaxes, and a Supervisor watches two health signals
// per replica — a latency watchdog (observed run latency vs the
// replica's own build-time plan expectation, EWMA-smoothed) and a
// divergence score (EWMA of quorum disagreements). Replicas that go bad
// walk a state machine
//
//	healthy → suspect → quarantined → rebuilding → readmitted → healthy
//
// quarantined replicas leave the dispatch set (traffic drains to the
// remaining replicas, or to the FP32 reference tier when none remain),
// are rebuilt in the background through the registry's shared timing
// cache — a warm, canonical rebuild, the §VI-A "build once" mechanism —
// re-validated against the FP32 reference on a canary set, and
// readmitted. Every transition is counted (metrics.Transitions) and
// appended to a transcript that is byte-identical across same-seed runs.
package serve

import (
	"fmt"
	"sort"
	"sync"

	"edgeinfer/internal/core"
	"edgeinfer/internal/gpusim"
	"edgeinfer/internal/graph"
	"edgeinfer/internal/metrics"
	"edgeinfer/internal/rtctx"
	"edgeinfer/internal/tensor"
)

// ReplicaState is one stage of the supervisor's per-replica state
// machine.
type ReplicaState int

const (
	// StateHealthy replicas serve traffic with no live anomaly signal.
	StateHealthy ReplicaState = iota
	// StateSuspect replicas serve traffic while an anomaly signal is
	// being confirmed.
	StateSuspect
	// StateQuarantined replicas are out of the dispatch set, waiting for
	// the background rebuild to land.
	StateQuarantined
	// StateRebuilding replicas are being rebuilt and canary-validated.
	StateRebuilding
	// StateReadmitted replicas are back in the dispatch set on
	// probation: one clean observation away from healthy.
	StateReadmitted

	numStates
)

var stateNames = [numStates]string{
	"healthy", "suspect", "quarantined", "rebuilding", "readmitted",
}

// String implements fmt.Stringer.
func (s ReplicaState) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// PoolConfig parameterizes a replica fleet. Model is required;
// everything else has working defaults.
type PoolConfig struct {
	// Model names the served model (a models.Build/BuildProxy name).
	Model string
	// Replicas is the fleet size K (default 3). Replica 0 populates the
	// registry's shared timing cache; the rest build cold and diverge.
	Replicas int
	// Quorum selects hedged dispatch with majority voting on argmax.
	// False selects round-robin (latency watchdog only — a round-robin
	// fleet has no peers to disagree with, so silent corruption is
	// invisible to it by construction).
	Quorum bool
	// Device the fleet serves on; nil defaults to the registry platform
	// at its paper latency clock.
	Device *gpusim.Device
	// IncludeMemcpy counts the H2D weight copy in each replica run (and
	// in the watchdog's expectation).
	IncludeMemcpy bool
	// ReplicaInjector, when non-nil, is consulted per replica — at fleet
	// construction and again after every rebuild — so faults can target
	// one build id and heal when the rebuild lands. Nil return means the
	// replica runs pristine.
	ReplicaInjector func(slot int, e *core.Engine) core.FaultInjector

	// LatencyThreshold is the watchdog trip point: the EWMA of
	// observed/expected latency above which a replica is anomalous
	// (default 1.4 — run jitter is ~2%, so nothing natural gets close,
	// while a sustained inflation clears it even on tiny proxy engines
	// whose fixed launch overhead dilutes kernel-time slowdowns).
	LatencyThreshold float64
	// DivergenceThreshold is the quorum-disagreement EWMA trip point
	// (default 0.45 — diverged builds legitimately disagree on a few
	// percent of inputs, corrupted replicas on most).
	DivergenceThreshold float64
	// EWMAAlpha is the smoothing weight of both signals (default 0.3).
	EWMAAlpha float64
	// MinSamples gates both signals: no verdict before this many
	// observations of a replica (default 3).
	MinSamples int
	// SuspectConfirm is how many consecutive anomalous observations
	// (including the one that raised suspicion) quarantine a suspect
	// (default 2).
	SuspectConfirm int
	// RebuildDelay is how many requests a replica sits quarantined
	// before its background rebuild lands (the deterministic model of
	// rebuild time; default 4).
	RebuildDelay int
	// Canary is the validation set a rebuilt replica must pass before
	// readmission: its argmax must match the FP32 reference on at least
	// CanaryAgreeFrac of the inputs (default 0.5 — a canonical engine
	// legitimately disagrees with FP32 on some inputs, per the paper's
	// Tables V and VI). An empty canary set skips validation.
	Canary          []*tensor.Tensor
	CanaryAgreeFrac float64
}

func (c *PoolConfig) withDefaults() PoolConfig {
	d := *c
	if d.Replicas <= 0 {
		d.Replicas = 3
	}
	if d.LatencyThreshold <= 0 {
		d.LatencyThreshold = 1.4
	}
	if d.DivergenceThreshold <= 0 {
		d.DivergenceThreshold = 0.45
	}
	if d.EWMAAlpha <= 0 || d.EWMAAlpha > 1 {
		d.EWMAAlpha = 0.3
	}
	if d.MinSamples <= 0 {
		d.MinSamples = 3
	}
	if d.SuspectConfirm <= 0 {
		d.SuspectConfirm = 2
	}
	if d.RebuildDelay <= 0 {
		d.RebuildDelay = 4
	}
	if d.CanaryAgreeFrac <= 0 || d.CanaryAgreeFrac > 1 {
		d.CanaryAgreeFrac = 0.5
	}
	return d
}

// replica is one fleet member and its supervisor-side health state.
type replica struct {
	slot     int
	eng      *core.Engine
	inj      core.FaultInjector
	expected float64 // watchdog baseline on the serving device

	state   ReplicaState
	latEWMA float64 // EWMA of observed/expected latency ratio
	divEWMA float64 // EWMA of quorum disagreement (0/1 per vote)
	samples int
	strikes int // consecutive anomalous observations while suspect

	quarantinedAt uint64
	quarantines   int
	rebuilds      int
	readmits      int
}

func (r *replica) activeState() bool {
	switch r.state {
	case StateHealthy, StateSuspect, StateReadmitted:
		return true
	}
	return false
}

// Supervisor maintains per-replica health state from the latency
// watchdog and divergence signals, records every state transition, and
// keeps the deterministic transcript. It is owned by a Pool, which holds
// the lock.
type Supervisor struct {
	cfg        PoolConfig
	reps       []*replica
	trans      metrics.Transitions
	transcript []string
}

func newSupervisor(cfg PoolConfig) *Supervisor {
	return &Supervisor{cfg: cfg}
}

// active returns the replicas currently in the dispatch set, in slot
// order.
func (s *Supervisor) active() []*replica {
	out := make([]*replica, 0, len(s.reps))
	for _, r := range s.reps {
		if r.activeState() {
			out = append(out, r)
		}
	}
	return out
}

// transition moves a replica to a new state, counting the edge and
// appending a transcript line.
func (s *Supervisor) transition(req uint64, r *replica, to ReplicaState, detail string) {
	from := r.state
	s.trans.Add(from.String(), to.String())
	r.state = to
	line := fmt.Sprintf("req %d: replica %d (build %d) %s->%s", req, r.slot, r.eng.BuildID, from, to)
	if detail != "" {
		line += " " + detail
	}
	s.transcript = append(s.transcript, line)
}

// noteDivergence folds one quorum vote into a replica's divergence EWMA.
func (s *Supervisor) noteDivergence(r *replica, disagreed bool) {
	d := 0.0
	if disagreed {
		d = 1
	}
	r.divEWMA = s.cfg.EWMAAlpha*d + (1-s.cfg.EWMAAlpha)*r.divEWMA
}

// observe folds one served request into a replica's health state and
// advances the state machine. errored marks a request the replica failed
// outright (a strike without an EWMA update — the partial latency of a
// failed run says nothing about the replica's speed). It reports whether
// this observation raised a new suspicion and whether it quarantined the
// replica.
func (s *Supervisor) observe(req uint64, r *replica, latSec float64, errored bool) (detected, quarantined bool) {
	anomalous := errored
	signal := "error"
	if !errored {
		if r.expected > 0 && latSec > 0 {
			ratio := latSec / r.expected
			r.latEWMA = s.cfg.EWMAAlpha*ratio + (1-s.cfg.EWMAAlpha)*r.latEWMA
		}
		r.samples++
		if r.samples >= s.cfg.MinSamples && r.latEWMA > s.cfg.LatencyThreshold {
			anomalous = true
			signal = fmt.Sprintf("lat-ewma=%.3f", r.latEWMA)
		}
		if r.samples >= s.cfg.MinSamples && r.divEWMA > s.cfg.DivergenceThreshold {
			anomalous = true
			signal = fmt.Sprintf("div-ewma=%.3f", r.divEWMA)
		}
	}
	next, strikes, ev := HealthFSM{SuspectConfirm: s.cfg.SuspectConfirm}.Advance(r.state, r.strikes, anomalous)
	r.strikes = strikes
	switch ev {
	case FSMDetected:
		s.transition(req, r, next, signal)
		detected = true
	case FSMQuarantined:
		r.quarantinedAt = req
		r.quarantines++
		s.transition(req, r, next, signal)
		quarantined = true
	case FSMCleared:
		s.transition(req, r, next, "cleared")
	case FSMProbationPassed:
		s.transition(req, r, next, "probation passed")
	}
	return detected, quarantined
}

// PoolStats are the fleet's cumulative counters.
type PoolStats struct {
	Requests     uint64
	RoundRobin   uint64 // requests served by round-robin dispatch
	QuorumServed uint64 // requests served by a quorum majority
	NoMajority   uint64 // quorum requests with no strict majority
	FP32Served   uint64 // requests served by the FP32 reference tier
	ReplicaFails uint64 // replica attempts that errored outright

	Detections     uint64 // healthy/readmitted → suspect transitions
	Quarantines    uint64 // suspect → quarantined transitions
	Rebuilds       uint64 // background rebuilds completed
	CanaryFailures uint64 // rebuilds rejected by canary validation
	Readmissions   uint64 // rebuilding → readmitted transitions

	DeadlineAborts uint64 // batches abandoned (pre-FP32 or mid-graph) on an expired budget
	// DeadlineMisses counts answered requests whose release time overran
	// the request context's budget — the fleet's own miss verdict.
	DeadlineMisses uint64
}

// PoolResult is one request served by the fleet.
type PoolResult struct {
	// Outputs are the winning replica's outputs (or the FP32
	// reference's); nil for timed-only requests.
	Outputs []*tensor.Tensor
	// LatencySec is the request's modeled latency: the serving replica's
	// run (plus failed predecessors under round-robin failover), the
	// majority-confirmation time under quorum, or the FP32 path.
	LatencySec float64
	// Replica is the serving slot (-1 when the FP32 tier served).
	Replica int
	// BuildID of the serving replica's engine (-1 for FP32).
	BuildID int
	// Voters is how many replicas answered a quorum request.
	Voters int
	// Majority is the size of the agreeing majority (0 = none).
	Majority int
	// Fallback reports the FP32 reference tier served the request.
	Fallback bool
	// DeadlineMiss reports the release time overran the request
	// context's budget (DoCtx with a budget-carrying context only).
	DeadlineMiss bool
}

// ReplicaHealth is one replica's view in the fleet health report.
type ReplicaHealth struct {
	Slot           int
	BuildID        int
	State          string
	LatencyEWMA    float64
	DivergenceEWMA float64
	Samples        int
	Quarantines    int
	Rebuilds       int
	Readmissions   int
}

// PoolHealth is the fleet's heartbeat view.
type PoolHealth struct {
	Model    string
	Active   int // replicas currently in the dispatch set
	Replicas []ReplicaHealth
	// Transitions counts every supervisor state-machine edge taken,
	// keyed "from->to".
	Transitions map[string]uint64
}

// Pool is a self-healing fleet of engine replicas serving one model.
// Safe for concurrent use. Requests serialize on a single-token turn
// channel so the supervisor's transcript stays deterministic; the state
// mutex guards only short read/write sections and is never held across
// an inference (the lockorder analyzer enforces this), so Health, Stats
// and Transcript answer immediately even while a request is in flight.
type Pool struct {
	cfg      PoolConfig
	reg      *Registry
	fallback *graph.Graph

	// turn is the request ticket: exactly one token exists, and a request
	// holds it end to end. The holder is the only goroutine mutating pool
	// state, which is what lets the serving path read that state without
	// the mutex between its locked sections.
	turn chan struct{}

	mu    sync.Mutex // guards sup/rr/stats; never held across inference
	sup   *Supervisor
	rr    int
	stats PoolStats
}

// locked runs one short state mutation under the mutex.
func (p *Pool) locked(f func()) {
	p.mu.Lock()
	f()
	p.mu.Unlock()
}

// NewPool builds a replica fleet from the registry: K numeric proxy
// replicas (replica 0 warms the shared timing cache, the rest diverge)
// plus the pristine FP32 fallback graph.
func NewPool(reg *Registry, cfg PoolConfig) (*Pool, error) {
	if cfg.Model == "" {
		return nil, fmt.Errorf("serve: pool config needs a model")
	}
	c := cfg.withDefaults()
	if c.Device == nil {
		c.Device = gpusim.NewDevice(reg.spec, gpusim.PaperLatencyClock(reg.spec))
	}
	engines, err := reg.ReplicaEngines(c.Model, c.Replicas)
	if err != nil {
		return nil, err
	}
	fb, err := reg.Fallback(c.Model)
	if err != nil {
		return nil, err
	}
	sup := newSupervisor(c)
	for slot, e := range engines {
		r := &replica{
			slot:     slot,
			eng:      e,
			expected: e.ExpectedLatencySec(c.Device, c.IncludeMemcpy),
			latEWMA:  1,
		}
		if c.ReplicaInjector != nil {
			r.inj = c.ReplicaInjector(slot, e)
		}
		sup.reps = append(sup.reps, r)
	}
	p := &Pool{cfg: c, reg: reg, fallback: fb, sup: sup, turn: make(chan struct{}, 1)}
	p.turn <- struct{}{}
	return p, nil
}

// Stats returns a snapshot of the fleet counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Health returns the fleet's heartbeat view.
func (p *Pool) Health() PoolHealth {
	p.mu.Lock()
	defer p.mu.Unlock()
	h := PoolHealth{Model: p.cfg.Model, Transitions: p.sup.trans.Snapshot()}
	for _, r := range p.sup.reps {
		if r.activeState() {
			h.Active++
		}
		h.Replicas = append(h.Replicas, ReplicaHealth{
			Slot:           r.slot,
			BuildID:        r.eng.BuildID,
			State:          r.state.String(),
			LatencyEWMA:    r.latEWMA,
			DivergenceEWMA: r.divEWMA,
			Samples:        r.samples,
			Quarantines:    r.quarantines,
			Rebuilds:       r.rebuilds,
			Readmissions:   r.readmits,
		})
	}
	return h
}

// Engines returns the current replica engines in slot order. Engines
// are immutable; experiments use this to compare served outputs against
// a replica's pristine Infer.
func (p *Pool) Engines() []*core.Engine {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*core.Engine, len(p.sup.reps))
	for i, r := range p.sup.reps {
		out[i] = r.eng
	}
	return out
}

// Transcript returns a copy of the supervisor's transition log: one line
// per state change, byte-identical across same-seed runs.
func (p *Pool) Transcript() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.sup.transcript...)
}

// Do serves one request through the fleet: hedged quorum dispatch with
// majority voting when cfg.Quorum is set, round-robin with failover
// otherwise; the FP32 reference tier serves when no replica can. With
// no injected faults the outputs are bit-identical to calling the
// serving replica's Engine.Infer directly. An error is only possible
// from the FP32 reference path itself (a configuration bug, not a
// device fault). It is DoCtx without a request context.
func (p *Pool) Do(x *tensor.Tensor, runIndex int) (*PoolResult, error) {
	return p.DoCtx(nil, x, runIndex)
}

// DoCtx is Do under a request context: the single-request twin of
// DoBatchCtx. The context's budget records a DeadlineMiss verdict on
// the result when the release time overruns it; single-request fleet
// dispatch never aborts (the hedged/failover answer is already paid
// for by the time the budget can be judged) — the batch path is where
// mid-graph abort lives, and it is the only path the network front-end
// serves through.
func (p *Pool) DoCtx(ctx *rtctx.Request, x *tensor.Tensor, runIndex int) (*PoolResult, error) {
	<-p.turn
	defer func() { p.turn <- struct{}{} }()
	var req uint64
	p.locked(func() {
		p.stats.Requests++
		req = p.stats.Requests
	})
	p.advanceRebuilds(req)
	var res *PoolResult
	var err error
	if p.cfg.Quorum {
		res, err = p.serveQuorum(req, x, runIndex)
	} else {
		res, err = p.serveRR(req, x, runIndex)
	}
	if err != nil {
		return nil, err
	}
	if b := ctx.Budget(); b > 0 && res.LatencySec > b {
		res.DeadlineMiss = true
		p.locked(func() { p.stats.DeadlineMisses++ })
	}
	return res, nil
}

func (p *Pool) runCfg(runIndex int) core.RunConfig {
	return core.RunConfig{
		Device:        p.cfg.Device,
		IncludeMemcpy: p.cfg.IncludeMemcpy,
		RunIndex:      runIndex,
	}
}

// serveRR dispatches to the next active replica in rotation, failing
// over to each remaining active replica once (their burned latency
// accumulates) and finally to the FP32 tier.
func (p *Pool) serveRR(req uint64, x *tensor.Tensor, runIndex int) (*PoolResult, error) {
	active := p.sup.active()
	if len(active) == 0 {
		return p.serveFP32(x, 0)
	}
	var start int
	p.locked(func() {
		start = p.rr
		p.rr++
	})
	var total float64
	for i := 0; i < len(active); i++ {
		r := active[(start+i)%len(active)]
		if !r.activeState() {
			// Quarantined by its own observation earlier this request.
			continue
		}
		run, runErr := r.eng.RunFaulty(p.runCfg(runIndex), r.inj)
		total += run.LatencySec
		var outs []*tensor.Tensor
		var inferErr error
		if runErr == nil && x != nil {
			outs, inferErr = r.eng.InferFaulty(x, r.inj)
		}
		errored := runErr != nil || inferErr != nil
		served := false
		p.locked(func() {
			p.countObservation(p.sup.observe(req, r, run.LatencySec, errored))
			if errored {
				p.stats.ReplicaFails++
				return
			}
			p.stats.RoundRobin++
			served = true
		})
		if served {
			return &PoolResult{
				Outputs:    outs,
				LatencySec: total,
				Replica:    r.slot,
				BuildID:    r.eng.BuildID,
			}, nil
		}
	}
	return p.serveFP32(x, total)
}

// vote is one replica's answer to a hedged quorum request.
type vote struct {
	r       *replica
	lat     float64
	outs    []*tensor.Tensor
	arg     int
	errored bool
}

// serveQuorum dispatches to every active replica, votes on the argmax
// of the first output, and serves the lowest-slot member of the strict
// majority. The request's latency is the majority-confirmation time:
// the second-smallest latency among the majority (the moment a second
// replica corroborates the answer). With no strict majority the FP32
// reference serves, after the slowest voter has answered.
func (p *Pool) serveQuorum(req uint64, x *tensor.Tensor, runIndex int) (*PoolResult, error) {
	active := p.sup.active()
	if len(active) == 0 {
		return p.serveFP32(x, 0)
	}
	votes := make([]vote, 0, len(active))
	var maxLat float64
	for _, r := range active {
		run, runErr := r.eng.RunFaulty(p.runCfg(runIndex), r.inj)
		v := vote{r: r, lat: run.LatencySec, arg: -1, errored: runErr != nil}
		if !v.errored && x != nil {
			outs, err := r.eng.InferFaulty(x, r.inj)
			if err != nil || len(outs) == 0 {
				v.errored = true
			} else {
				v.outs = outs
				v.arg = argmax(outs[0])
			}
		}
		if v.errored {
			p.locked(func() { p.stats.ReplicaFails++ })
		} else if v.lat > maxLat {
			maxLat = v.lat
		}
		votes = append(votes, v)
	}

	voters := make([]vote, 0, len(votes))
	for _, v := range votes {
		if !v.errored {
			voters = append(voters, v)
		}
	}

	// Find the strict majority answer. With no numeric payload every
	// voter implicitly agrees (hedging without voting). At most one
	// argmax can hold a strict majority, so first-found is the answer.
	majArg, majority := -1, []vote(nil)
	if x == nil {
		majority = voters
	} else {
		for _, v := range voters {
			n := 0
			for _, w := range voters {
				if w.arg == v.arg {
					n++
				}
			}
			if 2*n > len(voters) {
				majArg = v.arg
				for _, w := range voters {
					if w.arg == majArg {
						majority = append(majority, w)
					}
				}
				break
			}
		}
	}

	// Fold the divergence signal and advance every replica's state
	// machine, in slot order. Disagreement is measured against the
	// majority when one exists, else against the FP32 reference below.
	var refArg int = -1
	var refOuts []*tensor.Tensor
	if x != nil && majArg < 0 && len(voters) > 0 {
		outs, err := core.UnoptimizedInfer(p.fallback, x)
		if err == nil && len(outs) > 0 {
			refOuts = outs
			refArg = argmax(outs[0])
		}
	}
	p.locked(func() {
		for i := range votes {
			v := &votes[i]
			if !v.errored && x != nil {
				switch {
				case majArg >= 0:
					p.sup.noteDivergence(v.r, v.arg != majArg)
				case refArg >= 0:
					p.sup.noteDivergence(v.r, v.arg != refArg)
				}
			}
			p.countObservation(p.sup.observe(req, v.r, v.lat, v.errored))
		}
	})

	if len(majority) == 0 {
		p.locked(func() { p.stats.NoMajority++ })
		// The hedge failed: the fallback starts once the slowest voter
		// has answered.
		res, err := p.serveFP32(x, maxLat)
		if err == nil && res.Outputs == nil && refOuts != nil {
			res.Outputs = refOuts
		}
		if err == nil {
			res.Voters = len(voters)
		}
		return res, err
	}

	// Winner: the lowest slot in the majority (voters are in slot
	// order). Released at the majority-confirmation time.
	winner := majority[0]
	lats := make([]float64, len(majority))
	for i, v := range majority {
		lats[i] = v.lat
	}
	sort.Float64s(lats)
	release := lats[0]
	if len(lats) > 1 {
		release = lats[1]
	}
	p.locked(func() { p.stats.QuorumServed++ })
	return &PoolResult{
		Outputs:    winner.outs,
		LatencySec: release,
		Replica:    winner.r.slot,
		BuildID:    winner.r.eng.BuildID,
		Voters:     len(voters),
		Majority:   len(majority),
	}, nil
}

// serveFP32 is the terminal tier: the un-optimized host path, outside
// the replica fault domain. baseLat is latency already burned upstream.
func (p *Pool) serveFP32(x *tensor.Tensor, baseLat float64) (*PoolResult, error) {
	res := &PoolResult{
		LatencySec: baseLat + core.UnoptimizedRun(p.fallback, p.cfg.Device),
		Replica:    -1,
		BuildID:    -1,
		Fallback:   true,
	}
	if x != nil {
		outs, err := core.UnoptimizedInfer(p.fallback, x)
		if err != nil {
			return nil, fmt.Errorf("serve: pool FP32 fallback: %w", err)
		}
		res.Outputs = outs
	}
	p.locked(func() { p.stats.FP32Served++ })
	return res, nil
}

// countObservation folds an observe verdict into the stats. Callers
// hold p.mu (observe mutates supervisor state under the same section).
func (p *Pool) countObservation(detected, quarantined bool) {
	if detected {
		p.stats.Detections++
	}
	if quarantined {
		p.stats.Quarantines++
	}
}

// advanceRebuilds is the deterministic model of background healing: a
// quarantined replica's rebuild lands RebuildDelay requests after the
// quarantine. The rebuild goes through the registry — warm against the
// shared timing cache, so the replacement engine is canonical (build id
// 0, identical plan bytes) — then must pass canary validation against
// the FP32 reference before readmission.
func (p *Pool) advanceRebuilds(req uint64) {
	for _, r := range p.sup.reps {
		if r.state != StateQuarantined || req < r.quarantinedAt+uint64(p.cfg.RebuildDelay) {
			continue
		}
		p.locked(func() {
			p.sup.transition(req, r, StateRebuilding, fmt.Sprintf("rebuild after %d quarantined requests", p.cfg.RebuildDelay))
		})
		// The build and the canary inferences run outside the state lock:
		// both are long and both would otherwise hold p.mu across kernel
		// execution. The turn token keeps them exclusive with other
		// requests regardless.
		e, err := p.reg.Rebuild(p.cfg.Model)
		if err != nil {
			p.locked(func() {
				p.sup.transition(req, r, StateQuarantined, "rebuild failed: "+err.Error())
				r.quarantinedAt = req
			})
			continue
		}
		var inj core.FaultInjector
		if p.cfg.ReplicaInjector != nil {
			inj = p.cfg.ReplicaInjector(r.slot, e)
		}
		expected := e.ExpectedLatencySec(p.cfg.Device, p.cfg.IncludeMemcpy)
		p.locked(func() {
			r.eng, r.inj, r.expected = e, inj, expected
			r.rebuilds++
			p.stats.Rebuilds++
		})
		agree, total := p.canary(r)
		if total > 0 && float64(agree) < p.cfg.CanaryAgreeFrac*float64(total) {
			p.locked(func() {
				p.stats.CanaryFailures++
				p.sup.transition(req, r, StateQuarantined, fmt.Sprintf("canary %d/%d below threshold", agree, total))
				r.quarantinedAt = req
			})
			continue
		}
		p.locked(func() {
			r.latEWMA, r.divEWMA = 1, 0
			r.samples, r.strikes = 0, 0
			r.readmits++
			p.stats.Readmissions++
			p.sup.transition(req, r, StateReadmitted, fmt.Sprintf("canary %d/%d", agree, total))
		})
	}
}

// canary validates a rebuilt replica exactly as it will serve (its own
// injector included) against the FP32 reference.
func (p *Pool) canary(r *replica) (agree, total int) {
	for _, x := range p.cfg.Canary {
		ref, err := core.UnoptimizedInfer(p.fallback, x)
		if err != nil || len(ref) == 0 {
			continue // reference path broken for this input: not the replica's fault
		}
		total++
		outs, err := r.eng.InferFaulty(x, r.inj)
		if err != nil || len(outs) == 0 {
			continue
		}
		if argmax(outs[0]) == argmax(ref[0]) {
			agree++
		}
	}
	return agree, total
}

// argmax returns the index of the largest element (lowest index wins
// ties), or -1 for an empty tensor.
func argmax(t *tensor.Tensor) int {
	if t == nil || len(t.Data) == 0 {
		return -1
	}
	best := 0
	for i, v := range t.Data {
		if v > t.Data[best] {
			best = i
		}
	}
	return best
}
