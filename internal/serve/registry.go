package serve

import (
	"fmt"
	"sync"

	"edgeinfer/internal/core"
	"edgeinfer/internal/gpusim"
	"edgeinfer/internal/graph"
	"edgeinfer/internal/models"
	"edgeinfer/internal/wcet"
)

// Registry builds named engines on demand for one serving platform, with
// every build sharing a single timing cache. The first build of a layer
// shape pays the tactic-timing cost; later builds — other models with
// common shapes, or rebuilds after a process restart — take their
// measurements from the cache, so a fleet of executors converges on
// identical engines (warm rebuilds are canonical: build id 0, identical
// plan bytes). This is the serving-side half of the paper's §VI-A
// "build once" guidance: the registry is the "once".
type Registry struct {
	spec  gpusim.DeviceSpec
	cache *core.TimingCache

	mu        sync.Mutex
	engines   map[string]*core.Engine
	fallbacks map[string]*graph.Graph
	nextBuild int
	stats     RegistryStats
}

// RegistryStats aggregates the build reports of every engine the
// registry has produced.
type RegistryStats struct {
	ColdBuilds  int
	WarmBuilds  int
	CacheHits   int
	CacheMisses int
	TuneCostSec float64 // simulated tactic-timing cost paid so far
}

// NewRegistry creates a registry for one platform. A nil cache starts
// empty; passing a loaded cache (core.LoadTimingCacheFile) makes every
// first build warm.
func NewRegistry(spec gpusim.DeviceSpec, cache *core.TimingCache) *Registry {
	if cache == nil {
		cache = core.NewTimingCache()
	}
	return &Registry{
		spec:      spec,
		cache:     cache,
		engines:   map[string]*core.Engine{},
		fallbacks: map[string]*graph.Graph{},
		nextBuild: 1,
	}
}

// TimingCache exposes the shared cache (for persisting across restarts).
func (r *Registry) TimingCache() *core.TimingCache { return r.cache }

// Stats returns the accumulated build statistics.
func (r *Registry) Stats() RegistryStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// Engine returns the timing-only engine for a model, building it on
// first use.
func (r *Registry) Engine(model string) (*core.Engine, error) {
	return r.engine("full/"+model, model, false)
}

// ProxyEngine returns the numeric proxy engine for a model, building it
// on first use. Numeric engines serve both timed and numeric requests.
func (r *Registry) ProxyEngine(model string) (*core.Engine, error) {
	return r.engine("proxy/"+model, model, true)
}

// Rebuild discards the memoized engine and builds the model again. With
// the shapes already cached the rebuild is warm: no re-timing, canonical
// build id, plan bytes identical to any other warm rebuild.
func (r *Registry) Rebuild(model string) (*core.Engine, error) {
	r.mu.Lock()
	delete(r.engines, "proxy/"+model)
	r.mu.Unlock()
	return r.ProxyEngine(model)
}

// ReplicaEngines builds a fleet of k numeric proxy replicas of one
// model. Replica 0 is built against the shared timing cache — its cold
// build populates the cache, so every later Rebuild of the model is warm
// and canonical. Replicas 1..k-1 are built cold with distinct build ids
// and no cache, so tuner measurement noise makes them genuinely diverge
// (paper Findings 2 and 6): same model, same platform, different tactic
// choices — the per-replica disagreement a quorum dispatcher votes away.
// Replica fleets are not memoized; each call builds fresh engines.
func (r *Registry) ReplicaEngines(model string, k int) ([]*core.Engine, error) {
	if k < 1 {
		return nil, fmt.Errorf("serve: replica fleet of %s needs k >= 1, got %d", model, k)
	}
	g, err := models.BuildProxy(model, models.DefaultProxyOptions())
	if err != nil {
		return nil, fmt.Errorf("serve: registry replica model %s: %w", model, err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	fleet := make([]*core.Engine, 0, k)
	for slot := 0; slot < k; slot++ {
		cfg := core.DefaultConfig(r.spec, r.nextBuild)
		if slot == 0 {
			cfg.TimingCache = r.cache
			cfg.CanonicalWarmID = true
		}
		e, err := core.Build(g, cfg)
		if err != nil {
			return nil, fmt.Errorf("serve: registry replica %d of %s: %w", slot, model, err)
		}
		r.nextBuild++
		if rep := e.Report; rep != nil {
			if rep.WarmBuild {
				r.stats.WarmBuilds++
			} else {
				r.stats.ColdBuilds++
			}
			r.stats.CacheHits += rep.CacheHits
			r.stats.CacheMisses += rep.CacheMisses
			r.stats.TuneCostSec += rep.TuneCostSec
		}
		fleet = append(fleet, e)
	}
	return fleet, nil
}

func (r *Registry) engine(key, model string, proxy bool) (*core.Engine, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.engines[key]; ok {
		return e, nil
	}
	var g *graph.Graph
	var err error
	if proxy {
		g, err = models.BuildProxy(model, models.DefaultProxyOptions())
	} else {
		g, err = models.Build(model)
	}
	if err != nil {
		return nil, fmt.Errorf("serve: registry model %s: %w", model, err)
	}
	cfg := core.DefaultConfig(r.spec, r.nextBuild)
	cfg.TimingCache = r.cache
	cfg.CanonicalWarmID = true
	e, err := core.Build(g, cfg)
	if err != nil {
		return nil, fmt.Errorf("serve: registry build %s: %w", model, err)
	}
	r.nextBuild++
	if rep := e.Report; rep != nil {
		if rep.WarmBuild {
			r.stats.WarmBuilds++
		} else {
			r.stats.ColdBuilds++
		}
		r.stats.CacheHits += rep.CacheHits
		r.stats.CacheMisses += rep.CacheMisses
		r.stats.TuneCostSec += rep.TuneCostSec
	}
	r.engines[key] = e
	return e, nil
}

// WCETBound measures the model's numeric proxy engine on the registry
// platform (at its paper latency clock) and returns the certified
// worst-case-execution-time bound: the empirical maximum of runs
// samples inflated by margin (wcet.Profile.WCETSec). The serving
// front-end's admission control sheds any request whose budget cannot
// be met under this bound.
func (r *Registry) WCETBound(model string, runs int, margin float64) (float64, error) {
	e, err := r.ProxyEngine(model)
	if err != nil {
		return 0, err
	}
	dev := gpusim.NewDevice(r.spec, gpusim.PaperLatencyClock(r.spec))
	prof := wcet.Measure(e, dev, runs)
	return prof.WCETSec(margin), nil
}

// Fallback returns the pristine (un-built) numeric proxy graph for the
// FP32 reference tier, memoized per model.
func (r *Registry) Fallback(model string) (*graph.Graph, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.fallbacks[model]; ok {
		return g, nil
	}
	g, err := models.BuildProxy(model, models.DefaultProxyOptions())
	if err != nil {
		return nil, fmt.Errorf("serve: registry fallback %s: %w", model, err)
	}
	r.fallbacks[model] = g
	return g, nil
}

// Executor assembles a resilient executor for a model, drawing every
// tier from the registry: the tuned tier is the shared numeric proxy
// engine, the FP32 tier the pristine proxy graph. Fields the caller set
// in cfg (injector, deadline, retry policy, device, a low-batch engine)
// are preserved; a nil Device defaults to the platform at its paper
// latency clock.
func (r *Registry) Executor(model string, cfg Config) (*Executor, error) {
	e, err := r.ProxyEngine(model)
	if err != nil {
		return nil, err
	}
	fb, err := r.Fallback(model)
	if err != nil {
		return nil, err
	}
	cfg.Engine = e
	cfg.Fallback = fb
	if cfg.Device == nil {
		cfg.Device = gpusim.NewDevice(r.spec, gpusim.PaperLatencyClock(r.spec))
	}
	return New(cfg)
}
