package serve

// The health state machine, factored out of the replica Supervisor so
// the cluster supervisor (internal/cluster) advances the same
// healthy→suspect→quarantined→rebuilding→readmitted lattice over
// pipeline nodes that the Pool advances over replicas. Only the
// traffic-driven edges live here: recovery (rebuild, readmission) is
// the owner's repair machinery, not an observation.

// FSMEvent is the transition an observation produced, so the owner can
// attach its own bookkeeping (transcripts, counters, failover) to each
// edge.
type FSMEvent int

const (
	// FSMNone: the observation changed nothing.
	FSMNone FSMEvent = iota
	// FSMDetected: a healthy or probationary member turned suspect.
	FSMDetected
	// FSMQuarantined: a suspect accumulated enough strikes.
	FSMQuarantined
	// FSMCleared: a suspect produced a clean observation and recovered.
	FSMCleared
	// FSMProbationPassed: a readmitted member's first clean observation
	// made it healthy.
	FSMProbationPassed
)

// HealthFSM advances one member's state from one observation verdict.
// It is a pure value: the owner stores (state, strikes) per member and
// holds whatever lock guards them.
type HealthFSM struct {
	// SuspectConfirm is how many consecutive anomalous observations
	// (including the one that raised suspicion) quarantine a suspect
	// (default 2).
	SuspectConfirm int
}

// Advance folds one anomaly verdict into (state, strikes) and returns
// the new pair plus the transition taken, if any. Quarantined and
// rebuilding members are not advanced: they are out of the observation
// path until the owner readmits them.
func (f HealthFSM) Advance(state ReplicaState, strikes int, anomalous bool) (ReplicaState, int, FSMEvent) {
	confirm := f.SuspectConfirm
	if confirm <= 0 {
		confirm = 2
	}
	switch {
	case anomalous && (state == StateHealthy || state == StateReadmitted):
		return StateSuspect, 1, FSMDetected
	case anomalous && state == StateSuspect:
		strikes++
		if strikes >= confirm {
			return StateQuarantined, strikes, FSMQuarantined
		}
		return StateSuspect, strikes, FSMNone
	case !anomalous && state == StateSuspect:
		return StateHealthy, 0, FSMCleared
	case !anomalous && state == StateReadmitted:
		return StateHealthy, strikes, FSMProbationPassed
	}
	return state, strikes, FSMNone
}
