package planlint

import (
	"strings"
	"testing"

	"edgeinfer/internal/graph"
	"edgeinfer/internal/tensor"
)

// testGraph builds data -> conv1 -> relu1 -> fc1 and finalizes it.
func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New("t", [4]int{1, 3, 8, 8})
	layers := []*graph.Layer{
		{Name: "conv1", Op: graph.OpConv, Inputs: []string{"data"},
			Conv: tensor.ConvParams{OutC: 4, Kernel: 3, Stride: 1, Pad: 1, Groups: 1}},
		{Name: "relu1", Op: graph.OpReLU, Inputs: []string{"conv1"}},
		{Name: "fc1", Op: graph.OpFC, Inputs: []string{"relu1"}, OutUnits: 10},
	}
	for _, l := range layers {
		if err := g.AddLayer(l); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	return g
}

func validPlan(t *testing.T) Plan {
	t.Helper()
	return Plan{
		Graph:     testGraph(t),
		Precision: tensor.FP16,
		Launches:  [][]string{{"conv1", "relu1"}, {"fc1"}},
	}
}

func errorsOf(issues []Issue) []string {
	var out []string
	for _, i := range issues {
		if i.Severity == Error {
			out = append(out, i.String())
		}
	}
	return out
}

func wantError(t *testing.T, issues []Issue, substr string) {
	t.Helper()
	for _, e := range errorsOf(issues) {
		if strings.Contains(e, substr) {
			return
		}
	}
	t.Fatalf("no error containing %q in %v", substr, issues)
}

func TestCheckCleanPlan(t *testing.T) {
	if issues := Check(validPlan(t)); len(issues) != 0 {
		t.Fatalf("clean plan produced issues: %v", issues)
	}
}

func TestCheckNilGraph(t *testing.T) {
	wantError(t, Check(Plan{}), "no graph")
}

func TestCheckCycle(t *testing.T) {
	p := validPlan(t)
	// Rewire conv1 to consume relu1, closing conv1 -> relu1 -> conv1.
	p.Graph.Layer("conv1").Inputs = []string{"relu1"}
	wantError(t, Check(p), "cycle detected")
}

func TestCheckStructuralDefects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(g *graph.Graph)
		want   string
	}{
		{"duplicate-layer", func(g *graph.Graph) {
			g.Layers = append(g.Layers, &graph.Layer{Name: "conv1", Op: graph.OpReLU, Inputs: []string{"data"}})
		}, "duplicate layer name"},
		{"empty-name", func(g *graph.Graph) {
			g.Layers = append(g.Layers, &graph.Layer{Op: graph.OpReLU, Inputs: []string{"data"}})
		}, "empty name"},
		{"unknown-input", func(g *graph.Graph) {
			g.Layer("relu1").Inputs = []string{"ghost"}
		}, `unknown input "ghost"`},
		{"no-inputs", func(g *graph.Graph) {
			g.Layer("relu1").Inputs = nil
		}, "has no inputs"},
		{"self-input", func(g *graph.Graph) {
			g.Layer("relu1").Inputs = []string{"relu1"}
		}, "consumes its own output"},
		{"redeclared-input", func(g *graph.Graph) {
			g.Layers = append(g.Layers, &graph.Layer{Name: "data2", Op: graph.OpInput})
		}, "redeclares the input layer"},
		{"missing-output", func(g *graph.Graph) {
			g.Outputs = []string{"ghost"}
		}, `declared output "ghost" does not exist`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := validPlan(t)
			tc.mutate(p.Graph)
			wantError(t, Check(p), tc.want)
		})
	}
}

func TestCheckBadInputShape(t *testing.T) {
	p := validPlan(t)
	p.Graph.InputShape = [4]int{0, 3, 8, 8}
	wantError(t, Check(p), "non-positive dimension")

	p = validPlan(t)
	p.Graph.InputShape = [4]int{1 << 20, 1 << 20, 1 << 20, 1}
	wantError(t, Check(p), "exceeds")
}

func TestCheckShapeInference(t *testing.T) {
	p := validPlan(t)
	p.Graph.Layer("conv1").Conv.Stride = 0
	if issues := Check(p); !HasErrors(issues) {
		t.Fatalf("zero-stride conv passed: %v", issues)
	}
}

func TestCheckFusionLegality(t *testing.T) {
	p := validPlan(t)
	p.Fusions = map[string][]string{"ghost": nil}
	wantError(t, Check(p), "fusion primary does not exist")

	p = validPlan(t)
	p.Fusions = map[string][]string{"relu1": nil}
	wantError(t, Check(p), "only conv and fc launch fused epilogues")

	// An absorbed layer still present in the graph would execute twice.
	p = validPlan(t)
	p.Fusions = map[string][]string{"conv1": {"relu1"}}
	wantError(t, Check(p), `absorbed layer "relu1" still present`)

	// A legal fusion: conv1 absorbed a layer that was spliced out.
	p = validPlan(t)
	p.Fusions = map[string][]string{"conv1": {"spliced-relu"}}
	if issues := Check(p); HasErrors(issues) {
		t.Fatalf("legal fusion flagged: %v", issues)
	}
}

func TestCheckQuantRangeCoverage(t *testing.T) {
	p := validPlan(t)
	p.Precision = tensor.INT8
	p.Numeric = true
	p.Int8Ranges = map[string]float32{"data": 1, "relu1": 1}
	if issues := Check(p); HasErrors(issues) {
		t.Fatalf("covered INT8 plan flagged: %v", issues)
	}
	p.Int8Ranges = map[string]float32{"data": 1}
	wantError(t, Check(p), "no calibrated range")

	// Non-INT8 and non-numeric plans need no ranges.
	p = validPlan(t)
	p.Precision = tensor.INT8
	if issues := Check(p); HasErrors(issues) {
		t.Fatalf("timing-only INT8 plan flagged: %v", issues)
	}
}

func TestCheckDeadLayers(t *testing.T) {
	p := validPlan(t)
	// Declare only fc1 (already the sink): nothing dead.
	if issues := Check(p); len(issues) != 0 {
		t.Fatalf("unexpected issues: %v", issues)
	}
	// Point the output at relu1: fc1 becomes dead (warn, not error).
	p.Graph.Outputs = []string{"relu1"}
	p.Launches = [][]string{{"conv1", "relu1"}} // fc1 launch gone too
	issues := Check(p)
	if HasErrors(issues) {
		t.Fatalf("dead layer should warn, not error: %v", issues)
	}
	found := false
	for _, i := range issues {
		if i.Check == "dead-layer" && i.Layer == "fc1" {
			found = true
		}
	}
	if !found {
		t.Fatalf("dead fc1 not flagged: %v", issues)
	}
}

func TestCheckDropoutWarns(t *testing.T) {
	p := validPlan(t)
	g := p.Graph
	if err := g.AddLayer(&graph.Layer{Name: "drop", Op: graph.OpDropout, Inputs: []string{"fc1"}}); err != nil {
		t.Fatal(err)
	}
	g.Outputs = []string{"drop"}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	p.Launches = nil
	issues := Check(p)
	found := false
	for _, i := range issues {
		if i.Check == "dead-layer" && i.Layer == "drop" && strings.Contains(i.Message, "dropout") {
			found = true
		}
	}
	if !found {
		t.Fatalf("surviving dropout not flagged: %v", issues)
	}
}

func TestCheckLaunches(t *testing.T) {
	p := validPlan(t)
	p.Launches = [][]string{{"conv1", "ghost"}, {"fc1"}}
	wantError(t, Check(p), "missing from the graph")

	// The detection stage's synthetic sort-kernel label is exempt.
	p = validPlan(t)
	p.Launches = [][]string{{"conv1", "relu1"}, {"fc1"}, {"nms"}}
	if issues := Check(p); len(issues) != 0 {
		t.Fatalf("nms launch flagged: %v", issues)
	}

	// A tuned layer covered by no launch is a warning.
	p = validPlan(t)
	p.Launches = [][]string{{"conv1", "relu1"}}
	issues := Check(p)
	if HasErrors(issues) {
		t.Fatalf("uncovered fc should warn, not error: %v", issues)
	}
	if len(issues) == 0 {
		t.Fatal("uncovered fc1 not flagged")
	}
}

func TestHasErrors(t *testing.T) {
	if HasErrors([]Issue{{Severity: Warn}}) {
		t.Fatal("warn counted as error")
	}
	if !HasErrors([]Issue{{Severity: Warn}, {Severity: Error}}) {
		t.Fatal("error not counted")
	}
}
