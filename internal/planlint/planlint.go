// Package planlint statically verifies engine-plan IR: the optimized
// graph, fusion metadata, quantization ranges and kernel-launch plan that
// internal/core serializes as an engine file. The builder runs these
// checks before serializing (a plan that fails IR verification is never
// written), and cmd/rtlint runs them over plan files on disk — so every
// malformed-plan class the runtime loader rejects dynamically is also
// rejected statically, before an engine ever reaches a device.
//
// planlint never panics and never mutates the graph it is given: checks
// that need shape inference run it on a scratch copy.
package planlint

import (
	"fmt"
	"sort"

	"edgeinfer/internal/graph"
	"edgeinfer/internal/tensor"
)

// Severity classifies an issue.
type Severity uint8

const (
	// Warn marks a suspicious but loadable plan (dead layers, layers the
	// launch plan never covers).
	Warn Severity = iota
	// Error marks a plan the runtime would reject or misexecute.
	Error
)

// String implements fmt.Stringer.
func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warn"
}

// Issue is one verification finding.
type Issue struct {
	Check    string // check name: "topology", "shapes", "fusion", ...
	Severity Severity
	Layer    string // offending layer, when attributable
	Message  string
}

// String implements fmt.Stringer.
func (i Issue) String() string {
	if i.Layer != "" {
		return fmt.Sprintf("%s: %s: layer %q: %s", i.Severity, i.Check, i.Layer, i.Message)
	}
	return fmt.Sprintf("%s: %s: %s", i.Severity, i.Check, i.Message)
}

// HasErrors reports whether any issue is error-severity.
func HasErrors(issues []Issue) bool {
	for _, i := range issues {
		if i.Severity == Error {
			return true
		}
	}
	return false
}

// MaxTensorElems bounds any declared tensor shape (the largest real
// tensor in the model zoo is ~103M elements).
const MaxTensorElems = 256 << 20

// Plan is the neutral view of an engine plan that planlint verifies.
// internal/core adapts both built Engines and raw deserialized headers
// into it.
type Plan struct {
	// Graph is the optimized network. It may be unfinalized; planlint
	// re-derives topology order and shapes itself.
	Graph *graph.Graph
	// Precision is the engine's numeric precision.
	Precision tensor.Precision
	// Numeric reports whether weights are materialized.
	Numeric bool
	// Fusions maps each fusion primary to the layer names it absorbed.
	Fusions map[string][]string
	// Int8Ranges are the calibrated activation ranges of INT8 engines.
	Int8Ranges map[string]float32
	// Launches lists the source layers of each kernel launch, in plan
	// order.
	Launches [][]string
}

// Check runs every verification pass and returns the issues sorted by
// check name then layer.
func Check(p Plan) []Issue {
	var issues []Issue
	if p.Graph == nil {
		return []Issue{{Check: "topology", Severity: Error, Message: "plan has no graph"}}
	}
	inShape := checkInputShape(p.Graph)
	issues = append(issues, inShape...)
	structural := checkStructure(p.Graph)
	issues = append(issues, structural...)
	acyclic := true
	if len(structural) == 0 {
		cyc := checkAcyclic(p.Graph)
		acyclic = len(cyc) == 0
		issues = append(issues, cyc...)
	}
	if len(structural) == 0 && acyclic && len(inShape) == 0 {
		issues = append(issues, checkShapes(p.Graph)...)
		issues = append(issues, checkDead(p.Graph)...)
	}
	issues = append(issues, checkFusions(p)...)
	issues = append(issues, checkQuantRanges(p)...)
	issues = append(issues, checkLaunches(p)...)
	sort.SliceStable(issues, func(i, j int) bool {
		if issues[i].Check != issues[j].Check {
			return issues[i].Check < issues[j].Check
		}
		return issues[i].Layer < issues[j].Layer
	})
	return issues
}

// checkInputShape bounds the declared input shape.
func checkInputShape(g *graph.Graph) []Issue {
	var issues []Issue
	elems := int64(1)
	for _, d := range g.InputShape {
		if d < 1 {
			return []Issue{{Check: "topology", Severity: Error,
				Message: fmt.Sprintf("input shape %v has non-positive dimension", g.InputShape)}}
		}
		elems *= int64(d)
		if elems > MaxTensorElems {
			return []Issue{{Check: "topology", Severity: Error,
				Message: fmt.Sprintf("input shape %v exceeds %d elements", g.InputShape, int64(MaxTensorElems))}}
		}
	}
	return issues
}

// checkStructure validates names and input references without touching
// graph internals (the graph may have been assembled tolerantly).
func checkStructure(g *graph.Graph) []Issue {
	var issues []Issue
	seen := map[string]bool{}
	inputs := 0
	for _, l := range g.Layers {
		if l.Name == "" {
			issues = append(issues, Issue{Check: "topology", Severity: Error, Message: "layer with empty name"})
			continue
		}
		if seen[l.Name] {
			issues = append(issues, Issue{Check: "topology", Severity: Error, Layer: l.Name, Message: "duplicate layer name"})
			continue
		}
		seen[l.Name] = true
		if l.Op == graph.OpInput {
			inputs++
			if inputs > 1 {
				issues = append(issues, Issue{Check: "topology", Severity: Error, Layer: l.Name, Message: "redeclares the input layer"})
			}
			continue
		}
		if len(l.Inputs) == 0 {
			issues = append(issues, Issue{Check: "topology", Severity: Error, Layer: l.Name, Message: "has no inputs"})
		}
	}
	if inputs == 0 {
		issues = append(issues, Issue{Check: "topology", Severity: Error, Message: "graph has no input layer"})
	}
	for _, l := range g.Layers {
		for _, in := range l.Inputs {
			if !seen[in] {
				issues = append(issues, Issue{Check: "topology", Severity: Error, Layer: l.Name,
					Message: fmt.Sprintf("references unknown input %q", in)})
			}
			if in == l.Name {
				issues = append(issues, Issue{Check: "topology", Severity: Error, Layer: l.Name, Message: "consumes its own output"})
			}
		}
	}
	for _, o := range g.Outputs {
		if !seen[o] {
			issues = append(issues, Issue{Check: "topology", Severity: Error,
				Message: fmt.Sprintf("declared output %q does not exist", o)})
		}
	}
	return issues
}

// checkAcyclic runs Kahn's algorithm over the layer DAG.
func checkAcyclic(g *graph.Graph) []Issue {
	indeg := map[string]int{}
	dependents := map[string][]string{}
	for _, l := range g.Layers {
		indeg[l.Name] += 0
		for _, in := range l.Inputs {
			indeg[l.Name]++
			dependents[in] = append(dependents[in], l.Name)
		}
	}
	var queue []string
	for _, l := range g.Layers {
		if indeg[l.Name] == 0 {
			queue = append(queue, l.Name)
		}
	}
	sorted := 0
	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		sorted++
		for _, d := range dependents[name] {
			indeg[d]--
			if indeg[d] == 0 {
				queue = append(queue, d)
			}
		}
	}
	if sorted != len(g.Layers) {
		return []Issue{{Check: "topology", Severity: Error,
			Message: fmt.Sprintf("cycle detected (%d of %d layers reachable)", sorted, len(g.Layers))}}
	}
	return nil
}

// checkShapes re-runs shape inference on a scratch copy of the graph so
// operator parameters (conv stride/kernel/groups, FC widths, concat
// arities) are validated without mutating the plan under inspection.
// Only called once structure and acyclicity hold.
func checkShapes(g *graph.Graph) []Issue {
	scratch := graph.New(g.Name, g.InputShape)
	for _, l := range g.Layers {
		if l.Op == graph.OpInput {
			continue
		}
		nl := *l // weights are shared read-only; shape inference ignores them
		nl.OutShape = [4]int{}
		if err := scratch.AddLayer(&nl); err != nil {
			return []Issue{{Check: "shapes", Severity: Error, Layer: l.Name, Message: err.Error()}}
		}
	}
	scratch.Outputs = append([]string(nil), g.Outputs...)
	if err := scratch.Finalize(); err != nil {
		return []Issue{{Check: "shapes", Severity: Error, Message: err.Error()}}
	}
	return nil
}

// checkDead flags layers that cannot reach a declared output and
// training-only ops the dead-layer pass should have removed.
func checkDead(g *graph.Graph) []Issue {
	outputs := g.Outputs
	if len(outputs) == 0 {
		return nil // sinks become outputs at finalize; nothing is dead yet
	}
	byName := map[string]*graph.Layer{}
	for _, l := range g.Layers {
		byName[l.Name] = l
	}
	live := map[string]bool{}
	var mark func(string)
	mark = func(name string) {
		if live[name] || byName[name] == nil {
			return
		}
		live[name] = true
		for _, in := range byName[name].Inputs {
			mark(in)
		}
	}
	for _, o := range outputs {
		mark(o)
	}
	var issues []Issue
	for _, l := range g.Layers {
		if !live[l.Name] {
			issues = append(issues, Issue{Check: "dead-layer", Severity: Warn, Layer: l.Name,
				Message: "cannot reach any declared output"})
		}
		if l.Op == graph.OpDropout {
			issues = append(issues, Issue{Check: "dead-layer", Severity: Warn, Layer: l.Name,
				Message: "training-only dropout survives in an optimized plan"})
		}
	}
	return issues
}

// checkFusions verifies fusion legality: a primary must exist and be a
// conv or FC layer, and every absorbed layer must have been spliced out
// of the optimized graph (an absorbed layer still present would execute
// twice).
func checkFusions(p Plan) []Issue {
	var issues []Issue
	byName := map[string]*graph.Layer{}
	for _, l := range p.Graph.Layers {
		byName[l.Name] = l
	}
	primaries := make([]string, 0, len(p.Fusions))
	for primary := range p.Fusions {
		primaries = append(primaries, primary)
	}
	sort.Strings(primaries)
	for _, primary := range primaries {
		l := byName[primary]
		if l == nil {
			issues = append(issues, Issue{Check: "fusion", Severity: Error, Layer: primary,
				Message: "fusion primary does not exist in the graph"})
			continue
		}
		if l.Op != graph.OpConv && l.Op != graph.OpFC {
			issues = append(issues, Issue{Check: "fusion", Severity: Error, Layer: primary,
				Message: fmt.Sprintf("fusion primary has op %s; only conv and fc launch fused epilogues", l.Op)})
		}
		for _, absorbed := range p.Fusions[primary] {
			if byName[absorbed] != nil {
				issues = append(issues, Issue{Check: "fusion", Severity: Error, Layer: primary,
					Message: fmt.Sprintf("absorbed layer %q still present in the graph", absorbed)})
			}
		}
	}
	return issues
}

// checkQuantRanges verifies INT8 calibration coverage: every quantized
// conv/FC kernel reads its input through the calibrated range of the
// producer layer, so a missing range silently quantizes against zero.
func checkQuantRanges(p Plan) []Issue {
	if p.Precision != tensor.INT8 || !p.Numeric {
		return nil
	}
	var issues []Issue
	for _, l := range p.Graph.Layers {
		if l.Op != graph.OpConv && l.Op != graph.OpFC {
			continue
		}
		if len(l.Inputs) == 0 {
			continue // topology check owns this
		}
		producer := l.Inputs[0]
		if _, ok := p.Int8Ranges[producer]; !ok {
			issues = append(issues, Issue{Check: "quantization", Severity: Error, Layer: l.Name,
				Message: fmt.Sprintf("INT8 engine has no calibrated range for input producer %q", producer)})
		}
	}
	return issues
}

// checkLaunches verifies the kernel plan against the graph: every launch
// must reference existing layers, and every tuned op (conv/FC) should be
// covered by some launch.
func checkLaunches(p Plan) []Issue {
	if p.Launches == nil {
		return nil
	}
	byName := map[string]*graph.Layer{}
	for _, l := range p.Graph.Layers {
		byName[l.Name] = l
	}
	covered := map[string]bool{}
	var issues []Issue
	for i, layers := range p.Launches {
		for _, name := range layers {
			covered[name] = true
			// The detection output stage launches sort kernels under the
			// synthetic "nms" label; any other unknown reference is a
			// plan/graph mismatch.
			if byName[name] == nil && name != "nms" {
				issues = append(issues, Issue{Check: "launches", Severity: Error, Layer: name,
					Message: fmt.Sprintf("launch %d references a layer missing from the graph", i)})
			}
		}
	}
	for _, l := range p.Graph.Layers {
		if (l.Op == graph.OpConv || l.Op == graph.OpFC) && !covered[l.Name] {
			issues = append(issues, Issue{Check: "launches", Severity: Warn, Layer: l.Name,
				Message: "tuned layer is covered by no kernel launch"})
		}
	}
	return issues
}
