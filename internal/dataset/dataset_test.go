package dataset

import (
	"testing"
	"testing/quick"
)

func TestTemplatesDeterministic(t *testing.T) {
	a := Templates("seed-x", 5)
	b := Templates("seed-x", 5)
	for c := range a {
		for i := range a[c].Data {
			if a[c].Data[i] != b[c].Data[i] {
				t.Fatalf("template %d not deterministic", c)
			}
		}
	}
}

func TestTemplatesDistinct(t *testing.T) {
	ts := Templates("seed-y", 3)
	same := 0
	for i := range ts[0].Data {
		if ts[0].Data[i] == ts[1].Data[i] {
			same++
		}
	}
	if same == len(ts[0].Data) {
		t.Fatal("two class templates identical")
	}
}

func TestTemplatesUnitRMS(t *testing.T) {
	ts := Templates("seed-z", 4)
	for c, tpl := range ts {
		var sumsq float64
		for _, v := range tpl.Data {
			sumsq += float64(v) * float64(v)
		}
		rms := sumsq / float64(tpl.Len())
		if rms < 0.9 || rms > 1.1 {
			t.Errorf("template %d RMS^2 = %v, want ~1", c, rms)
		}
	}
}

func TestTemplatesCorrelated(t *testing.T) {
	// Shared-base construction must give high pairwise correlation.
	ts := Templates("seed-corr", 10)
	var dot, na, nb float64
	for i := range ts[0].Data {
		dot += float64(ts[0].Data[i]) * float64(ts[1].Data[i])
		na += float64(ts[0].Data[i]) * float64(ts[0].Data[i])
		nb += float64(ts[1].Data[i]) * float64(ts[1].Data[i])
	}
	corr := dot / (sqrt64(na) * sqrt64(nb))
	if corr < 0.7 {
		t.Fatalf("inter-template correlation %.2f, want high (shared base)", corr)
	}
	if corr > 0.999 {
		t.Fatalf("templates essentially identical (corr %.4f)", corr)
	}
}

func TestBenignShapesAndLabels(t *testing.T) {
	cfg := BenignConfig{Seed: "b", Classes: 7, PerClass: 3, NoiseSigma: 1}
	ss := Benign(cfg)
	if len(ss) != 21 {
		t.Fatalf("%d samples, want 21", len(ss))
	}
	counts := map[int]int{}
	for _, s := range ss {
		if s.Image.Shape() != [4]int{1, ImgC, ImgHW, ImgHW} {
			t.Fatalf("image shape %v", s.Image.Shape())
		}
		counts[s.Label]++
	}
	for c := 0; c < 7; c++ {
		if counts[c] != 3 {
			t.Fatalf("class %d has %d samples", c, counts[c])
		}
	}
}

func TestBenignDeterministic(t *testing.T) {
	cfg := DefaultBenign(2)
	a, b := Benign(cfg), Benign(cfg)
	for i := range a {
		for j := range a[i].Image.Data {
			if a[i].Image.Data[j] != b[i].Image.Data[j] {
				t.Fatal("benign set not deterministic")
			}
		}
	}
}

func TestCorruptionsCount(t *testing.T) {
	if len(Corruptions()) != 15 {
		t.Fatalf("%d corruption types, paper uses 15", len(Corruptions()))
	}
	seen := map[string]bool{}
	for _, c := range Corruptions() {
		if seen[c.String()] {
			t.Fatalf("duplicate corruption name %s", c)
		}
		seen[c.String()] = true
	}
}

func TestCorruptDoesNotMutateInput(t *testing.T) {
	tpl := Templates("mut", 1)[0]
	before := tpl.Clone()
	for _, c := range Corruptions() {
		Corrupt(tpl, c, 5, "k")
	}
	for i := range tpl.Data {
		if tpl.Data[i] != before.Data[i] {
			t.Fatal("Corrupt mutated its input")
		}
	}
}

func TestCorruptionChangesImage(t *testing.T) {
	tpl := Templates("chg", 1)[0]
	for _, c := range Corruptions() {
		if DistortionEnergy(tpl, c, 5, "k") <= 0 {
			t.Errorf("%s at severity 5 left the image untouched", c)
		}
	}
}

// Property: severity 5 distorts at least as much as severity 1, for every
// corruption type (the paper's severity semantics).
func TestSeverityMonotone(t *testing.T) {
	tpl := Templates("sev", 1)[0]
	for _, c := range Corruptions() {
		e1 := DistortionEnergy(tpl, c, 1, "k")
		e5 := DistortionEnergy(tpl, c, 5, "k")
		if e5 < e1 {
			t.Errorf("%s: severity 5 energy %.3f < severity 1 %.3f", c, e5, e1)
		}
	}
}

func TestAdversarialCoverage(t *testing.T) {
	cfg := AdversarialConfig{Seed: "a", Classes: 3, PerClass: 2,
		Severities: []int{1, 5}, Types: []Corruption{GaussianNoise, Fog}}
	ss := Adversarial(cfg)
	if len(ss) != 2*2*3*2 {
		t.Fatalf("%d samples, want 24", len(ss))
	}
	bySev := map[int]int{}
	for _, s := range ss {
		bySev[s.Severity]++
	}
	if bySev[1] != 12 || bySev[5] != 12 {
		t.Fatalf("severity split %v", bySev)
	}
}

func TestSceneGeneration(t *testing.T) {
	cfg := DefaultScenes()
	s := Generate(cfg, 0)
	if len(s.Truth) != cfg.Vehicles {
		t.Fatalf("%d boxes, want %d", len(s.Truth), cfg.Vehicles)
	}
	for _, b := range s.Truth {
		if b.X < 0 || b.Y < 0 || b.X+b.W > cfg.HW || b.Y+b.H > cfg.HW {
			t.Fatalf("box %+v out of frame", b)
		}
	}
	if s.Plate == "" {
		t.Fatal("missing number plate")
	}
	// Distinct scenes differ.
	s2 := Generate(cfg, 1)
	if s2.Plate == s.Plate && s2.Truth[0] == s.Truth[0] {
		t.Fatal("scenes 0 and 1 identical")
	}
	// Same index reproduces.
	s0 := Generate(cfg, 0)
	if s0.Plate != s.Plate {
		t.Fatal("scene generation not deterministic")
	}
}

func TestVehicleClassNames(t *testing.T) {
	if Car.String() != "car" || Bus.String() != "bus" {
		t.Fatal("vehicle names wrong")
	}
}

// Property: corrupted images remain finite and the right shape.
func TestCorruptShapeProperty(t *testing.T) {
	tpl := Templates("prop", 1)[0]
	if err := quick.Check(func(ct, sv uint8) bool {
		c := Corruption(int(ct) % 15)
		s := int(sv)%5 + 1
		out := Corrupt(tpl, c, s, "pk")
		if out.Shape() != tpl.Shape() {
			return false
		}
		for _, v := range out.Data {
			if v != v || v > 1e6 || v < -1e6 { // NaN or absurd
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
