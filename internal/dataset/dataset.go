// Package dataset synthesizes the evaluation data of the paper's
// methodology: an ImageNet-like benign classification set (class
// templates plus observation noise), the ImageNet-C-like corrupted set
// (15 corruption types at 5 severity levels), and traffic-intersection
// scenes with ground-truth vehicle boxes for the detection examples.
// Everything is deterministic given seeds.
package dataset

import (
	"fmt"

	"edgeinfer/internal/fixrand"
	"edgeinfer/internal/tensor"
)

// Canonical proxy-image geometry.
const (
	NumClasses = 100
	ImgC       = 3
	ImgHW      = 32
)

// Sample is one labelled image.
type Sample struct {
	Image *tensor.Tensor
	Label int
}

// templateCorrelation is how much of every class template is a shared
// base pattern. Natural image classes share most of their energy
// (backgrounds, lighting); only a fraction is class-discriminative.
// This drives realistic (30-50%) top-1 error under observation noise.
const templateCorrelation = 0.94

// Templates returns the class prototype images: smooth, unit-energy
// patterns generated from a coarse random grid, bilinearly upsampled,
// all sharing a common base component (see templateCorrelation).
// The same seed always yields byte-identical templates; classifier
// proxies embed these in their final layer.
func Templates(seed string, classes int) []*tensor.Tensor {
	ts := make([]*tensor.Tensor, classes)
	for c := 0; c < classes; c++ {
		ts[c] = template(fmt.Sprintf("%s/class%d", seed, c), seed+"/base")
	}
	return ts
}

// template builds one smooth pattern: a 4x4 random grid per channel
// (mixed with the shared base grid), bilinearly upsampled to ImgHW,
// normalized to unit RMS.
func template(key string, baseKey ...string) *tensor.Tensor {
	src := fixrand.NewKeyed(key)
	var base *fixrand.Source
	rho := 0.0
	if len(baseKey) > 0 {
		base = fixrand.NewKeyed(baseKey[0])
		rho = templateCorrelation
	}
	const grid = 4
	coarse := make([][][]float64, ImgC)
	for ch := range coarse {
		coarse[ch] = make([][]float64, grid)
		for i := range coarse[ch] {
			coarse[ch][i] = make([]float64, grid)
			for j := range coarse[ch][i] {
				// The class-distinctive component is sparse: only some
				// grid cells differ from the shared base (real object
				// classes differ in localized structure, not everywhere).
				own := src.NormFloat64()
				if src.Float64() > 0.4 {
					own = 0
				} else {
					own *= 1.58 // restore unit variance of the sparse part
				}
				if base != nil {
					own = rho*base.NormFloat64() + sqrt64(1-rho*rho)*own
				}
				coarse[ch][i][j] = own
			}
		}
	}
	t := tensor.New(1, ImgC, ImgHW, ImgHW)
	scale := float64(grid-1) / float64(ImgHW-1)
	var sumsq float64
	for ch := 0; ch < ImgC; ch++ {
		for y := 0; y < ImgHW; y++ {
			for x := 0; x < ImgHW; x++ {
				fy, fx := float64(y)*scale, float64(x)*scale
				y0, x0 := int(fy), int(fx)
				y1, x1 := y0+1, x0+1
				if y1 >= grid {
					y1 = grid - 1
				}
				if x1 >= grid {
					x1 = grid - 1
				}
				dy, dx := fy-float64(y0), fx-float64(x0)
				v := coarse[ch][y0][x0]*(1-dy)*(1-dx) +
					coarse[ch][y1][x0]*dy*(1-dx) +
					coarse[ch][y0][x1]*(1-dy)*dx +
					coarse[ch][y1][x1]*dy*dx
				t.Set(0, ch, y, x, float32(v))
				sumsq += v * v
			}
		}
	}
	rms := float32(1)
	if sumsq > 0 {
		rms = float32(sumsq / float64(t.Len()))
	}
	inv := 1 / sqrt32(rms)
	for i := range t.Data {
		t.Data[i] *= inv
	}
	return t
}

func sqrt64(v float64) float64 {
	if v <= 0 {
		return 0
	}
	x := v
	for i := 0; i < 30; i++ {
		x = 0.5 * (x + v/x)
	}
	return x
}

func sqrt32(v float32) float32 {
	if v <= 0 {
		return 1
	}
	x := v
	for i := 0; i < 24; i++ {
		x = 0.5 * (x + v/x)
	}
	return x
}

// BenignConfig parameterizes the benign set.
type BenignConfig struct {
	Seed       string
	Classes    int
	PerClass   int
	NoiseSigma float64 // observation noise on top of the class template
}

// DefaultBenign mirrors the paper's benign subset: 100 classes. PerClass
// is configurable (the paper uses 50).
func DefaultBenign(perClass int) BenignConfig {
	return BenignConfig{Seed: "imagenet-proxy", Classes: NumClasses, PerClass: perClass, NoiseSigma: 3.8}
}

// Benign synthesizes the benign dataset: per-class template plus i.i.d.
// Gaussian observation noise.
func Benign(cfg BenignConfig) []Sample {
	tpl := Templates(cfg.Seed, cfg.Classes)
	var out []Sample
	for c := 0; c < cfg.Classes; c++ {
		for i := 0; i < cfg.PerClass; i++ {
			src := fixrand.NewKeyed(fmt.Sprintf("%s/benign/c%d/i%d", cfg.Seed, c, i))
			img := tpl[c].Clone()
			for k := range img.Data {
				img.Data[k] += float32(cfg.NoiseSigma * src.NormFloat64())
			}
			out = append(out, Sample{Image: img, Label: c})
		}
	}
	return out
}
