package dataset

import (
	"fmt"

	"edgeinfer/internal/fixrand"
	"edgeinfer/internal/tensor"
)

// Corruption identifies one of the 15 corruption types of the
// adversarially perturbed dataset (the ImageNet-C taxonomy the paper
// uses), each applied at severity levels 1..5.
type Corruption int

const (
	GaussianNoise Corruption = iota
	ShotNoise
	ImpulseNoise
	SpeckleNoise
	GaussianBlur
	DefocusBlur
	MotionBlur
	ZoomBlur
	Brightness
	Contrast
	Saturate
	Fog
	Frost
	Snow
	Pixelate
)

// Corruptions lists all 15 types.
func Corruptions() []Corruption {
	out := make([]Corruption, 15)
	for i := range out {
		out[i] = Corruption(i)
	}
	return out
}

var corruptionNames = [...]string{
	"gaussian_noise", "shot_noise", "impulse_noise", "speckle_noise",
	"gaussian_blur", "defocus_blur", "motion_blur", "zoom_blur",
	"brightness", "contrast", "saturate", "fog", "frost", "snow", "pixelate",
}

// String implements fmt.Stringer.
func (c Corruption) String() string {
	if int(c) < len(corruptionNames) {
		return corruptionNames[c]
	}
	return fmt.Sprintf("corruption(%d)", int(c))
}

// sev maps severity 1..5 to a [0.2, 1.0] amplitude.
func sev(severity int) float64 {
	if severity < 1 {
		severity = 1
	}
	if severity > 5 {
		severity = 5
	}
	return float64(severity) / 5
}

// Corrupt applies the corruption at the given severity to a copy of the
// image. The noise stream is seeded by key so the corrupted datasets are
// reproducible.
func Corrupt(img *tensor.Tensor, c Corruption, severity int, key string) *tensor.Tensor {
	out := img.Clone()
	s := sev(severity)
	src := fixrand.NewKeyed(fmt.Sprintf("corrupt/%s/%d/%s", c, severity, key))
	switch c {
	case GaussianNoise:
		addNoise(out, src, 2.2*s, false)
	case ShotNoise:
		// signal-dependent noise
		for i, v := range out.Data {
			out.Data[i] += float32(1.8 * s * float64(absf(v)+0.3) * src.NormFloat64())
		}
	case ImpulseNoise:
		n := int(0.25 * s * float64(out.Len()))
		for i := 0; i < n; i++ {
			idx := src.Intn(out.Len())
			if src.Intn(2) == 0 {
				out.Data[idx] = 4
			} else {
				out.Data[idx] = -4
			}
		}
	case SpeckleNoise:
		for i, v := range out.Data {
			out.Data[i] = v * (1 + float32(1.6*s*src.NormFloat64()))
		}
	case GaussianBlur, DefocusBlur:
		passes := 1 + int(4*s)
		for i := 0; i < passes; i++ {
			boxBlur(out)
		}
	case MotionBlur:
		hBlur(out, 1+int(7*s))
	case ZoomBlur:
		zoomBlend(out, 1+0.35*s)
	case Brightness:
		for i := range out.Data {
			out.Data[i] += float32(2.4 * s)
		}
	case Contrast:
		k := float32(1 - 0.9*s)
		for i := range out.Data {
			out.Data[i] *= k
		}
	case Saturate:
		// amplify channel 0, attenuate channel 2
		for y := 0; y < out.H; y++ {
			for x := 0; x < out.W; x++ {
				out.Set(0, 0, y, x, out.At(0, 0, y, x)*(1+float32(1.5*s)))
				out.Set(0, 2, y, x, out.At(0, 2, y, x)*(1-float32(0.8*s)))
			}
		}
	case Fog:
		fog := template("fogfield/" + key)
		for i := range out.Data {
			out.Data[i] = out.Data[i]*(1-float32(0.6*s)) + fog.Data[i]*float32(2.5*s)
		}
	case Frost:
		frost := template("frostfield")
		for i := range out.Data {
			out.Data[i] += frost.Data[i] * float32(2.2*s)
		}
	case Snow:
		n := int(0.12 * s * float64(out.Len()))
		for i := 0; i < n; i++ {
			out.Data[src.Intn(out.Len())] = 3.5
		}
	case Pixelate:
		block := 1 + int(6*s)
		pixelate(out, block)
	}
	return out
}

// addNoise adds i.i.d. Gaussian noise of the given sigma.
func addNoise(t *tensor.Tensor, src *fixrand.Source, sigma float64, _ bool) {
	for i := range t.Data {
		t.Data[i] += float32(sigma * src.NormFloat64())
	}
}

func absf(v float32) float32 {
	if v < 0 {
		return -v
	}
	return v
}

// boxBlur applies a 3x3 box filter in place.
func boxBlur(t *tensor.Tensor) {
	src := t.Clone()
	for c := 0; c < t.C; c++ {
		for y := 0; y < t.H; y++ {
			for x := 0; x < t.W; x++ {
				var sum float32
				n := 0
				for dy := -1; dy <= 1; dy++ {
					for dx := -1; dx <= 1; dx++ {
						yy, xx := y+dy, x+dx
						if yy < 0 || yy >= t.H || xx < 0 || xx >= t.W {
							continue
						}
						sum += src.At(0, c, yy, xx)
						n++
					}
				}
				t.Set(0, c, y, x, sum/float32(n))
			}
		}
	}
}

// hBlur applies a horizontal blur of the given radius.
func hBlur(t *tensor.Tensor, radius int) {
	src := t.Clone()
	for c := 0; c < t.C; c++ {
		for y := 0; y < t.H; y++ {
			for x := 0; x < t.W; x++ {
				var sum float32
				n := 0
				for dx := -radius; dx <= radius; dx++ {
					xx := x + dx
					if xx < 0 || xx >= t.W {
						continue
					}
					sum += src.At(0, c, y, xx)
					n++
				}
				t.Set(0, c, y, x, sum/float32(n))
			}
		}
	}
}

// zoomBlend averages the image with a center-zoomed copy.
func zoomBlend(t *tensor.Tensor, zoom float64) {
	src := t.Clone()
	cy, cx := float64(t.H-1)/2, float64(t.W-1)/2
	for c := 0; c < t.C; c++ {
		for y := 0; y < t.H; y++ {
			for x := 0; x < t.W; x++ {
				sy := int(cy + (float64(y)-cy)/zoom)
				sx := int(cx + (float64(x)-cx)/zoom)
				t.Set(0, c, y, x, (src.At(0, c, y, x)+src.At(0, c, sy, sx))/2)
			}
		}
	}
}

// pixelate replaces block-size squares by their mean.
func pixelate(t *tensor.Tensor, block int) {
	for c := 0; c < t.C; c++ {
		for y0 := 0; y0 < t.H; y0 += block {
			for x0 := 0; x0 < t.W; x0 += block {
				var sum float32
				n := 0
				for y := y0; y < y0+block && y < t.H; y++ {
					for x := x0; x < x0+block && x < t.W; x++ {
						sum += t.At(0, c, y, x)
						n++
					}
				}
				mean := sum / float32(n)
				for y := y0; y < y0+block && y < t.H; y++ {
					for x := x0; x < x0+block && x < t.W; x++ {
						t.Set(0, c, y, x, mean)
					}
				}
			}
		}
	}
}

// AdversarialConfig parameterizes the corrupted dataset.
type AdversarialConfig struct {
	Seed       string
	Classes    int
	PerClass   int
	Severities []int
	Types      []Corruption
}

// DefaultAdversarial mirrors the paper's Table IV setup: all 15 types at
// severities 1 and 5, 100 classes. PerClass is configurable (the paper
// uses 20).
func DefaultAdversarial(perClass int) AdversarialConfig {
	return AdversarialConfig{
		Seed: "imagenet-proxy", Classes: NumClasses, PerClass: perClass,
		Severities: []int{1, 5}, Types: Corruptions(),
	}
}

// AdversarialSample is a corrupted labelled image.
type AdversarialSample struct {
	Sample
	Type     Corruption
	Severity int
}

// Adversarial synthesizes the corrupted dataset: for each type, severity
// and class, PerClass corrupted benign images.
func Adversarial(cfg AdversarialConfig) []AdversarialSample {
	tpl := Templates(cfg.Seed, cfg.Classes)
	var out []AdversarialSample
	for _, ct := range cfg.Types {
		for _, sv := range cfg.Severities {
			for c := 0; c < cfg.Classes; c++ {
				for i := 0; i < cfg.PerClass; i++ {
					key := fmt.Sprintf("%s/adv/c%d/i%d", cfg.Seed, c, i)
					src := fixrand.NewKeyed(key)
					img := tpl[c].Clone()
					for k := range img.Data {
						img.Data[k] += float32(3.8 * src.NormFloat64())
					}
					img = Corrupt(img, ct, sv, key)
					out = append(out, AdversarialSample{
						Sample:   Sample{Image: img, Label: c},
						Type:     ct,
						Severity: sv,
					})
				}
			}
		}
	}
	return out
}

// DistortionEnergy measures the mean squared difference a corruption
// introduces, used by property tests to verify severity monotonicity.
func DistortionEnergy(img *tensor.Tensor, c Corruption, severity int, key string) float64 {
	out := Corrupt(img, c, severity, key)
	var sum float64
	for i := range img.Data {
		d := float64(out.Data[i] - img.Data[i])
		sum += d * d
	}
	return sum / float64(img.Len())
}
