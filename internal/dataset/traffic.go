package dataset

import (
	"fmt"

	"edgeinfer/internal/fixrand"
	"edgeinfer/internal/tensor"
)

// VehicleClass enumerates the traffic dataset's object classes (the
// paper's developing-region traffic set labels bus, car, truck, etc.).
type VehicleClass int

const (
	Car VehicleClass = iota
	Bus
	Truck
	Motorbike
	Autorickshaw
)

var vehicleNames = [...]string{"car", "bus", "truck", "motorbike", "autorickshaw"}

// String implements fmt.Stringer.
func (v VehicleClass) String() string {
	if int(v) < len(vehicleNames) {
		return vehicleNames[v]
	}
	return fmt.Sprintf("vehicle(%d)", int(v))
}

// Box is an axis-aligned bounding box in pixel coordinates.
type Box struct {
	X, Y, W, H int
	Class      VehicleClass
	Confidence float64
}

// Scene is one synthetic traffic-camera frame with ground truth.
type Scene struct {
	Image *tensor.Tensor
	Truth []Box
	// Plate is the number plate of the first (violating) vehicle, used
	// by the intersection-control example's fining pipeline.
	Plate string
}

// SceneConfig parameterizes scene generation.
type SceneConfig struct {
	Seed     string
	HW       int
	Vehicles int
	// Dusk renders vehicles at low contrast (evening footage): their
	// brightness sits near detection thresholds, which is where engine
	// non-determinism flips detections.
	Dusk bool
}

// DefaultScenes mirrors the paper's traffic dataset scale knobs.
func DefaultScenes() SceneConfig { return SceneConfig{Seed: "traffic", HW: 64, Vehicles: 4} }

// vehicleSize gives per-class box dimensions relative to the frame.
func vehicleSize(c VehicleClass, hw int) (int, int) {
	switch c {
	case Bus, Truck:
		return hw / 3, hw / 4
	case Motorbike:
		return hw / 10, hw / 8
	case Autorickshaw:
		return hw / 8, hw / 7
	default:
		return hw / 6, hw / 7
	}
}

// Generate synthesizes the i-th scene of the configured stream: a road
// background with vehicle rectangles whose intensity encodes class.
func Generate(cfg SceneConfig, i int) Scene {
	src := fixrand.NewKeyed(fmt.Sprintf("%s/scene%d", cfg.Seed, i))
	img := tensor.New(1, ImgC, cfg.HW, cfg.HW)
	// Road background: gentle vertical gradient plus noise.
	for c := 0; c < ImgC; c++ {
		for y := 0; y < cfg.HW; y++ {
			for x := 0; x < cfg.HW; x++ {
				img.Set(0, c, y, x, 0.2*float32(y)/float32(cfg.HW)+0.1*float32(src.NormFloat64()))
			}
		}
	}
	var truth []Box
	for v := 0; v < cfg.Vehicles; v++ {
		cls := VehicleClass(src.Intn(5))
		w, h := vehicleSize(cls, cfg.HW)
		x := src.Intn(cfg.HW - w)
		y := src.Intn(cfg.HW - h)
		val := 0.5 + 0.5*float32(cls)/4
		if cfg.Dusk {
			val = 0.42 + 0.25*float32(cls)/4 // barely above the coverage threshold
		}
		for c := 0; c < ImgC; c++ {
			for yy := y; yy < y+h; yy++ {
				for xx := x; xx < x+w; xx++ {
					img.Set(0, c, yy, xx, val+0.05*float32(src.NormFloat64()))
				}
			}
		}
		truth = append(truth, Box{X: x, Y: y, W: w, H: h, Class: cls})
	}
	plate := fmt.Sprintf("DL%02dC%04d", src.Intn(99)+1, src.Intn(10000))
	return Scene{Image: img, Truth: truth, Plate: plate}
}
