package netserve

import (
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"edgeinfer/internal/serve"
	"edgeinfer/internal/tensor"
)

// request is one admitted inference request waiting for its batch.
type request struct {
	x        *tensor.Tensor
	high     bool
	deadline time.Time
	enqueued time.Time
	// resp receives exactly one response (buffered so the batcher never
	// blocks on a handler that stopped listening).
	resp chan response
	// canceled is set by the handler when the client disconnects; the
	// batcher skips canceled requests instead of wedging a batch slot on
	// a dead client.
	canceled atomic.Bool
}

// deliver hands the request its response. Non-blocking: the channel has
// capacity 1 and each request is answered exactly once, so the default
// arm only guards against bugs, never drops a real answer.
func (r *request) deliver(resp response) {
	select {
	case r.resp <- resp:
	default:
	}
}

// response is what the handler writes back.
type response struct {
	status     int
	retryAfter bool
	reply      any // InferReply or ErrReply, JSON-marshaled by the handler
}

// modelQueue is one model's bounded coalescing queue plus the single
// batcher goroutine that drains it. Admission, eviction and shedding
// happen under mu; the batcher packs admitted requests into
// size-or-window-triggered batches and serves them through the backend.
type modelQueue struct {
	model    string
	be       Backend
	maxBatch int
	window   time.Duration
	depth    int

	mu       sync.Mutex
	high     []*request
	low      []*request
	draining bool
	stats    ModelStats
	runIndex int

	// wake (capacity 1) nudges the batcher after an admit; drainCh is
	// closed exactly once when draining starts.
	wake      chan struct{}
	drainCh   chan struct{}
	drainOnce sync.Once
}

func newModelQueue(model string, be Backend, maxBatch int, window time.Duration, depth int) *modelQueue {
	return &modelQueue{
		model:    model,
		be:       be,
		maxBatch: maxBatch,
		window:   window,
		depth:    depth,
		wake:     make(chan struct{}, 1),
		drainCh:  make(chan struct{}),
	}
}

func (q *modelQueue) signal() {
	select {
	case q.wake <- struct{}{}:
	default:
	}
}

// beginDrain flips the queue into drain mode: no further admissions,
// and the batcher flushes what is queued and exits. Idempotent.
func (q *modelQueue) beginDrain() {
	q.mu.Lock()
	q.draining = true
	q.mu.Unlock()
	q.drainOnce.Do(func() { close(q.drainCh) })
}

func shedResp(reason string) response {
	return response{
		status:     503,
		retryAfter: true,
		reply:      ErrReply{Error: "overloaded", Reason: reason},
	}
}

// admit applies the admission policy. It returns nil when the request
// was queued; otherwise the response the caller must write (a shed).
// When the queue is full and a high-priority request arrives, the
// youngest queued low-priority request is evicted in its favor — shed
// low first, and shed the request with the least sunk queueing time.
// Every shed is an explicit 503 with Retry-After, never a hang.
func (q *modelQueue) admit(req *request) *response {
	q.mu.Lock()
	if q.draining {
		q.countShed(req.high)
		q.mu.Unlock()
		r := shedResp("draining")
		return &r
	}
	var victim *request
	if len(q.high)+len(q.low) >= q.depth {
		if !req.high || len(q.low) == 0 {
			q.countShed(req.high)
			q.mu.Unlock()
			r := shedResp("queue-full")
			return &r
		}
		victim = q.low[len(q.low)-1]
		q.low = q.low[:len(q.low)-1]
		q.stats.Evicted++
		q.countShed(false)
	}
	if req.high {
		q.high = append(q.high, req)
	} else {
		q.low = append(q.low, req)
	}
	if d := len(q.high) + len(q.low); d > q.stats.MaxQueueDepth {
		q.stats.MaxQueueDepth = d
	}
	q.stats.Accepted++
	q.mu.Unlock()
	if victim != nil {
		victim.deliver(shedResp("evicted"))
	}
	q.signal()
	return nil
}

func (q *modelQueue) countShed(high bool) {
	q.stats.Shed++
	if high {
		q.stats.ShedHigh++
	} else {
		q.stats.ShedLow++
	}
}

func (q *modelQueue) empty() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.high)+len(q.low) == 0
}

// popLive pops the next serviceable request (high band first). Canceled
// requests are dropped silently (the handler already counted the
// disconnect); requests whose deadline has already expired are answered
// 504 on the spot — a queue must never spend a batch slot on an answer
// nobody can use.
func (q *modelQueue) popLive() *request {
	for {
		q.mu.Lock()
		var r *request
		switch {
		case len(q.high) > 0:
			r = q.high[0]
			q.high = q.high[1:]
			if len(q.high) == 0 {
				q.high = nil
			}
		case len(q.low) > 0:
			r = q.low[0]
			q.low = q.low[1:]
			if len(q.low) == 0 {
				q.low = nil
			}
		}
		if r == nil {
			q.mu.Unlock()
			return nil
		}
		if r.canceled.Load() {
			q.mu.Unlock()
			continue
		}
		if time.Now().After(r.deadline) {
			q.stats.Expired++
			q.stats.DeadlineMisses++
			q.mu.Unlock()
			r.deliver(response{status: 504, reply: ErrReply{Error: "deadline exceeded in queue", Reason: "deadline"}})
			continue
		}
		q.mu.Unlock()
		return r
	}
}

// next blocks until a serviceable request is available, or returns nil
// when the queue is draining and empty (the batcher's exit condition).
func (q *modelQueue) next() *request {
	for {
		if r := q.popLive(); r != nil {
			return r
		}
		q.mu.Lock()
		draining := q.draining
		q.mu.Unlock()
		if draining && q.empty() {
			return nil
		}
		select {
		case <-q.wake:
		case <-q.drainCh:
			if q.empty() {
				return nil
			}
		}
	}
}

// gather coalesces requests behind first into one batch: it fills up to
// maxBatch, or until the batch window expires — whichever comes first.
// During drain the window is forfeited: whatever is queued flushes
// immediately.
func (q *modelQueue) gather(first *request) []*request {
	batch := []*request{first}
	if q.maxBatch <= 1 {
		return batch
	}
	timer := time.NewTimer(q.window)
	defer timer.Stop()
	for len(batch) < q.maxBatch {
		if r := q.popLive(); r != nil {
			batch = append(batch, r)
			continue
		}
		select {
		case <-q.wake:
		case <-timer.C:
			return batch
		case <-q.drainCh:
			return batch
		}
	}
	return batch
}

// run is the batcher goroutine: pop, coalesce, serve, respond — until
// drained.
func (q *modelQueue) run(wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		first := q.next()
		if first == nil {
			return
		}
		q.serveBatch(q.gather(first))
	}
}

// serveBatch runs one coalesced batch through the backend and fans the
// per-request responses out. The batch's serving budget is its tightest
// member deadline, clamped through the executor's deadline machinery by
// the backend.
func (q *modelQueue) serveBatch(batch []*request) {
	start := time.Now()
	xs := make([]*tensor.Tensor, len(batch))
	minRem := math.MaxFloat64
	for i, r := range batch {
		xs[i] = r.x
		if rem := r.deadline.Sub(start).Seconds(); rem < minRem {
			minRem = rem
		}
	}
	if minRem <= 0 {
		// popLive admitted it un-expired; the clock moved since. Give the
		// batch a hair of budget rather than a guaranteed abort.
		minRem = 1e-6
	}
	q.mu.Lock()
	idx := q.runIndex
	q.runIndex++
	q.stats.Batches++
	q.stats.BatchedInputs += uint64(len(batch))
	q.mu.Unlock()

	ans, err := q.be.ServeBatch(xs, idx, minRem)
	switch {
	case err != nil && errors.Is(err, serve.ErrDeadlineExceeded):
		q.mu.Lock()
		q.stats.Aborted += uint64(len(batch))
		q.stats.DeadlineMisses += uint64(len(batch))
		q.mu.Unlock()
		for _, r := range batch {
			r.deliver(response{status: 504, reply: ErrReply{Error: "deadline exceeded in service", Reason: "deadline"}})
		}
	case err != nil:
		q.mu.Lock()
		q.stats.Errors += uint64(len(batch))
		q.mu.Unlock()
		for _, r := range batch {
			r.deliver(response{status: 500, reply: ErrReply{Error: err.Error(), Reason: "backend"}})
		}
	default:
		done := time.Now()
		var served, misses uint64
		for i, r := range batch {
			a := ans.Results[i]
			miss := ans.DeadlineMiss || done.After(r.deadline)
			served++
			if miss {
				misses++
			}
			arg := -1
			if len(a.Outputs) > 0 {
				arg = argmax(a.Outputs[0])
			}
			r.deliver(response{status: 200, reply: InferReply{
				Model:        q.model,
				Argmax:       arg,
				LatencySec:   ans.LatencySec,
				QueueMS:      float64(start.Sub(r.enqueued)) / float64(time.Millisecond),
				BatchSize:    len(batch),
				Tier:         a.Tier,
				Degraded:     a.Degraded,
				DeadlineMiss: miss,
			}})
		}
		q.mu.Lock()
		q.stats.Served += served
		q.stats.DeadlineMisses += misses
		q.mu.Unlock()
	}
}

// snapshot copies the stats under the lock, folding in the live depth.
func (q *modelQueue) snapshot() ModelStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	s := q.stats
	s.QueueDepth = len(q.high) + len(q.low)
	return s
}

// noteClientGone counts a mid-request disconnect (the handler observed
// the context cancellation; the batcher will skip the request).
func (q *modelQueue) noteClientGone() {
	q.mu.Lock()
	q.stats.ClientGone++
	q.mu.Unlock()
}

// argmax returns the index of the largest element (lowest index wins
// ties), or -1 for an empty tensor.
func argmax(t *tensor.Tensor) int {
	if t == nil || len(t.Data) == 0 {
		return -1
	}
	best := 0
	for i, v := range t.Data {
		if v > t.Data[best] {
			best = i
		}
	}
	return best
}
