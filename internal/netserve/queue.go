package netserve

import (
	"errors"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"edgeinfer/internal/rtctx"
	"edgeinfer/internal/serve"
	"edgeinfer/internal/tensor"
)

// request is one admitted inference request waiting for its batch. Its
// real-time identity — budget, priority band, tenant, arrival and
// wall-clock deadline — lives in one rtctx.Request stamped by the
// handler, which is also what the queue orders by in EDF mode and what
// the backend threads down to the layer-boundary guard.
type request struct {
	x   *tensor.Tensor
	ctx *rtctx.Request
	// seq is the admission sequence number, stamped under the queue
	// lock. It breaks EDF ties that rtctx.EarlierThan cannot: two
	// requests with identical (deadline, band, arrival) compare false
	// both ways, so without seq their queue order — and therefore which
	// one a full queue evicts — would depend on incidental insertion
	// mechanics. With seq, edfBefore is a strict total order and ties
	// serve in admission order (FIFO among equals).
	seq uint64
	// resp receives exactly one response (buffered so the batcher never
	// blocks on a handler that stopped listening).
	resp chan response
	// canceled is set by the handler when the client disconnects; the
	// batcher skips canceled requests instead of wedging a batch slot on
	// a dead client.
	canceled atomic.Bool
}

func (r *request) high() bool { return r.ctx.Band == rtctx.BandHigh }

// deliver hands the request its response. Non-blocking: the channel has
// capacity 1 and each request is answered exactly once, so the default
// arm only guards against bugs, never drops a real answer.
func (r *request) deliver(resp response) {
	select {
	case r.resp <- resp:
	default:
	}
}

// response is what the handler writes back.
type response struct {
	status     int
	retryAfter bool
	reply      any // InferReply or ErrReply, JSON-marshaled by the handler
}

// modelQueue is one model's bounded coalescing queue plus the single
// batcher goroutine that drains it. Admission, eviction and shedding
// happen under mu; the batcher packs admitted requests into
// size-or-window-triggered batches and serves them through the backend.
//
// Two queue disciplines: the default two-band FIFO (high band first,
// a high arrival evicts the youngest queued low when full), or EDF —
// one queue ordered by wall-clock deadline (earliest first, band
// breaking ties), where a full queue evicts the latest-deadline member
// if the newcomer is more urgent (drop-late) and sheds the newcomer
// otherwise. A positive wcetSec arms WCET admission: a request whose
// whole budget is below the certified worst-case service bound is shed
// at the door — it would only be queued to miss.
type modelQueue struct {
	model    string
	be       Backend
	maxBatch int
	window   time.Duration
	depth    int
	edf      bool
	wcetSec  float64

	mu       sync.Mutex
	high     []*request
	low      []*request
	edfq     []*request // EDF mode: ordered by edfBefore, most urgent first
	nextSeq  uint64     // admission sequence for EDF tie-breaking
	draining bool
	stats    ModelStats
	runIndex int

	// wake (capacity 1) nudges the batcher after an admit; drainCh is
	// closed exactly once when draining starts.
	wake      chan struct{}
	drainCh   chan struct{}
	drainOnce sync.Once
}

func newModelQueue(model string, be Backend, maxBatch int, window time.Duration, depth int, edf bool, wcetSec float64) *modelQueue {
	return &modelQueue{
		model:    model,
		be:       be,
		maxBatch: maxBatch,
		window:   window,
		depth:    depth,
		edf:      edf,
		wcetSec:  wcetSec,
		wake:     make(chan struct{}, 1),
		drainCh:  make(chan struct{}),
	}
}

func (q *modelQueue) signal() {
	select {
	case q.wake <- struct{}{}:
	default:
	}
}

// beginDrain flips the queue into drain mode: no further admissions,
// and the batcher flushes what is queued and exits. Idempotent.
func (q *modelQueue) beginDrain() {
	q.mu.Lock()
	q.draining = true
	q.mu.Unlock()
	q.drainOnce.Do(func() { close(q.drainCh) })
}

func shedResp(reason string) response {
	return response{
		status:     503,
		retryAfter: true,
		reply:      ErrReply{Error: "overloaded", Reason: reason},
	}
}

// edfBefore is the EDF queue's strict total order: rtctx.EarlierThan
// (deadline, then band, then arrival) with the admission sequence as
// the final tie-break. EarlierThan alone is only a partial order —
// fully-equal contexts compare false both ways — and the queue's
// insertion position and eviction victim must not depend on how a sort
// happens to arrange incomparable elements. Under edfBefore, equal-
// deadline requests serve in admission order and a full queue's victim
// is deterministically the latest-admitted member of the latest-
// deadline tie (see TestEDFEvictionTieBreakIsDeterministic).
func edfBefore(a, b *request) bool {
	if a.ctx.EarlierThan(b.ctx) {
		return true
	}
	if b.ctx.EarlierThan(a.ctx) {
		return false
	}
	return a.seq < b.seq
}

// admit applies the admission policy. It returns nil when the request
// was queued; otherwise the response the caller must write (a shed).
//
// INVARIANT — gate order is draining, then WCET, then full-queue, and
// tests pin it (TestAdmitGateOrderInvariant):
//
//  1. draining sheds everything: a server past beginDrain must never
//     accept work, however urgent, or Drain cannot terminate;
//  2. WCET admission sheds a request whose budget the certified bound
//     proves unmeetable (the 503 arrives in microseconds instead of a
//     504 after the budget burned) — before the full-queue policy, so
//     a hopeless request can never evict a feasible one;
//  3. the full-queue policy of the active discipline runs last, and
//     only over requests that could still meet their deadlines.
//
// Every shed is an explicit 503 with Retry-After, never a hang.
func (q *modelQueue) admit(req *request) *response {
	q.mu.Lock()
	if q.draining {
		q.countShed(req.high())
		q.mu.Unlock()
		r := shedResp("draining")
		return &r
	}
	if q.wcetSec > 0 && req.ctx.Budget() < q.wcetSec {
		q.stats.WCETShed++
		q.countShed(req.high())
		q.mu.Unlock()
		r := shedResp("wcet")
		return &r
	}
	var victim *request
	if q.edf {
		req.seq = q.nextSeq
		q.nextSeq++
		if len(q.edfq) >= q.depth {
			last := q.edfq[len(q.edfq)-1]
			if !edfBefore(req, last) {
				q.countShed(req.high())
				q.mu.Unlock()
				r := shedResp("queue-full")
				return &r
			}
			// Drop-late: the queued request with the latest deadline is
			// the one most likely already hopeless; among equal
			// deadlines, the latest-admitted (edfBefore keeps the queue
			// a strict total order, so the tail is the unique maximum).
			victim = last
			q.edfq = q.edfq[:len(q.edfq)-1]
			q.stats.Evicted++
			q.stats.EDFEvictions++
			q.countShed(victim.high())
		}
		i := sort.Search(len(q.edfq), func(i int) bool {
			return edfBefore(req, q.edfq[i])
		})
		q.edfq = append(q.edfq, nil)
		copy(q.edfq[i+1:], q.edfq[i:])
		q.edfq[i] = req
	} else {
		if len(q.high)+len(q.low) >= q.depth {
			if !req.high() || len(q.low) == 0 {
				q.countShed(req.high())
				q.mu.Unlock()
				r := shedResp("queue-full")
				return &r
			}
			victim = q.low[len(q.low)-1]
			q.low = q.low[:len(q.low)-1]
			q.stats.Evicted++
			q.countShed(false)
		}
		if req.high() {
			q.high = append(q.high, req)
		} else {
			q.low = append(q.low, req)
		}
	}
	if d := q.depthLocked(); d > q.stats.MaxQueueDepth {
		q.stats.MaxQueueDepth = d
	}
	q.stats.Accepted++
	q.mu.Unlock()
	if victim != nil {
		victim.deliver(shedResp("evicted"))
	}
	q.signal()
	return nil
}

func (q *modelQueue) countShed(high bool) {
	q.stats.Shed++
	if high {
		q.stats.ShedHigh++
	} else {
		q.stats.ShedLow++
	}
}

func (q *modelQueue) depthLocked() int {
	return len(q.high) + len(q.low) + len(q.edfq)
}

func (q *modelQueue) empty() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.depthLocked() == 0
}

// popLive pops the next serviceable request (earliest deadline in EDF
// mode, high band first in FIFO mode). Canceled requests are dropped
// silently (the handler already counted the disconnect); requests whose
// deadline has already expired are answered 504 on the spot — a queue
// must never spend a batch slot on an answer nobody can use.
func (q *modelQueue) popLive() *request {
	for {
		q.mu.Lock()
		var r *request
		switch {
		case len(q.edfq) > 0:
			r = q.edfq[0]
			q.edfq = q.edfq[1:]
			if len(q.edfq) == 0 {
				q.edfq = nil
			}
		case len(q.high) > 0:
			r = q.high[0]
			q.high = q.high[1:]
			if len(q.high) == 0 {
				q.high = nil
			}
		case len(q.low) > 0:
			r = q.low[0]
			q.low = q.low[1:]
			if len(q.low) == 0 {
				q.low = nil
			}
		}
		if r == nil {
			q.mu.Unlock()
			return nil
		}
		if r.canceled.Load() {
			q.mu.Unlock()
			continue
		}
		if r.ctx.Expired(time.Now()) {
			q.stats.Expired++
			q.stats.DeadlineMisses++
			q.mu.Unlock()
			r.deliver(response{status: 504, reply: ErrReply{Error: "deadline exceeded in queue", Reason: "deadline"}})
			continue
		}
		q.mu.Unlock()
		return r
	}
}

// next blocks until a serviceable request is available, or returns nil
// when the queue is draining and empty (the batcher's exit condition).
func (q *modelQueue) next() *request {
	for {
		if r := q.popLive(); r != nil {
			return r
		}
		q.mu.Lock()
		draining := q.draining
		q.mu.Unlock()
		if draining && q.empty() {
			return nil
		}
		select {
		case <-q.wake:
		case <-q.drainCh:
			if q.empty() {
				return nil
			}
		}
	}
}

// gather coalesces requests behind first into one batch: it fills up to
// maxBatch, or until the batch window expires — whichever comes first.
// During drain the window is forfeited: whatever is queued flushes
// immediately.
func (q *modelQueue) gather(first *request) []*request {
	batch := []*request{first}
	if q.maxBatch <= 1 {
		return batch
	}
	timer := time.NewTimer(q.window)
	defer timer.Stop()
	for len(batch) < q.maxBatch {
		if r := q.popLive(); r != nil {
			batch = append(batch, r)
			continue
		}
		select {
		case <-q.wake:
		case <-timer.C:
			return batch
		case <-q.drainCh:
			return batch
		}
	}
	return batch
}

// run is the batcher goroutine: pop, coalesce, serve, respond — until
// drained.
func (q *modelQueue) run(wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		first := q.next()
		if first == nil {
			return
		}
		q.serveBatch(q.gather(first))
	}
}

// batchCtx derives the batch's request context from its members: the
// budget is the tightest member's remaining deadline, the band the
// highest member band (one urgent member makes the whole launch
// urgent), the tenant is kept only when every member agrees (a batch
// has no single tenant otherwise). The context aborts: a batch the
// layer-boundary guard proves hopeless stops mid-graph.
func batchCtx(batch []*request, start time.Time) *rtctx.Request {
	minRem := math.MaxFloat64
	deadline := time.Time{}
	band := rtctx.BandLow
	tenant := batch[0].ctx.Tenant
	for _, r := range batch {
		if rem := r.ctx.RemainingSec(start); rem < minRem {
			minRem = rem
			deadline = r.ctx.Deadline
		}
		if r.ctx.Band == rtctx.BandHigh {
			band = rtctx.BandHigh
		}
		if r.ctx.Tenant != tenant {
			tenant = ""
		}
	}
	if minRem <= 0 {
		// popLive admitted it un-expired; the clock moved since. Give the
		// batch a hair of budget rather than a guaranteed abort.
		minRem = 1e-6
	}
	return &rtctx.Request{
		BudgetSec: minRem,
		Abort:     true,
		Band:      band,
		Tenant:    tenant,
		Arrival:   start,
		Deadline:  deadline,
	}
}

// serveBatch runs one coalesced batch through the backend and fans the
// per-request responses out. The batch's serving budget is its tightest
// member deadline, threaded as one rtctx.Request through the backend's
// budget-carrying path down to the layer-boundary guard.
func (q *modelQueue) serveBatch(batch []*request) {
	start := time.Now()
	xs := make([]*tensor.Tensor, len(batch))
	for i, r := range batch {
		xs[i] = r.x
	}
	bctx := batchCtx(batch, start)
	q.mu.Lock()
	idx := q.runIndex
	q.runIndex++
	q.stats.Batches++
	q.stats.BatchedInputs += uint64(len(batch))
	q.mu.Unlock()

	ans, err := q.be.ServeBatch(bctx, xs, idx)
	switch {
	case err != nil && errors.Is(err, serve.ErrDeadlineExceeded):
		q.mu.Lock()
		q.stats.Aborted += uint64(len(batch))
		q.stats.DeadlineMisses += uint64(len(batch))
		q.mu.Unlock()
		for _, r := range batch {
			r.deliver(response{status: 504, reply: ErrReply{Error: "deadline exceeded in service", Reason: "deadline"}})
		}
	case err != nil:
		q.mu.Lock()
		q.stats.Errors += uint64(len(batch))
		q.mu.Unlock()
		for _, r := range batch {
			r.deliver(response{status: 500, reply: ErrReply{Error: err.Error(), Reason: "backend"}})
		}
	default:
		done := time.Now()
		var served, misses uint64
		for i, r := range batch {
			a := ans.Results[i]
			miss := ans.DeadlineMiss || r.ctx.Expired(done)
			served++
			if miss {
				misses++
			}
			arg := -1
			if len(a.Outputs) > 0 {
				arg = argmax(a.Outputs[0])
			}
			r.deliver(response{status: 200, reply: InferReply{
				Model:        q.model,
				Argmax:       arg,
				LatencySec:   ans.LatencySec,
				QueueMS:      float64(start.Sub(r.ctx.Arrival)) / float64(time.Millisecond),
				BatchSize:    len(batch),
				Tier:         a.Tier,
				Tenant:       r.ctx.Tenant,
				Degraded:     a.Degraded,
				DeadlineMiss: miss,
			}})
		}
		q.mu.Lock()
		q.stats.Served += served
		q.stats.DeadlineMisses += misses
		q.mu.Unlock()
	}
}

// snapshot copies the stats under the lock, folding in the live depth.
func (q *modelQueue) snapshot() ModelStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	s := q.stats
	s.QueueDepth = q.depthLocked()
	return s
}

// noteClientGone counts a mid-request disconnect (the handler observed
// the context cancellation; the batcher will skip the request).
func (q *modelQueue) noteClientGone() {
	q.mu.Lock()
	q.stats.ClientGone++
	q.mu.Unlock()
}

// argmax returns the index of the largest element (lowest index wins
// ties), or -1 for an empty tensor.
func argmax(t *tensor.Tensor) int {
	if t == nil || len(t.Data) == 0 {
		return -1
	}
	best := 0
	for i, v := range t.Data {
		if v > t.Data[best] {
			best = i
		}
	}
	return best
}
