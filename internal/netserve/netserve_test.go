package netserve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"edgeinfer/internal/faults"
	"edgeinfer/internal/gpusim"
	"edgeinfer/internal/netserve"
	"edgeinfer/internal/rtctx"
	"edgeinfer/internal/serve"
	"edgeinfer/internal/tensor"
)

// fakeBackend is a controllable backend: it can block until released,
// fail with a chosen error, and report chosen readiness. Each answer
// echoes its input tensor, so the reply argmax is the input argmax.
type fakeBackend struct {
	shape [4]int
	gate  chan struct{} // non-nil: ServeBatch blocks until closed
	start chan struct{} // non-nil: signaled (cap>=1) on ServeBatch entry
	ready atomic.Bool

	mu      sync.Mutex
	err     error
	batches [][]int // argmax of each member, per batch, in order
}

func newFakeBackend() *fakeBackend {
	b := &fakeBackend{shape: [4]int{1, 3, 4, 4}}
	b.ready.Store(true)
	return b
}

func (b *fakeBackend) InputShape() [4]int { return b.shape }

func (b *fakeBackend) Ready() (bool, string) {
	if !b.ready.Load() {
		return false, "backend offline"
	}
	return true, "ok"
}

func (b *fakeBackend) setErr(err error) {
	b.mu.Lock()
	b.err = err
	b.mu.Unlock()
}

func (b *fakeBackend) ServeBatch(ctx *rtctx.Request, xs []*tensor.Tensor, runIndex int) (*netserve.BatchAnswer, error) {
	if b.start != nil {
		select {
		case b.start <- struct{}{}:
		default:
		}
	}
	if b.gate != nil {
		<-b.gate
	}
	b.mu.Lock()
	err := b.err
	b.mu.Unlock()
	if err != nil {
		return nil, err
	}
	batch := make([]int, 0, len(xs))
	ba := &netserve.BatchAnswer{LatencySec: 1e-4}
	for _, x := range xs {
		best := 0
		for i, v := range x.Data {
			if v > x.Data[best] {
				best = i
			}
		}
		batch = append(batch, best)
		ba.Results = append(ba.Results, netserve.Answer{
			Outputs: []*tensor.Tensor{x},
			Tier:    "fake",
		})
	}
	b.mu.Lock()
	b.batches = append(b.batches, batch)
	b.mu.Unlock()
	return ba, nil
}

func (b *fakeBackend) batchSizes() []int {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]int, len(b.batches))
	for i, batch := range b.batches {
		out[i] = len(batch)
	}
	return out
}

// servedArgmaxes flattens every served member's argmax.
func (b *fakeBackend) servedArgmaxes() []int {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []int
	for _, batch := range b.batches {
		out = append(out, batch...)
	}
	return out
}

// newFakeServer builds a server over a single fake-backed model "m".
func newFakeServer(t *testing.T, be netserve.Backend, mut func(*netserve.Config)) (*netserve.Server, *httptest.Server) {
	t.Helper()
	cfg := netserve.Config{Models: []netserve.ModelConfig{{Name: "m", Backend: be}}}
	if mut != nil {
		mut(&cfg)
	}
	s, err := netserve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
	})
	return s, ts
}

// rawBody builds a {"data","shape"} body whose argmax is the given class.
func rawBody(t *testing.T, shape [4]int, class int) []byte {
	t.Helper()
	n := shape[0] * shape[1] * shape[2] * shape[3]
	data := make([]float32, n)
	data[class%n] = 1
	body, err := json.Marshal(map[string]any{"data": data, "shape": shape})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

type result struct {
	status int
	retry  string
	infer  netserve.InferReply
	errRep netserve.ErrReply
}

// post sends one inference request and decodes whichever reply came back.
func post(t *testing.T, url string, body []byte, hdr map[string]string) result {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/models/m/infer", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	res := result{status: resp.StatusCode, retry: resp.Header.Get("Retry-After")}
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &res.infer); err != nil {
			t.Fatalf("decoding %q: %v", raw, err)
		}
	} else if err := json.Unmarshal(raw, &res.errRep); err != nil {
		t.Fatalf("decoding %q: %v", raw, err)
	}
	return res
}

// Concurrent raw-tensor requests all answer 200 with the right argmax,
// and at least one batch coalesces more than one request.
func TestServeCoalescesAndAnswers(t *testing.T) {
	be := newFakeBackend()
	_, ts := newFakeServer(t, be, func(c *netserve.Config) {
		c.MaxBatch = 8
		c.BatchWindow = 20 * time.Millisecond
	})
	const n = 16
	results := make([]result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = post(t, ts.URL, rawBody(t, be.shape, i), nil)
		}(i)
	}
	wg.Wait()
	for i, r := range results {
		if r.status != 200 {
			t.Fatalf("req %d: status %d (%+v)", i, r.status, r.errRep)
		}
		if r.infer.Argmax != i%48 {
			t.Fatalf("req %d: argmax %d, want %d", i, r.infer.Argmax, i%48)
		}
		if r.infer.Tier != "fake" || r.infer.Model != "m" {
			t.Fatalf("req %d: reply %+v", i, r.infer)
		}
	}
	coalesced := false
	for _, sz := range be.batchSizes() {
		if sz > 8 {
			t.Fatalf("batch of %d exceeds MaxBatch 8", sz)
		}
		if sz > 1 {
			coalesced = true
		}
	}
	if !coalesced {
		t.Fatalf("no batch coalesced >1 request: sizes %v", be.batchSizes())
	}
}

// With the backend wedged and the queue full: low arrivals shed 503
// queue-full with Retry-After, a high arrival evicts the youngest queued
// low request, and nothing hangs.
func TestShedAndEviction(t *testing.T) {
	be := newFakeBackend()
	be.gate = make(chan struct{})
	be.start = make(chan struct{}, 1)
	s, ts := newFakeServer(t, be, func(c *netserve.Config) {
		c.MaxBatch = 1 // serve one at a time so the queue actually fills
		c.QueueDepth = 3
		c.DefaultDeadline = 5 * time.Second
	})

	async := func(hdr map[string]string) chan result {
		ch := make(chan result, 1)
		go func() { ch <- post(t, ts.URL, rawBody(t, be.shape, 1), hdr) }()
		return ch
	}
	waitDepth := func(want int) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for s.Stats().Models["m"].QueueDepth != want {
			if time.Now().After(deadline) {
				t.Fatalf("queue depth never reached %d: %+v", want, s.Stats().Models["m"])
			}
			time.Sleep(time.Millisecond)
		}
	}

	first := async(nil)
	<-be.start // wedged in the backend; queue is empty again
	lows := []chan result{async(nil), async(nil), async(nil)}
	waitDepth(3)

	shed := post(t, ts.URL, rawBody(t, be.shape, 1), nil)
	if shed.status != 503 || shed.errRep.Reason != "queue-full" {
		t.Fatalf("overflow low request: %+v", shed)
	}
	if shed.retry == "" {
		t.Fatal("503 shed missing Retry-After")
	}

	highCh := async(map[string]string{"X-Priority": "high"})
	// The high arrival must evict exactly one queued low request before
	// the backend is released (which of the three is a race between their
	// HTTP round-trips, so judge by count, not identity).
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Models["m"].Evicted != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("high arrival never evicted a low request: %+v", s.Stats().Models["m"])
		}
		time.Sleep(time.Millisecond)
	}

	close(be.gate)
	collect := func(name string, ch chan result) result {
		t.Helper()
		select {
		case r := <-ch:
			return r
		case <-time.After(5 * time.Second):
			t.Fatalf("%s hung after release", name)
			return result{}
		}
	}
	if r := collect("first", first); r.status != 200 {
		t.Fatalf("first: %+v", r)
	}
	if r := collect("high", highCh); r.status != 200 {
		t.Fatalf("high: %+v", r)
	}
	served, evicted := 0, 0
	for i, ch := range lows {
		switch r := collect(fmt.Sprintf("low-%d", i), ch); {
		case r.status == 200:
			served++
		case r.status == 503 && r.errRep.Reason == "evicted" && r.retry != "":
			evicted++
		default:
			t.Fatalf("low-%d: %+v", i, r)
		}
	}
	if served != 2 || evicted != 1 {
		t.Fatalf("low requests: %d served, %d evicted (want 2/1)", served, evicted)
	}

	st := s.Stats().Models["m"]
	if st.Evicted != 1 || st.Shed != 2 || st.ShedLow != 2 || st.ShedHigh != 0 {
		t.Fatalf("stats %+v", st)
	}
	if st.MaxQueueDepth > 3 {
		t.Fatalf("queue depth %d exceeded bound 3", st.MaxQueueDepth)
	}
}

// A request whose deadline expires while queued is answered 504 at pop
// time; a backend deadline abort maps to 504 too, other errors to 500.
func TestDeadlineAndErrorMapping(t *testing.T) {
	be := newFakeBackend()
	be.gate = make(chan struct{})
	be.start = make(chan struct{}, 1)
	s, ts := newFakeServer(t, be, func(c *netserve.Config) {
		c.MaxBatch = 1
	})

	first := make(chan result, 1)
	go func() { first <- post(t, ts.URL, rawBody(t, be.shape, 0), nil) }()
	<-be.start

	queued := make(chan result, 1)
	go func() {
		queued <- post(t, ts.URL, rawBody(t, be.shape, 0), map[string]string{"X-Deadline-Ms": "20"})
	}()
	// Let the queued request's 20ms budget lapse while the backend is
	// wedged, then release.
	time.Sleep(60 * time.Millisecond)
	close(be.gate)

	if r := <-first; r.status != 200 {
		t.Fatalf("first request: %+v", r)
	}
	if r := <-queued; r.status != 504 || r.errRep.Reason != "deadline" {
		t.Fatalf("queue-expired request: %+v", r)
	}
	if st := s.Stats().Models["m"]; st.Expired != 1 || st.DeadlineMisses == 0 {
		t.Fatalf("stats %+v", st)
	}

	// The gate stays closed (instant pass-through) for the error cases.
	be.setErr(fmt.Errorf("tier walk: %w", serve.ErrDeadlineExceeded))
	if r := post(t, ts.URL, rawBody(t, be.shape, 0), nil); r.status != 504 || r.errRep.Reason != "deadline" {
		t.Fatalf("backend deadline abort: %+v", r)
	}
	if st := s.Stats().Models["m"]; st.Aborted != 1 {
		t.Fatalf("stats after abort %+v", st)
	}

	be.setErr(fmt.Errorf("replica fire"))
	if r := post(t, ts.URL, rawBody(t, be.shape, 0), nil); r.status != 500 || r.errRep.Reason != "backend" {
		t.Fatalf("backend failure: %+v", r)
	}
	if st := s.Stats().Models["m"]; st.Errors != 1 {
		t.Fatalf("stats after error %+v", st)
	}
}

// Drain answers everything already admitted, sheds new arrivals with
// "draining", flips readiness to 503, and leaves zero in flight.
func TestGracefulDrain(t *testing.T) {
	be := newFakeBackend()
	be.gate = make(chan struct{})
	be.start = make(chan struct{}, 1)
	s, ts := newFakeServer(t, be, func(c *netserve.Config) {
		c.MaxBatch = 1
		c.DefaultDeadline = 5 * time.Second
	})

	inFlight := make(chan result, 1)
	go func() { inFlight <- post(t, ts.URL, rawBody(t, be.shape, 0), nil) }()
	<-be.start
	queuedCh := make(chan result, 1)
	go func() { queuedCh <- post(t, ts.URL, rawBody(t, be.shape, 0), nil) }()
	for s.Stats().Models["m"].QueueDepth != 1 {
		time.Sleep(time.Millisecond)
	}

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	for !s.Draining() {
		time.Sleep(time.Millisecond)
	}

	if r := post(t, ts.URL, rawBody(t, be.shape, 0), nil); r.status != 503 || r.errRep.Reason != "draining" {
		t.Fatalf("post-drain request: %+v", r)
	}
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("readyz during drain: %d", resp.StatusCode)
	}

	close(be.gate)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if r := <-inFlight; r.status != 200 {
		t.Fatalf("in-flight request after drain: %+v", r)
	}
	if r := <-queuedCh; r.status != 200 {
		t.Fatalf("queued request after drain: %+v", r)
	}
	st := s.Stats()
	if !st.Draining || st.Models["m"].QueueDepth != 0 {
		t.Fatalf("post-drain stats %+v", st)
	}
}

// Liveness is unconditional; readiness follows the backend's verdict.
func TestHealthAndReadiness(t *testing.T) {
	be := newFakeBackend()
	_, ts := newFakeServer(t, be, nil)

	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s: %d", path, resp.StatusCode)
		}
	}

	be.ready.Store(false)
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var rep netserve.ReadyReply
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 || rep.Ready || rep.Models["m"].Detail != "backend offline" {
		t.Fatalf("readyz with offline backend: %d %+v", resp.StatusCode, rep)
	}
	// Liveness still answers: a not-ready server is not a dead server.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz with offline backend: %d", resp.StatusCode)
	}
}

// Malformed requests map to explicit client errors, never a hang: bad
// priority, bad deadline, unknown model, malformed JSON, wrong shape,
// oversized body, and a both-inputs body.
func TestBadRequests(t *testing.T) {
	be := newFakeBackend()
	_, ts := newFakeServer(t, be, func(c *netserve.Config) {
		c.MaxBodyBytes = 2048
	})
	ok := rawBody(t, be.shape, 0)

	cases := []struct {
		name   string
		url    string
		body   []byte
		hdr    map[string]string
		status int
		reason string
	}{
		{"bad priority", "m", ok, map[string]string{"X-Priority": "urgent"}, 400, "bad-request"},
		{"bad deadline", "m", ok, map[string]string{"X-Deadline-Ms": "soon"}, 400, "bad-request"},
		{"negative deadline", "m", ok, map[string]string{"X-Deadline-Ms": "-5"}, 400, "bad-request"},
		{"unknown model", "nope", ok, nil, 404, "unknown-model"},
		{"malformed json", "m", []byte("{"), nil, 400, "bad-request"},
		{"wrong shape", "m", []byte(`{"data":[1,2],"shape":[1,1,1,2]}`), nil, 400, "bad-request"},
		{"short data", "m", []byte(`{"data":[1,2],"shape":[1,3,4,4]}`), nil, 400, "bad-request"},
		{"no input", "m", []byte(`{}`), nil, 400, "bad-request"},
		{"both inputs", "m", []byte(`{"input":1,"data":[1],"shape":[1,3,4,4]}`), nil, 400, "bad-request"},
		{"negative index", "m", []byte(`{"input":-1}`), nil, 400, "bad-request"},
		// A data array far past MaxBodyBytes: the decoder must cross the
		// byte limit mid-value, so MaxBytesReader trips before any shape
		// validation could answer 400.
		{"oversized body", "m",
			[]byte(`{"data":[` + strings.Repeat("0,", 4096) + `0],"shape":[1,3,4,4]}`),
			nil, 413, "bad-request"},
	}

	for _, tc := range cases {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/models/"+tc.url+"/infer", bytes.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range tc.hdr {
			req.Header.Set(k, v)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Fatalf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.status, raw)
		}
		var rep netserve.ErrReply
		if err := json.Unmarshal(raw, &rep); err != nil || rep.Reason != tc.reason {
			t.Fatalf("%s: body %q (reason %q, want %q)", tc.name, raw, rep.Reason, tc.reason)
		}
	}
}

// A slow client (body throttled through the faults net injector) still
// gets served — pacing the upload must not fail or wedge the server.
func TestSlowClientStillServed(t *testing.T) {
	be := newFakeBackend()
	_, ts := newFakeServer(t, be, nil)
	body := rawBody(t, be.shape, 3)
	throttled := faults.Throttle(bytes.NewReader(body), 16, 200*time.Microsecond)
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/models/m/infer", throttled)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rep netserve.InferReply
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 || rep.Argmax != 3 {
		t.Fatalf("slow client: %d %+v", resp.StatusCode, rep)
	}
}

// A client that disconnects mid-request is skipped by the batcher (no
// batch slot wasted on the corpse) and counted, and the server keeps
// serving live clients.
func TestClientDisconnectMidRequest(t *testing.T) {
	be := newFakeBackend()
	be.gate = make(chan struct{})
	be.start = make(chan struct{}, 1)
	s, ts := newFakeServer(t, be, func(c *netserve.Config) {
		c.MaxBatch = 1
		c.DefaultDeadline = 5 * time.Second
	})

	first := make(chan result, 1)
	go func() { first <- post(t, ts.URL, rawBody(t, be.shape, 0), nil) }()
	<-be.start

	// Queue a request, then kill its client while it waits.
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		ts.URL+"/v1/models/m/infer", bytes.NewReader(rawBody(t, be.shape, 1)))
	if err != nil {
		t.Fatal(err)
	}
	ghostErr := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		ghostErr <- err
	}()
	for s.Stats().Models["m"].QueueDepth != 1 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-ghostErr; err == nil {
		t.Fatal("canceled client request did not error")
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Models["m"].ClientGone != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("disconnect never counted: %+v", s.Stats().Models["m"])
		}
		time.Sleep(time.Millisecond)
	}

	close(be.gate)
	if r := <-first; r.status != 200 {
		t.Fatalf("live client: %+v", r)
	}
	// A follow-up request is served; the ghost never consumed a batch.
	if r := post(t, ts.URL, rawBody(t, be.shape, 2), nil); r.status != 200 || r.infer.Argmax != 2 {
		t.Fatalf("post-disconnect request: %+v", r)
	}
	for _, a := range be.servedArgmaxes() {
		if a == 1 {
			t.Fatal("batcher served the disconnected client's input")
		}
	}
	if st := s.Stats().Models["m"]; st.Served != 2 {
		t.Fatalf("served %d, want 2 (%+v)", st.Served, st)
	}
}

// End to end against the real stack: a registry-built executor backend
// for resnet18 serves benign-index requests over a real listener, and
// the reply carries an executor tier.
func TestIntegrationExecutorBackend(t *testing.T) {
	reg := serve.NewRegistry(gpusim.XavierNX(), nil)
	s, err := netserve.New(netserve.Config{
		Registry: reg,
		Models:   []netserve.ModelConfig{{Name: "resnet18"}},
		MaxBatch: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	url := "http://" + addr

	var wg sync.WaitGroup
	results := make([]result, 6)
	for i := 0; i < len(results); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := []byte(fmt.Sprintf(`{"input":%d}`, i))
			req, err := http.NewRequest(http.MethodPost, url+"/v1/models/resnet18/infer", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			req.Header.Set("X-Deadline-Ms", "4000")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			results[i].status = resp.StatusCode
			if err := json.NewDecoder(resp.Body).Decode(&results[i].infer); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	for i, r := range results {
		if r.status != 200 {
			t.Fatalf("req %d: status %d", i, r.status)
		}
		if r.infer.Tier == "" || r.infer.Argmax < 0 {
			t.Fatalf("req %d: reply %+v", i, r.infer)
		}
		if !strings.Contains("tuned low-batch fp32", r.infer.Tier) {
			t.Fatalf("req %d: unexpected tier %q", i, r.infer.Tier)
		}
	}

	resp, err := http.Get(url + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("readyz: %d", resp.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	// The listener is down after drain.
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Fatal("listener still answering after drain")
	}
}

// End to end against a replica fleet: Replicas >= 2 routes through
// serve.Pool, replies carry replica tiers, and readiness reports the
// active count.
func TestIntegrationPoolBackend(t *testing.T) {
	reg := serve.NewRegistry(gpusim.XavierNX(), nil)
	s, err := netserve.New(netserve.Config{
		Registry: reg,
		Models:   []netserve.ModelConfig{{Name: "resnet18", Replicas: 3, Quorum: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
	}()

	for i := 0; i < 4; i++ {
		body := []byte(fmt.Sprintf(`{"input":%d}`, i))
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/models/resnet18/infer", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-Deadline-Ms", "4000")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var rep netserve.InferReply
		if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 || !strings.HasPrefix(rep.Tier, "replica-") {
			t.Fatalf("req %d: %d %+v", i, resp.StatusCode, rep)
		}
	}

	var rep netserve.ReadyReply
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !rep.Ready || !strings.Contains(rep.Models["resnet18"].Detail, "3/3") {
		t.Fatalf("readyz %+v", rep)
	}
}
