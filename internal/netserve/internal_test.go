package netserve

import (
	"net/http/httptest"
	"testing"
	"time"

	"edgeinfer/internal/rtctx"
)

// --- parseDeadline clamping ---

func deadlineServer(def, max time.Duration) *Server {
	cfg := Config{DefaultDeadline: def, MaxDeadline: max}
	return &Server{cfg: cfg.withDefaults()}
}

func TestParseDeadlineDefaultsAndClamp(t *testing.T) {
	s := deadlineServer(100*time.Millisecond, 1*time.Second)

	// No header: the server default applies.
	r := httptest.NewRequest("POST", "/v1/models/m/infer", nil)
	d, err := s.parseDeadline(r)
	if err != nil || d != 100*time.Millisecond {
		t.Fatalf("no header: got %v, %v; want default 100ms", d, err)
	}

	// In-range header parses as-is.
	r.Header.Set("X-Deadline-Ms", "250")
	if d, err = s.parseDeadline(r); err != nil || d != 250*time.Millisecond {
		t.Fatalf("250ms header: got %v, %v", d, err)
	}

	// Over the server bound: clamped, not rejected — a greedy client
	// still gets served, just under the house rules.
	r.Header.Set("X-Deadline-Ms", "60000")
	if d, err = s.parseDeadline(r); err != nil || d != 1*time.Second {
		t.Fatalf("60s header: got %v, %v; want clamp to 1s", d, err)
	}

	// Exactly the bound is not an overrun.
	r.Header.Set("X-Deadline-Ms", "1000")
	if d, err = s.parseDeadline(r); err != nil || d != 1*time.Second {
		t.Fatalf("1000ms header: got %v, %v", d, err)
	}
}

func TestParseDeadlineRejectsGarbage(t *testing.T) {
	s := deadlineServer(0, 0) // defaults: 250ms / 5s
	for _, h := range []string{"0", "-5", "fast", "1.5"} {
		r := httptest.NewRequest("POST", "/v1/models/m/infer", nil)
		r.Header.Set("X-Deadline-Ms", h)
		if _, err := s.parseDeadline(r); err == nil {
			t.Errorf("header %q: want error, got nil", h)
		}
	}
}

// --- EDF queue discipline ---

// edfReq builds an un-admitted request due remSec from now.
func edfReq(remSec float64, band rtctx.Band) *request {
	now := time.Now()
	return &request{
		ctx: &rtctx.Request{
			BudgetSec: remSec,
			Abort:     true,
			Band:      band,
			Arrival:   now,
			Deadline:  now.Add(time.Duration(remSec * float64(time.Second))),
		},
		resp: make(chan response, 1),
	}
}

func edfQueue(depth int, wcetSec float64) *modelQueue {
	return newModelQueue("m", nil, 4, time.Millisecond, depth, true, wcetSec)
}

func TestEDFAdmitOrdersByDeadline(t *testing.T) {
	q := edfQueue(8, 0)
	// Admit out of deadline order; the queue must hold earliest-first.
	rems := []float64{5, 1, 3, 2, 4}
	for _, rem := range rems {
		if resp := q.admit(edfReq(rem, rtctx.BandLow)); resp != nil {
			t.Fatalf("admit(%v) shed: %+v", rem, resp)
		}
	}
	var got []float64
	for {
		r := q.popLive()
		if r == nil {
			break
		}
		got = append(got, r.ctx.BudgetSec)
	}
	want := []float64{1, 2, 3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("popped %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("popped %v, want %v", got, want)
		}
	}
}

func TestEDFDropLateEviction(t *testing.T) {
	q := edfQueue(2, 0)
	late := edfReq(10, rtctx.BandLow)
	if resp := q.admit(edfReq(5, rtctx.BandLow)); resp != nil {
		t.Fatal("first admit shed")
	}
	if resp := q.admit(late); resp != nil {
		t.Fatal("second admit shed")
	}

	// A less urgent newcomer sheds at the door: the queue is full and it
	// would sort last.
	if resp := q.admit(edfReq(20, rtctx.BandLow)); resp == nil {
		t.Fatal("late newcomer was admitted into a full queue")
	} else if er := resp.reply.(ErrReply); er.Reason != "queue-full" {
		t.Fatalf("late newcomer shed reason %q, want queue-full", er.Reason)
	}

	// A more urgent newcomer evicts the latest-deadline member.
	if resp := q.admit(edfReq(1, rtctx.BandLow)); resp != nil {
		t.Fatalf("urgent newcomer shed: %+v", resp)
	}
	select {
	case er := <-late.resp:
		if er.status != 503 || er.reply.(ErrReply).Reason != "evicted" {
			t.Fatalf("victim got %d/%+v, want 503 evicted", er.status, er.reply)
		}
		if !er.retryAfter {
			t.Fatal("eviction shed without Retry-After")
		}
	default:
		t.Fatal("latest-deadline member was not evicted")
	}

	q.mu.Lock()
	evs, edfEvs, shed := q.stats.Evicted, q.stats.EDFEvictions, q.stats.Shed
	q.mu.Unlock()
	if evs != 1 || edfEvs != 1 {
		t.Fatalf("Evicted=%d EDFEvictions=%d, want 1/1", evs, edfEvs)
	}
	if shed != 2 { // the queue-full shed + the eviction
		t.Fatalf("Shed=%d, want 2", shed)
	}

	// Survivors drain earliest-first: 1s then 5s.
	if r := q.popLive(); r == nil || r.ctx.BudgetSec != 1 {
		t.Fatalf("first survivor %+v, want the 1s request", r)
	}
	if r := q.popLive(); r == nil || r.ctx.BudgetSec != 5 {
		t.Fatalf("second survivor %+v, want the 5s request", r)
	}
}

func TestEDFBandBreaksDeadlineTies(t *testing.T) {
	q := edfQueue(8, 0)
	now := time.Now()
	dl := now.Add(time.Second)
	mk := func(band rtctx.Band) *request {
		return &request{
			ctx:  &rtctx.Request{BudgetSec: 1, Abort: true, Band: band, Arrival: now, Deadline: dl},
			resp: make(chan response, 1),
		}
	}
	lo, hi := mk(rtctx.BandLow), mk(rtctx.BandHigh)
	if resp := q.admit(lo); resp != nil {
		t.Fatal("low admit shed")
	}
	if resp := q.admit(hi); resp != nil {
		t.Fatal("high admit shed")
	}
	if r := q.popLive(); r != hi {
		t.Fatal("equal deadlines: high band should pop first")
	}
}

// --- WCET admission ---

func TestWCETAdmissionShedsHopelessBudgets(t *testing.T) {
	q := edfQueue(8, 0.050) // certified bound: 50ms simulated

	hopeless := edfReq(0.020, rtctx.BandHigh) // 20ms budget < 50ms bound
	resp := q.admit(hopeless)
	if resp == nil {
		t.Fatal("hopeless budget was admitted past WCET gate")
	}
	if resp.status != 503 || !resp.retryAfter {
		t.Fatalf("WCET shed was %d retryAfter=%v, want 503 with Retry-After", resp.status, resp.retryAfter)
	}
	if er := resp.reply.(ErrReply); er.Reason != "wcet" {
		t.Fatalf("WCET shed reason %q, want wcet", er.Reason)
	}

	// A meetable budget passes the gate.
	if resp := q.admit(edfReq(0.200, rtctx.BandLow)); resp != nil {
		t.Fatalf("meetable budget shed: %+v", resp)
	}

	q.mu.Lock()
	defer q.mu.Unlock()
	if q.stats.WCETShed != 1 {
		t.Fatalf("WCETShed=%d, want 1", q.stats.WCETShed)
	}
	if q.stats.ShedHigh != 1 {
		t.Fatalf("ShedHigh=%d, want 1 (the hopeless request was high band)", q.stats.ShedHigh)
	}
	if q.stats.Accepted != 1 {
		t.Fatalf("Accepted=%d, want 1", q.stats.Accepted)
	}
}

func TestWCETGateAppliesToFIFOToo(t *testing.T) {
	q := newModelQueue("m", nil, 4, time.Millisecond, 8, false, 0.050)
	if resp := q.admit(edfReq(0.010, rtctx.BandLow)); resp == nil {
		t.Fatal("FIFO mode: hopeless budget admitted past WCET gate")
	} else if er := resp.reply.(ErrReply); er.Reason != "wcet" {
		t.Fatalf("FIFO WCET shed reason %q, want wcet", er.Reason)
	}
}

// --- batchCtx derivation ---

func TestBatchCtxTightestDeadlineWins(t *testing.T) {
	start := time.Now()
	mk := func(remSec float64, band rtctx.Band, tenant string) *request {
		return &request{ctx: &rtctx.Request{
			BudgetSec: remSec, Abort: true, Band: band, Tenant: tenant,
			Arrival: start, Deadline: start.Add(time.Duration(remSec * float64(time.Second))),
		}}
	}
	batch := []*request{
		mk(0.500, rtctx.BandLow, "a"),
		mk(0.050, rtctx.BandHigh, "a"),
		mk(0.200, rtctx.BandLow, "a"),
	}
	b := batchCtx(batch, start)
	if !b.Aborts() {
		t.Fatal("batch context must abort")
	}
	if b.BudgetSec < 0.049 || b.BudgetSec > 0.051 {
		t.Fatalf("budget %v, want ~0.050 (tightest member)", b.BudgetSec)
	}
	if !b.Deadline.Equal(batch[1].ctx.Deadline) {
		t.Fatal("deadline should be the tightest member's")
	}
	if b.Band != rtctx.BandHigh {
		t.Fatal("one high member makes the batch high")
	}
	if b.Tenant != "a" {
		t.Fatalf("uniform tenant lost: %q", b.Tenant)
	}
}

func TestBatchCtxMixedTenantAndExpiredFloor(t *testing.T) {
	start := time.Now()
	past := start.Add(-time.Second)
	batch := []*request{
		{ctx: &rtctx.Request{BudgetSec: 1, Abort: true, Tenant: "a", Arrival: past, Deadline: start.Add(-time.Millisecond)}},
		{ctx: &rtctx.Request{BudgetSec: 1, Abort: true, Tenant: "b", Arrival: past, Deadline: start.Add(time.Second)}},
	}
	b := batchCtx(batch, start)
	if b.Tenant != "" {
		t.Fatalf("mixed tenants must clear the batch tenant, got %q", b.Tenant)
	}
	// One member's deadline slipped past between pop and serve: the batch
	// still gets a positive hair of budget, not a guaranteed abort.
	if b.BudgetSec <= 0 {
		t.Fatalf("budget %v, want the positive floor", b.BudgetSec)
	}
	if b.BudgetSec > 1e-5 {
		t.Fatalf("budget %v, want the tiny floor, not a real budget", b.BudgetSec)
	}
}

// tiedReq builds requests sharing one exact (deadline, band, arrival)
// triple, so rtctx.EarlierThan cannot order them and only the admission
// sequence can.
func tiedReq(now time.Time, remSec float64) *request {
	return &request{
		ctx: &rtctx.Request{
			BudgetSec: remSec,
			Abort:     true,
			Band:      rtctx.BandLow,
			Arrival:   now,
			Deadline:  now.Add(time.Duration(remSec * float64(time.Second))),
		},
		resp: make(chan response, 1),
	}
}

func TestEDFTiesServeInAdmissionOrder(t *testing.T) {
	q := edfQueue(8, 0)
	now := time.Now()
	var admitted []*request
	for i := 0; i < 5; i++ {
		r := tiedReq(now, 1)
		if resp := q.admit(r); resp != nil {
			t.Fatalf("admit %d shed: %+v", i, resp)
		}
		admitted = append(admitted, r)
	}
	for i, want := range admitted {
		got := q.popLive()
		if got != want {
			t.Fatalf("tied requests served out of admission order at %d", i)
		}
	}
}

func TestEDFEvictionTieBreakIsDeterministic(t *testing.T) {
	q := edfQueue(3, 0)
	now := time.Now()
	// Three requests with byte-identical deadline keys fill the queue.
	tied := make([]*request, 3)
	for i := range tied {
		tied[i] = tiedReq(now, 1)
		if resp := q.admit(tied[i]); resp != nil {
			t.Fatalf("admit %d shed: %+v", i, resp)
		}
	}
	// A strictly more urgent newcomer must evict exactly the LAST-
	// ADMITTED member of the tie — the unique edfBefore maximum — not
	// whichever equal element a sort happened to leave at the tail.
	urgent := tiedReq(now, 0.001)
	if resp := q.admit(urgent); resp != nil {
		t.Fatalf("urgent newcomer shed: %+v", resp)
	}
	select {
	case er := <-tied[2].resp:
		if er.status != 503 || er.reply.(ErrReply).Reason != "evicted" {
			t.Fatalf("victim got %+v, want 503 evicted", er)
		}
	default:
		t.Fatal("last-admitted tied request was not the eviction victim")
	}
	for i, want := range []*request{urgent, tied[0], tied[1]} {
		if got := q.popLive(); got != want {
			t.Fatalf("post-eviction order wrong at %d", i)
		}
	}
	// A newcomer that only TIES the tail is shed, never swapped in:
	// its admission sequence makes it the latest of the equals.
	q2 := edfQueue(1, 0)
	first := tiedReq(now, 1)
	if resp := q2.admit(first); resp != nil {
		t.Fatalf("first shed: %+v", resp)
	}
	if resp := q2.admit(tiedReq(now, 1)); resp == nil {
		t.Fatal("tying newcomer admitted into a full queue")
	} else if er := resp.reply.(ErrReply); er.Reason != "queue-full" {
		t.Fatalf("tying newcomer shed reason %q, want queue-full", er.Reason)
	}
	if got := q2.popLive(); got != first {
		t.Fatal("queued request displaced by a tying newcomer")
	}
}

// TestAdmitGateOrderInvariant pins the documented admission gate order:
// draining, then WCET, then full-queue.
func TestAdmitGateOrderInvariant(t *testing.T) {
	// Draining beats WCET: a hopeless budget on a draining queue sheds
	// as "draining", not "wcet".
	q := edfQueue(4, 0.5)
	q.beginDrain()
	resp := q.admit(edfReq(0.001, rtctx.BandHigh))
	if resp == nil {
		t.Fatal("draining queue admitted a request")
	}
	if er := resp.reply.(ErrReply); er.Reason != "draining" {
		t.Fatalf("draining+hopeless shed reason %q, want draining", er.Reason)
	}
	if q.stats.WCETShed != 0 {
		t.Fatalf("draining shed counted as WCET: %d", q.stats.WCETShed)
	}

	// WCET beats full-queue: a hopeless budget against a full queue
	// sheds as "wcet" without evicting the feasible occupant, even
	// though its deadline is more urgent.
	q2 := edfQueue(1, 0.5)
	occupant := edfReq(2.0, rtctx.BandLow)
	if r := q2.admit(occupant); r != nil {
		t.Fatalf("feasible occupant shed: %+v", r)
	}
	resp = q2.admit(edfReq(0.1, rtctx.BandHigh))
	if resp == nil {
		t.Fatal("hopeless newcomer admitted")
	}
	if er := resp.reply.(ErrReply); er.Reason != "wcet" {
		t.Fatalf("hopeless-vs-full shed reason %q, want wcet", er.Reason)
	}
	if q2.stats.EDFEvictions != 0 {
		t.Fatalf("hopeless request evicted a feasible one: %d evictions", q2.stats.EDFEvictions)
	}
	if got := q2.popLive(); got != occupant {
		t.Fatal("feasible occupant missing after hopeless admit attempt")
	}
}
