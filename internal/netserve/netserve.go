// Package netserve is the network serving front-end: a stdlib net/http
// inference server in front of serve.Registry / serve.Pool whose
// headline property is staying correct and bounded under hostile load.
//
// Per model it runs one bounded coalescing queue: concurrent requests
// pack into Engine.InferBatch windows triggered by batch size or a
// deadline window, and a single batcher goroutine serves each window
// through a Backend (a self-healing replica fleet or a resilient
// executor). Admission control is explicit — a full queue sheds with
// 503 + Retry-After (low priority first: a high-priority arrival evicts
// the youngest queued low-priority request), a draining server sheds
// everything, and a request whose client deadline expires in the queue
// is answered 504 on the spot. Client deadlines arrive in an
// X-Deadline-Ms header, are clamped to the server's bounds, and are
// stamped — with the X-Priority band and X-Tenant id — into one
// rtctx.Request per arrival that every layer below reads: the batch's
// serving budget flows through the executor's deadline machinery down
// to core's layer-boundary guard, so a hopeless batch is abandoned with
// serve.ErrDeadlineExceeded mid-graph instead of burning fallback
// latency. Config.EDF swaps the two-band FIFO for an
// earliest-deadline-first queue with drop-late eviction, and
// Config.WCETAdmission sheds any request whose budget a certified
// worst-case bound proves unmeetable. Liveness (/healthz), readiness
// (/readyz, wired to Pool.Health / Executor.Health) and a stats
// endpoint (/statsz) make the server probeable, and Drain performs the
// graceful exit: stop admitting, flush every in-flight batch, then
// shut the listener down. Every admitted request is answered exactly
// once — a result, a 503, or a 504 — never a hang.
package netserve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"edgeinfer/internal/dataset"
	"edgeinfer/internal/rtctx"
	"edgeinfer/internal/serve"
	"edgeinfer/internal/tensor"
)

// Config parameterizes a Server. Models is required; a nil Backend in a
// ModelConfig needs Registry to build one. Everything else has working
// defaults.
type Config struct {
	// Registry builds default backends for models that do not bring
	// their own.
	Registry *serve.Registry
	// Models are the served models.
	Models []ModelConfig
	// MaxBatch is the coalescing window's size trigger (default 8).
	MaxBatch int
	// BatchWindow is the coalescing window's deadline trigger: how long
	// a non-full batch waits for company (default 2ms).
	BatchWindow time.Duration
	// QueueDepth bounds each model's queue; arrivals beyond it shed
	// (default 64).
	QueueDepth int
	// DefaultDeadline applies to requests without an X-Deadline-Ms
	// header (default 250ms); MaxDeadline clamps client-supplied
	// deadlines (default 5s).
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// MaxBodyBytes bounds a request body (default 1MiB).
	MaxBodyBytes int64
	// EDF selects the earliest-deadline-first queue discipline: one
	// deadline-ordered queue per model with drop-late eviction (a full
	// queue evicts its latest-deadline member for a more urgent
	// arrival), instead of the default two-band FIFO.
	EDF bool
	// WCETAdmission gates admission on each model's certified
	// worst-case-execution-time bound: a request whose whole budget is
	// below the bound is shed 503 immediately — queueing it could only
	// produce a 504. The bound is ModelConfig.WCETSec when set,
	// otherwise certified through the registry (wcet.Measure over
	// WCETRuns runs, inflated by WCETMargin).
	WCETAdmission bool
	// WCETRuns is the certification sample count (default 12).
	WCETRuns int
	// WCETMargin is the safety margin over the empirical maximum
	// (default 0.2).
	WCETMargin float64
}

// ModelConfig is one served model. With a nil Backend, Replicas >= 2
// builds a serve.Pool fleet (quorum-votable, self-healing) and Replicas
// <= 1 builds a single resilient serve.Executor from the registry.
type ModelConfig struct {
	Name     string
	Replicas int
	Quorum   bool
	Backend  Backend
	// WCETSec is an explicit worst-case service bound in simulated
	// seconds for WCET admission (required for custom backends when
	// Config.WCETAdmission is set; overrides registry certification).
	WCETSec float64
}

func (c *Config) withDefaults() Config {
	d := *c
	if d.MaxBatch <= 0 {
		d.MaxBatch = 8
	}
	if d.BatchWindow <= 0 {
		d.BatchWindow = 2 * time.Millisecond
	}
	if d.QueueDepth <= 0 {
		d.QueueDepth = 64
	}
	if d.DefaultDeadline <= 0 {
		d.DefaultDeadline = 250 * time.Millisecond
	}
	if d.MaxDeadline <= 0 {
		d.MaxDeadline = 5 * time.Second
	}
	if d.MaxBodyBytes <= 0 {
		d.MaxBodyBytes = 1 << 20
	}
	if d.WCETRuns <= 0 {
		d.WCETRuns = 12
	}
	if d.WCETMargin <= 0 {
		d.WCETMargin = 0.2
	}
	return d
}

// InferReply is the success body of POST /v1/models/{model}/infer.
type InferReply struct {
	Model string `json:"model"`
	// Argmax is the predicted class (argmax of the first output).
	Argmax int `json:"argmax"`
	// LatencySec is the batch's simulated service latency.
	LatencySec float64 `json:"latency_sec"`
	// QueueMS is this request's wall-clock queueing delay.
	QueueMS float64 `json:"queue_ms"`
	// BatchSize is how many requests shared the launch window.
	BatchSize int `json:"batch_size"`
	// Tier names the serving path (executor tier or fleet slot).
	Tier string `json:"tier"`
	// Tenant echoes the X-Tenant header the request carried.
	Tenant string `json:"tenant,omitempty"`
	// Degraded and DeadlineMiss mirror the executor/fleet verdicts.
	Degraded     bool `json:"degraded,omitempty"`
	DeadlineMiss bool `json:"deadline_miss,omitempty"`
}

// ErrReply is the error body of every non-200 response.
type ErrReply struct {
	Error string `json:"error"`
	// Reason is machine-readable: "queue-full", "evicted", "draining",
	// "wcet", "deadline", "backend", "bad-request", "unknown-model".
	Reason string `json:"reason"`
}

// ModelStats are one model queue's cumulative counters (gauges
// QueueDepth and MaxQueueDepth aside).
type ModelStats struct {
	Accepted       uint64 `json:"accepted"`
	Served         uint64 `json:"served"`
	Shed           uint64 `json:"shed"`
	ShedLow        uint64 `json:"shed_low"`
	ShedHigh       uint64 `json:"shed_high"`
	Evicted        uint64 `json:"evicted"`
	EDFEvictions   uint64 `json:"edf_evictions"`
	WCETShed       uint64 `json:"wcet_shed"`
	Expired        uint64 `json:"expired"`
	Aborted        uint64 `json:"aborted"`
	DeadlineMisses uint64 `json:"deadline_misses"`
	ClientGone     uint64 `json:"client_gone"`
	Errors         uint64 `json:"errors"`
	Batches        uint64 `json:"batches"`
	BatchedInputs  uint64 `json:"batched_inputs"`
	QueueDepth     int    `json:"queue_depth"`
	MaxQueueDepth  int    `json:"max_queue_depth"`
}

// ServerStats is the /statsz body.
type ServerStats struct {
	Draining bool                  `json:"draining"`
	InFlight int64                 `json:"in_flight"`
	Models   map[string]ModelStats `json:"models"`
}

// ReadyReply is the /readyz body.
type ReadyReply struct {
	Ready  bool                  `json:"ready"`
	Models map[string]ModelReady `json:"models"`
}

// ModelReady is one model's readiness verdict.
type ModelReady struct {
	Ready  bool   `json:"ready"`
	Detail string `json:"detail"`
}

// Server is the inference front-end. Build with New, expose with
// Handler (tests) or Start (a real listener), stop with Drain.
type Server struct {
	cfg    Config
	mux    *http.ServeMux
	queues map[string]*modelQueue
	inputs []*tensor.Tensor // deterministic benign inputs for index requests

	wg       sync.WaitGroup // batcher goroutines
	inFlight atomic.Int64

	mu       sync.Mutex
	draining bool
	httpSrv  *http.Server
}

// New validates the config, builds one backend + coalescing queue per
// model, and starts the batcher goroutines (idle until requests
// arrive). The server is not listening yet: pass Handler to a test
// server or call Start.
func New(cfg Config) (*Server, error) {
	if len(cfg.Models) == 0 {
		return nil, fmt.Errorf("netserve: config needs at least one model")
	}
	c := cfg.withDefaults()
	s := &Server{cfg: c, queues: map[string]*modelQueue{}}
	for _, mc := range c.Models {
		if mc.Name == "" {
			return nil, fmt.Errorf("netserve: model config needs a name")
		}
		if _, dup := s.queues[mc.Name]; dup {
			return nil, fmt.Errorf("netserve: model %q configured twice", mc.Name)
		}
		be := mc.Backend
		if be == nil {
			var err error
			be, err = buildBackend(c.Registry, mc)
			if err != nil {
				return nil, err
			}
		}
		var wcetSec float64
		if c.WCETAdmission {
			wcetSec = mc.WCETSec
			if wcetSec <= 0 {
				if c.Registry == nil {
					return nil, fmt.Errorf("netserve: model %q has WCET admission enabled but no WCETSec bound and no registry to certify one", mc.Name)
				}
				var err error
				wcetSec, err = c.Registry.WCETBound(mc.Name, c.WCETRuns, c.WCETMargin)
				if err != nil {
					return nil, fmt.Errorf("netserve: WCET certification of %q: %w", mc.Name, err)
				}
			}
		}
		s.queues[mc.Name] = newModelQueue(mc.Name, be, c.MaxBatch, c.BatchWindow, c.QueueDepth, c.EDF, wcetSec)
	}
	// Deterministic benign inputs for {"input": N} requests: one per
	// class, same synthesis the experiments use.
	for _, sm := range dataset.Benign(dataset.DefaultBenign(1)) {
		s.inputs = append(s.inputs, sm.Image)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/models/{model}/infer", s.handleInfer)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /statsz", s.handleStatsz)
	for _, q := range s.queues {
		s.wg.Add(1)
		go q.run(&s.wg)
	}
	return s, nil
}

func buildBackend(reg *serve.Registry, mc ModelConfig) (Backend, error) {
	if reg == nil {
		return nil, fmt.Errorf("netserve: model %q has no backend and no registry to build one", mc.Name)
	}
	if mc.Replicas >= 2 {
		pool, err := serve.NewPool(reg, serve.PoolConfig{
			Model:    mc.Name,
			Replicas: mc.Replicas,
			Quorum:   mc.Quorum,
		})
		if err != nil {
			return nil, err
		}
		return NewPoolBackend(pool), nil
	}
	ex, err := reg.Executor(mc.Name, serve.Config{Seed: "netserve/" + mc.Name})
	if err != nil {
		return nil, err
	}
	eng, err := reg.ProxyEngine(mc.Name)
	if err != nil {
		return nil, err
	}
	return NewExecutorBackend(ex, eng.Graph.InputShape), nil
}

// Handler returns the server's routing handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on addr (use "127.0.0.1:0" for an ephemeral port) and
// serves in a background goroutine. It returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("netserve: listen: %w", err)
	}
	s.mu.Lock()
	s.httpSrv = &http.Server{Handler: s.mux, ReadHeaderTimeout: 10 * time.Second}
	srv := s.httpSrv
	s.mu.Unlock()
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Draining reports whether Drain has started.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain is the graceful exit: stop admitting (every new request sheds
// 503, readiness flips to 503), flush every queued request and
// in-flight batch, wait for the batchers to exit, then shut down the
// listener if Start opened one. Every request admitted before the drain
// gets its real answer. Idempotent; the context bounds the wait.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	srv := s.httpSrv
	s.mu.Unlock()
	for _, q := range s.queues {
		q.beginDrain()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return fmt.Errorf("netserve: drain interrupted with batches in flight: %w", ctx.Err())
	}
	if srv != nil {
		if err := srv.Shutdown(ctx); err != nil {
			return fmt.Errorf("netserve: listener shutdown: %w", err)
		}
	}
	return nil
}

// Stats snapshots every queue's counters.
func (s *Server) Stats() ServerStats {
	st := ServerStats{
		Draining: s.Draining(),
		InFlight: s.inFlight.Load(),
		Models:   map[string]ModelStats{},
	}
	for name, q := range s.queues {
		st.Models[name] = q.snapshot()
	}
	return st
}

// inferRequest is the POST body: either a deterministic benign-input
// index or a raw NCHW payload.
type inferRequest struct {
	Input *int      `json:"input"`
	Data  []float32 `json:"data"`
	Shape [4]int    `json:"shape"`
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	data, err := json.Marshal(body)
	if err != nil {
		return
	}
	data = append(data, '\n')
	_, _ = w.Write(data)
}

func writeErr(w http.ResponseWriter, status int, reason, msg string) {
	writeJSON(w, status, ErrReply{Error: msg, Reason: reason})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "alive"})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	rep := ReadyReply{Ready: !s.Draining(), Models: map[string]ModelReady{}}
	for name, q := range s.queues {
		ok, detail := q.be.Ready()
		rep.Models[name] = ModelReady{Ready: ok, Detail: detail}
		if !ok {
			rep.Ready = false
		}
	}
	status := http.StatusOK
	if !rep.Ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, rep)
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// parseDeadline reads X-Deadline-Ms, applying the default and the
// server-side clamp.
func (s *Server) parseDeadline(r *http.Request) (time.Duration, error) {
	h := r.Header.Get("X-Deadline-Ms")
	if h == "" {
		return s.cfg.DefaultDeadline, nil
	}
	ms, err := strconv.Atoi(h)
	if err != nil || ms <= 0 {
		return 0, fmt.Errorf("X-Deadline-Ms %q is not a positive integer", h)
	}
	d := time.Duration(ms) * time.Millisecond
	if d > s.cfg.MaxDeadline {
		d = s.cfg.MaxDeadline
	}
	return d, nil
}

// parsePriority reads X-Priority ("high", "low" or absent).
func parsePriority(r *http.Request) (band rtctx.Band, err error) {
	switch h := r.Header.Get("X-Priority"); h {
	case "", "low":
		return rtctx.BandLow, nil
	case "high":
		return rtctx.BandHigh, nil
	default:
		return rtctx.BandLow, fmt.Errorf("X-Priority %q is not \"high\" or \"low\"", h)
	}
}

// maxTenantLen bounds the X-Tenant header: the tenant id is echoed into
// responses and stats, so an unbounded header is an amplification
// vector.
const maxTenantLen = 128

// parseTenant reads X-Tenant (an opaque tenant id, optional).
func parseTenant(r *http.Request) (string, error) {
	t := r.Header.Get("X-Tenant")
	if len(t) > maxTenantLen {
		return "", fmt.Errorf("X-Tenant exceeds %d bytes", maxTenantLen)
	}
	return t, nil
}

// decodeInput turns the request body into a model-shaped tensor. Raw
// payloads must match the backend's input shape exactly — a mismatched
// tensor cannot share a coalesced batch.
func (s *Server) decodeInput(req *inferRequest, shape [4]int) (*tensor.Tensor, string) {
	switch {
	case req.Input != nil && req.Data != nil:
		return nil, "request has both input index and raw data"
	case req.Input != nil:
		if len(s.inputs) == 0 {
			return nil, "server has no benign inputs"
		}
		idx := *req.Input
		if idx < 0 {
			return nil, "input index is negative"
		}
		return s.inputs[idx%len(s.inputs)], ""
	case req.Data != nil:
		if req.Shape != shape {
			return nil, fmt.Sprintf("shape %v does not match model input %v", req.Shape, shape)
		}
		want := shape[0] * shape[1] * shape[2] * shape[3]
		if len(req.Data) != want {
			return nil, fmt.Sprintf("data length %d does not match shape %v (%d elements)", len(req.Data), shape, want)
		}
		return &tensor.Tensor{N: shape[0], C: shape[1], H: shape[2], W: shape[3], Data: req.Data}, ""
	default:
		return nil, "request needs an input index or raw data"
	}
}

func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)

	q, ok := s.queues[r.PathValue("model")]
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown-model", fmt.Sprintf("model %q is not served", r.PathValue("model")))
		return
	}
	band, err := parsePriority(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad-request", err.Error())
		return
	}
	budget, err := s.parseDeadline(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad-request", err.Error())
		return
	}
	tenant, err := parseTenant(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad-request", err.Error())
		return
	}

	var body inferRequest
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeErr(w, http.StatusRequestEntityTooLarge, "bad-request",
				fmt.Sprintf("body exceeds %d bytes", s.cfg.MaxBodyBytes))
			return
		}
		writeErr(w, http.StatusBadRequest, "bad-request", "malformed JSON body: "+err.Error())
		return
	}
	x, reason := s.decodeInput(&body, q.be.InputShape())
	if reason != "" {
		writeErr(w, http.StatusBadRequest, "bad-request", reason)
		return
	}

	// One first-class request context per arrival: every layer below —
	// queue ordering, WCET admission, the batch budget, the executor's
	// deadline machinery, the layer-boundary guard — reads this value.
	now := time.Now()
	req := &request{
		x: x,
		ctx: &rtctx.Request{
			BudgetSec: budget.Seconds(),
			Abort:     true,
			Band:      band,
			Tenant:    tenant,
			Arrival:   now,
			Deadline:  now.Add(budget),
		},
		resp: make(chan response, 1),
	}
	if shed := q.admit(req); shed != nil {
		s.writeResponse(w, *shed)
		return
	}
	select {
	case resp := <-req.resp:
		s.writeResponse(w, resp)
	case <-r.Context().Done():
		// Client gone mid-request: mark it so the batcher skips the
		// corpse instead of wasting a batch slot, and count it once.
		req.canceled.Store(true)
		q.noteClientGone()
	}
}

func (s *Server) writeResponse(w http.ResponseWriter, resp response) {
	if resp.retryAfter {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, resp.status, resp.reply)
}
