package netserve

import (
	"fmt"

	"edgeinfer/internal/rtctx"
	"edgeinfer/internal/serve"
	"edgeinfer/internal/tensor"
)

// Answer is one request's share of a served batch.
type Answer struct {
	// Outputs are the numeric outputs for this input.
	Outputs []*tensor.Tensor
	// Tier names what served it: an executor tier ("tuned", "low-batch",
	// "fp32") or a fleet slot ("replica-2", "fp32").
	Tier string
	// Degraded reports the primary serving path did not answer.
	Degraded bool
}

// BatchAnswer is a backend's answer to one coalesced batch.
type BatchAnswer struct {
	// Results[i] answers input i, in input order.
	Results []Answer
	// LatencySec is the batch's simulated service latency (shared by
	// every member — the batch rides one launch sequence).
	LatencySec float64
	// DeadlineMiss reports the simulated service latency overran the
	// batch's budget — the serving layer's own verdict, identical for
	// executor- and pool-backed models.
	DeadlineMiss bool
}

// Backend serves coalesced batches for one model. The batch's request
// context carries its budget (the tightest member deadline), band and
// tenant; ServeBatch must thread it through a budget-carrying serving
// path (the deadlineflow analyzer enforces that) and return an error
// wrapping serve.ErrDeadlineExceeded when the budget expired — or a
// layer-boundary check proved it unmeetable — before any tier
// answered, a nil error with len(Results) == len(xs) otherwise; it is
// called from a single batcher goroutine per model. Ready feeds the
// readiness probe.
type Backend interface {
	ServeBatch(ctx *rtctx.Request, xs []*tensor.Tensor, runIndex int) (*BatchAnswer, error)
	Ready() (ok bool, detail string)
	InputShape() [4]int
}

// executorBackend serves through a resilient serve.Executor: the batch
// context clamps through the executor's deadline machinery (retry
// backoff clamped to the remaining budget, layer-boundary abort inside
// the batched inference, typed ErrDeadlineExceeded on expiry).
type executorBackend struct {
	ex    *serve.Executor
	shape [4]int
}

// NewExecutorBackend wraps an executor whose engine consumes inputs of
// the given shape.
func NewExecutorBackend(ex *serve.Executor, shape [4]int) Backend {
	return &executorBackend{ex: ex, shape: shape}
}

func (b *executorBackend) InputShape() [4]int { return b.shape }

func (b *executorBackend) ServeBatch(ctx *rtctx.Request, xs []*tensor.Tensor, runIndex int) (*BatchAnswer, error) {
	br, err := b.ex.DoBatchCtx(ctx, xs, runIndex)
	if err != nil {
		return nil, err
	}
	ba := &BatchAnswer{LatencySec: br.LatencySec, DeadlineMiss: br.DeadlineMiss}
	ba.Results = make([]Answer, len(xs))
	for i := range xs {
		ba.Results[i] = Answer{Outputs: br.Outputs[i], Tier: br.Tier.String(), Degraded: br.Degraded}
	}
	return ba, nil
}

func (b *executorBackend) Ready() (bool, string) {
	h := b.ex.Health()
	if h.State == "open" {
		return false, "circuit breaker open"
	}
	return true, h.State
}

// poolBackend serves through a self-healing serve.Pool. The batch
// context flows into the fleet dispatch (DoBatchCtx arms the
// layer-boundary guard and aborts a batch whose burned latency exceeds
// the budget) and the miss verdict is the fleet's own
// (PoolBatchResult.DeadlineMiss), so executor- and pool-backed models
// report misses identically; readiness follows the supervisor's active
// replica count.
type poolBackend struct {
	pool  *serve.Pool
	shape [4]int
}

// NewPoolBackend wraps a replica fleet.
func NewPoolBackend(pool *serve.Pool) Backend {
	var shape [4]int
	if engines := pool.Engines(); len(engines) > 0 && engines[0].Graph != nil {
		shape = engines[0].Graph.InputShape
	}
	return &poolBackend{pool: pool, shape: shape}
}

func (b *poolBackend) InputShape() [4]int { return b.shape }

func (b *poolBackend) ServeBatch(ctx *rtctx.Request, xs []*tensor.Tensor, runIndex int) (*BatchAnswer, error) {
	br, err := b.pool.DoBatchCtx(ctx, xs, runIndex)
	if err != nil {
		return nil, err
	}
	if len(br.Results) != len(xs) {
		return nil, fmt.Errorf("netserve: pool answered %d of %d inputs", len(br.Results), len(xs))
	}
	ba := &BatchAnswer{
		LatencySec:   br.LatencySec,
		DeadlineMiss: br.DeadlineMiss,
	}
	ba.Results = make([]Answer, len(xs))
	for i, pr := range br.Results {
		tier := fmt.Sprintf("replica-%d", pr.Replica)
		if pr.Fallback {
			tier = "fp32"
		}
		ba.Results[i] = Answer{Outputs: pr.Outputs, Tier: tier, Degraded: pr.Fallback}
	}
	return ba, nil
}

func (b *poolBackend) Ready() (bool, string) {
	h := b.pool.Health()
	if h.Active == 0 {
		return false, "no active replicas"
	}
	return true, fmt.Sprintf("%d/%d replicas active", h.Active, len(h.Replicas))
}
