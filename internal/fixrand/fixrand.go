// Package fixrand provides deterministic pseudo-random number generation
// for the whole simulator. Every stochastic element of edgeinfer (synthetic
// weights, dataset images, tuner measurement noise) draws from a fixrand
// source seeded by a string key, so that experiments are exactly
// reproducible while still exhibiting build-to-build variability: the key
// encodes (model, platform, build-id, purpose).
package fixrand

import "math"

// Source is a SplitMix64 pseudo-random generator. The zero value is a
// valid source seeded with 0; use New or NewKeyed for derived streams.
type Source struct {
	state uint64
}

// New returns a source seeded with the given value.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// NewKeyed returns a source seeded by hashing a string key. Distinct keys
// give statistically independent streams.
func NewKeyed(key string) *Source {
	return New(HashString(key))
}

// HashString hashes a string to a 64-bit seed (FNV-1a followed by a
// SplitMix64 finalizer to spread low-entropy inputs).
func HashString(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return mix(h)
}

func mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 pseudo-random bits.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("fixrand: Intn with non-positive n") //rtlint:allow panicpath -- caller-contract bug as in math/rand; fault injectors only pass len(t.Data) > 0 (tensors reject empty shapes)
	}
	return int(s.Uint64() % uint64(n))
}

// NormFloat64 returns a standard normal variate (Box–Muller; one value per
// call, the spare is discarded for simplicity and determinism).
func (s *Source) NormFloat64() float64 {
	// Guard against log(0).
	u1 := s.Float64()
	for u1 == 0 {
		u1 = s.Float64()
	}
	u2 := s.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Perm returns a pseudo-random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly reorders n elements using the provided swap
// function, in the manner of math/rand.Shuffle.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Fork derives an independent child stream labelled by key. The child is a
// pure function of the parent's seed state at the time of the call and the
// key, so forking does not disturb the parent sequence.
func (s *Source) Fork(key string) *Source {
	return New(mix(s.state ^ HashString(key)))
}
