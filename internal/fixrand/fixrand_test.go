package fixrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := NewKeyed("model=alexnet/build=1")
	b := NewKeyed("model=alexnet/build=1")
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at %d: %d != %d", i, av, bv)
		}
	}
}

func TestDistinctKeysDiverge(t *testing.T) {
	a := NewKeyed("model=alexnet/build=1")
	b := NewKeyed("model=alexnet/build=2")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("distinct keys produced %d/100 identical values", same)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(42)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(7)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %v too far from 0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(11)
	var sum, sumsq float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestIntnRange(t *testing.T) {
	s := New(3)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := s.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) only produced %d distinct values", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := NewKeyed("p")
	c1 := parent.Fork("child-a")
	c2 := parent.Fork("child-b")
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("forked children with distinct keys produced identical first value")
	}
	// Forking must not disturb the parent stream.
	p1 := NewKeyed("p")
	_ = p1.Fork("x")
	p2 := NewKeyed("p")
	if p1.Uint64() != p2.Uint64() {
		t.Fatal("fork perturbed the parent stream")
	}
}

func TestHashStringSpreads(t *testing.T) {
	h1 := HashString("a")
	h2 := HashString("b")
	h3 := HashString("")
	if h1 == h2 || h1 == h3 || h2 == h3 {
		t.Fatal("hash collisions on trivial inputs")
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	s := New(99)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, v := range xs {
		sum += v
	}
	if sum != 36 {
		t.Fatalf("shuffle lost elements, sum=%d", sum)
	}
}
