package detect

import (
	"testing"

	"edgeinfer/internal/core"
	"edgeinfer/internal/dataset"
	"edgeinfer/internal/gpusim"
	"edgeinfer/internal/metrics"
	"edgeinfer/internal/models"
	"edgeinfer/internal/tensor"
)

func TestDecodeCoverageThreshold(t *testing.T) {
	cov := tensor.New(1, 1, 4, 4)
	cov.Set(0, 0, 1, 2, 0.9)
	cov.Set(0, 0, 3, 3, 0.4)
	dets := DecodeCoverage(cov, 8, 10, 10, 0.5)
	if len(dets) != 1 {
		t.Fatalf("%d detections, want 1", len(dets))
	}
	if dets[0].Rect.X != 2*8-5 || dets[0].Rect.Y != 1*8-5 {
		t.Fatalf("box position %+v", dets[0].Rect)
	}
}

func TestDecodeRegionsMergesComponents(t *testing.T) {
	cov := tensor.New(1, 1, 8, 8)
	// one 2x3 blob and one isolated cell
	for y := 1; y <= 2; y++ {
		for x := 2; x <= 4; x++ {
			cov.Set(0, 0, y, x, 0.95)
		}
	}
	cov.Set(0, 0, 6, 6, 0.8)
	dets := DecodeRegions(cov, 2, 0.5)
	if len(dets) != 2 {
		t.Fatalf("%d regions, want 2", len(dets))
	}
	var blob Detection
	for _, d := range dets {
		if d.Rect.W > 2 {
			blob = d
		}
	}
	if blob.Rect.X != 4 || blob.Rect.Y != 2 || blob.Rect.W != 6 || blob.Rect.H != 4 {
		t.Fatalf("blob rect %+v", blob.Rect)
	}
	if blob.Confidence < 0.9 {
		t.Fatalf("blob confidence %v", blob.Confidence)
	}
}

func TestNMSSuppressesOverlaps(t *testing.T) {
	dets := []Detection{
		{Rect: metrics.Rect{X: 0, Y: 0, W: 10, H: 10}, Confidence: 0.9},
		{Rect: metrics.Rect{X: 1, Y: 1, W: 10, H: 10}, Confidence: 0.8}, // overlaps first
		{Rect: metrics.Rect{X: 50, Y: 50, W: 10, H: 10}, Confidence: 0.7},
	}
	kept := NMS(dets, 0.5)
	if len(kept) != 2 {
		t.Fatalf("%d kept, want 2", len(kept))
	}
	if kept[0].Confidence != 0.9 {
		t.Fatal("NMS must keep the highest-confidence box")
	}
}

func TestNMSKeepsAllDisjoint(t *testing.T) {
	var dets []Detection
	for i := 0; i < 5; i++ {
		dets = append(dets, Detection{Rect: metrics.Rect{X: i * 20, Y: 0, W: 10, H: 10}, Confidence: float64(i)})
	}
	if kept := NMS(dets, 0.5); len(kept) != 5 {
		t.Fatalf("%d kept, want 5", len(kept))
	}
}

func TestMatchCounts(t *testing.T) {
	truth := []metrics.Rect{{X: 0, Y: 0, W: 10, H: 10}, {X: 50, Y: 50, W: 10, H: 10}}
	dets := []Detection{
		{Rect: metrics.Rect{X: 0, Y: 0, W: 10, H: 10}, Confidence: 1},
		{Rect: metrics.Rect{X: 100, Y: 100, W: 10, H: 10}, Confidence: 1},
	}
	tp, fp, fn := Match(dets, truth, 0.5)
	if tp != 1 || fp != 1 || fn != 1 {
		t.Fatalf("tp/fp/fn = %d/%d/%d", tp, fp, fn)
	}
	p, r := PrecisionRecall(tp, fp, fn)
	if p != 50 || r != 50 {
		t.Fatalf("p/r = %v/%v", p, r)
	}
}

func TestSameDetections(t *testing.T) {
	a := []Detection{{Rect: metrics.Rect{X: 0, Y: 0, W: 10, H: 10}}}
	b := []Detection{{Rect: metrics.Rect{X: 0, Y: 0, W: 10, H: 10}}}
	if !SameDetections(a, b) {
		t.Fatal("identical sets reported different")
	}
	c := []Detection{{Rect: metrics.Rect{X: 30, Y: 0, W: 10, H: 10}}}
	if SameDetections(a, c) {
		t.Fatal("different sets reported same")
	}
	if SameDetections(a, nil) {
		t.Fatal("count mismatch reported same")
	}
}

// End-to-end: the detection proxy through a built engine finds the
// synthetic scenes' vehicles with good precision/recall at IoU 0.5.
func TestDetectorProxyEndToEnd(t *testing.T) {
	cfg := dataset.DefaultScenes()
	g, err := models.BuildDetectorProxy("detector-proxy", cfg.HW)
	if err != nil {
		t.Fatal(err)
	}
	bc := core.DefaultConfig(gpusim.XavierNX(), 1)
	bc.PruneFrac = 0 // the matched filter is uniform; pruning would gut it
	e, err := core.Build(g, bc)
	if err != nil {
		t.Fatal(err)
	}
	var tp, fp, fn int
	for i := 0; i < 20; i++ {
		scene := dataset.Generate(cfg, i)
		outs, err := e.Infer(scene.Image)
		if err != nil {
			t.Fatal(err)
		}
		dets := NMS(DecodeRegions(outs[0], models.DetectorStride, 0.5), 0.4)
		var truth []metrics.Rect
		for _, b := range scene.Truth {
			truth = append(truth, metrics.Rect{X: b.X, Y: b.Y, W: b.W, H: b.H})
		}
		a, b, c := Match(dets, truth, 0.5)
		tp, fp, fn = tp+a, fp+b, fn+c
	}
	p, r := PrecisionRecall(tp, fp, fn)
	if p < 60 || r < 60 {
		t.Fatalf("detector proxy precision %.0f%% recall %.0f%% too low (tp=%d fp=%d fn=%d)", p, r, tp, fp, fn)
	}
}

// Class assignment by intensity recovers the scene's vehicle classes.
func TestClassifyBoxIntensity(t *testing.T) {
	cfg := dataset.DefaultScenes()
	scene := dataset.Generate(cfg, 3)
	correct, total := 0, 0
	for _, b := range scene.Truth {
		got := models.ClassifyBoxIntensity(scene.Image, b.X, b.Y, b.W, b.H)
		total++
		if got == b.Class {
			correct++
		}
	}
	if correct < total-1 {
		t.Fatalf("classified %d/%d boxes", correct, total)
	}
}
