// Package detect implements the detection output stage that follows the
// network in the paper's object-detection applications: decoding a
// DetectNet-style coverage map into candidate boxes, ranking them (the
// cub radix-sort launches in the engine plan) and non-maximum
// suppression, plus IoU-based matching against ground truth.
package detect

import (
	"sort"

	"edgeinfer/internal/metrics"
	"edgeinfer/internal/tensor"
)

// Detection is one decoded object: a box, a class id and a confidence.
type Detection struct {
	Rect       metrics.Rect
	Class      int
	Confidence float64
}

// DecodeCoverage extracts candidate detections from a single-channel
// coverage map: every cell above the threshold becomes a box of the
// given size centered at the cell's receptive-field position.
//
// stride maps coverage cells back to image pixels; boxW/boxH are the
// nominal object dimensions (DetectNet regresses these; the proxy uses
// per-class nominal sizes after classification).
func DecodeCoverage(cov *tensor.Tensor, stride, boxW, boxH int, threshold float64) []Detection {
	var out []Detection
	for y := 0; y < cov.H; y++ {
		for x := 0; x < cov.W; x++ {
			c := float64(cov.At(0, 0, y, x))
			if c < threshold {
				continue
			}
			cx, cy := x*stride, y*stride
			out = append(out, Detection{
				Rect:       metrics.Rect{X: cx - boxW/2, Y: cy - boxH/2, W: boxW, H: boxH},
				Confidence: c,
			})
		}
	}
	return out
}

// NMS performs greedy non-maximum suppression: detections are ranked by
// confidence (the sort stage of the engine plan) and any detection
// overlapping a kept one above iouThresh is suppressed.
func NMS(dets []Detection, iouThresh float64) []Detection {
	sorted := append([]Detection(nil), dets...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Confidence > sorted[j].Confidence })
	var kept []Detection
	for _, d := range sorted {
		suppressed := false
		for _, k := range kept {
			if metrics.IoU(d.Rect, k.Rect) > iouThresh {
				suppressed = true
				break
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	return kept
}

// Match greedily assigns detections to ground-truth rectangles at the
// IoU threshold and returns (truePositives, falsePositives,
// falseNegatives) — the counts behind the paper's precision/recall
// metric.
func Match(dets []Detection, truth []metrics.Rect, iouThresh float64) (tp, fp, fn int) {
	matched := make([]bool, len(truth))
	for _, d := range dets {
		best, bi := 0.0, -1
		for i, t := range truth {
			if matched[i] {
				continue
			}
			if iou := metrics.IoU(d.Rect, t); iou > best {
				best, bi = iou, i
			}
		}
		if bi >= 0 && best >= iouThresh {
			matched[bi] = true
			tp++
		} else {
			fp++
		}
	}
	for _, m := range matched {
		if !m {
			fn++
		}
	}
	return tp, fp, fn
}

// PrecisionRecall converts match counts to percentages.
func PrecisionRecall(tp, fp, fn int) (float64, float64) {
	prec, rec := 100.0, 100.0
	if tp+fp > 0 {
		prec = 100 * float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		rec = 100 * float64(tp) / float64(tp+fn)
	}
	return prec, rec
}

// SameDetections reports whether two detection sets describe the same
// objects (pairwise IoU >= 0.9 with equal counts) — the consistency
// check for the paper's "obstacle may or may not be detected" hazard.
func SameDetections(a, b []Detection) bool {
	if len(a) != len(b) {
		return false
	}
	used := make([]bool, len(b))
	for _, da := range a {
		found := false
		for i, db := range b {
			if used[i] {
				continue
			}
			if metrics.IoU(da.Rect, db.Rect) >= 0.9 {
				used[i] = true
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// DecodeRegions extracts detections as connected components of coverage
// cells above the threshold: each component's bounding box (scaled by
// stride) is one detection with the component's mean coverage as
// confidence. This matches how DetectNet-style coverage maps are decoded
// when object extents vary.
func DecodeRegions(cov *tensor.Tensor, stride int, threshold float64) []Detection {
	h, w := cov.H, cov.W
	visited := make([]bool, h*w)
	var out []Detection
	for sy := 0; sy < h; sy++ {
		for sx := 0; sx < w; sx++ {
			if visited[sy*w+sx] || float64(cov.At(0, 0, sy, sx)) < threshold {
				continue
			}
			// BFS over the component.
			minX, minY, maxX, maxY := sx, sy, sx, sy
			var sum float64
			n := 0
			queue := [][2]int{{sy, sx}}
			visited[sy*w+sx] = true
			for len(queue) > 0 {
				cell := queue[0]
				queue = queue[1:]
				y, x := cell[0], cell[1]
				sum += float64(cov.At(0, 0, y, x))
				n++
				if x < minX {
					minX = x
				}
				if x > maxX {
					maxX = x
				}
				if y < minY {
					minY = y
				}
				if y > maxY {
					maxY = y
				}
				for _, d := range [][2]int{{y - 1, x}, {y + 1, x}, {y, x - 1}, {y, x + 1}} {
					yy, xx := d[0], d[1]
					if yy < 0 || yy >= h || xx < 0 || xx >= w || visited[yy*w+xx] {
						continue
					}
					if float64(cov.At(0, 0, yy, xx)) < threshold {
						continue
					}
					visited[yy*w+xx] = true
					queue = append(queue, [2]int{yy, xx})
				}
			}
			out = append(out, Detection{
				Rect: metrics.Rect{
					X: minX * stride, Y: minY * stride,
					W: (maxX - minX + 1) * stride, H: (maxY - minY + 1) * stride,
				},
				Confidence: sum / float64(n),
			})
		}
	}
	return out
}
