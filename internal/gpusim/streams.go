package gpusim

import "math"

// StreamLoad describes the steady-state cost of one inference thread's
// frame loop, derived from an engine's kernel plan by the runtime:
// GPU-resident time per frame, serialized host time per frame (pre/post
// processing and kernel submission), and DRAM traffic per frame.
type StreamLoad struct {
	PerFrameGPUSec    float64
	PerFrameHostSec   float64
	PerFrameDRAMBytes float64
	// PerThreadMemBytes is the RAM footprint of one inference thread
	// (execution context buffers and per-kernel workspaces) — the
	// capacity bound against usable RAM.
	PerThreadMemBytes float64
	// LaunchCount is the number of kernel launches per frame. Each
	// concurrent stream keeps scheduler state (HW work-queue slots)
	// proportional to its in-flight kernel graph, which bounds how many
	// streams the GPU front-end sustains.
	LaunchCount int
}

// fps1 is the single-thread frame rate: host and GPU phases serialize.
func (l StreamLoad) fps1() float64 {
	t := l.PerFrameGPUSec + l.PerFrameHostSec
	if t <= 0 {
		return 0
	}
	return 1 / t
}

// utilCeiling is the maximum GPU busy fraction reachable with many
// concurrent streams in one context. The copy engine and context-wide
// submission lock serialize a share of every frame, which grows slightly
// smaller on parts with more SMs (more resident work per unit of
// serialization). The paper observes 82.1–82.5 % on the 6-SM NX and
// 85.6–86.2 % on the 8-SM AGX.
func utilCeiling(d *Device) float64 {
	return 0.72 + 0.0175*float64(d.Spec.SMs)
}

// utilRiseTau controls how quickly added streams fill the inter-kernel
// gaps of the others (streams in one context share a submission queue,
// so gaps are correlated and fill slowly).
const utilRiseTau = 7.0

// GPUUtilization returns the tegrastats-style GPU busy fraction (0..1)
// with n concurrent inference threads of the given load.
func GPUUtilization(d *Device, l StreamLoad, n int) float64 {
	if n < 1 {
		n = 1
	}
	u1 := l.PerFrameGPUSec / (l.PerFrameGPUSec + l.PerFrameHostSec)
	cap := utilCeiling(d)
	if u1 > cap {
		u1 = cap
	}
	return cap - (cap-u1)*math.Exp(-float64(n-1)/utilRiseTau)
}

// fpsWarmGain is the small per-thread FPS improvement at higher
// concurrency from warmed caches and amortized driver work (the paper
// measures 189→196 FPS/thread for Tiny-YOLOv3 on NX).
const fpsWarmGain = 0.035

// ThreadFPS returns the per-thread frame rate with n concurrent threads.
// Below the saturation thread count, per-thread FPS is roughly constant
// with a small warm-cache gain; beyond saturation the DRAM bus is
// oversubscribed and every thread slows proportionally.
func ThreadFPS(d *Device, l StreamLoad, n int) float64 {
	if n < 1 {
		n = 1
	}
	base := l.fps1() * (1 + fpsWarmGain*(1-math.Exp(-float64(n-1)/8)))
	sat := SaturationThreads(d, l)
	if n <= sat {
		return base
	}
	// Oversubscribed: aggregate throughput is pinned at the DRAM bound.
	return base * float64(sat) / float64(n)
}

// reservedRAMBytes is RAM unavailable to inference threads: the OS,
// display stack and CUDA runtime.
const reservedRAMBytes = 3e9

// schedStreamsPerSM scales the scheduler bound: streams per SM for a
// single-launch frame; deeper kernel graphs hold more work-queue state
// per stream, shrinking the budget by the square root of the launch
// count (queues drain while later kernels are still being submitted).
const schedStreamsPerSM = 22.5

// schedulerBound is the front-end stream limit.
func schedulerBound(d *Device, launches int) int {
	if launches < 1 {
		launches = 1
	}
	n := int(schedStreamsPerSM * float64(d.Spec.SMs) / math.Sqrt(float64(launches)))
	if n < 1 {
		n = 1
	}
	return n
}

// SaturationThreads returns the maximum number of concurrent inference
// threads the platform sustains: the smallest of three bounds — the
// RAM-bandwidth bound of the paper's Eq. (1) (N = O(Fmem × Bwid / Bth),
// Bth = FPS × per-frame DRAM bytes), the RAM-capacity bound (per-thread
// context/workspace allocations against usable RAM), and the GPU
// front-end scheduler bound (work-queue slots per SM divided by kernel
// graph depth). The scheduler bound reproduces the paper's observed
// 28/36 (Tiny-YOLOv3) and 16/24 (GoogLeNet) saturation thread counts.
func SaturationThreads(d *Device, l StreamLoad) int {
	n := math.MaxInt32
	if l.PerFrameDRAMBytes > 0 {
		bth := l.fps1() * (1 + fpsWarmGain) * l.PerFrameDRAMBytes
		if bw := int(d.DRAMBandwidth() / bth); bw < n {
			n = bw
		}
	}
	if l.PerThreadMemBytes > 0 {
		usable := float64(d.Spec.MemGB)*1e9 - reservedRAMBytes
		if cap := int(usable / l.PerThreadMemBytes); cap < n {
			n = cap
		}
	}
	if l.LaunchCount > 0 {
		if sb := schedulerBound(d, l.LaunchCount); sb < n {
			n = sb
		}
	}
	if n < 1 {
		n = 1
	}
	return n
}

// ConcurrencyPoint is one x-position of the paper's Figures 3 and 4.
type ConcurrencyPoint struct {
	Threads        int
	FPSPerThread   float64
	GPUUtilization float64 // percent
}

// ConcurrencySweep evaluates thread counts 1, 4, 8, ... up to the
// saturation point (the sweep shape used by Figures 3 and 4).
func ConcurrencySweep(d *Device, l StreamLoad) []ConcurrencyPoint {
	sat := SaturationThreads(d, l)
	var pts []ConcurrencyPoint
	add := func(n int) {
		pts = append(pts, ConcurrencyPoint{
			Threads:        n,
			FPSPerThread:   ThreadFPS(d, l, n),
			GPUUtilization: 100 * GPUUtilization(d, l, n),
		})
	}
	add(1)
	for n := 4; n < sat; n += 4 {
		add(n)
	}
	if sat > 1 {
		add(sat)
	}
	return pts
}

// ColocationShare is one workload's outcome when several inference
// applications share the GPU (the intersection controller runs detection
// and plate classification on one device).
type ColocationShare struct {
	FPSPerThread   float64
	GPUUtilization float64 // this workload's share, 0..1
	Degradation    float64 // fraction of solo FPS lost to contention
}

// Colocate estimates per-workload throughput when the given loads run
// concurrently with the given thread counts. Each workload's solo busy
// demand is computed first; if the summed demand exceeds the utilization
// ceiling, every workload is scaled back proportionally (the GPU
// timeslices fairly among streams).
func Colocate(d *Device, loads []StreamLoad, threads []int) []ColocationShare {
	if len(loads) != len(threads) {
		panic("gpusim: Colocate needs one thread count per load")
	}
	demands := make([]float64, len(loads))
	var total float64
	for i, l := range loads {
		demands[i] = GPUUtilization(d, l, threads[i])
		total += demands[i]
	}
	cap := utilCeiling(d)
	scale := 1.0
	if total > cap {
		scale = cap / total
	}
	out := make([]ColocationShare, len(loads))
	for i, l := range loads {
		solo := ThreadFPS(d, l, threads[i])
		out[i] = ColocationShare{
			FPSPerThread:   solo * scale,
			GPUUtilization: demands[i] * scale,
			Degradation:    1 - scale,
		}
	}
	return out
}
