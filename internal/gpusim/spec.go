// Package gpusim models the two embedded Volta-class GPUs of the paper —
// Jetson Xavier NX and Jetson Xavier AGX — analytically: peak arithmetic
// rates on CUDA and tensor cores, wave/occupancy effects, a shared-L2
// contention model, DRAM bandwidth, host-to-device copy costs, and
// CUDA-like streams for concurrent execution. The kernel library
// (internal/kernels) prices individual kernels against a Device; the
// engine runtime (internal/core) composes those prices into inference
// latencies.
package gpusim

import "fmt"

// DeviceSpec mirrors the paper's Table I: the static hardware description
// reported by the deviceQuery utility.
type DeviceSpec struct {
	Name        string
	GPUArch     string // chip name, e.g. GV10B
	CPUDesc     string
	CUDACores   int
	SMs         int
	TensorCores int
	L1KBPerSM   int
	L2KB        int
	MemGB       int
	MemBusBits  int
	MemBWGBs    float64 // peak DRAM bandwidth, GB/s
	MemFreqMHz  float64 // LPDDR4x data clock
	GPUClockMHz float64 // max GPU clock
	TechNm      int

	// MemClockFollowsGPU models nvpmodel power-mode coupling: pinning the
	// GPU clock below maximum selects a power mode that also downclocks
	// the EMC (memory controller). On AGX the paper's 624 MHz setting
	// lands in such a mode; NX's 599 MHz mode keeps the EMC at full rate.
	// This asymmetry is a root cause of "AGX slower than NX" anomalies at
	// the pinned clocks of the latency study, while the max-clock
	// concurrency study sees full bandwidth on both.
	MemClockFollowsGPU bool

	// Host-to-device copy characteristics (pageable memory path). These
	// drive the paper's Table X memcpy anomaly: AGX programs a wider
	// memory controller with more channels per transfer, so its per-chunk
	// setup cost is higher and its effective pageable-copy bandwidth is
	// slightly lower than NX's despite 2.7x the DRAM bandwidth.
	H2DSetupUS float64 // per-chunk setup, microseconds
	H2DBWGBs   float64 // effective pageable H2D bandwidth, GB/s
}

// XavierNX returns the Jetson Xavier NX specification (Table I).
func XavierNX() DeviceSpec {
	return DeviceSpec{
		Name:        "Xavier NX",
		GPUArch:     "GV10B",
		CPUDesc:     "6-core NVIDIA Carmel ARMv8.2 64-bit, 6MB L2 + 4MB L3",
		CUDACores:   384,
		SMs:         6,
		TensorCores: 48,
		L1KBPerSM:   128,
		L2KB:        512,
		MemGB:       8,
		MemBusBits:  128,
		MemBWGBs:    51.2,
		MemFreqMHz:  1600,
		GPUClockMHz: 1100,
		TechNm:      12,
		H2DSetupUS:  30,
		H2DBWGBs:    2.9,
	}
}

// XavierAGX returns the Jetson Xavier AGX specification (Table I).
func XavierAGX() DeviceSpec {
	return DeviceSpec{
		Name:               "Xavier AGX",
		GPUArch:            "GV10B",
		CPUDesc:            "8-core ARMv8.2 64-bit, 8MB L2 + 4MB L3",
		CUDACores:          512,
		SMs:                8,
		TensorCores:        64,
		L1KBPerSM:          128,
		L2KB:               512,
		MemGB:              32,
		MemBusBits:         256,
		MemBWGBs:           137,
		MemFreqMHz:         2133,
		GPUClockMHz:        1137,
		TechNm:             12,
		MemClockFollowsGPU: true,
		H2DSetupUS:         50,
		H2DBWGBs:           3.05,
	}
}

// Platforms returns the two evaluation platforms in paper order.
func Platforms() []DeviceSpec { return []DeviceSpec{XavierNX(), XavierAGX()} }

// ByName returns the spec whose Name contains the given short name
// ("NX" or "AGX"), or an error.
func ByName(name string) (DeviceSpec, error) {
	switch name {
	case "NX", "nx", "Xavier NX":
		return XavierNX(), nil
	case "AGX", "agx", "Xavier AGX":
		return XavierAGX(), nil
	default:
		return DeviceSpec{}, fmt.Errorf("gpusim: unknown platform %q (want NX or AGX)", name)
	}
}

// Short returns the compact platform tag used in experiment tables.
func (s DeviceSpec) Short() string {
	switch s.Name {
	case "Xavier NX":
		return "NX"
	case "Xavier AGX":
		return "AGX"
	default:
		return s.Name
	}
}

// DeviceQuery renders the spec in the style of the CUDA deviceQuery
// utility used by the paper to populate Table I.
func (s DeviceSpec) DeviceQuery() string {
	return fmt.Sprintf(`Device: %q (%s)
  CPU:                           %s
  CUDA Cores:                    %d (%d per SM)
  Multiprocessors (SMs):         %d
  Tensor Cores:                  %d (%d per SM)
  L1 Cache:                      %dKB per SM
  L2 Cache:                      %dKB
  Memory:                        %dGB %d-bit LPDDR4x %.1fGB/s
  GPU Max Clock rate:            %.3f GHz
  Technology:                    %dnm`,
		s.Name, s.GPUArch, s.CPUDesc,
		s.CUDACores, s.CUDACores/s.SMs, s.SMs,
		s.TensorCores, s.TensorCores/s.SMs,
		s.L1KBPerSM, s.L2KB, s.MemGB, s.MemBusBits, s.MemBWGBs,
		s.GPUClockMHz/1000, s.TechNm)
}
