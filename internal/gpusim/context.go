package gpusim

// Context is a CUDA-context-like container: a virtual address space on
// one device holding any number of streams. The paper's concurrency
// methodology binds many streams to a single context so that all threads
// share one copy of the model weights; the example applications use this
// API to replay that setup on the simulator.
type Context struct {
	Device  *Device
	streams []*Stream
}

// NewContext creates a context on the device.
func NewContext(d *Device) *Context {
	return &Context{Device: d}
}

// NewStream creates a stream bound to the context.
func (c *Context) NewStream() *Stream {
	s := &Stream{ctx: c}
	c.streams = append(c.streams, s)
	return s
}

// Streams returns the streams created on this context.
func (c *Context) Streams() []*Stream { return c.streams }

// Stream is an in-order execution queue on a device timeline. Work items
// enqueued on the same stream serialize; items on different streams
// overlap (the simulator models contention at the aggregate level via
// StreamLoad, so per-item overlap here is free).
type Stream struct {
	ctx       *Context
	busyUntil float64 // seconds on the context timeline
}

// Enqueue schedules a work item that becomes ready at readySec and runs
// for durSec, returning its completion time. Items on one stream execute
// in FIFO order.
func (s *Stream) Enqueue(readySec, durSec float64) float64 {
	start := readySec
	if s.busyUntil > start {
		start = s.busyUntil
	}
	s.busyUntil = start + durSec
	return s.busyUntil
}

// BusyUntil returns the stream's current completion horizon.
func (s *Stream) BusyUntil() float64 { return s.busyUntil }

// Reset clears the stream timeline.
func (s *Stream) Reset() { s.busyUntil = 0 }
