package gpusim_test

import (
	"fmt"

	"edgeinfer/internal/gpusim"
)

// The two evaluation platforms of the paper's Table I.
func ExamplePlatforms() {
	for _, spec := range gpusim.Platforms() {
		fmt.Printf("%s: %d CUDA cores on %d SMs, %dGB @ %.1fGB/s\n",
			spec.Short(), spec.CUDACores, spec.SMs, spec.MemGB, spec.MemBWGBs)
	}
	// Output:
	// NX: 384 CUDA cores on 6 SMs, 8GB @ 51.2GB/s
	// AGX: 512 CUDA cores on 8 SMs, 32GB @ 137.0GB/s
}

// Both platforms share one 512 KB L2, so the per-SM share is smaller on
// AGX: working sets between the two shares thrash on AGX only — the
// simulator's root cause for kernels running slower on the bigger board.
func ExampleDevice_L2ContentionFactor() {
	nx := gpusim.NewDevice(gpusim.XavierNX(), 599)
	agx := gpusim.NewDevice(gpusim.XavierAGX(), 624)
	const ws = 73 * 1024 // a 256x64 HMMA tile's working set
	fmt.Printf("NX penalty:  %.2fx\n", nx.L2ContentionFactor(ws))
	fmt.Printf("AGX penalty: %.2fx\n", agx.L2ContentionFactor(ws))
	// Output:
	// NX penalty:  1.00x
	// AGX penalty: 1.49x
}

// Pinning the AGX GPU clock (as the paper's latency study does) lands in
// an nvpmodel power mode that also downclocks the memory controller —
// below even the NX's full-rate bandwidth.
func ExampleDevice_DRAMBandwidth() {
	nx := gpusim.NewDevice(gpusim.XavierNX(), 599)
	agxPinned := gpusim.NewDevice(gpusim.XavierAGX(), 624)
	agxMax := gpusim.NewDevice(gpusim.XavierAGX(), 1377)
	fmt.Printf("NX  @599:  %.1f GB/s\n", nx.DRAMBandwidth()/1e9)
	fmt.Printf("AGX @624:  %.1f GB/s\n", agxPinned.DRAMBandwidth()/1e9)
	fmt.Printf("AGX @1377: %.1f GB/s\n", agxMax.DRAMBandwidth()/1e9)
	// Output:
	// NX  @599:  51.2 GB/s
	// AGX @624:  38.4 GB/s
	// AGX @1377: 137.0 GB/s
}
