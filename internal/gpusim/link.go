package gpusim

// Link models the interconnect between two simulated edge nodes: a
// point-to-point pipe with propagation latency and payload bandwidth.
// Like the device model it is analytic and noise-free — loss and delay
// faults are injected on top by internal/faults, not modeled here —
// so the cluster partitioner and the pipeline executor price the same
// transfer identically.
type Link struct {
	// BandwidthBps is the payload bandwidth in bytes per second.
	// Zero means an infinite pipe: transfers pay latency only.
	BandwidthBps float64
	// LatencySec is the one-way propagation latency paid once per
	// transfer regardless of size.
	LatencySec float64
}

// GigabitEthernet is the default edge-cluster link: 1 GbE wire speed
// (125 MB/s payload) with a typical switched-LAN round-trip share.
func GigabitEthernet() Link {
	return Link{BandwidthBps: 125e6, LatencySec: 200e-6}
}

// WiFi is the constrained-link profile: ~40 MB/s effective payload at
// a 2 ms latency floor, the regime where activation size dominates cut
// choice.
func WiFi() Link {
	return Link{BandwidthBps: 40e6, LatencySec: 2e-3}
}

// TransferSec prices moving bytes across the link: propagation latency
// plus serialization time at the payload bandwidth.
func (l Link) TransferSec(bytes int64) float64 {
	t := l.LatencySec
	if l.BandwidthBps > 0 && bytes > 0 {
		t += float64(bytes) / l.BandwidthBps
	}
	return t
}
