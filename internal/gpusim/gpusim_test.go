package gpusim

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSpecsMatchTable1(t *testing.T) {
	nx, agx := XavierNX(), XavierAGX()
	if nx.CUDACores != 384 || nx.SMs != 6 || nx.TensorCores != 48 {
		t.Fatalf("NX GPU spec wrong: %+v", nx)
	}
	if agx.CUDACores != 512 || agx.SMs != 8 || agx.TensorCores != 64 {
		t.Fatalf("AGX GPU spec wrong: %+v", agx)
	}
	if nx.CUDACores/nx.SMs != 64 || agx.CUDACores/agx.SMs != 64 {
		t.Fatal("cores per SM must be 64 on both (Volta)")
	}
	if nx.L2KB != agx.L2KB {
		t.Fatal("both platforms share the same 512KB L2 per Table I")
	}
	if nx.MemBWGBs != 51.2 || agx.MemBWGBs != 137 {
		t.Fatal("memory bandwidths wrong")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"NX", "nx", "Xavier NX"} {
		s, err := ByName(name)
		if err != nil || s.Short() != "NX" {
			t.Fatalf("ByName(%q) = %v, %v", name, s.Short(), err)
		}
	}
	if _, err := ByName("TX2"); err == nil {
		t.Fatal("unknown platform accepted")
	}
}

func TestDeviceQueryRendering(t *testing.T) {
	q := XavierNX().DeviceQuery()
	for _, want := range []string{"384", "Tensor Cores", "512KB", "LPDDR4x"} {
		if !strings.Contains(q, want) {
			t.Errorf("deviceQuery output missing %q", want)
		}
	}
}

func TestPeakFLOPS(t *testing.T) {
	d := NewDevice(XavierNX(), 1100)
	cuda := d.PeakFLOPS(false)
	tc := d.PeakFLOPS(true)
	if math.Abs(cuda-384*2*1100e6) > 1 {
		t.Fatalf("cuda peak %v", cuda)
	}
	if tc <= cuda*5 {
		t.Fatalf("tensor-core peak should dominate: %v vs %v", tc, cuda)
	}
}

func TestPeakScalesWithClock(t *testing.T) {
	lo := NewDevice(XavierNX(), 599)
	hi := NewDevice(XavierNX(), 1198)
	if math.Abs(hi.PeakFLOPS(false)/lo.PeakFLOPS(false)-2) > 1e-9 {
		t.Fatal("peak FLOPS must scale linearly with clock")
	}
	if lo.DRAMBandwidth() != hi.DRAMBandwidth() {
		t.Fatal("DRAM bandwidth must not scale with GPU clock")
	}
}

func TestZeroClockDefaultsToMax(t *testing.T) {
	d := NewDevice(XavierNX(), 0)
	if d.ClockMHz != 1100 {
		t.Fatalf("default clock %v", d.ClockMHz)
	}
}

func TestWaves(t *testing.T) {
	d := NewDevice(XavierNX(), 0) // 6 SMs
	cases := []struct{ blocks, want int }{{0, 0}, {1, 1}, {6, 1}, {7, 2}, {12, 2}, {13, 3}}
	for _, c := range cases {
		if got := d.Waves(c.blocks); got != c.want {
			t.Errorf("Waves(%d)=%d want %d", c.blocks, got, c.want)
		}
	}
}

func TestWaveEfficiencyAsymmetry(t *testing.T) {
	nx := NewDevice(XavierNX(), 0)
	agx := NewDevice(XavierAGX(), 0)
	// A 12-block grid (tuned for 6 SMs) is perfect on NX, wasteful on AGX.
	if e := nx.WaveEfficiency(12); e != 1.0 {
		t.Fatalf("NX efficiency for 12 blocks = %v", e)
	}
	if e := agx.WaveEfficiency(12); e != 0.75 {
		t.Fatalf("AGX efficiency for 12 blocks = %v", e)
	}
	// And vice versa for a 16-block grid.
	if e := agx.WaveEfficiency(16); e != 1.0 {
		t.Fatalf("AGX efficiency for 16 blocks = %v", e)
	}
	if nx.WaveEfficiency(16) >= 1.0 {
		t.Fatal("NX should be inefficient on 16 blocks")
	}
}

func TestL2ContentionWindow(t *testing.T) {
	nx := NewDevice(XavierNX(), 0)   // share = 512/6 = 85.3KB
	agx := NewDevice(XavierAGX(), 0) // share = 512/8 = 64KB
	ws := int64(73 * 1024)           // the h884cudnn 256x64 tile footprint
	if f := nx.L2ContentionFactor(ws); f != 1 {
		t.Fatalf("NX should fit 73KB in its L2 share: factor %v", f)
	}
	if f := agx.L2ContentionFactor(ws); f <= 1 {
		t.Fatalf("AGX should thrash on 73KB: factor %v", f)
	}
	// Small working sets are free everywhere.
	if nx.L2ContentionFactor(24*1024) != 1 || agx.L2ContentionFactor(24*1024) != 1 {
		t.Fatal("small working sets must not be penalized")
	}
}

func TestL2ContentionMonotone(t *testing.T) {
	d := NewDevice(XavierAGX(), 0)
	if err := quick.Check(func(a, b uint32) bool {
		x, y := int64(a%512)*1024, int64(b%512)*1024
		if x > y {
			x, y = y, x
		}
		return d.L2ContentionFactor(x) <= d.L2ContentionFactor(y)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMemcpyModel(t *testing.T) {
	nx := NewDevice(XavierNX(), 0)
	agx := NewDevice(XavierAGX(), 0)
	// Few large chunks: AGX's bandwidth-parity makes it comparable.
	big := int64(120e6)
	if nx.MemcpyH2DSec(big, 16) < 0.04 {
		t.Fatal("120MB copy should take tens of ms")
	}
	// Many small chunks: AGX pays more setup and falls behind NX.
	smallNX := nx.MemcpyH2DSec(80e6, 320)
	smallAGX := agx.MemcpyH2DSec(80e6, 320)
	if smallAGX <= smallNX {
		t.Fatalf("many-chunk copy should be slower on AGX: NX %v AGX %v", smallNX, smallAGX)
	}
}

func TestMemcpyMonotoneInBytesAndChunks(t *testing.T) {
	d := NewDevice(XavierNX(), 0)
	if err := quick.Check(func(b1, b2 uint32, c1, c2 uint16) bool {
		x, y := int64(b1), int64(b2)
		if x > y {
			x, y = y, x
		}
		if d.MemcpyH2DSec(x, 10) > d.MemcpyH2DSec(y, 10) {
			return false
		}
		ca, cb := int(c1%1000)+1, int(c2%1000)+1
		if ca > cb {
			ca, cb = cb, ca
		}
		return d.MemcpyH2DSec(1e6, ca) <= d.MemcpyH2DSec(1e6, cb)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPaperClocks(t *testing.T) {
	if PaperLatencyClock(XavierNX()) != 599 || PaperLatencyClock(XavierAGX()) != 624 {
		t.Fatal("latency-study clocks wrong")
	}
	if PaperMaxClock(XavierNX()) != 1109.25 || PaperMaxClock(XavierAGX()) != 1377 {
		t.Fatal("max clocks wrong")
	}
}

func TestUtilizationRisesAndSaturates(t *testing.T) {
	d := NewDevice(XavierNX(), PaperMaxClock(XavierNX()))
	l := StreamLoad{PerFrameGPUSec: 3.3e-3, PerFrameHostSec: 2e-3, PerFrameDRAMBytes: 9e6}
	u1 := GPUUtilization(d, l, 1)
	u28 := GPUUtilization(d, l, 28)
	if u1 >= u28 {
		t.Fatalf("utilization must rise with threads: %v -> %v", u1, u28)
	}
	if u28 > utilCeiling(d) {
		t.Fatalf("utilization exceeded ceiling: %v", u28)
	}
	if u1 < 0.5 || u1 > 0.7 {
		t.Logf("u1=%v (informational)", u1)
	}
}

func TestUtilCeilingOrdering(t *testing.T) {
	nx := NewDevice(XavierNX(), 0)
	agx := NewDevice(XavierAGX(), 0)
	if utilCeiling(nx) >= utilCeiling(agx) {
		t.Fatal("AGX should reach a higher utilization ceiling (paper: 82% vs 86%)")
	}
}

func TestThreadFPSStableThenDegrades(t *testing.T) {
	d := NewDevice(XavierNX(), PaperMaxClock(XavierNX()))
	l := StreamLoad{PerFrameGPUSec: 3.3e-3, PerFrameHostSec: 2e-3, PerFrameDRAMBytes: 9e6}
	sat := SaturationThreads(d, l)
	if sat < 2 {
		t.Fatalf("saturation %d too small", sat)
	}
	fps1 := ThreadFPS(d, l, 1)
	fpsSat := ThreadFPS(d, l, sat)
	if fpsSat < fps1 {
		t.Fatalf("per-thread FPS should not drop before saturation: %v -> %v", fps1, fpsSat)
	}
	fpsOver := ThreadFPS(d, l, sat*2)
	if fpsOver >= fpsSat {
		t.Fatal("oversubscription should reduce per-thread FPS")
	}
}

func TestSaturationScalesWithBandwidth(t *testing.T) {
	l := StreamLoad{PerFrameGPUSec: 2e-3, PerFrameHostSec: 2e-3, PerFrameDRAMBytes: 9e6}
	nx := NewDevice(XavierNX(), 1100)
	agx := NewDevice(XavierAGX(), 1100)
	if SaturationThreads(nx, l) >= SaturationThreads(agx, l) {
		t.Fatal("AGX should sustain more threads at equal per-thread load")
	}
}

func TestMaxConcurrentThreadsEq1(t *testing.T) {
	d := NewDevice(XavierNX(), 0)
	// Bth = 1.83 GB/s -> N = 51.2/1.83 = 27.9 -> 27
	n := d.MaxConcurrentThreads(1.83e9)
	if n != 27 {
		t.Fatalf("Eq(1) bound = %d, want 27", n)
	}
	if d.MaxConcurrentThreads(0) != math.MaxInt32 {
		t.Fatal("zero demand should be unbounded")
	}
}

func TestConcurrencySweepShape(t *testing.T) {
	d := NewDevice(XavierNX(), PaperMaxClock(XavierNX()))
	l := StreamLoad{PerFrameGPUSec: 3.3e-3, PerFrameHostSec: 1.9e-3, PerFrameDRAMBytes: 9.3e6}
	pts := ConcurrencySweep(d, l)
	if len(pts) < 3 {
		t.Fatalf("sweep too short: %d points", len(pts))
	}
	if pts[0].Threads != 1 {
		t.Fatal("sweep must start at 1 thread")
	}
	last := pts[len(pts)-1]
	if last.Threads != SaturationThreads(d, l) {
		t.Fatal("sweep must end at the saturation point")
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].GPUUtilization < pts[i-1].GPUUtilization {
			t.Fatal("utilization must be non-decreasing across the sweep")
		}
	}
}

func TestStreamsSerializeInOrder(t *testing.T) {
	ctx := NewContext(NewDevice(XavierNX(), 0))
	s := ctx.NewStream()
	c1 := s.Enqueue(0, 0.010)
	c2 := s.Enqueue(0.001, 0.010) // ready early but must wait
	if c1 != 0.010 || c2 != 0.020 {
		t.Fatalf("stream serialization wrong: %v %v", c1, c2)
	}
	s.Reset()
	if s.BusyUntil() != 0 {
		t.Fatal("reset failed")
	}
	if len(ctx.Streams()) != 1 {
		t.Fatal("stream registry wrong")
	}
}

func TestStreamsOverlapAcrossStreams(t *testing.T) {
	ctx := NewContext(NewDevice(XavierAGX(), 0))
	a, b := ctx.NewStream(), ctx.NewStream()
	ca := a.Enqueue(0, 0.010)
	cb := b.Enqueue(0, 0.010)
	if ca != cb {
		t.Fatal("independent streams should overlap fully in this model")
	}
}

func TestPowerModel(t *testing.T) {
	nx := NewDevice(XavierNX(), PaperMaxClock(XavierNX()))
	agx := NewDevice(XavierAGX(), PaperMaxClock(XavierAGX()))
	// Idle draws less than busy; AGX envelope exceeds NX's.
	if nx.PowerW(0) >= nx.PowerW(1) {
		t.Fatal("busy should draw more than idle")
	}
	if agx.PowerW(1) <= nx.PowerW(1) {
		t.Fatal("AGX peak power should exceed NX's")
	}
	// Envelope sanity: NX module is a 10-20W part, AGX 10-65W.
	if p := nx.PowerW(1); p < 8 || p > 20 {
		t.Fatalf("NX peak power %.1fW outside envelope", p)
	}
	if p := agx.PowerW(1); p < 20 || p > 65 {
		t.Fatalf("AGX peak power %.1fW outside envelope", p)
	}
	// DVFS: pinning the clock cuts dynamic power super-linearly.
	pinned := NewDevice(XavierNX(), 599)
	full := NewDevice(XavierNX(), PaperMaxClock(XavierNX()))
	dynPinned := pinned.PowerW(1) - pinned.PowerW(0)
	dynFull := full.PowerW(1) - full.PowerW(0)
	if dynPinned >= dynFull*0.6 {
		t.Fatalf("DVFS scaling too weak: %.1fW at 599MHz vs %.1fW at max", dynPinned, dynFull)
	}
	// Clamping.
	if nx.PowerW(-1) != nx.PowerW(0) || nx.PowerW(2) != nx.PowerW(1) {
		t.Fatal("utilization not clamped")
	}
}

func TestThermalHeatsTowardEquilibrium(t *testing.T) {
	d := NewDevice(XavierNX(), PaperMaxClock(XavierNX()))
	samples := SimulateSustainedLoad(d, 0.8, 25, 600, 1)
	if samples[0].TempC > 30 {
		t.Fatal("should start near ambient")
	}
	last := samples[len(samples)-1]
	if last.TempC <= samples[0].TempC+10 {
		t.Fatalf("module did not heat up: %v -> %v", samples[0].TempC, last.TempC)
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].TempC > 120 {
			t.Fatal("temperature ran away")
		}
	}
}

func TestThermalNXThrottlesAGXDoesNot(t *testing.T) {
	// At full utilization and max clocks, the passively-cooled NX
	// exceeds the throttle point; the fan-cooled AGX holds full clocks.
	nx := NewDevice(XavierNX(), PaperMaxClock(XavierNX()))
	agx := NewDevice(XavierAGX(), PaperMaxClock(XavierAGX()))
	nxRun := SimulateSustainedLoad(nx, 1.0, 35, 1200, 1)
	agxRun := SimulateSustainedLoad(agx, 1.0, 35, 1200, 1)
	if SteadyStateClock(nxRun) >= nx.ClockMHz*0.99 {
		t.Fatalf("NX at 35C ambient should throttle; steady clock %.0f", SteadyStateClock(nxRun))
	}
	if SteadyStateClock(agxRun) < agx.ClockMHz*0.99 {
		t.Fatalf("AGX should hold clocks; steady %.0f", SteadyStateClock(agxRun))
	}
}

func TestThermalRecovery(t *testing.T) {
	d := NewDevice(XavierNX(), PaperMaxClock(XavierNX()))
	hot := SimulateSustainedLoad(d, 1.0, 35, 1200, 1)
	throttledAt := -1.0
	for _, s := range hot {
		if s.Throttled {
			throttledAt = s.TimeSec
			break
		}
	}
	if throttledAt < 0 {
		t.Fatal("never throttled under hot sustained load")
	}
	// Clock never falls below the 50% floor.
	for _, s := range hot {
		if s.ClockMHz < d.ClockMHz*0.5-1 {
			t.Fatal("clock fell through the floor")
		}
	}
}

func TestSteadyStateClockEmpty(t *testing.T) {
	if SteadyStateClock(nil) != 0 {
		t.Fatal("empty series should report 0")
	}
}

func TestColocate(t *testing.T) {
	d := NewDevice(XavierAGX(), PaperMaxClock(XavierAGX()))
	det := StreamLoad{PerFrameGPUSec: 3.3e-3, PerFrameHostSec: 2e-3, PerFrameDRAMBytes: 9e6, LaunchCount: 23}
	cls := StreamLoad{PerFrameGPUSec: 1.5e-3, PerFrameHostSec: 2e-3, PerFrameDRAMBytes: 4e6, LaunchCount: 40}
	shares := Colocate(d, []StreamLoad{det, cls}, []int{8, 4})
	if len(shares) != 2 {
		t.Fatal("share count")
	}
	for _, s := range shares {
		if s.FPSPerThread <= 0 || s.GPUUtilization <= 0 {
			t.Fatalf("bad share %+v", s)
		}
	}
	// Oversubscribed: both degrade equally.
	heavy := Colocate(d, []StreamLoad{det, det, det}, []int{30, 30, 30})
	if heavy[0].Degradation <= 0 {
		t.Fatal("oversubscription should degrade throughput")
	}
	if heavy[0].Degradation != heavy[1].Degradation {
		t.Fatal("fair timeslicing should degrade workloads equally")
	}
	// Total utilization never exceeds the ceiling.
	var total float64
	for _, s := range heavy {
		total += s.GPUUtilization
	}
	if total > utilCeiling(d)+1e-9 {
		t.Fatalf("co-located utilization %v exceeds ceiling", total)
	}
}

func TestColocatePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched lengths")
		}
	}()
	Colocate(NewDevice(XavierNX(), 0), []StreamLoad{{}}, nil)
}
