package gpusim

import (
	"math"
)

// Device is a platform with a configured GPU clock. The paper pins both
// boards to comparable clocks (599 MHz NX, 624 MHz AGX) for the latency
// study and uses max clocks (1109.25 / 1377 MHz) for the concurrency
// study; Device captures that run-time setting.
type Device struct {
	Spec     DeviceSpec
	ClockMHz float64
}

// NewDevice creates a device at the given GPU clock in MHz. A zero clock
// selects the spec's maximum.
func NewDevice(spec DeviceSpec, clockMHz float64) *Device {
	if clockMHz <= 0 {
		clockMHz = spec.GPUClockMHz
	}
	return &Device{Spec: spec, ClockMHz: clockMHz}
}

// PaperLatencyClock returns the clock (MHz) the paper fixes for the
// latency experiments on this platform (599 NX / 624 AGX).
func PaperLatencyClock(spec DeviceSpec) float64 {
	if spec.Short() == "AGX" {
		return 624
	}
	return 599
}

// PaperMaxClock returns the clock (MHz) the paper reports for the
// concurrency experiments (tegrastats-observed boost clocks).
func PaperMaxClock(spec DeviceSpec) float64 {
	if spec.Short() == "AGX" {
		return 1377
	}
	return 1109.25
}

// PeakFLOPS returns the device's peak arithmetic rate in FLOP/s at the
// configured clock: 2 FLOPs/cycle per CUDA core for FP32, or 128
// FLOPs/cycle per tensor core for FP16 HMMA kernels.
func (d *Device) PeakFLOPS(tensorCore bool) float64 {
	clockHz := d.ClockMHz * 1e6
	if tensorCore {
		return float64(d.Spec.TensorCores) * 128 * clockHz
	}
	return float64(d.Spec.CUDACores) * 2 * clockHz
}

// DRAMBandwidth returns the effective DRAM bandwidth in bytes/s at the
// device's clock setting. On platforms whose power modes couple the EMC
// to the GPU clock (AGX), pinning the GPU below maximum proportionally
// reduces memory bandwidth; otherwise the memory clock is independent.
func (d *Device) DRAMBandwidth() float64 {
	bw := d.Spec.MemBWGBs * 1e9
	if d.Spec.MemClockFollowsGPU {
		// nvpmodel power modes step the EMC down coarsely with the GPU
		// clock; at the paper's 624 MHz AGX setting the memory system
		// delivers less bandwidth than NX's full-EMC 51.2 GB/s.
		switch {
		case d.ClockMHz >= 1200:
			// full mode
		case d.ClockMHz >= 800:
			bw *= 0.57
		default:
			bw *= 0.28
		}
	}
	return bw
}

// Waves returns the number of SM waves needed to run the given number of
// thread blocks.
func (d *Device) Waves(blocks int) int {
	if blocks <= 0 {
		return 0
	}
	return (blocks + d.Spec.SMs - 1) / d.Spec.SMs
}

// WaveEfficiency returns the fraction of SM-wave slots actually occupied
// by the given grid: blocks / (waves * SMs). A grid of 6 blocks is
// perfectly efficient on the 6-SM NX (1.0) but wastes a quarter of the
// machine on the 8-SM AGX (0.75) — one mechanism behind the paper's
// "engine tuned on NX runs slower on AGX" anomaly (case 2).
func (d *Device) WaveEfficiency(blocks int) float64 {
	if blocks <= 0 {
		return 1
	}
	return float64(blocks) / float64(d.Waves(blocks)*d.Spec.SMs)
}

// l2ContentionBeta scales the slowdown from L2 thrashing: the overcommit
// fraction approximates the extra miss rate, and a DRAM miss costs
// several times an L2 hit, so the multiplier rises steeply.
const l2ContentionBeta = 4.0

// L2SharePerSMBytes is each SM's fair share of the L2 cache. Kernels
// whose per-SM working set exceeds it thrash (see L2ContentionFactor);
// the ratio of working set to this share is an engineered feature of the
// learned latency predictor.
func (d *Device) L2SharePerSMBytes() int64 {
	return int64(d.Spec.L2KB) * 1024 / int64(d.Spec.SMs)
}

// L2ContentionFactor returns a latency multiplier (>= 1) for a kernel
// whose per-SM working set is the given number of bytes. Both platforms
// share the same 512 KB L2 (Table I), so the per-SM share is smaller on
// the 8-SM AGX (64 KB) than the 6-SM NX (85 KB): kernels with working
// sets between those shares thrash on AGX but not on NX. This is the
// simulator's root cause for the paper's Finding 5 (some CUDA kernels run
// slower on the bigger platform).
func (d *Device) L2ContentionFactor(perSMWorkingSet int64) float64 {
	if perSMWorkingSet <= 0 {
		return 1
	}
	share := d.L2SharePerSMBytes()
	if perSMWorkingSet <= share {
		return 1
	}
	over := float64(perSMWorkingSet-share) / float64(perSMWorkingSet)
	return 1 + l2ContentionBeta*over
}

// LaunchOverheadSec returns the host-side cost of one kernel launch in
// seconds. It is a CPU cost and does not scale with GPU clock.
func (d *Device) LaunchOverheadSec() float64 {
	return 9e-6
}

// MemcpyH2DSec returns the host-to-device copy time in seconds for a
// payload of the given size split into the given number of chunks
// (typically one chunk per engine weight binding). Cost is per-chunk
// setup plus streaming at the effective pageable H2D bandwidth.
// Negative sizes (a corrupted engine header can produce one) are clamped
// to zero: the copy degenerates to per-chunk setup cost instead of
// crashing the caller.
func (d *Device) MemcpyH2DSec(bytes int64, chunks int) float64 {
	if bytes < 0 {
		bytes = 0
	}
	if chunks < 1 {
		chunks = 1
	}
	return float64(chunks)*d.Spec.H2DSetupUS*1e-6 + float64(bytes)/(d.Spec.H2DBWGBs*1e9)
}

// Throttled returns a derived device whose GPU clock is scaled by the
// given factor (clamped to (0, 1]); the DVFS governor stepping down under
// a thermal or power event. Fault-injection and degradation paths use it
// to price work on a throttled board without mutating the shared device.
func (d *Device) Throttled(scale float64) *Device {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	return &Device{Spec: d.Spec, ClockMHz: d.ClockMHz * scale}
}

// ClockScale returns the ratio of this device's configured clock to a
// reference clock in MHz — used to rescale timings between the latency
// and concurrency experiment settings.
func (d *Device) ClockScale(refMHz float64) float64 {
	if refMHz <= 0 {
		return 1
	}
	return d.ClockMHz / refMHz
}

// MaxConcurrentThreads bounds the number of concurrently sustainable
// inference threads by DRAM bandwidth, following the paper's Eq. (1):
// N = O(Fmem * Bwid / Bth) where Bth is the per-thread bandwidth demand
// in bytes/s. The numerator is exactly the device's DRAM bandwidth.
func (d *Device) MaxConcurrentThreads(perThreadBytesPerSec float64) int {
	if perThreadBytesPerSec <= 0 {
		return math.MaxInt32
	}
	n := int(d.DRAMBandwidth() / perThreadBytesPerSec)
	if n < 1 {
		n = 1
	}
	return n
}

// Power model constants: idle SoC draw plus GPU dynamic power scaling
// with utilization and (super-linearly, via DVFS voltage) with clock.
const (
	powerClockExponent = 2.5
)

// PowerW estimates board power in watts at the given GPU utilization
// (0..1), the quantity tegrastats reports from the INA rails. The AGX
// carries a larger GPU and memory system, hence its higher envelope
// (10-65W module vs the NX's 10-20W).
func (d *Device) PowerW(gpuUtil float64) float64 {
	if gpuUtil < 0 {
		gpuUtil = 0
	}
	if gpuUtil > 1 {
		gpuUtil = 1
	}
	idle, gpuMax := 2.5, 12.0
	if d.Spec.Short() == "AGX" {
		idle, gpuMax = 5.0, 30.0
	}
	clockFrac := d.ClockMHz / PaperMaxClock(d.Spec)
	if clockFrac > 1 {
		clockFrac = 1
	}
	dyn := gpuMax * gpuUtil * pow(clockFrac, powerClockExponent)
	return idle + dyn
}

// pow is a small positive-base power helper (math.Pow without the import
// churn for special cases).
func pow(base, exp float64) float64 {
	return math.Exp(exp * math.Log(base))
}
