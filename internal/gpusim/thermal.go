package gpusim

// Thermal model: a first-order thermal circuit with DVFS throttling.
// Sustained inference load heats the module toward an equilibrium set by
// power and the platform's thermal resistance; past the throttle
// temperature the governor steps the GPU clock down, which stretches
// inference latency over time — another way the same engine's timing is
// not a constant (the paper's predictability theme, made visible by
// tegrastats' thermal fields).

// Thermal constants per platform are derived from the module's cooling
// solution: the NX dev kit's small heatsink versus the AGX's larger
// heatsink and fan.
type thermalParams struct {
	ResistanceCPerW float64 // junction-to-ambient
	TimeConstantSec float64
	ThrottleC       float64
	RecoverC        float64
}

func thermalFor(spec DeviceSpec) thermalParams {
	if spec.Short() == "AGX" {
		return thermalParams{ResistanceCPerW: 1.25, TimeConstantSec: 90, ThrottleC: 85, RecoverC: 80}
	}
	return thermalParams{ResistanceCPerW: 4.2, TimeConstantSec: 60, ThrottleC: 85, RecoverC: 80}
}

// ThermalSample is one point of a sustained-load simulation.
type ThermalSample struct {
	TimeSec   float64
	TempC     float64
	ClockMHz  float64
	PowerW    float64
	Throttled bool
}

// SimulateSustainedLoad runs the thermal circuit for durationSec at the
// given GPU utilization, starting from ambient, stepping every stepSec.
// When the junction exceeds the throttle point the governor steps the
// clock down 3% per step until temperature falls below the recovery
// point; clocks recover the same way. Returns the time series.
func SimulateSustainedLoad(d *Device, util, ambientC, durationSec, stepSec float64) []ThermalSample {
	p := thermalFor(d.Spec)
	temp := ambientC
	clock := d.ClockMHz
	minClock := d.ClockMHz * 0.5
	var out []ThermalSample
	throttled := false
	for t := 0.0; t <= durationSec; t += stepSec {
		dev := &Device{Spec: d.Spec, ClockMHz: clock}
		power := dev.PowerW(util)
		equilibrium := ambientC + power*p.ResistanceCPerW
		temp += (equilibrium - temp) * (stepSec / p.TimeConstantSec)
		switch {
		case temp > p.ThrottleC:
			throttled = true
			clock *= 0.97
			if clock < minClock {
				clock = minClock
			}
		case throttled && temp < p.RecoverC:
			clock *= 1.03
			if clock > d.ClockMHz {
				clock = d.ClockMHz
				throttled = false
			}
		}
		out = append(out, ThermalSample{
			TimeSec: t, TempC: temp, ClockMHz: clock, PowerW: power, Throttled: throttled,
		})
	}
	return out
}

// SteadyStateClock returns the clock the platform settles at under the
// sustained load (the last eighth of the simulation, averaged).
func SteadyStateClock(samples []ThermalSample) float64 {
	if len(samples) == 0 {
		return 0
	}
	start := len(samples) * 7 / 8
	var sum float64
	for _, s := range samples[start:] {
		sum += s.ClockMHz
	}
	return sum / float64(len(samples)-start)
}
