package latpred

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"edgeinfer/internal/atomicfile"
	"edgeinfer/internal/kernels"
)

// Predictor files follow the timing cache's hardened format discipline
// (documented next to it in DESIGN.md §5): a magic header, a bounded
// family count, then per family its id, row count, residual and the
// three feature-width-prefixed float64 vectors (weights, means, stds).
// Families are written in sorted order so identical models serialize to
// identical bytes. Files are untrusted input on load: bad magic, a
// foreign feature width, hostile counts, or non-finite values all fail
// with an error after bounded allocation.
const modelMagic = "EDGELP01"

const maxModelFamilies = 64

// Save serializes the model.
func (m *Model) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(modelMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, math.Float64bits(m.MaxResidualLog)); err != nil {
		return err
	}
	fams := m.Families()
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(fams))); err != nil {
		return err
	}
	for _, fam := range fams {
		fm := m.families[fam]
		if err := bw.WriteByte(byte(fam)); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(fm.Rows)); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, math.Float64bits(fm.ResidualLog)); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(NumFeatures)); err != nil {
			return err
		}
		for _, vec := range [3]*[NumFeatures]float64{&fm.Weights, &fm.Mean, &fm.Std} {
			for _, v := range vec {
				if err := binary.Write(bw, binary.LittleEndian, math.Float64bits(v)); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// Load deserializes a model. Predictor files are untrusted input:
// truncated, bit-flipped or hostile streams return an error — never a
// panic, and never an allocation driven by an unvalidated length field.
func Load(r io.Reader) (*Model, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(modelMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("latpred: read model magic: %w", err)
	}
	if string(magic) != modelMagic {
		return nil, fmt.Errorf("latpred: bad model magic %q", magic)
	}
	var gateBits uint64
	if err := binary.Read(br, binary.LittleEndian, &gateBits); err != nil {
		return nil, err
	}
	gate := math.Float64frombits(gateBits)
	if math.IsNaN(gate) || math.IsInf(gate, 0) || gate < 0 {
		return nil, fmt.Errorf("latpred: model has invalid confidence gate %v", gate)
	}
	var count uint32
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, err
	}
	if count > maxModelFamilies {
		return nil, fmt.Errorf("latpred: model claims %d families, limit %d", count, maxModelFamilies)
	}
	m := &Model{MaxResidualLog: gate, families: map[kernels.Family]*FamilyModel{}}
	for i := uint32(0); i < count; i++ {
		famByte, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("latpred: model family %d: %w", i, err)
		}
		fam := kernels.Family(famByte)
		if _, ok := kernels.ParseFamily(fam.String()); !ok {
			return nil, fmt.Errorf("latpred: model family %d has unknown id %d", i, famByte)
		}
		if _, dup := m.families[fam]; dup {
			return nil, fmt.Errorf("latpred: model has duplicate family %s", fam)
		}
		fm := &FamilyModel{}
		var rows uint32
		if err := binary.Read(br, binary.LittleEndian, &rows); err != nil {
			return nil, fmt.Errorf("latpred: model family %s rows: %w", fam, err)
		}
		fm.Rows = int(rows)
		var resBits uint64
		if err := binary.Read(br, binary.LittleEndian, &resBits); err != nil {
			return nil, fmt.Errorf("latpred: model family %s residual: %w", fam, err)
		}
		fm.ResidualLog = math.Float64frombits(resBits)
		if math.IsNaN(fm.ResidualLog) || math.IsInf(fm.ResidualLog, 0) || fm.ResidualLog < 0 {
			return nil, fmt.Errorf("latpred: model family %s has invalid residual %v", fam, fm.ResidualLog)
		}
		var width uint32
		if err := binary.Read(br, binary.LittleEndian, &width); err != nil {
			return nil, fmt.Errorf("latpred: model family %s width: %w", fam, err)
		}
		if width != NumFeatures {
			return nil, fmt.Errorf("latpred: model family %s has feature width %d, this build expects %d",
				fam, width, NumFeatures)
		}
		for vi, vec := range [3]*[NumFeatures]float64{&fm.Weights, &fm.Mean, &fm.Std} {
			for j := 0; j < NumFeatures; j++ {
				var bits uint64
				if err := binary.Read(br, binary.LittleEndian, &bits); err != nil {
					return nil, fmt.Errorf("latpred: model family %s vector %d: %w", fam, vi, err)
				}
				v := math.Float64frombits(bits)
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return nil, fmt.Errorf("latpred: model family %s has non-finite coefficient", fam)
				}
				vec[j] = v
			}
		}
		for j := 0; j < NumFeatures; j++ {
			if fm.Std[j] <= 0 {
				return nil, fmt.Errorf("latpred: model family %s has non-positive std", fam)
			}
		}
		m.families[fam] = fm
	}
	return m, nil
}

// SaveFile writes the model crash-safely (serialize to memory, publish
// with an atomic rename), matching TimingCache.SaveFile.
func (m *Model) SaveFile(path string) error {
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		return err
	}
	return atomicfile.WriteFile(path, buf.Bytes(), 0o644)
}

// LoadFile reads a model from a file path.
func LoadFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
