// Package latpred is a learned latency predictor for the simulated edge
// devices, after MAPLE-Edge (PAPERS.md): instead of exhaustively timing
// every tactic on the device, a small per-kernel-family ridge regressor
// — trained on the measurements the tuner already banks in the
// core.TimingCache — predicts a candidate launch's latency from
// engineered features (dims-derived FLOPs and traffic, occupancy and
// L2-pressure terms, device peaks). Two consumers:
//
//   - core.Build (via BuildConfig.Predictor) pre-prunes the tuner's
//     candidate menu so cold builds time only the predicted top-k,
//     cutting the modeled tactic-timing cost without changing tactic
//     choices;
//   - the §VI-B extension study predicts engines on *unseen* device
//     profiles (train on NX, predict AGX; train at one clock, predict
//     another) as a learned rival to the paper's analytic BSP model.
//
// Models serialize with the same hardened magic-header discipline as
// timing caches: files are untrusted input, and malformed bytes load as
// errors, never panics or unbounded allocations.
package latpred

import (
	"fmt"
	"math"
	"sort"

	"edgeinfer/internal/gpusim"
	"edgeinfer/internal/kernels"
)

// FamilyModel is one kernel family's fitted ridge regressor over the
// standardized feature vector, predicting log-latency.
type FamilyModel struct {
	Weights [NumFeatures]float64 // coefficients over standardized features
	Mean    [NumFeatures]float64 // per-feature training mean
	Std     [NumFeatures]float64 // per-feature training std (1 for constants)
	// ResidualLog is the train-set RMSE in log space — the model's
	// confidence figure. The tuner-noise floor is about 0.13 (sysSigma
	// 0.10 + jitter 0.08 in quadrature), so a residual well above that
	// means the family's latency surface was not captured.
	ResidualLog float64
	Rows        int // training rows behind the fit
}

// Model is a set of per-family regressors plus the confidence gate that
// decides when a prediction is trustworthy enough to prune on.
type Model struct {
	// MaxResidualLog is the safety valve: families whose train-set
	// residual exceeds it answer ok=false from PredictSec, sending the
	// tuner back to full timing for their layers.
	MaxResidualLog float64

	families map[kernels.Family]*FamilyModel
}

// NewModel assembles a model from per-family fits (primarily for tests;
// Train and Load are the production constructors).
func NewModel(maxResidualLog float64, families map[kernels.Family]*FamilyModel) *Model {
	m := &Model{MaxResidualLog: maxResidualLog, families: map[kernels.Family]*FamilyModel{}}
	for f, fm := range families {
		m.families[f] = fm
	}
	return m
}

// Families returns the fitted families in deterministic order.
func (m *Model) Families() []kernels.Family {
	out := make([]kernels.Family, 0, len(m.families))
	for f := range m.families {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Family returns the fitted regressor for a family, if any.
func (m *Model) Family(f kernels.Family) (*FamilyModel, bool) {
	fm, ok := m.families[f]
	return fm, ok
}

// PredictSec estimates the noise-free latency of a candidate launch on a
// device. It implements core.LatencyPredictor. ok is false when the
// launch's family has no trained regressor, the family's residual fails
// the confidence gate, or the launch's features are degenerate — the
// tuner then falls back to timing the full candidate menu, so a gap in
// the model can never change a tactic choice.
//
//rt:hotpath
func (m *Model) PredictSec(dev *gpusim.Device, ls kernels.LaunchSpec) (float64, bool) {
	if m == nil || dev == nil {
		return 0, false
	}
	fm, ok := m.families[ls.V.Family]
	if !ok || fm.ResidualLog > m.MaxResidualLog {
		return 0, false
	}
	var f [NumFeatures]float64
	if !featuresInto(&f, dev, ls) {
		return 0, false
	}
	logSec := 0.0
	for i := 0; i < NumFeatures; i++ {
		logSec += fm.Weights[i] * (f[i] - fm.Mean[i]) / fm.Std[i]
	}
	if math.IsNaN(logSec) || math.IsInf(logSec, 0) {
		return 0, false
	}
	sec := math.Exp(logSec)
	if !(sec > 0) || math.IsInf(sec, 0) {
		return 0, false
	}
	return sec, true
}

// String summarizes the model for logs and study tables.
func (m *Model) String() string {
	s := fmt.Sprintf("latpred.Model{gate %.3f", m.MaxResidualLog)
	for _, f := range m.Families() {
		fm := m.families[f]
		s += fmt.Sprintf(", %s: %d rows rmse %.3f", f, fm.Rows, fm.ResidualLog)
	}
	return s + "}"
}
